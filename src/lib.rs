//! # tmn
//!
//! A from-scratch Rust reproduction of **TMN: Trajectory Matching Networks
//! for Predicting Similarity** (Yang et al., ICDE 2022): learned trajectory
//! similarity with a cross-trajectory attention matching mechanism, the
//! baselines it is compared against, the exact distance metrics it
//! approximates, and the full benchmark harness regenerating the paper's
//! tables and figures.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! - [`autograd`] — dense-tensor reverse-mode autograd, NN layers, Adam.
//! - [`traj`] — trajectory types, DTW / Fréchet / Hausdorff / ERP / EDR /
//!   LCSS, distance matrices, prefix distances.
//! - [`data`] — synthetic Geolife-like / Porto-like datasets, preprocessing,
//!   sampling strategies.
//! - [`index`] — k-d tree and HNSW over embeddings.
//! - [`core`] — TMN, TMN-NM, SRN, NeuTraj, T3S, Traj2SimVec; losses and the
//!   trainer.
//! - [`eval`] — top-k search evaluation (HR-k, Rk@t) and timing.
//!
//! ## Quickstart
//!
//! ```
//! use tmn::prelude::*;
//!
//! // 1. Data: a small Porto-like synthetic dataset (20% train).
//! let ds = Dataset::generate(&DatasetConfig::new(DatasetKind::PortoLike, 60, 7));
//!
//! // 2. Ground truth: DTW distances over the training set.
//! let params = MetricParams::default();
//! let dmat = ds.train_distance_matrix(Metric::Dtw, &params, 2);
//!
//! // 3. Train TMN briefly.
//! let model = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 1 });
//! let cfg = TrainConfig { epochs: 1, ..Default::default() };
//! let mut trainer = Trainer::new(
//!     model.as_ref(), &ds.train, &dmat, Metric::Dtw, params,
//!     Box::new(RankSampler), cfg, None,
//! );
//! let stats = trainer.train();
//! assert!(stats.final_loss().is_finite());
//! ```

pub use tmn_autograd as autograd;
pub use tmn_core as core;
pub use tmn_data as data;
pub use tmn_eval as eval;
pub use tmn_index as index;
pub use tmn_traj as traj;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use tmn_autograd::{nn::ParamSet, no_grad, ops, optim::Adam, Tensor};
    pub use tmn_core::{
        pair_loss, EncodedBatch, LossKind, ModelConfig, ModelKind, PairBatch, PairModel,
        PairTargets, SideBatch, TrainConfig, Trainer, TrainStats,
    };
    pub use tmn_data::{
        filter, train_test_split, Dataset, DatasetConfig, DatasetKind, FilterConfig, GenConfig,
        KdSampler, Normalizer, RankSampler, Sampler,
    };
    pub use tmn_eval::{
        encode_all, evaluate, kendall_tau, predicted_distance_rows,
        predicted_distance_rows_parallel, spearman, top_k_indices, EmbeddingStore, Evaluation,
    };
    pub use tmn_index::{Hnsw, HnswConfig, KdTree};
    pub use tmn_traj::{
        metrics::{prefix_distances, Metric, MetricParams},
        DistanceMatrix, Point, SimilarityMatrix, Trajectory,
    };
}
