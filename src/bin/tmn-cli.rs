//! `tmn-cli` — train, encode and search trajectory similarity models from
//! the command line.
//!
//! ```text
//! tmn-cli generate --kind porto --count 300 --seed 7 --out data.csv
//! tmn-cli train    --data data.csv --metric dtw --model tmn --dim 32 \
//!                  --epochs 8 --out model
//! tmn-cli search   --data data.csv --model model --query 0 --k 10
//! tmn-cli eval     --data data.csv --model model --queries 50
//! ```
//!
//! `train` writes `<out>.meta.json` (model kind, dimension, metric,
//! normalizer, split ratio) and `<out>.weights` (binary checkpoint); the
//! other commands read both.

use std::collections::HashMap;
use std::process::ExitCode;
use tmn::prelude::*;
use tmn::core::{load_params, save_params};

#[derive(serde::Serialize, serde::Deserialize)]
struct ModelMeta {
    kind: String,
    dim: usize,
    seed: u64,
    metric: String,
    train_ratio: f64,
    normalizer: Normalizer,
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                out.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                out.insert(name.to_string(), "true".to_string());
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    out
}

fn model_kind(name: &str) -> Result<ModelKind, String> {
    match name.to_lowercase().as_str() {
        "srn" => Ok(ModelKind::Srn),
        "neutraj" => Ok(ModelKind::NeuTraj),
        "t3s" => Ok(ModelKind::T3s),
        "traj2simvec" => Ok(ModelKind::Traj2SimVec),
        "tmn-nm" | "tmnnm" => Ok(ModelKind::TmnNm),
        "tmn" => Ok(ModelKind::Tmn),
        other => Err(format!("unknown model {other}")),
    }
}

fn load_data(flags: &HashMap<String, String>) -> Result<Vec<Trajectory>, String> {
    let path = flags.get("data").ok_or("--data <file.csv|file.jsonl> is required")?;
    tmn::data::io::load_path(path).map_err(|e| e.to_string())
}

fn load_model(flags: &HashMap<String, String>) -> Result<(Box<dyn PairModel>, ModelMeta), String> {
    let base = flags.get("model").ok_or("--model <path-prefix> is required")?;
    let meta: ModelMeta = serde_json::from_str(
        &std::fs::read_to_string(format!("{base}.meta.json")).map_err(|e| e.to_string())?,
    )
    .map_err(|e| e.to_string())?;
    let kind = model_kind(&meta.kind)?;
    let model = kind.build(&ModelConfig { dim: meta.dim, seed: meta.seed });
    let weights = std::fs::read(format!("{base}.weights")).map_err(|e| e.to_string())?;
    load_params(model.params(), &weights).map_err(|e| e.to_string())?;
    Ok((model, meta))
}

fn cmd_generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let kind = match flags.get("kind").map(|s| s.as_str()).unwrap_or("porto") {
        "porto" => DatasetKind::PortoLike,
        "geolife" => DatasetKind::GeolifeLike,
        other => return Err(format!("unknown dataset kind {other} (porto|geolife)")),
    };
    let count: usize = flags.get("count").map(|s| s.parse()).transpose().map_err(|e| format!("{e}"))?.unwrap_or(300);
    let seed: u64 = flags.get("seed").map(|s| s.parse()).transpose().map_err(|e| format!("{e}"))?.unwrap_or(7);
    let out = flags.get("out").ok_or("--out <file.csv> is required")?;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let trajs = kind.generate(&GenConfig { count, ..Default::default() }, &mut rng);
    let file = std::fs::File::create(out).map_err(|e| e.to_string())?;
    tmn::data::io::write_csv(file, &trajs).map_err(|e| e.to_string())?;
    println!("wrote {count} {} trajectories to {out}", kind.name());
    Ok(())
}

fn cmd_train(flags: &HashMap<String, String>) -> Result<(), String> {
    let raw = load_data(flags)?;
    let metric: Metric = flags.get("metric").map(|s| s.as_str()).unwrap_or("dtw").parse()?;
    let kind = model_kind(flags.get("model").map(|s| s.as_str()).unwrap_or("tmn"))?;
    let dim: usize = flags.get("dim").and_then(|s| s.parse().ok()).unwrap_or(32);
    let epochs: usize = flags.get("epochs").and_then(|s| s.parse().ok()).unwrap_or(8);
    let seed: u64 = flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(42);
    let train_ratio: f64 = flags.get("train-ratio").and_then(|s| s.parse().ok()).unwrap_or(0.2);
    let out = flags.get("out").ok_or("--out <path-prefix> is required")?;

    let kept = filter(raw, &FilterConfig::default());
    if kept.len() < 10 {
        return Err(format!("only {} trajectories after filtering; need at least 10", kept.len()));
    }
    let normalizer = Normalizer::fit(&kept);
    let normalized = normalizer.transform_all(&kept);
    let (train, _) = train_test_split(&normalized, train_ratio);
    println!("training {} on {} trajectories under {metric} (d={dim}, {epochs} epochs)...", kind.name(), train.len());
    let params = MetricParams::default();
    let dmat = DistanceMatrix::compute(&train, metric, &params, 2);
    let model = kind.build(&ModelConfig { dim, seed });
    let cfg = TrainConfig { epochs, use_sub_loss: kind.uses_sub_loss(), ..Default::default() };
    let sampler: Box<dyn Sampler> = if kind.uses_kd_sampling() {
        Box::new(KdSampler::build(&train, 10))
    } else {
        Box::new(RankSampler)
    };
    let mut trainer = Trainer::new(model.as_ref(), &train, &dmat, metric, params, sampler, cfg, None);
    let stats = trainer.train();
    for e in &stats.epochs {
        println!("  epoch {}: loss {:.5} ({:.1}s)", e.epoch, e.loss, e.seconds);
    }

    let meta = ModelMeta {
        kind: kind.name().to_string(),
        dim,
        seed,
        metric: metric.name().to_string(),
        train_ratio,
        normalizer,
    };
    std::fs::write(format!("{out}.meta.json"), serde_json::to_string_pretty(&meta).unwrap())
        .map_err(|e| e.to_string())?;
    std::fs::write(format!("{out}.weights"), save_params(model.params()))
        .map_err(|e| e.to_string())?;
    println!("saved {out}.meta.json and {out}.weights");
    Ok(())
}

/// Normalize + test-split the data file the same way training did.
fn test_partition(meta: &ModelMeta, raw: Vec<Trajectory>) -> Vec<Trajectory> {
    let kept = filter(raw, &FilterConfig::default());
    let normalized = meta.normalizer.transform_all(&kept);
    let (_, test) = train_test_split(&normalized, meta.train_ratio);
    test
}

fn cmd_encode(flags: &HashMap<String, String>) -> Result<(), String> {
    let (model, meta) = load_model(flags)?;
    if model.is_pair_dependent() {
        return Err("TMN representations are pair-dependent; encode works for \
                    independent encoders (tmn-nm, srn, neutraj, t3s, traj2simvec)"
            .into());
    }
    let test = test_partition(&meta, load_data(flags)?);
    let out = flags.get("out").ok_or("--out <file.emb> is required")?;
    let embeddings = encode_all(model.as_ref(), &test, 64);
    let store = tmn::eval::EmbeddingStore::from_vectors(&embeddings);
    std::fs::write(out, store.to_bytes()).map_err(|e| e.to_string())?;
    println!("encoded {} trajectories (d={}) into {out}", store.len(), store.dim());
    Ok(())
}

fn cmd_search(flags: &HashMap<String, String>) -> Result<(), String> {
    let (model, meta) = load_model(flags)?;
    let test = test_partition(&meta, load_data(flags)?);
    let query: usize = flags.get("query").and_then(|s| s.parse().ok()).unwrap_or(0);
    let k: usize = flags.get("k").and_then(|s| s.parse().ok()).unwrap_or(10);
    if query >= test.len() {
        return Err(format!("query {query} out of range ({} test trajectories)", test.len()));
    }
    let rows = predicted_distance_rows(model.as_ref(), &test, &[query], 64);
    let top = top_k_indices(&rows[0], k, query);
    println!("learned top-{k} similar to test trajectory {query} under {}:", meta.metric);
    for (rank, &i) in top.iter().enumerate() {
        println!("  {}. #{i} (predicted embedding distance {:.4})", rank + 1, rows[0][i]);
    }
    Ok(())
}

fn cmd_eval(flags: &HashMap<String, String>) -> Result<(), String> {
    let (model, meta) = load_model(flags)?;
    let test = test_partition(&meta, load_data(flags)?);
    let metric: Metric = meta.metric.parse()?;
    let nq: usize = flags.get("queries").and_then(|s| s.parse().ok()).unwrap_or(50);
    let queries: Vec<usize> = (0..nq.min(test.len())).collect();
    println!("evaluating {} queries against exact {metric}...", queries.len());
    let pred = predicted_distance_rows(model.as_ref(), &test, &queries, 64);
    let dmat = DistanceMatrix::compute(&test, metric, &MetricParams::default(), 2);
    let truth: Vec<Vec<f64>> = queries.iter().map(|&q| dmat.row(q).to_vec()).collect();
    println!("{}", evaluate(&pred, &truth, &queries));
    Ok(())
}

const USAGE: &str = "usage: tmn-cli <generate|train|encode|search|eval> [--flags]
  generate --kind porto|geolife --count N --seed S --out data.csv
  train    --data data.csv --metric dtw|frechet|hausdorff|erp|edr|lcss
           --model tmn|tmn-nm|srn|neutraj|t3s|traj2simvec
           [--dim 32] [--epochs 8] [--seed 42] [--train-ratio 0.2] --out model
  encode   --data data.csv --model model --out embeddings.emb
  search   --data data.csv --model model [--query 0] [--k 10]
  eval     --data data.csv --model model [--queries 50]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = parse_flags(&args[1..]);
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "train" => cmd_train(&flags),
        "encode" => cmd_encode(&flags),
        "search" => cmd_search(&flags),
        "eval" => cmd_eval(&flags),
        other => Err(format!("unknown command {other}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
