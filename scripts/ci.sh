#!/usr/bin/env bash
# CI gate: release build, full test suite, zero-warning clippy.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== test =="
cargo test -q --workspace

echo "== clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== recurrent graph-node budget (<=3 nodes per step x direction) =="
cargo run --release -p tmn-bench --bin profile -- --nodes

echo "== profile smoke (observability artifacts) =="
cargo run --release -p tmn-bench --bin profile -- --quick
test -s results/PROFILE_ops.json
test -s results/PROFILE_telemetry.jsonl
cargo run --release -p tmn-bench --bin profile -- --check

echo "== bench_diff self-check (regression gate dry run) =="
# Identity diff of a results file against itself must pass; a synthetic
# perturbation of every gated metric must be caught. Two-run usage:
#   cargo run --release -p tmn-bench --bin bench_diff -- base.json head.json
cargo run --release -p tmn-bench --bin bench_diff -- --self-check results/PROFILE_ops.json
if [ -s results/BENCH_throughput.json ]; then
  cargo run --release -p tmn-bench --bin bench_diff -- --self-check results/BENCH_throughput.json
fi

echo "== resume smoke (kill-and-resume bit-identical, threads=1 and 4) =="
cargo run --release -p tmn-bench --bin resume_smoke

echo "== serve smoke (lifecycle, degraded mode, cache recovery) =="
cargo run --release -p tmn-bench --bin serve_smoke

echo "== store smoke (mmap round-trip, corruption, blocked GT, sharded eval, warm start) =="
cargo run --release -p tmn-bench --bin store_smoke

echo "== stream smoke (point-by-point replay, bitwise parity, window query, reindex filter) =="
cargo run --release -p tmn-bench --bin stream_smoke

echo "== trace smoke (span trees, chrome export, exemplar linkage, queue metrics) =="
cargo run --release -p tmn-bench --bin trace_smoke

echo "CI OK"
