#!/usr/bin/env bash
# CI gate: release build, full test suite, zero-warning clippy.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== test =="
cargo test -q --workspace

echo "== clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
