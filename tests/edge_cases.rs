//! Edge-case integration tests: degenerate trajectories, tiny batches,
//! extreme parameters, and failure-injection paths.

use tmn::prelude::*;

#[test]
fn single_point_trajectories_work_everywhere() {
    let a = Trajectory::from_coords(&[(0.3, 0.4)]);
    let b = Trajectory::from_coords(&[(0.6, 0.1)]);
    let p = MetricParams::default();
    for metric in Metric::ALL {
        let d = metric.distance(&a, &b, &p);
        assert!(d.is_finite() && d >= 0.0, "{metric}");
    }
    // Model encoding of single-point trajectories.
    let model = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 1 });
    let enc = model.encode_pairs(&PairBatch::build(&[&a], &[&b]));
    assert_eq!(enc.out_a.shape(), &[1, 1, 8]);
    assert!(enc.out_a.to_vec().iter().all(|v| v.is_finite()));
}

#[test]
fn identical_point_repeated_trajectory() {
    // A stationary object: all points equal.
    let t = Trajectory::from_coords(&[(0.5, 0.5); 12]);
    let p = MetricParams::default();
    for metric in Metric::ALL {
        assert_eq!(metric.distance(&t, &t, &p), 0.0, "{metric}");
    }
    assert_eq!(t.path_length(), 0.0);
    assert_eq!(t.simplify(4).len(), 4);
}

#[test]
fn extreme_alpha_similarities_stay_in_range() {
    let trajs: Vec<Trajectory> = (0..4)
        .map(|i| Trajectory::from_coords(&[(0.0, i as f64), (1.0, i as f64)]))
        .collect();
    let dmat = DistanceMatrix::compute(&trajs, Metric::Dtw, &MetricParams::default(), 1);
    for alpha in [0.001, 1.0, 100.0] {
        let s = dmat.to_similarity(alpha);
        for i in 0..4 {
            for j in 0..4 {
                let v = s.get(i, j);
                assert!((0.0..=1.0).contains(&v), "alpha {alpha}: {v}");
            }
        }
    }
}

#[test]
fn batch_of_one_pair_trains() {
    let trajs: Vec<Trajectory> = (0..4)
        .map(|i| {
            (0..10)
                .map(|t| Point::new(0.1 * t as f64, 0.2 * i as f64))
                .collect()
        })
        .collect();
    let dmat = DistanceMatrix::compute(&trajs, Metric::Dtw, &MetricParams::default(), 1);
    let model = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 2 });
    let cfg = TrainConfig {
        epochs: 1,
        sampling_number: 2,
        batch_pairs: 1, // one pair per gradient step
        ..Default::default()
    };
    let mut trainer = Trainer::new(
        model.as_ref(),
        &trajs,
        &dmat,
        Metric::Dtw,
        MetricParams::default(),
        Box::new(RankSampler),
        cfg,
        None,
    );
    let stats = trainer.train();
    assert!(stats.final_loss().is_finite());
}

#[test]
fn checkpoint_rejects_wrong_architecture() {
    use tmn::core::{load_params, save_params, CheckpointError};
    let srn = ModelKind::Srn.build(&ModelConfig { dim: 8, seed: 1 });
    let buf = save_params(srn.params());
    let tmn_model = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 1 });
    // Restoring SRN weights into TMN must fail as a recoverable error
    // (not a panic), naming what disagreed, and leave the model untouched.
    let before = tmn_model.params().snapshot();
    match load_params(tmn_model.params(), &buf) {
        Err(CheckpointError::Mismatch { .. }) => {}
        other => panic!("expected Mismatch, got {other:?}"),
    }
    assert_eq!(tmn_model.params().snapshot(), before, "failed load must not write");
}

#[test]
fn corrupted_checkpoint_is_detected() {
    use tmn::core::{load_params, save_params};
    let model = ModelKind::TmnNm.build(&ModelConfig { dim: 8, seed: 3 });
    let mut buf = save_params(model.params()).to_vec();
    buf.truncate(buf.len() - 10);
    assert!(load_params(model.params(), &buf).is_err());
}

#[test]
fn hnsw_with_duplicate_vectors() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let mut h = Hnsw::new(4, HnswConfig::default());
    for _ in 0..20 {
        h.insert(&[1.0, 2.0, 3.0, 4.0], &mut rng);
    }
    let nn = h.knn(&[1.0, 2.0, 3.0, 4.0], 5);
    assert_eq!(nn.len(), 5);
    assert!(nn.iter().all(|&(_, d)| d == 0.0));
}

#[test]
fn kdtree_with_collinear_points() {
    let pts: Vec<Vec<f32>> = (0..50).map(|i| vec![i as f32, 0.0]).collect();
    let tree = KdTree::build(pts);
    let nn = tree.knn(&[25.2, 0.0], 3);
    let ids: Vec<usize> = nn.iter().map(|&(i, _)| i).collect();
    assert!(ids.contains(&25));
    assert!(ids.contains(&24) || ids.contains(&26));
}

#[test]
fn evaluation_with_more_requested_than_available() {
    // 5 candidates but HR-10/HR-50 requested: top_k truncates gracefully.
    let truth: Vec<f64> = (0..5).map(|i| i as f64).collect();
    let e = evaluate(std::slice::from_ref(&truth), std::slice::from_ref(&truth), &[0]);
    assert_eq!(e.hr10, 0.4); // 4 candidates recovered out of k=10
}

#[test]
fn dataset_generation_with_tight_length_band() {
    let mut cfg = DatasetConfig::new(DatasetKind::GeolifeLike, 20, 5);
    cfg.gen.min_len = 10;
    cfg.gen.max_len = 10; // exact length
    let ds = Dataset::generate(&cfg);
    for t in ds.train.iter().chain(&ds.test) {
        assert_eq!(t.len(), 10);
    }
}

#[test]
fn sub_loss_skips_pairs_shorter_than_stride() {
    // Pairs shorter than the stride contribute no sub targets but still train.
    let trajs: Vec<Trajectory> = (0..6)
        .map(|i| {
            (0..4) // much shorter than sub_stride=10
                .map(|t| Point::new(0.1 * t as f64, 0.1 * i as f64))
                .collect()
        })
        .collect();
    let dmat = DistanceMatrix::compute(&trajs, Metric::Dtw, &MetricParams::default(), 1);
    let model = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 6 });
    let cfg = TrainConfig { epochs: 1, sampling_number: 2, use_sub_loss: true, ..Default::default() };
    let mut trainer = Trainer::new(
        model.as_ref(),
        &trajs,
        &dmat,
        Metric::Dtw,
        MetricParams::default(),
        Box::new(RankSampler),
        cfg,
        None,
    );
    assert!(trainer.train().final_loss().is_finite());
}
