//! Property-based tests on the model pipeline: batching invariants, mask
//! correctness under arbitrary lengths, and prediction sanity.

use proptest::prelude::*;
use tmn::prelude::*;

fn arb_trajectory(min_len: usize, max_len: usize) -> impl Strategy<Value = Trajectory> {
    prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), min_len..=max_len)
        .prop_map(|coords| Trajectory::from_coords(&coords))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn encoding_is_finite_for_arbitrary_pairs(
        a in arb_trajectory(1, 24),
        b in arb_trajectory(1, 24),
    ) {
        let model = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 1 });
        let batch = PairBatch::build(&[&a], &[&b]);
        let enc = model.encode_pairs(&batch);
        prop_assert!(enc.out_a.to_vec().iter().all(|v| v.is_finite()));
        prop_assert!(enc.out_b.to_vec().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn batch_order_does_not_change_encodings(
        a1 in arb_trajectory(2, 16),
        b1 in arb_trajectory(2, 16),
        a2 in arb_trajectory(2, 16),
        b2 in arb_trajectory(2, 16),
    ) {
        // Encoding pair 1 in slot 0 or slot 1 of a batch must not matter
        // (same padding length either way).
        let model = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 2 });
        let d = model.dim();
        let fwd = model.encode_pairs(&PairBatch::build(&[&a1, &a2], &[&b1, &b2]));
        let rev = model.encode_pairs(&PairBatch::build(&[&a2, &a1], &[&b2, &b1]));
        let m = fwd.out_a.shape()[1];
        let fwd_row0 = &fwd.out_a.to_vec()[..m * d];
        let rev_all = rev.out_a.to_vec();
        let rev_row1 = &rev_all[m * d..];
        for (x, y) in fwd_row0.iter().zip(rev_row1) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn predicted_similarity_in_unit_interval(
        a in arb_trajectory(2, 20),
        b in arb_trajectory(2, 20),
    ) {
        // pred = exp(-dist) must land in (0, 1]; verify through the public
        // evaluation path by checking distances are non-negative and finite.
        let model = ModelKind::Srn.build(&ModelConfig { dim: 8, seed: 3 });
        let trajs = vec![a, b];
        let rows = predicted_distance_rows(model.as_ref(), &trajs, &[0], 2);
        for &d in &rows[0] {
            prop_assert!(d.is_finite() && d >= 0.0);
        }
    }

    #[test]
    fn rank_weights_normalized(n in 1usize..64) {
        let w = tmn::data::rank_weights(n);
        let sum: f32 = w.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(w.windows(2).all(|p| p[0] > p[1]));
    }

    #[test]
    fn sampler_near_closer_than_far(
        seed in 0u64..500,
        k in 1usize..6,
    ) {
        let trajs: Vec<Trajectory> = (0..24)
            .map(|i| {
                let off = i as f64 * 0.04;
                (0..10).map(|t| Point::new(0.1 * t as f64, off)).collect()
            })
            .collect();
        let dmat = DistanceMatrix::compute(&trajs, Metric::Dtw, &MetricParams::default(), 1);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let s = RankSampler.sample(seed as usize % trajs.len(), k, &dmat, &mut rng);
        let row = dmat.row(s.anchor);
        let max_near = s.near.iter().map(|&(i, _)| row[i]).fold(0.0, f64::max);
        let min_far = s.far.iter().map(|&(i, _)| row[i]).fold(f64::INFINITY, f64::min);
        prop_assert!(max_near <= min_far);
    }
}
