//! Property-based tests (proptest) on the exact distance metrics and the
//! similarity transform — the axioms the learning pipeline relies on.

use proptest::prelude::*;
use tmn::prelude::*;
use tmn::traj::metrics::{dtw, dtw_matching, erp, lcss};

fn arb_trajectory(max_len: usize) -> impl Strategy<Value = Trajectory> {
    prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..max_len)
        .prop_map(|coords| Trajectory::from_coords(&coords))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_metrics_nonnegative_symmetric_identity(
        a in arb_trajectory(20),
        b in arb_trajectory(20),
    ) {
        let p = MetricParams { eps: 0.15, ..Default::default() };
        for metric in Metric::ALL {
            let dab = metric.distance(&a, &b, &p);
            let dba = metric.distance(&b, &a, &p);
            prop_assert!(dab >= 0.0, "{metric}: negative distance {dab}");
            prop_assert!((dab - dba).abs() < 1e-9, "{metric}: asymmetric {dab} vs {dba}");
            prop_assert!(metric.distance(&a, &a, &p).abs() < 1e-9, "{metric}: d(a,a) != 0");
        }
    }

    #[test]
    fn dtw_upper_bounds_and_path_consistency(a in arb_trajectory(16), b in arb_trajectory(16)) {
        // DTW is bounded above by matching every point of the longer
        // trajectory to the best single point of the other times length.
        let (d, path) = dtw_matching(&a, &b);
        prop_assert!((d - dtw(&a, &b)).abs() < 1e-9);
        let path_sum: f64 = path.iter().map(|&(i, j)| a[i].dist(&b[j])).sum();
        prop_assert!((d - path_sum).abs() < 1e-6, "path sum {path_sum} != DTW {d}");
        // Path covers both trajectories end to end.
        prop_assert_eq!(path.first().copied(), Some((0usize, 0usize)));
        prop_assert_eq!(path.last().copied(), Some((a.len() - 1, b.len() - 1)));
    }

    #[test]
    fn frechet_at_most_dtw(a in arb_trajectory(16), b in arb_trajectory(16)) {
        // Fréchet takes the max over an optimal coupling, DTW the sum over
        // its own optimal path; max over any coupling <= sum over it, and
        // minimizing can only help: Fréchet <= DTW always.
        let p = MetricParams::default();
        let f = Metric::Frechet.distance(&a, &b, &p);
        let d = Metric::Dtw.distance(&a, &b, &p);
        prop_assert!(f <= d + 1e-9, "Frechet {f} > DTW {d}");
    }

    #[test]
    fn erp_triangle_inequality(
        a in arb_trajectory(10),
        b in arb_trajectory(10),
        c in arb_trajectory(10),
    ) {
        // ERP is a true metric.
        let g = Point::new(0.0, 0.0);
        let ab = erp(&a, &b, g);
        let bc = erp(&b, &c, g);
        let ac = erp(&a, &c, g);
        prop_assert!(ac <= ab + bc + 1e-9, "ERP triangle violated: {ac} > {ab} + {bc}");
    }

    #[test]
    fn lcss_bounds(a in arb_trajectory(16), b in arb_trajectory(16), eps in 0.01f64..0.5) {
        let l = lcss(&a, &b, eps);
        prop_assert!(l <= a.len().min(b.len()));
        // LCSS grows (weakly) with eps.
        let l_wider = lcss(&a, &b, eps * 2.0);
        prop_assert!(l_wider >= l);
        // Distance form stays in [0, 1].
        let d = Metric::Lcss.distance(&a, &b, &MetricParams { eps, ..Default::default() });
        prop_assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn edr_bounded_by_max_len(a in arb_trajectory(16), b in arb_trajectory(16)) {
        let p = MetricParams { eps: 0.1, ..Default::default() };
        let d = Metric::Edr.distance(&a, &b, &p);
        prop_assert!(d <= a.len().max(b.len()) as f64);
        prop_assert!(d >= (a.len() as f64 - b.len() as f64).abs());
    }

    #[test]
    fn similarity_transform_monotone(
        trajs in prop::collection::vec(arb_trajectory(12), 3..6),
        alpha in 1.0f64..20.0,
    ) {
        let dmat = DistanceMatrix::compute(&trajs, Metric::Dtw, &MetricParams::default(), 1);
        let smat = dmat.to_similarity(alpha);
        let n = trajs.len();
        for i in 0..n {
            prop_assert!((smat.get(i, i) - 1.0).abs() < 1e-12);
            for j in 0..n {
                for k in 0..n {
                    if dmat.get(i, j) < dmat.get(i, k) {
                        prop_assert!(smat.get(i, j) >= smat.get(i, k));
                    }
                }
            }
        }
    }

    #[test]
    fn prefix_distances_agree_with_naive(
        a in arb_trajectory(18),
        b in arb_trajectory(18),
        stride in 2usize..6,
    ) {
        let p = MetricParams { eps: 0.1, ..Default::default() };
        for metric in Metric::ALL {
            for (i, d) in prefix_distances(metric, &a, &b, stride, &p) {
                let naive = metric.distance(&a.prefix(i), &b.prefix(i), &p);
                prop_assert!((d - naive).abs() < 1e-9, "{metric} prefix {i}");
            }
        }
    }
}
