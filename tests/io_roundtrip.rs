//! File-level round trips: dataset I/O, model checkpoints, and embedding
//! stores written to and read from a temporary directory.

use tmn::prelude::*;

fn tmpdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tmn-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn csv_file_roundtrip_via_load_path() {
    let dir = tmpdir();
    let path = dir.join("io_roundtrip.csv");
    let trajs = vec![
        Trajectory::from_coords(&[(116.3, 39.9), (116.31, 39.91)]),
        Trajectory::from_coords(&[(-8.6, 41.1), (-8.61, 41.12), (-8.62, 41.15)]),
    ];
    let file = std::fs::File::create(&path).unwrap();
    tmn::data::io::write_csv(file, &trajs).unwrap();
    let back = tmn::data::io::load_path(&path).unwrap();
    assert_eq!(back, trajs);
    std::fs::remove_file(path).unwrap();
}

#[test]
fn jsonl_file_roundtrip_via_load_path() {
    let dir = tmpdir();
    let path = dir.join("io_roundtrip.jsonl");
    let trajs = vec![Trajectory::from_coords(&[(0.5, 0.25), (0.75, 0.5)])];
    let file = std::fs::File::create(&path).unwrap();
    tmn::data::io::write_jsonl(file, &trajs).unwrap();
    let back = tmn::data::io::load_path(&path).unwrap();
    assert_eq!(back, trajs);
    std::fs::remove_file(path).unwrap();
}

#[test]
fn checkpoint_file_roundtrip() {
    use tmn::core::{load_params, save_params};
    let dir = tmpdir();
    let path = dir.join("model.weights");
    let model = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 9 });
    std::fs::write(&path, save_params(model.params())).unwrap();
    let clone = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 1234 });
    let buf = std::fs::read(&path).unwrap();
    load_params(clone.params(), &buf).unwrap();
    for ((_, a), (_, b)) in model.params().iter().zip(clone.params().iter()) {
        assert_eq!(a.to_vec(), b.to_vec());
    }
    std::fs::remove_file(path).unwrap();
}

#[test]
fn embedding_store_file_roundtrip() {
    use tmn::eval::EmbeddingStore;
    let dir = tmpdir();
    let path = dir.join("test.emb");
    let model = ModelKind::Srn.build(&ModelConfig { dim: 8, seed: 10 });
    let trajs: Vec<Trajectory> = (0..5)
        .map(|i| {
            (0..6)
                .map(|t| Point::new(0.1 * t as f64, 0.2 * i as f64))
                .collect()
        })
        .collect();
    let emb = encode_all(model.as_ref(), &trajs, 8);
    let store = EmbeddingStore::from_vectors(&emb);
    std::fs::write(&path, store.to_bytes()).unwrap();
    let back = EmbeddingStore::from_bytes(&std::fs::read(&path).unwrap()).unwrap();
    assert_eq!(back, store);
    // Search works on the reloaded store.
    let nn = back.knn_exact(back.get(2), 1);
    assert_eq!(nn[0].0, 2);
    std::fs::remove_file(path).unwrap();
}
