//! End-to-end integration tests spanning data generation, ground truth,
//! training, and evaluation.

use tmn::prelude::*;

fn small_dataset(kind: DatasetKind, n: usize, seed: u64) -> Dataset {
    let mut cfg = DatasetConfig::new(kind, n, seed);
    cfg.gen.min_len = 12;
    cfg.gen.max_len = 32;
    Dataset::generate(&cfg)
}

fn quick_train(
    model: &dyn PairModel,
    ds: &Dataset,
    dmat: &DistanceMatrix,
    metric: Metric,
    epochs: usize,
) -> TrainStats {
    let cfg = TrainConfig { epochs, sampling_number: 8, batch_pairs: 16, ..Default::default() };
    let mut trainer = Trainer::new(
        model,
        &ds.train,
        dmat,
        metric,
        MetricParams::default(),
        Box::new(RankSampler),
        cfg,
        None,
    );
    trainer.train()
}

#[test]
fn training_reduces_loss_and_beats_random_ranking() {
    let ds = small_dataset(DatasetKind::PortoLike, 150, 3);
    let params = MetricParams::default();
    let dmat = ds.train_distance_matrix(Metric::Dtw, &params, 2);
    let model = ModelKind::Tmn.build(&ModelConfig { dim: 16, seed: 1 });
    let stats = quick_train(model.as_ref(), &ds, &dmat, Metric::Dtw, 4);
    assert!(stats.final_loss() < stats.epochs[0].loss, "loss should decrease");

    let queries: Vec<usize> = (0..15).collect();
    let pred = predicted_distance_rows(model.as_ref(), &ds.test, &queries, 32);
    let test_dmat = ds.test_distance_matrix(Metric::Dtw, &params, 2);
    let truth: Vec<Vec<f64>> = queries.iter().map(|&q| test_dmat.row(q).to_vec()).collect();
    let eval = evaluate(&pred, &truth, &queries);
    // Random ranking would give HR-10 ≈ 10/(N−1) ≈ 0.08; trained TMN must
    // do clearly better even with this tiny budget.
    assert!(eval.hr10 > 0.15, "HR-10 {} not above random", eval.hr10);
}

#[test]
fn tmn_outperforms_ablation_on_matching_metric() {
    // The paper's headline: the matching mechanism helps most on
    // matching-based metrics (DTW). Compare TMN vs TMN-NM under an
    // identical budget and seed.
    let ds = small_dataset(DatasetKind::PortoLike, 200, 5);
    let params = MetricParams::default();
    let dmat = ds.train_distance_matrix(Metric::Dtw, &params, 2);
    let test_dmat = ds.test_distance_matrix(Metric::Dtw, &params, 2);
    let queries: Vec<usize> = (0..25).collect();
    let truth: Vec<Vec<f64>> = queries.iter().map(|&q| test_dmat.row(q).to_vec()).collect();

    let mut scores = Vec::new();
    for kind in [ModelKind::Tmn, ModelKind::TmnNm] {
        let model = kind.build(&ModelConfig { dim: 16, seed: 2 });
        quick_train(model.as_ref(), &ds, &dmat, Metric::Dtw, 5);
        let pred = predicted_distance_rows(model.as_ref(), &ds.test, &queries, 32);
        scores.push(evaluate(&pred, &truth, &queries).hr10);
    }
    assert!(
        scores[0] > scores[1],
        "TMN (HR-10 {}) should beat TMN-NM (HR-10 {}) under DTW",
        scores[0],
        scores[1]
    );
}

#[test]
fn every_model_kind_improves_over_untrained_self() {
    let ds = small_dataset(DatasetKind::GeolifeLike, 120, 9);
    let params = MetricParams::default();
    let dmat = ds.train_distance_matrix(Metric::Hausdorff, &params, 2);
    let test_dmat = ds.test_distance_matrix(Metric::Hausdorff, &params, 2);
    let queries: Vec<usize> = (0..10).collect();
    let truth: Vec<Vec<f64>> = queries.iter().map(|&q| test_dmat.row(q).to_vec()).collect();
    for kind in ModelKind::ALL {
        let model = kind.build(&ModelConfig { dim: 16, seed: 3 });
        let before = {
            let pred = predicted_distance_rows(model.as_ref(), &ds.test, &queries, 32);
            evaluate(&pred, &truth, &queries).r10_50
        };
        quick_train(model.as_ref(), &ds, &dmat, Metric::Hausdorff, 3);
        let after = {
            let pred = predicted_distance_rows(model.as_ref(), &ds.test, &queries, 32);
            evaluate(&pred, &truth, &queries).r10_50
        };
        assert!(
            after >= before || after > 0.5,
            "{kind}: R10@50 degraded after training ({before} -> {after})"
        );
    }
}

#[test]
fn embeddings_feed_hnsw_index() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let ds = small_dataset(DatasetKind::PortoLike, 120, 13);
    let model = ModelKind::Srn.build(&ModelConfig { dim: 16, seed: 4 });
    let emb = encode_all(model.as_ref(), &ds.test, 32);
    let mut rng = StdRng::seed_from_u64(1);
    let mut index = Hnsw::new(16, HnswConfig::default());
    for e in &emb {
        index.insert(e, &mut rng);
    }
    // HNSW top-1 of each embedding is itself.
    for (i, e) in emb.iter().enumerate().take(10) {
        let nn = index.knn(e, 1);
        assert_eq!(nn[0].0, i);
    }
}

#[test]
fn weight_snapshot_reproduces_predictions() {
    let ds = small_dataset(DatasetKind::PortoLike, 80, 17);
    let params = MetricParams::default();
    let dmat = ds.train_distance_matrix(Metric::Dtw, &params, 2);
    let model = ModelKind::Tmn.build(&ModelConfig { dim: 16, seed: 5 });
    quick_train(model.as_ref(), &ds, &dmat, Metric::Dtw, 2);
    let snap = model.params().snapshot();
    let queries = vec![0usize];
    let before = predicted_distance_rows(model.as_ref(), &ds.test, &queries, 16);

    // A fresh model restored from the snapshot predicts identically.
    let clone = ModelKind::Tmn.build(&ModelConfig { dim: 16, seed: 99 });
    clone.params().restore(&snap);
    let after = predicted_distance_rows(clone.as_ref(), &ds.test, &queries, 16);
    for (x, y) in before[0].iter().zip(&after[0]) {
        assert!((x - y).abs() < 1e-6, "snapshot restore changed predictions");
    }
}
