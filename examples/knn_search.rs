//! Indexed nearest-neighbour search over learned embeddings: train a model,
//! embed the test set once, index with HNSW, and compare indexed vs
//! brute-force search — the "existing multi-dimensional indexing techniques
//! can be immediately used" benefit the paper's introduction highlights.
//!
//! Run with: `cargo run --release --example knn_search`

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use tmn::prelude::*;

fn main() {
    // 1. Train an independent encoder (TMN-NM: every trajectory gets one
    //    embedding, so the whole database is encoded once).
    let ds = Dataset::generate(&DatasetConfig::new(DatasetKind::GeolifeLike, 400, 11));
    let params = MetricParams::default();
    let metric = Metric::Hausdorff;
    let dmat = ds.train_distance_matrix(metric, &params, 2);
    let model = ModelKind::TmnNm.build(&ModelConfig { dim: 32, seed: 2 });
    let cfg = TrainConfig { epochs: 5, ..Default::default() };
    let mut trainer = Trainer::new(
        model.as_ref(), &ds.train, &dmat, metric, params, Box::new(RankSampler), cfg, None,
    );
    println!("training TMN-NM under {metric}...");
    trainer.train();

    // 2. Embed the whole test database once.
    let t0 = Instant::now();
    let embeddings = encode_all(model.as_ref(), &ds.test, 64);
    println!(
        "embedded {} trajectories in {:.2}s ({:.5}s each)",
        embeddings.len(),
        t0.elapsed().as_secs_f64(),
        t0.elapsed().as_secs_f64() / embeddings.len() as f64
    );

    // 3. Index with HNSW.
    let mut rng = StdRng::seed_from_u64(3);
    let mut index = Hnsw::new(32, HnswConfig::default());
    let t1 = Instant::now();
    for e in &embeddings {
        index.insert(e, &mut rng);
    }
    println!("built HNSW over {} vectors in {:.2}s", index.len(), t1.elapsed().as_secs_f64());

    // 4. Query: indexed vs brute force, measuring recall and speed.
    let k = 10;
    let queries: Vec<usize> = (0..50).collect();
    let t2 = Instant::now();
    let hnsw_results: Vec<Vec<usize>> = queries
        .iter()
        .map(|&q| index.knn(&embeddings[q], k + 1).into_iter().map(|(i, _)| i).filter(|&i| i != q).take(k).collect())
        .collect();
    let hnsw_time = t2.elapsed().as_secs_f64();

    let t3 = Instant::now();
    let brute_results: Vec<Vec<usize>> = queries
        .iter()
        .map(|&q| {
            let row: Vec<f64> =
                embeddings.iter().map(|e| tmn::eval::embedding_distance(&embeddings[q], e)).collect();
            top_k_indices(&row, k, q)
        })
        .collect();
    let brute_time = t3.elapsed().as_secs_f64();

    let mut hits = 0usize;
    for (h, b) in hnsw_results.iter().zip(&brute_results) {
        hits += h.iter().filter(|x| b.contains(x)).count();
    }
    println!(
        "HNSW vs brute force: recall@{k} = {:.3}, {:.4}s vs {:.4}s for {} queries",
        hits as f64 / (k * queries.len()) as f64,
        hnsw_time,
        brute_time,
        queries.len()
    );

    // 5. Quality against the exact metric.
    let test_dmat = ds.test_distance_matrix(metric, &params, 2);
    let pred: Vec<Vec<f64>> = queries
        .iter()
        .map(|&q| embeddings.iter().map(|e| tmn::eval::embedding_distance(&embeddings[q], e)).collect())
        .collect();
    let truth: Vec<Vec<f64>> = queries.iter().map(|&q| test_dmat.row(q).to_vec()).collect();
    println!("search quality vs exact {metric}: {}", evaluate(&pred, &truth, &queries));
}
