//! Figure 1 companion: print the point match pairs that DTW (and LCSS)
//! induce between two trajectories — the cross-trajectory correspondence
//! information TMN's matching mechanism learns to imitate.
//!
//! Run with: `cargo run --release --example matching_visualizer`

use tmn::prelude::*;
use tmn::traj::metrics::{
    dtw_matching, erp_alignment, frechet_matching, hausdorff_witness, lcss_matching, EditOp,
};

/// Render two trajectories and their match pairs on an ASCII canvas.
fn render(a: &Trajectory, b: &Trajectory, pairs: &[(usize, usize)]) -> String {
    const W: usize = 64;
    const H: usize = 18;
    let all: Vec<Point> = a.points().iter().chain(b.points()).copied().collect();
    let (min_x, max_x) = all.iter().fold((f64::MAX, f64::MIN), |(lo, hi), p| (lo.min(p.lon), hi.max(p.lon)));
    let (min_y, max_y) = all.iter().fold((f64::MAX, f64::MIN), |(lo, hi), p| (lo.min(p.lat), hi.max(p.lat)));
    let to_cell = |p: &Point| {
        let x = ((p.lon - min_x) / (max_x - min_x).max(1e-12) * (W - 1) as f64).round() as usize;
        let y = ((p.lat - min_y) / (max_y - min_y).max(1e-12) * (H - 1) as f64).round() as usize;
        (x.min(W - 1), (H - 1) - y.min(H - 1))
    };
    let mut canvas = vec![vec![' '; W]; H];
    // Match lines first so the points draw over them.
    for &(i, j) in pairs {
        let (x0, y0) = to_cell(&a[i]);
        let (x1, y1) = to_cell(&b[j]);
        let steps = x0.abs_diff(x1).max(y0.abs_diff(y1)).max(1);
        for s in 0..=steps {
            let x = x0 as f64 + (x1 as f64 - x0 as f64) * s as f64 / steps as f64;
            let y = y0 as f64 + (y1 as f64 - y0 as f64) * s as f64 / steps as f64;
            let cell = &mut canvas[y.round() as usize][x.round() as usize];
            if *cell == ' ' {
                *cell = '.';
            }
        }
    }
    for p in a.points() {
        let (x, y) = to_cell(p);
        canvas[y][x] = 'a';
    }
    for p in b.points() {
        let (x, y) = to_cell(p);
        canvas[y][x] = 'b';
    }
    canvas.into_iter().map(|row| row.into_iter().collect::<String>()).collect::<Vec<_>>().join("\n")
}

fn main() {
    // Two roughly parallel trajectories with different sampling rates, like
    // the pair in the paper's Figure 1.
    let ta: Trajectory = (0..12)
        .map(|i| {
            let t = i as f64 / 11.0;
            Point::new(t, 0.35 + 0.25 * (t * std::f64::consts::PI).sin())
        })
        .collect();
    let tb: Trajectory = (0..8)
        .map(|i| {
            let t = i as f64 / 7.0;
            Point::new(t, 0.12 + 0.18 * (t * std::f64::consts::PI).sin())
        })
        .collect();

    let (dtw_d, dtw_pairs) = dtw_matching(&ta, &tb);
    println!("DTW distance {dtw_d:.4}; matched point pairs (i of T_a -> j of T_b):");
    println!("  {dtw_pairs:?}");
    println!("{}\n", render(&ta, &tb, &dtw_pairs));

    let (fr_d, fr_pairs) = frechet_matching(&ta, &tb);
    println!("Discrete Frechet distance {fr_d:.4} with coupling of {} steps", fr_pairs.len());

    let (l, lcss_pairs) = lcss_matching(&ta, &tb, 0.3);
    println!("LCSS length {l} (eps=0.3); common-subsequence pairs: {lcss_pairs:?}");

    let (erp_d, ops) = erp_alignment(&ta, &tb, Point::new(0.0, 0.0));
    let aligned = ops.iter().filter(|o| matches!(o, EditOp::Align(_, _))).count();
    let gaps = ops.len() - aligned;
    println!("ERP distance {erp_d:.4}: {aligned} aligned pairs, {gaps} gap edits");

    let (h_d, w) = hausdorff_witness(&ta, &tb);
    println!(
        "Hausdorff distance {h_d:.4}, realized by point {} of {} matched to point {} of the other",
        w.i,
        if w.from_a { "T_a" } else { "T_b" },
        w.j
    );

    // The learned counterpart: TMN's attention weights over T_b for each
    // point of T_a (untrained network — the *mechanism*, not the fit).
    let model = tmn::core::Tmn::new(&ModelConfig { dim: 16, seed: 5 }, true);
    let batch = PairBatch::build(&[&ta], &[&tb]);
    let enc = model.encode_pairs(&batch);
    println!(
        "\nTMN encodes the pair jointly: representation shape {:?} per side (last row = trajectory vector)",
        enc.out_a.shape()
    );
}
