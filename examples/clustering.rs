//! Trajectory clustering over learned embeddings — another application the
//! paper's introduction motivates. K-means over O(d) vectors replaces
//! quadratic exact-metric clustering.
//!
//! Run with: `cargo run --release --example clustering`

use tmn::prelude::*;

/// Plain k-means over `f32` vectors; returns (assignments, inertia).
fn kmeans(data: &[Vec<f32>], k: usize, iters: usize, seed: u64) -> (Vec<usize>, f64) {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    assert!(k >= 1 && k <= data.len());
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..data.len()).collect();
    idx.shuffle(&mut rng);
    let mut centroids: Vec<Vec<f32>> = idx[..k].iter().map(|&i| data[i].clone()).collect();
    let mut assign = vec![0usize; data.len()];
    let dim = data[0].len();
    for _ in 0..iters {
        // Assignment step.
        for (i, v) in data.iter().enumerate() {
            let mut best = (0usize, f64::INFINITY);
            for (c, centre) in centroids.iter().enumerate() {
                let d = tmn::eval::embedding_distance(v, centre);
                if d < best.1 {
                    best = (c, d);
                }
            }
            assign[i] = best.0;
        }
        // Update step.
        let mut sums = vec![vec![0.0f32; dim]; k];
        let mut counts = vec![0usize; k];
        for (v, &c) in data.iter().zip(&assign) {
            counts[c] += 1;
            for (s, x) in sums[c].iter_mut().zip(v) {
                *s += x;
            }
        }
        for (c, (sum, &count)) in sums.iter().zip(&counts).enumerate() {
            if count > 0 {
                centroids[c] = sum.iter().map(|s| s / count as f32).collect();
            }
        }
    }
    let inertia: f64 = data
        .iter()
        .zip(&assign)
        .map(|(v, &c)| tmn::eval::embedding_distance(v, &centroids[c]).powi(2))
        .sum();
    (assign, inertia)
}

fn main() {
    // Three planted fleets: trajectories running along three distinct
    // corridors, plus noise.
    let corridors = [(0.15f64, 0.2f64), (0.5, 0.55), (0.85, 0.8)];
    let mut trajs: Vec<Trajectory> = Vec::new();
    let mut labels: Vec<usize> = Vec::new();
    for (label, &(y0, y1)) in corridors.iter().enumerate() {
        for j in 0..40 {
            let wobble = (j as f64 * 0.37).sin() * 0.03;
            let t: Trajectory = (0..24)
                .map(|i| {
                    let s = i as f64 / 23.0;
                    Point::new(s, y0 + (y1 - y0) * s + wobble * (s * 9.0).cos())
                })
                .collect();
            trajs.push(t);
            labels.push(label);
        }
    }

    // Train an independent encoder under Hausdorff on an interleaved sample
    // (every 4th trajectory, so all three corridors are represented).
    let params = MetricParams::default();
    let metric = Metric::Hausdorff;
    let train: Vec<Trajectory> = trajs.iter().step_by(4).cloned().collect();
    let train = &train[..];
    let dmat = DistanceMatrix::compute(train, metric, &params, 2);
    let model = ModelKind::TmnNm.build(&ModelConfig { dim: 16, seed: 8 });
    let cfg = TrainConfig { epochs: 4, ..Default::default() };
    let mut trainer =
        Trainer::new(model.as_ref(), train, &dmat, metric, params, Box::new(RankSampler), cfg, None);
    println!("training encoder under {metric} on {} trajectories...", train.len());
    trainer.train();

    // Embed everything, cluster with k-means.
    let embeddings = encode_all(model.as_ref(), &trajs, 64);
    let (assign, inertia) = kmeans(&embeddings, 3, 25, 1);
    println!("k-means over embeddings: inertia {inertia:.4}");

    // Purity: fraction of points whose cluster's majority label matches.
    let mut majority = [[0usize; 3]; 3];
    for (&a, &l) in assign.iter().zip(&labels) {
        majority[a][l] += 1;
    }
    let pure: usize = majority.iter().map(|row| row.iter().max().unwrap()).sum();
    let purity = pure as f64 / trajs.len() as f64;
    println!("cluster purity vs planted corridors: {purity:.3}");
    for (c, row) in majority.iter().enumerate() {
        println!("  cluster {c}: corridor counts {row:?}");
    }
    assert!(purity > 0.9, "embeddings failed to separate the planted corridors");
}
