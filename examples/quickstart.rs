//! Quickstart: train TMN on a small synthetic Porto-like dataset under DTW
//! and run a top-k similarity search.
//!
//! Run with: `cargo run --release --example quickstart`

use tmn::prelude::*;

fn main() {
    // 1. Data: 300 taxi-like trajectories, 20% train / 80% test, normalized.
    println!("generating Porto-like dataset...");
    let ds = Dataset::generate(&DatasetConfig::new(DatasetKind::PortoLike, 300, 7));
    println!("  train {}, test {}", ds.train.len(), ds.test.len());

    // 2. Ground truth: DTW distance matrix over the training set.
    let params = MetricParams::default();
    let metric = Metric::Dtw;
    println!("computing ground-truth {metric} distances...");
    let dmat = ds.train_distance_matrix(metric, &params, 2);

    // 3. Train TMN with the paper's recipe (rank sampling, weighted MSE +
    //    sub-trajectory loss).
    let model = ModelKind::Tmn.build(&ModelConfig { dim: 32, seed: 1 });
    let cfg = TrainConfig { epochs: 6, ..Default::default() };
    let mut trainer = Trainer::new(
        model.as_ref(),
        &ds.train,
        &dmat,
        metric,
        params,
        Box::new(RankSampler),
        cfg.clone(),
        None,
    );
    println!("training TMN (d=32, {} epochs)...", cfg.epochs);
    let stats = trainer.train();
    for e in &stats.epochs {
        println!("  epoch {}: loss {:.5} ({:.1}s, {} pairs)", e.epoch, e.loss, e.seconds, e.pairs);
    }

    // 4. Evaluate: top-k similarity search on the test set.
    println!("evaluating top-k similarity search on {} queries...", 30);
    let queries: Vec<usize> = (0..30).collect();
    let pred = predicted_distance_rows(model.as_ref(), &ds.test, &queries, 64);
    let test_dmat = ds.test_distance_matrix(metric, &params, 2);
    let truth: Vec<Vec<f64>> = queries.iter().map(|&q| test_dmat.row(q).to_vec()).collect();
    let eval = evaluate(&pred, &truth, &queries);
    println!("  {eval}");

    // 5. One concrete query: learned top-5 vs exact top-5.
    let q = 0usize;
    let learned = top_k_indices(&pred[0], 5, q);
    let exact = top_k_indices(test_dmat.row(q), 5, q);
    println!("query {q}: learned top-5 {learned:?} vs exact top-5 {exact:?}");
    let hits = learned.iter().filter(|i| exact.contains(i)).count();
    println!("  {hits}/5 recovered by the learned index");
}
