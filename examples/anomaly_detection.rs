//! Continuous trajectory monitoring — the streaming face of the
//! anomaly-detection application the paper's introduction motivates.
//!
//! A fleet's historical routes sit in the serving index; live movers
//! arrive one GPS point at a time. Each appended point costs one
//! incremental RNN step (`append_point`), keeping every mover's
//! embedding — and its slot in the index — current. Every mover has an
//! *assigned* route (the fleet schedule), and the monitor scores the
//! mover's last few points by exact windowed DTW against the aligned
//! stretch of that assignment; sustained divergence fires a live alert.
//! At alert time the index answers the dispatch question — "what does
//! this mover's behaviour resemble now?" — with a sliding-window
//! similarity query (`query_window`) over the live embedding. The exact
//! prefix oracle (`prefix_distances`) then pins down *when* the flagged
//! trajectory diverged.
//!
//! Run with: `cargo run --release --example anomaly_detection`

use std::time::Instant;
use tmn::prelude::*;
use tmn_serve::{ServeConfig, ServeEngine, ShardSetConfig};

/// Sliding window (points) the live queries embed and the refine scores.
const WINDOW: usize = 16;
const PROBE_EVERY: usize = 4;

/// Deterministic GPS jitter in [-amp, amp].
fn jitter(seed: u64, amp: f64) -> f64 {
    let h = tmn_index::splitmix64(seed);
    ((h % 10_000) as f64 / 10_000.0 * 2.0 - 1.0) * amp
}

fn main() {
    // 1. Historical fleet + live movers. Clean movers re-drive a known
    //    route under GPS jitter; anomalous movers follow a route for 15
    //    points and are then hijacked onto an erratic oscillation no
    //    road-bound taxi produces.
    let ds = Dataset::generate(&DatasetConfig::new(DatasetKind::PortoLike, 300, 23));
    // Movers re-drive routes long enough that the monitor sees full clean
    // windows before any hijack (generated lengths span 16..96 points).
    let long_routes: Vec<usize> =
        (0..ds.test.len()).filter(|&i| ds.test[i].len() >= 2 * WINDOW).collect();
    // Fleet context: every mover has an *assigned* route (a schedule);
    // the monitor scores live windows against the assignment.
    let route_id = |m: usize| long_routes[(m * 7 + 1) % long_routes.len()];
    let route = |m: usize| &ds.test[route_id(m)];
    let n_clean = 9usize;
    let n_anomalies = 3usize;
    let mut movers: Vec<Trajectory> = Vec::new();
    for m in 0..n_clean {
        movers.push(
            route(m)
                .points()
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    let s = (m * 1000 + i) as u64;
                    Point::new(p.lon + jitter(s, 2e-3), p.lat + jitter(s ^ 0xabcd, 2e-3))
                })
                .collect(),
        );
    }
    for k in 0..n_anomalies {
        let src = route(n_clean + k);
        let hijack_at = (src.len() * 3 / 4).max(WINDOW + 4);
        let mut t: Vec<Point> = src.points()[..hijack_at.min(src.len())]
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let s = ((n_clean + k) * 1000 + i) as u64;
                Point::new(p.lon + jitter(s, 2e-3), p.lat + jitter(s ^ 0xabcd, 2e-3))
            })
            .collect();
        let freq = 2.0 + k as f64 * 1.5;
        for i in 0..20 {
            let s = i as f64 / 19.0;
            let osc = (s * freq * std::f64::consts::TAU + k as f64).sin() * 0.5 + 0.5;
            t.push(Point::new(osc, 1.0 - osc * (0.7 + 0.05 * k as f64)));
        }
        movers.push(Trajectory::new(t));
    }

    // 2. Train an encoder on the (clean) training set; its embeddings
    //    drive the index the filter stage queries.
    let params = MetricParams::default();
    let metric = Metric::Dtw;
    let dmat = ds.train_distance_matrix(metric, &params, 2);
    let model_cfg = ModelConfig { dim: 32, seed: 4 };
    let model = ModelKind::TmnNm.build(&model_cfg);
    let cfg = TrainConfig { epochs: 5, ..Default::default() };
    let mut trainer = Trainer::new(
        model.as_ref(), &ds.train, &dmat, metric, params, Box::new(RankSampler), cfg, None,
    );
    println!("training encoder under {metric}...");
    trainer.train();
    drop(trainer);
    let weights = tmn_core::checkpoint::save_params(model.params());

    // 3. Stand up the serving engine over the historical corpus with the
    //    trained weights. A small reembed_min_delta skips index churn
    //    while a mover's embedding is only jittering.
    tmn_obs::metrics::set_enabled(true);
    tmn_obs::metrics::reset();
    let engine = ServeEngine::start_with_params(
        ModelKind::TmnNm,
        &model_cfg,
        ServeConfig {
            shard: ShardSetConfig { shards: 2, shortlist: 48, ..Default::default() },
            max_batch: 16,
            reembed_min_delta: 1e-3,
        },
        weights.to_vec(),
    )
    .expect("start serving engine");
    let h = engine.handle();
    for (id, t) in ds.test.iter().enumerate() {
        h.insert(id as u64, t.clone()).expect("historical insert");
    }

    // 4. The monitoring loop. Every appended point steps the live
    //    embedding (one incremental RNN step inside the engine); every
    //    few points the monitor scores the mover's last WINDOW points by
    //    exact DTW against the index-aligned stretch of its assigned
    //    route. When sustained divergence crosses the flag threshold the
    //    alert fires *live*, and the serving index answers the dispatch
    //    question — "what does this mover's behaviour resemble now?" —
    //    via a sliding-window similarity query over the live embedding.
    let t0 = Instant::now();
    let mut appends = 0usize;
    let mut live: Vec<Trajectory> = vec![Trajectory::default(); movers.len()];
    let mut scores = vec![0.0f64; movers.len()];
    let mut best = vec![f64::INFINITY; movers.len()];
    let mut alerted = vec![false; movers.len()];
    let window_dtw = |a: &Trajectory, b_full: &Trajectory, upto: usize| {
        let b = b_full.prefix(upto.min(b_full.len())).last_window(WINDOW);
        metric.distance(&a.last_window(WINDOW), &b, &params) / WINDOW as f64
    };
    // The flag signature is *relative*: a mover that tracked its route
    // closely (low `best`) and sustainedly no longer does. One odd window
    // is GPS noise; the exponential smoothing rides those out.
    let is_flagged = |score: f64, best: f64| score > 0.05 && score > 15.0 * best.max(1e-4);
    let max_len = movers.iter().map(|t| t.len()).max().unwrap();
    for step in 0..max_len {
        for (m, t) in movers.iter().enumerate() {
            if step >= t.len() {
                continue;
            }
            let id = 10_000 + m as u64;
            h.append_point(id, t[step]).expect("append");
            live[m].push(t[step]);
            appends += 1;
            if step + 1 < WINDOW || (step + 1) % PROBE_EVERY != 0 {
                continue;
            }
            let score = window_dtw(&live[m], &ds.test[route_id(m)], step + 1);
            best[m] = best[m].min(score);
            scores[m] = 0.5 * scores[m] + 0.5 * score;
            if is_flagged(scores[m], best[m]) && !alerted[m] {
                alerted[m] = true;
                let hits = h.query_window(id, WINDOW, 3).expect("window query");
                let near: Vec<u64> =
                    hits.iter().map(|&(hid, _)| hid).filter(|&hid| hid < 10_000).collect();
                println!(
                    "  ALERT at point {}: mover {m} left route #{} \
                     (divergence {:.4}, was {:.4}); behaviour now nearest routes {:?}",
                    step + 1,
                    route_id(m),
                    scores[m],
                    best[m],
                    near
                );
            }
        }
    }
    let monitor_secs = t0.elapsed().as_secs_f64();
    let snap = tmn_obs::metrics::snapshot();
    println!(
        "replayed {appends} points across {} movers in {monitor_secs:.2}s \
         ({} of {} appends re-indexed under reembed_min_delta)",
        movers.len(),
        snap.counter(tmn_serve::STREAM_REINDEX_TOTAL).unwrap_or(0),
        snap.counter(tmn_serve::STREAM_APPENDS_TOTAL).unwrap_or(0),
    );

    // 5. Recap the final state and assert the alerts landed exactly on
    //    the hijacked movers — no false alarms on jittering clean movers.
    println!("movers by sustained window divergence from their assigned route:");
    let mut ranked: Vec<usize> = (0..movers.len()).collect();
    ranked.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());
    for &m in &ranked {
        let marker = if m >= n_clean { "  <-- injected" } else { "" };
        let flag = if alerted[m] { " FLAGGED" } else { "" };
        println!(
            "  mover {m}: {:.5} (best while tracking {:.5}, route #{}){flag}{marker}",
            scores[m],
            best[m],
            route_id(m)
        );
    }
    let flagged: Vec<usize> = (0..movers.len()).filter(|&m| alerted[m]).collect();
    assert_eq!(
        flagged,
        (n_clean..n_clean + n_anomalies).collect::<Vec<_>>(),
        "continuous monitor must flag exactly the hijacked movers"
    );

    // 6. The exact prefix oracle pins down *when* the first flagged mover
    //    left its route: per-step prefix-DTW stays at jitter level until
    //    the hijack point, then grows.
    let m = flagged[0];
    let hist = &ds.test[route_id(m)];
    let curve = prefix_distances(metric, &movers[m], hist, 5, &params);
    println!("exact prefix-{metric} oracle, mover {m} vs route #{}:", route_id(m));
    for &(i, d) in &curve {
        println!("  first {i:>2} points: {:.5} per step", d / i as f64);
    }
    let per_step: Vec<f64> = curve.iter().map(|&(i, d)| d / i as f64).collect();
    assert!(
        per_step.last().unwrap() > &(per_step.first().unwrap() * 10.0),
        "hijacked mover's exact divergence did not grow: {per_step:?}"
    );

    engine.shutdown();
}
