//! Trajectory anomaly detection with a filter-and-refine pipeline — one of
//! the applications the paper's introduction motivates.
//!
//! A trajectory whose distance to its nearest neighbours is unusually large
//! is an outlier. Computing exact k-NN distances costs O(N²) dynamic
//! programs; this example uses the learned embeddings as a *filter* (O(d)
//! per candidate) to shortlist neighbours and verifies only the shortlist
//! with exact DTW — the classic two-stage speedup that trajectory
//! embeddings enable, robust even when an outlier embeds unpredictably.
//!
//! Run with: `cargo run --release --example anomaly_detection`

use std::time::Instant;
use tmn::prelude::*;

fn main() {
    // 1. A Porto-like taxi fleet plus a few injected anomalies: erratic
    //    high-frequency oscillations no road-bound taxi produces.
    let mut ds = Dataset::generate(&DatasetConfig::new(DatasetKind::PortoLike, 300, 23));
    let n_anomalies = 3;
    let mut anomaly_ids = Vec::new();
    for k in 0..n_anomalies {
        let freq = 2.0 + k as f64 * 1.5;
        let t: Trajectory = (0..30)
            .map(|i| {
                let s = i as f64 / 29.0;
                let osc = (s * freq * std::f64::consts::TAU + k as f64).sin() * 0.5 + 0.5;
                Point::new(osc, 1.0 - osc * (0.7 + 0.05 * k as f64))
            })
            .collect();
        anomaly_ids.push(ds.test.len());
        ds.test.push(t);
    }

    // 2. Train an encoder on the (clean) training set.
    let params = MetricParams::default();
    let metric = Metric::Dtw;
    let dmat = ds.train_distance_matrix(metric, &params, 2);
    let model = ModelKind::TmnNm.build(&ModelConfig { dim: 32, seed: 4 });
    let cfg = TrainConfig { epochs: 5, ..Default::default() };
    let mut trainer = Trainer::new(
        model.as_ref(), &ds.train, &dmat, metric, params, Box::new(RankSampler), cfg, None,
    );
    println!("training encoder under {metric}...");
    trainer.train();

    // 3. Filter: embed everything once; shortlist each trajectory's k
    //    embedding-nearest candidates.
    let k = 8;
    let t0 = Instant::now();
    let embeddings = encode_all(model.as_ref(), &ds.test, 64);
    let shortlists: Vec<Vec<usize>> = (0..ds.test.len())
        .map(|i| {
            let row: Vec<f64> = embeddings
                .iter()
                .map(|e| tmn::eval::embedding_distance(&embeddings[i], e))
                .collect();
            top_k_indices(&row, k, i)
        })
        .collect();
    let filter_secs = t0.elapsed().as_secs_f64();

    // 4. Refine: exact DTW only against the shortlist (N·k programs instead
    //    of N²/2). The anomaly score is the mean refined distance, divided
    //    by the alignment length so long routes are not penalized (DTW sums
    //    over at least max(m, n) matched pairs).
    let t1 = Instant::now();
    let scores: Vec<f64> = shortlists
        .iter()
        .enumerate()
        .map(|(i, nn)| {
            nn.iter()
                .map(|&j| {
                    let d = metric.distance(&ds.test[i], &ds.test[j], &params);
                    d / ds.test[i].len().max(ds.test[j].len()) as f64
                })
                .sum::<f64>()
                / k as f64
        })
        .collect();
    let refine_secs = t1.elapsed().as_secs_f64();
    let n = ds.test.len();
    println!(
        "filter {filter_secs:.2}s + refine {refine_secs:.2}s over {} exact DTWs (full exact k-NN would need {})",
        n * k,
        n * (n - 1) / 2
    );

    // 5. Report: the injected anomalies must top the score ranking.
    let mut ranked: Vec<usize> = (0..scores.len()).collect();
    ranked.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());
    let top = &ranked[..n_anomalies * 2];
    let caught = anomaly_ids.iter().filter(|id| top.contains(id)).count();
    println!("injected {n_anomalies} anomalies; {caught} appear in the top {} outlier scores", top.len());
    println!("top outliers (index, mean per-step refined DTW to shortlist):");
    for &i in &ranked[..8] {
        let marker = if anomaly_ids.contains(&i) { "  <-- injected" } else { "" };
        println!("  #{i}: {:.4}{marker}", scores[i]);
    }
    assert!(
        caught == n_anomalies,
        "filter-and-refine failed to expose the injected anomalies"
    );
}
