//! Training against a *user-defined* distance metric — the paper argues
//! learning-based models are generic: a new metric needs no architecture
//! change, only new ground truth. This example defines an
//! endpoint-weighted route distance (origin/destination matter three times
//! as much as the path, a common taxi-analytics notion), builds its
//! distance matrix, and trains TMN against it.
//!
//! Run with: `cargo run --release --example custom_metric`

use tmn::prelude::*;

/// Custom metric: symmetric sum of endpoint distances (weighted 3×) plus
/// the Hausdorff distance of the interiors.
fn endpoint_weighted(a: &Trajectory, b: &Trajectory) -> f64 {
    let ends = a[0].dist(&b[0]) + a[a.len() - 1].dist(&b[b.len() - 1]);
    let params = MetricParams::default();
    3.0 * ends + Metric::Hausdorff.distance(a, b, &params)
}

fn main() {
    let ds = Dataset::generate(&DatasetConfig::new(DatasetKind::PortoLike, 250, 31));
    let n = ds.train.len();

    // 1. Ground truth for the custom metric: any pairwise function can fill
    //    a DistanceMatrix via from_raw.
    println!("computing custom endpoint-weighted ground truth over {n} training trajectories...");
    let mut raw = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = endpoint_weighted(&ds.train[i], &ds.train[j]);
            raw[i * n + j] = d;
            raw[j * n + i] = d;
        }
    }
    let dmat = DistanceMatrix::from_raw(n, raw);

    // 2. Train TMN against it. The architecture is untouched; the
    //    sub-trajectory loss is disabled because prefix ground truth for a
    //    custom metric is the caller's responsibility.
    let model = ModelKind::Tmn.build(&ModelConfig { dim: 32, seed: 6 });
    let cfg = TrainConfig { epochs: 5, use_sub_loss: false, ..Default::default() };
    // `metric` here only selects α and (unused) prefix computation.
    let mut trainer = Trainer::new(
        model.as_ref(),
        &ds.train,
        &dmat,
        Metric::Hausdorff,
        MetricParams::default(),
        Box::new(RankSampler),
        cfg,
        Some(8.0),
    );
    println!("training TMN against the custom metric...");
    let stats = trainer.train();
    println!("final loss {:.5}", stats.final_loss());

    // 3. Evaluate against the custom metric's own ranking on the test set.
    let queries: Vec<usize> = (0..25).collect();
    let pred = predicted_distance_rows(model.as_ref(), &ds.test, &queries, 64);
    let truth: Vec<Vec<f64>> = queries
        .iter()
        .map(|&q| ds.test.iter().map(|t| endpoint_weighted(&ds.test[q], t)).collect())
        .collect();
    let eval = evaluate(&pred, &truth, &queries);
    println!("top-k search vs custom metric: {eval}");
    assert!(
        eval.hr10 > 0.15,
        "model failed to learn the custom metric (HR-10 {})",
        eval.hr10
    );
}
