//! Locks in the documented histogram quantile error bound against an exact
//! sorted-sample oracle, plus the edge cases the bound's wording carves
//! out: single-bucket inputs (exact), sub-16ns linear region (exact), and
//! the overflow bucket (reports the exact max, bound not applicable).
//!
//! The registry-level cross-thread merge determinism test lives in
//! `src/metrics.rs`; here we also check that *partial-histogram* merges are
//! bitwise order-independent under arbitrary partitions.

use proptest::prelude::*;
use tmn_obs::metrics::{bucket_bounds, bucket_index, Histogram, OVERFLOW_THRESHOLD_NS, SUB_BUCKETS};

/// Exact order statistic matching `Histogram::quantile`'s rank definition:
/// the rank-`ceil(q·n)` smallest sample (1-based, clamped to ≥ 1).
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Assert the documented bound: estimate never undershoots the exact order
/// statistic and overshoots by at most 1/SUB_BUCKETS relative.
fn assert_within_bound(est: u64, exact: u64, q: f64) {
    assert!(est >= exact, "q={q}: estimate {est} undershoots exact {exact}");
    let overshoot = (est - exact) as f64;
    assert!(
        overshoot <= exact as f64 / SUB_BUCKETS as f64,
        "q={q}: estimate {est} overshoots exact {exact} beyond 1/{SUB_BUCKETS}"
    );
}

const QS: [f64; 6] = [0.0, 0.5, 0.9, 0.95, 0.99, 1.0];

/// Samples spanning several octaves without hitting the overflow bucket.
fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    let small = prop::collection::vec(0u64..64, 1..=40);
    let mid = prop::collection::vec(1_000u64..10_000_000, 1..=120);
    let wide = prop::collection::vec(0u64..OVERFLOW_THRESHOLD_NS, 1..=120);
    prop_oneof![small, mid, wide]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Quantile estimates stay within the documented 1/16 relative bound
    /// of the exact sorted-sample order statistic, at every quantile.
    #[test]
    fn quantiles_match_oracle_within_bucket_error(samples in arb_samples()) {
        let mut h = Histogram::new();
        samples.iter().for_each(|&v| h.observe(v));
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in QS {
            assert_within_bound(h.quantile(q), oracle_quantile(&sorted, q), q);
        }
        prop_assert_eq!(h.count(), sorted.len() as u64);
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
        prop_assert_eq!(h.sum(), sorted.iter().sum::<u64>());
    }

    /// Single-bucket edge case: when every sample is the same value, every
    /// quantile is exact (the estimate clamps to the tracked max).
    #[test]
    fn constant_samples_give_exact_quantiles(v in 0u64..OVERFLOW_THRESHOLD_NS, n in 1usize..=50) {
        let mut h = Histogram::new();
        (0..n).for_each(|_| h.observe(v));
        for q in QS {
            prop_assert_eq!(h.quantile(q), v, "constant input must be exact at q={}", q);
        }
    }

    /// Linear-region edge case: below 16 ns every bucket holds one integer,
    /// so quantiles are exact, not just within the bound.
    #[test]
    fn sub_octave_values_are_exact(samples in prop::collection::vec(0u64..SUB_BUCKETS, 1..=60)) {
        let mut h = Histogram::new();
        samples.iter().for_each(|&v| h.observe(v));
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in QS {
            prop_assert_eq!(h.quantile(q), oracle_quantile(&sorted, q));
        }
    }

    /// Overflow edge case: quantiles that land in the overflow bucket
    /// report the exact observed maximum.
    #[test]
    fn overflow_bucket_reports_exact_max(
        extra in 0u64..1_000_000,
        n in 1usize..=20,
    ) {
        let mut h = Histogram::new();
        let base = OVERFLOW_THRESHOLD_NS + extra;
        for i in 0..n as u64 {
            h.observe(base + i * 997);
        }
        let max = base + (n as u64 - 1) * 997;
        for q in QS {
            prop_assert_eq!(h.quantile(q), max, "overflowed quantile must be the exact max");
        }
        prop_assert_eq!(h.count(), n as u64);
    }

    /// Mixed regular + overflow samples: quantiles below the overflow mass
    /// still honor the bound; those inside it return the exact max.
    #[test]
    fn mixed_overflow_keeps_bound_below_threshold(
        low in prop::collection::vec(1_000u64..1_000_000, 10..=60),
        high in prop::collection::vec(OVERFLOW_THRESHOLD_NS..u64::MAX / 2, 1..=5),
    ) {
        let mut h = Histogram::new();
        low.iter().chain(high.iter()).for_each(|&v| h.observe(v));
        let mut sorted: Vec<u64> = low.iter().chain(high.iter()).copied().collect();
        sorted.sort_unstable();
        for q in QS {
            let exact = oracle_quantile(&sorted, q);
            let est = h.quantile(q);
            if exact >= OVERFLOW_THRESHOLD_NS {
                prop_assert_eq!(est, *sorted.last().unwrap());
            } else {
                assert_within_bound(est, exact, q);
            }
        }
    }

    /// Merging any partition of the samples, in any order, yields a
    /// histogram identical to observing them directly — exact merge.
    #[test]
    fn partitioned_merge_is_exact_and_order_independent(
        samples in prop::collection::vec(0u64..100_000_000, 2..=150),
        parts in 2usize..=5,
        reverse in prop_oneof![Just(false), Just(true)],
    ) {
        let mut direct = Histogram::new();
        samples.iter().for_each(|&v| direct.observe(v));

        let mut shards = vec![Histogram::new(); parts];
        for (i, &v) in samples.iter().enumerate() {
            shards[i % parts].observe(v);
        }
        if reverse {
            shards.reverse();
        }
        let mut merged = Histogram::new();
        shards.iter().for_each(|s| merged.merge(s));
        prop_assert_eq!(&merged, &direct, "merge must be exact under any partition/order");
        for q in QS {
            prop_assert_eq!(merged.quantile(q), direct.quantile(q));
        }
    }

    /// The index/bounds pair is consistent for arbitrary values: every
    /// value falls inside the bounds of its own bucket.
    #[test]
    fn value_lies_within_its_bucket_bounds(v in 0u64..OVERFLOW_THRESHOLD_NS) {
        let (lo, hi) = bucket_bounds(bucket_index(v));
        prop_assert!(lo <= v && v < hi, "{v} outside its bucket [{lo}, {hi})");
    }
}

/// Observations split across real threads through thread-local histograms,
/// merged into one — equals the serial histogram bit-for-bit regardless of
/// thread scheduling.
#[test]
fn threaded_partial_histograms_merge_deterministically() {
    let vals: Vec<u64> = (0..400u64).map(|i| (i * i * 31 + 17) % 50_000_000).collect();
    let mut serial = Histogram::new();
    vals.iter().for_each(|&v| serial.observe(v));

    for _ in 0..3 {
        let shards: Vec<Histogram> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let chunk: Vec<u64> = vals.iter().skip(t).step_by(4).copied().collect();
                    s.spawn(move || {
                        let mut h = Histogram::new();
                        chunk.iter().for_each(|&v| h.observe(v));
                        h
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut merged = Histogram::new();
        shards.iter().for_each(|h| merged.merge(h));
        assert_eq!(merged, serial, "threaded merge must equal serial observation exactly");
    }
}
