//! Property tests for the trace ring buffer and flight recorder
//! (`tmn_obs::trace`): bounded memory at any insert count, drop-oldest
//! ordering, cross-thread span reassembly into one well-formed tree, and
//! tail-based slow-query capture that never misses a request above the
//! threshold.
//!
//! The recorder is process-global, so every test body runs under one shared
//! lock and restores the default config + disabled flag before returning.

use proptest::prelude::*;
use std::sync::Mutex;
use tmn_obs::trace;
use tmn_obs::TraceConfig;

/// Tests share the process-global recorder; serialize and clean up.
fn with_recorder<R>(cfg: TraceConfig, body: impl FnOnce() -> R) -> R {
    static LOCK: Mutex<()> = Mutex::new(());
    let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    trace::configure(cfg);
    trace::reset();
    trace::set_enabled(true);
    let out = body();
    trace::set_enabled(false);
    trace::configure(TraceConfig::default());
    trace::reset();
    out
}

/// Begin a request whose completion is driven manually with a synthetic
/// total, so properties control "how slow" each request was.
fn synthetic_request(name: &'static str, total_ns: u64) -> u64 {
    let req = trace::request_begin(name);
    let ctx = req.ctx();
    let id = req.trace_id();
    std::mem::forget(req); // suppress the natural timing-based finish
    trace::complete_request(ctx, name, 0, total_ns);
    id
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The span ring never holds more than its capacity, no matter how many
    /// spans are recorded, and accounts for every drop.
    #[test]
    fn span_ring_memory_is_bounded_at_any_insert_count(
        cap in 1usize..32,
        inserts in 0usize..200,
    ) {
        let (pending, dropped) = with_recorder(
            TraceConfig { span_ring: cap, flight: 4, slow_threshold_ns: 0, sample_every: 1 },
            || {
                let req = trace::request_begin("prop.bounded");
                let ctx = req.ctx();
                std::mem::forget(req);
                for i in 0..inserts {
                    trace::record_span(ctx, "prop.span", i as u64, 1, &[]);
                }
                let st = trace::stats();
                (st.pending_spans, st.spans_dropped)
            },
        );
        prop_assert!(pending <= cap, "ring held {pending} spans, capacity {cap}");
        prop_assert_eq!(pending, inserts.min(cap));
        prop_assert_eq!(dropped, inserts.saturating_sub(cap) as u64);
    }

    /// Overflow evicts the oldest spans: a finished trace holds exactly the
    /// newest `cap` spans, still in recording order.
    #[test]
    fn span_ring_drop_oldest_keeps_newest_in_order(
        cap in 1usize..24,
        inserts in 1usize..120,
    ) {
        let snap = with_recorder(
            TraceConfig { span_ring: cap, flight: 4, slow_threshold_ns: 0, sample_every: 1 },
            || {
                let req = trace::request_begin("prop.oldest");
                let ctx = req.ctx();
                // start_ns encodes insertion order.
                for i in 0..inserts {
                    trace::record_span(ctx, "prop.span", i as u64, 1, &[]);
                }
                req.finish();
                trace::latest().expect("slow_threshold 0 keeps every trace")
            },
        );
        let starts: Vec<u64> =
            snap.spans.iter().filter(|s| s.parent != 0).map(|s| s.start_ns).collect();
        let expect: Vec<u64> =
            (inserts.saturating_sub(cap)..inserts).map(|i| i as u64).collect();
        prop_assert_eq!(starts, expect, "survivors must be the newest spans, oldest first");
    }

    /// Spans recorded by several worker threads under one request context
    /// reassemble into a single well-formed tree: one root, every parent
    /// present, nested spans parented inside their thread's outer span.
    #[test]
    fn cross_thread_spans_reassemble_into_one_tree(
        threads in 1usize..5,
        spans_per_thread in 1usize..5,
    ) {
        let snap = with_recorder(
            TraceConfig { span_ring: 256, flight: 4, slow_threshold_ns: 0, sample_every: 1 },
            || {
                let req = trace::request_begin("prop.fanout");
                let ctx = req.ctx();
                std::thread::scope(|s| {
                    for t in 0..threads {
                        s.spawn(move || {
                            let _a = trace::attach(ctx);
                            for _ in 0..spans_per_thread {
                                let outer = trace::span("prop.outer").attr("worker", t as u64);
                                let _inner = trace::span("prop.inner");
                                drop(_inner);
                                drop(outer);
                            }
                        });
                    }
                }); // scope joins every worker before the request finishes
                req.finish();
                trace::latest().expect("slow_threshold 0 keeps every trace")
            },
        );
        prop_assert!(snap.is_well_formed(), "tree must reassemble: {:?}", snap);
        let outers = snap.spans_named("prop.outer");
        let inners = snap.spans_named("prop.inner");
        prop_assert_eq!(outers.len(), threads * spans_per_thread);
        prop_assert_eq!(inners.len(), threads * spans_per_thread);
        let root = snap.root().span;
        for o in &outers {
            prop_assert_eq!(o.parent, root, "outer spans hang off the root");
        }
        for i in &inners {
            prop_assert!(
                outers.iter().any(|o| o.span == i.parent),
                "inner span {} must nest under some outer span", i.span
            );
        }
    }

    /// Tail-based capture: every request at or above the threshold lands in
    /// the flight recorder (the ring is sized to hold them all here), and
    /// with sampling off nothing below the threshold sneaks in.
    #[test]
    fn slow_capture_never_misses_above_threshold(
        totals in prop::collection::vec(0u64..5_000, 1..40),
        threshold in 1u64..5_000,
    ) {
        let cfg = TraceConfig {
            span_ring: 64,
            flight: 64, // >= number of requests: drop-oldest cannot evict
            slow_threshold_ns: threshold,
            sample_every: 0,
        };
        let (stats, membership) = with_recorder(cfg, || {
            let ids: Vec<u64> =
                totals.iter().map(|&t| synthetic_request("prop.slow", t)).collect();
            let membership: Vec<bool> = ids.iter().map(|&id| trace::find(id).is_some()).collect();
            (trace::stats(), membership)
        });
        let slow = totals.iter().filter(|&&t| t >= threshold).count() as u64;
        prop_assert_eq!(stats.kept_slow, slow);
        prop_assert_eq!(stats.kept_sampled, 0);
        for (&total, &captured) in totals.iter().zip(&membership) {
            prop_assert_eq!(
                captured,
                total >= threshold,
                "request with total {} vs threshold {}: captured={}",
                total, threshold, captured
            );
        }
    }

    /// Count-sampling below the threshold keeps exactly every Nth request.
    #[test]
    fn count_sampling_keeps_every_nth_fast_request(
        n in 1usize..60,
        every in 1u64..9,
    ) {
        let stats = with_recorder(
            TraceConfig {
                span_ring: 64,
                flight: 64,
                slow_threshold_ns: u64::MAX,
                sample_every: every,
            },
            || {
                for _ in 0..n {
                    synthetic_request("prop.fast", 1);
                }
                trace::stats()
            },
        );
        prop_assert_eq!(stats.kept_slow, 0);
        prop_assert_eq!(stats.kept_sampled, n as u64 / every);
    }
}

/// Per-id membership check for the slow capture (plain test: needs to read
/// the flight recorder before the property harness tears it down).
#[test]
fn slow_capture_membership_is_exact() {
    let totals: Vec<u64> = vec![10, 5_000, 999, 1_000, 0, 123_456, 1_001];
    let threshold = 1_000u64;
    let cfg = TraceConfig {
        span_ring: 64,
        flight: 64,
        slow_threshold_ns: threshold,
        sample_every: 0,
    };
    with_recorder(cfg, || {
        let ids: Vec<u64> =
            totals.iter().map(|&t| synthetic_request("exact.slow", t)).collect();
        for (&id, &total) in ids.iter().zip(&totals) {
            let captured = trace::find(id);
            if total >= threshold {
                let snap = captured.unwrap_or_else(|| panic!("slow request {id} missing"));
                assert!(snap.slow, "capture must be flagged slow");
                assert_eq!(snap.total_ns, total);
            } else {
                assert!(captured.is_none(), "fast request {id} must not be captured");
            }
        }
    });
}
