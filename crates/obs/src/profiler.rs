//! Process-global op/phase profiler.
//!
//! A scope is `(name, kind)`; every completed scope adds one call, its wall
//! time, and its FLOP estimate to the registry under that key. The registry
//! is a `Mutex<HashMap>` shared by all threads — data-parallel training
//! workers and intra-op kernel threads record into the same table.
//!
//! The profiler is **off by default**. When off, [`scope`] costs one relaxed
//! atomic load and returns `None`, so instrumented hot paths stay hot; no
//! instrumentation path ever reads or writes tensor data, so enabling the
//! profiler cannot perturb numerics (locked in by
//! `crates/core/tests/profiler_invariance.rs`).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// What a recorded scope measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScopeKind {
    /// The forward computation of one tensor op.
    Forward,
    /// The backward closure of one tensor op (FLOPs estimated at 2× forward).
    Backward,
    /// A coarse non-op phase (batch assembly, optimizer step, eval stages).
    Phase,
}

impl ScopeKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            ScopeKind::Forward => "forward",
            ScopeKind::Backward => "backward",
            ScopeKind::Phase => "phase",
        }
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct Stat {
    calls: u64,
    total_ns: u64,
    flops: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<HashMap<(&'static str, ScopeKind), Stat>> {
    static REGISTRY: OnceLock<Mutex<HashMap<(&'static str, ScopeKind), Stat>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn registry_lock() -> std::sync::MutexGuard<'static, HashMap<(&'static str, ScopeKind), Stat>> {
    // A panic while holding the lock only loses profiling data; keep going.
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// Turn recording on or off for the whole process.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether scopes currently record. A single relaxed load — this is the
/// entire cost of instrumentation on the disabled path.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clear every accumulated record (does not change the enabled flag).
pub fn reset() {
    registry_lock().clear();
}

/// Add one completed measurement to the registry.
pub fn record(name: &'static str, kind: ScopeKind, ns: u64, flops: u64) {
    let mut reg = registry_lock();
    let stat = reg.entry((name, kind)).or_default();
    stat.calls += 1;
    stat.total_ns += ns;
    stat.flops += flops;
}

/// RAII measurement: created by [`scope`], records on drop.
#[must_use = "dropping the scope immediately records a ~0ns measurement"]
pub struct Scope {
    name: &'static str,
    kind: ScopeKind,
    flops: u64,
    start: Instant,
}

impl Drop for Scope {
    fn drop(&mut self) {
        record(self.name, self.kind, self.start.elapsed().as_nanos() as u64, self.flops);
    }
}

/// Start a measurement of `kind`; `None` (and no further cost) when the
/// profiler is disabled.
#[inline]
pub fn scope_kind(name: &'static str, kind: ScopeKind, flops: u64) -> Option<Scope> {
    if !is_enabled() {
        return None;
    }
    Some(Scope { name, kind, flops, start: Instant::now() })
}

/// Start a [`ScopeKind::Forward`] measurement.
#[inline]
pub fn scope(name: &'static str, flops: u64) -> Option<Scope> {
    scope_kind(name, ScopeKind::Forward, flops)
}

/// Start a [`ScopeKind::Phase`] measurement (no FLOP estimate).
#[inline]
pub fn phase(name: &'static str) -> Option<Scope> {
    scope_kind(name, ScopeKind::Phase, 0)
}

/// One aggregated registry row, serializable into `PROFILE_ops.json`.
///
/// `mean_ns` and `gflops` are derived from the raw counters at snapshot time
/// and serialized alongside them so downstream consumers (the `profile` bin's
/// table, dashboards reading the JSON) need no recomputation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpRecord {
    pub name: String,
    /// `"forward"`, `"backward"` or `"phase"`.
    pub kind: String,
    pub calls: u64,
    pub total_ns: u64,
    /// Estimated floating-point operations across all calls.
    pub flops: u64,
    /// Mean wall time per call, in nanoseconds.
    pub mean_ns: f64,
    /// Estimated GFLOP/s over this record's accumulated time.
    pub gflops: f64,
}

impl OpRecord {
    fn new(name: String, kind: String, stat: Stat) -> OpRecord {
        let mean_ns = if stat.calls == 0 { 0.0 } else { stat.total_ns as f64 / stat.calls as f64 };
        let gflops =
            if stat.total_ns == 0 { 0.0 } else { stat.flops as f64 / stat.total_ns as f64 };
        OpRecord {
            name,
            kind,
            calls: stat.calls,
            total_ns: stat.total_ns,
            flops: stat.flops,
            mean_ns,
            gflops,
        }
    }

    pub fn total_s(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }
}

/// Copy of the registry, sorted by `(name, kind)`. The ordering is a
/// function of *which* scopes ran, never of how long they took, so two runs
/// of the same workload produce identically ordered `PROFILE_ops.json`
/// files and `bench_diff` sees real deltas instead of row shuffles.
/// Consumers that want a "top by time" view (the `profile` bin's table)
/// re-sort their copy.
pub fn snapshot() -> Vec<OpRecord> {
    let reg = registry_lock();
    let mut rows: Vec<OpRecord> = reg
        .iter()
        .map(|(&(name, kind), stat)| {
            OpRecord::new(name.to_string(), kind.as_str().to_string(), *stat)
        })
        .collect();
    rows.sort_by(|a, b| a.name.cmp(&b.name).then_with(|| a.kind.cmp(&b.kind)));
    rows
}

/// Sum of recorded time over every scope, in nanoseconds. Scopes are
/// disjoint by construction (ops never nest; phases wrap only non-op work),
/// so this is comparable against a wall-clock measurement of the same span.
pub fn total_ns() -> u64 {
    registry_lock().values().map(|s| s.total_ns).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests share the process-global registry; serialize the ones that
    /// reset or toggle it.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_scope_is_none_and_records_nothing() {
        let _l = test_lock();
        set_enabled(false);
        reset();
        assert!(scope("test.off", 10).is_none());
        assert!(snapshot().is_empty());
    }

    #[test]
    fn enabled_scope_accumulates_calls_time_flops() {
        let _l = test_lock();
        reset();
        set_enabled(true);
        for _ in 0..3 {
            let _s = scope("test.op_a", 100);
        }
        {
            let _s = scope_kind("test.op_a", ScopeKind::Backward, 200);
        }
        set_enabled(false);
        let snap = snapshot();
        let fwd = snap.iter().find(|r| r.name == "test.op_a" && r.kind == "forward").unwrap();
        assert_eq!(fwd.calls, 3);
        assert_eq!(fwd.flops, 300);
        let bwd = snap.iter().find(|r| r.name == "test.op_a" && r.kind == "backward").unwrap();
        assert_eq!(bwd.calls, 1);
        assert_eq!(bwd.flops, 200);
        reset();
    }

    #[test]
    fn snapshot_order_is_deterministic_name_then_kind() {
        let _l = test_lock();
        reset();
        // Timings deliberately anti-correlated with name order: determinism
        // means the sort must ignore them.
        record("test.b_op", ScopeKind::Phase, 5_000, 0);
        record("test.a_op", ScopeKind::Phase, 10, 0);
        record("test.a_op", ScopeKind::Forward, 9_999, 0);
        record("test.a_op", ScopeKind::Backward, 1, 0);
        let snap = snapshot();
        let keys: Vec<(&str, &str)> =
            snap.iter().map(|r| (r.name.as_str(), r.kind.as_str())).collect();
        assert_eq!(
            keys,
            vec![
                ("test.a_op", "backward"),
                ("test.a_op", "forward"),
                ("test.a_op", "phase"),
                ("test.b_op", "phase"),
            ],
            "snapshot must sort by (name, kind), independent of timings"
        );
        assert_eq!(total_ns(), 15_010);
        reset();
    }

    #[test]
    fn snapshot_order_survives_timing_perturbation() {
        // Regression: same scopes, different timings => identical row order.
        let _l = test_lock();
        reset();
        record("test.x", ScopeKind::Forward, 1, 0);
        record("test.y", ScopeKind::Forward, 1_000_000, 0);
        let order1: Vec<String> = snapshot().iter().map(|r| r.name.clone()).collect();
        reset();
        record("test.x", ScopeKind::Forward, 1_000_000, 0);
        record("test.y", ScopeKind::Forward, 1, 0);
        let order2: Vec<String> = snapshot().iter().map(|r| r.name.clone()).collect();
        reset();
        assert_eq!(order1, order2, "row order must not depend on timings");
    }

    #[test]
    fn records_from_worker_threads_land_in_registry() {
        let _l = test_lock();
        reset();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| record("test.threaded", ScopeKind::Forward, 7, 1));
            }
        });
        let snap = snapshot();
        let rec = snap.iter().find(|r| r.name == "test.threaded").unwrap();
        assert_eq!(rec.calls, 4);
        assert_eq!(rec.total_ns, 28);
        reset();
    }

    #[test]
    fn op_record_serializes_and_parses() {
        let rec = OpRecord::new(
            "matmul".into(),
            "forward".into(),
            Stat { calls: 12, total_ns: 3456, flops: 7890 },
        );
        let json = serde_json::to_string(&rec).unwrap();
        let back: OpRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
        assert!(rec.gflops > 0.0);
        assert!((rec.mean_ns - 3456.0 / 12.0).abs() < 1e-9);
    }
}
