//! Process-global serving/training metrics registry: counters, gauges, and
//! log-linear latency histograms.
//!
//! The [`profiler`](crate::profiler) answers "where does the time go inside
//! one run"; this module answers the serving questions — how many queries,
//! what tail latency, what memory watermark — and exports them through one
//! surface ([`crate::export`]: Prometheus text format and a JSON snapshot).
//!
//! ## Bucket scheme (log-linear)
//!
//! Histograms record `u64` nanosecond values into log-linear buckets: each
//! power-of-two octave `[2^e, 2^(e+1))` is divided into `16` linear
//! sub-buckets (values below 16 ns get exact single-integer buckets).
//! Values at or above `2^40` ns (≈ 18.3 minutes) saturate into one overflow
//! bucket. The whole array is 593 fixed buckets, so merging histograms
//! across threads is an exact integer addition — no sampling, no sketch
//! error, deterministic regardless of merge order.
//!
//! ## Quantile error bound
//!
//! `quantile(q)` walks the cumulative bucket counts to the bucket containing
//! the rank-`ceil(q·n)` observation and reports that bucket's largest
//! possible value (clamped to the exactly-tracked maximum). Because every
//! regular bucket spans at most 1/16 of its lower bound, the estimate never
//! undershoots the exact order statistic and overshoots it by **at most
//! 1/16 = 6.25 % relative** (exact below 16 ns, where buckets are single
//! integers). Quantiles that land in the overflow bucket report the exact
//! observed maximum instead; the relative bound does not apply there.
//! `count`, `sum`, `min` and `max` are always exact. These bounds are locked
//! in against a sorted-sample oracle by `crates/obs/tests/histogram_oracle.rs`.
//!
//! ## Cost and invariance
//!
//! Recording is a mutex-guarded hash-map update per observation — metrics
//! are for *per-query / per-batch* granularity, not per-op (that is the
//! profiler's job). The registry is enabled by default; when disabled every
//! entry point is a single relaxed atomic load. Either way no metrics path
//! reads or writes tensor data, so recording can never perturb numerics
//! (`crates/core/tests/metrics_invariance.rs`).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Sub-buckets per power-of-two octave, as a bit count (2^4 = 16).
const SUB_BUCKET_BITS: u32 = 4;
/// Sub-buckets per octave. The quantile error bound is 1/SUB_BUCKETS.
pub const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;
/// Largest bucketed exponent: values in `[2^MAX_EXP, 2^(MAX_EXP+1))` still
/// get regular buckets; anything `>= 2^(MAX_EXP+1)` overflows.
const MAX_EXP: u32 = 39;
/// First value that saturates into the overflow bucket (2^40 ns ≈ 18.3 min).
pub const OVERFLOW_THRESHOLD_NS: u64 = 1 << (MAX_EXP + 1);
/// Regular (non-overflow) bucket count.
const NUM_REGULAR: usize = (MAX_EXP - SUB_BUCKET_BITS + 2) as usize * SUB_BUCKETS as usize;
/// Index of the overflow bucket.
const OVERFLOW_IDX: usize = NUM_REGULAR;
/// Total bucket count (regular + overflow).
pub const NUM_BUCKETS: usize = NUM_REGULAR + 1;

/// Bucket index for a value (see module docs for the scheme).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let e = 63 - v.leading_zeros();
    if e > MAX_EXP {
        return OVERFLOW_IDX;
    }
    let base = (e - SUB_BUCKET_BITS + 1) as usize * SUB_BUCKETS as usize;
    base + ((v - (1u64 << e)) >> (e - SUB_BUCKET_BITS)) as usize
}

/// `[lo, hi)` value range of a regular bucket; the overflow bucket reports
/// `[OVERFLOW_THRESHOLD_NS, u64::MAX)`.
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    assert!(idx < NUM_BUCKETS, "bucket index {idx} out of range");
    if idx == OVERFLOW_IDX {
        return (OVERFLOW_THRESHOLD_NS, u64::MAX);
    }
    let q = (idx as u64) >> SUB_BUCKET_BITS;
    let r = idx as u64 & (SUB_BUCKETS - 1);
    if q == 0 {
        (r, r + 1)
    } else {
        let e = q - 1 + SUB_BUCKET_BITS as u64;
        let w = 1u64 << (e - SUB_BUCKET_BITS as u64);
        let lo = (1u64 << e) + r * w;
        (lo, lo + w)
    }
}

/// A trace-id exemplar: the most recent observation that landed in the
/// histogram's highest-so-far bucket, with the id of the trace that made it
/// (see [`crate::trace`]). This is what links "p99 regressed" to a concrete
/// recorded request: the exported snapshot of a latency histogram names a
/// trace the flight recorder can look up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Exemplar {
    /// Trace id recorded next to the observation (never 0).
    pub trace_id: u64,
    /// The observed value itself, nanoseconds.
    pub value_ns: u64,
    /// Bucket index of `value_ns` — the "height" the exemplar holds.
    pub bucket: usize,
}

/// A log-linear latency histogram (standalone; the global registry stores
/// one per name, but workers may also keep private ones and [`merge`] them).
///
/// [`merge`]: Histogram::merge
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    exemplar: Option<Exemplar>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            exemplar: None,
        }
    }

    /// Record one value (nanoseconds).
    pub fn observe(&mut self, v: u64) {
        self.observe_traced(v, 0);
    }

    /// Record one value and, when `trace_id` is non-zero, offer it as the
    /// histogram's exemplar. The exemplar keeps the **most recent
    /// observation at the highest bucket seen so far**: a traced value whose
    /// bucket ties or beats the current exemplar's replaces it, so after a
    /// latency spike the exemplar names a trace from the top of the
    /// distribution, and repeated spikes keep it fresh.
    pub fn observe_traced(&mut self, v: u64, trace_id: u64) {
        let bucket = bucket_index(v);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if trace_id != 0 {
            let replace = match self.exemplar {
                None => true,
                Some(e) => bucket >= e.bucket,
            };
            if replace {
                self.exemplar = Some(Exemplar { trace_id, value_ns: v, bucket });
            }
        }
    }

    /// The current exemplar, if any traced observation has been recorded.
    pub fn exemplar(&self) -> Option<Exemplar> {
        self.exemplar
    }

    /// Exact merge: bucket-wise integer addition, so the result is identical
    /// no matter how observations were partitioned across threads or in
    /// which order partial histograms are merged. Exemplars are combined by
    /// max of `(bucket, value_ns, trace_id)` — a commutative rule, so merge
    /// order cannot change the surviving exemplar either.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.exemplar = match (self.exemplar, other.exemplar) {
            (Some(a), Some(b)) => {
                let key = |e: Exemplar| (e.bucket, e.value_ns, e.trace_id);
                Some(if key(b) > key(a) { b } else { a })
            }
            (a, b) => a.or(b),
        };
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact minimum (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Quantile estimate for `q ∈ [0, 1]` — see the module docs for the
    /// error bound. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            if cum >= rank {
                if idx == OVERFLOW_IDX {
                    // Bucket spans up to u64::MAX; the exact max is the only
                    // honest answer (error bound does not apply here).
                    return self.max;
                }
                let (_, hi) = bucket_bounds(idx);
                // Largest value the bucket can hold, clamped to the exact
                // max: never below the true order statistic, at most 1/16
                // relative above it.
                return (hi - 1).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(lo, hi, count)` triples (hi exclusive).
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, c)
            })
            .collect()
    }
}

// ---- global registry -------------------------------------------------------

#[derive(Default)]
struct Inner {
    counters: HashMap<&'static str, u64>,
    gauges: HashMap<&'static str, f64>,
    histograms: HashMap<&'static str, Histogram>,
}

static ENABLED: AtomicBool = AtomicBool::new(true);

fn registry() -> &'static Mutex<Inner> {
    static REGISTRY: OnceLock<Mutex<Inner>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Inner::default()))
}

fn lock() -> std::sync::MutexGuard<'static, Inner> {
    // A panic while holding the lock only loses metric data; keep going.
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// Turn recording on or off for the whole process (default: on).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether metric entry points currently record. One relaxed load — the
/// entire cost of instrumentation on the disabled path.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clear every counter, gauge and histogram (the enabled flag is untouched).
pub fn reset() {
    let mut reg = lock();
    reg.counters.clear();
    reg.gauges.clear();
    reg.histograms.clear();
}

/// Add `delta` to a monotonically increasing counter.
pub fn counter_add(name: &'static str, delta: u64) {
    if !is_enabled() {
        return;
    }
    *lock().counters.entry(name).or_insert(0) += delta;
}

/// Set a gauge to its latest value (last write wins).
pub fn gauge_set(name: &'static str, value: f64) {
    if !is_enabled() {
        return;
    }
    lock().gauges.insert(name, value);
}

/// Record one latency observation (nanoseconds) into a named histogram.
pub fn observe_ns(name: &'static str, ns: u64) {
    observe_ns_traced(name, ns, 0);
}

/// Record one latency observation carrying the trace id of the request that
/// produced it (0 = untraced; see [`Histogram::observe_traced`] for the
/// exemplar-retention rule). The serving path passes
/// [`crate::trace::current_trace`] here so exported histograms point p99
/// hunters at a concrete flight-recorded trace.
pub fn observe_ns_traced(name: &'static str, ns: u64, trace_id: u64) {
    if !is_enabled() {
        return;
    }
    lock().histograms.entry(name).or_default().observe_traced(ns, trace_id);
}

/// Record a [`std::time::Duration`] into a named histogram.
pub fn observe_duration(name: &'static str, d: std::time::Duration) {
    observe_ns(name, d.as_nanos().min(u128::from(u64::MAX)) as u64);
}

/// Exactly merge a thread-local histogram into the named global one.
pub fn merge_histogram(name: &'static str, h: &Histogram) {
    if !is_enabled() {
        return;
    }
    lock().histograms.entry(name).or_default().merge(h);
}

// ---- snapshots -------------------------------------------------------------

/// One counter at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    pub name: String,
    pub value: u64,
}

/// One gauge at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    pub name: String,
    pub value: f64,
}

/// One non-empty histogram bucket: `[lo_ns, hi_ns)` (the overflow bucket
/// reports `hi_ns = u64::MAX`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketSnapshot {
    pub lo_ns: u64,
    pub hi_ns: u64,
    pub count: u64,
}

/// One histogram at snapshot time: exact counters plus quantile estimates
/// derived at snapshot time (see module docs for the 1/16 error bound).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    pub sum_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    pub p50_ns: u64,
    pub p90_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    /// Trace id of the exemplar observation (see [`Exemplar`]); `None` when
    /// nothing traced has been recorded.
    pub exemplar_trace_id: Option<u64>,
    /// The exemplar's observed value, nanoseconds.
    pub exemplar_ns: Option<u64>,
    /// Sparse: only non-empty buckets, in ascending value order.
    pub buckets: Vec<BucketSnapshot>,
}

impl HistogramSnapshot {
    /// Snapshot one histogram under a given name.
    pub fn from_histogram(name: &str, h: &Histogram) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_string(),
            count: h.count(),
            sum_ns: h.sum(),
            min_ns: h.min(),
            max_ns: h.max(),
            p50_ns: h.quantile(0.50),
            p90_ns: h.quantile(0.90),
            p95_ns: h.quantile(0.95),
            p99_ns: h.quantile(0.99),
            exemplar_trace_id: h.exemplar().map(|e| e.trace_id),
            exemplar_ns: h.exemplar().map(|e| e.value_ns),
            buckets: h
                .nonzero_buckets()
                .into_iter()
                .map(|(lo, hi, count)| BucketSnapshot { lo_ns: lo, hi_ns: hi, count })
                .collect(),
        }
    }

    /// Mean observed value in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }
}

/// The whole registry at one instant, sorted by name for determinism.
/// Serializable both into results JSON (`serde`) and Prometheus text
/// ([`crate::export::to_prometheus`]).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub counters: Vec<CounterSnapshot>,
    pub gauges: Vec<GaugeSnapshot>,
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// Copy of the registry (enabled or not — snapshots always read).
pub fn snapshot() -> MetricsSnapshot {
    let reg = lock();
    let mut counters: Vec<CounterSnapshot> = reg
        .counters
        .iter()
        .map(|(&name, &value)| CounterSnapshot { name: name.to_string(), value })
        .collect();
    counters.sort_by(|a, b| a.name.cmp(&b.name));
    let mut gauges: Vec<GaugeSnapshot> = reg
        .gauges
        .iter()
        .map(|(&name, &value)| GaugeSnapshot { name: name.to_string(), value })
        .collect();
    gauges.sort_by(|a, b| a.name.cmp(&b.name));
    let mut histograms: Vec<HistogramSnapshot> =
        reg.histograms.iter().map(|(&name, h)| HistogramSnapshot::from_histogram(name, h)).collect();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));
    MetricsSnapshot { counters, gauges, histograms }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests share the process-global registry; serialize the ones that
    /// reset or toggle it.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn bucket_bounds_roundtrip_every_index() {
        for idx in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(bucket_index(lo), idx, "lo of bucket {idx}");
            assert_eq!(bucket_index(hi - 1), idx, "hi-1 of bucket {idx}");
            if idx + 1 < NUM_BUCKETS {
                assert_eq!(bucket_bounds(idx + 1).0, hi, "buckets must tile contiguously");
            }
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), OVERFLOW_IDX);
        assert_eq!(bucket_index(OVERFLOW_THRESHOLD_NS), OVERFLOW_IDX);
        assert_eq!(bucket_index(OVERFLOW_THRESHOLD_NS - 1), OVERFLOW_IDX - 1);
    }

    #[test]
    fn bucket_width_within_error_bound() {
        // Every regular bucket above the linear region spans at most
        // lo/SUB_BUCKETS — the quantile error bound's load-bearing fact.
        for idx in SUB_BUCKETS as usize..NUM_REGULAR {
            let (lo, hi) = bucket_bounds(idx);
            assert!((hi - lo) * SUB_BUCKETS <= lo, "bucket {idx} too wide: [{lo}, {hi})");
        }
    }

    #[test]
    fn histogram_tracks_exact_count_sum_min_max() {
        let mut h = Histogram::new();
        for v in [3u64, 17, 1000, 1_000_000, 3] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1_001_023);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(Histogram::new().min(), 0);
    }

    #[test]
    fn merge_is_exact_and_order_independent() {
        let vals: Vec<u64> = (0..200).map(|i| (i * i * 7919) % 100_000).collect();
        let mut whole = Histogram::new();
        vals.iter().for_each(|&v| whole.observe(v));

        let (mut a, mut b) = (Histogram::new(), Histogram::new());
        for (i, &v) in vals.iter().enumerate() {
            if i % 2 == 0 {
                a.observe(v)
            } else {
                b.observe(v)
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, whole, "split+merge must equal direct observation");
        assert_eq!(ba, whole, "merge order must not matter");
    }

    #[test]
    fn disabled_records_nothing() {
        let _l = test_lock();
        set_enabled(false);
        reset();
        counter_add("test.off_counter", 1);
        gauge_set("test.off_gauge", 1.0);
        observe_ns("test.off_hist", 100);
        let snap = snapshot();
        set_enabled(true);
        assert!(snap.counter("test.off_counter").is_none());
        assert!(snap.gauge("test.off_gauge").is_none());
        assert!(snap.histogram("test.off_hist").is_none());
    }

    #[test]
    fn registry_accumulates_and_snapshots_sorted() {
        let _l = test_lock();
        set_enabled(true);
        reset();
        counter_add("test.b_counter", 2);
        counter_add("test.a_counter", 1);
        counter_add("test.b_counter", 3);
        gauge_set("test.gauge", 1.5);
        gauge_set("test.gauge", 2.5);
        for ns in [10u64, 20, 30] {
            observe_ns("test.hist", ns);
        }
        let snap = snapshot();
        reset();
        assert_eq!(snap.counter("test.b_counter"), Some(5));
        assert_eq!(snap.counter("test.a_counter"), Some(1));
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "counters sorted by name");
        assert_eq!(snap.gauge("test.gauge"), Some(2.5), "gauge keeps last write");
        let h = snap.histogram("test.hist").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum_ns, 60);
        assert_eq!((h.min_ns, h.max_ns), (10, 30));
        assert_eq!(h.buckets.iter().map(|b| b.count).sum::<u64>(), 3);
    }

    #[test]
    fn threaded_observations_merge_exactly() {
        let _l = test_lock();
        set_enabled(true);
        reset();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    for i in 0..50u64 {
                        observe_ns("test.threaded", t * 1000 + i * 13);
                        counter_add("test.threaded_total", 1);
                    }
                });
            }
        });
        let snap = snapshot();
        reset();
        // Serial reference: same 200 values observed on one thread.
        let mut reference = Histogram::new();
        for t in 0..4u64 {
            for i in 0..50u64 {
                reference.observe(t * 1000 + i * 13);
            }
        }
        let h = snap.histogram("test.threaded").unwrap();
        assert_eq!(h.count, reference.count());
        assert_eq!(h.sum_ns, reference.sum());
        assert_eq!(h.max_ns, reference.max());
        assert_eq!(
            h.buckets.iter().map(|b| (b.lo_ns, b.hi_ns, b.count)).collect::<Vec<_>>(),
            reference.nonzero_buckets(),
            "threaded bucket contents must equal the serial reference exactly"
        );
        assert_eq!(snap.counter("test.threaded_total"), Some(200));
    }

    #[test]
    fn exemplar_keeps_most_recent_highest_bucket() {
        let mut h = Histogram::new();
        h.observe(5_000); // untraced: no exemplar
        assert_eq!(h.exemplar(), None);
        h.observe_traced(1_000, 7);
        assert_eq!(h.exemplar().unwrap().trace_id, 7);
        h.observe_traced(900_000, 8); // higher bucket wins
        assert_eq!(h.exemplar().unwrap(), Exemplar {
            trace_id: 8,
            value_ns: 900_000,
            bucket: bucket_index(900_000)
        });
        h.observe_traced(2_000, 9); // lower bucket: exemplar unchanged
        assert_eq!(h.exemplar().unwrap().trace_id, 8);
        h.observe_traced(900_001, 10); // same bucket, more recent: replaced
        assert_eq!(h.exemplar().unwrap().trace_id, 10);
        assert_eq!(h.count(), 5, "exemplar bookkeeping must not alter counts");
    }

    #[test]
    fn exemplar_merge_is_order_independent() {
        let mut a = Histogram::new();
        a.observe_traced(50_000, 3);
        let mut b = Histogram::new();
        b.observe_traced(800_000, 4);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.exemplar(), ba.exemplar());
        assert_eq!(ab.exemplar().unwrap().trace_id, 4, "higher bucket survives the merge");
        let mut with_empty = a.clone();
        with_empty.merge(&Histogram::new());
        assert_eq!(with_empty.exemplar().unwrap().trace_id, 3);
    }

    #[test]
    fn traced_observation_surfaces_in_snapshot() {
        let _l = test_lock();
        set_enabled(true);
        reset();
        observe_ns("test.exemplar_hist", 10);
        observe_ns_traced("test.exemplar_hist", 123_456, 42);
        let snap = snapshot();
        reset();
        let h = snap.histogram("test.exemplar_hist").unwrap();
        assert_eq!(h.exemplar_trace_id, Some(42));
        assert_eq!(h.exemplar_ns, Some(123_456));
        assert_eq!(h.count, 2);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let mut h = Histogram::new();
        for v in [5u64, 500, 50_000, OVERFLOW_THRESHOLD_NS + 7] {
            h.observe(v);
        }
        h.observe_traced(40_000, 11); // exemplar fields must round-trip too
        let snap = MetricsSnapshot {
            counters: vec![CounterSnapshot { name: "c".into(), value: u64::MAX }],
            gauges: vec![GaugeSnapshot { name: "g".into(), value: -1.25 }],
            histograms: vec![HistogramSnapshot::from_histogram("h", &h)],
        };
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.histograms[0].buckets.last().unwrap().hi_ns, u64::MAX);
    }
}
