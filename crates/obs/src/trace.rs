//! Request-scoped span tracing and a flight recorder for the serving path.
//!
//! The [`metrics`](crate::metrics) registry answers *aggregate* questions
//! (how many queries, what p99); this module answers the per-request one —
//! *which stage did this slow request spend its time in?* A request owns a
//! trace; every stage it passes through (queue wait, fused embed, per-shard
//! knn, rerank, merge, stream step) records a span into that trace; a
//! completed request's span tree lands in a fixed-capacity **flight
//! recorder** from which it can be rendered as a text tree, exported as
//! Chrome trace-event JSON (`chrome://tracing` / Perfetto), or dumped as
//! JSON Lines.
//!
//! ## Identity
//!
//! Trace and span ids are process-global monotonic counters — no wall-clock
//! or host identity leaks into a trace, and two traces recorded back to
//! back on the same corpus are bitwise-comparable. Timestamps are
//! nanoseconds since an arbitrary process-local anchor ([`now_ns`]),
//! consistent across threads.
//!
//! ## Data path
//!
//! Active spans live on a **thread-local stack** (that is what makes
//! ambient nesting work: a span's parent is whatever span or request
//! context is on top of the stack when it starts). Completed spans drain
//! into a **global bounded ring buffer** of `span_ring` records,
//! drop-oldest. When a request finishes, its spans are pulled out of the
//! ring and — if the request was slow, or count-sampling selects it —
//! assembled into a [`TraceSnapshot`] and pushed into the flight ring
//! (`flight` entries, drop-oldest). Under normal operation the span ring
//! therefore only holds spans of *in-flight* requests; it overflows (and
//! drops the oldest spans, counted in [`TraceStats::spans_dropped`]) only
//! when concurrent requests carry more spans than its capacity.
//!
//! ## Tail-based capture
//!
//! Every request whose total latency is `>= slow_threshold_ns` keeps its
//! full span tree — a slow-query capture that never misses (subject only to
//! the flight ring's drop-oldest bound). Everything faster is count-sampled:
//! every `sample_every`-th finished request is kept so the recorder always
//! holds a baseline of normal traffic to compare outliers against.
//!
//! ## Cost
//!
//! Tracing is **off by default**. Disabled, every entry point is one
//! relaxed atomic load ([`is_enabled`]); no tracing path ever reads or
//! writes tensor data, so enabling it cannot perturb numerics (locked in by
//! `crates/serve/tests/trace_invariance.rs`). Enabled, a span costs one
//! `Instant` read at open and a mutex push at close — per *stage*, not per
//! op.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

/// Turn tracing on or off for the whole process (default: off).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether tracing entry points currently record. One relaxed load — the
/// entire cost of instrumentation on the disabled path.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since the process-local trace epoch. Consistent
/// across threads; carries no wall-clock identity.
pub fn now_ns() -> u64 {
    anchor().elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Small dense id for the calling thread (allocation order, starting at 1).
fn thread_ordinal() -> u64 {
    thread_local! {
        static TID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

// ---- trace context ---------------------------------------------------------

/// Plain-data handle tying work to a trace: the trace id plus the span that
/// should parent whatever is recorded under this context. `Copy`, so it
/// crosses channels and threads freely (that is how the serve engine hands
/// a caller's trace to the engine thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    trace: u64,
    parent: u64,
}

impl TraceCtx {
    /// The inert context: everything recorded under it is a no-op.
    pub const fn disabled() -> TraceCtx {
        TraceCtx { trace: 0, parent: 0 }
    }

    /// Whether this context belongs to a live trace.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.trace != 0
    }

    /// The trace id (0 when inert) — what metric exemplars store.
    #[inline]
    pub fn trace_id(&self) -> u64 {
        self.trace
    }

    /// The span id new child spans will be parented under.
    pub fn parent_span(&self) -> u64 {
        self.parent
    }
}

impl Default for TraceCtx {
    fn default() -> TraceCtx {
        TraceCtx::disabled()
    }
}

// ---- thread-local ambient stack --------------------------------------------

thread_local! {
    static STACK: RefCell<Vec<TraceCtx>> = const { RefCell::new(Vec::new()) };
}

/// The ambient context on this thread: the top of the thread-local span
/// stack, or the inert context when nothing is attached.
pub fn current() -> TraceCtx {
    if !is_enabled() {
        return TraceCtx::disabled();
    }
    STACK.with(|s| s.borrow().last().copied().unwrap_or_else(TraceCtx::disabled))
}

/// The ambient trace id on this thread (0 when none) — the value metric
/// exemplars record next to a histogram observation.
#[inline]
pub fn current_trace() -> u64 {
    current().trace
}

/// RAII ambient attachment created by [`attach`]; pops on drop.
#[must_use = "dropping the guard immediately detaches the context"]
pub struct AttachGuard {
    pushed: bool,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        if self.pushed {
            STACK.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

/// Make `ctx` the ambient context on this thread until the guard drops —
/// how the engine thread adopts a request's trace while dispatching it.
/// Inert (and free) when tracing is off or `ctx` is inactive.
pub fn attach(ctx: TraceCtx) -> AttachGuard {
    if !is_enabled() || !ctx.is_active() {
        return AttachGuard { pushed: false };
    }
    STACK.with(|s| s.borrow_mut().push(ctx));
    AttachGuard { pushed: true }
}

// ---- spans -----------------------------------------------------------------

/// A completed span as stored in the global ring (names stay `&'static` —
/// no allocation on the record path beyond the attr vec).
#[derive(Debug, Clone)]
struct SpanRecord {
    trace: u64,
    span: u64,
    parent: u64,
    name: &'static str,
    start_ns: u64,
    dur_ns: u64,
    thread: u64,
    attrs: Vec<(&'static str, u64)>,
}

/// RAII span created by [`span`] / [`span_under`]; records on drop. While
/// alive it is the ambient parent on this thread, so spans opened inside it
/// nest under it.
#[must_use = "dropping the span immediately records a ~0ns measurement"]
pub struct SpanScope {
    active: Option<SpanRecord>,
}

impl SpanScope {
    const fn inert() -> SpanScope {
        SpanScope { active: None }
    }

    /// Attach a numeric attribute (batch id, shard index, sizes...).
    pub fn attr(mut self, key: &'static str, value: u64) -> SpanScope {
        if let Some(a) = &mut self.active {
            a.attrs.push((key, value));
        }
        self
    }

    /// Context parented at this span — for handing to another thread.
    pub fn ctx(&self) -> TraceCtx {
        match &self.active {
            Some(a) => TraceCtx { trace: a.trace, parent: a.span },
            None => TraceCtx::disabled(),
        }
    }
}

impl Drop for SpanScope {
    fn drop(&mut self) {
        let Some(mut rec) = self.active.take() else { return };
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
        rec.dur_ns = now_ns().saturating_sub(rec.start_ns);
        push_span(rec);
    }
}

/// Open a span under the ambient context (see [`attach`]). Inert when
/// tracing is off or no context is attached on this thread.
pub fn span(name: &'static str) -> SpanScope {
    span_under(current(), name)
}

/// Open a span under an explicit parent context.
pub fn span_under(ctx: TraceCtx, name: &'static str) -> SpanScope {
    if !is_enabled() || !ctx.is_active() {
        return SpanScope::inert();
    }
    let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    STACK.with(|s| s.borrow_mut().push(TraceCtx { trace: ctx.trace, parent: id }));
    SpanScope {
        active: Some(SpanRecord {
            trace: ctx.trace,
            span: id,
            parent: ctx.parent,
            name,
            start_ns: now_ns(),
            dur_ns: 0,
            thread: thread_ordinal(),
            attrs: Vec::new(),
        }),
    }
}

/// Record a span whose interval was measured externally — how the engine
/// injects the queue-wait span (start = enqueue time, measured at drain)
/// and gives every request in an admission batch a span covering the one
/// shared `embed_nograd` forward.
pub fn record_span(
    ctx: TraceCtx,
    name: &'static str,
    start_ns: u64,
    dur_ns: u64,
    attrs: &[(&'static str, u64)],
) {
    if !is_enabled() || !ctx.is_active() {
        return;
    }
    push_span(SpanRecord {
        trace: ctx.trace,
        span: NEXT_SPAN.fetch_add(1, Ordering::Relaxed),
        parent: ctx.parent,
        name,
        start_ns,
        dur_ns,
        thread: thread_ordinal(),
        attrs: attrs.to_vec(),
    });
}

// ---- request lifecycle -----------------------------------------------------

/// A request's root span, created caller-side by [`request_begin`] and
/// finished (explicitly or on drop) when the reply arrives. Finishing
/// records the root span and hands the whole trace to the flight recorder.
#[must_use = "dropping the request span finishes the trace immediately"]
pub struct RequestSpan {
    active: Option<(u64, u64, &'static str, u64)>, // (trace, root span, name, start)
}

impl RequestSpan {
    /// The context child work should record under (parent = root span).
    pub fn ctx(&self) -> TraceCtx {
        match self.active {
            Some((trace, root, _, _)) => TraceCtx { trace, parent: root },
            None => TraceCtx::disabled(),
        }
    }

    /// The trace id (0 when tracing was off at begin).
    pub fn trace_id(&self) -> u64 {
        self.active.map(|(t, _, _, _)| t).unwrap_or(0)
    }

    /// Finish the request: record the root span and run tail-based capture.
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        let Some((trace, root, name, start_ns)) = self.active.take() else { return };
        let total_ns = now_ns().saturating_sub(start_ns);
        complete_request(TraceCtx { trace, parent: root }, name, start_ns, total_ns);
    }
}

impl Drop for RequestSpan {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

/// Start a request trace. Inert (no ids allocated, near-zero cost) when
/// tracing is disabled.
pub fn request_begin(name: &'static str) -> RequestSpan {
    if !is_enabled() {
        return RequestSpan { active: None };
    }
    let trace = NEXT_TRACE.fetch_add(1, Ordering::Relaxed);
    let root = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    lock().started += 1;
    RequestSpan { active: Some((trace, root, name, now_ns())) }
}

/// Complete a request trace explicitly: `ctx` must be the root context
/// (trace id + root span id, as returned by [`RequestSpan::ctx`]).
/// [`RequestSpan::finish`] calls this; it is public so tests and replay
/// tooling can drive the flight recorder with synthetic totals.
pub fn complete_request(ctx: TraceCtx, name: &'static str, start_ns: u64, total_ns: u64) {
    if !ctx.is_active() {
        return;
    }
    let thread = thread_ordinal();
    let mut rec = lock();
    rec.finished += 1;
    // Pull this trace's spans out of the ring: completed traces never
    // linger there, so the ring's capacity is spent on in-flight requests.
    let mut spans: Vec<SpanRecord> = Vec::new();
    rec.ring.retain(|s| {
        if s.trace == ctx.trace {
            spans.push(s.clone());
            false
        } else {
            true
        }
    });
    let slow = total_ns >= rec.cfg.slow_threshold_ns;
    let sampled = rec.cfg.sample_every > 0 && rec.finished.is_multiple_of(rec.cfg.sample_every);
    if !(slow || sampled) {
        return;
    }
    if slow {
        rec.kept_slow += 1;
    } else {
        rec.kept_sampled += 1;
    }
    spans.sort_by(|a, b| a.start_ns.cmp(&b.start_ns).then(a.span.cmp(&b.span)));
    let mut out = Vec::with_capacity(spans.len() + 1);
    out.push(SpanSnapshot {
        span: ctx.parent,
        parent: 0,
        name: name.to_string(),
        start_ns,
        dur_ns: total_ns,
        thread,
        attrs: Vec::new(),
    });
    out.extend(spans.into_iter().map(SpanSnapshot::from_record));
    let snap = TraceSnapshot {
        trace_id: ctx.trace,
        name: name.to_string(),
        start_ns,
        total_ns,
        slow,
        spans: out,
    };
    if rec.flight.len() >= rec.cfg.flight.max(1) {
        rec.flight.pop_front();
    }
    rec.flight.push_back(snap);
}

// ---- flight recorder -------------------------------------------------------

/// Bounds and sampling policy of the recorder.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Capacity of the global completed-span ring (drop-oldest). Size it
    /// well above spans-per-request × concurrent in-flight requests.
    pub span_ring: usize,
    /// Completed request traces the flight recorder retains (drop-oldest).
    pub flight: usize,
    /// Requests at or above this total keep their full span tree
    /// unconditionally (tail-based slow-query capture).
    pub slow_threshold_ns: u64,
    /// Below the threshold, keep every Nth finished request (0 = none).
    pub sample_every: u64,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            span_ring: 4096,
            flight: 64,
            slow_threshold_ns: 10_000_000, // 10 ms
            sample_every: 64,
        }
    }
}

/// Recorder counters at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Traces begun ([`request_begin`] with tracing on).
    pub started: u64,
    /// Traces completed.
    pub finished: u64,
    /// Completed traces kept because they crossed `slow_threshold_ns`.
    pub kept_slow: u64,
    /// Completed traces kept by count-sampling.
    pub kept_sampled: u64,
    /// Spans evicted from the ring before their trace completed.
    pub spans_dropped: u64,
    /// Spans currently buffered for in-flight traces.
    pub pending_spans: usize,
    /// Traces currently held by the flight recorder.
    pub flight_len: usize,
}

struct Recorder {
    cfg: TraceConfig,
    ring: VecDeque<SpanRecord>,
    flight: VecDeque<TraceSnapshot>,
    started: u64,
    finished: u64,
    kept_slow: u64,
    kept_sampled: u64,
    spans_dropped: u64,
}

impl Recorder {
    fn new(cfg: TraceConfig) -> Recorder {
        Recorder {
            cfg,
            ring: VecDeque::new(),
            flight: VecDeque::new(),
            started: 0,
            finished: 0,
            kept_slow: 0,
            kept_sampled: 0,
            spans_dropped: 0,
        }
    }
}

fn recorder() -> &'static Mutex<Recorder> {
    static RECORDER: OnceLock<Mutex<Recorder>> = OnceLock::new();
    RECORDER.get_or_init(|| Mutex::new(Recorder::new(TraceConfig::default())))
}

fn lock() -> std::sync::MutexGuard<'static, Recorder> {
    // A panic while holding the lock only loses trace data; keep going.
    recorder().lock().unwrap_or_else(|e| e.into_inner())
}

fn push_span(rec: SpanRecord) {
    let mut r = lock();
    if r.ring.len() >= r.cfg.span_ring.max(1) {
        r.ring.pop_front();
        r.spans_dropped += 1;
    }
    r.ring.push_back(rec);
}

/// Replace the recorder configuration; existing rings are trimmed
/// (drop-oldest) to the new capacities.
pub fn configure(cfg: TraceConfig) {
    let mut r = lock();
    while r.ring.len() > cfg.span_ring.max(1) {
        r.ring.pop_front();
        r.spans_dropped += 1;
    }
    while r.flight.len() > cfg.flight.max(1) {
        r.flight.pop_front();
    }
    r.cfg = cfg;
}

/// Clear rings and counters (config and the enabled flag are untouched).
pub fn reset() {
    let mut r = lock();
    r.ring.clear();
    r.flight.clear();
    r.started = 0;
    r.finished = 0;
    r.kept_slow = 0;
    r.kept_sampled = 0;
    r.spans_dropped = 0;
}

/// Recorder counters right now.
pub fn stats() -> TraceStats {
    let r = lock();
    TraceStats {
        started: r.started,
        finished: r.finished,
        kept_slow: r.kept_slow,
        kept_sampled: r.kept_sampled,
        spans_dropped: r.spans_dropped,
        pending_spans: r.ring.len(),
        flight_len: r.flight.len(),
    }
}

/// Every trace the flight recorder currently holds, oldest first.
pub fn recent() -> Vec<TraceSnapshot> {
    lock().flight.iter().cloned().collect()
}

/// The most recently recorded trace, if any.
pub fn latest() -> Option<TraceSnapshot> {
    lock().flight.back().cloned()
}

/// Look up a recorded trace by id.
pub fn find(trace_id: u64) -> Option<TraceSnapshot> {
    lock().flight.iter().find(|t| t.trace_id == trace_id).cloned()
}

// ---- snapshots & exporters -------------------------------------------------

/// One span attribute (numeric by design: batch ids, shard indices, sizes).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanAttr {
    pub key: String,
    pub value: u64,
}

/// One completed span inside a recorded trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanSnapshot {
    /// Span id (process-global monotonic counter).
    pub span: u64,
    /// Parent span id; 0 marks the trace root.
    pub parent: u64,
    pub name: String,
    /// Nanoseconds since the process trace epoch ([`now_ns`] base).
    pub start_ns: u64,
    pub dur_ns: u64,
    /// Dense ordinal of the recording thread.
    pub thread: u64,
    pub attrs: Vec<SpanAttr>,
}

impl SpanSnapshot {
    fn from_record(r: SpanRecord) -> SpanSnapshot {
        SpanSnapshot {
            span: r.span,
            parent: r.parent,
            name: r.name.to_string(),
            start_ns: r.start_ns,
            dur_ns: r.dur_ns,
            thread: r.thread,
            attrs: r.attrs.into_iter().map(|(key, value)| SpanAttr { key: key.to_string(), value }).collect(),
        }
    }
}

/// One recorded request trace: the root plus every captured span.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSnapshot {
    pub trace_id: u64,
    /// Root span name (`serve.query`, `serve.append`, `eval.search`...).
    pub name: String,
    pub start_ns: u64,
    pub total_ns: u64,
    /// True when kept by the slow-query threshold (false = count-sampled).
    pub slow: bool,
    /// Root first (parent == 0), then captured spans ordered by start time.
    pub spans: Vec<SpanSnapshot>,
}

impl TraceSnapshot {
    /// The root span (parent == 0). Every snapshot has exactly one.
    pub fn root(&self) -> &SpanSnapshot {
        self.spans.iter().find(|s| s.parent == 0).expect("trace snapshot always holds its root")
    }

    /// Direct children of `span`, in recorded (start-time) order.
    pub fn children(&self, span: u64) -> Vec<&SpanSnapshot> {
        self.spans.iter().filter(|s| s.parent == span).collect()
    }

    /// First span with this name, if captured.
    pub fn span_named(&self, name: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// All spans with this name.
    pub fn spans_named(&self, name: &str) -> Vec<&SpanSnapshot> {
        self.spans.iter().filter(|s| s.name == name).collect()
    }

    /// A snapshot is well-formed when it has exactly one root and every
    /// other span's parent is present — i.e. the spans assemble into a
    /// single tree even when they were recorded across threads.
    pub fn is_well_formed(&self) -> bool {
        let roots = self.spans.iter().filter(|s| s.parent == 0).count();
        roots == 1
            && self
                .spans
                .iter()
                .filter(|s| s.parent != 0)
                .all(|s| self.spans.iter().any(|p| p.span == s.parent))
    }
}

/// Render a recorded trace as an indented plain-text span tree.
pub fn render_tree(t: &TraceSnapshot) -> String {
    fn fmt_span(out: &mut String, t: &TraceSnapshot, s: &SpanSnapshot, depth: usize) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!(
            "{} {:.1}µs [t{}]",
            s.name,
            s.dur_ns as f64 / 1e3,
            s.thread
        ));
        for a in &s.attrs {
            out.push_str(&format!(" {}={}", a.key, a.value));
        }
        out.push('\n');
        for c in t.children(s.span) {
            fmt_span(out, t, c, depth + 1);
        }
    }
    let mut out = format!(
        "trace {} ({}) total {:.1}µs{}\n",
        t.trace_id,
        t.name,
        t.total_ns as f64 / 1e3,
        if t.slow { " [slow]" } else { "" }
    );
    fmt_span(&mut out, t, t.root(), 1);
    out
}

/// Export recorded traces in the Chrome trace-event JSON format: an object
/// with a `traceEvents` array of complete (`"ph": "X"`) events, timestamps
/// and durations in microseconds — loadable in `chrome://tracing` and
/// Perfetto. Span attributes and the trace/span/parent ids ride in `args`.
pub fn to_chrome_trace(traces: &[TraceSnapshot]) -> String {
    use serde::Value;
    let mut events = Vec::new();
    for t in traces {
        for s in &t.spans {
            let mut args: Vec<(String, Value)> = vec![
                ("trace_id".to_string(), Value::Int(t.trace_id as i128)),
                ("span".to_string(), Value::Int(s.span as i128)),
                ("parent".to_string(), Value::Int(s.parent as i128)),
            ];
            for a in &s.attrs {
                args.push((a.key.clone(), Value::Int(a.value as i128)));
            }
            events.push(Value::Map(vec![
                ("name".to_string(), Value::Str(s.name.clone())),
                ("cat".to_string(), Value::Str("tmn".to_string())),
                ("ph".to_string(), Value::Str("X".to_string())),
                ("ts".to_string(), Value::Float(s.start_ns as f64 / 1e3)),
                ("dur".to_string(), Value::Float(s.dur_ns as f64 / 1e3)),
                ("pid".to_string(), Value::Int(1)),
                ("tid".to_string(), Value::Int(s.thread as i128)),
                ("args".to_string(), Value::Map(args)),
            ]));
        }
    }
    let doc = Value::Map(vec![
        ("traceEvents".to_string(), Value::Seq(events)),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
    ]);
    serde_json::to_string(&doc).expect("value rendering is infallible")
}

/// Dump the flight recorder as JSON Lines: one [`TraceSnapshot`] object per
/// line, oldest first — greppable, tail-able, replayable.
pub fn dump_jsonl() -> String {
    let mut out = String::new();
    for t in recent() {
        out.push_str(&serde_json::to_string(&t).expect("value rendering is infallible"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests share the process-global recorder; serialize the ones that
    /// reset or toggle it.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn capture_all() -> TraceConfig {
        TraceConfig { span_ring: 256, flight: 32, slow_threshold_ns: 0, sample_every: 1 }
    }

    #[test]
    fn disabled_records_nothing_and_allocates_no_ids() {
        let _l = test_lock();
        set_enabled(false);
        configure(capture_all());
        reset();
        let req = request_begin("test.req");
        assert!(!req.ctx().is_active());
        {
            let _a = attach(req.ctx());
            let _s = span("test.child");
            assert_eq!(current_trace(), 0);
        }
        req.finish();
        let st = stats();
        assert_eq!((st.started, st.finished, st.flight_len, st.pending_spans), (0, 0, 0, 0));
    }

    #[test]
    fn request_spans_nest_and_are_captured() {
        let _l = test_lock();
        set_enabled(true);
        configure(capture_all());
        reset();
        let req = request_begin("test.req");
        let trace_id = req.trace_id();
        {
            let _a = attach(req.ctx());
            let outer = span("test.outer").attr("k", 7);
            {
                let _inner = span("test.inner");
                assert_eq!(current().trace, trace_id);
            }
            drop(outer);
            record_span(req.ctx(), "test.injected", 5, 10, &[("batch", 3)]);
        }
        req.finish();
        set_enabled(false);
        let t = find(trace_id).expect("trace captured");
        assert!(t.is_well_formed(), "tree must be well-formed: {t:?}");
        assert_eq!(t.name, "test.req");
        let outer = t.span_named("test.outer").unwrap();
        assert_eq!(outer.parent, t.root().span);
        assert_eq!(outer.attrs, vec![SpanAttr { key: "k".into(), value: 7 }]);
        let inner = t.span_named("test.inner").unwrap();
        assert_eq!(inner.parent, outer.span, "inner span must nest under outer");
        let injected = t.span_named("test.injected").unwrap();
        assert_eq!((injected.start_ns, injected.dur_ns), (5, 10));
        assert_eq!(injected.parent, t.root().span);
    }

    #[test]
    fn slow_threshold_separates_kept_from_sampled() {
        let _l = test_lock();
        set_enabled(true);
        configure(TraceConfig {
            span_ring: 64,
            flight: 32,
            slow_threshold_ns: 1_000,
            sample_every: 0,
        });
        reset();
        // Synthetic totals via the explicit completion API.
        for (i, total) in [(1u64, 10u64), (2, 2_000), (3, 999), (4, 1_000)] {
            let req = request_begin("test.synthetic");
            let ctx = req.ctx();
            // Forget the natural finish; complete with a synthetic total.
            std::mem::forget(req);
            complete_request(ctx, "test.synthetic", 0, total);
            let _ = i;
        }
        set_enabled(false);
        let st = stats();
        assert_eq!(st.kept_slow, 2, "totals 2000 and 1000 cross the 1000ns threshold");
        assert_eq!(st.kept_sampled, 0, "sample_every=0 keeps no fast traces");
        assert_eq!(st.flight_len, 2);
        assert!(recent().iter().all(|t| t.slow));
    }

    #[test]
    fn count_sampling_keeps_every_nth() {
        let _l = test_lock();
        set_enabled(true);
        configure(TraceConfig {
            span_ring: 64,
            flight: 32,
            slow_threshold_ns: u64::MAX,
            sample_every: 3,
        });
        reset();
        for _ in 0..9 {
            let req = request_begin("test.fast");
            let ctx = req.ctx();
            std::mem::forget(req);
            complete_request(ctx, "test.fast", 0, 10);
        }
        set_enabled(false);
        let st = stats();
        assert_eq!(st.kept_sampled, 3, "every 3rd of 9 requests");
        assert_eq!(st.kept_slow, 0);
    }

    #[test]
    fn span_ring_drops_oldest_at_capacity() {
        let _l = test_lock();
        set_enabled(true);
        configure(TraceConfig { span_ring: 4, flight: 4, slow_threshold_ns: 0, sample_every: 1 });
        reset();
        let req = request_begin("test.ring");
        let ctx = req.ctx();
        for i in 0..10u64 {
            record_span(ctx, "test.s", i, 1, &[]);
        }
        let st = stats();
        assert_eq!(st.pending_spans, 4, "ring bounded at capacity");
        assert_eq!(st.spans_dropped, 6);
        req.finish();
        set_enabled(false);
        let t = latest().unwrap();
        // Root + the 4 newest spans survive; their starts are 6..=9.
        let starts: Vec<u64> =
            t.spans.iter().filter(|s| s.parent != 0).map(|s| s.start_ns).collect();
        assert_eq!(starts, vec![6, 7, 8, 9], "drop-oldest must keep the newest spans in order");
    }

    #[test]
    fn chrome_export_parses_and_carries_fields() {
        let _l = test_lock();
        set_enabled(true);
        configure(capture_all());
        reset();
        let req = request_begin("test.chrome");
        record_span(req.ctx(), "test.stage", 100, 50, &[("shard", 2)]);
        let id = req.trace_id();
        req.finish();
        set_enabled(false);
        let t = find(id).unwrap();
        let json = to_chrome_trace(&[t]);
        let doc: serde::Value = serde_json::from_str(&json).expect("chrome trace must be valid JSON");
        let events = match doc.get_field("traceEvents") {
            Some(serde::Value::Seq(e)) => e,
            other => panic!("traceEvents array missing: {other:?}"),
        };
        assert_eq!(events.len(), 2, "root + one stage");
        for ev in events {
            for field in ["name", "ph", "ts", "dur", "pid", "tid", "args"] {
                assert!(ev.get_field(field).is_some(), "event lacks {field}: {ev:?}");
            }
            assert_eq!(ev.get_field("ph"), Some(&serde::Value::Str("X".into())));
        }
        // The stage event carries its attr and trace linkage in args.
        let stage = events
            .iter()
            .find(|e| e.get_field("name") == Some(&serde::Value::Str("test.stage".into())))
            .unwrap();
        let args = stage.get_field("args").unwrap();
        assert_eq!(args.get_field("shard"), Some(&serde::Value::Int(2)));
        assert_eq!(args.get_field("trace_id"), Some(&serde::Value::Int(id as i128)));
    }

    #[test]
    fn text_tree_and_jsonl_render() {
        let _l = test_lock();
        set_enabled(true);
        configure(capture_all());
        reset();
        let req = request_begin("test.render");
        {
            let _a = attach(req.ctx());
            let _s = span("test.stage").attr("n", 4);
        }
        let id = req.trace_id();
        req.finish();
        set_enabled(false);
        let t = find(id).unwrap();
        let tree = render_tree(&t);
        assert!(tree.contains("test.render"), "root line missing:\n{tree}");
        assert!(tree.contains("  test.stage") || tree.contains("    test.stage"), "{tree}");
        assert!(tree.contains("n=4"), "attr missing:\n{tree}");
        let jsonl = dump_jsonl();
        let line = jsonl.lines().last().unwrap();
        let back: TraceSnapshot = serde_json::from_str(line).unwrap();
        assert_eq!(back, t, "JSONL line must round-trip the snapshot");
    }

    #[test]
    fn flight_ring_drops_oldest_trace() {
        let _l = test_lock();
        set_enabled(true);
        configure(TraceConfig { span_ring: 64, flight: 2, slow_threshold_ns: 0, sample_every: 1 });
        reset();
        let mut ids = Vec::new();
        for _ in 0..4 {
            let req = request_begin("test.flight");
            ids.push(req.trace_id());
            req.finish();
        }
        set_enabled(false);
        assert_eq!(stats().flight_len, 2);
        assert!(find(ids[0]).is_none() && find(ids[1]).is_none(), "oldest evicted");
        assert!(find(ids[2]).is_some() && find(ids[3]).is_some(), "newest retained");
    }
}
