//! Exporters for [`crate::metrics`] snapshots: Prometheus text exposition
//! format and a JSON document (the latter is what `results/*.json` embeds
//! and what `bench_diff` consumes).
//!
//! ## Prometheus naming conventions
//!
//! - Every metric is prefixed `tmn_`; characters outside `[a-zA-Z0-9_:]`
//!   are replaced with `_`.
//! - Every series is preceded by `# HELP` and `# TYPE` comment lines, so
//!   the output lints cleanly under `promtool check metrics`. HELP text is
//!   generic ("<kind> exported by tmn-obs") — the registry keys metrics by
//!   bare name, and per-metric prose lives in rustdoc, not the registry.
//! - Counters get a `_total` suffix (appended if the registry name lacks
//!   one), per Prometheus convention.
//! - Histograms keep their unit suffix in the base name (`..._ns`) and
//!   expand to the standard `_bucket{le="..."}` / `_sum` / `_count` series.
//!   Registry buckets are half-open `[lo, hi)` over integer nanoseconds, so
//!   the inclusive Prometheus bound is `le = hi - 1`; a final
//!   `le="+Inf"` bucket always equals `_count`.

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
use std::fmt::Write as _;

/// Map a registry name to a Prometheus metric name: `tmn_` prefix plus
/// character sanitization.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    if !name.starts_with("tmn_") {
        out.push_str("tmn_");
    }
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn counter_name(name: &str) -> String {
    let base = prometheus_name(name);
    if base.ends_with("_total") {
        base
    } else {
        base + "_total"
    }
}

fn write_histogram(out: &mut String, h: &HistogramSnapshot) {
    let base = prometheus_name(&h.name);
    let _ = writeln!(out, "# HELP {base} latency histogram exported by tmn-obs");
    let _ = writeln!(out, "# TYPE {base} histogram");
    let mut cum = 0u64;
    for b in &h.buckets {
        cum += b.count;
        if b.hi_ns == u64::MAX {
            // Overflow bucket: no finite inclusive bound below +Inf.
            continue;
        }
        let _ = writeln!(out, "{base}_bucket{{le=\"{}\"}} {cum}", b.hi_ns - 1);
    }
    let _ = writeln!(out, "{base}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{base}_sum {}", h.sum_ns);
    let _ = writeln!(out, "{base}_count {}", h.count);
}

/// Render a snapshot in the Prometheus text exposition format.
pub fn to_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for c in &snap.counters {
        let name = counter_name(&c.name);
        let _ = writeln!(out, "# HELP {name} counter exported by tmn-obs");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {}", c.value);
    }
    for g in &snap.gauges {
        let name = prometheus_name(&g.name);
        let _ = writeln!(out, "# HELP {name} gauge exported by tmn-obs");
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", g.value);
    }
    for h in &snap.histograms {
        write_histogram(&mut out, h);
    }
    out
}

/// Render a snapshot as a pretty-printed JSON document.
pub fn to_json(snap: &MetricsSnapshot) -> String {
    serde_json::to_string_pretty(snap).expect("metrics snapshot serializes infallibly")
}

/// Parse a JSON document produced by [`to_json`] (or any `metrics` section
/// embedded in a results file).
pub fn from_json(s: &str) -> Result<MetricsSnapshot, String> {
    let value = serde_json::from_str(s).map_err(|e| format!("metrics json parse: {e:?}"))?;
    serde::Deserialize::from_value(&value).map_err(|e| format!("metrics json shape: {e:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{
        BucketSnapshot, CounterSnapshot, GaugeSnapshot, Histogram, MetricsSnapshot,
    };

    fn sample_snapshot() -> MetricsSnapshot {
        let mut h = Histogram::new();
        for v in [10u64, 20, 300, 5000, 5000, 1 << 45] {
            h.observe(v);
        }
        MetricsSnapshot {
            counters: vec![CounterSnapshot { name: "queries_total".into(), value: 6 }],
            gauges: vec![GaugeSnapshot { name: "train_batch_wall_ms".into(), value: 12.5 }],
            histograms: vec![crate::metrics::HistogramSnapshot::from_histogram("query_rank_ns", &h)],
        }
    }

    #[test]
    fn prometheus_names_are_sanitized_and_suffixed() {
        assert_eq!(prometheus_name("query_rank_ns"), "tmn_query_rank_ns");
        assert_eq!(prometheus_name("eval.search-p99"), "tmn_eval_search_p99");
        assert_eq!(prometheus_name("tmn_already"), "tmn_already");
        assert_eq!(counter_name("queries_total"), "tmn_queries_total");
        assert_eq!(counter_name("queries"), "tmn_queries_total");
    }

    #[test]
    fn prometheus_text_has_type_lines_and_cumulative_buckets() {
        let text = to_prometheus(&sample_snapshot());
        assert!(text.contains("# TYPE tmn_queries_total counter"));
        assert!(text.contains("tmn_queries_total 6"));
        assert!(text.contains("# TYPE tmn_train_batch_wall_ms gauge"));
        assert!(text.contains("tmn_train_batch_wall_ms 12.5"));
        assert!(text.contains("# TYPE tmn_query_rank_ns histogram"));
        assert!(text.contains("tmn_query_rank_ns_bucket{le=\"+Inf\"} 6"));
        assert!(text.contains("tmn_query_rank_ns_count 6"));

        // Bucket series must be cumulative and monotone non-decreasing.
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in text.lines().filter(|l| l.starts_with("tmn_query_rank_ns_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "bucket counts must be cumulative: {line}");
            last = v;
            bucket_lines += 1;
        }
        assert!(bucket_lines >= 4, "expected several finite buckets plus +Inf");
        assert_eq!(last, 6, "+Inf bucket must equal total count");
    }

    #[test]
    fn every_series_has_help_and_type_lines() {
        let text = to_prometheus(&sample_snapshot());
        for name in ["tmn_queries_total", "tmn_train_batch_wall_ms", "tmn_query_rank_ns"] {
            assert!(text.contains(&format!("# HELP {name} ")), "HELP missing for {name}:\n{text}");
            assert!(text.contains(&format!("# TYPE {name} ")), "TYPE missing for {name}:\n{text}");
            // promtool requires HELP/TYPE to precede the samples.
            let help_at = text.find(&format!("# HELP {name} ")).unwrap();
            let type_at = text.find(&format!("# TYPE {name} ")).unwrap();
            let sample_at = text.find(&format!("\n{name}")).unwrap();
            assert!(help_at < type_at && type_at < sample_at, "ordering wrong for {name}");
        }
    }

    #[test]
    fn inclusive_bounds_are_bucket_hi_minus_one() {
        let mut h = Histogram::new();
        h.observe(16); // bucket [16, 17)
        let snap = MetricsSnapshot {
            counters: vec![],
            gauges: vec![],
            histograms: vec![crate::metrics::HistogramSnapshot::from_histogram("one", &h)],
        };
        let text = to_prometheus(&snap);
        assert!(text.contains("tmn_one_bucket{le=\"16\"} 1"), "got:\n{text}");
    }

    #[test]
    fn json_roundtrip_preserves_snapshot() {
        let snap = sample_snapshot();
        let back = from_json(&to_json(&snap)).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn from_json_rejects_wrong_shape() {
        assert!(from_json("{\"counters\": 3}").is_err());
        assert!(from_json("not json").is_err());
    }

    #[test]
    fn overflow_bucket_is_folded_into_inf() {
        let snap = sample_snapshot();
        let h = &snap.histograms[0];
        assert_eq!(h.buckets.last().map(|b| b.hi_ns), Some(u64::MAX));
        let text = to_prometheus(&snap);
        // No finite le line may mention the overflow bucket's fake bound.
        assert!(!text.contains(&format!("le=\"{}\"", u64::MAX - 1)));
        let _ = BucketSnapshot { lo_ns: 0, hi_ns: 1, count: 0 };
    }
}
