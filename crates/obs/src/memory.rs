//! Opt-in memory accounting via a counting global allocator.
//!
//! Enabled by the `alloc-count` cargo feature, which installs a
//! `#[global_allocator]` that forwards to [`std::alloc::System`] while
//! keeping atomic live/peak byte counters and an allocation count. This is
//! the allocator `crates/autograd/tests/grad_alloc.rs` used to carry
//! privately, promoted into the observability crate so the trainer and
//! bench bins can report memory watermarks through the metrics registry.
//!
//! Without the feature every accessor degrades gracefully: [`is_active`]
//! returns `false` and the byte/count readers return 0, so callers can
//! publish gauges unconditionally.
//!
//! Cost when enabled: two or three relaxed atomic RMW ops per alloc/dealloc
//! (plus a CAS loop on new peaks). The accounting never allocates and never
//! touches the payload, so it cannot perturb numerics.

#[cfg(feature = "alloc-count")]
mod imp {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    pub static LIVE: AtomicUsize = AtomicUsize::new(0);
    pub static PEAK: AtomicUsize = AtomicUsize::new(0);
    pub static ALLOCS: AtomicU64 = AtomicU64::new(0);
    /// Size threshold for the armed large-allocation counter; 0 = disarmed.
    pub static ARM_THRESHOLD: AtomicUsize = AtomicUsize::new(0);
    pub static ARMED_HITS: AtomicU64 = AtomicU64::new(0);

    pub struct CountingAlloc;

    impl CountingAlloc {
        #[inline]
        fn on_alloc(size: usize) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
            let mut peak = PEAK.load(Ordering::Relaxed);
            while live > peak {
                match PEAK.compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed)
                {
                    Ok(_) => break,
                    Err(p) => peak = p,
                }
            }
            let thr = ARM_THRESHOLD.load(Ordering::Relaxed);
            if thr > 0 && size >= thr {
                ARMED_HITS.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    // SAFETY: pure pass-through to `System`; the bookkeeping is atomic
    // counters only and never allocates.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                Self::on_alloc(layout.size());
            }
            p
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc_zeroed(layout);
            if !p.is_null() {
                Self::on_alloc(layout.size());
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = System.realloc(ptr, layout, new_size);
            if !p.is_null() {
                // Count a grow/shrink as one allocation event and adjust the
                // live total by the size delta.
                if new_size >= layout.size() {
                    Self::on_alloc(new_size - layout.size());
                } else {
                    LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
                }
            }
            p
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;
}

/// Whether the counting allocator is compiled in (`alloc-count` feature).
pub fn is_active() -> bool {
    cfg!(feature = "alloc-count")
}

/// Bytes currently allocated and not yet freed (0 when inactive).
pub fn live_bytes() -> u64 {
    #[cfg(feature = "alloc-count")]
    {
        imp::LIVE.load(std::sync::atomic::Ordering::Relaxed) as u64
    }
    #[cfg(not(feature = "alloc-count"))]
    {
        0
    }
}

/// High-water mark of [`live_bytes`] since process start or the last
/// [`reset_peak`] (0 when inactive).
pub fn peak_bytes() -> u64 {
    #[cfg(feature = "alloc-count")]
    {
        imp::PEAK.load(std::sync::atomic::Ordering::Relaxed) as u64
    }
    #[cfg(not(feature = "alloc-count"))]
    {
        0
    }
}

/// Total allocation events since process start (0 when inactive).
pub fn alloc_count() -> u64 {
    #[cfg(feature = "alloc-count")]
    {
        imp::ALLOCS.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "alloc-count"))]
    {
        0
    }
}

/// Restart the peak watermark from the current live total, so a caller can
/// measure the peak of one phase (e.g. one training batch).
pub fn reset_peak() {
    #[cfg(feature = "alloc-count")]
    {
        use std::sync::atomic::Ordering;
        imp::PEAK.store(imp::LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// Arm a counter of allocations with `size >= threshold` bytes and zero it.
/// Used by allocation-regression tests (`grad_alloc.rs`) to budget the
/// number of large buffers a hot path may request. No-op when inactive.
pub fn arm_large(threshold: usize) {
    #[cfg(feature = "alloc-count")]
    {
        use std::sync::atomic::Ordering;
        imp::ARMED_HITS.store(0, Ordering::Relaxed);
        imp::ARM_THRESHOLD.store(threshold, Ordering::Relaxed);
    }
    #[cfg(not(feature = "alloc-count"))]
    {
        let _ = threshold;
    }
}

/// Disarm the large-allocation counter and return the number of hits since
/// [`arm_large`] (0 when inactive).
pub fn disarm_large() -> u64 {
    #[cfg(feature = "alloc-count")]
    {
        use std::sync::atomic::Ordering;
        imp::ARM_THRESHOLD.store(0, Ordering::Relaxed);
        imp::ARMED_HITS.load(Ordering::Relaxed)
    }
    #[cfg(not(feature = "alloc-count"))]
    {
        0
    }
}

/// Count allocations of at least `threshold` bytes performed while `f`
/// runs on this (or any) thread. Convenience wrapper over
/// [`arm_large`]/[`disarm_large`]; returns `(result, hits)`.
pub fn count_large_during<T>(threshold: usize, f: impl FnOnce() -> T) -> (T, u64) {
    arm_large(threshold);
    let out = f();
    let hits = disarm_large();
    (out, hits)
}

#[cfg(all(test, feature = "alloc-count"))]
mod tests {
    use super::*;

    /// The counters are process-global and other tests in this binary
    /// allocate; serialize the tests that arm thresholds or reset peaks.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn live_and_peak_track_a_big_allocation() {
        let _l = test_lock();
        // Other tests in this binary allocate concurrently, so compare with
        // half-buffer slack instead of exact deltas.
        let before_live = live_bytes();
        reset_peak();
        let buf = vec![0u8; 1 << 20];
        let with_buf = live_bytes();
        assert!(with_buf >= before_live + (1 << 19), "live must include the 1 MiB buffer");
        let peak_with_buf = peak_bytes();
        assert!(peak_with_buf >= with_buf, "peak can never trail live");
        drop(buf);
        assert!(live_bytes() <= with_buf - (1 << 19), "dealloc must drop live");
        assert!(peak_bytes() >= peak_with_buf, "peak must persist after free");
    }

    #[test]
    fn alloc_count_is_monotone() {
        let a = alloc_count();
        let v = std::hint::black_box(vec![1u8; 4096]);
        drop(v);
        assert!(alloc_count() > a, "allocation events must advance the counter");
    }

    #[test]
    fn armed_counter_sees_only_large_allocations() {
        let _l = test_lock();
        let ((), hits) = count_large_during(1 << 16, || {
            let small = std::hint::black_box(vec![0u8; 64]);
            drop(small);
        });
        assert_eq!(hits, 0, "a 64 B allocation must not trip a 64 KiB threshold");
        let ((), hits) = count_large_during(1 << 16, || {
            let big = std::hint::black_box(vec![0u8; 1 << 20]);
            drop(big);
        });
        assert!(hits >= 1, "a 1 MiB allocation must trip a 64 KiB threshold");
    }

    #[test]
    fn is_active_reflects_feature() {
        assert!(is_active());
    }
}
