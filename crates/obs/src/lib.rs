//! # tmn-obs
//!
//! Observability layer for the TMN reproduction: an op-level profiler and a
//! structured training-telemetry sink. Every other crate in the workspace
//! reports through this one, so it depends only on the vendored `serde` /
//! `serde_json` stubs.
//!
//! Five subsystems:
//!
//! - [`profiler`] — a process-global, thread-safe registry of timed scopes.
//!   `tmn-autograd` records every forward and backward op (wall time, call
//!   count, FLOP estimate); `tmn-core` and `tmn-eval` record coarse phases
//!   (batch assembly, optimizer step, eval embed/index/rank). Disabled by
//!   default: the off path is a single relaxed atomic load per scope, and
//!   instrumentation never touches numerics either way.
//! - [`telemetry`] — per-batch / per-epoch training records streamed as
//!   JSON Lines, one object per line, so a run can be tailed live and
//!   post-processed with standard tooling.
//! - [`metrics`] — serving-path metrics registry: counters, gauges and
//!   log-linear latency histograms (exact cross-thread merge, p50/p90/p95/
//!   p99/max with a documented ≤ 1/16 bucket error), exported through
//!   [`export`] as Prometheus text or a JSON snapshot. Enabled by default;
//!   granularity is per-query / per-batch, not per-op.
//! - [`memory`] — opt-in (`alloc-count` feature) counting global allocator:
//!   live/peak bytes and allocation counts, surfaced as gauges and used by
//!   allocation-regression tests.
//! - [`trace`] — request-scoped span tracing plus a flight recorder:
//!   per-request span trees (queue wait, embed, per-shard knn, rerank,
//!   merge...), tail-based slow-query capture, Chrome trace-event / text
//!   tree / JSONL exporters, and trace-id exemplars on the latency
//!   histograms. Disabled by default, same one-atomic-load off path as the
//!   profiler.
//!
//! ## Example
//!
//! ```
//! use tmn_obs::profiler;
//!
//! profiler::reset();
//! profiler::set_enabled(true);
//! {
//!     let _scope = profiler::scope("demo.matmul", 2 * 4 * 4 * 4);
//!     // ... do the work being measured ...
//! }
//! profiler::set_enabled(false);
//! let snap = profiler::snapshot();
//! let rec = snap.iter().find(|r| r.name == "demo.matmul").unwrap();
//! assert_eq!(rec.calls, 1);
//! assert_eq!(rec.flops, 2 * 4 * 4 * 4);
//! ```

pub mod export;
pub mod memory;
pub mod metrics;
pub mod profiler;
pub mod telemetry;
pub mod trace;

pub use metrics::{Histogram, HistogramSnapshot, MetricsSnapshot};
pub use profiler::{OpRecord, ScopeKind};
pub use trace::{SpanSnapshot, TraceConfig, TraceCtx, TraceSnapshot, TraceStats};
pub use telemetry::{BatchTelemetry, EpochTelemetry, EventTelemetry, TelemetrySink};
