//! Structured training telemetry as JSON Lines.
//!
//! The trainer emits one [`BatchTelemetry`] per gradient step and one
//! [`EpochTelemetry`] per epoch. Each record is a single JSON object on its
//! own line (`.jsonl`), discriminated by its `record` field, so a training
//! run can be tailed live and joined against profiler output afterwards.
//!
//! Schema (all numbers JSON numbers):
//!
//! ```json
//! {"record":"batch","epoch":0,"batch":3,"pairs":32,"max_len":51,"workers":1,
//!  "loss":0.1072,"grad_norm":2.31,"lr":0.005,"wall_ms":12.4}
//! {"record":"epoch","epoch":0,"batches":4,"pairs":120,"loss":0.0981,"wall_s":0.61}
//! ```

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::rc::Rc;

/// One gradient step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchTelemetry {
    /// Always `"batch"`.
    pub record: String,
    pub epoch: usize,
    /// Step index within the epoch.
    pub batch: usize,
    /// Pairs in this step's batch.
    pub pairs: usize,
    /// Longest trajectory (points) in the batch — the padded length.
    pub max_len: usize,
    /// Data-parallel workers the step actually used (1 = serial path).
    pub workers: usize,
    /// Mean loss per pair for this step.
    pub loss: f32,
    /// Pre-clip global gradient L2 norm.
    pub grad_norm: f32,
    pub lr: f32,
    pub wall_ms: f64,
}

impl BatchTelemetry {
    pub const RECORD: &'static str = "batch";
}

/// One completed epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochTelemetry {
    /// Always `"epoch"`.
    pub record: String,
    pub epoch: usize,
    /// Gradient steps taken this epoch.
    pub batches: usize,
    pub pairs: usize,
    /// Mean loss per pair over the epoch.
    pub loss: f32,
    pub wall_s: f64,
}

impl EpochTelemetry {
    pub const RECORD: &'static str = "epoch";
}

/// A notable training lifecycle event: checkpoint saved, run resumed,
/// non-finite batch skipped, rollback to a previous checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventTelemetry {
    /// Always `"event"`.
    pub record: String,
    /// Event name: `"checkpoint_saved"`, `"resumed"`, `"nonfinite_skip"`,
    /// `"rollback"`, ...
    pub event: String,
    pub epoch: usize,
    /// Global gradient-step count when the event fired.
    pub step: u64,
    /// Learning rate in effect after the event.
    pub lr: f32,
    /// Free-form context (path, loss value, recovery source, ...).
    pub detail: String,
}

impl EventTelemetry {
    pub const RECORD: &'static str = "event";
}

/// In-memory byte buffer shared between a [`TelemetrySink`] and a test that
/// wants to inspect what was written.
#[derive(Debug, Clone, Default)]
pub struct SharedBuffer(Rc<RefCell<Vec<u8>>>);

impl SharedBuffer {
    /// The UTF-8 contents written so far.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.borrow()).into_owned()
    }

    /// Parsed non-empty lines.
    pub fn lines(&self) -> Vec<String> {
        self.contents().lines().filter(|l| !l.is_empty()).map(str::to_string).collect()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Destination for JSONL telemetry records.
pub struct TelemetrySink {
    out: Box<dyn Write>,
}

impl std::fmt::Debug for TelemetrySink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetrySink").finish_non_exhaustive()
    }
}

impl TelemetrySink {
    /// Stream records to a file (created or truncated), buffered.
    pub fn to_file(path: impl AsRef<Path>) -> io::Result<TelemetrySink> {
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(TelemetrySink { out: Box::new(BufWriter::new(File::create(path)?)) })
    }

    /// Stream records to any writer.
    pub fn to_writer(out: Box<dyn Write>) -> TelemetrySink {
        TelemetrySink { out }
    }

    /// An in-memory sink plus a handle to read back what was written.
    pub fn memory() -> (TelemetrySink, SharedBuffer) {
        let buf = SharedBuffer::default();
        (TelemetrySink { out: Box::new(buf.clone()) }, buf)
    }

    /// Write one record as a single JSON line. Errors are reported but not
    /// fatal: telemetry must never abort a training run.
    pub fn emit<T: Serialize>(&mut self, record: &T) {
        let line = serde_json::to_string(record).expect("telemetry record serializes");
        if let Err(e) = writeln!(self.out, "{line}") {
            eprintln!("telemetry write failed: {e}");
        }
    }

    /// Flush buffered lines (also happens on drop for `BufWriter` files).
    pub fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch_record() -> BatchTelemetry {
        BatchTelemetry {
            record: BatchTelemetry::RECORD.to_string(),
            epoch: 1,
            batch: 2,
            pairs: 32,
            max_len: 51,
            workers: 4,
            loss: 0.25,
            grad_norm: 1.5,
            lr: 5e-3,
            wall_ms: 12.5,
        }
    }

    #[test]
    fn emits_one_json_object_per_line() {
        let (mut sink, buf) = TelemetrySink::memory();
        sink.emit(&batch_record());
        sink.emit(&EpochTelemetry {
            record: EpochTelemetry::RECORD.to_string(),
            epoch: 1,
            batches: 3,
            pairs: 96,
            loss: 0.2,
            wall_s: 0.5,
        });
        sink.flush();
        let lines = buf.lines();
        assert_eq!(lines.len(), 2);
        let b: BatchTelemetry = serde_json::from_str(&lines[0]).unwrap();
        assert_eq!(b, batch_record());
        let e: EpochTelemetry = serde_json::from_str(&lines[1]).unwrap();
        assert_eq!(e.record, "epoch");
        assert_eq!(e.pairs, 96);
    }

    #[test]
    fn records_discriminated_by_record_field() {
        let (mut sink, buf) = TelemetrySink::memory();
        sink.emit(&batch_record());
        let v: serde_json::Value = serde_json::from_str(&buf.lines()[0]).unwrap();
        assert_eq!(v.get_field("record"), Some(&serde_json::Value::Str("batch".into())));
        assert!(v.get_field("loss").is_some());
        assert!(v.get_field("grad_norm").is_some());
    }

    #[test]
    fn event_records_roundtrip() {
        let (mut sink, buf) = TelemetrySink::memory();
        sink.emit(&EventTelemetry {
            record: EventTelemetry::RECORD.to_string(),
            event: "checkpoint_saved".into(),
            epoch: 2,
            step: 37,
            lr: 5e-3,
            detail: "ckpt/latest.tmnckpt".into(),
        });
        let e: EventTelemetry = serde_json::from_str(&buf.lines()[0]).unwrap();
        assert_eq!(e.record, "event");
        assert_eq!(e.event, "checkpoint_saved");
        assert_eq!(e.step, 37);
    }

    #[test]
    fn file_sink_roundtrip() {
        let path = std::env::temp_dir().join("tmn_obs_telemetry_test.jsonl");
        {
            let mut sink = TelemetrySink::to_file(&path).unwrap();
            sink.emit(&batch_record());
            sink.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let b: BatchTelemetry = serde_json::from_str(text.trim()).unwrap();
        assert_eq!(b.pairs, 32);
        let _ = std::fs::remove_file(&path);
    }
}
