//! Shared framing for every `TMNS` store file: the 64-byte header, CRC32,
//! error taxonomy, and the alignment-checked zero-copy casts.
//!
//! All store files share one discipline (the checkpoint-v2 framing grown to
//! mmap scale):
//!
//! ```text
//! bytes 0..4    magic  "TMNS"
//! bytes 4..8    version u32 (LE)          — currently 1
//! bytes 8..12   kind u32                   — 1 embeddings, 2 corpus, 3 tiles
//! bytes 12..N   kind-specific fields       — sizes, section offsets, CRCs
//! bytes N..N+4  header_crc u32             — CRC32 over bytes 0..N
//! bytes ..64    zero padding (validated)   — every header byte is covered
//! byte  64..    payload sections           — each guarded by its own CRC32
//! ```
//!
//! The header is exactly [`HEADER_LEN`] bytes and every byte of it is either
//! CRC-covered or validated-zero, so *any* single-bit flip anywhere in a
//! store file is rejected (exhaustively fuzzed in `tests/store_fuzz.rs`).
//! Payload starts at byte 64 ([`DATA_ALIGN`]); with the mapping base
//! page-aligned, every payload section is aligned for its element type and
//! can be reinterpreted in place.

/// File magic for every tmn-store file.
pub const MAGIC: &[u8; 4] = b"TMNS";
/// Current (and only) format version.
pub const VERSION: u32 = 1;
/// Fixed header length; payload starts here.
pub const HEADER_LEN: usize = 64;
/// Alignment of the payload start relative to the file base.
pub const DATA_ALIGN: usize = 64;

/// `kind` field: row-major f32 embedding matrix.
pub const KIND_EMBEDDINGS: u32 = 1;
/// `kind` field: trajectory corpus (points + prefix index).
pub const KIND_CORPUS: u32 = 2;
/// `kind` field: tiled ground-truth distance matrix.
pub const KIND_TILES: u32 = 3;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF) — the same `crc32`
// the checkpoint format uses (tmn-core re-exports this one). Table-driven,
// built at compile time, with an incremental variant for streaming writers.
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

/// Incremental CRC32 — streaming writers checksum sections as they emit
/// them instead of buffering whole payloads.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    pub fn update(&mut self, data: &[u8]) {
        let mut c = self.state;
        for &b in data {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Errors from opening, validating, or writing a store file. Decoding never
/// panics: arbitrary, truncated, or bit-flipped bytes all land here.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The first four bytes are not `TMNS`.
    BadMagic,
    /// Recognized file, unknown version.
    UnsupportedVersion(u32),
    /// A store file of a different kind (e.g. a corpus opened as embeddings).
    WrongKind { expected: u32, found: u32 },
    /// The file ends before its declared sections do.
    Truncated,
    /// A structural invariant failed (named for diagnostics).
    Corrupt(&'static str),
    /// A CRC32 check failed (`what` names the section).
    CrcMismatch { what: &'static str },
    /// The buffer base is not aligned for zero-copy reads (the mmap path
    /// guarantees page alignment; this arm fires for misaligned in-memory
    /// buffers handed to the parser).
    Misaligned,
}

impl PartialEq for StoreError {
    fn eq(&self, other: &StoreError) -> bool {
        use StoreError::*;
        match (self, other) {
            (Io(a), Io(b)) => a.kind() == b.kind(),
            (BadMagic, BadMagic) | (Truncated, Truncated) | (Misaligned, Misaligned) => true,
            (UnsupportedVersion(a), UnsupportedVersion(b)) => a == b,
            (WrongKind { expected: a, found: b }, WrongKind { expected: c, found: d }) => {
                a == c && b == d
            }
            (Corrupt(a), Corrupt(b)) => a == b,
            (CrcMismatch { what: a }, CrcMismatch { what: b }) => a == b,
            _ => false,
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::BadMagic => write!(f, "not a tmn-store file (bad magic)"),
            StoreError::UnsupportedVersion(v) => write!(f, "unsupported store version {v}"),
            StoreError::WrongKind { expected, found } => {
                write!(f, "wrong store kind: expected {expected}, found {found}")
            }
            StoreError::Truncated => write!(f, "store file ends mid-section"),
            StoreError::Corrupt(what) => write!(f, "corrupt store file: {what}"),
            StoreError::CrcMismatch { what } => write!(f, "store CRC mismatch in {what}"),
            StoreError::Misaligned => write!(f, "store buffer is not aligned for zero-copy reads"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Header helpers
// ---------------------------------------------------------------------------

pub(crate) fn read_u32(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4-byte field"))
}

pub(crate) fn read_u64(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8-byte field"))
}

/// Validate the shared header prefix plus the trailing header CRC and zero
/// pad. `crc_end` is where kind-specific fields stop (the header CRC sits at
/// `crc_end..crc_end+4`, the zero pad runs to [`HEADER_LEN`]).
pub(crate) fn check_header(bytes: &[u8], kind: u32, crc_end: usize) -> Result<(), StoreError> {
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::Truncated);
    }
    if !(bytes.as_ptr() as usize).is_multiple_of(DATA_ALIGN) {
        return Err(StoreError::Misaligned);
    }
    if &bytes[..4] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = read_u32(bytes, 4);
    if version != VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let found = read_u32(bytes, 8);
    if found != kind {
        return Err(StoreError::WrongKind { expected: kind, found });
    }
    if crc32(&bytes[..crc_end]) != read_u32(bytes, crc_end) {
        return Err(StoreError::CrcMismatch { what: "header" });
    }
    if bytes[crc_end + 4..HEADER_LEN].iter().any(|&b| b != 0) {
        return Err(StoreError::Corrupt("nonzero header padding"));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Zero-copy casts. Gated on little-endian hosts: the on-disk format is LE,
// and f32/f64/u64 have no invalid bit patterns, so on LE a validated byte
// range reinterprets in place; a big-endian host would need a converting
// reader (none of our targets are BE — fail loudly instead of silently
// mis-reading).
// ---------------------------------------------------------------------------

macro_rules! cast_fn {
    ($name:ident, $t:ty, $label:literal) => {
        pub(crate) fn $name(bytes: &[u8]) -> Result<&[$t], StoreError> {
            #[cfg(not(target_endian = "little"))]
            {
                let _ = bytes;
                Err(StoreError::Corrupt("zero-copy store requires a little-endian host"))
            }
            #[cfg(target_endian = "little")]
            {
                let size = std::mem::size_of::<$t>();
                if bytes.as_ptr() as usize % std::mem::align_of::<$t>() != 0 {
                    return Err(StoreError::Misaligned);
                }
                if bytes.len() % size != 0 {
                    return Err(StoreError::Corrupt(concat!($label, " section length")));
                }
                // SAFETY: alignment and length checked above; the target has
                // no invalid bit patterns; lifetime is tied to `bytes`.
                Ok(unsafe {
                    std::slice::from_raw_parts(bytes.as_ptr() as *const $t, bytes.len() / size)
                })
            }
        }
    };
}

cast_fn!(cast_f32, f32, "f32");
cast_fn!(cast_f64, f64, "f64");
cast_fn!(cast_u64, u64, "u64");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_zlib_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_crc_matches_oneshot() {
        let data: Vec<u8> = (0..=255).cycle().take(10_000).collect();
        let mut inc = Crc32::new();
        for chunk in data.chunks(97) {
            inc.update(chunk);
        }
        assert_eq!(inc.finalize(), crc32(&data));
    }

    #[test]
    fn casts_check_alignment_and_length() {
        let aligned = crate::AlignedBytes::from_slice(&[0u8; 16]);
        assert_eq!(cast_f32(&aligned).unwrap().len(), 4);
        assert_eq!(cast_f64(&aligned).unwrap().len(), 2);
        assert_eq!(cast_u64(&aligned).unwrap().len(), 2);
        // Odd length → rejected.
        assert_eq!(cast_f32(&aligned[..15]), Err(StoreError::Corrupt("f32 section length")));
        // Misaligned base → rejected.
        assert_eq!(cast_f64(&aligned[1..9]), Err(StoreError::Misaligned));
    }
}
