//! On-disk embedding matrices (`kind = 1`): a row-major f32 matrix behind
//! the shared `TMNS` header, written streaming and read zero-copy.
//!
//! Layout after the common fields (see [`crate::format`]):
//!
//! ```text
//! bytes 12..16  dim u32           — embedding dimensionality
//! bytes 16..24  count u64         — number of rows
//! bytes 24..32  data_len u64      — must equal dim·count·4
//! bytes 32..36  data_crc u32      — CRC32 of the payload
//! bytes 36..40  header_crc u32    — CRC32 of bytes 0..36
//! bytes 40..64  zeros
//! byte  64..    count·dim f32 (LE), row-major
//! ```

use crate::format::{
    cast_f32, check_header, crc32, read_u32, read_u64, Crc32, StoreError, HEADER_LEN,
    KIND_EMBEDDINGS, MAGIC, VERSION,
};
use crate::mmap::Mmap;
use std::fs::File;
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

const CRC_END: usize = 36;

/// A validated, zero-copy view of an embeddings payload inside a byte
/// buffer. Borrow-only; [`EmbeddingsFile`] owns the mapping version.
#[derive(Debug, Clone, Copy)]
pub struct EmbeddingsView<'a> {
    dim: usize,
    count: usize,
    data: &'a [f32],
    raw: &'a [u8],
    data_crc: u32,
}

impl<'a> EmbeddingsView<'a> {
    /// Validate `bytes` as an embeddings file image. The buffer must start
    /// at a 64-byte-aligned address (any mmap base qualifies; see
    /// [`crate::AlignedBytes`] for in-memory buffers). Structural checks and
    /// the header CRC run here; the payload CRC is a full scan, so it is a
    /// separate call ([`verify`](EmbeddingsView::verify)).
    pub fn parse(bytes: &'a [u8]) -> Result<EmbeddingsView<'a>, StoreError> {
        check_header(bytes, KIND_EMBEDDINGS, CRC_END)?;
        let dim = read_u32(bytes, 12) as usize;
        let count = read_u64(bytes, 16);
        let data_len = read_u64(bytes, 24);
        let expected = (count as u128) * (dim as u128) * 4;
        if expected != data_len as u128 || expected > (usize::MAX - HEADER_LEN) as u128 {
            return Err(StoreError::Corrupt("embedding sizes disagree"));
        }
        let data_len = data_len as usize;
        if count > 0 && dim == 0 {
            return Err(StoreError::Corrupt("rows with zero dim"));
        }
        match bytes.len().checked_sub(HEADER_LEN + data_len) {
            None => return Err(StoreError::Truncated),
            Some(0) => {}
            Some(_) => return Err(StoreError::Corrupt("trailing bytes after payload")),
        }
        let raw = &bytes[HEADER_LEN..HEADER_LEN + data_len];
        Ok(EmbeddingsView {
            dim,
            count: count as usize,
            data: cast_f32(raw)?,
            raw,
            data_crc: read_u32(bytes, 32),
        })
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn len(&self) -> usize {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Row `i` as a borrowed slice straight over the file bytes.
    pub fn row(&self, i: usize) -> &'a [f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// The whole matrix, row-major.
    pub fn data(&self) -> &'a [f32] {
        self.data
    }

    /// Full payload CRC scan.
    pub fn verify(&self) -> Result<(), StoreError> {
        if crc32(self.raw) != self.data_crc {
            return Err(StoreError::CrcMismatch { what: "embedding data" });
        }
        Ok(())
    }
}

/// An embeddings file opened through [`Mmap`]. Cloning shares the mapping.
#[derive(Debug, Clone)]
pub struct EmbeddingsFile {
    map: Arc<Mmap>,
    dim: usize,
    count: usize,
}

impl EmbeddingsFile {
    /// Map and validate (structure + header CRC). Payload CRC is a full
    /// file scan — call [`verify`](EmbeddingsFile::verify) when opening
    /// untrusted bytes.
    pub fn open(path: &Path) -> Result<EmbeddingsFile, StoreError> {
        let map = Mmap::open(path)?;
        let view = EmbeddingsView::parse(&map)?;
        let (dim, count) = (view.dim, view.count);
        Ok(EmbeddingsFile { map: Arc::new(map), dim, count })
    }

    /// The validated view over the mapping.
    pub fn view(&self) -> EmbeddingsView<'_> {
        EmbeddingsView::parse(&self.map).expect("file was validated at open")
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn len(&self) -> usize {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Row `i`, zero-copy over the mapping.
    pub fn row(&self, i: usize) -> &[f32] {
        let base = HEADER_LEN + i * self.dim * 4;
        cast_f32(&self.map[base..base + self.dim * 4]).expect("validated at open")
    }

    /// The whole matrix, zero-copy.
    pub fn data(&self) -> &[f32] {
        cast_f32(&self.map[HEADER_LEN..HEADER_LEN + self.count * self.dim * 4])
            .expect("validated at open")
    }

    /// Full payload CRC scan.
    pub fn verify(&self) -> Result<(), StoreError> {
        self.view().verify()
    }
}

/// Streaming embeddings writer: rows go straight to a buffered file with an
/// incremental CRC; nothing but the 64-byte header is buffered, so writing
/// an n-row matrix holds O(1) memory.
pub struct EmbeddingsWriter {
    out: BufWriter<File>,
    dim: usize,
    count: u64,
    crc: Crc32,
    scratch: Vec<u8>,
}

impl EmbeddingsWriter {
    /// Create/truncate `path`. A placeholder header is written immediately
    /// and patched on [`finish`](EmbeddingsWriter::finish); a crashed writer
    /// leaves a file whose header CRC cannot validate.
    pub fn create(path: &Path, dim: usize) -> Result<EmbeddingsWriter, StoreError> {
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(&[0u8; HEADER_LEN])?;
        Ok(EmbeddingsWriter {
            out,
            dim,
            count: 0,
            crc: Crc32::new(),
            scratch: Vec::with_capacity(dim * 4),
        })
    }

    /// Append one row.
    pub fn push(&mut self, row: &[f32]) -> Result<(), StoreError> {
        if row.len() != self.dim {
            return Err(StoreError::Corrupt("row dimension mismatch"));
        }
        self.scratch.clear();
        for v in row {
            self.scratch.extend_from_slice(&v.to_le_bytes());
        }
        self.crc.update(&self.scratch);
        self.out.write_all(&self.scratch)?;
        self.count += 1;
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.count as usize
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Seal the file: flush rows, patch the real header, fsync.
    pub fn finish(self) -> Result<(), StoreError> {
        let EmbeddingsWriter { out, dim, count, crc, .. } = self;
        let mut file = out.into_inner().map_err(|e| StoreError::Io(e.into_error()))?;
        let mut header = [0u8; HEADER_LEN];
        header[..4].copy_from_slice(MAGIC);
        header[4..8].copy_from_slice(&VERSION.to_le_bytes());
        header[8..12].copy_from_slice(&KIND_EMBEDDINGS.to_le_bytes());
        header[12..16].copy_from_slice(&(dim as u32).to_le_bytes());
        header[16..24].copy_from_slice(&count.to_le_bytes());
        header[24..32].copy_from_slice(&(count * dim as u64 * 4).to_le_bytes());
        header[32..36].copy_from_slice(&crc.finalize().to_le_bytes());
        let hcrc = crc32(&header[..CRC_END]);
        header[36..40].copy_from_slice(&hcrc.to_le_bytes());
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&header)?;
        file.sync_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AlignedBytes;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tmn-store-emb-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn write_matrix(path: &Path, rows: &[Vec<f32>], dim: usize) {
        let mut w = EmbeddingsWriter::create(path, dim).unwrap();
        for r in rows {
            w.push(r).unwrap();
        }
        w.finish().unwrap();
    }

    #[test]
    fn roundtrip_bitwise() {
        let p = tmp("roundtrip.tmns");
        let rows: Vec<Vec<f32>> =
            (0..17).map(|i| (0..5).map(|j| (i * 5 + j) as f32 * 0.25 - 3.0).collect()).collect();
        write_matrix(&p, &rows, 5);
        let f = EmbeddingsFile::open(&p).unwrap();
        assert_eq!((f.len(), f.dim()), (17, 5));
        f.verify().unwrap();
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(f.row(i), r.as_slice(), "row {i}");
        }
        // File size is exactly header + payload.
        assert_eq!(std::fs::metadata(&p).unwrap().len(), 64 + 17 * 5 * 4);
    }

    #[test]
    fn empty_matrix_roundtrip() {
        let p = tmp("empty.tmns");
        write_matrix(&p, &[], 8);
        let f = EmbeddingsFile::open(&p).unwrap();
        assert!(f.is_empty());
        assert_eq!(f.dim(), 8);
        f.verify().unwrap();
    }

    #[test]
    fn dim_mismatch_rejected_by_writer() {
        let p = tmp("dim.tmns");
        let mut w = EmbeddingsWriter::create(&p, 3).unwrap();
        assert!(matches!(w.push(&[1.0, 2.0]), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn unfinished_writer_leaves_invalid_file() {
        let p = tmp("unfinished.tmns");
        let mut w = EmbeddingsWriter::create(&p, 2).unwrap();
        w.push(&[1.0, 2.0]).unwrap();
        drop(w); // no finish(): header stays zeroed
        assert!(EmbeddingsFile::open(&p).is_err());
    }

    #[test]
    fn wrong_kind_rejected() {
        let p = tmp("kind.tmns");
        write_matrix(&p, &[vec![1.0]], 1);
        let mut bytes = std::fs::read(&p).unwrap();
        // Claim to be a corpus and re-seal the header so only the kind check
        // can reject it.
        bytes[8..12].copy_from_slice(&crate::format::KIND_CORPUS.to_le_bytes());
        let h = crc32(&bytes[..CRC_END]);
        bytes[36..40].copy_from_slice(&h.to_le_bytes());
        let buf = AlignedBytes::from_slice(&bytes);
        assert!(matches!(
            EmbeddingsView::parse(&buf),
            Err(StoreError::WrongKind { expected: 1, found: 2 })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let p = tmp("trailing.tmns");
        write_matrix(&p, &[vec![1.0, 2.0]], 2);
        let mut bytes = std::fs::read(&p).unwrap();
        bytes.push(0);
        let buf = AlignedBytes::from_slice(&bytes);
        assert_eq!(
            EmbeddingsView::parse(&buf).err().map(|e| e.to_string()),
            Some("corrupt store file: trailing bytes after payload".into())
        );
    }
}
