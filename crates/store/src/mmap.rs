//! A minimal read-only `mmap(2)` wrapper with no libc dependency.
//!
//! The workspace vendors every external crate as a stub and the build has no
//! `libc`, so the mapping is made with raw Linux syscalls (inline asm) on
//! x86_64/aarch64. On any other target the "map" degrades to reading the
//! file into a 64-byte-aligned heap buffer — same API, same alignment
//! guarantees, one extra copy at open time.
//!
//! Safety argument for handing out `&[u8]` (and, after validation, `&[f32]` /
//! `&[f64]`) over the mapping:
//!
//! - The mapping is `PROT_READ` + `MAP_PRIVATE`: the kernel never lets safe
//!   code write through it, and writes to the underlying file by *other*
//!   processes are not guaranteed to be visible (private mapping) — the
//!   store formats are immutable-once-written and CRC-framed precisely so
//!   that any torn/bit-rotted content is detected rather than trusted.
//! - The pointer is page-aligned (4096 ≥ any alignment we cast to) and the
//!   length is fixed at open from `fstat`; slices never extend past it.
//! - `f32`/`f64` have no invalid bit patterns, so reinterpreting validated
//!   little-endian payload bytes is defined for any file content.
//! - The struct owns the mapping and unmaps in `Drop`; all slices borrow
//!   from `&self`, so the borrow checker keeps them from outliving it.

use std::fs::File;
use std::io;
use std::path::Path;

/// Alignment guaranteed for the start of a mapped (or fallback-read) file.
/// Page-aligned mappings exceed it; the heap fallback allocates to it.
pub const MAP_ALIGN: usize = 64;

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod sys {
    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    #[cfg(target_arch = "x86_64")]
    const SYS_MMAP: usize = 9;
    #[cfg(target_arch = "x86_64")]
    const SYS_MUNMAP: usize = 11;
    #[cfg(target_arch = "aarch64")]
    const SYS_MMAP: usize = 222;
    #[cfg(target_arch = "aarch64")]
    const SYS_MUNMAP: usize = 215;

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(nr: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") nr as isize => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(nr: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            inlateout("x0") a as isize => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            in("x8") nr,
            options(nostack)
        );
        ret
    }

    /// Map `len` bytes of `fd` read-only. Returns the page-aligned base.
    pub fn mmap_readonly(fd: i32, len: usize) -> Result<*const u8, i32> {
        // SAFETY: all six arguments follow the mmap(2) ABI; addr=0 lets the
        // kernel pick a placement, and a PROT_READ|MAP_PRIVATE file mapping
        // cannot alias any Rust-owned memory.
        let ret = unsafe { syscall6(SYS_MMAP, 0, len, PROT_READ, MAP_PRIVATE, fd as usize, 0) };
        if (-4095..0).contains(&ret) {
            Err(-ret as i32)
        } else {
            Ok(ret as *const u8)
        }
    }

    /// Unmap a region previously returned by [`mmap_readonly`].
    pub fn munmap(ptr: *const u8, len: usize) {
        // SAFETY: (ptr, len) came from a successful mmap_readonly and is
        // unmapped exactly once (owned by `Mmap`, called from Drop).
        let _ = unsafe { syscall6(SYS_MUNMAP, ptr as usize, len, 0, 0, 0, 0) };
    }
}

/// A 64-byte-aligned owned byte buffer — the mmap fallback, and a test
/// helper for feeding decoder fuzzers buffers with mapping-grade alignment.
pub struct AlignedBytes {
    ptr: *mut u8,
    len: usize,
}

impl AlignedBytes {
    /// Copy `bytes` into a fresh `MAP_ALIGN`-aligned allocation.
    pub fn from_slice(bytes: &[u8]) -> AlignedBytes {
        if bytes.is_empty() {
            return AlignedBytes { ptr: std::ptr::null_mut(), len: 0 };
        }
        let layout = std::alloc::Layout::from_size_align(bytes.len(), MAP_ALIGN)
            .expect("aligned layout for file buffer");
        // SAFETY: layout has nonzero size; allocation failure aborts below.
        let ptr = unsafe { std::alloc::alloc(layout) };
        if ptr.is_null() {
            std::alloc::handle_alloc_error(layout);
        }
        // SAFETY: `ptr` points to a fresh allocation of `bytes.len()` bytes.
        unsafe { std::ptr::copy_nonoverlapping(bytes.as_ptr(), ptr, bytes.len()) };
        AlignedBytes { ptr, len: bytes.len() }
    }
}

impl std::ops::Deref for AlignedBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        if self.len == 0 {
            &[]
        } else {
            // SAFETY: (ptr, len) is an owned, initialized allocation.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }
}

impl Drop for AlignedBytes {
    fn drop(&mut self) {
        if !self.ptr.is_null() {
            let layout = std::alloc::Layout::from_size_align(self.len, MAP_ALIGN)
                .expect("layout was valid at alloc time");
            // SAFETY: same (ptr, layout) pair as the alloc call.
            unsafe { std::alloc::dealloc(self.ptr, layout) };
        }
    }
}

// SAFETY: the buffer is plain owned bytes; no interior mutability.
unsafe impl Send for AlignedBytes {}
// SAFETY: read-only access through &self.
unsafe impl Sync for AlignedBytes {}

enum Backing {
    /// Kernel mapping: (page-aligned base, mapped length).
    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    Mapped { ptr: *const u8, len: usize },
    /// Heap fallback (non-Linux targets, or mmap refusal).
    Heap(AlignedBytes),
    Empty,
}

/// A read-only memory view of a whole file. Derefs to `&[u8]`; the base
/// pointer is at least [`MAP_ALIGN`]-aligned.
pub struct Mmap {
    backing: Backing,
}

impl Mmap {
    /// Map `path` read-only. Empty files produce an empty view without a
    /// kernel mapping (mmap of length 0 is EINVAL).
    pub fn open(path: &Path) -> io::Result<Mmap> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            return Ok(Mmap { backing: Backing::Empty });
        }
        if len > usize::MAX as u64 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "file exceeds address space"));
        }
        Self::map_file(file, len as usize)
    }

    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    fn map_file(file: File, len: usize) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        match sys::mmap_readonly(file.as_raw_fd(), len) {
            Ok(ptr) => Ok(Mmap { backing: Backing::Mapped { ptr, len } }),
            // ENODEV/EACCES etc. (e.g. the filesystem refuses mappings):
            // degrade to the heap copy rather than failing the open.
            Err(_) => Self::read_fallback(file, len),
        }
    }

    #[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
    fn map_file(file: File, len: usize) -> io::Result<Mmap> {
        Self::read_fallback(file, len)
    }

    fn read_fallback(mut file: File, len: usize) -> io::Result<Mmap> {
        use std::io::Read;
        let mut buf = Vec::with_capacity(len);
        file.read_to_end(&mut buf)?;
        Ok(Mmap { backing: Backing::Heap(AlignedBytes::from_slice(&buf)) })
    }

    /// True when backed by a kernel mapping (false: heap fallback / empty).
    pub fn is_kernel_mapped(&self) -> bool {
        #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
        if let Backing::Mapped { .. } = &self.backing {
            return true;
        }
        false
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.backing {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            // SAFETY: (ptr, len) is a live PROT_READ mapping owned by self.
            Backing::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Heap(buf) => buf,
            Backing::Empty => &[],
        }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
        if let Backing::Mapped { ptr, len } = self.backing {
            sys::munmap(ptr, len);
        }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap")
            .field("len", &self.len())
            .field("kernel_mapped", &self.is_kernel_mapped())
            .finish()
    }
}

// SAFETY: the view is immutable for the lifetime of the struct (PROT_READ
// mapping or owned bytes); sharing across threads is read-only.
unsafe impl Send for Mmap {}
// SAFETY: see Send.
unsafe impl Sync for Mmap {}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tmn-store-mmap-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn maps_file_contents() {
        let p = tmp("basic.bin");
        std::fs::write(&p, b"hello mmap").unwrap();
        let m = Mmap::open(&p).unwrap();
        assert_eq!(&m[..], b"hello mmap");
        assert_eq!(m.as_ptr() as usize % MAP_ALIGN, 0, "base not {MAP_ALIGN}-aligned");
    }

    #[test]
    fn kernel_mapping_used_on_linux() {
        let p = tmp("kernel.bin");
        std::fs::write(&p, vec![7u8; 10_000]).unwrap();
        let m = Mmap::open(&p).unwrap();
        if cfg!(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))) {
            assert!(m.is_kernel_mapped(), "expected a real mmap on this target");
        }
        assert!(m.iter().all(|&b| b == 7));
        assert_eq!(m.len(), 10_000);
    }

    #[test]
    fn empty_file_maps_empty() {
        let p = tmp("empty.bin");
        std::fs::write(&p, b"").unwrap();
        let m = Mmap::open(&p).unwrap();
        assert!(m.is_empty());
        assert!(!m.is_kernel_mapped());
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(Mmap::open(Path::new("/nonexistent/tmn-store-test")).is_err());
    }

    #[test]
    fn aligned_bytes_roundtrip() {
        let a = AlignedBytes::from_slice(&[1, 2, 3]);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert_eq!(a.as_ptr() as usize % MAP_ALIGN, 0);
        let e = AlignedBytes::from_slice(&[]);
        assert!(e.is_empty());
    }

    #[test]
    fn mapping_is_shareable_across_threads() {
        let p = tmp("shared.bin");
        std::fs::write(&p, (0u16..2048).flat_map(|x| x.to_le_bytes()).collect::<Vec<u8>>())
            .unwrap();
        let m = std::sync::Arc::new(Mmap::open(&p).unwrap());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = std::sync::Arc::clone(&m);
            handles.push(std::thread::spawn(move || m.iter().map(|&b| b as u64).sum::<u64>()));
        }
        let sums: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(sums.windows(2).all(|w| w[0] == w[1]));
    }
}
