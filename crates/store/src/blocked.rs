//! Out-of-core ground truth (`kind = 3`): the pairwise distance matrix
//! computed and stored as upper-triangle *tiles*, so n is bounded by disk,
//! not by the n²·8 bytes a dense [`tmn_traj::DistanceMatrix`] needs.
//!
//! ## Tiling
//!
//! With block size `t` and `nb = ⌈n/t⌉` block rows, only the `nb·(nb+1)/2`
//! upper-triangle tiles `(bi, bj)`, `bi ≤ bj`, are stored, in row-major
//! triangle order. An off-diagonal tile holds the full `rows × cols` f64
//! rectangle; a diagonal tile holds its full square (zero diagonal, lower
//! half mirrored in-tile) so row reads never straddle a fold. Every cell
//! `i < j` is produced by exactly the same `metric.distance(i, j)` call the
//! in-RAM path makes, which is why the two paths are bitwise-equal
//! (differentially tested in `tests/blocked_differential.rs`).
//!
//! Peak memory while *building* is O(threads · t²) — the tiles in flight —
//! plus the tile directory; never O(n²).
//!
//! ## Layout after the common fields (see [`crate::format`])
//!
//! ```text
//! bytes 12..16  tile u32          — block edge length t ≥ 1
//! bytes 16..24  n u64             — matrix dimension
//! bytes 24..32  dir_off u64       — where the tile directory starts
//! bytes 32..36  dir_crc u32       — CRC32 of the directory section
//! bytes 36..40  header_crc u32    — CRC32 of bytes 0..36
//! bytes 40..64  zeros
//! byte  64..dir_off               tile payloads (f64 LE), canonical order,
//!                                 contiguous — offsets are re-derived and
//!                                 cross-checked at open
//! byte  dir_off..                 directory: per tile
//!                                 { off u64, rows u32, cols u32, crc u32 }
//! ```
//!
//! ## Reads
//!
//! Reads go through the mmap: the OS page cache *is* the block cache for
//! payload bytes, and a per-tile "CRC verified" bitset makes each tile pay
//! its integrity scan exactly once per open. Structural corruption is
//! rejected at [`open`](BlockedDistanceMatrix::open); a payload CRC
//! mismatch discovered on first touch panics with the tile named — the same
//! contract as an in-RAM matrix whose buffer rotted, except it is detected.

use crate::format::{
    cast_f64, check_header, crc32, read_u32, read_u64, StoreError, HEADER_LEN, KIND_TILES,
    MAGIC, VERSION,
};
use crate::mmap::Mmap;
use std::fs::File;
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use tmn_traj::metrics::{Metric, MetricParams};
use tmn_traj::{GroundTruth, Trajectory};

const CRC_END: usize = 36;
const DIR_ENTRY_BYTES: usize = 20;

/// Default block edge: 256² f64 = 512 KiB per tile in flight.
pub const DEFAULT_TILE: usize = 256;

#[derive(Debug, Clone, Copy)]
struct TileEntry {
    off: usize,
    rows: usize,
    cols: usize,
    crc: u32,
}

/// A tiled on-disk pairwise distance matrix, readable through
/// [`GroundTruth`] exactly like the in-RAM [`tmn_traj::DistanceMatrix`].
pub struct BlockedDistanceMatrix {
    map: Arc<Mmap>,
    n: usize,
    tile: usize,
    nb: usize,
    entries: Vec<TileEntry>,
    /// One bit per tile: payload CRC already verified this open.
    verified: Mutex<Vec<u64>>,
}

impl std::fmt::Debug for BlockedDistanceMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockedDistanceMatrix")
            .field("n", &self.n)
            .field("tile", &self.tile)
            .field("tiles", &self.entries.len())
            .finish()
    }
}

/// Expected edge lengths of block `b` out of `nb` over dimension `n`.
fn block_extent(b: usize, n: usize, tile: usize) -> (usize, usize) {
    let start = b * tile;
    (start, n.min(start + tile) - start)
}

impl BlockedDistanceMatrix {
    /// Compute the full pairwise matrix for `trajectories` into `path`,
    /// tiled, with `threads` workers computing tiles in parallel, then
    /// reopen it. Cell values are bitwise-identical to
    /// [`tmn_traj::DistanceMatrix::compute`] on the same inputs.
    pub fn compute(
        path: &Path,
        trajectories: &[Trajectory],
        metric: Metric,
        params: &MetricParams,
        threads: usize,
        tile: usize,
    ) -> Result<BlockedDistanceMatrix, StoreError> {
        assert!(tile >= 1, "tile edge must be at least 1");
        let n = trajectories.len();
        let nb = n.div_ceil(tile);
        let total_tiles = nb * (nb + 1) / 2;
        let threads = threads.max(1);

        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(&[0u8; HEADER_LEN])?;

        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::sync_channel::<(usize, Vec<f64>)>(threads);
        let entries = std::thread::scope(|s| -> Result<Vec<TileEntry>, StoreError> {
            // Move the receiver into the scope: any early return drops it,
            // which unblocks workers stuck on a full channel so the scope
            // can join them instead of deadlocking.
            let rx = rx;
            for _ in 0..threads.min(total_tiles.max(1)) {
                let tx = tx.clone();
                let next = &next;
                s.spawn(move || loop {
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= total_tiles {
                        return;
                    }
                    let (bi, bj) = tile_coords(t, nb);
                    let payload = compute_tile(trajectories, metric, params, bi, bj, n, tile);
                    if tx.send((t, payload)).is_err() {
                        return; // writer bailed
                    }
                });
            }
            drop(tx);

            // Single writer: receive out-of-order, emit in canonical order so
            // payload offsets on disk are deterministic. The reorder buffer
            // holds at most ~`threads` tiles (workers claim indices in order
            // and the sync_channel back-pressures them).
            let mut entries: Vec<TileEntry> = Vec::with_capacity(total_tiles);
            let mut pending: std::collections::BTreeMap<usize, Vec<f64>> =
                std::collections::BTreeMap::new();
            let mut expect = 0usize;
            let mut off = HEADER_LEN;
            let mut scratch: Vec<u8> = Vec::new();
            while expect < total_tiles {
                let Ok((t, payload)) = rx.recv() else {
                    return Err(StoreError::Corrupt("tile worker disappeared"));
                };
                pending.insert(t, payload);
                while let Some(payload) = pending.remove(&expect) {
                    scratch.clear();
                    for v in &payload {
                        scratch.extend_from_slice(&v.to_le_bytes());
                    }
                    let (bi, bj) = tile_coords(expect, nb);
                    let (_, rows) = block_extent(bi, n, tile);
                    let (_, cols) = block_extent(bj, n, tile);
                    let crc = crc32(&scratch);
                    out.write_all(&scratch)?;
                    entries.push(TileEntry { off, rows, cols, crc });
                    off += scratch.len();
                    expect += 1;
                }
            }
            Ok(entries)
        })?;

        // Directory + header.
        let dir_off = entries.last().map(|e| e.off + e.rows * e.cols * 8).unwrap_or(HEADER_LEN);
        let mut dir = Vec::with_capacity(entries.len() * DIR_ENTRY_BYTES);
        for e in &entries {
            dir.extend_from_slice(&(e.off as u64).to_le_bytes());
            dir.extend_from_slice(&(e.rows as u32).to_le_bytes());
            dir.extend_from_slice(&(e.cols as u32).to_le_bytes());
            dir.extend_from_slice(&e.crc.to_le_bytes());
        }
        out.write_all(&dir)?;
        let mut file = out.into_inner().map_err(|e| StoreError::Io(e.into_error()))?;
        let mut header = [0u8; HEADER_LEN];
        header[..4].copy_from_slice(MAGIC);
        header[4..8].copy_from_slice(&VERSION.to_le_bytes());
        header[8..12].copy_from_slice(&KIND_TILES.to_le_bytes());
        header[12..16].copy_from_slice(&(tile as u32).to_le_bytes());
        header[16..24].copy_from_slice(&(n as u64).to_le_bytes());
        header[24..32].copy_from_slice(&(dir_off as u64).to_le_bytes());
        header[32..36].copy_from_slice(&crc32(&dir).to_le_bytes());
        let hcrc = crc32(&header[..CRC_END]);
        header[36..40].copy_from_slice(&hcrc.to_le_bytes());
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&header)?;
        file.sync_all()?;
        drop(file);

        Self::open(path)
    }

    /// Map and validate an existing tile file: header CRC, directory CRC,
    /// and the full offset/shape reconstruction (every entry must sit
    /// exactly where the canonical writer would have put it). Payload CRCs
    /// are checked lazily, once per tile; [`verify`] scans them all.
    ///
    /// [`verify`]: BlockedDistanceMatrix::verify
    pub fn open(path: &Path) -> Result<BlockedDistanceMatrix, StoreError> {
        let map = Mmap::open(path)?;
        let (n, tile, nb, entries) = Self::parse(&map)?;
        let words = entries.len().div_ceil(64);
        Ok(BlockedDistanceMatrix {
            map: Arc::new(map),
            n,
            tile,
            nb,
            entries,
            verified: Mutex::new(vec![0; words]),
        })
    }

    fn parse(bytes: &[u8]) -> Result<(usize, usize, usize, Vec<TileEntry>), StoreError> {
        check_header(bytes, KIND_TILES, CRC_END)?;
        let tile = read_u32(bytes, 12) as usize;
        let n = read_u64(bytes, 16);
        let dir_off = read_u64(bytes, 24);
        if tile == 0 {
            return Err(StoreError::Corrupt("zero tile edge"));
        }
        if n > usize::MAX as u64 / 8 {
            return Err(StoreError::Corrupt("matrix dimension overflow"));
        }
        let n = n as usize;
        let nb = n.div_ceil(tile);
        let total_tiles = (nb as u128) * (nb as u128 + 1) / 2;
        let dir_len = total_tiles * DIR_ENTRY_BYTES as u128;
        if dir_off < HEADER_LEN as u64 {
            return Err(StoreError::Corrupt("directory inside header"));
        }
        let end = dir_off as u128 + dir_len;
        if end > usize::MAX as u128 {
            return Err(StoreError::Corrupt("directory extent overflow"));
        }
        match (bytes.len() as u128).checked_sub(end) {
            None => return Err(StoreError::Truncated),
            Some(0) => {}
            Some(_) => return Err(StoreError::Corrupt("trailing bytes after directory")),
        }
        let dir = &bytes[dir_off as usize..];
        if crc32(dir) != read_u32(bytes, 32) {
            return Err(StoreError::CrcMismatch { what: "tile directory" });
        }
        // Reconstruct the canonical layout and demand the directory matches
        // it exactly — offsets, shapes, and total payload extent.
        let mut entries = Vec::with_capacity(total_tiles as usize);
        let mut off = HEADER_LEN;
        for (t, rec) in dir.chunks_exact(DIR_ENTRY_BYTES).enumerate() {
            let e_off = u64::from_le_bytes(rec[0..8].try_into().expect("8-byte field"));
            let rows = u32::from_le_bytes(rec[8..12].try_into().expect("4-byte field")) as usize;
            let cols = u32::from_le_bytes(rec[12..16].try_into().expect("4-byte field")) as usize;
            let crc = u32::from_le_bytes(rec[16..20].try_into().expect("4-byte field"));
            let (bi, bj) = tile_coords(t, nb);
            let (_, want_rows) = block_extent(bi, n, tile);
            let (_, want_cols) = block_extent(bj, n, tile);
            if rows != want_rows || cols != want_cols {
                return Err(StoreError::Corrupt("tile shape mismatch"));
            }
            if e_off as u128 != off as u128 {
                return Err(StoreError::Corrupt("tile offset mismatch"));
            }
            entries.push(TileEntry { off, rows, cols, crc });
            off += rows * cols * 8;
        }
        if off as u64 != dir_off {
            return Err(StoreError::Corrupt("payload extent mismatch"));
        }
        Ok((n, tile, nb, entries))
    }

    /// Validate a tile-file image in memory: full structural parse plus
    /// every payload CRC. This is the whole-file integrity check the fuzz
    /// suite drives; `open` + lazy per-tile verification is the same logic
    /// spread over time.
    pub fn validate_bytes(bytes: &[u8]) -> Result<(), StoreError> {
        let (_, _, _, entries) = Self::parse(bytes)?;
        for e in &entries {
            if crc32(&bytes[e.off..e.off + e.rows * e.cols * 8]) != e.crc {
                return Err(StoreError::CrcMismatch { what: "tile payload" });
            }
        }
        Ok(())
    }

    /// Matrix dimension.
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Block edge length.
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// Stored tiles (`⌈n/tile⌉·(⌈n/tile⌉+1)/2`).
    pub fn tiles(&self) -> usize {
        self.entries.len()
    }

    /// CRC-scan every tile payload (each at most once per open).
    pub fn verify(&self) -> Result<(), StoreError> {
        for t in 0..self.entries.len() {
            self.tile_slice(t)?;
        }
        Ok(())
    }

    /// Payload of tile `t`, zero-copy, CRC-verified on first touch.
    fn tile_slice(&self, t: usize) -> Result<&[f64], StoreError> {
        let e = self.entries[t];
        let raw = &self.map[e.off..e.off + e.rows * e.cols * 8];
        let (word, bit) = (t / 64, 1u64 << (t % 64));
        let already = {
            let v = self.verified.lock().expect("verified bitset poisoned");
            v[word] & bit != 0
        };
        if !already {
            if crc32(raw) != e.crc {
                return Err(StoreError::CrcMismatch { what: "tile payload" });
            }
            self.verified.lock().expect("verified bitset poisoned")[word] |= bit;
        }
        cast_f64(raw)
    }

    /// Inverse of [`tile_coords`]: block rows before `bi` hold
    /// `nb + (nb-1) + .. + (nb-bi+1) = bi·(2nb − bi + 1)/2` tiles.
    fn tile_of(&self, bi: usize, bj: usize) -> usize {
        debug_assert!(bi <= bj && bj < self.nb);
        bi * (2 * self.nb - bi + 1) / 2 + (bj - bi)
    }

    /// Distance between `i` and `j` (symmetric).
    ///
    /// # Panics
    /// On out-of-range indices, or if the tile's payload CRC fails on first
    /// touch (bit rot after `open`).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of range");
        let (i, j) = if i / self.tile > j / self.tile { (j, i) } else { (i, j) };
        let (bi, bj) = (i / self.tile, j / self.tile);
        let t = self.tile_of(bi, bj);
        let e = self.entries[t];
        let slice = self.tile_slice(t).expect("corrupt ground-truth tile");
        slice[(i - bi * self.tile) * e.cols + (j - bj * self.tile)]
    }

    /// Overwrite `out` with row `i` (all `n` distances), reading one tile
    /// row at a time — never materializing more than the touched tiles.
    pub fn row_into(&self, i: usize, out: &mut Vec<f64>) {
        assert!(i < self.n, "row out of range");
        out.clear();
        out.reserve(self.n);
        let bi = i / self.tile;
        for bj in 0..self.nb {
            if bj >= bi {
                // Row segment lives in tile (bi, bj) as a contiguous run.
                let t = self.tile_of(bi, bj);
                let e = self.entries[t];
                let slice = self.tile_slice(t).expect("corrupt ground-truth tile");
                let r = i - bi * self.tile;
                out.extend_from_slice(&slice[r * e.cols..(r + 1) * e.cols]);
            } else {
                // Mirrored: tile (bj, bi) holds column (i - bi·tile).
                let t = self.tile_of(bj, bi);
                let e = self.entries[t];
                let slice = self.tile_slice(t).expect("corrupt ground-truth tile");
                let c = i - bi * self.tile;
                out.extend((0..e.rows).map(|r| slice[r * e.cols + c]));
            }
        }
    }

    /// Maximum entry, folding tile-by-tile (identical to the dense
    /// [`tmn_traj::DistanceMatrix::max_value`] — same value multiset, and
    /// `max` is order-independent on non-NaN data).
    pub fn max_value(&self) -> f64 {
        let mut m = 0.0f64;
        for t in 0..self.entries.len() {
            let slice = self.tile_slice(t).expect("corrupt ground-truth tile");
            m = slice.iter().copied().fold(m, f64::max);
        }
        m
    }
}

impl GroundTruth for BlockedDistanceMatrix {
    fn len(&self) -> usize {
        BlockedDistanceMatrix::len(self)
    }

    fn get(&self, i: usize, j: usize) -> f64 {
        BlockedDistanceMatrix::get(self, i, j)
    }

    fn row_into(&self, i: usize, out: &mut Vec<f64>) {
        BlockedDistanceMatrix::row_into(self, i, out)
    }

    fn max_value(&self) -> f64 {
        BlockedDistanceMatrix::max_value(self)
    }
}

/// Canonical (bi, bj) of triangle tile index `t` (row-major over the upper
/// triangle of an `nb × nb` block grid).
fn tile_coords(t: usize, nb: usize) -> (usize, usize) {
    // Walk block rows; row bi owns (nb - bi) tiles. nb is at most a few
    // thousand for realistic corpora, so the linear walk is negligible next
    // to tile computation; correctness over cleverness.
    let mut rem = t;
    for bi in 0..nb {
        let row_tiles = nb - bi;
        if rem < row_tiles {
            return (bi, bi + rem);
        }
        rem -= row_tiles;
    }
    panic!("tile index {t} out of range for nb={nb}");
}

/// One tile's payload, row-major `rows × cols`. Every `i < j` cell is the
/// identical `metric.distance` call the dense path makes; diagonal tiles
/// fill `i > j` by in-tile mirror and `i == j` with 0.
fn compute_tile(
    trajectories: &[Trajectory],
    metric: Metric,
    params: &MetricParams,
    bi: usize,
    bj: usize,
    n: usize,
    tile: usize,
) -> Vec<f64> {
    let (r0, rows) = block_extent(bi, n, tile);
    let (c0, cols) = block_extent(bj, n, tile);
    let mut payload = vec![0.0f64; rows * cols];
    for r in 0..rows {
        let i = r0 + r;
        for c in 0..cols {
            let j = c0 + c;
            payload[r * cols + c] = match i.cmp(&j) {
                std::cmp::Ordering::Less => {
                    metric.distance(&trajectories[i], &trajectories[j], params)
                }
                std::cmp::Ordering::Equal => 0.0,
                // Diagonal tile lower half: mirror of the upper half already
                // computed this tile (j - r0 < r ⇒ earlier row).
                std::cmp::Ordering::Greater => payload[(j - r0) * cols + (i - c0)],
            };
        }
    }
    payload
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmn_traj::Point;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tmn-store-blocked-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn trajs(n: usize) -> Vec<Trajectory> {
        (0..n)
            .map(|i| {
                (0..6)
                    .map(|j| Point::new(j as f64 * 0.1 + (i % 7) as f64 * 0.03, i as f64 * 0.05))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn tile_coords_roundtrip() {
        for nb in [1usize, 2, 3, 5, 8] {
            let mut t = 0;
            for bi in 0..nb {
                for bj in bi..nb {
                    assert_eq!(tile_coords(t, nb), (bi, bj), "nb={nb} t={t}");
                    t += 1;
                }
            }
            assert_eq!(t, nb * (nb + 1) / 2);
        }
    }

    #[test]
    fn tile_of_inverts_tile_coords() {
        let p = tmp("tileof.tmns");
        let m = BlockedDistanceMatrix::compute(
            &p,
            &trajs(33),
            Metric::Hausdorff,
            &MetricParams::default(),
            2,
            8,
        )
        .unwrap();
        for t in 0..m.tiles() {
            let (bi, bj) = tile_coords(t, m.nb);
            assert_eq!(m.tile_of(bi, bj), t);
        }
    }

    #[test]
    fn empty_and_single_matrices() {
        let p = tmp("empty.tmns");
        let m = BlockedDistanceMatrix::compute(
            &p,
            &[],
            Metric::Dtw,
            &MetricParams::default(),
            1,
            4,
        )
        .unwrap();
        assert!(m.is_empty());
        assert_eq!(m.tiles(), 0);
        m.verify().unwrap();

        let p1 = tmp("single.tmns");
        let m1 = BlockedDistanceMatrix::compute(
            &p1,
            &trajs(1),
            Metric::Dtw,
            &MetricParams::default(),
            1,
            4,
        )
        .unwrap();
        assert_eq!(m1.len(), 1);
        assert_eq!(m1.get(0, 0), 0.0);
        assert_eq!(m1.max_value(), 0.0);
    }

    #[test]
    fn reopen_matches_computed() {
        let p = tmp("reopen.tmns");
        let m = BlockedDistanceMatrix::compute(
            &p,
            &trajs(21),
            Metric::Dtw,
            &MetricParams::default(),
            3,
            5,
        )
        .unwrap();
        let r = BlockedDistanceMatrix::open(&p).unwrap();
        r.verify().unwrap();
        assert_eq!((r.len(), r.tile(), r.tiles()), (m.len(), m.tile(), m.tiles()));
        for i in 0..21 {
            for j in 0..21 {
                assert_eq!(m.get(i, j).to_bits(), r.get(i, j).to_bits());
            }
        }
    }

    #[test]
    fn payload_bit_flip_detected_on_read() {
        let p = tmp("rot.tmns");
        BlockedDistanceMatrix::compute(
            &p,
            &trajs(12),
            Metric::Dtw,
            &MetricParams::default(),
            1,
            4,
        )
        .unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[HEADER_LEN + 9] ^= 0x01; // inside tile 0's payload
        std::fs::write(&p, &bytes).unwrap();
        let m = BlockedDistanceMatrix::open(&p).unwrap(); // structure intact
        assert_eq!(m.verify(), Err(StoreError::CrcMismatch { what: "tile payload" }));
    }
}
