//! On-disk trajectory corpora (`kind = 2`): all points of all trajectories
//! as one flat f64 section, plus a prefix index mapping trajectory id to
//! its point range.
//!
//! Layout after the common fields (see [`crate::format`]):
//!
//! ```text
//! bytes 12..16  point_dims u32    — always 2 (lon, lat)
//! bytes 16..24  count u64         — number of trajectories
//! bytes 24..32  total_points u64
//! bytes 32..36  data_crc u32      — CRC32 of the point section
//! bytes 36..40  index_crc u32     — CRC32 of the index section
//! bytes 40..44  header_crc u32    — CRC32 of bytes 0..40
//! bytes 44..64  zeros
//! byte  64..                      points: total_points × (lon f64, lat f64), LE
//! byte  64+16·total_points..      index: (count+1) × u64 point prefix offsets
//! ```
//!
//! The index trails the data so the writer can stream points as they
//! arrive, keep only the (count+1)-word index in memory, and patch the
//! header at the end — building a corpus never holds its points in RAM.

use crate::format::{
    cast_f64, cast_u64, check_header, crc32, read_u32, read_u64, Crc32, StoreError, HEADER_LEN,
    KIND_CORPUS, MAGIC, VERSION,
};
use crate::mmap::Mmap;
use std::fs::File;
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;
use tmn_traj::{Point, Trajectory};

const CRC_END: usize = 40;
const POINT_DIMS: u32 = 2;
const POINT_BYTES: usize = 16; // lon f64 + lat f64

/// A validated, zero-copy view of a corpus file image.
#[derive(Debug, Clone, Copy)]
pub struct CorpusView<'a> {
    count: usize,
    points: &'a [f64],
    index: &'a [u64],
    data_raw: &'a [u8],
    data_crc: u32,
}

impl<'a> CorpusView<'a> {
    /// Validate structure, header CRC, and index CRC (+ index monotonicity).
    /// The point-section CRC is a full scan — see
    /// [`verify`](CorpusView::verify). The buffer must start 64-byte
    /// aligned (mmap bases and [`crate::AlignedBytes`] both qualify).
    pub fn parse(bytes: &'a [u8]) -> Result<CorpusView<'a>, StoreError> {
        check_header(bytes, KIND_CORPUS, CRC_END)?;
        if read_u32(bytes, 12) != POINT_DIMS {
            return Err(StoreError::Corrupt("unsupported point dimensionality"));
        }
        let count = read_u64(bytes, 16);
        let total_points = read_u64(bytes, 24);
        let data_len = (total_points as u128) * POINT_BYTES as u128;
        let index_len = (count as u128 + 1) * 8;
        let total = HEADER_LEN as u128 + data_len + index_len;
        if total > usize::MAX as u128 {
            return Err(StoreError::Corrupt("corpus sizes overflow"));
        }
        match (bytes.len() as u128).checked_sub(total) {
            None => return Err(StoreError::Truncated),
            Some(0) => {}
            Some(_) => return Err(StoreError::Corrupt("trailing bytes after index")),
        }
        let data_end = HEADER_LEN + data_len as usize;
        let data_raw = &bytes[HEADER_LEN..data_end];
        let index_raw = &bytes[data_end..];
        if crc32(index_raw) != read_u32(bytes, 36) {
            return Err(StoreError::CrcMismatch { what: "corpus index" });
        }
        let index = cast_u64(index_raw)?;
        if index.first() != Some(&0) || index.last() != Some(&total_points) {
            return Err(StoreError::Corrupt("index endpoints"));
        }
        if index.windows(2).any(|w| w[0] > w[1]) {
            return Err(StoreError::Corrupt("index not monotone"));
        }
        Ok(CorpusView {
            count: count as usize,
            points: cast_f64(data_raw)?,
            index,
            data_raw,
            data_crc: read_u32(bytes, 32),
        })
    }

    /// Number of trajectories.
    pub fn len(&self) -> usize {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn total_points(&self) -> usize {
        self.points.len() / 2
    }

    /// Points of trajectory `i` as interleaved `[lon, lat, lon, lat, ..]`,
    /// borrowed straight from the file bytes.
    pub fn points_raw(&self, i: usize) -> &'a [f64] {
        let (a, b) = (self.index[i] as usize, self.index[i + 1] as usize);
        &self.points[a * 2..b * 2]
    }

    /// Number of points in trajectory `i`.
    pub fn points_len(&self, i: usize) -> usize {
        (self.index[i + 1] - self.index[i]) as usize
    }

    /// Point `j` of trajectory `i`.
    pub fn point(&self, i: usize, j: usize) -> Point {
        let raw = self.points_raw(i);
        Point::new(raw[j * 2], raw[j * 2 + 1])
    }

    /// Materialize trajectory `i` (copies; the `points_*` accessors are the
    /// zero-copy path).
    pub fn get(&self, i: usize) -> Trajectory {
        let raw = self.points_raw(i);
        raw.chunks_exact(2).map(|c| Point::new(c[0], c[1])).collect()
    }

    /// Full point-section CRC scan.
    pub fn verify(&self) -> Result<(), StoreError> {
        if crc32(self.data_raw) != self.data_crc {
            return Err(StoreError::CrcMismatch { what: "corpus points" });
        }
        Ok(())
    }
}

/// A corpus file opened through [`Mmap`]. Cloning shares the mapping.
#[derive(Debug, Clone)]
pub struct CorpusFile {
    map: Arc<Mmap>,
    count: usize,
}

impl CorpusFile {
    /// Map and validate (structure, header CRC, index CRC). Point-section
    /// CRC is a full scan — call [`verify`](CorpusFile::verify) for
    /// untrusted files.
    pub fn open(path: &Path) -> Result<CorpusFile, StoreError> {
        let map = Mmap::open(path)?;
        let count = CorpusView::parse(&map)?.count;
        Ok(CorpusFile { map: Arc::new(map), count })
    }

    /// The validated view over the mapping.
    pub fn view(&self) -> CorpusView<'_> {
        CorpusView::parse(&self.map).expect("file was validated at open")
    }

    pub fn len(&self) -> usize {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Materialize trajectory `i`.
    pub fn get(&self, i: usize) -> Trajectory {
        self.view().get(i)
    }

    /// Full point-section CRC scan.
    pub fn verify(&self) -> Result<(), StoreError> {
        self.view().verify()
    }
}

/// Streaming corpus writer: points are written (and CRC'd) as trajectories
/// arrive; only the prefix index (8 bytes per trajectory) stays in memory.
pub struct CorpusWriter {
    out: BufWriter<File>,
    index: Vec<u64>,
    crc: Crc32,
    scratch: Vec<u8>,
}

impl CorpusWriter {
    /// Create/truncate `path`; header is patched on
    /// [`finish`](CorpusWriter::finish).
    pub fn create(path: &Path) -> Result<CorpusWriter, StoreError> {
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(&[0u8; HEADER_LEN])?;
        Ok(CorpusWriter { out, index: vec![0], crc: Crc32::new(), scratch: Vec::new() })
    }

    /// Append one trajectory.
    pub fn push(&mut self, traj: &Trajectory) -> Result<(), StoreError> {
        self.scratch.clear();
        for p in traj.points() {
            self.scratch.extend_from_slice(&p.lon.to_le_bytes());
            self.scratch.extend_from_slice(&p.lat.to_le_bytes());
        }
        self.crc.update(&self.scratch);
        self.out.write_all(&self.scratch)?;
        let prev = *self.index.last().expect("index starts with 0");
        self.index.push(prev + traj.len() as u64);
        Ok(())
    }

    /// Trajectories appended so far.
    pub fn len(&self) -> usize {
        self.index.len() - 1
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Seal the file: append the index, patch the header, fsync.
    pub fn finish(self) -> Result<(), StoreError> {
        let CorpusWriter { mut out, index, crc, .. } = self;
        let mut index_bytes = Vec::with_capacity(index.len() * 8);
        for v in &index {
            index_bytes.extend_from_slice(&v.to_le_bytes());
        }
        out.write_all(&index_bytes)?;
        let mut file = out.into_inner().map_err(|e| StoreError::Io(e.into_error()))?;
        let count = (index.len() - 1) as u64;
        let total_points = *index.last().expect("nonempty index");
        let mut header = [0u8; HEADER_LEN];
        header[..4].copy_from_slice(MAGIC);
        header[4..8].copy_from_slice(&VERSION.to_le_bytes());
        header[8..12].copy_from_slice(&KIND_CORPUS.to_le_bytes());
        header[12..16].copy_from_slice(&POINT_DIMS.to_le_bytes());
        header[16..24].copy_from_slice(&count.to_le_bytes());
        header[24..32].copy_from_slice(&total_points.to_le_bytes());
        header[32..36].copy_from_slice(&crc.finalize().to_le_bytes());
        header[36..40].copy_from_slice(&crc32(&index_bytes).to_le_bytes());
        let hcrc = crc32(&header[..CRC_END]);
        header[40..44].copy_from_slice(&hcrc.to_le_bytes());
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&header)?;
        file.sync_all()?;
        Ok(())
    }
}

/// Convenience: stream a slice of trajectories to `path`.
pub fn write_corpus(path: &Path, trajs: &[Trajectory]) -> Result<(), StoreError> {
    let mut w = CorpusWriter::create(path)?;
    for t in trajs {
        w.push(t)?;
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tmn-store-corpus-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn trajs() -> Vec<Trajectory> {
        (0..9)
            .map(|i| {
                (0..(3 + i % 4))
                    .map(|j| Point::new(i as f64 + j as f64 * 0.125, -(j as f64) * 0.5))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn roundtrip_bitwise() {
        let p = tmp("roundtrip.tmns");
        let ts = trajs();
        write_corpus(&p, &ts).unwrap();
        let f = CorpusFile::open(&p).unwrap();
        f.verify().unwrap();
        assert_eq!(f.len(), ts.len());
        let v = f.view();
        for (i, t) in ts.iter().enumerate() {
            assert_eq!(v.points_len(i), t.len());
            let got = f.get(i);
            assert_eq!(got.len(), t.len());
            for (a, b) in got.points().iter().zip(t.points()) {
                assert_eq!(a.lon.to_bits(), b.lon.to_bits());
                assert_eq!(a.lat.to_bits(), b.lat.to_bits());
            }
            // Zero-copy accessors agree with the materialized trajectory.
            let raw = v.points_raw(i);
            assert_eq!(raw.len(), 2 * t.len());
            for j in 0..t.len() {
                assert_eq!(v.point(i, j).lon.to_bits(), t.points()[j].lon.to_bits());
            }
        }
    }

    #[test]
    fn empty_corpus_and_empty_trajectories() {
        let p = tmp("empty.tmns");
        write_corpus(&p, &[]).unwrap();
        let f = CorpusFile::open(&p).unwrap();
        assert!(f.is_empty());
        f.verify().unwrap();

        let p2 = tmp("empty-trajs.tmns");
        let ts = vec![Trajectory::new(Vec::new()), Trajectory::from_coords(&[(1.0, 2.0)])];
        write_corpus(&p2, &ts).unwrap();
        let f2 = CorpusFile::open(&p2).unwrap();
        assert_eq!(f2.len(), 2);
        assert_eq!(f2.view().points_len(0), 0);
        assert_eq!(f2.view().points_len(1), 1);
        f2.verify().unwrap();
    }

    #[test]
    fn point_flip_caught_by_verify() {
        let p = tmp("flip.tmns");
        write_corpus(&p, &trajs()).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        let n = bytes.len();
        bytes[HEADER_LEN + 11] ^= 0x40; // inside the point section
        std::fs::write(&p, &bytes).unwrap();
        assert_eq!(n, std::fs::metadata(&p).unwrap().len() as usize);
        let f = CorpusFile::open(&p).unwrap(); // structure still valid
        assert_eq!(f.verify(), Err(StoreError::CrcMismatch { what: "corpus points" }));
    }
}
