//! # tmn-store
//!
//! The scale-out data plane: memory-mapped, zero-copy persistence for
//! trajectory corpora, embedding matrices, and out-of-core ground truth.
//! This is the layer that decouples corpus size from RAM — everything above
//! it (trainer, evaluator, serving engine, benches) reads trajectories and
//! distances through views over a file instead of `Vec`s rebuilt per run.
//!
//! Three file kinds share one CRC-framed `TMNS` header discipline (grown
//! from the checkpoint-v2 format; see [`format`]):
//!
//! - [`EmbeddingsFile`] / [`EmbeddingsWriter`] — a row-major f32 matrix.
//!   Rows come back as `&[f32]` borrowed straight from the mapping.
//! - [`CorpusFile`] / [`CorpusWriter`] — trajectory point data plus a
//!   prefix index; point slices are `&[f64]` over the file. Writers stream:
//!   building a corpus never holds it in memory.
//! - [`BlockedDistanceMatrix`] — pairwise ground truth computed in
//!   parallel tile blocks and spilled to disk, bitwise-equal to
//!   [`tmn_traj::DistanceMatrix`] but with O(threads·tile²) peak memory
//!   instead of O(n²). Implements [`tmn_traj::GroundTruth`], so the trainer
//!   and evaluator cannot tell the two apart.
//!
//! The mmap itself is a hand-rolled `mmap(2)` wrapper ([`Mmap`]) — the
//! workspace builds offline with no libc, so the syscall is made directly
//! (with an aligned-heap-read fallback on non-Linux targets). See
//! [`mmap`] for the safety argument.

mod blocked;
mod corpus;
pub mod format;
mod embeddings;
pub mod mmap;

pub use blocked::{BlockedDistanceMatrix, DEFAULT_TILE};
pub use corpus::{write_corpus, CorpusFile, CorpusView, CorpusWriter};
pub use embeddings::{EmbeddingsFile, EmbeddingsView, EmbeddingsWriter};
pub use format::{crc32, Crc32, StoreError};
pub use mmap::{AlignedBytes, Mmap, MAP_ALIGN};
