//! Fuzz suite for the store decoders, in the mold of the checkpoint fuzz
//! suite: parsing must never panic on arbitrary/truncated/bit-flipped
//! bytes, and because every header byte is either CRC-covered or
//! validated-zero — and both payload sections carry their own CRC — *every*
//! single-bit flip of a valid file must be rejected (walked exhaustively).

use proptest::prelude::*;
use tmn_store::{
    write_corpus, AlignedBytes, BlockedDistanceMatrix, CorpusView, EmbeddingsView, EmbeddingsWriter,
    StoreError,
};
use tmn_traj::metrics::{Metric, MetricParams};
use tmn_traj::{Point, Trajectory};

fn tmpdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tmn-store-fuzz-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn trajs(n: usize) -> Vec<Trajectory> {
    (0..n)
        .map(|i| {
            (0..(4 + i % 3))
                .map(|j| Point::new(j as f64 * 0.2 + i as f64 * 0.01, (i % 5) as f64 * 0.1))
                .collect()
        })
        .collect()
}

/// A small but fully populated corpus file image.
fn corpus_bytes() -> Vec<u8> {
    let p = tmpdir().join("fuzz-corpus.tmns");
    write_corpus(&p, &trajs(7)).unwrap();
    std::fs::read(&p).unwrap()
}

/// A small embeddings file image.
fn embeddings_bytes() -> Vec<u8> {
    let p = tmpdir().join("fuzz-emb.tmns");
    let mut w = EmbeddingsWriter::create(&p, 3).unwrap();
    for i in 0..11 {
        w.push(&[i as f32, -0.5 * i as f32, 2.0]).unwrap();
    }
    w.finish().unwrap();
    std::fs::read(&p).unwrap()
}

/// A small tiled ground-truth file image (ragged edge: n=10, tile=4).
fn tiles_bytes() -> Vec<u8> {
    let p = tmpdir().join("fuzz-tiles.tmns");
    BlockedDistanceMatrix::compute(&p, &trajs(10), Metric::Dtw, &MetricParams::default(), 2, 4)
        .unwrap();
    std::fs::read(&p).unwrap()
}

/// Structural parse + full payload CRC for each decoder, against an
/// aligned copy of `bytes` (matching what a mapping would hand them).
fn full_check_embeddings(bytes: &[u8]) -> Result<(), StoreError> {
    let buf = AlignedBytes::from_slice(bytes);
    EmbeddingsView::parse(&buf)?.verify()
}

fn full_check_corpus(bytes: &[u8]) -> Result<(), StoreError> {
    let buf = AlignedBytes::from_slice(bytes);
    CorpusView::parse(&buf)?.verify()
}

fn full_check_tiles(bytes: &[u8]) -> Result<(), StoreError> {
    let buf = AlignedBytes::from_slice(bytes);
    BlockedDistanceMatrix::validate_bytes(&buf)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary garbage: all three decoders return errors, never panic.
    #[test]
    fn decode_arbitrary_bytes_never_panics(bytes in prop::collection::vec(0u8..=255, 0..256)) {
        let _ = full_check_embeddings(&bytes);
        let _ = full_check_corpus(&bytes);
        let _ = full_check_tiles(&bytes);
    }

    /// Garbage behind a valid magic/version/kind prefix reaches the deep
    /// paths (size fields, section offsets, directory walk) — still no
    /// panics, no unbounded allocation.
    #[test]
    fn decode_framed_garbage_never_panics(
        kind in prop_oneof![Just(1u32), Just(2u32), Just(3u32)],
        body in prop::collection::vec(0u8..=255, 0..256),
    ) {
        let mut buf = b"TMNS".to_vec();
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&kind.to_le_bytes());
        buf.extend_from_slice(&body);
        let _ = full_check_embeddings(&buf);
        let _ = full_check_corpus(&buf);
        let _ = full_check_tiles(&buf);
    }

    /// Truncations at every length parse cleanly into an error (a shorter
    /// file can never validate: section extents are checked exactly).
    #[test]
    fn truncation_never_panics_and_is_rejected(cut_seed in 0usize..usize::MAX) {
        let clean = corpus_bytes();
        let cut = cut_seed % clean.len();
        prop_assert!(full_check_corpus(&clean[..cut]).is_err());
        let clean = tiles_bytes();
        let cut = cut_seed % clean.len();
        prop_assert!(full_check_tiles(&clean[..cut]).is_err());
    }

    /// Random single-byte mutations of a valid tiles file: rejected, no
    /// panics (the exhaustive bit walk below covers the other two kinds
    /// completely; this samples the larger tiled file).
    #[test]
    fn tiles_single_byte_mutation_rejected(
        pos_seed in 0usize..usize::MAX,
        xor in 1u8..=255,
    ) {
        let clean = tiles_bytes();
        let pos = pos_seed % clean.len();
        let mut bad = clean.clone();
        bad[pos] ^= xor;
        prop_assert!(full_check_tiles(&bad).is_err(), "mutation at {pos} (^{xor:#x}) accepted");
    }
}

/// Every header byte is CRC-covered or validated-zero and the payload has
/// its own CRC, so *no* single-bit flip of a corpus file may decode.
#[test]
fn corpus_rejects_every_single_bit_flip() {
    let clean = corpus_bytes();
    assert!(full_check_corpus(&clean).is_ok(), "baseline corpus must validate");
    for byte in 0..clean.len() {
        for bit in 0..8 {
            let mut bad = clean.clone();
            bad[byte] ^= 1 << bit;
            assert!(
                full_check_corpus(&bad).is_err(),
                "single-bit flip at byte {byte} bit {bit} was accepted"
            );
        }
    }
}

/// Same exhaustive guarantee for embeddings files.
#[test]
fn embeddings_reject_every_single_bit_flip() {
    let clean = embeddings_bytes();
    assert!(full_check_embeddings(&clean).is_ok(), "baseline embeddings must validate");
    for byte in 0..clean.len() {
        for bit in 0..8 {
            let mut bad = clean.clone();
            bad[byte] ^= 1 << bit;
            assert!(
                full_check_embeddings(&bad).is_err(),
                "single-bit flip at byte {byte} bit {bit} was accepted"
            );
        }
    }
}

/// Same exhaustive guarantee for tiled ground-truth files.
#[test]
fn tiles_reject_every_single_bit_flip() {
    let clean = tiles_bytes();
    assert!(full_check_tiles(&clean).is_ok(), "baseline tile file must validate");
    for byte in 0..clean.len() {
        for bit in 0..8 {
            let mut bad = clean.clone();
            bad[byte] ^= 1 << bit;
            assert!(
                full_check_tiles(&bad).is_err(),
                "single-bit flip at byte {byte} bit {bit} was accepted"
            );
        }
    }
}

/// The zero-copy casts require a mapping-grade base address; a buffer that
/// is off by one byte must be rejected up front, not mis-read.
#[test]
fn misaligned_header_rejected() {
    let clean = corpus_bytes();
    let mut padded = vec![0u8];
    padded.extend_from_slice(&clean);
    let buf = AlignedBytes::from_slice(&padded);
    // buf[1..] holds the byte-exact valid file at an unaligned base.
    assert_eq!(CorpusView::parse(&buf[1..]).err(), Some(StoreError::Misaligned));

    let clean = embeddings_bytes();
    let mut padded = vec![0u8];
    padded.extend_from_slice(&clean);
    let buf = AlignedBytes::from_slice(&padded);
    assert_eq!(EmbeddingsView::parse(&buf[1..]).err().map(|e| format!("{e}")),
               Some("store buffer is not aligned for zero-copy reads".into()));
}
