//! Differential oracle: the blocked, out-of-core ground truth must be
//! *bitwise* identical to the dense in-RAM `DistanceMatrix` on the same
//! inputs — across metrics, tile sizes (including ragged edges and
//! degenerate tile=1), and worker counts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tmn_store::BlockedDistanceMatrix;
use tmn_traj::metrics::{Metric, MetricParams};
use tmn_traj::{DistanceMatrix, GroundTruth, Point, Trajectory};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tmn-store-diff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn random_trajs(n: usize, seed: u64) -> Vec<Trajectory> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let len = rng.gen_range(3..12);
            let (mut lon, mut lat) = (rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
            (0..len)
                .map(|_| {
                    lon += rng.gen_range(-0.05..0.05);
                    lat += rng.gen_range(-0.05..0.05);
                    Point::new(lon, lat)
                })
                .collect()
        })
        .collect()
}

fn assert_bitwise_equal(dense: &DistanceMatrix, blocked: &BlockedDistanceMatrix, label: &str) {
    let n = dense.len();
    assert_eq!(blocked.len(), n, "{label}: dimension");
    // Every cell, both triangles and the diagonal.
    for i in 0..n {
        for j in 0..n {
            assert_eq!(
                dense.get(i, j).to_bits(),
                blocked.get(i, j).to_bits(),
                "{label}: cell ({i},{j})"
            );
        }
    }
    // Whole rows through the GroundTruth interface.
    let mut row = Vec::new();
    for i in 0..n {
        blocked.row_into(i, &mut row);
        assert_eq!(row.len(), n, "{label}: row {i} length");
        for (j, v) in row.iter().enumerate() {
            assert_eq!(dense.row(i)[j].to_bits(), v.to_bits(), "{label}: row {i} col {j}");
        }
    }
    // Derived quantities the trainer/evaluator consume.
    assert_eq!(dense.max_value().to_bits(), blocked.max_value().to_bits(), "{label}: max");
    for i in 0..n {
        assert_eq!(dense.knn_of(i, 5), GroundTruth::knn_of(blocked, i, 5), "{label}: knn {i}");
    }
}

#[test]
fn blocked_matches_dense_across_tile_sizes() {
    // n=33 with tile 8 exercises ragged edge blocks; tile 64 puts the whole
    // matrix in one tile; tile 1 makes every cell its own tile.
    let trajs = random_trajs(33, 11);
    let params = MetricParams::default();
    let dense = DistanceMatrix::compute(&trajs, Metric::Dtw, &params, 2);
    for tile in [1usize, 8, 64] {
        let p = tmp(&format!("tiles-{tile}.tmns"));
        let blocked =
            BlockedDistanceMatrix::compute(&p, &trajs, Metric::Dtw, &params, 2, tile).unwrap();
        assert_bitwise_equal(&dense, &blocked, &format!("tile={tile}"));
    }
}

#[test]
fn blocked_matches_dense_across_thread_counts() {
    let trajs = random_trajs(26, 23);
    let params = MetricParams::default();
    let dense = DistanceMatrix::compute(&trajs, Metric::Hausdorff, &params, 1);
    for threads in [1usize, 3, 7] {
        let p = tmp(&format!("threads-{threads}.tmns"));
        let blocked =
            BlockedDistanceMatrix::compute(&p, &trajs, Metric::Hausdorff, &params, threads, 7)
                .unwrap();
        assert_bitwise_equal(&dense, &blocked, &format!("threads={threads}"));
    }
}

#[test]
fn blocked_matches_dense_across_metrics() {
    let trajs = random_trajs(17, 31);
    let params = MetricParams::default();
    for metric in [Metric::Frechet, Metric::Erp, Metric::Edr, Metric::Lcss] {
        let dense = DistanceMatrix::compute(&trajs, metric, &params, 2);
        let p = tmp(&format!("metric-{metric:?}.tmns"));
        let blocked = BlockedDistanceMatrix::compute(&p, &trajs, metric, &params, 2, 6).unwrap();
        assert_bitwise_equal(&dense, &blocked, &format!("{metric:?}"));
    }
}

#[test]
fn reopened_file_stays_bitwise_equal() {
    let trajs = random_trajs(20, 47);
    let params = MetricParams::default();
    let dense = DistanceMatrix::compute(&trajs, Metric::Dtw, &params, 2);
    let p = tmp("reopen.tmns");
    drop(BlockedDistanceMatrix::compute(&p, &trajs, Metric::Dtw, &params, 2, 6).unwrap());
    let reopened = BlockedDistanceMatrix::open(&p).unwrap();
    reopened.verify().unwrap();
    assert_bitwise_equal(&dense, &reopened, "reopened");
}
