//! Geographic points. A trajectory point is a (longitude, latitude) pair
//! (Definition 1 in the paper); distance metrics operate on Euclidean
//! distance in coordinate space, matching the reference implementations of
//! NeuTraj/T3S that feed raw coordinate tuples to the models.

use serde::{Deserialize, Serialize};

/// A 2-D sample point of a trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    pub lon: f64,
    pub lat: f64,
}

impl Point {
    pub const fn new(lon: f64, lat: f64) -> Point {
        Point { lon, lat }
    }

    /// Euclidean distance in coordinate space.
    pub fn dist(&self, other: &Point) -> f64 {
        let dx = self.lon - other.lon;
        let dy = self.lat - other.lat;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance (avoids the sqrt for comparisons).
    pub fn dist_sq(&self, other: &Point) -> f64 {
        let dx = self.lon - other.lon;
        let dy = self.lat - other.lat;
        dx * dx + dy * dy
    }

    /// Great-circle distance in meters (haversine), for reporting real-world
    /// scales of the synthetic datasets.
    pub fn haversine_m(&self, other: &Point) -> f64 {
        const R: f64 = 6_371_000.0;
        let (la1, la2) = (self.lat.to_radians(), other.lat.to_radians());
        let dlat = (other.lat - self.lat).to_radians();
        let dlon = (other.lon - self.lon).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + la1.cos() * la2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * R * a.sqrt().asin()
    }
}

impl From<(f64, f64)> for Point {
    fn from((lon, lat): (f64, f64)) -> Point {
        Point { lon, lat }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_345() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist_sq(&b), 25.0);
    }

    #[test]
    fn dist_symmetric_and_identity() {
        let a = Point::new(1.5, -2.0);
        let b = Point::new(-0.5, 3.0);
        assert_eq!(a.dist(&b), b.dist(&a));
        assert_eq!(a.dist(&a), 0.0);
    }

    #[test]
    fn haversine_equator_degree() {
        // One degree of longitude at the equator ≈ 111.19 km.
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let d = a.haversine_m(&b);
        assert!((d - 111_195.0).abs() < 200.0, "got {d}");
    }
}
