//! Trajectory simplification: Douglas–Peucker (error-bounded) in addition
//! to the even-stride compression Traj2SimVec uses (`Trajectory::simplify`).
//!
//! Simplification shortens the O(n²) ground-truth computation and is the
//! preprocessing step behind Traj2SimVec's k-d-tree sampling.

use crate::{Point, Trajectory};

/// Perpendicular distance from `p` to the segment `(a, b)`.
fn segment_distance(p: &Point, a: &Point, b: &Point) -> f64 {
    let (dx, dy) = (b.lon - a.lon, b.lat - a.lat);
    let len_sq = dx * dx + dy * dy;
    if len_sq < 1e-24 {
        return p.dist(a);
    }
    let t = (((p.lon - a.lon) * dx + (p.lat - a.lat) * dy) / len_sq).clamp(0.0, 1.0);
    let proj = Point::new(a.lon + t * dx, a.lat + t * dy);
    p.dist(&proj)
}

/// Douglas–Peucker simplification with tolerance `eps` (coordinate units).
///
/// Keeps the first and last points; recursively keeps the farthest point of
/// each span whose deviation exceeds `eps`. Deterministic, order-preserving.
pub fn douglas_peucker(t: &Trajectory, eps: f64) -> Trajectory {
    assert!(eps >= 0.0, "douglas_peucker: eps must be non-negative");
    let pts = t.points();
    if pts.len() <= 2 {
        return t.clone();
    }
    let mut keep = vec![false; pts.len()];
    keep[0] = true;
    keep[pts.len() - 1] = true;
    // Iterative stack of (start, end) spans to avoid recursion depth limits.
    let mut stack = vec![(0usize, pts.len() - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi <= lo + 1 {
            continue;
        }
        let (mut worst, mut worst_d) = (lo, -1.0f64);
        for (i, p) in pts.iter().enumerate().take(hi).skip(lo + 1) {
            let d = segment_distance(p, &pts[lo], &pts[hi]);
            if d > worst_d {
                worst = i;
                worst_d = d;
            }
        }
        if worst_d > eps {
            keep[worst] = true;
            stack.push((lo, worst));
            stack.push((worst, hi));
        }
    }
    pts.iter()
        .zip(&keep)
        .filter_map(|(p, &k)| k.then_some(*p))
        .collect()
}

/// Maximum perpendicular deviation of `original` from the polyline
/// `simplified` (a quality measure for simplification).
pub fn max_deviation(original: &Trajectory, simplified: &Trajectory) -> f64 {
    assert!(simplified.len() >= 2, "max_deviation: simplified needs >= 2 points");
    let segs = simplified.points();
    original
        .points()
        .iter()
        .map(|p| {
            segs.windows(2)
                .map(|w| segment_distance(p, &w[0], &w[1]))
                .fold(f64::INFINITY, f64::min)
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zigzag(n: usize, amp: f64) -> Trajectory {
        (0..n)
            .map(|i| Point::new(i as f64, if i % 2 == 0 { 0.0 } else { amp }))
            .collect()
    }

    #[test]
    fn straight_line_collapses_to_endpoints() {
        let t: Trajectory = (0..20).map(|i| Point::new(i as f64, 2.0 * i as f64)).collect();
        let s = douglas_peucker(&t, 1e-9);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], t[0]);
        assert_eq!(s[1], t[19]);
    }

    #[test]
    fn zero_eps_keeps_all_nontrivial_points() {
        let t = zigzag(9, 1.0);
        let s = douglas_peucker(&t, 0.0);
        assert_eq!(s.len(), 9);
    }

    #[test]
    fn tolerance_controls_point_count() {
        let t = zigzag(21, 0.5);
        let fine = douglas_peucker(&t, 0.1);
        let coarse = douglas_peucker(&t, 1.0);
        assert!(coarse.len() < fine.len());
        assert!(coarse.len() >= 2);
    }

    #[test]
    fn deviation_bounded_by_eps() {
        let t: Trajectory = (0..50)
            .map(|i| {
                let x = i as f64 * 0.1;
                Point::new(x, (x * 2.0).sin())
            })
            .collect();
        for eps in [0.05, 0.2, 0.5] {
            let s = douglas_peucker(&t, eps);
            let dev = max_deviation(&t, &s);
            assert!(dev <= eps + 1e-9, "eps {eps}: deviation {dev}");
        }
    }

    #[test]
    fn short_trajectories_pass_through() {
        let t = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 1.0)]);
        assert_eq!(douglas_peucker(&t, 0.5), t);
        let single = Trajectory::from_coords(&[(3.0, 3.0)]);
        assert_eq!(douglas_peucker(&single, 0.5).len(), 1);
    }

    #[test]
    fn endpoints_always_preserved() {
        let t = zigzag(15, 0.3);
        let s = douglas_peucker(&t, 10.0);
        assert_eq!(s[0], t[0]);
        assert_eq!(s[s.len() - 1], t[14]);
    }
}
