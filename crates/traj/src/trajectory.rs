//! The [`Trajectory`] type: an ordered sequence of sample points.

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// A trajectory `T = (p⁽¹⁾, .., p⁽ⁿ⁾)` (Definition 1).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trajectory {
    points: Vec<Point>,
}

impl Trajectory {
    pub fn new(points: Vec<Point>) -> Trajectory {
        Trajectory { points }
    }

    /// Build from `(lon, lat)` tuples.
    pub fn from_coords(coords: &[(f64, f64)]) -> Trajectory {
        Trajectory { points: coords.iter().map(|&c| c.into()).collect() }
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn points(&self) -> &[Point] {
        &self.points
    }

    pub fn push(&mut self, p: Point) {
        self.points.push(p);
    }

    /// The prefix sub-trajectory `T^{(:i)}` containing the first `i` points
    /// (used by the sub-trajectory loss, Eq. 15).
    pub fn prefix(&self, i: usize) -> Trajectory {
        assert!(i <= self.len(), "prefix({i}) of length-{} trajectory", self.len());
        Trajectory { points: self.points[..i].to_vec() }
    }

    /// The suffix sub-trajectory holding the last `min(k, len)` points —
    /// the sliding window that streaming similarity queries embed.
    pub fn last_window(&self, k: usize) -> Trajectory {
        let n = self.points.len();
        Trajectory { points: self.points[n.saturating_sub(k)..].to_vec() }
    }

    /// Axis-aligned bounding box `((min_lon, min_lat), (max_lon, max_lat))`.
    pub fn bbox(&self) -> Option<((f64, f64), (f64, f64))> {
        if self.points.is_empty() {
            return None;
        }
        let mut min = (f64::INFINITY, f64::INFINITY);
        let mut max = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in &self.points {
            min.0 = min.0.min(p.lon);
            min.1 = min.1.min(p.lat);
            max.0 = max.0.max(p.lon);
            max.1 = max.1.max(p.lat);
        }
        Some((min, max))
    }

    /// Total travelled path length (Euclidean in coordinate space).
    pub fn path_length(&self) -> f64 {
        self.points.windows(2).map(|w| w[0].dist(&w[1])).sum()
    }

    /// Arithmetic mean of the points (used by the k-d tree sampler's
    /// simplified representation).
    pub fn centroid(&self) -> Option<Point> {
        if self.points.is_empty() {
            return None;
        }
        let n = self.points.len() as f64;
        let (sx, sy) = self
            .points
            .iter()
            .fold((0.0, 0.0), |(sx, sy), p| (sx + p.lon, sy + p.lat));
        Some(Point::new(sx / n, sy / n))
    }

    /// Downsample to exactly `k` points by even index striding (Traj2SimVec's
    /// trajectory simplification). If the trajectory is shorter than `k`, the
    /// last point is repeated.
    pub fn simplify(&self, k: usize) -> Trajectory {
        assert!(k > 0, "simplify: k must be positive");
        if self.points.is_empty() {
            return Trajectory::default();
        }
        let n = self.points.len();
        let points = (0..k)
            .map(|i| {
                let idx = if k == 1 { 0 } else { i * (n - 1) / (k - 1) };
                self.points[idx.min(n - 1)]
            })
            .collect();
        Trajectory { points }
    }

    /// Flatten to interleaved `[lon0, lat0, lon1, lat1, ..]` f32 features for
    /// model input.
    pub fn to_features(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.points.len() * 2);
        for p in &self.points {
            out.push(p.lon as f32);
            out.push(p.lat as f32);
        }
        out
    }
}

impl std::ops::Index<usize> for Trajectory {
    type Output = Point;
    fn index(&self, i: usize) -> &Point {
        &self.points[i]
    }
}

impl FromIterator<Point> for Trajectory {
    fn from_iter<I: IntoIterator<Item = Point>>(iter: I) -> Trajectory {
        Trajectory { points: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Trajectory {
        Trajectory::from_coords(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (2.0, 1.0)])
    }

    #[test]
    fn basic_accessors() {
        let t = t();
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t[2], Point::new(1.0, 1.0));
    }

    #[test]
    fn prefix_matches_paper_notation() {
        let t = t();
        let p = t.prefix(2);
        assert_eq!(p.len(), 2);
        assert_eq!(p[1], Point::new(1.0, 0.0));
    }

    #[test]
    fn last_window_clamps_to_length() {
        let t = t();
        assert_eq!(t.last_window(2).points(), &t.points()[2..]);
        assert_eq!(t.last_window(4), t);
        assert_eq!(t.last_window(99), t);
        assert!(t.last_window(0).is_empty());
        assert!(Trajectory::default().last_window(3).is_empty());
    }

    #[test]
    fn bbox_and_centroid() {
        let t = t();
        assert_eq!(t.bbox(), Some(((0.0, 0.0), (2.0, 1.0))));
        let c = t.centroid().unwrap();
        assert_eq!(c, Point::new(1.0, 0.5));
        assert!(Trajectory::default().bbox().is_none());
        assert!(Trajectory::default().centroid().is_none());
    }

    #[test]
    fn path_length_sums_segments() {
        assert_eq!(t().path_length(), 3.0);
    }

    #[test]
    fn simplify_keeps_endpoints() {
        let t = Trajectory::from_coords(&(0..10).map(|i| (i as f64, 0.0)).collect::<Vec<_>>());
        let s = t.simplify(4);
        assert_eq!(s.len(), 4);
        assert_eq!(s[0], Point::new(0.0, 0.0));
        assert_eq!(s[3], Point::new(9.0, 0.0));
    }

    #[test]
    fn simplify_shorter_than_k_repeats() {
        let t = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 1.0)]);
        let s = t.simplify(5);
        assert_eq!(s.len(), 5);
        assert_eq!(s[4], Point::new(1.0, 1.0));
    }

    #[test]
    fn features_interleave() {
        let f = Trajectory::from_coords(&[(1.0, 2.0), (3.0, 4.0)]).to_features();
        assert_eq!(f, vec![1.0, 2.0, 3.0, 4.0]);
    }
}
