//! Trajectory resampling: arc-length interpolation to a fixed point count
//! and distance-threshold densification. Unlike [`crate::simplify`], these
//! *add or move* points (preprocessing for fixed-length models or uneven
//! GPS sampling) rather than dropping them.

use crate::{Point, Trajectory};

/// Linear interpolation between two points.
fn lerp(a: &Point, b: &Point, t: f64) -> Point {
    Point::new(a.lon + (b.lon - a.lon) * t, a.lat + (b.lat - a.lat) * t)
}

/// Resample to exactly `n` points spaced uniformly along the path's arc
/// length (endpoints preserved). A single-point trajectory repeats its
/// point.
pub fn resample_uniform(t: &Trajectory, n: usize) -> Trajectory {
    assert!(n >= 1, "resample_uniform: n must be >= 1");
    assert!(!t.is_empty(), "resample_uniform: empty trajectory");
    let pts = t.points();
    if pts.len() == 1 || n == 1 {
        return std::iter::repeat_n(pts[0], n).collect();
    }
    let seg: Vec<f64> = pts.windows(2).map(|w| w[0].dist(&w[1])).collect();
    let total: f64 = seg.iter().sum();
    if total <= 0.0 {
        // Degenerate (all points identical): repeat.
        return std::iter::repeat_n(pts[0], n).collect();
    }
    let mut out = Vec::with_capacity(n);
    let mut cursor = 0usize; // current segment
    let mut acc = 0.0f64; // arc length consumed before segment `cursor`
    for i in 0..n {
        let target = total * i as f64 / (n - 1) as f64;
        while cursor < seg.len() - 1 && acc + seg[cursor] < target {
            acc += seg[cursor];
            cursor += 1;
        }
        let local = if seg[cursor] > 0.0 {
            ((target - acc) / seg[cursor]).clamp(0.0, 1.0)
        } else {
            0.0
        };
        out.push(lerp(&pts[cursor], &pts[cursor + 1], local));
    }
    Trajectory::new(out)
}

/// Insert points so no segment is longer than `max_step` (densification for
/// very sparse GPS logs). Existing points are kept.
pub fn densify(t: &Trajectory, max_step: f64) -> Trajectory {
    assert!(max_step > 0.0, "densify: max_step must be positive");
    let pts = t.points();
    if pts.len() < 2 {
        return t.clone();
    }
    let mut out = Vec::with_capacity(pts.len());
    for w in pts.windows(2) {
        out.push(w[0]);
        let d = w[0].dist(&w[1]);
        if d > max_step {
            let extra = (d / max_step).ceil() as usize - 1;
            for k in 1..=extra {
                out.push(lerp(&w[0], &w[1], k as f64 / (extra + 1) as f64));
            }
        }
    }
    out.push(*pts.last().unwrap());
    Trajectory::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path() -> Trajectory {
        Trajectory::from_coords(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0)])
    }

    #[test]
    fn uniform_preserves_endpoints_and_count() {
        let r = resample_uniform(&path(), 5);
        assert_eq!(r.len(), 5);
        assert_eq!(r[0], Point::new(0.0, 0.0));
        assert_eq!(r[4], Point::new(1.0, 1.0));
    }

    #[test]
    fn uniform_spacing_is_even() {
        let r = resample_uniform(&path(), 9);
        let steps: Vec<f64> = r.points().windows(2).map(|w| w[0].dist(&w[1])).collect();
        // Total path length 2.0 over 8 steps = 0.25 each.
        for s in steps {
            assert!((s - 0.25).abs() < 1e-9, "uneven step {s}");
        }
    }

    #[test]
    fn uniform_midpoint_lands_on_corner() {
        // The path's halfway arc length is exactly the corner (1, 0).
        let r = resample_uniform(&path(), 3);
        assert!((r[1].lon - 1.0).abs() < 1e-9 && r[1].lat.abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs() {
        let single = Trajectory::from_coords(&[(2.0, 3.0)]);
        let r = resample_uniform(&single, 4);
        assert_eq!(r.len(), 4);
        assert!(r.points().iter().all(|&p| p == Point::new(2.0, 3.0)));
        let stationary = Trajectory::from_coords(&[(1.0, 1.0); 3]);
        assert_eq!(resample_uniform(&stationary, 5).len(), 5);
    }

    #[test]
    fn densify_caps_segment_length() {
        let sparse = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 0.0)]);
        let dense = densify(&sparse, 0.3);
        assert!(dense.len() > 2);
        for w in dense.points().windows(2) {
            assert!(w[0].dist(&w[1]) <= 0.3 + 1e-9);
        }
        assert_eq!(dense[0], sparse[0]);
        assert_eq!(dense[dense.len() - 1], sparse[1]);
    }

    #[test]
    fn densify_leaves_dense_paths_alone() {
        let t = path();
        let d = densify(&t, 10.0);
        assert_eq!(d, t);
    }

    #[test]
    fn resample_then_metrics_are_close() {
        // Resampling should barely change DTW to a third trajectory when
        // the point budget is generous.
        use crate::metrics::dtw;
        let a = path();
        let b = Trajectory::from_coords(&[(0.0, 0.5), (1.0, 0.5)]);
        let a_resampled = resample_uniform(&a, 24);
        let d1 = dtw(&a, &b) / a.len() as f64;
        let d2 = dtw(&a_resampled, &b) / a_resampled.len() as f64;
        assert!((d1 - d2).abs() < 0.2, "per-point DTW changed too much: {d1} vs {d2}");
    }
}
