//! Ground-truth distance matrices and the similarity transform.
//!
//! The training objective compares predicted similarities against
//! `S = exp(−α·D)` where `D` is the pre-computed pairwise distance matrix
//! (Section IV-D). Full pairwise computation is O(N²·n²); it is parallelized
//! across rows with `std::thread::scope` workers.

use crate::metrics::{Metric, MetricParams};
use crate::Trajectory;

/// Read access to a symmetric pairwise ground-truth distance matrix.
///
/// Two implementations exist: the dense in-RAM [`DistanceMatrix`] below
/// (small n), and `tmn_store::BlockedDistanceMatrix` — a tiled, CRC-framed
/// on-disk matrix for corpora whose n² footprint does not fit in RAM. The
/// trainer, samplers, and evaluator all read ground truth through this
/// trait, so they are oblivious to where the matrix lives; the two paths
/// are bitwise-identical on the same inputs (differentially tested).
///
/// `Sync` is a supertrait because the data-parallel trainer and the
/// shard-per-core evaluator read rows from worker threads.
pub trait GroundTruth: Sync {
    /// Number of trajectories covered (the matrix is `len × len`).
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distance between trajectories `i` and `j` (symmetric, 0 on the
    /// diagonal).
    fn get(&self, i: usize, j: usize) -> f64;

    /// Overwrite `out` with row `i` (all `len` distances from `i`). Takes a
    /// caller-owned buffer so hot loops can reuse one allocation.
    fn row_into(&self, i: usize, out: &mut Vec<f64>);

    /// Maximum entry (used to normalize distances before `exp(−αD)`).
    fn max_value(&self) -> f64;

    /// Indices of the `k` nearest trajectories to `i` (self excluded), ties
    /// broken by index. Matches [`DistanceMatrix::knn_of`] exactly.
    fn knn_of(&self, i: usize, k: usize) -> Vec<usize> {
        let mut row = Vec::with_capacity(self.len());
        self.row_into(i, &mut row);
        let mut idx: Vec<usize> = (0..self.len()).filter(|&j| j != i).collect();
        idx.sort_by(|&a, &b| row[a].partial_cmp(&row[b]).unwrap().then(a.cmp(&b)));
        idx.truncate(k);
        idx
    }
}

impl GroundTruth for DistanceMatrix {
    fn len(&self) -> usize {
        DistanceMatrix::len(self)
    }

    fn get(&self, i: usize, j: usize) -> f64 {
        DistanceMatrix::get(self, i, j)
    }

    fn row_into(&self, i: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(self.row(i));
    }

    fn max_value(&self) -> f64 {
        DistanceMatrix::max_value(self)
    }

    fn knn_of(&self, i: usize, k: usize) -> Vec<usize> {
        DistanceMatrix::knn_of(self, i, k)
    }
}

/// The paper's similarity transform `s(d) = exp(−α·d/scale)` as a pure
/// function, detached from any materialized matrix.
///
/// Applying it to a distance returns a value bitwise-identical to the
/// corresponding [`SimilarityMatrix`] entry (both evaluate the same f64
/// expression), so the trainer can compute similarities on demand from any
/// [`GroundTruth`] instead of materializing an n² similarity matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimilarityTransform {
    alpha: f64,
    scale: f64,
}

impl SimilarityTransform {
    /// Transform with `scale` taken from the ground truth's maximum entry
    /// (clamped away from zero), matching [`DistanceMatrix::to_similarity`].
    pub fn from_truth(truth: &dyn GroundTruth, alpha: f64) -> SimilarityTransform {
        SimilarityTransform { alpha, scale: truth.max_value().max(f64::MIN_POSITIVE) }
    }

    pub fn new(alpha: f64, scale: f64) -> SimilarityTransform {
        SimilarityTransform { alpha, scale: scale.max(f64::MIN_POSITIVE) }
    }

    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The distance normalization constant used by the transform.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Similarity of a distance value under the transform.
    pub fn of_distance(&self, d: f64) -> f64 {
        (-self.alpha * d / self.scale).exp()
    }
}

/// A dense symmetric pairwise distance matrix.
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Compute all pairwise distances using `threads` worker threads.
    pub fn compute(
        trajectories: &[Trajectory],
        metric: Metric,
        params: &MetricParams,
        threads: usize,
    ) -> DistanceMatrix {
        let n = trajectories.len();
        let mut data = vec![0.0f64; n * n];
        let threads = threads.max(1);
        // Row i contributes n-1-i upper-triangle cells, so a plain round-robin
        // assignment front-loads the low-index workers. Pairing row k with row
        // n-1-k gives every pair the same n-1 cells; sending the pair to
        // worker min(k, n-1-k) % threads balances the triangle.
        let chunks: Vec<(usize, &mut [f64])> = data.chunks_mut(n).enumerate().collect();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            let mut partitions: Vec<Vec<(usize, &mut [f64])>> =
                (0..threads).map(|_| Vec::new()).collect();
            for (k, row) in chunks {
                partitions[k.min(n - 1 - k) % threads].push((k, row));
            }
            for part in partitions {
                handles.push(s.spawn(move || {
                    for (i, row) in part {
                        // Symmetric: compute the upper triangle only; the
                        // lower triangle is filled by the mirror pass.
                        for j in i + 1..n {
                            row[j] = metric.distance(&trajectories[i], &trajectories[j], params);
                        }
                    }
                }));
            }
            for h in handles {
                h.join().expect("distance worker panicked");
            }
        });
        // Mirror the upper triangle.
        for i in 0..n {
            for j in 0..i {
                data[i * n + j] = data[j * n + i];
            }
        }
        DistanceMatrix { n, data }
    }

    /// Build from a row-major buffer (e.g. deserialized).
    pub fn from_raw(n: usize, data: Vec<f64>) -> DistanceMatrix {
        assert_eq!(data.len(), n * n, "DistanceMatrix: buffer must be n*n");
        DistanceMatrix { n, data }
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    pub fn raw(&self) -> &[f64] {
        &self.data
    }

    /// Maximum finite entry (used to normalize distances before `exp(−αD)`).
    pub fn max_value(&self) -> f64 {
        self.data.iter().copied().fold(0.0, f64::max)
    }

    /// The paper's similarity transform `S = exp(−α·D̂)` with `D̂` scaled to
    /// `[0, 1]` by the matrix maximum, so α has a dataset-independent effect.
    pub fn to_similarity(&self, alpha: f64) -> SimilarityMatrix {
        let t = SimilarityTransform::from_truth(self, alpha);
        let data = self.data.iter().map(|&d| t.of_distance(d)).collect();
        SimilarityMatrix { n: self.n, data, alpha, scale: t.scale() }
    }

    /// Indices of the `k` nearest trajectories to row `i` (self excluded),
    /// ties broken by index.
    pub fn knn_of(&self, i: usize, k: usize) -> Vec<usize> {
        let row = self.row(i);
        let mut idx: Vec<usize> = (0..self.n).filter(|&j| j != i).collect();
        idx.sort_by(|&a, &b| row[a].partial_cmp(&row[b]).unwrap().then(a.cmp(&b)));
        idx.truncate(k);
        idx
    }
}

/// `S = exp(−α·D/scale)`, entries in `(0, 1]`.
#[derive(Debug, Clone)]
pub struct SimilarityMatrix {
    n: usize,
    data: Vec<f64>,
    alpha: f64,
    scale: f64,
}

impl SimilarityMatrix {
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The distance normalization constant used by the transform.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Similarity of an out-of-matrix distance value under the same transform.
    pub fn similarity_of_distance(&self, d: f64) -> f64 {
        self.transform().of_distance(d)
    }

    /// The transform (α, scale) this matrix was built with, as a pure
    /// function usable without the matrix.
    pub fn transform(&self) -> SimilarityTransform {
        SimilarityTransform::new(self.alpha, self.scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trajectory;

    fn toy() -> Vec<Trajectory> {
        vec![
            Trajectory::from_coords(&[(0.0, 0.0), (1.0, 0.0)]),
            Trajectory::from_coords(&[(0.0, 0.1), (1.0, 0.1)]),
            Trajectory::from_coords(&[(5.0, 5.0), (6.0, 5.0)]),
        ]
    }

    #[test]
    fn symmetric_zero_diagonal() {
        let m = DistanceMatrix::compute(&toy(), Metric::Dtw, &MetricParams::default(), 2);
        for i in 0..3 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..3 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
        // Close pair closer than far pair.
        assert!(m.get(0, 1) < m.get(0, 2));
    }

    #[test]
    fn parallel_matches_serial() {
        let trajs = toy();
        let p = MetricParams::default();
        let serial = DistanceMatrix::compute(&trajs, Metric::Frechet, &p, 1);
        let parallel = DistanceMatrix::compute(&trajs, Metric::Frechet, &p, 4);
        assert_eq!(serial.raw(), parallel.raw());
    }

    #[test]
    fn similarity_transform_properties() {
        let m = DistanceMatrix::compute(&toy(), Metric::Dtw, &MetricParams::default(), 1);
        let s = m.to_similarity(8.0);
        for i in 0..3 {
            assert_eq!(s.get(i, i), 1.0); // exp(0)
            for j in 0..3 {
                let v = s.get(i, j);
                assert!(v > 0.0 && v <= 1.0);
            }
        }
        // Monotone: smaller distance => larger similarity.
        assert!(s.get(0, 1) > s.get(0, 2));
        // Max-distance entry maps to exp(-alpha).
        let min_sim = (0..3)
            .flat_map(|i| (0..3).map(move |j| (i, j)))
            .map(|(i, j)| s.get(i, j))
            .fold(f64::INFINITY, f64::min);
        assert!((min_sim - (-8.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn knn_orders_by_distance() {
        let m = DistanceMatrix::compute(&toy(), Metric::Dtw, &MetricParams::default(), 1);
        assert_eq!(m.knn_of(0, 2), vec![1, 2]);
        assert_eq!(m.knn_of(2, 1).len(), 1);
    }

    #[test]
    fn transform_matches_materialized_matrix_bitwise() {
        let m = DistanceMatrix::compute(&toy(), Metric::Dtw, &MetricParams::default(), 1);
        let s = m.to_similarity(8.0);
        let t = SimilarityTransform::from_truth(&m, 8.0);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(s.get(i, j).to_bits(), t.of_distance(m.get(i, j)).to_bits());
            }
        }
        // Out-of-matrix distances agree too.
        assert_eq!(t.of_distance(1.5).to_bits(), s.similarity_of_distance(1.5).to_bits());
        assert_eq!(s.transform(), t);
    }

    #[test]
    fn ground_truth_trait_matches_inherent_api() {
        let m = DistanceMatrix::compute(&toy(), Metric::Dtw, &MetricParams::default(), 1);
        let gt: &dyn GroundTruth = &m;
        assert_eq!(gt.len(), 3);
        assert_eq!(gt.max_value().to_bits(), m.max_value().to_bits());
        let mut row = Vec::new();
        for i in 0..3 {
            gt.row_into(i, &mut row);
            assert_eq!(row.as_slice(), m.row(i));
            assert_eq!(gt.knn_of(i, 2), m.knn_of(i, 2));
            for j in 0..3 {
                assert_eq!(gt.get(i, j).to_bits(), m.get(i, j).to_bits());
            }
        }
    }

    #[test]
    fn from_raw_roundtrip() {
        let m = DistanceMatrix::from_raw(2, vec![0.0, 1.0, 1.0, 0.0]);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.len(), 2);
    }
}
