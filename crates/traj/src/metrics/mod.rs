//! Exact trajectory distance metrics (Section III of the paper).
//!
//! Six metrics are implemented — DTW, discrete Fréchet, Hausdorff, ERP, EDR
//! and LCSS — each as an O(n·m) dynamic program (or scan, for Hausdorff).
//! DTW, Fréchet and LCSS also expose the *point matching* they induce
//! (Figure 1 in the paper), which motivates TMN's matching mechanism.

pub mod alignment;
pub mod banded;
pub mod dtw;
pub mod edr;
pub mod erp;
pub mod frechet;
pub mod hausdorff;
pub mod lcss;
pub mod prefix;
pub mod witness;

pub use alignment::{alignment_is_complete, edr_alignment, erp_alignment, EditOp};
pub use banded::dtw_banded;
pub use dtw::{dtw, dtw_matching};
pub use edr::edr;
pub use erp::erp;
pub use frechet::{frechet, frechet_matching};
pub use hausdorff::hausdorff;
pub use lcss::{lcss, lcss_distance, lcss_matching};
pub use prefix::prefix_distances;
pub use witness::{hausdorff_witness, nearest_assignment, HausdorffWitness};

use crate::{Point, Trajectory};
use serde::{Deserialize, Serialize};

/// Tunable parameters shared by the threshold/gap-based metrics.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MetricParams {
    /// Matching threshold ε for EDR and LCSS.
    pub eps: f64,
    /// The gap reference point `g` of ERP.
    pub erp_gap: Point,
}

impl Default for MetricParams {
    fn default() -> Self {
        MetricParams { eps: 0.005, erp_gap: Point::new(0.0, 0.0) }
    }
}

/// One of the paper's six distance metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    Dtw,
    Frechet,
    Hausdorff,
    Erp,
    Edr,
    Lcss,
}

impl Metric {
    /// All six, in the paper's Table II order.
    pub const ALL: [Metric; 6] =
        [Metric::Dtw, Metric::Frechet, Metric::Erp, Metric::Edr, Metric::Hausdorff, Metric::Lcss];

    /// Compute the exact distance between two trajectories.
    pub fn distance(&self, a: &Trajectory, b: &Trajectory, params: &MetricParams) -> f64 {
        match self {
            Metric::Dtw => dtw(a, b),
            Metric::Frechet => frechet(a, b),
            Metric::Hausdorff => hausdorff(a, b),
            Metric::Erp => erp(a, b, params.erp_gap),
            Metric::Edr => edr(a, b, params.eps),
            Metric::Lcss => lcss_distance(a, b, params.eps),
        }
    }

    /// Whether the paper classifies this metric as *matching-based*
    /// (DTW, ERP, EDR, LCSS accumulate per-pair matches; Section V-B1).
    pub fn is_matching_based(&self) -> bool {
        matches!(self, Metric::Dtw | Metric::Erp | Metric::Edr | Metric::Lcss)
    }

    /// The paper's α for the similarity transform `S = exp(−α·D)`:
    /// 16 for DTW and ERP, 8 for the others (Section V-A4).
    pub fn default_alpha(&self) -> f64 {
        match self {
            Metric::Dtw | Metric::Erp => 16.0,
            _ => 8.0,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Metric::Dtw => "DTW",
            Metric::Frechet => "Frechet",
            Metric::Hausdorff => "Hausdorff",
            Metric::Erp => "ERP",
            Metric::Edr => "EDR",
            Metric::Lcss => "LCSS",
        }
    }
}

impl std::str::FromStr for Metric {
    type Err = String;
    fn from_str(s: &str) -> Result<Metric, String> {
        match s.to_ascii_lowercase().as_str() {
            "dtw" => Ok(Metric::Dtw),
            "frechet" | "fréchet" => Ok(Metric::Frechet),
            "hausdorff" => Ok(Metric::Hausdorff),
            "erp" => Ok(Metric::Erp),
            "edr" => Ok(Metric::Edr),
            "lcss" => Ok(Metric::Lcss),
            other => Err(format!("unknown metric: {other}")),
        }
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for m in Metric::ALL {
            let parsed: Metric = m.name().parse().unwrap();
            assert_eq!(parsed, m);
        }
        assert!("warp".parse::<Metric>().is_err());
    }

    #[test]
    fn alpha_matches_paper() {
        assert_eq!(Metric::Dtw.default_alpha(), 16.0);
        assert_eq!(Metric::Erp.default_alpha(), 16.0);
        assert_eq!(Metric::Hausdorff.default_alpha(), 8.0);
        assert_eq!(Metric::Lcss.default_alpha(), 8.0);
    }

    #[test]
    fn matching_based_classification() {
        assert!(Metric::Dtw.is_matching_based());
        assert!(Metric::Edr.is_matching_based());
        assert!(!Metric::Frechet.is_matching_based());
        assert!(!Metric::Hausdorff.is_matching_based());
    }

    #[test]
    fn identity_distance_is_zero_for_all() {
        let t = Trajectory::from_coords(&[(0.0, 0.0), (0.5, 0.2), (1.0, 1.0)]);
        let p = MetricParams::default();
        for m in Metric::ALL {
            assert!(m.distance(&t, &t, &p).abs() < 1e-12, "{m}");
        }
    }

    #[test]
    fn symmetry_for_all() {
        let a = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.5)]);
        let b = Trajectory::from_coords(&[(0.1, 0.1), (0.9, -0.2)]);
        let p = MetricParams::default();
        for m in Metric::ALL {
            let (d1, d2) = (m.distance(&a, &b, &p), m.distance(&b, &a, &p));
            assert!((d1 - d2).abs() < 1e-12, "{m}: {d1} vs {d2}");
        }
    }
}
