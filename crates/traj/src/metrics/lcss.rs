//! Longest Common Subsequence for trajectories (Vlachos et al.), Eq. 3.

use crate::Trajectory;

/// Length of the longest common subsequence under threshold `eps`:
/// points `pᵢ`, `qⱼ` are common iff `d(pᵢ, qⱼ) ≤ ε`.
pub fn lcss(a: &Trajectory, b: &Trajectory, eps: f64) -> usize {
    assert!(!a.is_empty() && !b.is_empty(), "lcss: empty trajectory");
    assert!(eps >= 0.0, "lcss: eps must be non-negative");
    let (pa, pb) = (a.points(), b.points());
    let (outer, inner) = if pa.len() >= pb.len() { (pa, pb) } else { (pb, pa) };
    let n = inner.len();
    let eps_sq = eps * eps;
    let mut prev = vec![0usize; n + 1];
    let mut cur = vec![0usize; n + 1];
    for op in outer {
        for (j, ip) in inner.iter().enumerate() {
            cur[j + 1] = if op.dist_sq(ip) <= eps_sq {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
        cur[0] = 0;
    }
    prev[n]
}

/// LCSS *distance*: `1 − LCSS / min(m, n)`, in `[0, 1]`.
pub fn lcss_distance(a: &Trajectory, b: &Trajectory, eps: f64) -> f64 {
    let l = lcss(a, b, eps) as f64;
    1.0 - l / a.len().min(b.len()) as f64
}

/// LCSS length plus the matched `(i, j)` pairs of one optimal common
/// subsequence.
pub fn lcss_matching(a: &Trajectory, b: &Trajectory, eps: f64) -> (usize, Vec<(usize, usize)>) {
    assert!(!a.is_empty() && !b.is_empty(), "lcss_matching: empty trajectory");
    let (pa, pb) = (a.points(), b.points());
    let (m, n) = (pa.len(), pb.len());
    let eps_sq = eps * eps;
    let idx = |i: usize, j: usize| i * (n + 1) + j;
    let mut dp = vec![0usize; (m + 1) * (n + 1)];
    for i in 1..=m {
        for j in 1..=n {
            dp[idx(i, j)] = if pa[i - 1].dist_sq(&pb[j - 1]) <= eps_sq {
                dp[idx(i - 1, j - 1)] + 1
            } else {
                dp[idx(i - 1, j)].max(dp[idx(i, j - 1)])
            };
        }
    }
    let mut pairs = Vec::new();
    let (mut i, mut j) = (m, n);
    while i > 0 && j > 0 {
        if pa[i - 1].dist_sq(&pb[j - 1]) <= eps_sq && dp[idx(i, j)] == dp[idx(i - 1, j - 1)] + 1 {
            pairs.push((i - 1, j - 1));
            i -= 1;
            j -= 1;
        } else if dp[idx(i - 1, j)] >= dp[idx(i, j - 1)] {
            i -= 1;
        } else {
            j -= 1;
        }
    }
    pairs.reverse();
    (dp[idx(m, n)], pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trajectory;

    #[test]
    fn identical_full_match() {
        let t = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        assert_eq!(lcss(&t, &t, 0.01), 3);
        assert_eq!(lcss_distance(&t, &t, 0.01), 0.0);
    }

    #[test]
    fn disjoint_no_match() {
        let a = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = Trajectory::from_coords(&[(50.0, 50.0)]);
        assert_eq!(lcss(&a, &b, 0.5), 0);
        assert_eq!(lcss_distance(&a, &b, 0.5), 1.0);
    }

    #[test]
    fn subsequence_not_substring() {
        // Common subsequence may skip the middle point.
        let a = Trajectory::from_coords(&[(0.0, 0.0), (9.0, 9.0), (1.0, 0.0)]);
        let b = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 0.0)]);
        assert_eq!(lcss(&a, &b, 0.01), 2);
    }

    #[test]
    fn distance_in_unit_interval() {
        let a = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let b = Trajectory::from_coords(&[(0.0, 0.0), (7.0, 7.0)]);
        let d = lcss_distance(&a, &b, 0.1);
        assert!((0.0..=1.0).contains(&d));
        assert_eq!(d, 0.5); // 1 match out of min(3,2)=2
    }

    #[test]
    fn matching_pairs_are_within_eps_and_increasing() {
        let a = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        let b = Trajectory::from_coords(&[(0.0, 0.05), (2.0, 0.05), (9.0, 9.0), (3.0, 0.05)]);
        let (l, pairs) = lcss_matching(&a, &b, 0.1);
        assert_eq!(l, 3);
        assert_eq!(pairs.len(), 3);
        for &(i, j) in &pairs {
            assert!(a[i].dist(&b[j]) <= 0.1);
        }
        for w in pairs.windows(2) {
            assert!(w[1].0 > w[0].0 && w[1].1 > w[0].1);
        }
    }

    #[test]
    fn symmetric() {
        let a = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 2.0), (2.0, 0.5)]);
        let b = Trajectory::from_coords(&[(0.1, 0.0), (3.0, 3.0)]);
        assert_eq!(lcss(&a, &b, 0.5), lcss(&b, &a, 0.5));
    }
}
