//! Edit-alignment extraction for ERP and EDR: the sequence of operations
//! (match/align, delete-from-A, delete-from-B) of one optimal alignment.
//! This is the matching information (Figure 1 of the paper) for the
//! edit-based metrics, complementing `dtw_matching` / `lcss_matching`.

use crate::{Point, Trajectory};

/// One step of an edit alignment between trajectories A and B.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditOp {
    /// Point `i` of A aligned with point `j` of B.
    Align(usize, usize),
    /// Point `i` of A matched to the gap (deleted from A).
    GapA(usize),
    /// Point `j` of B matched to the gap (deleted from B).
    GapB(usize),
}

/// ERP distance and one optimal alignment (Chen & Ng's edit distance with
/// real penalty, Eq. 1).
pub fn erp_alignment(a: &Trajectory, b: &Trajectory, gap: Point) -> (f64, Vec<EditOp>) {
    assert!(!a.is_empty() && !b.is_empty(), "erp_alignment: empty trajectory");
    let (pa, pb) = (a.points(), b.points());
    let (m, n) = (pa.len(), pb.len());
    let idx = |i: usize, j: usize| i * (n + 1) + j;
    let mut dp = vec![0.0f64; (m + 1) * (n + 1)];
    for j in 1..=n {
        dp[idx(0, j)] = dp[idx(0, j - 1)] + pb[j - 1].dist(&gap);
    }
    for i in 1..=m {
        dp[idx(i, 0)] = dp[idx(i - 1, 0)] + pa[i - 1].dist(&gap);
        for j in 1..=n {
            let del_a = dp[idx(i - 1, j)] + pa[i - 1].dist(&gap);
            let del_b = dp[idx(i, j - 1)] + pb[j - 1].dist(&gap);
            let align = dp[idx(i - 1, j - 1)] + pa[i - 1].dist(&pb[j - 1]);
            dp[idx(i, j)] = del_a.min(del_b).min(align);
        }
    }
    // Backtrace.
    let mut ops = Vec::new();
    let (mut i, mut j) = (m, n);
    while i > 0 || j > 0 {
        let cur = dp[idx(i, j)];
        if i > 0 && j > 0 {
            let align = dp[idx(i - 1, j - 1)] + pa[i - 1].dist(&pb[j - 1]);
            if (cur - align).abs() < 1e-12 {
                ops.push(EditOp::Align(i - 1, j - 1));
                i -= 1;
                j -= 1;
                continue;
            }
        }
        if i > 0 {
            let del_a = dp[idx(i - 1, j)] + pa[i - 1].dist(&gap);
            if (cur - del_a).abs() < 1e-12 {
                ops.push(EditOp::GapA(i - 1));
                i -= 1;
                continue;
            }
        }
        debug_assert!(j > 0);
        ops.push(EditOp::GapB(j - 1));
        j -= 1;
    }
    ops.reverse();
    (dp[idx(m, n)], ops)
}

/// EDR distance and one optimal alignment (Chen, Özsu & Oria, Eq. 2):
/// aligned pairs farther apart than `eps` cost 1, gaps cost 1.
pub fn edr_alignment(a: &Trajectory, b: &Trajectory, eps: f64) -> (f64, Vec<EditOp>) {
    assert!(!a.is_empty() && !b.is_empty(), "edr_alignment: empty trajectory");
    assert!(eps >= 0.0, "edr_alignment: eps must be non-negative");
    let (pa, pb) = (a.points(), b.points());
    let (m, n) = (pa.len(), pb.len());
    let eps_sq = eps * eps;
    let idx = |i: usize, j: usize| i * (n + 1) + j;
    let mut dp = vec![0.0f64; (m + 1) * (n + 1)];
    for j in 1..=n {
        dp[idx(0, j)] = j as f64;
    }
    for i in 1..=m {
        dp[idx(i, 0)] = i as f64;
        for j in 1..=n {
            let sub = if pa[i - 1].dist_sq(&pb[j - 1]) <= eps_sq { 0.0 } else { 1.0 };
            dp[idx(i, j)] = (dp[idx(i - 1, j - 1)] + sub)
                .min(dp[idx(i - 1, j)] + 1.0)
                .min(dp[idx(i, j - 1)] + 1.0);
        }
    }
    let mut ops = Vec::new();
    let (mut i, mut j) = (m, n);
    while i > 0 || j > 0 {
        let cur = dp[idx(i, j)];
        if i > 0 && j > 0 {
            let sub = if pa[i - 1].dist_sq(&pb[j - 1]) <= eps_sq { 0.0 } else { 1.0 };
            if (cur - (dp[idx(i - 1, j - 1)] + sub)).abs() < 1e-12 {
                ops.push(EditOp::Align(i - 1, j - 1));
                i -= 1;
                j -= 1;
                continue;
            }
        }
        if i > 0 && (cur - (dp[idx(i - 1, j)] + 1.0)).abs() < 1e-12 {
            ops.push(EditOp::GapA(i - 1));
            i -= 1;
            continue;
        }
        debug_assert!(j > 0);
        ops.push(EditOp::GapB(j - 1));
        j -= 1;
    }
    ops.reverse();
    (dp[idx(m, n)], ops)
}

/// Verify an alignment covers each index of both trajectories exactly once,
/// in order (useful for tests and debugging tooling).
pub fn alignment_is_complete(ops: &[EditOp], m: usize, n: usize) -> bool {
    let (mut next_i, mut next_j) = (0usize, 0usize);
    for op in ops {
        match *op {
            EditOp::Align(i, j) => {
                if i != next_i || j != next_j {
                    return false;
                }
                next_i += 1;
                next_j += 1;
            }
            EditOp::GapA(i) => {
                if i != next_i {
                    return false;
                }
                next_i += 1;
            }
            EditOp::GapB(j) => {
                if j != next_j {
                    return false;
                }
                next_j += 1;
            }
        }
    }
    next_i == m && next_j == n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{edr, erp};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const G: Point = Point::new(0.0, 0.0);

    fn random_traj(rng: &mut StdRng, len: usize) -> Trajectory {
        (0..len)
            .map(|_| Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
            .collect()
    }

    #[test]
    fn erp_alignment_distance_matches_metric() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..10 {
            let a = random_traj(&mut rng, 12);
            let b = random_traj(&mut rng, 9);
            let (d, ops) = erp_alignment(&a, &b, G);
            assert!((d - erp(&a, &b, G)).abs() < 1e-9);
            assert!(alignment_is_complete(&ops, a.len(), b.len()));
        }
    }

    #[test]
    fn erp_alignment_cost_reconstructs_distance() {
        let mut rng = StdRng::seed_from_u64(32);
        let a = random_traj(&mut rng, 8);
        let b = random_traj(&mut rng, 11);
        let (d, ops) = erp_alignment(&a, &b, G);
        let recon: f64 = ops
            .iter()
            .map(|op| match *op {
                EditOp::Align(i, j) => a[i].dist(&b[j]),
                EditOp::GapA(i) => a[i].dist(&G),
                EditOp::GapB(j) => b[j].dist(&G),
            })
            .sum();
        assert!((d - recon).abs() < 1e-9, "{d} vs {recon}");
    }

    #[test]
    fn edr_alignment_distance_matches_metric() {
        let mut rng = StdRng::seed_from_u64(33);
        for eps in [0.05, 0.2, 0.5] {
            let a = random_traj(&mut rng, 10);
            let b = random_traj(&mut rng, 14);
            let (d, ops) = edr_alignment(&a, &b, eps);
            assert!((d - edr(&a, &b, eps)).abs() < 1e-9, "eps {eps}");
            assert!(alignment_is_complete(&ops, a.len(), b.len()));
        }
    }

    #[test]
    fn edr_identical_alignment_is_all_matches() {
        let t = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        let (d, ops) = edr_alignment(&t, &t, 0.01);
        assert_eq!(d, 0.0);
        assert!(ops.iter().all(|op| matches!(op, EditOp::Align(_, _))));
    }

    #[test]
    fn completeness_checker_rejects_bad_alignments() {
        assert!(!alignment_is_complete(&[EditOp::Align(0, 0)], 2, 1));
        assert!(!alignment_is_complete(&[EditOp::Align(1, 0)], 1, 1));
        assert!(alignment_is_complete(
            &[EditOp::GapA(0), EditOp::Align(1, 0)],
            2,
            1
        ));
    }
}
