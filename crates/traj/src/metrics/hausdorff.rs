//! Hausdorff distance between point sets.

use crate::{Point, Trajectory};

/// Directed Hausdorff: `max_{a∈A} min_{b∈B} d(a, b)`.
fn directed(from: &[Point], to: &[Point]) -> f64 {
    let mut worst = 0.0f64;
    for a in from {
        let mut best = f64::INFINITY;
        for b in to {
            let d = a.dist_sq(b);
            if d < best {
                best = d;
                if best == 0.0 {
                    break;
                }
            }
        }
        if best > worst {
            worst = best;
        }
    }
    worst.sqrt()
}

/// Symmetric Hausdorff distance:
/// `max(directed(A→B), directed(B→A))`.
pub fn hausdorff(a: &Trajectory, b: &Trajectory) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "hausdorff: empty trajectory");
    directed(a.points(), b.points()).max(directed(b.points(), a.points()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trajectory;

    #[test]
    fn subset_is_one_sided() {
        // b ⊂ a: directed(b→a) = 0 but directed(a→b) > 0.
        let a = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 0.0), (10.0, 0.0)]);
        let b = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 0.0)]);
        assert_eq!(hausdorff(&a, &b), 9.0);
    }

    #[test]
    fn parallel_lines() {
        let a = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = Trajectory::from_coords(&[(0.0, 2.0), (1.0, 2.0)]);
        assert_eq!(hausdorff(&a, &b), 2.0);
    }

    #[test]
    fn order_invariant() {
        // Hausdorff ignores sequence order entirely.
        let a = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        let rev = Trajectory::from_coords(&[(2.0, 0.0), (1.0, 1.0), (0.0, 0.0)]);
        assert_eq!(hausdorff(&a, &rev), 0.0);
    }

    #[test]
    fn triangle_inequality_samples() {
        let a = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = Trajectory::from_coords(&[(0.5, 1.0), (1.5, 1.0)]);
        let c = Trajectory::from_coords(&[(2.0, 2.0)]);
        let (ab, bc, ac) = (hausdorff(&a, &b), hausdorff(&b, &c), hausdorff(&a, &c));
        assert!(ac <= ab + bc + 1e-12);
    }
}
