//! Edit Distance on Real sequence (Chen, Özsu & Oria), Eq. 2 of the paper.

use crate::Trajectory;

/// EDR distance with matching threshold `eps`.
///
/// Two points *match* (subcost 0) iff their distance is ≤ ε; otherwise a
/// substitution, insertion or deletion each costs 1. The result is an edit
/// count in `[0, max(m, n)]`.
pub fn edr(a: &Trajectory, b: &Trajectory, eps: f64) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "edr: empty trajectory");
    assert!(eps >= 0.0, "edr: eps must be non-negative");
    let (pa, pb) = (a.points(), b.points());
    let (outer, inner) = if pa.len() >= pb.len() { (pa, pb) } else { (pb, pa) };
    let n = inner.len();
    let eps_sq = eps * eps;
    let mut prev: Vec<f64> = (0..=n).map(|j| j as f64).collect();
    let mut cur = vec![0.0f64; n + 1];
    for (i, op) in outer.iter().enumerate() {
        cur[0] = (i + 1) as f64;
        for (j, ip) in inner.iter().enumerate() {
            let subcost = if op.dist_sq(ip) <= eps_sq { 0.0 } else { 1.0 };
            cur[j + 1] = (prev[j] + subcost).min(prev[j + 1] + 1.0).min(cur[j] + 1.0);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trajectory;

    #[test]
    fn identical_is_zero() {
        let t = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        assert_eq!(edr(&t, &t, 0.1), 0.0);
    }

    #[test]
    fn totally_different_costs_max_len() {
        let a = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let b = Trajectory::from_coords(&[(100.0, 100.0), (200.0, 200.0)]);
        assert_eq!(edr(&a, &b, 0.1), 3.0);
    }

    #[test]
    fn threshold_controls_matching() {
        let a = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = Trajectory::from_coords(&[(0.05, 0.0), (1.05, 0.0)]);
        assert_eq!(edr(&a, &b, 0.1), 0.0); // both within eps
        assert_eq!(edr(&a, &b, 0.01), 2.0); // neither within eps
    }

    #[test]
    fn one_insertion() {
        let a = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let b = Trajectory::from_coords(&[(0.0, 0.0), (2.0, 0.0)]);
        assert_eq!(edr(&a, &b, 0.1), 1.0);
    }

    #[test]
    fn bounded_by_max_length() {
        let a = Trajectory::from_coords(&[(0.0, 0.0); 5]);
        let b = Trajectory::from_coords(&[(9.0, 9.0); 8]);
        let d = edr(&a, &b, 0.1);
        assert!((3.0..=8.0).contains(&d));
    }

    #[test]
    fn symmetric() {
        let a = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 2.0), (2.0, 0.5)]);
        let b = Trajectory::from_coords(&[(0.1, 0.0), (3.0, 3.0)]);
        assert_eq!(edr(&a, &b, 0.5), edr(&b, &a, 0.5));
    }
}
