//! Prefix distances for the sub-trajectory loss (Eq. 15).
//!
//! The loss supervises `f(T_a^{(:i)}, T_s^{(:i)})` for `i = stride, 2·stride,
//! ...`. For the DP metrics these values are entries of the same DP table
//! that computes the full distance, so all prefixes cost one O(n·m) pass;
//! Hausdorff uses an incremental max–min sweep with the same complexity.

use super::{Metric, MetricParams};
use crate::Trajectory;

/// Distances between equal-index prefixes:
/// returns `(i, f(a[..i], b[..i]))` for `i = stride, 2·stride, .., ≤ min(m,n)`.
///
/// `stride` must be positive. The paper samples sub-trajectories at every
/// 10th point (Section IV-D). An empty trajectory on either side has no
/// prefixes to compare, so the result is empty (streaming callers probe
/// before the first point arrives).
pub fn prefix_distances(
    metric: Metric,
    a: &Trajectory,
    b: &Trajectory,
    stride: usize,
    params: &MetricParams,
) -> Vec<(usize, f64)> {
    assert!(stride > 0, "prefix_distances: stride must be positive");
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let upto = a.len().min(b.len());
    let wanted: Vec<usize> = (1..=upto / stride).map(|k| k * stride).collect();
    if wanted.is_empty() {
        return Vec::new();
    }
    match metric {
        Metric::Dtw => diagonal_dp(a, b, &wanted, DpKind::Dtw, params),
        Metric::Frechet => diagonal_dp(a, b, &wanted, DpKind::Frechet, params),
        Metric::Erp => diagonal_dp(a, b, &wanted, DpKind::Erp, params),
        Metric::Edr => diagonal_dp(a, b, &wanted, DpKind::Edr, params),
        Metric::Lcss => diagonal_dp(a, b, &wanted, DpKind::Lcss, params),
        Metric::Hausdorff => hausdorff_prefixes(a, b, &wanted),
    }
}

enum DpKind {
    Dtw,
    Frechet,
    Erp,
    Edr,
    Lcss,
}

/// One full DP over (a, b); collect the diagonal entries (i, i) at `wanted`.
fn diagonal_dp(
    a: &Trajectory,
    b: &Trajectory,
    wanted: &[usize],
    kind: DpKind,
    params: &MetricParams,
) -> Vec<(usize, f64)> {
    let (pa, pb) = (a.points(), b.points());
    let (m, n) = (pa.len(), pb.len());
    let eps_sq = params.eps * params.eps;
    // Row-by-row DP keeping the full previous row; capture dp[i][i] when the
    // current row index is a wanted prefix length.
    let mut out = Vec::with_capacity(wanted.len());
    let mut prev: Vec<f64> = match kind {
        DpKind::Dtw | DpKind::Frechet => {
            let mut r = vec![f64::INFINITY; n + 1];
            r[0] = 0.0;
            r
        }
        DpKind::Erp => std::iter::once(0.0)
            .chain(pb.iter().scan(0.0, |acc, p| {
                *acc += p.dist(&params.erp_gap);
                Some(*acc)
            }))
            .collect(),
        DpKind::Edr => (0..=n).map(|j| j as f64).collect(),
        DpKind::Lcss => vec![0.0; n + 1],
    };
    let mut cur = vec![0.0f64; n + 1];
    // `wanted` is sorted ascending, so an advancing cursor replaces the
    // O(|wanted|) membership scan each row.
    let mut next_wanted = 0usize;
    for i in 1..=m {
        cur[0] = match kind {
            DpKind::Dtw | DpKind::Frechet => f64::INFINITY,
            DpKind::Erp => prev[0] + pa[i - 1].dist(&params.erp_gap),
            DpKind::Edr => i as f64,
            DpKind::Lcss => 0.0,
        };
        for j in 1..=n {
            let (pi, qj) = (&pa[i - 1], &pb[j - 1]);
            cur[j] = match kind {
                DpKind::Dtw => pi.dist(qj) + prev[j].min(cur[j - 1]).min(prev[j - 1]),
                DpKind::Frechet => {
                    pi.dist(qj).max(prev[j].min(cur[j - 1]).min(prev[j - 1]))
                }
                DpKind::Erp => {
                    let del_a = prev[j] + pi.dist(&params.erp_gap);
                    let del_b = cur[j - 1] + qj.dist(&params.erp_gap);
                    let align = prev[j - 1] + pi.dist(qj);
                    del_a.min(del_b).min(align)
                }
                DpKind::Edr => {
                    let sub = if pi.dist_sq(qj) <= eps_sq { 0.0 } else { 1.0 };
                    (prev[j - 1] + sub).min(prev[j] + 1.0).min(cur[j - 1] + 1.0)
                }
                DpKind::Lcss => {
                    if pi.dist_sq(qj) <= eps_sq {
                        prev[j - 1] + 1.0
                    } else {
                        prev[j].max(cur[j - 1])
                    }
                }
            };
        }
        if next_wanted < wanted.len() && wanted[next_wanted] == i {
            next_wanted += 1;
            let v = match kind {
                DpKind::Lcss => 1.0 - cur[i] / i as f64, // LCSS distance form
                _ => cur[i],
            };
            out.push((i, v));
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    out
}

/// Incremental prefix Hausdorff: maintain, for both directions, the running
/// min distance from each point to the other (growing) prefix.
fn hausdorff_prefixes(a: &Trajectory, b: &Trajectory, wanted: &[usize]) -> Vec<(usize, f64)> {
    let (pa, pb) = (a.points(), b.points());
    let upto = *wanted.last().unwrap();
    // min_a[p] = min_{q < i} d(a_p, b_q), over prefixes of b (and vice versa).
    let mut min_a = vec![f64::INFINITY; upto];
    let mut min_b = vec![f64::INFINITY; upto];
    let mut out = Vec::with_capacity(wanted.len());
    let mut next_wanted = 0usize;
    for i in 1..=upto {
        // The new opposing points b_{i-1} / a_{i-1} refresh existing entries…
        for p in 0..i - 1 {
            min_a[p] = min_a[p].min(pa[p].dist_sq(&pb[i - 1]));
            min_b[p] = min_b[p].min(pb[p].dist_sq(&pa[i - 1]));
        }
        // …and the new own points a_{i-1} / b_{i-1} scan the whole opposing
        // prefix once.
        for q in 0..i {
            min_a[i - 1] = min_a[i - 1].min(pa[i - 1].dist_sq(&pb[q]));
            min_b[i - 1] = min_b[i - 1].min(pb[i - 1].dist_sq(&pa[q]));
        }
        if next_wanted < wanted.len() && wanted[next_wanted] == i {
            next_wanted += 1;
            let da = min_a[..i].iter().copied().fold(0.0, f64::max);
            let db = min_b[..i].iter().copied().fold(0.0, f64::max);
            out.push((i, da.max(db).sqrt()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_traj(rng: &mut StdRng, len: usize) -> Trajectory {
        (0..len)
            .map(|_| Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
            .collect()
    }

    #[test]
    fn matches_naive_prefix_computation_all_metrics() {
        let mut rng = StdRng::seed_from_u64(13);
        let a = random_traj(&mut rng, 25);
        let b = random_traj(&mut rng, 31);
        let params = MetricParams { eps: 0.2, ..Default::default() };
        for metric in Metric::ALL {
            let fast = prefix_distances(metric, &a, &b, 5, &params);
            assert_eq!(fast.len(), 5, "{metric}: expected prefixes 5,10,15,20,25");
            for &(i, d) in &fast {
                let naive = metric.distance(&a.prefix(i), &b.prefix(i), &params);
                assert!(
                    (d - naive).abs() < 1e-9,
                    "{metric} prefix {i}: fast {d} vs naive {naive}"
                );
            }
        }
    }

    #[test]
    fn full_length_prefix_equals_full_distance() {
        let mut rng = StdRng::seed_from_u64(14);
        let a = random_traj(&mut rng, 20);
        let b = random_traj(&mut rng, 20);
        let params = MetricParams::default();
        for metric in Metric::ALL {
            let fast = prefix_distances(metric, &a, &b, 20, &params);
            assert_eq!(fast.len(), 1);
            let full = metric.distance(&a, &b, &params);
            assert!((fast[0].1 - full).abs() < 1e-9, "{metric}");
        }
    }

    #[test]
    fn stride_larger_than_min_len_is_empty() {
        let a = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = Trajectory::from_coords(&[(0.0, 1.0), (1.0, 1.0), (2.0, 1.0)]);
        assert!(prefix_distances(Metric::Dtw, &a, &b, 10, &MetricParams::default()).is_empty());
    }

    #[test]
    fn empty_trajectory_yields_no_prefixes() {
        // Regression: this used to panic; streaming callers probe before the
        // first point arrives, so empty sides must return cleanly.
        let empty = Trajectory::default();
        let full = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 0.0)]);
        let params = MetricParams::default();
        for metric in Metric::ALL {
            assert!(prefix_distances(metric, &empty, &full, 1, &params).is_empty(), "{metric}");
            assert!(prefix_distances(metric, &full, &empty, 1, &params).is_empty(), "{metric}");
            assert!(prefix_distances(metric, &empty, &empty, 1, &params).is_empty(), "{metric}");
        }
    }

    #[test]
    fn stride_one_hits_every_prefix() {
        // Exercises the advancing wanted-cursor on consecutive rows.
        let mut rng = StdRng::seed_from_u64(15);
        let a = random_traj(&mut rng, 9);
        let b = random_traj(&mut rng, 7);
        let params = MetricParams { eps: 0.2, ..Default::default() };
        for metric in Metric::ALL {
            let fast = prefix_distances(metric, &a, &b, 1, &params);
            assert_eq!(fast.len(), 7, "{metric}");
            for &(i, d) in &fast {
                let naive = metric.distance(&a.prefix(i), &b.prefix(i), &params);
                assert!((d - naive).abs() < 1e-9, "{metric} prefix {i}: {d} vs {naive}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_panics() {
        let a = Trajectory::from_coords(&[(0.0, 0.0)]);
        let _ = prefix_distances(Metric::Dtw, &a, &a, 0, &MetricParams::default());
    }
}
