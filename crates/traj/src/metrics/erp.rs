//! Edit distance with Real Penalty (Chen & Ng), Eq. 1 of the paper.

use crate::{Point, Trajectory};

/// ERP distance with gap reference point `g`.
///
/// `ERP(i,j) = min( ERP(i−1,j) + d(pᵢ, g),
///                  ERP(i,j−1) + d(g, qⱼ),
///                  ERP(i−1,j−1) + d(pᵢ, qⱼ) )`
/// with base cases equal to the cumulative gap penalties. Unlike DTW, ERP is
/// a true metric (it satisfies the triangle inequality).
pub fn erp(a: &Trajectory, b: &Trajectory, gap: Point) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "erp: empty trajectory");
    let (pa, pb) = (a.points(), b.points());
    let (outer, inner) = if pa.len() >= pb.len() { (pa, pb) } else { (pb, pa) };
    let n = inner.len();
    // Base row: deleting all of `inner` costs the summed gap penalties.
    let mut prev: Vec<f64> = std::iter::once(0.0)
        .chain(inner.iter().scan(0.0, |acc, p| {
            *acc += p.dist(&gap);
            Some(*acc)
        }))
        .collect();
    let mut cur = vec![0.0f64; n + 1];
    for op in outer {
        let og = op.dist(&gap);
        cur[0] = prev[0] + og;
        for (j, ip) in inner.iter().enumerate() {
            let del_outer = prev[j + 1] + og;
            let del_inner = cur[j] + ip.dist(&gap);
            let align = prev[j] + op.dist(ip);
            cur[j + 1] = del_outer.min(del_inner).min(align);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trajectory;

    const G: Point = Point::new(0.0, 0.0);

    #[test]
    fn identical_is_zero() {
        let t = Trajectory::from_coords(&[(1.0, 1.0), (2.0, 2.0)]);
        assert_eq!(erp(&t, &t, G), 0.0);
    }

    #[test]
    fn single_point_pair() {
        let a = Trajectory::from_coords(&[(3.0, 0.0)]);
        let b = Trajectory::from_coords(&[(0.0, 4.0)]);
        // Options: align (cost 5), or delete both (3 + 4 = 7). Align wins.
        assert_eq!(erp(&a, &b, G), 5.0);
    }

    #[test]
    fn length_mismatch_pays_gap_penalty() {
        let a = Trajectory::from_coords(&[(1.0, 0.0), (2.0, 0.0)]);
        let b = Trajectory::from_coords(&[(1.0, 0.0)]);
        // Align (1,0)↔(1,0) free, delete (2,0) at cost d((2,0), g) = 2.
        assert_eq!(erp(&a, &b, G), 2.0);
    }

    #[test]
    fn triangle_inequality_holds() {
        // ERP is a metric; check on a few concrete triples.
        let t1 = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 1.0)]);
        let t2 = Trajectory::from_coords(&[(0.5, 0.5), (2.0, 1.0), (3.0, 3.0)]);
        let t3 = Trajectory::from_coords(&[(1.0, 0.0)]);
        let d12 = erp(&t1, &t2, G);
        let d23 = erp(&t2, &t3, G);
        let d13 = erp(&t1, &t3, G);
        assert!(d13 <= d12 + d23 + 1e-12);
        assert!(d12 <= d13 + d23 + 1e-12);
    }

    #[test]
    fn symmetric() {
        let a = Trajectory::from_coords(&[(0.0, 0.0), (2.0, 3.0), (5.0, 1.0)]);
        let b = Trajectory::from_coords(&[(1.0, 1.0), (4.0, 2.0)]);
        assert_eq!(erp(&a, &b, G), erp(&b, &a, G));
    }

    #[test]
    fn gap_point_changes_distance() {
        let a = Trajectory::from_coords(&[(1.0, 0.0), (2.0, 0.0)]);
        let b = Trajectory::from_coords(&[(1.0, 0.0)]);
        let near_gap = erp(&a, &b, Point::new(2.0, 0.0));
        let far_gap = erp(&a, &b, Point::new(100.0, 0.0));
        assert!(near_gap < far_gap);
    }
}
