//! Dynamic Time Warping.

use crate::Trajectory;

/// DTW distance with O(min(m,n)) memory (rolling rows).
///
/// `DTW(i,j) = d(pᵢ, qⱼ) + min(DTW(i−1,j), DTW(i,j−1), DTW(i−1,j−1))`.
pub fn dtw(a: &Trajectory, b: &Trajectory) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "dtw: empty trajectory");
    let (pa, pb) = (a.points(), b.points());
    // Keep the inner loop over the shorter trajectory.
    let (outer, inner) = if pa.len() >= pb.len() { (pa, pb) } else { (pb, pa) };
    let n = inner.len();
    let mut prev = vec![f64::INFINITY; n + 1];
    let mut cur = vec![f64::INFINITY; n + 1];
    prev[0] = 0.0;
    for op in outer {
        cur[0] = f64::INFINITY;
        for (j, ip) in inner.iter().enumerate() {
            let cost = op.dist(ip);
            cur[j + 1] = cost + prev[j + 1].min(cur[j]).min(prev[j]);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n]
}

/// DTW distance *and* the optimal warping path as `(i, j)` index pairs —
/// the point match pairs of Figure 1.
pub fn dtw_matching(a: &Trajectory, b: &Trajectory) -> (f64, Vec<(usize, usize)>) {
    assert!(!a.is_empty() && !b.is_empty(), "dtw_matching: empty trajectory");
    let (pa, pb) = (a.points(), b.points());
    let (m, n) = (pa.len(), pb.len());
    let mut dp = vec![f64::INFINITY; (m + 1) * (n + 1)];
    dp[0] = 0.0;
    let idx = |i: usize, j: usize| i * (n + 1) + j;
    for i in 1..=m {
        for j in 1..=n {
            let cost = pa[i - 1].dist(&pb[j - 1]);
            dp[idx(i, j)] = cost
                + dp[idx(i - 1, j)]
                    .min(dp[idx(i, j - 1)])
                    .min(dp[idx(i - 1, j - 1)]);
        }
    }
    // Backtrace from (m, n).
    let mut path = Vec::new();
    let (mut i, mut j) = (m, n);
    while i >= 1 && j >= 1 {
        path.push((i - 1, j - 1));
        if i == 1 && j == 1 {
            break;
        }
        let diag = dp[idx(i - 1, j - 1)];
        let up = dp[idx(i - 1, j)];
        let left = dp[idx(i, j - 1)];
        if diag <= up && diag <= left {
            i -= 1;
            j -= 1;
        } else if up <= left {
            i -= 1;
        } else {
            j -= 1;
        }
    }
    path.reverse();
    (dp[idx(m, n)], path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trajectory;

    #[test]
    fn identical_is_zero() {
        let t = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        assert_eq!(dtw(&t, &t), 0.0);
    }

    #[test]
    fn known_value_simple() {
        // a = (0,0)->(1,0); b = (0,1)->(1,1): every match costs 1, optimal
        // path is diagonal: total 2.
        let a = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = Trajectory::from_coords(&[(0.0, 1.0), (1.0, 1.0)]);
        assert_eq!(dtw(&a, &b), 2.0);
    }

    #[test]
    fn warping_absorbs_resampling() {
        // b is a duplicated-point version of a; DTW should still be 0.
        let a = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let b = Trajectory::from_coords(&[(0.0, 0.0), (0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (2.0, 0.0)]);
        assert_eq!(dtw(&a, &b), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = Trajectory::from_coords(&[(0.0, 0.0), (3.0, 1.0), (4.0, 4.0)]);
        let b = Trajectory::from_coords(&[(1.0, 1.0), (2.0, 2.0)]);
        assert_eq!(dtw(&a, &b), dtw(&b, &a));
    }

    #[test]
    fn matching_path_is_monotone_and_complete() {
        let a = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        let b = Trajectory::from_coords(&[(0.0, 0.5), (2.0, 0.5), (3.0, 0.5)]);
        let (d, path) = dtw_matching(&a, &b);
        assert!((d - dtw(&a, &b)).abs() < 1e-12);
        assert_eq!(path.first(), Some(&(0, 0)));
        assert_eq!(path.last(), Some(&(3, 2)));
        for w in path.windows(2) {
            let (di, dj) = (w[1].0 as i64 - w[0].0 as i64, w[1].1 as i64 - w[0].1 as i64);
            assert!((0..=1).contains(&di) && (0..=1).contains(&dj) && di + dj >= 1);
        }
    }

    #[test]
    fn matching_cost_equals_sum_of_pair_distances() {
        let a = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 2.0), (2.5, 1.0)]);
        let b = Trajectory::from_coords(&[(0.5, 0.0), (1.5, 2.5)]);
        let (d, path) = dtw_matching(&a, &b);
        let sum: f64 = path.iter().map(|&(i, j)| a[i].dist(&b[j])).sum();
        assert!((d - sum).abs() < 1e-9, "{d} vs {sum}");
    }

    #[test]
    #[should_panic(expected = "empty trajectory")]
    fn empty_panics() {
        let _ = dtw(&Trajectory::default(), &Trajectory::from_coords(&[(0.0, 0.0)]));
    }
}
