//! Banded (Sakoe–Chiba) DTW — the classic *non-learning* approximation the
//! paper's related work contrasts with (category (1) in Section I:
//! approximation-based algorithms that speed up one specific metric).
//!
//! Restricting the warping path to `|i − j| ≤ band` reduces the DP from
//! O(m·n) to O(max(m,n)·band). The result upper-bounds exact DTW and equals
//! it when the band covers the optimal path.

use crate::Trajectory;

/// DTW restricted to a Sakoe–Chiba band of half-width `band` (in *aligned*
/// index space: position `i` of the longer trajectory maps to
/// `i·n/m ± band` of the shorter one, so length mismatches stay feasible).
pub fn dtw_banded(a: &Trajectory, b: &Trajectory, band: usize) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "dtw_banded: empty trajectory");
    let (pa, pb) = (a.points(), b.points());
    let (outer, inner) = if pa.len() >= pb.len() { (pa, pb) } else { (pb, pa) };
    let (m, n) = (outer.len(), inner.len());
    // A band narrower than the slope of the alignment would make the DP
    // infeasible; widen it to at least the length difference + 1.
    let band = band.max(m - n + 1);
    let mut prev = vec![f64::INFINITY; n + 1];
    let mut cur = vec![f64::INFINITY; n + 1];
    prev[0] = 0.0;
    for (i, op) in outer.iter().enumerate() {
        // Centre of the band for row i, in inner coordinates.
        let centre = (i * n) / m;
        let lo = centre.saturating_sub(band);
        let hi = (centre + band).min(n - 1);
        cur.iter_mut().for_each(|v| *v = f64::INFINITY);
        for (j, ip) in inner.iter().enumerate().take(hi + 1).skip(lo) {
            let cost = op.dist(ip);
            let best = prev[j + 1].min(cur[j]).min(prev[j]);
            if best.is_finite() {
                cur[j + 1] = cost + best;
            }
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::dtw::dtw;
    use crate::Point;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_traj(rng: &mut StdRng, len: usize) -> Trajectory {
        (0..len)
            .map(|_| Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
            .collect()
    }

    #[test]
    fn full_band_equals_exact() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let a = random_traj(&mut rng, 20);
            let b = random_traj(&mut rng, 14);
            let exact = dtw(&a, &b);
            let banded = dtw_banded(&a, &b, 20);
            assert!((exact - banded).abs() < 1e-9, "full band must be exact");
        }
    }

    #[test]
    fn banded_upper_bounds_exact() {
        let mut rng = StdRng::seed_from_u64(6);
        for band in [1usize, 2, 4, 8] {
            let a = random_traj(&mut rng, 24);
            let b = random_traj(&mut rng, 24);
            let exact = dtw(&a, &b);
            let approx = dtw_banded(&a, &b, band);
            assert!(
                approx >= exact - 1e-9,
                "band {band}: approx {approx} < exact {exact}"
            );
            assert!(approx.is_finite(), "band {band} produced infeasible DP");
        }
    }

    #[test]
    fn wider_band_is_tighter() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = random_traj(&mut rng, 30);
        let b = random_traj(&mut rng, 30);
        let d1 = dtw_banded(&a, &b, 1);
        let d4 = dtw_banded(&a, &b, 4);
        let d16 = dtw_banded(&a, &b, 16);
        assert!(d1 >= d4 - 1e-9 && d4 >= d16 - 1e-9);
    }

    #[test]
    fn identical_trajectories_zero_with_any_band() {
        let t = Trajectory::from_coords(&[(0.0, 0.0), (0.3, 0.3), (0.7, 0.1), (1.0, 0.9)]);
        for band in [1usize, 2, 10] {
            assert_eq!(dtw_banded(&t, &t, band), 0.0);
        }
    }

    #[test]
    fn length_mismatch_stays_feasible() {
        // Slope-aware band: even band=1 must produce a finite value when
        // lengths differ a lot.
        let a = Trajectory::from_coords(&(0..40).map(|i| (i as f64, 0.0)).collect::<Vec<_>>());
        let b = Trajectory::from_coords(&[(0.0, 1.0), (20.0, 1.0), (39.0, 1.0)]);
        assert!(dtw_banded(&a, &b, 1).is_finite());
    }
}
