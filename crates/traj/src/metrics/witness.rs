//! Hausdorff witness extraction: the point pair realizing the distance, and
//! the nearest-neighbour assignment each direction uses. Completes the
//! matching-extraction suite (DTW/Fréchet paths, LCSS pairs, ERP/EDR
//! alignments) for the remaining metric.

use crate::Trajectory;

/// The pair of indices realizing the (symmetric) Hausdorff distance, plus
/// which direction it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HausdorffWitness {
    /// Index into the first trajectory.
    pub i: usize,
    /// Index into the second trajectory.
    pub j: usize,
    /// True if the witness comes from the A→B directed distance (a point of
    /// A far from all of B), false for B→A.
    pub from_a: bool,
}

/// Hausdorff distance together with its witness pair.
pub fn hausdorff_witness(a: &Trajectory, b: &Trajectory) -> (f64, HausdorffWitness) {
    assert!(!a.is_empty() && !b.is_empty(), "hausdorff_witness: empty trajectory");
    let directed = |from: &Trajectory, to: &Trajectory| -> (f64, usize, usize) {
        let mut worst = (f64::NEG_INFINITY, 0usize, 0usize);
        for (i, p) in from.points().iter().enumerate() {
            let mut best = (f64::INFINITY, 0usize);
            for (j, q) in to.points().iter().enumerate() {
                let d = p.dist_sq(q);
                if d < best.0 {
                    best = (d, j);
                }
            }
            if best.0 > worst.0 {
                worst = (best.0, i, best.1);
            }
        }
        (worst.0.sqrt(), worst.1, worst.2)
    };
    let (dab, ia, ja) = directed(a, b);
    let (dba, ib, jb) = directed(b, a);
    if dab >= dba {
        (dab, HausdorffWitness { i: ia, j: ja, from_a: true })
    } else {
        // directed(b, a): outer index runs over b, inner over a.
        (dba, HausdorffWitness { i: jb, j: ib, from_a: false })
    }
}

/// For every point of `a`, the index of its nearest point in `b` — the
/// "match" each directed Hausdorff scan implicitly computes.
pub fn nearest_assignment(a: &Trajectory, b: &Trajectory) -> Vec<usize> {
    assert!(!a.is_empty() && !b.is_empty(), "nearest_assignment: empty trajectory");
    a.points()
        .iter()
        .map(|p| {
            b.points()
                .iter()
                .enumerate()
                .min_by(|(_, x), (_, y)| p.dist_sq(x).partial_cmp(&p.dist_sq(y)).unwrap())
                .map(|(j, _)| j)
                .expect("b is non-empty")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::hausdorff;
    use crate::Trajectory;

    #[test]
    fn witness_distance_matches_metric() {
        let a = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 0.0), (10.0, 0.0)]);
        let b = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 0.0)]);
        let (d, w) = hausdorff_witness(&a, &b);
        assert_eq!(d, hausdorff(&a, &b));
        // The far point (10, 0) of A is the witness, nearest to (1, 0) of B.
        assert_eq!(w, HausdorffWitness { i: 2, j: 1, from_a: true });
    }

    #[test]
    fn witness_direction_flips() {
        let a = Trajectory::from_coords(&[(0.0, 0.0)]);
        let b = Trajectory::from_coords(&[(0.0, 0.0), (5.0, 0.0)]);
        let (d, w) = hausdorff_witness(&a, &b);
        assert_eq!(d, 5.0);
        assert!(!w.from_a, "the isolated point is in B");
        assert_eq!((w.i, w.j), (0, 1));
    }

    #[test]
    fn witness_pair_distance_equals_value() {
        let a = Trajectory::from_coords(&[(0.0, 0.0), (2.0, 1.0), (4.0, 0.5)]);
        let b = Trajectory::from_coords(&[(0.5, 0.5), (3.0, 3.0)]);
        let (d, w) = hausdorff_witness(&a, &b);
        assert!((a[w.i].dist(&b[w.j]) - d).abs() < 1e-12);
    }

    #[test]
    fn nearest_assignment_is_pointwise_argmin() {
        let a = Trajectory::from_coords(&[(0.0, 0.0), (0.9, 0.0), (2.1, 0.0)]);
        let b = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        assert_eq!(nearest_assignment(&a, &b), vec![0, 1, 2]);
    }

    #[test]
    fn identical_trajectories_zero_witness() {
        let t = Trajectory::from_coords(&[(1.0, 1.0), (2.0, 2.0)]);
        let (d, _) = hausdorff_witness(&t, &t);
        assert_eq!(d, 0.0);
    }
}
