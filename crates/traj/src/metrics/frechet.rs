//! Discrete Fréchet distance (Eiter & Mannila).

use crate::Trajectory;

/// Discrete Fréchet distance with rolling-row memory.
///
/// `C(i,j) = max(d(pᵢ, qⱼ), min(C(i−1,j), C(i,j−1), C(i−1,j−1)))`.
pub fn frechet(a: &Trajectory, b: &Trajectory) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "frechet: empty trajectory");
    let (pa, pb) = (a.points(), b.points());
    let (outer, inner) = if pa.len() >= pb.len() { (pa, pb) } else { (pb, pa) };
    let n = inner.len();
    let mut prev = vec![f64::INFINITY; n + 1];
    let mut cur = vec![f64::INFINITY; n + 1];
    prev[0] = 0.0;
    for op in outer {
        cur[0] = f64::INFINITY;
        for (j, ip) in inner.iter().enumerate() {
            let cost = op.dist(ip);
            let reach = prev[j + 1].min(cur[j]).min(prev[j]);
            cur[j + 1] = cost.max(reach);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n]
}

/// Discrete Fréchet distance and one optimal coupling (leash positions).
pub fn frechet_matching(a: &Trajectory, b: &Trajectory) -> (f64, Vec<(usize, usize)>) {
    assert!(!a.is_empty() && !b.is_empty(), "frechet_matching: empty trajectory");
    let (pa, pb) = (a.points(), b.points());
    let (m, n) = (pa.len(), pb.len());
    let mut dp = vec![f64::INFINITY; (m + 1) * (n + 1)];
    let idx = |i: usize, j: usize| i * (n + 1) + j;
    dp[0] = 0.0;
    for i in 1..=m {
        for j in 1..=n {
            let cost = pa[i - 1].dist(&pb[j - 1]);
            let reach = dp[idx(i - 1, j)].min(dp[idx(i, j - 1)]).min(dp[idx(i - 1, j - 1)]);
            dp[idx(i, j)] = cost.max(reach);
        }
    }
    let mut path = Vec::new();
    let (mut i, mut j) = (m, n);
    while i >= 1 && j >= 1 {
        path.push((i - 1, j - 1));
        if i == 1 && j == 1 {
            break;
        }
        let diag = dp[idx(i - 1, j - 1)];
        let up = dp[idx(i - 1, j)];
        let left = dp[idx(i, j - 1)];
        if diag <= up && diag <= left {
            i -= 1;
            j -= 1;
        } else if up <= left {
            i -= 1;
        } else {
            j -= 1;
        }
    }
    path.reverse();
    (dp[idx(m, n)], path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::dtw::dtw;
    use crate::Trajectory;

    #[test]
    fn parallel_lines_give_offset() {
        let a = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let b = Trajectory::from_coords(&[(0.0, 1.0), (1.0, 1.0), (2.0, 1.0)]);
        assert_eq!(frechet(&a, &b), 1.0);
    }

    #[test]
    fn frechet_is_bottleneck_not_sum() {
        // DTW sums 3 unit matches (=3); Fréchet takes the max (=1).
        let a = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let b = Trajectory::from_coords(&[(0.0, 1.0), (1.0, 1.0), (2.0, 1.0)]);
        assert_eq!(frechet(&a, &b), 1.0);
        assert_eq!(dtw(&a, &b), 3.0);
    }

    #[test]
    fn lower_bounded_by_endpoint_distances() {
        let a = Trajectory::from_coords(&[(0.0, 0.0), (5.0, 5.0)]);
        let b = Trajectory::from_coords(&[(0.0, 2.0), (5.0, 9.0)]);
        let d = frechet(&a, &b);
        assert!(d >= a[0].dist(&b[0]) - 1e-12);
        assert!(d >= a[1].dist(&b[1]) - 1e-12);
    }

    #[test]
    fn matching_bottleneck_equals_distance() {
        let a = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 2.0), (2.5, 1.0), (4.0, 0.0)]);
        let b = Trajectory::from_coords(&[(0.5, 0.0), (1.5, 2.5), (3.5, 0.2)]);
        let (d, path) = frechet_matching(&a, &b);
        assert!((d - frechet(&a, &b)).abs() < 1e-12);
        let bottleneck = path
            .iter()
            .map(|&(i, j)| a[i].dist(&b[j]))
            .fold(0.0f64, f64::max);
        assert!((d - bottleneck).abs() < 1e-9);
    }

    #[test]
    fn symmetric() {
        let a = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 3.0)]);
        let b = Trajectory::from_coords(&[(2.0, 2.0), (0.0, 1.0), (4.0, 4.0)]);
        assert_eq!(frechet(&a, &b), frechet(&b, &a));
    }
}
