//! # tmn-traj
//!
//! Trajectory primitives and the six exact distance metrics the TMN paper
//! evaluates against: DTW, discrete Fréchet, Hausdorff, ERP, EDR and LCSS
//! (Section III), plus parallel pairwise distance matrices and the
//! `S = exp(−α·D)` similarity transform used as the training ground truth
//! (Section IV-D).
//!
//! ```
//! use tmn_traj::{Trajectory, metrics::{Metric, MetricParams}};
//!
//! let a = Trajectory::from_coords(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
//! let b = Trajectory::from_coords(&[(0.0, 1.0), (1.0, 1.0), (2.0, 1.0)]);
//! let d = Metric::Dtw.distance(&a, &b, &MetricParams::default());
//! assert_eq!(d, 3.0);
//! ```

mod matrix;
pub mod metrics;
mod point;
pub mod resample;
pub mod simplify;
mod trajectory;

pub use matrix::{DistanceMatrix, GroundTruth, SimilarityMatrix, SimilarityTransform};
pub use point::Point;
pub use trajectory::Trajectory;
