//! Property tests for the six exact metrics: metric axioms that must hold
//! for arbitrary trajectories (identity, symmetry, non-negativity) and the
//! banded-DTW upper-bound guarantee.

use proptest::prelude::*;
use tmn_traj::metrics::{dtw, dtw_banded, Metric, MetricParams};
use tmn_traj::{Point, Trajectory};

/// Strategy: a trajectory of 1..=12 points in the unit square.
fn arb_traj() -> impl Strategy<Value = Trajectory> {
    prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..=12)
        .prop_map(|pts| pts.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// d(t, t) = 0 for the metrics whose cost of a perfect alignment is
    /// exactly zero (DTW, Fréchet, Hausdorff, ERP).
    #[test]
    fn identity_of_indiscernibles(t in arb_traj()) {
        let params = MetricParams::default();
        for m in [Metric::Dtw, Metric::Frechet, Metric::Hausdorff, Metric::Erp] {
            let d = m.distance(&t, &t, &params);
            prop_assert!(d.abs() < 1e-12, "{m}: d(t,t) = {d}, expected 0");
        }
    }

    /// All six metrics are symmetric: d(a, b) = d(b, a).
    #[test]
    fn symmetry(a in arb_traj(), b in arb_traj()) {
        let params = MetricParams::default();
        for m in Metric::ALL {
            let ab = m.distance(&a, &b, &params);
            let ba = m.distance(&b, &a, &params);
            let denom = ab.abs().max(ba.abs()).max(1.0);
            prop_assert!(
                (ab - ba).abs() / denom < 1e-9,
                "{m}: d(a,b) = {ab} but d(b,a) = {ba}"
            );
        }
    }

    /// All six metrics are non-negative and finite.
    #[test]
    fn non_negative_and_finite(a in arb_traj(), b in arb_traj()) {
        let params = MetricParams::default();
        for m in Metric::ALL {
            let d = m.distance(&a, &b, &params);
            prop_assert!(d.is_finite(), "{m}: d(a,b) = {d} not finite");
            prop_assert!(d >= 0.0, "{m}: d(a,b) = {d} negative");
        }
    }

    /// Restricting the warping path can only increase the DTW cost:
    /// dtw_banded(a, b, band) >= dtw(a, b), with equality once the band
    /// covers the unconstrained optimal path.
    #[test]
    fn banded_dtw_upper_bounds_full_dtw(
        a in arb_traj(),
        b in arb_traj(),
        band in 1usize..8,
    ) {
        let full = dtw(&a, &b);
        let banded = dtw_banded(&a, &b, band);
        prop_assert!(
            banded >= full - 1e-9,
            "banded DTW {banded} below exact DTW {full} (band {band})"
        );
        // A band wide enough to cover the whole DP table is exact.
        let wide = dtw_banded(&a, &b, a.len().max(b.len()));
        prop_assert!((wide - full).abs() < 1e-9, "full-width band {wide} != exact {full}");
    }

    /// Adversarial length ratios (down to 2 vs 200 points): the band is
    /// widened to at least the length difference + 1, so even band=1 stays
    /// feasible (finite) and still upper-bounds exact DTW.
    #[test]
    fn banded_dtw_survives_extreme_length_ratios(
        short_len in 2usize..=4,
        long_len in 50usize..=200,
        band in 1usize..4,
        seed in 0u64..1000,
    ) {
        let wobble = |i: usize| ((i as f64 + seed as f64) * 0.7).sin() * 0.3;
        let short: Trajectory = (0..short_len)
            .map(|i| Point::new(i as f64 / short_len as f64, wobble(i)))
            .collect();
        let long: Trajectory = (0..long_len)
            .map(|i| Point::new(i as f64 / long_len as f64, wobble(i + 1)))
            .collect();
        let full = dtw(&short, &long);
        for (a, b) in [(&short, &long), (&long, &short)] {
            let banded = dtw_banded(a, b, band);
            prop_assert!(
                banded.is_finite(),
                "band {band} infeasible for lengths {} vs {}", a.len(), b.len()
            );
            prop_assert!(
                banded >= full - 1e-9,
                "banded DTW {banded} below exact DTW {full} (band {band}, {} vs {} points)",
                a.len(), b.len()
            );
        }
    }
}
