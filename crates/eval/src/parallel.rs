//! Multi-threaded evaluation. The autograd graph is intentionally
//! single-threaded (`Tensor` is `!Send`), so parallel evaluation rebuilds
//! the model per worker from a weight snapshot and splits the queries.

use tmn_core::{ModelConfig, ModelKind};
use tmn_traj::Trajectory;

/// Predicted distance rows computed on `threads` workers, each owning a
/// model clone restored from `snapshot` (see `ParamSet::snapshot`).
///
/// Produces exactly the same rows as
/// [`predicted_distance_rows`](crate::predicted_distance_rows) on a single
/// thread — inference is deterministic given the weights.
pub fn predicted_distance_rows_parallel(
    kind: ModelKind,
    config: &ModelConfig,
    snapshot: &[(String, Vec<usize>, Vec<f32>)],
    trajs: &[Trajectory],
    queries: &[usize],
    batch_size: usize,
    threads: usize,
) -> Vec<Vec<f64>> {
    let threads = threads.max(1).min(queries.len().max(1));
    if threads <= 1 {
        let model = kind.build(config);
        model.params().restore(snapshot);
        return crate::predicted_distance_rows(model.as_ref(), trajs, queries, batch_size);
    }
    let mut rows: Vec<Option<Vec<f64>>> = vec![None; queries.len()];
    // Round-robin partition keeps per-thread work balanced; workers send
    // their rows back over a channel keyed by thread id.
    std::thread::scope(|s| {
        let (tx, rx) = std::sync::mpsc::channel::<(usize, Vec<Vec<f64>>)>();
        for t in 0..threads {
            let tx = tx.clone();
            let my_queries: Vec<usize> =
                queries.iter().copied().skip(t).step_by(threads).collect();
            s.spawn(move || {
                let model = kind.build(config);
                model.params().restore(snapshot);
                let out = crate::predicted_distance_rows(model.as_ref(), trajs, &my_queries, batch_size);
                tx.send((t, out)).expect("main thread alive");
            });
        }
        drop(tx);
        for (t, out) in rx {
            for (slot, row) in (t..queries.len()).step_by(threads).zip(out) {
                rows[slot] = Some(row);
            }
        }
    });
    rows.into_iter().map(|r| r.expect("all query rows filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmn_traj::Point;

    fn trajs(n: usize) -> Vec<Trajectory> {
        (0..n)
            .map(|i| {
                let off = i as f64 * 0.06;
                (0..8 + i % 4).map(|t| Point::new(0.1 * t as f64, off)).collect()
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_for_independent_model() {
        let cfg = ModelConfig { dim: 8, seed: 7 };
        let model = ModelKind::Srn.build(&cfg);
        let snap = model.params().snapshot();
        let ts = trajs(12);
        let queries: Vec<usize> = (0..7).collect();
        let serial = crate::predicted_distance_rows(model.as_ref(), &ts, &queries, 4);
        let parallel = predicted_distance_rows_parallel(
            ModelKind::Srn, &cfg, &snap, &ts, &queries, 4, 2,
        );
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            for (x, y) in s.iter().zip(p) {
                assert!((x - y).abs() < 1e-9, "parallel eval diverged");
            }
        }
    }

    #[test]
    fn parallel_matches_serial_for_tmn() {
        let cfg = ModelConfig { dim: 8, seed: 9 };
        let model = ModelKind::Tmn.build(&cfg);
        let snap = model.params().snapshot();
        let ts = trajs(10);
        let queries: Vec<usize> = (0..5).collect();
        let serial = crate::predicted_distance_rows(model.as_ref(), &ts, &queries, 4);
        let parallel =
            predicted_distance_rows_parallel(ModelKind::Tmn, &cfg, &snap, &ts, &queries, 4, 3);
        for (s, p) in serial.iter().zip(&parallel) {
            for (x, y) in s.iter().zip(p) {
                assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn single_thread_path() {
        let cfg = ModelConfig { dim: 8, seed: 10 };
        let model = ModelKind::TmnNm.build(&cfg);
        let snap = model.params().snapshot();
        let ts = trajs(6);
        let rows = predicted_distance_rows_parallel(
            ModelKind::TmnNm, &cfg, &snap, &ts, &[1, 3], 4, 1,
        );
        assert_eq!(rows.len(), 2);
        assert!(rows[0][1] < 1e-6);
    }
}
