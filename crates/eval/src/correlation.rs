//! Rank-correlation metrics between predicted and true distance rankings —
//! finer-grained quality measures than top-k overlap, common in similarity
//! learning evaluations.

/// Rank positions (average ranks for ties).
fn ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).unwrap().then(a.cmp(&b)));
    let mut out = vec![0.0f64; n];
    let mut i = 0;
    while i < n {
        // Group ties.
        let mut j = i;
        while j + 1 < n && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation coefficient in `[-1, 1]`.
///
/// Returns `None` when either input is constant (undefined correlation).
pub fn spearman(pred: &[f64], truth: &[f64]) -> Option<f64> {
    assert_eq!(pred.len(), truth.len(), "spearman: length mismatch");
    if pred.len() < 2 {
        return None;
    }
    let (rp, rt) = (ranks(pred), ranks(truth));
    pearson(&rp, &rt)
}

/// Pearson correlation of two equal-length samples.
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "pearson: length mismatch");
    let n = x.len() as f64;
    if x.len() < 2 {
        return None;
    }
    let (mx, my) = (x.iter().sum::<f64>() / n, y.iter().sum::<f64>() / n);
    let (mut sxy, mut sxx, mut syy) = (0.0f64, 0.0f64, 0.0f64);
    for (a, b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
        syy += (b - my) * (b - my);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Kendall's tau-a (concordant minus discordant pair fraction), O(n²).
pub fn kendall_tau(pred: &[f64], truth: &[f64]) -> Option<f64> {
    assert_eq!(pred.len(), truth.len(), "kendall_tau: length mismatch");
    let n = pred.len();
    if n < 2 {
        return None;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let dp = pred[i] - pred[j];
            let dt = truth[i] - truth[j];
            let s = dp * dt;
            if s > 0.0 {
                concordant += 1;
            } else if s < 0.0 {
                discordant += 1;
            }
        }
    }
    let total = (n * (n - 1) / 2) as f64;
    Some((concordant - discordant) as f64 / total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_agreement_is_one() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert!((spearman(&x, &x).unwrap() - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&x, &x).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversal_is_minus_one() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = vec![4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&x, &y).unwrap() + 1.0).abs() < 1e-12);
        assert!((kendall_tau(&x, &y).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_transform_preserves_spearman() {
        let x = vec![0.1, 0.5, 0.9, 2.0, 7.0];
        let y: Vec<f64> = x.iter().map(|v: &f64| v.exp()).collect();
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_input_is_none() {
        let x = vec![1.0, 1.0, 1.0];
        let y = vec![1.0, 2.0, 3.0];
        assert!(spearman(&x, &y).is_none());
        assert!(pearson(&x, &y).is_none());
    }

    #[test]
    fn ties_get_average_ranks() {
        let r = ranks(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn known_partial_correlation() {
        // One swap in a 4-ranking: tau = (5 - 1) / 6 = 2/3.
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = vec![2.0, 1.0, 3.0, 4.0];
        assert!((kendall_tau(&x, &y).unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }
}
