//! Shard-per-core Table II evaluation over an [`EmbeddingStore`].
//!
//! [`evaluate`](crate::evaluate) wants every predicted and true distance
//! row materialized up front — `2 * queries * n` f64s live at once, which
//! is exactly what an out-of-core ground truth was built to avoid. This
//! module walks the store instead: each worker owns two scratch rows,
//! streams its queries' predicted distances straight off the (possibly
//! mmap-backed) embeddings and its truth rows through [`GroundTruth`],
//! and emits only the per-query scalars.
//!
//! Determinism contract: per-query scores land in a slot array indexed by
//! query position and are reduced **sequentially in query order**, so the
//! result is bitwise identical for any shard count — and bitwise identical
//! to [`evaluate`](crate::evaluate) on materialized rows, whose per-query
//! arithmetic this reproduces exactly.

use crate::metrics::{hitting_ratio, recall_at, Evaluation};
use crate::{embedding_distance, spearman};
use crate::store::EmbeddingStore;
use tmn_traj::GroundTruth;

/// Per-query scalar scores; everything the reduction needs.
#[derive(Clone, Copy)]
struct QueryScores {
    hr10: f64,
    hr50: f64,
    r10_50: f64,
    rho: Option<f64>,
}

/// Score one query against the store and the ground truth, reusing the
/// caller's scratch rows.
fn score_query(
    store: &EmbeddingStore,
    truth: &dyn GroundTruth,
    q: usize,
    pred_row: &mut Vec<f64>,
    true_row: &mut Vec<f64>,
) -> QueryScores {
    let n = store.len();
    pred_row.clear();
    let qe = store.get(q);
    pred_row.extend((0..n).map(|i| embedding_distance(qe, store.get(i))));
    truth.row_into(q, true_row);
    QueryScores {
        hr10: hitting_ratio(pred_row, true_row, 10, q),
        hr50: hitting_ratio(pred_row, true_row, 50, q),
        r10_50: recall_at(pred_row, true_row, 10, 50, q),
        rho: spearman(pred_row, true_row),
    }
}

/// HR-10 / HR-50 / R10@50 / Spearman over `queries`, with predicted
/// distances taken between the store's embeddings and truth rows streamed
/// from `truth`, fanned out over `shards` worker threads.
///
/// Row memory is `O(shards * n)`, not `O(queries * n)`; the result is
/// bitwise independent of `shards`.
pub fn evaluate_sharded(
    store: &EmbeddingStore,
    truth: &dyn GroundTruth,
    queries: &[usize],
    shards: usize,
) -> Evaluation {
    assert_eq!(store.len(), truth.len(), "store and ground truth must cover the same corpus");
    let shards = shards.max(1).min(queries.len().max(1));
    let mut slots: Vec<Option<QueryScores>> = vec![None; queries.len()];
    if shards <= 1 {
        let (mut pred_row, mut true_row) = (Vec::new(), Vec::new());
        for (slot, &q) in slots.iter_mut().zip(queries) {
            *slot = Some(score_query(store, truth, q, &mut pred_row, &mut true_row));
        }
    } else {
        // Striped partition (as in the parallel inference path); the stripe
        // choice cannot affect results because each slot's value depends on
        // its query alone and the reduction below is order-fixed.
        std::thread::scope(|s| {
            let (tx, rx) = std::sync::mpsc::channel::<(usize, Vec<QueryScores>)>();
            for t in 0..shards {
                let tx = tx.clone();
                s.spawn(move || {
                    let (mut pred_row, mut true_row) = (Vec::new(), Vec::new());
                    let scores: Vec<QueryScores> = queries
                        .iter()
                        .skip(t)
                        .step_by(shards)
                        .map(|&q| score_query(store, truth, q, &mut pred_row, &mut true_row))
                        .collect();
                    tx.send((t, scores)).expect("main thread alive");
                });
            }
            drop(tx);
            for (t, scores) in rx {
                for (slot, sc) in (t..queries.len()).step_by(shards).zip(scores) {
                    slots[slot] = Some(sc);
                }
            }
        });
    }
    // Sequential reduction in query order — the same f64 addition sequence
    // as `evaluate`, hence bitwise equality with the materialized path.
    let mut hr10 = 0.0;
    let mut hr50 = 0.0;
    let mut r10_50 = 0.0;
    let mut rho_sum = 0.0;
    let mut rho_n = 0usize;
    for sc in slots.into_iter().map(|s| s.expect("all query slots filled")) {
        hr10 += sc.hr10;
        hr50 += sc.hr50;
        r10_50 += sc.r10_50;
        if let Some(rho) = sc.rho {
            rho_sum += rho;
            rho_n += 1;
        }
    }
    let n = queries.len().max(1) as f64;
    Evaluation {
        hr10: hr10 / n,
        hr50: hr50 / n,
        r10_50: r10_50 / n,
        spearman: (rho_n > 0).then(|| rho_sum / rho_n as f64),
        queries: queries.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate;
    use tmn_traj::metrics::{Metric, MetricParams};
    use tmn_traj::{DistanceMatrix, Point, Trajectory};

    fn corpus(n: usize) -> (Vec<Trajectory>, DistanceMatrix, EmbeddingStore) {
        let trajs: Vec<Trajectory> = (0..n)
            .map(|i| {
                let off = (i as f64 * 0.61) % 1.7;
                (0..6 + i % 5).map(|t| Point::new(0.1 * t as f64 + off, off * 0.5)).collect()
            })
            .collect();
        let dmat = DistanceMatrix::compute(&trajs, Metric::Hausdorff, &MetricParams::default(), 1);
        // Embeddings correlated-but-not-equal to the truth: first/last point.
        let vecs: Vec<Vec<f32>> = trajs
            .iter()
            .map(|t| {
                let pts = t.points();
                let (a, b) = (&pts[0], &pts[pts.len() - 1]);
                vec![a.lon as f32, a.lat as f32, b.lon as f32, b.lat as f32]
            })
            .collect();
        (trajs, dmat, EmbeddingStore::from_vectors(&vecs))
    }

    fn bits(e: &Evaluation) -> (u64, u64, u64, Option<u64>) {
        (e.hr10.to_bits(), e.hr50.to_bits(), e.r10_50.to_bits(), e.spearman.map(f64::to_bits))
    }

    #[test]
    fn sharded_matches_materialized_evaluate_bitwise() {
        let (_trajs, dmat, store) = corpus(40);
        let queries: Vec<usize> = (0..40).step_by(3).collect();
        let pred_rows: Vec<Vec<f64>> = queries
            .iter()
            .map(|&q| (0..40).map(|i| embedding_distance(store.get(q), store.get(i))).collect())
            .collect();
        let true_rows: Vec<Vec<f64>> = queries.iter().map(|&q| dmat.row(q).to_vec()).collect();
        let dense = evaluate(&pred_rows, &true_rows, &queries);
        let sharded = evaluate_sharded(&store, &dmat, &queries, 3);
        assert_eq!(bits(&dense), bits(&sharded));
        assert_eq!(dense.queries, sharded.queries);
    }

    #[test]
    fn result_is_bitwise_independent_of_shard_count() {
        let (_trajs, dmat, store) = corpus(35);
        let queries: Vec<usize> = (0..35).collect();
        let one = evaluate_sharded(&store, &dmat, &queries, 1);
        for shards in [2usize, 4, 9] {
            let multi = evaluate_sharded(&store, &dmat, &queries, shards);
            assert_eq!(bits(&one), bits(&multi), "shards={shards}");
        }
    }
}
