//! Encoding test trajectories and computing predicted distances.
//!
//! Independent models (SRN, NeuTraj, T3S, Traj2SimVec, TMN-NM) encode every
//! trajectory once; queries then cost one Euclidean distance per candidate.
//! TMN's representations are pair-dependent, so a query re-encodes
//! (query, candidate) pairs — the paper's Table III reflects exactly this
//! cost asymmetry (0.072 s vs 0.00059 s per-trajectory inference).
//!
//! Encoding takes the tape-free fast path ([`PairModel::embed_nograd`])
//! whenever the model provides one, falling back to the graphed forward
//! under `no_grad` otherwise. The two are bitwise-identical; the fast path
//! skips graph-node construction entirely. [`encode_all_graphed`] keeps the
//! graphed path callable directly so the efficiency study can report model
//! cost and autograd overhead as separate numbers — earlier revisions
//! quoted a single per-trajectory figure that silently included graph
//! construction.

use tmn_autograd::{no_grad, ops};
use tmn_core::{PairBatch, PairModel};
use tmn_obs::{metrics, profiler};
use tmn_traj::Trajectory;

/// Euclidean distance between two embedding vectors.
pub fn embedding_distance(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(x, y)| ((x - y) * (x - y)) as f64).sum::<f64>().sqrt()
}

/// Encode each trajectory independently (self-paired batch), returning one
/// `d`-dim embedding per trajectory. Intended for models with
/// `is_pair_dependent() == false`.
///
/// Uses the model's tape-free fast path when it has one (bitwise-identical
/// to the graphed forward, zero graph-node allocation); otherwise falls
/// back to [`encode_all_graphed`]'s per-chunk logic under `no_grad`.
pub fn encode_all(model: &dyn PairModel, trajs: &[Trajectory], batch_size: usize) -> Vec<Vec<f32>> {
    assert!(batch_size > 0, "encode_all: batch_size must be positive");
    let _prof = profiler::phase("search.encode_all");
    let d = model.dim();
    let mut out = Vec::with_capacity(trajs.len());
    for chunk in trajs.chunks(batch_size) {
        let refs: Vec<&Trajectory> = chunk.iter().collect();
        let batch = PairBatch::build(&refs, &refs);
        if let Some(flat) = model.embed_nograd(&batch.a, &batch.b) {
            for row in 0..chunk.len() {
                out.push(flat[row * d..(row + 1) * d].to_vec());
            }
        } else {
            no_grad(|| encode_chunk_graphed(model, &batch, chunk.len(), &mut out));
        }
    }
    out
}

/// Encode every trajectory through the *graphed* autograd forward (under
/// `no_grad`), bypassing any tape-free fast path. The efficiency study
/// times this against [`encode_all`] to separate model cost from
/// graph-construction overhead.
pub fn encode_all_graphed(
    model: &dyn PairModel,
    trajs: &[Trajectory],
    batch_size: usize,
) -> Vec<Vec<f32>> {
    assert!(batch_size > 0, "encode_all_graphed: batch_size must be positive");
    let _prof = profiler::phase("search.encode_all_graphed");
    let mut out = Vec::with_capacity(trajs.len());
    no_grad(|| {
        for chunk in trajs.chunks(batch_size) {
            let refs: Vec<&Trajectory> = chunk.iter().collect();
            let batch = PairBatch::build(&refs, &refs);
            encode_chunk_graphed(model, &batch, chunk.len(), &mut out);
        }
    });
    out
}

/// Graphed last-valid-step encoding of one self-paired chunk.
fn encode_chunk_graphed(
    model: &dyn PairModel,
    batch: &PairBatch,
    rows: usize,
    out: &mut Vec<Vec<f32>>,
) {
    let d = model.dim();
    let enc = model.encode_pairs(batch);
    let last = ops::gather_time(&enc.out_a, &batch.a.last_idx);
    let data = last.to_vec();
    for row in 0..rows {
        out.push(data[row * d..(row + 1) * d].to_vec());
    }
}

/// Predicted distances from one query to every candidate for a
/// pair-dependent model: encodes `(query, candidate)` pairs in chunks.
pub fn pairwise_query_distances(
    model: &dyn PairModel,
    query: &Trajectory,
    candidates: &[Trajectory],
    batch_size: usize,
) -> Vec<f64> {
    assert!(batch_size > 0, "pairwise_query_distances: batch_size must be positive");
    let _prof = profiler::phase("search.pairwise_query");
    let d = model.dim();
    let mut out = Vec::with_capacity(candidates.len());
    for chunk in candidates.chunks(batch_size) {
        let queries: Vec<&Trajectory> = chunk.iter().map(|_| query).collect();
        let cands: Vec<&Trajectory> = chunk.iter().collect();
        let batch = PairBatch::build(&queries, &cands);
        // Fast path: two tape-free passes (one per side of the pair).
        if let Some(qa) = model.embed_nograd(&batch.a, &batch.b) {
            let cb = model.embed_nograd(&batch.b, &batch.a).expect("fast path must be symmetric");
            for row in 0..chunk.len() {
                out.push(embedding_distance(&qa[row * d..(row + 1) * d], &cb[row * d..(row + 1) * d]));
            }
            continue;
        }
        no_grad(|| {
            let enc = model.encode_pairs(&batch);
            let qa = ops::gather_time(&enc.out_a, &batch.a.last_idx).to_vec();
            let cb = ops::gather_time(&enc.out_b, &batch.b.last_idx).to_vec();
            for row in 0..chunk.len() {
                out.push(embedding_distance(&qa[row * d..(row + 1) * d], &cb[row * d..(row + 1) * d]));
            }
        });
    }
    out
}

/// Predicted distance rows for a set of query indices against the whole
/// `trajs` database, dispatching on pair dependence.
///
/// As a serving entry point this also feeds the global metrics registry:
/// `queries_total` advances by `queries.len()`, and embed spans land in the
/// `query_embed_ns` histogram (per query for pair-dependent models, one
/// whole-batch span otherwise).
pub fn predicted_distance_rows(
    model: &dyn PairModel,
    trajs: &[Trajectory],
    queries: &[usize],
    batch_size: usize,
) -> Vec<Vec<f64>> {
    metrics::counter_add(crate::timing::QUERIES_TOTAL, queries.len() as u64);
    if model.is_pair_dependent() {
        queries
            .iter()
            .map(|&q| {
                let start = std::time::Instant::now();
                let row = pairwise_query_distances(model, &trajs[q], trajs, batch_size);
                metrics::observe_duration(crate::timing::QUERY_EMBED_NS, start.elapsed());
                row
            })
            .collect()
    } else {
        let start = std::time::Instant::now();
        let emb = encode_all(model, trajs, batch_size);
        metrics::observe_duration(crate::timing::QUERY_EMBED_NS, start.elapsed());
        queries
            .iter()
            .map(|&q| emb.iter().map(|e| embedding_distance(&emb[q], e)).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmn_core::{ModelConfig, ModelKind};
    use tmn_traj::Point;

    fn trajs(n: usize) -> Vec<Trajectory> {
        (0..n)
            .map(|i| {
                let off = i as f64 * 0.07;
                (0..6 + i % 5).map(|t| Point::new(0.1 * t as f64, off)).collect()
            })
            .collect()
    }

    #[test]
    fn encode_all_shapes() {
        let model = ModelKind::Srn.build(&ModelConfig { dim: 8, seed: 1 });
        let ts = trajs(7);
        let emb = encode_all(model.as_ref(), &ts, 3);
        assert_eq!(emb.len(), 7);
        assert!(emb.iter().all(|e| e.len() == 8));
    }

    #[test]
    fn encode_all_batch_invariant() {
        // Same embeddings regardless of batch size (padding must not leak).
        let model = ModelKind::TmnNm.build(&ModelConfig { dim: 8, seed: 2 });
        let ts = trajs(5);
        let e1 = encode_all(model.as_ref(), &ts, 1);
        let e5 = encode_all(model.as_ref(), &ts, 5);
        for (a, b) in e1.iter().zip(&e5) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-5, "batch size changed embeddings");
            }
        }
    }

    #[test]
    fn fast_and_graphed_encodings_are_bitwise_equal() {
        let ts = trajs(7);
        for kind in [ModelKind::Srn, ModelKind::T3s, ModelKind::TmnNm, ModelKind::Tmn] {
            let model = kind.build(&ModelConfig { dim: 8, seed: 6 });
            let fast = encode_all(model.as_ref(), &ts, 3);
            let graphed = encode_all_graphed(model.as_ref(), &ts, 3);
            assert_eq!(fast, graphed, "{kind}: fast path diverged from graphed forward");
        }
    }

    #[test]
    fn self_distance_is_zero() {
        let model = ModelKind::Srn.build(&ModelConfig { dim: 8, seed: 3 });
        let ts = trajs(4);
        let rows = predicted_distance_rows(model.as_ref(), &ts, &[0, 2], 4);
        assert_eq!(rows.len(), 2);
        assert!(rows[0][0] < 1e-6);
        assert!(rows[1][2] < 1e-6);
    }

    #[test]
    fn pair_dependent_path_used_for_tmn() {
        let model = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 4 });
        let ts = trajs(4);
        let rows = predicted_distance_rows(model.as_ref(), &ts, &[1], 2);
        assert_eq!(rows[0].len(), 4);
        // Self pair: identical inputs on both sides -> identical outputs.
        assert!(rows[0][1] < 1e-5, "self distance {}", rows[0][1]);
        assert!(rows[0].iter().all(|d| d.is_finite()));
    }

    #[test]
    fn embedding_distance_basics() {
        assert_eq!(embedding_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(embedding_distance(&[1.0], &[1.0]), 0.0);
    }
}
