//! Ranking quality metrics: HR-k and Rk@t (Section V-A3).
//!
//! HR-k is the top-k hitting ratio — the overlap fraction between the
//! learned top-k and the ground-truth top-k. Rk@t is the top-t recall of the
//! top-k ground truth — the fraction of the true top-k recovered inside the
//! predicted top-t.

use serde::Serialize;

/// The three headline numbers of Tables II and IV, plus the mean Spearman
/// rank correlation between predicted and true distance rows (a
/// finer-grained ranking-quality signal than top-k overlap).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Evaluation {
    pub hr10: f64,
    pub hr50: f64,
    pub r10_50: f64,
    /// Mean Spearman correlation over queries (None if undefined for all).
    pub spearman: Option<f64>,
    /// Number of queries averaged over.
    pub queries: usize,
}

impl std::fmt::Display for Evaluation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HR-10 {:.4}  HR-50 {:.4}  R10@50 {:.4}", self.hr10, self.hr50, self.r10_50)
    }
}

/// Indices of the `k` smallest values in `row`, excluding `exclude`
/// (normally the query itself), ties broken by index.
pub fn top_k_indices(row: &[f64], k: usize, exclude: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..row.len()).filter(|&i| i != exclude).collect();
    idx.sort_by(|&a, &b| row[a].partial_cmp(&row[b]).unwrap().then(a.cmp(&b)));
    idx.truncate(k);
    idx
}

/// Overlap fraction `|A ∩ B| / k` between two top-k lists.
fn overlap(a: &[usize], b: &[usize], k: usize) -> f64 {
    let hits = a.iter().filter(|x| b.contains(x)).count();
    hits as f64 / k as f64
}

/// HR-k for one query: overlap of predicted and true top-k.
pub fn hitting_ratio(pred_row: &[f64], true_row: &[f64], k: usize, query: usize) -> f64 {
    let p = top_k_indices(pred_row, k, query);
    let t = top_k_indices(true_row, k, query);
    overlap(&p, &t, k)
}

/// Rk@t for one query: fraction of the true top-k inside the predicted
/// top-t (`t >= k`).
pub fn recall_at(pred_row: &[f64], true_row: &[f64], k: usize, t: usize, query: usize) -> f64 {
    assert!(t >= k, "Rk@t requires t >= k");
    let p = top_k_indices(pred_row, t, query);
    let tr = top_k_indices(true_row, k, query);
    tr.iter().filter(|x| p.contains(x)).count() as f64 / k as f64
}

/// Aggregate HR-10 / HR-50 / R10@50 over a set of queries.
///
/// `pred_rows[q]` and `true_rows[q]` are distance rows from query
/// `queries[q]` to every database trajectory (including itself; the query
/// is excluded from rankings).
pub fn evaluate(pred_rows: &[Vec<f64>], true_rows: &[Vec<f64>], queries: &[usize]) -> Evaluation {
    assert_eq!(pred_rows.len(), queries.len(), "one prediction row per query");
    assert_eq!(true_rows.len(), queries.len(), "one truth row per query");
    let mut hr10 = 0.0;
    let mut hr50 = 0.0;
    let mut r10_50 = 0.0;
    let mut rho_sum = 0.0;
    let mut rho_n = 0usize;
    for ((p, t), &q) in pred_rows.iter().zip(true_rows).zip(queries) {
        hr10 += hitting_ratio(p, t, 10, q);
        hr50 += hitting_ratio(p, t, 50, q);
        r10_50 += recall_at(p, t, 10, 50, q);
        if let Some(rho) = crate::spearman(p, t) {
            rho_sum += rho;
            rho_n += 1;
        }
    }
    let n = queries.len().max(1) as f64;
    Evaluation {
        hr10: hr10 / n,
        hr50: hr50 / n,
        r10_50: r10_50 / n,
        spearman: (rho_n > 0).then(|| rho_sum / rho_n as f64),
        queries: queries.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_scores_one() {
        // Pred == truth: all metrics are 1.
        let row: Vec<f64> = (0..60).map(|i| i as f64).collect();
        let e = evaluate(std::slice::from_ref(&row), std::slice::from_ref(&row), &[0]);
        assert_eq!(e.hr10, 1.0);
        assert_eq!(e.hr50, 1.0);
        assert_eq!(e.r10_50, 1.0);
    }

    #[test]
    fn reversed_prediction_scores_zero_hr10() {
        let truth: Vec<f64> = (0..61).map(|i| i as f64).collect();
        let pred: Vec<f64> = (0..61).rev().map(|i| i as f64).collect();
        let e = evaluate(&[pred], &[truth], &[0]);
        assert_eq!(e.hr10, 0.0);
    }

    #[test]
    fn query_excluded_from_ranking() {
        let truth = vec![0.0, 1.0, 2.0, 3.0];
        let top = top_k_indices(&truth, 2, 0);
        assert_eq!(top, vec![1, 2]);
    }

    #[test]
    fn recall_allows_wider_net() {
        // True top-1 = index 1; predicted ranks it 3rd. R1@3 hits, HR-1 misses.
        let truth = vec![0.0, 0.1, 5.0, 6.0, 7.0];
        let pred = vec![0.0, 4.0, 2.0, 3.0, 9.0];
        assert_eq!(hitting_ratio(&pred, &truth, 1, 0), 0.0);
        assert_eq!(recall_at(&pred, &truth, 1, 3, 0), 1.0);
    }

    #[test]
    fn hr_is_fraction_for_partial_overlap() {
        // 25 candidates; true top-10 (excluding query 0) is 1..=10. Pushing
        // 1..=5 beyond rank 10 promotes 11..=15 instead, so the predicted
        // top-10 = {6..=15}, sharing exactly 5 items with the truth.
        let truth: Vec<f64> = (0..25).map(|i| i as f64).collect();
        let mut pred = truth.clone();
        for (i, v) in pred.iter_mut().enumerate().take(6).skip(1) {
            *v = 100.0 + i as f64;
        }
        let hr = hitting_ratio(&pred, &truth, 10, 0);
        assert!((hr - 0.5).abs() < 1e-12, "hr {hr}");
    }

    #[test]
    #[should_panic(expected = "t >= k")]
    fn recall_with_t_less_than_k_panics() {
        let r = vec![0.0, 1.0];
        let _ = recall_at(&r, &r, 5, 2, 0);
    }
}
