//! Persistent embedding stores: hold the encoded database, serialize it
//! compactly, and search it (brute force or via HNSW).
//!
//! Two persistence paths share one search API:
//!
//! - the legacy in-RAM `TMNE` frame (little-endian: magic `TMNE` | version
//!   u32 | dim u32 | count u32 | `count * dim` f32), decoded into an owned
//!   buffer, and
//! - the CRC-framed `tmn-store` embeddings file, opened as an mmap(2) view
//!   and read **zero-copy**: [`EmbeddingStore::get`] hands out `&[f32]`
//!   slices straight into the kernel mapping, so a multi-GB corpus costs
//!   one open, not one materialization.
//!
//! Every search method is backing-agnostic — owned and mapped stores with
//! equal contents answer every query identically.

use std::path::Path;
use tmn_index::{AnnIndex, Hnsw, HnswConfig, ShardedHnsw};
use tmn_store::{EmbeddingsFile, EmbeddingsWriter};

const MAGIC: &[u8; 4] = b"TMNE";
const VERSION: u32 = 1;

/// Errors from decoding an embedding buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum StoreError {
    BadMagic,
    UnsupportedVersion(u32),
    Truncated,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::BadMagic => write!(f, "not a TMN embedding store (bad magic)"),
            StoreError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            StoreError::Truncated => write!(f, "buffer ends mid-record"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Where the row-major `count * dim` f32 block lives.
#[derive(Debug, Clone)]
enum Backing {
    /// Heap buffer (built in memory or decoded from the `TMNE` frame).
    Owned(Vec<f32>),
    /// CRC-verified mmap(2) view of a `tmn-store` embeddings file; reads
    /// are zero-copy slices into the mapping.
    Mapped(EmbeddingsFile),
}

/// A dense set of `d`-dimensional embeddings with stable indices.
#[derive(Debug, Clone)]
pub struct EmbeddingStore {
    dim: usize,
    backing: Backing,
}

/// Equality is by contents — an owned store and a mapped store holding the
/// same matrix compare equal, exactly as they search identically.
impl PartialEq for EmbeddingStore {
    fn eq(&self, other: &EmbeddingStore) -> bool {
        self.dim == other.dim && self.data() == other.data()
    }
}

impl EmbeddingStore {
    /// Build from per-trajectory embedding vectors (all `dim`-long).
    pub fn from_vectors(vectors: &[Vec<f32>]) -> EmbeddingStore {
        let dim = vectors.first().map(|v| v.len()).unwrap_or(0);
        assert!(
            vectors.iter().all(|v| v.len() == dim),
            "EmbeddingStore: inconsistent dimensions"
        );
        let mut data = Vec::with_capacity(vectors.len() * dim);
        for v in vectors {
            data.extend_from_slice(v);
        }
        EmbeddingStore { dim, backing: Backing::Owned(data) }
    }

    /// Open a `tmn-store` embeddings file as an mmap-backed store. The data
    /// CRC is verified once here; every later read is a zero-copy slice.
    pub fn open_mmap(path: &Path) -> Result<EmbeddingStore, tmn_store::StoreError> {
        let file = EmbeddingsFile::open(path)?;
        file.verify()?;
        Ok(EmbeddingStore { dim: file.dim(), backing: Backing::Mapped(file) })
    }

    /// Write the store as a CRC-framed `tmn-store` embeddings file that
    /// [`open_mmap`](EmbeddingStore::open_mmap) reads back zero-copy.
    pub fn save(&self, path: &Path) -> Result<(), tmn_store::StoreError> {
        let mut w = EmbeddingsWriter::create(path, self.dim)?;
        for i in 0..self.len() {
            w.push(self.get(i))?;
        }
        w.finish()
    }

    /// True when reads go through an mmap view rather than owned memory.
    pub fn is_mapped(&self) -> bool {
        matches!(self.backing, Backing::Mapped(_))
    }

    /// The whole row-major matrix, whichever backing holds it.
    fn data(&self) -> &[f32] {
        match &self.backing {
            Backing::Owned(v) => v,
            Backing::Mapped(f) => f.data(),
        }
    }

    pub fn len(&self) -> usize {
        self.data().len().checked_div(self.dim).unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.data().is_empty()
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn get(&self, i: usize) -> &[f32] {
        &self.data()[i * self.dim..(i + 1) * self.dim]
    }

    /// Exact k-NN by linear scan, `(index, distance)` ascending.
    pub fn knn_exact(&self, query: &[f32], k: usize) -> Vec<(usize, f64)> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let mut all: Vec<(usize, f64)> = (0..self.len())
            .map(|i| (i, crate::embedding_distance(query, self.get(i))))
            .collect();
        all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    /// Build an HNSW index over the stored embeddings.
    pub fn build_hnsw(&self, config: HnswConfig, rng: &mut impl rand::Rng) -> Hnsw {
        let mut index = Hnsw::new(self.dim.max(1), config);
        for i in 0..self.len() {
            index.insert(self.get(i), rng);
        }
        index
    }

    /// Build an int8-quantized HNSW index over the stored embeddings
    /// (≈ (d+2)/(4d) of the f32 vector bytes). Pair with [`knn_rerank`]
    /// (which reranks against this store's exact f32 embeddings) to keep
    /// top-k quality unchanged.
    ///
    /// [`knn_rerank`]: EmbeddingStore::knn_rerank
    pub fn build_hnsw_quantized(&self, config: HnswConfig, rng: &mut impl rand::Rng) -> Hnsw {
        let mut index = Hnsw::new_quantized(self.dim.max(1), config);
        for i in 0..self.len() {
            index.insert(self.get(i), rng);
        }
        index
    }

    /// Build a sharded HNSW over the stored embeddings: each index `i` is
    /// routed to its shard by the stable id→shard router, and queries
    /// scatter-gather across shards (the serving layout). Pair with
    /// [`knn_rerank`](EmbeddingStore::knn_rerank), which is index-agnostic.
    pub fn build_hnsw_sharded(
        &self,
        config: HnswConfig,
        shards: usize,
        rng: &mut impl rand::Rng,
    ) -> ShardedHnsw {
        let mut index = ShardedHnsw::new(self.dim.max(1), config, shards);
        for i in 0..self.len() {
            index.insert(i, self.get(i), rng);
        }
        index
    }

    /// [`build_hnsw_sharded`](EmbeddingStore::build_hnsw_sharded) with
    /// int8-quantized per-shard storage.
    pub fn build_hnsw_quantized_sharded(
        &self,
        config: HnswConfig,
        shards: usize,
        rng: &mut impl rand::Rng,
    ) -> ShardedHnsw {
        let mut index = ShardedHnsw::new_quantized(self.dim.max(1), config, shards);
        for i in 0..self.len() {
            index.insert(i, self.get(i), rng);
        }
        index
    }

    /// Approximate top-k with exact rerank: fetch a `shortlist`-sized
    /// candidate set from `index` (beam width = shortlist), then re-score
    /// every candidate against the store's full-precision embeddings and
    /// return the best `k` as `(index, distance)` ascending. With a
    /// shortlist a few times `k`, this reproduces exact-f32 ranking even
    /// over a quantized index.
    ///
    /// `index` is any [`AnnIndex`] — a single [`Hnsw`] or a [`ShardedHnsw`]
    /// whose shortlist is the scatter-gather merge across shards. (Earlier
    /// revisions took `&Hnsw` only, baking in a single-shard assumption.)
    pub fn knn_rerank(
        &self,
        index: &impl AnnIndex,
        query: &[f32],
        k: usize,
        shortlist: usize,
    ) -> Vec<(usize, f64)> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let ef = shortlist.max(k);
        let mut scored: Vec<(usize, f64)> = index
            .knn_ef(query, ef, ef)
            .into_iter()
            .map(|(i, _)| (i, crate::embedding_distance(query, self.get(i))))
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }

    /// Serialize to the framed binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let data = self.data();
        let mut out = Vec::with_capacity(16 + data.len() * 4);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.dim as u32).to_le_bytes());
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for v in data {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Decode from the framed binary format.
    pub fn from_bytes(buf: &[u8]) -> Result<EmbeddingStore, StoreError> {
        if buf.len() < 16 {
            return Err(StoreError::Truncated);
        }
        if &buf[..4] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let dim = u32::from_le_bytes(buf[8..12].try_into().unwrap()) as usize;
        let count = u32::from_le_bytes(buf[12..16].try_into().unwrap()) as usize;
        let expected = 16 + 4 * dim * count;
        if buf.len() < expected {
            return Err(StoreError::Truncated);
        }
        let data = buf[16..expected]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Ok(EmbeddingStore { dim, backing: Backing::Owned(data) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn store() -> EmbeddingStore {
        EmbeddingStore::from_vectors(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 2.0],
            vec![3.0, 4.0],
        ])
    }

    #[test]
    fn roundtrip() {
        let s = store();
        let back = EmbeddingStore::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.len(), 4);
        assert_eq!(back.dim(), 2);
    }

    #[test]
    fn knn_exact_orders_by_distance() {
        let s = store();
        let nn = s.knn_exact(&[0.1, 0.0], 3);
        assert_eq!(nn[0].0, 0);
        assert_eq!(nn[1].0, 1);
        assert!(nn[0].1 < nn[1].1 && nn[1].1 < nn[2].1);
    }

    #[test]
    fn hnsw_agrees_with_exact_on_small_store() {
        let vectors: Vec<Vec<f32>> = (0..100)
            .map(|i| vec![(i % 10) as f32, (i / 10) as f32])
            .collect();
        let s = EmbeddingStore::from_vectors(&vectors);
        let mut rng = StdRng::seed_from_u64(1);
        let index = s.build_hnsw(HnswConfig::default(), &mut rng);
        let exact: Vec<usize> = s.knn_exact(&[4.2, 4.2], 5).into_iter().map(|(i, _)| i).collect();
        let approx: Vec<usize> = index.knn(&[4.2, 4.2], 5).into_iter().map(|(i, _)| i).collect();
        let hits = approx.iter().filter(|i| exact.contains(i)).count();
        assert!(hits >= 4, "HNSW disagreed with exact on a trivial grid");
    }

    #[test]
    fn quantized_rerank_matches_exact_topk() {
        let vectors: Vec<Vec<f32>> = (0..200)
            .map(|i| {
                vec![
                    ((i * 37) % 101) as f32 / 101.0,
                    ((i * 53) % 97) as f32 / 97.0,
                    ((i * 71) % 89) as f32 / 89.0,
                    ((i * 13) % 83) as f32 / 83.0,
                ]
            })
            .collect();
        let s = EmbeddingStore::from_vectors(&vectors);
        let mut rng = StdRng::seed_from_u64(5);
        let index = s.build_hnsw_quantized(HnswConfig::default(), &mut rng);
        assert!(index.is_quantized());
        let q = [0.4f32, 0.6, 0.3, 0.7];
        let exact = s.knn_exact(&q, 10);
        let reranked = s.knn_rerank(&index, &q, 10, 50);
        let exact_ids: Vec<usize> = exact.iter().map(|&(i, _)| i).collect();
        let rerank_ids: Vec<usize> = reranked.iter().map(|&(i, _)| i).collect();
        let hits = rerank_ids.iter().filter(|i| exact_ids.contains(i)).count();
        assert!(hits >= 9, "rerank recovered only {hits}/10 exact neighbours");
        // Distances on the rerank path are exact f32 distances.
        for &(i, d) in &reranked {
            assert_eq!(d, crate::embedding_distance(&q, s.get(i)));
        }
    }

    #[test]
    fn corrupt_buffers_rejected() {
        assert_eq!(EmbeddingStore::from_bytes(b"nope"), Err(StoreError::Truncated));
        let mut buf = store().to_bytes();
        buf[0] = b'X';
        assert_eq!(EmbeddingStore::from_bytes(&buf), Err(StoreError::BadMagic));
        let mut buf2 = store().to_bytes();
        buf2.truncate(buf2.len() - 4);
        assert_eq!(EmbeddingStore::from_bytes(&buf2), Err(StoreError::Truncated));
    }

    #[test]
    fn empty_store() {
        let s = EmbeddingStore::from_vectors(&[]);
        assert!(s.is_empty());
        let back = EmbeddingStore::from_bytes(&s.to_bytes()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    #[should_panic(expected = "inconsistent dimensions")]
    fn mixed_dims_panic() {
        let _ = EmbeddingStore::from_vectors(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
