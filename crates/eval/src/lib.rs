//! # tmn-eval
//!
//! Evaluation harness for learned trajectory similarity: the top-k
//! similarity-search protocol of Section V (HR-10, HR-50, R10@50), encoding
//! utilities for both independent and pair-dependent models, and the timing
//! helpers behind the efficiency study (Table III).
//!
//! ```
//! use tmn_eval::{evaluate, top_k_indices};
//!
//! // With predictions identical to the truth, every metric is 1.
//! let truth: Vec<f64> = (0..60).map(|i| i as f64).collect();
//! let e = evaluate(&[truth.clone()], &[truth], &[0]);
//! assert_eq!(e.hr10, 1.0);
//! ```

mod correlation;
mod metrics;
mod parallel;
mod search;
mod sharded;
mod store;
mod timing;

pub use correlation::{kendall_tau, pearson, spearman};
pub use metrics::{evaluate, hitting_ratio, recall_at, top_k_indices, Evaluation};
pub use parallel::predicted_distance_rows_parallel;
pub use sharded::evaluate_sharded;
pub use store::{EmbeddingStore, StoreError};
pub use search::{
    embedding_distance, encode_all, encode_all_graphed, pairwise_query_distances,
    predicted_distance_rows,
};
pub use timing::{
    time_embedding_distance, time_exact_pairwise, time_exact_pairwise_counted,
    time_inference_per_trajectory, time_inference_per_trajectory_counted, time_inference_split,
    time_search_phases, time_search_phases_detailed, EfficiencyRow, InferenceTimings,
    QueryLatencies, SearchPhases, QUERIES_TOTAL, QUERY_EMBED_NS, QUERY_INDEX_NS, QUERY_RANK_NS,
};
