//! Timing harness for the efficiency study (Table III): exact-metric
//! computation time, model training time per epoch, per-trajectory
//! inference time, and per-pair similarity computation time.

use std::time::Instant;
use tmn_core::PairModel;
use tmn_obs::{metrics, trace};
use tmn_traj::metrics::{Metric, MetricParams};
use tmn_traj::Trajectory;

/// Registry names for the serving-path metrics (see DESIGN.md §8). One
/// histogram observation per query span; for independent-embedding models
/// the embed/index spans cover the whole batch and are recorded once per
/// search call (documented on [`time_search_phases`]).
pub const QUERY_EMBED_NS: &str = "query_embed_ns";
pub const QUERY_INDEX_NS: &str = "query_index_ns";
pub const QUERY_RANK_NS: &str = "query_rank_ns";
pub const QUERIES_TOTAL: &str = "queries_total";

/// One row of the efficiency table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct EfficiencyRow {
    pub method: String,
    /// Seconds per training epoch (None for exact metrics).
    pub training_s: Option<f64>,
    /// Seconds to encode one trajectory on the serving path — the tape-free
    /// forward when the model has one (None for exact metrics).
    pub inference_s: Option<f64>,
    /// Seconds to encode one trajectory through the graphed autograd
    /// forward. Reported alongside `inference_s` so the table separates
    /// model cost from graph-construction overhead — a single conflated
    /// number is how the original 0.072 s vs 0.00059 s asymmetry got
    /// quoted with autograd bookkeeping silently included.
    pub inference_graphed_s: Option<f64>,
    /// Seconds to compute one (pairwise) similarity.
    pub computation_s: f64,
    /// How many similarity evaluations `computation_s` was averaged over
    /// (None when the row predates counted timing).
    pub computation_ops: Option<u64>,
}

/// Wall-clock seconds to compute all pairwise distances of `trajs` under
/// `metric`, plus the number of pair evaluations performed — the per-pair
/// mean is `secs / pairs` with no re-derived denominator.
pub fn time_exact_pairwise_counted(
    trajs: &[Trajectory],
    metric: Metric,
    params: &MetricParams,
) -> (f64, u64) {
    let start = Instant::now();
    let mut acc = 0.0f64;
    let mut pairs = 0u64;
    for (i, a) in trajs.iter().enumerate() {
        for b in trajs.iter().skip(i + 1) {
            acc += metric.distance(a, b, params);
            pairs += 1;
        }
    }
    // Keep the accumulation observable so the loop cannot be optimized out.
    std::hint::black_box(acc);
    (start.elapsed().as_secs_f64(), pairs)
}

/// Wall-clock seconds to compute all pairwise distances of `trajs` under
/// `metric` (the exact-metric "Computation" entry of Table III).
/// Thin wrapper over [`time_exact_pairwise_counted`].
pub fn time_exact_pairwise(trajs: &[Trajectory], metric: Metric, params: &MetricParams) -> f64 {
    time_exact_pairwise_counted(trajs, metric, params).0
}

/// Total wall-clock seconds to encode every trajectory with `model`
/// (batched, amortized), plus the number of trajectories encoded. For
/// pair-dependent models this measures self-paired encoding, matching how
/// the paper reports TMN's per-trajectory inference cost.
///
/// Measures the serving path: `encode_all` takes the tape-free fast path
/// when the model has one. Earlier revisions always went through the
/// graphed forward, so the reported "inference" time silently included
/// autograd graph construction; use [`time_inference_split`] to see both
/// numbers side by side.
pub fn time_inference_per_trajectory_counted(
    model: &dyn PairModel,
    trajs: &[Trajectory],
    batch_size: usize,
) -> (f64, u64) {
    let start = Instant::now();
    let emb = crate::search::encode_all(model, trajs, batch_size);
    std::hint::black_box(&emb);
    (start.elapsed().as_secs_f64(), trajs.len() as u64)
}

/// Per-trajectory inference wall clock, split by forward implementation.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct InferenceTimings {
    /// Total seconds for the serving path (tape-free when available).
    pub nograd_s: f64,
    /// Total seconds for the graphed autograd forward under `no_grad`.
    pub graphed_s: f64,
    /// Trajectories encoded by each pass.
    pub trajectories: u64,
}

impl InferenceTimings {
    /// Graphed-over-fast ratio — the autograd overhead factor.
    pub fn speedup(&self) -> f64 {
        self.graphed_s / self.nograd_s.max(1e-12)
    }
}

/// Time both forward implementations over the same trajectories so Table
/// III can report model cost (tape-free) and autograd overhead (graphed)
/// as separate numbers. For models without a fast path the two passes run
/// the same code and the ratio is ≈ 1.
pub fn time_inference_split(
    model: &dyn PairModel,
    trajs: &[Trajectory],
    batch_size: usize,
) -> InferenceTimings {
    let start = Instant::now();
    let emb = crate::search::encode_all(model, trajs, batch_size);
    std::hint::black_box(&emb);
    let nograd_s = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let emb_g = crate::search::encode_all_graphed(model, trajs, batch_size);
    std::hint::black_box(&emb_g);
    let graphed_s = start.elapsed().as_secs_f64();
    InferenceTimings { nograd_s, graphed_s, trajectories: trajs.len() as u64 }
}

/// Mean seconds to encode one trajectory. Thin wrapper over
/// [`time_inference_per_trajectory_counted`].
pub fn time_inference_per_trajectory(
    model: &dyn PairModel,
    trajs: &[Trajectory],
    batch_size: usize,
) -> f64 {
    let (secs, n) = time_inference_per_trajectory_counted(model, trajs, batch_size);
    secs / n.max(1) as f64
}

/// Mean seconds to compute the Euclidean similarity of two `d`-dim
/// embeddings (the learning-based "Computation" entry; effectively O(d)).
pub fn time_embedding_distance(dim: usize, reps: usize) -> f64 {
    let a: Vec<f32> = (0..dim).map(|i| i as f32 * 0.01).collect();
    let b: Vec<f32> = (0..dim).map(|i| i as f32 * 0.02).collect();
    let start = Instant::now();
    let mut acc = 0.0f64;
    for _ in 0..reps.max(1) {
        acc += crate::search::embedding_distance(&a, &b);
    }
    std::hint::black_box(acc);
    start.elapsed().as_secs_f64() / reps.max(1) as f64
}

/// Wall-clock breakdown of an end-to-end top-k similarity search.
///
/// "Embed" covers model encoding (for pair-dependent models, all per-query
/// pair encodings), "index" covers building the [`crate::EmbeddingStore`]
/// (zero for pair-dependent models, which cannot be pre-indexed), and "rank"
/// covers nearest-neighbor scanning/ordering.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct SearchPhases {
    pub embed_s: f64,
    pub index_s: f64,
    pub rank_s: f64,
    pub queries: usize,
}

impl SearchPhases {
    pub fn total_s(&self) -> f64 {
        self.embed_s + self.index_s + self.rank_s
    }

    /// Fraction of total time in each phase, `(embed, index, rank)`.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total_s().max(1e-12);
        (self.embed_s / t, self.index_s / t, self.rank_s / t)
    }
}

/// Exact per-span nanosecond latencies measured by one
/// [`time_search_phases_detailed`] call — the very samples fed into the
/// metrics registry histograms, returned so tests can validate exported
/// quantiles against a sorted-sample oracle.
#[derive(Debug, Clone, Default)]
pub struct QueryLatencies {
    /// Per-query embed spans (pair-dependent models), or one whole-batch
    /// span (independent models).
    pub embed_ns: Vec<u64>,
    /// One whole-batch index-build span (independent models only; empty
    /// for pair-dependent models, which cannot be pre-indexed).
    pub index_ns: Vec<u64>,
    /// Per-query rank spans.
    pub rank_ns: Vec<u64>,
}

#[inline]
fn elapsed_ns(start: Instant) -> u64 {
    start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Run a full top-k search for `queries` (database indices) over `trajs`
/// and report per-phase timings alongside each query's `(index, distance)`
/// result list (self included).
///
/// Independent-embedding models go through encode → store-build → k-NN scan;
/// pair-dependent models (TMN) pay the encoding per query and skip the
/// index phase entirely — the cost asymmetry of the paper's Table III.
///
/// Serving metrics: every span is also recorded into the global
/// [`tmn_obs::metrics`] registry — per-query spans feed the
/// [`QUERY_EMBED_NS`] / [`QUERY_RANK_NS`] histograms and [`QUERIES_TOTAL`];
/// for independent models the one-shot whole-batch embed/index spans go to
/// [`QUERY_EMBED_NS`] / [`QUERY_INDEX_NS`] (one observation per call).
///
/// Tracing: when [`tmn_obs::trace`] is enabled, each call opens an
/// `eval.search` request and records the same intervals as `eval.embed` /
/// `eval.index` / `eval.rank` child spans, so offline evaluation runs land
/// in the flight recorder exactly like live serve traffic. Histogram
/// observations carry the trace id as an exemplar.
pub fn time_search_phases(
    model: &dyn PairModel,
    trajs: &[Trajectory],
    queries: &[usize],
    k: usize,
    batch_size: usize,
) -> (SearchPhases, Vec<Vec<(usize, f64)>>) {
    let (phases, results, _) = time_search_phases_detailed(model, trajs, queries, k, batch_size);
    (phases, results)
}

/// [`time_search_phases`] plus the exact per-span latencies it recorded
/// (the metrics-histogram oracle used by `tests/serving_metrics.rs`).
pub fn time_search_phases_detailed(
    model: &dyn PairModel,
    trajs: &[Trajectory],
    queries: &[usize],
    k: usize,
    batch_size: usize,
) -> (SearchPhases, Vec<Vec<(usize, f64)>>, QueryLatencies) {
    let _prof = tmn_obs::profiler::phase("eval.search");
    let req = trace::request_begin("eval.search");
    let _ambient = trace::attach(req.ctx());
    let ctx = req.ctx();
    let mut lat = QueryLatencies::default();
    metrics::counter_add(QUERIES_TOTAL, queries.len() as u64);
    let (phases, results) = if model.is_pair_dependent() {
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(queries.len());
        for &q in queries {
            let t0 = trace::now_ns();
            let start = Instant::now();
            let row = crate::search::pairwise_query_distances(model, &trajs[q], trajs, batch_size);
            let ns = elapsed_ns(start);
            trace::record_span(ctx, "eval.embed", t0, ns, &[("query", q as u64)]);
            metrics::observe_ns_traced(QUERY_EMBED_NS, ns, ctx.trace_id());
            lat.embed_ns.push(ns);
            rows.push(row);
        }
        let mut results = Vec::with_capacity(rows.len());
        for row in &rows {
            let t0 = trace::now_ns();
            let start = Instant::now();
            let mut idx: Vec<usize> = (0..row.len()).collect();
            idx.sort_by(|&a, &b| row[a].partial_cmp(&row[b]).unwrap().then(a.cmp(&b)));
            idx.truncate(k);
            let ranked: Vec<(usize, f64)> = idx.into_iter().map(|i| (i, row[i])).collect();
            let ns = elapsed_ns(start);
            trace::record_span(ctx, "eval.rank", t0, ns, &[("candidates", row.len() as u64)]);
            metrics::observe_ns_traced(QUERY_RANK_NS, ns, ctx.trace_id());
            lat.rank_ns.push(ns);
            results.push(ranked);
        }
        let embed_s = lat.embed_ns.iter().sum::<u64>() as f64 / 1e9;
        let rank_s = lat.rank_ns.iter().sum::<u64>() as f64 / 1e9;
        (SearchPhases { embed_s, index_s: 0.0, rank_s, queries: queries.len() }, results)
    } else {
        let t0 = trace::now_ns();
        let start = Instant::now();
        let emb = crate::search::encode_all(model, trajs, batch_size);
        let embed_ns = elapsed_ns(start);
        trace::record_span(ctx, "eval.embed", t0, embed_ns, &[("trajs", trajs.len() as u64)]);
        metrics::observe_ns_traced(QUERY_EMBED_NS, embed_ns, ctx.trace_id());
        lat.embed_ns.push(embed_ns);
        let t0 = trace::now_ns();
        let start = Instant::now();
        let store = crate::EmbeddingStore::from_vectors(&emb);
        let index_ns = elapsed_ns(start);
        trace::record_span(ctx, "eval.index", t0, index_ns, &[("vectors", emb.len() as u64)]);
        metrics::observe_ns_traced(QUERY_INDEX_NS, index_ns, ctx.trace_id());
        lat.index_ns.push(index_ns);
        let mut results = Vec::with_capacity(queries.len());
        for &q in queries {
            let t0 = trace::now_ns();
            let start = Instant::now();
            let ranked = store.knn_exact(&emb[q], k);
            let ns = elapsed_ns(start);
            trace::record_span(ctx, "eval.rank", t0, ns, &[("query", q as u64)]);
            metrics::observe_ns_traced(QUERY_RANK_NS, ns, ctx.trace_id());
            lat.rank_ns.push(ns);
            results.push(ranked);
        }
        let embed_s = embed_ns as f64 / 1e9;
        let index_s = index_ns as f64 / 1e9;
        let rank_s = lat.rank_ns.iter().sum::<u64>() as f64 / 1e9;
        (SearchPhases { embed_s, index_s, rank_s, queries: queries.len() }, results)
    };
    (phases, results, lat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmn_core::{ModelConfig, ModelKind};
    use tmn_traj::Point;

    fn trajs(n: usize, len: usize) -> Vec<Trajectory> {
        (0..n)
            .map(|i| (0..len).map(|t| Point::new(0.01 * t as f64, 0.05 * i as f64)).collect())
            .collect()
    }

    #[test]
    fn exact_timing_positive_and_scales() {
        let small = time_exact_pairwise(&trajs(6, 20), Metric::Dtw, &MetricParams::default());
        let large = time_exact_pairwise(&trajs(12, 40), Metric::Dtw, &MetricParams::default());
        assert!(small > 0.0);
        assert!(large > small, "more work must take longer: {small} vs {large}");
    }

    #[test]
    fn inference_timing_positive() {
        let model = ModelKind::Srn.build(&ModelConfig { dim: 8, seed: 1 });
        let t = time_inference_per_trajectory(model.as_ref(), &trajs(4, 10), 4);
        assert!(t > 0.0 && t.is_finite());
    }

    #[test]
    fn inference_split_reports_both_paths() {
        let model = ModelKind::Srn.build(&ModelConfig { dim: 8, seed: 1 });
        let t = time_inference_split(model.as_ref(), &trajs(6, 10), 3);
        assert!(t.nograd_s > 0.0 && t.graphed_s > 0.0);
        assert_eq!(t.trajectories, 6);
        assert!(t.speedup().is_finite() && t.speedup() > 0.0);
    }

    #[test]
    fn search_phases_independent_model() {
        let model = ModelKind::Srn.build(&ModelConfig { dim: 8, seed: 1 });
        let ts = trajs(8, 10);
        let (phases, results) = time_search_phases(model.as_ref(), &ts, &[0, 3], 4, 4);
        assert_eq!(phases.queries, 2);
        assert!(phases.embed_s > 0.0 && phases.rank_s > 0.0);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].len(), 4);
        // The query itself is its own nearest neighbor at distance ~0.
        assert_eq!(results[0][0].0, 0);
        assert!(results[0][0].1 < 1e-6);
        let (fe, fi, fr) = phases.fractions();
        assert!((fe + fi + fr - 1.0).abs() < 1e-9);
    }

    #[test]
    fn search_phases_pair_dependent_model_skips_index() {
        let model = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 2 });
        let ts = trajs(6, 8);
        let (phases, results) = time_search_phases(model.as_ref(), &ts, &[1], 3, 3);
        assert_eq!(phases.index_s, 0.0, "pair-dependent search has no index phase");
        assert!(phases.embed_s > 0.0);
        assert_eq!(results[0].len(), 3);
        assert_eq!(results[0][0].0, 1, "self match must rank first");
    }

    #[test]
    fn search_records_trace_with_phase_spans() {
        let model = ModelKind::Srn.build(&ModelConfig { dim: 8, seed: 1 });
        let ts = trajs(8, 10);
        trace::configure(tmn_obs::TraceConfig {
            slow_threshold_ns: 0, // keep every request
            ..Default::default()
        });
        trace::set_enabled(true);
        let _ = time_search_phases(model.as_ref(), &ts, &[0, 3], 4, 4);
        trace::set_enabled(false);
        let snap = trace::recent()
            .into_iter()
            .find(|t| t.name == "eval.search")
            .expect("eval.search trace must be captured");
        assert!(snap.is_well_formed(), "span tree must reassemble");
        assert_eq!(snap.spans_named("eval.embed").len(), 1, "one whole-batch embed span");
        assert_eq!(snap.spans_named("eval.index").len(), 1);
        assert_eq!(snap.spans_named("eval.rank").len(), 2, "one rank span per query");
        trace::configure(tmn_obs::TraceConfig::default());
    }

    #[test]
    fn embedding_distance_is_microscopic() {
        let t = time_embedding_distance(128, 1000);
        assert!(t > 0.0);
        // O(d) distance must be far below a millisecond.
        assert!(t < 1e-3, "embedding distance took {t}s");
    }
}
