//! Timing harness for the efficiency study (Table III): exact-metric
//! computation time, model training time per epoch, per-trajectory
//! inference time, and per-pair similarity computation time.

use std::time::Instant;
use tmn_core::PairModel;
use tmn_traj::metrics::{Metric, MetricParams};
use tmn_traj::Trajectory;

/// One row of the efficiency table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct EfficiencyRow {
    pub method: String,
    /// Seconds per training epoch (None for exact metrics).
    pub training_s: Option<f64>,
    /// Seconds to encode one trajectory (None for exact metrics).
    pub inference_s: Option<f64>,
    /// Seconds to compute one (pairwise) similarity.
    pub computation_s: f64,
}

/// Wall-clock seconds to compute all pairwise distances of `trajs` under
/// `metric` (the exact-metric "Computation" entry of Table III).
pub fn time_exact_pairwise(trajs: &[Trajectory], metric: Metric, params: &MetricParams) -> f64 {
    let start = Instant::now();
    let mut acc = 0.0f64;
    for (i, a) in trajs.iter().enumerate() {
        for b in trajs.iter().skip(i + 1) {
            acc += metric.distance(a, b, params);
        }
    }
    // Keep the accumulation observable so the loop cannot be optimized out.
    std::hint::black_box(acc);
    start.elapsed().as_secs_f64()
}

/// Mean seconds to encode one trajectory with `model` (batched encoding,
/// amortized). For pair-dependent models this measures self-paired encoding,
/// matching how the paper reports TMN's per-trajectory inference cost.
pub fn time_inference_per_trajectory(
    model: &dyn PairModel,
    trajs: &[Trajectory],
    batch_size: usize,
) -> f64 {
    let start = Instant::now();
    let emb = crate::search::encode_all(model, trajs, batch_size);
    std::hint::black_box(&emb);
    start.elapsed().as_secs_f64() / trajs.len().max(1) as f64
}

/// Mean seconds to compute the Euclidean similarity of two `d`-dim
/// embeddings (the learning-based "Computation" entry; effectively O(d)).
pub fn time_embedding_distance(dim: usize, reps: usize) -> f64 {
    let a: Vec<f32> = (0..dim).map(|i| i as f32 * 0.01).collect();
    let b: Vec<f32> = (0..dim).map(|i| i as f32 * 0.02).collect();
    let start = Instant::now();
    let mut acc = 0.0f64;
    for _ in 0..reps.max(1) {
        acc += crate::search::embedding_distance(&a, &b);
    }
    std::hint::black_box(acc);
    start.elapsed().as_secs_f64() / reps.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmn_core::{ModelConfig, ModelKind};
    use tmn_traj::Point;

    fn trajs(n: usize, len: usize) -> Vec<Trajectory> {
        (0..n)
            .map(|i| (0..len).map(|t| Point::new(0.01 * t as f64, 0.05 * i as f64)).collect())
            .collect()
    }

    #[test]
    fn exact_timing_positive_and_scales() {
        let small = time_exact_pairwise(&trajs(6, 20), Metric::Dtw, &MetricParams::default());
        let large = time_exact_pairwise(&trajs(12, 40), Metric::Dtw, &MetricParams::default());
        assert!(small > 0.0);
        assert!(large > small, "more work must take longer: {small} vs {large}");
    }

    #[test]
    fn inference_timing_positive() {
        let model = ModelKind::Srn.build(&ModelConfig { dim: 8, seed: 1 });
        let t = time_inference_per_trajectory(model.as_ref(), &trajs(4, 10), 4);
        assert!(t > 0.0 && t.is_finite());
    }

    #[test]
    fn embedding_distance_is_microscopic() {
        let t = time_embedding_distance(128, 1000);
        assert!(t > 0.0);
        // O(d) distance must be far below a millisecond.
        assert!(t < 1e-3, "embedding distance took {t}s");
    }
}
