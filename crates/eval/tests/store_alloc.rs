//! Allocation gate for the zero-copy read path (the mmap analogue of the
//! tape-free inference gate in `tmn-core`): once an mmap-backed
//! [`EmbeddingStore`] is open, reading rows allocates **nothing** — every
//! `get` is a slice into the kernel mapping — so a scan over N rows costs
//! O(1) allocations, not O(N).
//!
//! Measured with the counting `#[global_allocator]` from `tmn_obs::memory`
//! rather than inspection: any copy sneaking into the read path trips the
//! budget no matter which layer allocates it.

use tmn_eval::EmbeddingStore;
use tmn_obs::memory;
use tmn_store::CorpusFile;
use tmn_traj::{Point, Trajectory};

/// The armed counter is process-global; serialize measuring tests.
fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tmn-eval-alloc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn counting_allocator_is_compiled_in() {
    assert!(memory::is_active(), "tmn-obs alloc-count feature must be enabled for tests");
    assert!(memory::alloc_count() > 0, "allocator must have observed this binary's allocations");
}

#[test]
fn mmap_store_row_reads_are_allocation_free() {
    let _l = test_lock();
    const ROWS: usize = 2000;
    const DIM: usize = 24;
    let vecs: Vec<Vec<f32>> =
        (0..ROWS).map(|i| (0..DIM).map(|j| (i * 31 + j * 7) as f32 * 1e-3).collect()).collect();
    let path = tmp("rows.tmns");
    EmbeddingStore::from_vectors(&vecs).save(&path).unwrap();
    let store = EmbeddingStore::open_mmap(&path).unwrap();
    assert!(store.is_mapped());

    let before = memory::alloc_count();
    let mut sum = 0.0f32;
    for i in 0..ROWS {
        for &v in store.get(i) {
            sum += v;
        }
    }
    let delta = memory::alloc_count() - before;
    assert!(sum.is_finite());
    // O(1), not O(ROWS): the scan itself performs zero heap allocations;
    // allow a tiny constant of test-harness noise.
    assert!(delta <= 4, "reading {ROWS} mapped rows allocated {delta} times");
}

#[test]
fn corpus_point_slice_reads_are_allocation_free() {
    let _l = test_lock();
    const N: usize = 500;
    let trajs: Vec<Trajectory> = (0..N)
        .map(|i| (0..8).map(|t| Point::new(t as f64 * 0.1, i as f64 * 0.01)).collect())
        .collect();
    let path = tmp("corpus.tmns");
    tmn_store::write_corpus(&path, &trajs).unwrap();
    let corpus = CorpusFile::open(&path).unwrap();

    let before = memory::alloc_count();
    let mut sum = 0.0f64;
    let view = corpus.view();
    for i in 0..N {
        for &c in view.points_raw(i) {
            sum += c;
        }
    }
    let delta = memory::alloc_count() - before;
    assert!(sum.is_finite());
    assert!(delta <= 4, "reading {N} mapped trajectories allocated {delta} times");
}
