//! End-to-end serving metrics: top-k search must populate the global
//! latency histograms, and the exported p50/p95/p99 must agree with an
//! exact sorted-sample oracle within the documented 1/16 bucket error.
//!
//! The oracle is `QueryLatencies` from `time_search_phases_detailed` — the
//! very nanosecond spans the search fed into the registry — so this
//! validates the whole chain: measurement → histogram → snapshot → export.
//!
//! The registry is process-global and tests in one binary run on parallel
//! threads, so every test takes the shared lock and resets the registry.

use std::sync::{Mutex, MutexGuard};
use tmn_core::{ModelConfig, ModelKind};
use tmn_eval::{
    predicted_distance_rows, time_search_phases_detailed, QUERIES_TOTAL, QUERY_EMBED_NS,
    QUERY_INDEX_NS, QUERY_RANK_NS,
};
use tmn_obs::metrics::{self, HistogramSnapshot, SUB_BUCKETS};
use tmn_obs::export;
use tmn_traj::{Point, Trajectory};

fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn trajs(n: usize, len: usize) -> Vec<Trajectory> {
    (0..n)
        .map(|i| {
            (0..len + i % 7)
                .map(|t| Point::new(0.02 * t as f64, 0.05 * i as f64))
                .collect()
        })
        .collect()
}

/// Exact order statistic with `Histogram::quantile`'s rank definition.
fn oracle_quantile(samples: &[u64], q: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Exported estimate must never undershoot the exact order statistic and
/// may overshoot by at most 1/16 relative (the documented bucket error).
fn assert_quantile_within_bound(est: u64, samples: &[u64], q: f64, name: &str) {
    let exact = oracle_quantile(samples, q);
    assert!(est >= exact, "{name} p{q}: exported {est} undershoots exact {exact}");
    assert!(
        (est - exact) as f64 <= exact as f64 / SUB_BUCKETS as f64,
        "{name} p{q}: exported {est} overshoots exact {exact} beyond 1/{SUB_BUCKETS}"
    );
}

fn assert_histogram_matches_oracle(h: &HistogramSnapshot, samples: &[u64]) {
    assert_eq!(h.count, samples.len() as u64, "{}: count mismatch", h.name);
    assert_eq!(h.sum_ns, samples.iter().sum::<u64>(), "{}: sum mismatch", h.name);
    assert_eq!(h.min_ns, *samples.iter().min().unwrap(), "{}: min mismatch", h.name);
    assert_eq!(h.max_ns, *samples.iter().max().unwrap(), "{}: max mismatch", h.name);
    for (q, est) in [(0.50, h.p50_ns), (0.95, h.p95_ns), (0.99, h.p99_ns)] {
        assert_quantile_within_bound(est, samples, q, &h.name);
    }
    assert!(h.p50_ns <= h.p95_ns && h.p95_ns <= h.p99_ns && h.p99_ns <= h.max_ns);
}

#[test]
fn pair_dependent_search_populates_histograms_matching_oracle() {
    let _l = test_lock();
    metrics::set_enabled(true);
    metrics::reset();

    let model = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 5 });
    let ts = trajs(10, 8);
    let queries: Vec<usize> = (0..10).collect();
    let (phases, results, lat) = time_search_phases_detailed(model.as_ref(), &ts, &queries, 5, 4);
    let snap = metrics::snapshot();
    metrics::reset();

    assert_eq!(phases.queries, queries.len());
    assert_eq!(results.len(), queries.len());
    assert_eq!(lat.embed_ns.len(), queries.len(), "one embed span per query");
    assert_eq!(lat.rank_ns.len(), queries.len(), "one rank span per query");
    assert!(lat.index_ns.is_empty(), "pair-dependent search has no index span");

    assert_eq!(snap.counter(QUERIES_TOTAL), Some(queries.len() as u64));
    assert!(snap.histogram(QUERY_INDEX_NS).is_none(), "no index histogram expected");
    assert_histogram_matches_oracle(snap.histogram(QUERY_EMBED_NS).unwrap(), &lat.embed_ns);
    assert_histogram_matches_oracle(snap.histogram(QUERY_RANK_NS).unwrap(), &lat.rank_ns);

    // The Prometheus rendering of the same snapshot exposes the histograms
    // under the documented names.
    let text = export::to_prometheus(&snap);
    assert!(text.contains("# TYPE tmn_query_embed_ns histogram"));
    assert!(text.contains("# TYPE tmn_query_rank_ns histogram"));
    assert!(text.contains(&format!("tmn_queries_total {}", queries.len())));
}

#[test]
fn independent_search_records_index_span_and_per_query_ranks() {
    let _l = test_lock();
    metrics::set_enabled(true);
    metrics::reset();

    let model = ModelKind::Srn.build(&ModelConfig { dim: 8, seed: 6 });
    let ts = trajs(12, 8);
    let queries: Vec<usize> = (0..12).collect();
    let (phases, _, lat) = time_search_phases_detailed(model.as_ref(), &ts, &queries, 4, 4);
    let snap = metrics::snapshot();
    metrics::reset();

    assert!(phases.index_s > 0.0 || lat.index_ns == vec![0]);
    assert_eq!(lat.embed_ns.len(), 1, "independent models embed the whole batch once");
    assert_eq!(lat.index_ns.len(), 1, "one index-build span per search call");
    assert_eq!(lat.rank_ns.len(), queries.len(), "one rank span per query");

    assert_eq!(snap.counter(QUERIES_TOTAL), Some(queries.len() as u64));
    assert_eq!(snap.histogram(QUERY_EMBED_NS).unwrap().count, 1);
    assert_eq!(snap.histogram(QUERY_INDEX_NS).unwrap().count, 1);
    assert_histogram_matches_oracle(snap.histogram(QUERY_RANK_NS).unwrap(), &lat.rank_ns);
}

#[test]
fn predicted_distance_rows_counts_queries() {
    let _l = test_lock();
    metrics::set_enabled(true);
    metrics::reset();

    let model = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 7 });
    let ts = trajs(5, 6);
    let rows = predicted_distance_rows(model.as_ref(), &ts, &[0, 2, 4], 2);
    let snap = metrics::snapshot();
    metrics::reset();

    assert_eq!(rows.len(), 3);
    assert_eq!(snap.counter(QUERIES_TOTAL), Some(3));
    assert_eq!(snap.histogram(QUERY_EMBED_NS).unwrap().count, 3, "per-query embed spans");
}

#[test]
fn disabled_registry_records_nothing_and_search_still_works() {
    let _l = test_lock();
    metrics::set_enabled(false);
    metrics::reset();

    let model = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 8 });
    let ts = trajs(5, 6);
    let (phases, results, lat) = time_search_phases_detailed(model.as_ref(), &ts, &[1, 3], 3, 2);
    let snap = metrics::snapshot();
    metrics::set_enabled(true);

    assert_eq!(phases.queries, 2);
    assert_eq!(results.len(), 2);
    assert_eq!(lat.embed_ns.len(), 2, "detailed latencies still returned when disabled");
    assert!(snap.counter(QUERIES_TOTAL).is_none(), "disabled registry must stay empty");
    assert!(snap.histogram(QUERY_EMBED_NS).is_none());
    assert!(snap.histogram(QUERY_RANK_NS).is_none());
}
