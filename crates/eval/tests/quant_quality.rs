//! Quantization quality gate (Table II harness): an int8 HNSW index with
//! exact f32 rerank must reproduce the full-precision hitting ratio to
//! within 0.5% absolute, while storing vectors in ≤ 30% of the f32 bytes.
//!
//! Protocol: encode a synthetic clustered dataset with TMN-NM, rank
//! ground-truth neighbours by DTW (the Table II protocol), then compare
//! HR@10 of (a) exact f32 linear scan and (b) int8 HNSW shortlist + exact
//! f32 rerank. The rerank step rescores the shortlist against the exact
//! embeddings, so with a shortlist a few times k the only quality risk is
//! a true neighbour falling outside the (slightly perturbed) shortlist.
//!
//! Set `TMN_SHORTLIST_SWEEP=1` (with `--nocapture`) to print the HR@10
//! delta across shortlist sizes — the sweep documented in EXPERIMENTS.md.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tmn_core::{ModelConfig, ModelKind};
use tmn_eval::{encode_all, EmbeddingStore};
use tmn_index::HnswConfig;
use tmn_traj::metrics::{Metric, MetricParams};
use tmn_traj::{Point, Trajectory};

/// 120 trajectories in 12 loose clusters so nearest neighbours are
/// well-defined but not degenerate.
fn clustered_trajs() -> Vec<Trajectory> {
    let mut out = Vec::new();
    for c in 0..12u64 {
        let (cx, cy) = ((c % 4) as f64 * 0.25, (c / 4) as f64 * 0.3);
        for j in 0..10u64 {
            let len = 8 + ((c * 10 + j) % 7) as usize;
            let traj: Trajectory = (0..len)
                .map(|t| {
                    let wob = ((c * 131 + j * 17 + t as u64 * 7) % 23) as f64 / 230.0;
                    Point::new(cx + 0.02 * t as f64 + wob * 0.1, cy + wob)
                })
                .collect();
            out.push(traj);
        }
    }
    out
}

/// Top-10 database ids (self excluded) from a `(id, dist)` candidate list.
fn top10_excluding(cands: &[(usize, f64)], q: usize) -> Vec<usize> {
    cands.iter().map(|&(i, _)| i).filter(|&i| i != q).take(10).collect()
}

fn overlap10(a: &[usize], b: &[usize]) -> f64 {
    a.iter().filter(|x| b.contains(x)).count() as f64 / 10.0
}

#[test]
fn int8_rerank_reproduces_f32_hitting_ratio() {
    let trajs = clustered_trajs();
    let model = ModelKind::TmnNm.build(&ModelConfig { dim: 16, seed: 21 });
    let emb = encode_all(model.as_ref(), &trajs, 16);
    let store = EmbeddingStore::from_vectors(&emb);

    // Ground truth: DTW top-10 per query (the Table II protocol).
    let params = MetricParams::default();
    let queries: Vec<usize> = (0..trajs.len()).step_by(6).collect(); // 20 queries
    let truth: Vec<Vec<usize>> = queries
        .iter()
        .map(|&q| {
            let row: Vec<f64> =
                trajs.iter().map(|t| Metric::Dtw.distance(&trajs[q], t, &params)).collect();
            tmn_eval::top_k_indices(&row, 10, q)
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(33);
    let f32_index = store.build_hnsw(HnswConfig::default(), &mut rng);
    let mut rng = StdRng::seed_from_u64(33);
    let int8_index = store.build_hnsw_quantized(HnswConfig::default(), &mut rng);

    // Memory: int8 vector storage must be ≤ 30% of f32 (d=16 → 28.1%).
    let ratio = int8_index.memory_bytes() as f64 / f32_index.memory_bytes() as f64;
    assert!(ratio <= 0.30, "int8 store is {ratio:.3} of f32, want <= 0.30");

    let shortlist = 60;
    let (mut hr_f32, mut hr_int8) = (0.0, 0.0);
    for (qi, &q) in queries.iter().enumerate() {
        let exact = top10_excluding(&store.knn_exact(&emb[q], 11), q);
        let reranked = top10_excluding(&store.knn_rerank(&int8_index, &emb[q], 11, shortlist), q);
        hr_f32 += overlap10(&exact, &truth[qi]);
        hr_int8 += overlap10(&reranked, &truth[qi]);
    }
    hr_f32 /= queries.len() as f64;
    hr_int8 /= queries.len() as f64;
    let delta = (hr_f32 - hr_int8).abs();
    assert!(
        delta <= 0.005,
        "HR@10 moved by {delta:.4} under int8+rerank (f32 {hr_f32:.4}, int8 {hr_int8:.4})"
    );

    if std::env::var("TMN_SHORTLIST_SWEEP").is_ok() {
        println!("shortlist sweep (HR@10 f32 = {hr_f32:.4}):");
        for sl in [10, 15, 20, 30, 40, 60, 80] {
            let mut hr = 0.0;
            for (qi, &q) in queries.iter().enumerate() {
                let got = top10_excluding(&store.knn_rerank(&int8_index, &emb[q], 11, sl), q);
                hr += overlap10(&got, &truth[qi]);
            }
            hr /= queries.len() as f64;
            println!("  shortlist {sl:3}: HR@10 {hr:.4} (delta {:+.4})", hr - hr_f32);
        }
    }
}
