//! Data-plane determinism gates:
//!
//! 1. Table II numbers are bitwise identical whether the embeddings sit in
//!    owned memory or behind the mmap-backed `tmn-store` file, and
//! 2. bitwise identical across 1, 2 and 4 evaluation shards, and
//! 3. bitwise identical whether the ground truth is the dense in-RAM
//!    `DistanceMatrix` or the blocked out-of-core store.
//!
//! Together these let the bench/serving paths swap any of the three axes
//! (backing, shard count, ground-truth residency) with zero result drift.

use tmn_eval::{evaluate_sharded, EmbeddingStore, Evaluation};
use tmn_store::BlockedDistanceMatrix;
use tmn_traj::metrics::{Metric, MetricParams};
use tmn_traj::{DistanceMatrix, Point, Trajectory};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tmn-eval-det-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn corpus(n: usize) -> (Vec<Trajectory>, EmbeddingStore) {
    let trajs: Vec<Trajectory> = (0..n)
        .map(|i| {
            let off = (i as f64 * 0.37) % 1.3;
            (0..5 + i % 6)
                .map(|t| Point::new(0.09 * t as f64 + off, off * 0.8 - 0.02 * t as f64))
                .collect()
        })
        .collect();
    let vecs: Vec<Vec<f32>> = trajs
        .iter()
        .map(|t| {
            let pts = t.points();
            let (a, b) = (&pts[0], &pts[pts.len() - 1]);
            vec![a.lon as f32, a.lat as f32, b.lon as f32, b.lat as f32]
        })
        .collect();
    (trajs, EmbeddingStore::from_vectors(&vecs))
}

fn bits(e: &Evaluation) -> (u64, u64, u64, Option<u64>, usize) {
    (
        e.hr10.to_bits(),
        e.hr50.to_bits(),
        e.r10_50.to_bits(),
        e.spearman.map(f64::to_bits),
        e.queries,
    )
}

#[test]
fn owned_and_mapped_stores_evaluate_bitwise_identically() {
    let (trajs, owned) = corpus(42);
    let dmat = DistanceMatrix::compute(&trajs, Metric::Hausdorff, &MetricParams::default(), 1);
    let path = tmp("owned-vs-mapped.tmns");
    owned.save(&path).unwrap();
    let mapped = EmbeddingStore::open_mmap(&path).unwrap();
    assert!(mapped.is_mapped() && !owned.is_mapped());
    assert_eq!(owned, mapped, "contents must round-trip through the store file");

    let queries: Vec<usize> = (0..42).step_by(2).collect();
    let a = evaluate_sharded(&owned, &dmat, &queries, 2);
    let b = evaluate_sharded(&mapped, &dmat, &queries, 2);
    assert_eq!(bits(&a), bits(&b), "mmap backing changed evaluation results");
}

#[test]
fn shard_counts_one_two_four_are_bitwise_identical() {
    let (trajs, store) = corpus(38);
    let dmat = DistanceMatrix::compute(&trajs, Metric::Dtw, &MetricParams::default(), 1);
    let queries: Vec<usize> = (0..38).collect();
    let one = evaluate_sharded(&store, &dmat, &queries, 1);
    let two = evaluate_sharded(&store, &dmat, &queries, 2);
    let four = evaluate_sharded(&store, &dmat, &queries, 4);
    assert_eq!(bits(&one), bits(&two));
    assert_eq!(bits(&one), bits(&four));
}

#[test]
fn blocked_ground_truth_evaluates_bitwise_identically_to_dense() {
    let (trajs, store) = corpus(33);
    let dmat = DistanceMatrix::compute(&trajs, Metric::Hausdorff, &MetricParams::default(), 1);
    let path = tmp("blocked-gt.tmns");
    let blocked =
        BlockedDistanceMatrix::compute(&path, &trajs, Metric::Hausdorff, &MetricParams::default(), 2, 8)
            .unwrap();
    let queries: Vec<usize> = (0..33).step_by(3).collect();
    let dense = evaluate_sharded(&store, &dmat, &queries, 2);
    let tiled = evaluate_sharded(&store, &blocked, &queries, 2);
    assert_eq!(bits(&dense), bits(&tiled), "out-of-core ground truth changed results");
}
