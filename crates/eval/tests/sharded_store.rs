//! Regression tests for the single-shard assumption that used to live in
//! `EmbeddingStore::knn_rerank`: the shortlist now flows through the
//! `AnnIndex` abstraction, so a sharded index's scatter-gather merge feeds
//! the same exact-rerank path — and a `k` whose true members straddle
//! multiple shards must come back globally correct.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tmn_eval::EmbeddingStore;
use tmn_index::{AnnIndex, HnswConfig, ShardRouter};

/// Deterministic scattered vectors (no clusters aligned with shards).
fn vectors(n: usize, dim: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| {
            (0..dim)
                .map(|d| (((i + 1) * (d + 7) * 2654435761_usize) % 1000) as f32 / 1000.0)
                .collect()
        })
        .collect()
}

#[test]
fn topk_straddling_two_shards_is_globally_correct() {
    let dim = 6;
    let store = EmbeddingStore::from_vectors(&vectors(400, dim));
    let mut rng = StdRng::seed_from_u64(17);
    let config = HnswConfig { m: 12, ef_construction: 120, ef_search: 80 };
    let index = store.build_hnsw_sharded(config, 2, &mut rng);
    assert_eq!(index.shards(), 2);

    let router = ShardRouter::new(2);
    let k = 10;
    let mut checked_straddling = 0usize;
    for qi in 0..40 {
        let q: Vec<f32> = (0..dim).map(|d| ((qi * 13 + d * 29) % 100) as f32 / 100.0).collect();
        let exact = store.knn_exact(&q, k);
        // Only interesting when the true top-k actually straddles shards.
        let shard0 = exact.iter().filter(|&&(i, _)| router.shard_of(i as u64) == 0).count();
        if shard0 > 0 && shard0 < k {
            checked_straddling += 1;
        }
        let reranked = store.knn_rerank(&index, &q, k, 400);
        assert_eq!(
            reranked, exact,
            "query {qi}: sharded rerank diverged from the exact oracle"
        );
    }
    assert!(
        checked_straddling >= 30,
        "test vacuous: only {checked_straddling}/40 queries straddled both shards"
    );
}

#[test]
fn quantized_sharded_rerank_matches_exact_topk() {
    let dim = 8;
    let store = EmbeddingStore::from_vectors(&vectors(300, dim));
    let mut rng = StdRng::seed_from_u64(23);
    let config = HnswConfig { m: 12, ef_construction: 120, ef_search: 80 };
    let index = store.build_hnsw_quantized_sharded(config, 3, &mut rng);
    assert!(index.is_quantized());

    let (mut hits, mut total) = (0usize, 0usize);
    for qi in 0..20 {
        let q: Vec<f32> = (0..dim).map(|d| ((qi * 31 + d * 17) % 100) as f32 / 100.0).collect();
        let exact: Vec<usize> = store.knn_exact(&q, 10).into_iter().map(|(i, _)| i).collect();
        let reranked = store.knn_rerank(&index, &q, 10, 150);
        let ids: Vec<usize> = reranked.iter().map(|&(i, _)| i).collect();
        total += exact.len();
        hits += exact.iter().filter(|i| ids.contains(i)).count();
        // Rerank distances are exact f32 distances, shard-independent.
        for &(i, d) in &reranked {
            assert_eq!(d, tmn_eval::embedding_distance(&q, store.get(i)));
        }
    }
    let hr = hits as f64 / total as f64;
    assert!(hr >= 0.995, "quantized sharded HR@10 {hr} below the 0.5% gate");
}

#[test]
fn single_hnsw_still_works_through_the_generic_path() {
    // The old callers (single index) compile and behave unchanged.
    let store = EmbeddingStore::from_vectors(&vectors(120, 4));
    let mut rng = StdRng::seed_from_u64(29);
    let index = store.build_hnsw(HnswConfig::default(), &mut rng);
    let q = [0.3f32, 0.5, 0.1, 0.9];
    let exact = store.knn_exact(&q, 5);
    let reranked = store.knn_rerank(&index, &q, 5, 120);
    assert_eq!(reranked, exact);
    assert_eq!(AnnIndex::len(&index), 120);
}
