//! Preprocessing mirroring Section V-A1: keep the city-centre area, drop
//! trajectories shorter than 10 records, and normalize coordinates for the
//! models.

use tmn_traj::{Point, Trajectory};

/// Filtering configuration.
#[derive(Debug, Clone, Copy)]
pub struct FilterConfig {
    /// Minimum number of records (the paper removes trajectories < 10).
    pub min_len: usize,
    /// Optional maximum length (long tails blow up O(n²) ground truth).
    pub max_len: Option<usize>,
    /// Keep only trajectories fully inside this bbox (the "centre area").
    pub bbox: Option<((f64, f64), (f64, f64))>,
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig { min_len: 10, max_len: None, bbox: None }
    }
}

/// Apply the paper's preprocessing filters; returns the surviving
/// trajectories (order preserved).
pub fn filter(trajectories: Vec<Trajectory>, config: &FilterConfig) -> Vec<Trajectory> {
    trajectories
        .into_iter()
        .filter(|t| {
            if t.len() < config.min_len {
                return false;
            }
            if let Some(maxl) = config.max_len {
                if t.len() > maxl {
                    return false;
                }
            }
            if let Some(((lo_x, lo_y), (hi_x, hi_y))) = config.bbox {
                let Some(((mnx, mny), (mxx, mxy))) = t.bbox() else {
                    return false;
                };
                if mnx < lo_x || mny < lo_y || mxx > hi_x || mxy > hi_y {
                    return false;
                }
            }
            true
        })
        .collect()
}

/// Min–max normalizer fitted on a dataset; maps coordinates into `[0, 1]²`
/// so model inputs are scale-free regardless of the city extent.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct Normalizer {
    pub min: (f64, f64),
    pub max: (f64, f64),
}

impl Normalizer {
    /// Fit on all points of all trajectories.
    pub fn fit(trajectories: &[Trajectory]) -> Normalizer {
        let mut min = (f64::INFINITY, f64::INFINITY);
        let mut max = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for t in trajectories {
            for p in t.points() {
                min.0 = min.0.min(p.lon);
                min.1 = min.1.min(p.lat);
                max.0 = max.0.max(p.lon);
                max.1 = max.1.max(p.lat);
            }
        }
        assert!(min.0.is_finite(), "Normalizer::fit: no points");
        // Guard against degenerate spans.
        if max.0 - min.0 < 1e-12 {
            max.0 = min.0 + 1.0;
        }
        if max.1 - min.1 < 1e-12 {
            max.1 = min.1 + 1.0;
        }
        Normalizer { min, max }
    }

    pub fn transform_point(&self, p: Point) -> Point {
        Point::new(
            (p.lon - self.min.0) / (self.max.0 - self.min.0),
            (p.lat - self.min.1) / (self.max.1 - self.min.1),
        )
    }

    pub fn transform(&self, t: &Trajectory) -> Trajectory {
        t.points().iter().map(|&p| self.transform_point(p)).collect()
    }

    pub fn transform_all(&self, ts: &[Trajectory]) -> Vec<Trajectory> {
        ts.iter().map(|t| self.transform(t)).collect()
    }

    pub fn inverse_point(&self, p: Point) -> Point {
        Point::new(
            p.lon * (self.max.0 - self.min.0) + self.min.0,
            p.lat * (self.max.1 - self.min.1) + self.min.1,
        )
    }
}

/// Deterministic train/test split: the first `ratio` fraction trains (the
/// paper uses tr = 0.2). Shuffle beforehand if order matters.
pub fn train_test_split(trajectories: &[Trajectory], ratio: f64) -> (Vec<Trajectory>, Vec<Trajectory>) {
    assert!((0.0..=1.0).contains(&ratio), "split ratio must be in [0, 1]");
    let n_train = (trajectories.len() as f64 * ratio).round() as usize;
    let train = trajectories[..n_train].to_vec();
    let test = trajectories[n_train..].to_vec();
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(len: usize, offset: f64) -> Trajectory {
        (0..len).map(|i| Point::new(offset + i as f64, offset)).collect()
    }

    #[test]
    fn min_len_filter_matches_paper() {
        let ts = vec![make(5, 0.0), make(10, 0.0), make(20, 0.0)];
        let kept = filter(ts, &FilterConfig::default());
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().all(|t| t.len() >= 10));
    }

    #[test]
    fn bbox_filter_drops_outside() {
        let ts = vec![make(12, 0.0), make(12, 100.0)];
        let cfg = FilterConfig { bbox: Some(((-1.0, -1.0), (50.0, 50.0))), ..Default::default() };
        let kept = filter(ts, &cfg);
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn max_len_filter() {
        let ts = vec![make(12, 0.0), make(200, 0.0)];
        let cfg = FilterConfig { max_len: Some(100), ..Default::default() };
        assert_eq!(filter(ts, &cfg).len(), 1);
    }

    #[test]
    fn normalizer_maps_to_unit_square() {
        let ts = vec![make(12, 0.0), make(12, 5.0)];
        let norm = Normalizer::fit(&ts);
        for t in norm.transform_all(&ts) {
            for p in t.points() {
                assert!((0.0..=1.0).contains(&p.lon) && (0.0..=1.0).contains(&p.lat));
            }
        }
    }

    #[test]
    fn normalizer_inverse_roundtrips() {
        let ts = vec![make(12, 3.0)];
        let norm = Normalizer::fit(&ts);
        let p = Point::new(7.5, 3.0);
        let back = norm.inverse_point(norm.transform_point(p));
        assert!((back.lon - p.lon).abs() < 1e-9 && (back.lat - p.lat).abs() < 1e-9);
    }

    #[test]
    fn split_ratio() {
        let ts: Vec<Trajectory> = (0..10).map(|i| make(12, i as f64)).collect();
        let (train, test) = train_test_split(&ts, 0.2);
        assert_eq!(train.len(), 2);
        assert_eq!(test.len(), 8);
        assert_eq!(train[0], ts[0]);
    }

    #[test]
    #[should_panic(expected = "no points")]
    fn normalizer_empty_panics() {
        let _ = Normalizer::fit(&[]);
    }
}
