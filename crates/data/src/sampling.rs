//! Training-pair sampling strategies (Section IV-C).
//!
//! - [`RankSampler`] — TMN's method: draw `2k` random candidates per anchor,
//!   sort them by true distance, the closest `k` become near samples and the
//!   farthest `k` far samples. Rank weights follow Eq. 14:
//!   `[2n/(n²+n), 2(n−1)/(n²+n), .., 2/(n²+n)]` (they sum to 1).
//! - [`KdSampler`] — Traj2SimVec's method: simplify trajectories, store them
//!   in a k-d tree, and always take the anchor's `k` nearest tree neighbours
//!   as near samples (the TMN-kd ablation of Table IV).

use rand::seq::SliceRandom;
use tmn_index::KdTree;
use tmn_traj::{GroundTruth, Trajectory};

/// Near/far training samples for one anchor, with per-sample loss weights.
#[derive(Debug, Clone)]
pub struct AnchorSamples {
    pub anchor: usize,
    /// `(train_index, weight)`, most similar first.
    pub near: Vec<(usize, f32)>,
    /// `(train_index, weight)`, most similar first.
    pub far: Vec<(usize, f32)>,
}

impl AnchorSamples {
    /// All `(anchor, sample, weight)` pairs, near then far.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        self.near
            .iter()
            .chain(self.far.iter())
            .map(move |&(s, w)| (self.anchor, s, w))
    }
}

/// Eq. 14's rank weights for a list of `n` samples sorted by similarity
/// (descending): `w_i = 2(n−i)/(n²+n)`; the nearest gets the largest weight.
pub fn rank_weights(n: usize) -> Vec<f32> {
    let denom = (n * n + n) as f32;
    (0..n).map(|i| 2.0 * (n - i) as f32 / denom).collect()
}

/// A strategy producing near/far samples for an anchor in the training set.
pub trait Sampler {
    /// `k` near + `k` far samples for `anchor`; `truth` is the ground-truth
    /// distance matrix over the training set — dense in-RAM or the
    /// out-of-core blocked store, indistinguishable behind [`GroundTruth`].
    fn sample(&self, anchor: usize, k: usize, truth: &dyn GroundTruth, rng: &mut dyn rand::RngCore)
        -> AnchorSamples;

    fn name(&self) -> &'static str;
}

/// TMN's random-rank sampling (Section IV-C).
#[derive(Debug, Default, Clone, Copy)]
pub struct RankSampler;

impl Sampler for RankSampler {
    fn sample(
        &self,
        anchor: usize,
        k: usize,
        truth: &dyn GroundTruth,
        rng: &mut dyn rand::RngCore,
    ) -> AnchorSamples {
        let n = truth.len();
        assert!(anchor < n, "anchor out of range");
        let mut candidates: Vec<usize> = (0..n).filter(|&i| i != anchor).collect();
        candidates.shuffle(rng);
        let take = (2 * k).min(candidates.len());
        let mut chosen = candidates[..take].to_vec();
        let mut row = Vec::with_capacity(n);
        truth.row_into(anchor, &mut row);
        chosen.sort_by(|&a, &b| row[a].partial_cmp(&row[b]).unwrap().then(a.cmp(&b)));
        let half = chosen.len() / 2;
        let near_idx = &chosen[..half.min(k)];
        let far_idx = &chosen[chosen.len() - half.min(k)..];
        let wn = rank_weights(near_idx.len());
        let wf = rank_weights(far_idx.len());
        AnchorSamples {
            anchor,
            near: near_idx.iter().copied().zip(wn).collect(),
            far: far_idx.iter().copied().zip(wf).collect(),
        }
    }

    fn name(&self) -> &'static str {
        "rank"
    }
}

/// Traj2SimVec's k-d-tree sampling: near samples are always the anchor's
/// `k` nearest neighbours of the *simplified* trajectories, independent of
/// the distance metric.
pub struct KdSampler {
    tree: KdTree,
    vectors: Vec<Vec<f32>>,
}

impl KdSampler {
    /// Build over the training trajectories, each simplified to
    /// `simplify_to` points (Traj2SimVec compresses evenly before indexing).
    pub fn build(train: &[Trajectory], simplify_to: usize) -> KdSampler {
        let vectors: Vec<Vec<f32>> =
            train.iter().map(|t| t.simplify(simplify_to).to_features()).collect();
        KdSampler { tree: KdTree::build(vectors.clone()), vectors }
    }
}

impl Sampler for KdSampler {
    fn sample(
        &self,
        anchor: usize,
        k: usize,
        truth: &dyn GroundTruth,
        rng: &mut dyn rand::RngCore,
    ) -> AnchorSamples {
        let n = truth.len();
        assert_eq!(n, self.vectors.len(), "KdSampler built over a different training set");
        // k+1 because the anchor is its own nearest neighbour in the tree.
        let near_idx: Vec<usize> = self
            .tree
            .knn(&self.vectors[anchor], k + 1)
            .into_iter()
            .map(|(i, _)| i)
            .filter(|&i| i != anchor)
            .take(k)
            .collect();
        // Far samples: uniform random among the rest (Traj2SimVec pairs the
        // kd-near samples with random negatives).
        let mut rest: Vec<usize> =
            (0..n).filter(|&i| i != anchor && !near_idx.contains(&i)).collect();
        rest.shuffle(rng);
        let mut far_idx: Vec<usize> = rest.into_iter().take(k).collect();
        let mut row = Vec::with_capacity(n);
        truth.row_into(anchor, &mut row);
        let mut near_sorted = near_idx;
        near_sorted.sort_by(|&a, &b| row[a].partial_cmp(&row[b]).unwrap().then(a.cmp(&b)));
        far_idx.sort_by(|&a, &b| row[a].partial_cmp(&row[b]).unwrap().then(a.cmp(&b)));
        let wn = rank_weights(near_sorted.len());
        let wf = rank_weights(far_idx.len());
        AnchorSamples {
            anchor,
            near: near_sorted.into_iter().zip(wn).collect(),
            far: far_idx.into_iter().zip(wf).collect(),
        }
    }

    fn name(&self) -> &'static str {
        "kdtree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tmn_traj::metrics::{Metric, MetricParams};
    use tmn_traj::{DistanceMatrix, Point};

    fn line(offset: f64) -> Trajectory {
        (0..12).map(|i| Point::new(i as f64 * 0.1, offset)).collect()
    }

    fn setup(n: usize) -> (Vec<Trajectory>, DistanceMatrix) {
        let trajs: Vec<Trajectory> = (0..n).map(|i| line(i as f64 * 0.05)).collect();
        let dmat = DistanceMatrix::compute(&trajs, Metric::Dtw, &MetricParams::default(), 1);
        (trajs, dmat)
    }

    #[test]
    fn rank_weights_sum_to_one_and_decrease() {
        for n in [1usize, 5, 20] {
            let w = rank_weights(n);
            let s: f32 = w.iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "n={n}: sum {s}");
            for pair in w.windows(2) {
                assert!(pair[0] > pair[1]);
            }
        }
        assert!(rank_weights(0).is_empty());
    }

    #[test]
    fn rank_sampler_near_always_closer_than_far() {
        let (_, dmat) = setup(40);
        let mut rng = StdRng::seed_from_u64(5);
        let s = RankSampler.sample(3, 5, &dmat, &mut rng);
        assert_eq!(s.near.len(), 5);
        assert_eq!(s.far.len(), 5);
        let row = dmat.row(3);
        let max_near = s.near.iter().map(|&(i, _)| row[i]).fold(0.0, f64::max);
        let min_far = s.far.iter().map(|&(i, _)| row[i]).fold(f64::INFINITY, f64::min);
        assert!(max_near <= min_far, "invariant of Section IV-C violated");
        // Anchor never samples itself.
        assert!(s.pairs().all(|(_, j, _)| j != 3));
    }

    #[test]
    fn rank_sampler_handles_tiny_training_set() {
        let (_, dmat) = setup(4);
        let mut rng = StdRng::seed_from_u64(6);
        let s = RankSampler.sample(0, 5, &dmat, &mut rng);
        // Only 3 candidates exist; the sampler degrades gracefully.
        assert!(s.near.len() + s.far.len() <= 3 + 1);
        assert!(!s.near.is_empty());
    }

    #[test]
    fn kd_sampler_near_is_spatially_nearest() {
        let (trajs, dmat) = setup(30);
        let sampler = KdSampler::build(&trajs, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let s = sampler.sample(10, 5, &dmat, &mut rng);
        assert_eq!(s.near.len(), 5);
        // Trajectories are parallel lines offset by index, so kd-nearest of
        // anchor 10 must be {8, 9, 11, 12} plus one of the tied {7, 13}.
        for &(i, _) in &s.near {
            assert!((7..=13).contains(&i) && i != 10, "unexpected near sample {i}");
        }
        // Far samples don't overlap near samples.
        for &(f, _) in &s.far {
            assert!(!s.near.iter().any(|&(n, _)| n == f));
        }
    }

    #[test]
    fn samples_are_deterministic_given_seed() {
        let (_, dmat) = setup(20);
        let a = RankSampler.sample(2, 4, &dmat, &mut StdRng::seed_from_u64(9));
        let b = RankSampler.sample(2, 4, &dmat, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.near.iter().map(|x| x.0).collect::<Vec<_>>(),
                   b.near.iter().map(|x| x.0).collect::<Vec<_>>());
    }
}
