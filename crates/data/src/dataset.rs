//! End-to-end dataset assembly: generate → filter → normalize → split.

use crate::generators::{DatasetKind, GenConfig};
use crate::preprocess::{filter, train_test_split, FilterConfig, Normalizer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tmn_traj::metrics::{Metric, MetricParams};
use tmn_traj::{DistanceMatrix, Trajectory};

/// Everything needed to build a dataset reproducibly from one seed.
#[derive(Debug, Clone, Copy)]
pub struct DatasetConfig {
    pub kind: DatasetKind,
    pub gen: GenConfig,
    pub filter: FilterConfig,
    /// Fraction used for training (the paper's tr = 0.2).
    pub train_ratio: f64,
    pub seed: u64,
}

impl DatasetConfig {
    pub fn new(kind: DatasetKind, count: usize, seed: u64) -> DatasetConfig {
        DatasetConfig {
            kind,
            gen: GenConfig { count, ..Default::default() },
            filter: FilterConfig::default(),
            train_ratio: 0.2,
            seed,
        }
    }
}

/// A prepared dataset: normalized trajectories split into train and test.
pub struct Dataset {
    pub name: &'static str,
    pub train: Vec<Trajectory>,
    pub test: Vec<Trajectory>,
    pub normalizer: Normalizer,
}

impl Dataset {
    /// Build from a config. The generator over-produces slightly so the
    /// post-filter count tracks `gen.count` closely.
    pub fn generate(config: &DatasetConfig) -> Dataset {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut gen_cfg = config.gen;
        // Headroom for records the filters will drop.
        gen_cfg.count = (config.gen.count as f64 * 1.2) as usize + 4;
        let raw = config.kind.generate(&gen_cfg, &mut rng);
        let mut kept = filter(raw, &config.filter);
        kept.truncate(config.gen.count);
        let normalizer = Normalizer::fit(&kept);
        let normalized = normalizer.transform_all(&kept);
        let (train, test) = train_test_split(&normalized, config.train_ratio);
        Dataset { name: config.kind.name(), train, test, normalizer }
    }

    pub fn total_len(&self) -> usize {
        self.train.len() + self.test.len()
    }

    /// Ground-truth distance matrix over the training set.
    pub fn train_distance_matrix(&self, metric: Metric, params: &MetricParams, threads: usize) -> DistanceMatrix {
        DistanceMatrix::compute(&self.train, metric, params, threads)
    }

    /// Ground-truth distance matrix over the test set (evaluation target).
    pub fn test_distance_matrix(&self, metric: Metric, params: &MetricParams, threads: usize) -> DistanceMatrix {
        DistanceMatrix::compute(&self.test, metric, params, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_splits_by_ratio() {
        let cfg = DatasetConfig::new(DatasetKind::GeolifeLike, 100, 42);
        let ds = Dataset::generate(&cfg);
        assert_eq!(ds.total_len(), 100);
        assert_eq!(ds.train.len(), 20);
        assert_eq!(ds.test.len(), 80);
        assert_eq!(ds.name, "Geolife");
    }

    #[test]
    fn trajectories_are_normalized() {
        let cfg = DatasetConfig::new(DatasetKind::PortoLike, 50, 1);
        let ds = Dataset::generate(&cfg);
        for t in ds.train.iter().chain(&ds.test) {
            for p in t.points() {
                assert!((0.0..=1.0).contains(&p.lon) && (0.0..=1.0).contains(&p.lat));
            }
        }
    }

    #[test]
    fn same_seed_same_dataset() {
        let cfg = DatasetConfig::new(DatasetKind::PortoLike, 30, 9);
        let a = Dataset::generate(&cfg);
        let b = Dataset::generate(&cfg);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn distance_matrices_match_split_sizes() {
        let cfg = DatasetConfig::new(DatasetKind::GeolifeLike, 30, 3);
        let ds = Dataset::generate(&cfg);
        let p = MetricParams::default();
        assert_eq!(ds.train_distance_matrix(Metric::Dtw, &p, 2).len(), ds.train.len());
        assert_eq!(ds.test_distance_matrix(Metric::Hausdorff, &p, 2).len(), ds.test.len());
    }
}
