//! Dataset I/O: load and save trajectories in two interchange formats so
//! real Geolife/Porto exports can replace the synthetic generators.
//!
//! - **CSV** — one point per line, `traj_id,lon,lat`, points in sequence
//!   order per id (the common export shape of the Porto Kaggle dump and
//!   Geolife PLT conversions).
//! - **JSON Lines** — one trajectory per line as a JSON array of
//!   `[lon, lat]` pairs.

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;
use tmn_traj::{Point, Trajectory};

/// Errors from reading trajectory files.
#[derive(Debug)]
pub enum IoError {
    Io(std::io::Error),
    Parse { line: usize, what: String },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, what } => write!(f, "parse error on line {line}: {what}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Read `traj_id,lon,lat` CSV from any reader. Lines starting with `#` and a
/// header line starting with a non-numeric id are skipped. Consecutive rows
/// sharing an id form one trajectory; ids need not be sorted globally, but a
/// trajectory's rows must be contiguous.
pub fn read_csv(reader: impl BufRead) -> Result<Vec<Trajectory>, IoError> {
    let mut out: Vec<Trajectory> = Vec::new();
    let mut current_id: Option<String> = None;
    let mut current: Vec<Point> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split(',');
        let (id, lon_s, lat_s) = (
            parts.next().unwrap_or_default().trim(),
            parts.next().unwrap_or_default().trim(),
            parts.next().unwrap_or_default().trim(),
        );
        let (lon, lat) = match (lon_s.parse::<f64>(), lat_s.parse::<f64>()) {
            (Ok(lon), Ok(lat)) => (lon, lat),
            _ if lineno == 0 => continue, // header row
            _ => {
                return Err(IoError::Parse {
                    line: lineno + 1,
                    what: format!("expected traj_id,lon,lat got {trimmed:?}"),
                })
            }
        };
        if current_id.as_deref() != Some(id) {
            if !current.is_empty() {
                out.push(Trajectory::new(std::mem::take(&mut current)));
            }
            current_id = Some(id.to_string());
        }
        current.push(Point::new(lon, lat));
    }
    if !current.is_empty() {
        out.push(Trajectory::new(current));
    }
    Ok(out)
}

/// Write trajectories as `traj_id,lon,lat` CSV.
pub fn write_csv(writer: impl Write, trajs: &[Trajectory]) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "traj_id,lon,lat")?;
    for (id, t) in trajs.iter().enumerate() {
        for p in t.points() {
            writeln!(w, "{id},{},{}", p.lon, p.lat)?;
        }
    }
    w.flush()
}

/// Read JSON Lines: each line a JSON array of `[lon, lat]` pairs.
pub fn read_jsonl(reader: impl BufRead) -> Result<Vec<Trajectory>, IoError> {
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let coords: Vec<(f64, f64)> =
            serde_json::from_str::<Vec<[f64; 2]>>(&line)
                .map_err(|e| IoError::Parse { line: lineno + 1, what: e.to_string() })?
                .into_iter()
                .map(|[lon, lat]| (lon, lat))
                .collect();
        out.push(Trajectory::from_coords(&coords));
    }
    Ok(out)
}

/// Write JSON Lines (one trajectory per line).
pub fn write_jsonl(writer: impl Write, trajs: &[Trajectory]) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    for t in trajs {
        let coords: Vec<[f64; 2]> = t.points().iter().map(|p| [p.lon, p.lat]).collect();
        writeln!(w, "{}", serde_json::to_string(&coords).expect("points serialize"))?;
    }
    w.flush()
}

/// Load trajectories from a path, dispatching on extension
/// (`.csv` / `.jsonl` / `.ndjson`).
pub fn load_path(path: impl AsRef<Path>) -> Result<Vec<Trajectory>, IoError> {
    let path = path.as_ref();
    let file = std::io::BufReader::new(std::fs::File::open(path)?);
    match path.extension().and_then(|e| e.to_str()) {
        Some("csv") => read_csv(file),
        Some("jsonl") | Some("ndjson") => read_jsonl(file),
        other => Err(IoError::Parse {
            line: 0,
            what: format!("unsupported extension {other:?} (use .csv or .jsonl)"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> Vec<Trajectory> {
        vec![
            Trajectory::from_coords(&[(1.0, 2.0), (3.0, 4.0)]),
            Trajectory::from_coords(&[(5.0, 6.0), (7.0, 8.0), (9.0, 10.0)]),
        ]
    }

    #[test]
    fn csv_roundtrip() {
        let trajs = sample();
        let mut buf = Vec::new();
        write_csv(&mut buf, &trajs).unwrap();
        let back = read_csv(Cursor::new(buf)).unwrap();
        assert_eq!(back, trajs);
    }

    #[test]
    fn jsonl_roundtrip() {
        let trajs = sample();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &trajs).unwrap();
        let back = read_jsonl(Cursor::new(buf)).unwrap();
        assert_eq!(back, trajs);
    }

    #[test]
    fn csv_skips_header_and_comments() {
        let data = "traj_id,lon,lat\n# comment\n0,1.5,2.5\n0,3.5,4.5\n1,0.0,0.0\n";
        let trajs = read_csv(Cursor::new(data)).unwrap();
        assert_eq!(trajs.len(), 2);
        assert_eq!(trajs[0].len(), 2);
        assert_eq!(trajs[1].len(), 1);
    }

    #[test]
    fn csv_bad_row_reports_line() {
        let data = "0,1.0,2.0\n0,not,a-number\n";
        match read_csv(Cursor::new(data)) {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn jsonl_bad_line_reports_line() {
        let data = "[[1.0,2.0]]\nnot json\n";
        match read_jsonl(Cursor::new(data)) {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn load_path_rejects_unknown_extension() {
        let err = load_path("/tmp/definitely-missing.xyz");
        assert!(err.is_err());
    }
}
