//! Dataset statistics: quantify the properties the synthetic generators
//! must preserve from the real datasets (length distribution, spatial
//! extent, step-length/speed profile, heading changes). DESIGN.md's
//! substitution argument is checked with these numbers.

use serde::Serialize;
use tmn_traj::Trajectory;

/// Summary statistics of a trajectory dataset.
#[derive(Debug, Clone, Serialize)]
pub struct DatasetStats {
    pub count: usize,
    pub len_min: usize,
    pub len_max: usize,
    pub len_mean: f64,
    pub len_p50: usize,
    /// Mean step length (distance between consecutive points), a proxy for
    /// speed at a fixed sampling interval.
    pub step_mean: f64,
    pub step_p90: f64,
    /// Mean absolute turning angle in radians (0 = perfectly straight);
    /// distinguishes road-constrained from free movement.
    pub turn_mean: f64,
    /// Dataset bounding box.
    pub bbox: ((f64, f64), (f64, f64)),
}

fn percentile<T: Copy + PartialOrd>(sorted: &[T], p: f64) -> T {
    debug_assert!(!sorted.is_empty());
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Compute summary statistics; panics on an empty dataset.
pub fn dataset_stats(trajs: &[Trajectory]) -> DatasetStats {
    assert!(!trajs.is_empty(), "dataset_stats: empty dataset");
    let mut lens: Vec<usize> = trajs.iter().map(|t| t.len()).collect();
    lens.sort_unstable();
    let len_mean = lens.iter().sum::<usize>() as f64 / lens.len() as f64;

    let mut steps: Vec<f64> = Vec::new();
    let mut turn_acc = 0.0f64;
    let mut turn_n = 0usize;
    let mut min = (f64::INFINITY, f64::INFINITY);
    let mut max = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for t in trajs {
        let pts = t.points();
        for p in pts {
            min.0 = min.0.min(p.lon);
            min.1 = min.1.min(p.lat);
            max.0 = max.0.max(p.lon);
            max.1 = max.1.max(p.lat);
        }
        for w in pts.windows(2) {
            steps.push(w[0].dist(&w[1]));
        }
        for w in pts.windows(3) {
            let v1 = (w[1].lon - w[0].lon, w[1].lat - w[0].lat);
            let v2 = (w[2].lon - w[1].lon, w[2].lat - w[1].lat);
            let n1 = (v1.0 * v1.0 + v1.1 * v1.1).sqrt();
            let n2 = (v2.0 * v2.0 + v2.1 * v2.1).sqrt();
            if n1 > 1e-12 && n2 > 1e-12 {
                let cos = ((v1.0 * v2.0 + v1.1 * v2.1) / (n1 * n2)).clamp(-1.0, 1.0);
                turn_acc += cos.acos();
                turn_n += 1;
            }
        }
    }
    steps.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let step_mean = if steps.is_empty() { 0.0 } else { steps.iter().sum::<f64>() / steps.len() as f64 };
    DatasetStats {
        count: trajs.len(),
        len_min: lens[0],
        len_max: *lens.last().unwrap(),
        len_mean,
        len_p50: percentile(&lens, 0.5),
        step_mean,
        step_p90: if steps.is_empty() { 0.0 } else { percentile(&steps, 0.9) },
        turn_mean: if turn_n == 0 { 0.0 } else { turn_acc / turn_n as f64 },
        bbox: (min, max),
    }
}

/// A fixed-bin histogram over trajectory lengths.
pub fn length_histogram(trajs: &[Trajectory], bins: usize, max_len: usize) -> Vec<usize> {
    assert!(bins > 0 && max_len > 0);
    let mut hist = vec![0usize; bins];
    for t in trajs {
        let b = (t.len() * bins / (max_len + 1)).min(bins - 1);
        hist[b] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{geolife_like, porto_like, GenConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tmn_traj::Point;

    fn line(n: usize) -> Trajectory {
        (0..n).map(|i| Point::new(i as f64, 0.0)).collect()
    }

    #[test]
    fn stats_of_simple_lines() {
        let s = dataset_stats(&[line(5), line(9)]);
        assert_eq!(s.count, 2);
        assert_eq!(s.len_min, 5);
        assert_eq!(s.len_max, 9);
        assert_eq!(s.len_mean, 7.0);
        assert_eq!(s.step_mean, 1.0);
        assert_eq!(s.turn_mean, 0.0); // straight lines
        assert_eq!(s.bbox, ((0.0, 0.0), (8.0, 0.0)));
    }

    #[test]
    fn histogram_counts_sum_to_dataset() {
        let ds = vec![line(5), line(9), line(20), line(20)];
        let h = length_histogram(&ds, 4, 20);
        assert_eq!(h.iter().sum::<usize>(), 4);
        assert_eq!(h[3], 2); // the two length-20 lines
    }

    #[test]
    fn generators_have_documented_contrast() {
        // The Porto-like generator produces road-constrained (grid) motion:
        // its 90-degree-turn style yields a *different* turning profile from
        // Geolife-like free movement, and the bboxes sit in different cities.
        let cfg = GenConfig { count: 40, min_len: 20, max_len: 40, noise_std: 0.0, outlier_prob: 0.0 };
        let geo = dataset_stats(&geolife_like(&cfg, &mut StdRng::seed_from_u64(1)));
        let porto = dataset_stats(&porto_like(&cfg, &mut StdRng::seed_from_u64(1)));
        assert!(geo.bbox.0 .0 > 100.0, "Geolife-like sits near Beijing lon ~116");
        assert!(porto.bbox.0 .0 < 0.0, "Porto-like sits near lon ~-8.6");
        assert!((geo.turn_mean - porto.turn_mean).abs() > 1e-3);
        // Length bounds respected.
        assert!(geo.len_min >= 20 && geo.len_max <= 40);
        assert!(porto.len_min >= 20 && porto.len_max <= 40);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_panics() {
        let _ = dataset_stats(&[]);
    }
}
