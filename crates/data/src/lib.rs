//! # tmn-data
//!
//! Datasets and training-pair sampling for the TMN reproduction.
//!
//! The paper evaluates on Geolife (Beijing, human movement) and Porto (taxi
//! trips). Neither dataset is redistributable here, so this crate provides
//! *synthetic stand-ins* that preserve the properties the experiments rely
//! on — spatial extent, trajectory length distribution, free-movement vs
//! road-constrained contrast, GPS noise — plus the paper's preprocessing
//! (centre-area and min-length filters, Section V-A1), min-max
//! normalization, train/test splitting, and both sampling strategies of the
//! Table IV ablation (TMN's rank sampler and Traj2SimVec's k-d-tree
//! sampler).
//!
//! ```
//! use tmn_data::{Dataset, DatasetConfig, DatasetKind};
//!
//! let ds = Dataset::generate(&DatasetConfig::new(DatasetKind::PortoLike, 50, 7));
//! assert_eq!(ds.train.len(), 10); // tr = 0.2
//! assert_eq!(ds.test.len(), 40);
//! ```

mod dataset;
pub mod generators;
pub mod io;
mod preprocess;
mod road;
pub mod sampling;
pub mod stats;

pub use dataset::{Dataset, DatasetConfig};
pub use generators::{geolife_like, porto_like, DatasetKind, GenConfig, Mode};
pub use preprocess::{filter, train_test_split, FilterConfig, Normalizer};
pub use road::RoadGrid;
pub use sampling::{rank_weights, AnchorSamples, KdSampler, RankSampler, Sampler};
pub use stats::{dataset_stats, length_histogram, DatasetStats};
