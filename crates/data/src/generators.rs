//! Synthetic dataset generators standing in for Geolife and Porto.
//!
//! The real datasets are not redistributable here; these generators
//! reproduce the statistical properties the experiments depend on (see
//! DESIGN.md, Substitutions):
//!
//! - **Geolife-like**: free-space human movement around a Beijing-sized
//!   bounding box, heterogeneous transport modes (walk / bike / drive) with
//!   mode-specific speeds and noise, waypoint-directed paths.
//! - **Porto-like**: taxi trips constrained to a synthetic road grid,
//!   shortest-path routes between zone centres, uniform sampling along the
//!   route, mild GPS noise.

use crate::road::RoadGrid;
use rand::Rng;
use tmn_traj::{Point, Trajectory};

/// Beijing-ish bounding box used by the Geolife-like generator
/// (lon, lat of the south-west and north-east corners).
pub const GEOLIFE_BBOX: ((f64, f64), (f64, f64)) = ((116.20, 39.80), (116.55, 40.05));

/// Porto-ish bounding box used by the Porto-like generator.
pub const PORTO_BBOX: ((f64, f64), (f64, f64)) = ((-8.70, 41.10), (-8.55, 41.20));

/// Configuration shared by both generators.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Number of trajectories.
    pub count: usize,
    /// Minimum / maximum number of points per trajectory.
    pub min_len: usize,
    pub max_len: usize,
    /// GPS noise standard deviation, in coordinate degrees.
    pub noise_std: f64,
    /// Probability that a point is a gross outlier (GPS glitch).
    pub outlier_prob: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { count: 1000, min_len: 16, max_len: 96, noise_std: 4e-4, outlier_prob: 0.002 }
    }
}

fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn add_noise(p: Point, std: f64, outlier_prob: f64, rng: &mut impl Rng) -> Point {
    let scale = if rng.gen_bool(outlier_prob) { 20.0 * std } else { std };
    Point::new(p.lon + gaussian(rng) * scale, p.lat + gaussian(rng) * scale)
}

/// Transport modes of the Geolife-like generator, with (speed in degrees per
/// sample, heading persistence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    Walk,
    Bike,
    Drive,
}

impl Mode {
    fn speed(&self) -> f64 {
        match self {
            Mode::Walk => 4e-4,
            Mode::Bike => 1.2e-3,
            Mode::Drive => 3.5e-3,
        }
    }

    fn pick(rng: &mut impl Rng) -> Mode {
        match rng.gen_range(0..3) {
            0 => Mode::Walk,
            1 => Mode::Bike,
            _ => Mode::Drive,
        }
    }
}

/// Generate a Geolife-like dataset: free human movement, mixed modes.
pub fn geolife_like(config: &GenConfig, rng: &mut impl Rng) -> Vec<Trajectory> {
    let ((min_lon, min_lat), (max_lon, max_lat)) = GEOLIFE_BBOX;
    let centre = Point::new((min_lon + max_lon) / 2.0, (min_lat + max_lat) / 2.0);
    let spread = ((max_lon - min_lon) / 6.0, (max_lat - min_lat) / 6.0);
    (0..config.count)
        .map(|_| {
            let mode = Mode::pick(rng);
            let len = rng.gen_range(config.min_len..=config.max_len);
            // Start near the city centre (Geolife is filtered to the centre
            // area in the paper's preprocessing).
            let mut pos = Point::new(
                (centre.lon + gaussian(rng) * spread.0).clamp(min_lon, max_lon),
                (centre.lat + gaussian(rng) * spread.1).clamp(min_lat, max_lat),
            );
            // Waypoint-directed walk: pick a target, head toward it with
            // jitter, re-target when close or occasionally at random.
            let mut target = Point::new(
                centre.lon + gaussian(rng) * spread.0 * 2.0,
                centre.lat + gaussian(rng) * spread.1 * 2.0,
            );
            let speed = mode.speed() * rng.gen_range(0.7f64..1.3);
            let mut points = Vec::with_capacity(len);
            for _ in 0..len {
                points.push(add_noise(pos, config.noise_std, config.outlier_prob, rng));
                let d = pos.dist(&target);
                if d < speed * 2.0 || rng.gen_bool(0.02) {
                    target = Point::new(
                        centre.lon + gaussian(rng) * spread.0 * 2.0,
                        centre.lat + gaussian(rng) * spread.1 * 2.0,
                    );
                }
                let d = pos.dist(&target).max(1e-12);
                let step = speed.min(d);
                pos = Point::new(
                    (pos.lon + (target.lon - pos.lon) / d * step).clamp(min_lon, max_lon),
                    (pos.lat + (target.lat - pos.lat) / d * step).clamp(min_lat, max_lat),
                );
            }
            Trajectory::new(points)
        })
        .collect()
}

/// Generate a Porto-like dataset: taxi trips on a road grid between hot
/// zones, sampled uniformly along the route.
pub fn porto_like(config: &GenConfig, rng: &mut impl Rng) -> Vec<Trajectory> {
    let (min, max) = PORTO_BBOX;
    let grid = RoadGrid::new(40, 30, min, max, 0.4, rng);
    // Taxi demand hot zones (stations, centre, port...).
    let zones: Vec<Point> = (0..6)
        .map(|_| {
            Point::new(rng.gen_range(min.0..max.0), rng.gen_range(min.1..max.1))
        })
        .collect();
    (0..config.count)
        .map(|_| {
            // Pick origin/destination near two random zones.
            let (za, zb) = (&zones[rng.gen_range(0..zones.len())], &zones[rng.gen_range(0..zones.len())]);
            let jit = (max.0 - min.0) / 20.0;
            let from = grid.nearest_node(Point::new(
                za.lon + gaussian(rng) * jit,
                za.lat + gaussian(rng) * jit,
            ));
            let to = grid.nearest_node(Point::new(
                zb.lon + gaussian(rng) * jit,
                zb.lat + gaussian(rng) * jit,
            ));
            let path = grid.shortest_path(from, to).expect("grid is connected");
            // Sample `len` points uniformly along the node path (taxis log at
            // a fixed 15s interval; route length / len plays that role).
            let len = rng.gen_range(config.min_len..=config.max_len);
            let pts: Vec<Point> = path.iter().map(|&n| grid.node_point(n)).collect();
            let mut points = Vec::with_capacity(len);
            if pts.len() == 1 {
                for _ in 0..len {
                    points.push(add_noise(pts[0], config.noise_std, config.outlier_prob, rng));
                }
            } else {
                // Arc-length parameterization.
                let seg: Vec<f64> = pts.windows(2).map(|w| w[0].dist(&w[1])).collect();
                let total: f64 = seg.iter().sum();
                for i in 0..len {
                    let t = total * i as f64 / (len - 1).max(1) as f64;
                    let mut acc = 0.0;
                    let mut p = *pts.last().unwrap();
                    for (k, s) in seg.iter().enumerate() {
                        if acc + s >= t || k == seg.len() - 1 {
                            let local = if *s > 0.0 { ((t - acc) / s).clamp(0.0, 1.0) } else { 0.0 };
                            p = Point::new(
                                pts[k].lon + (pts[k + 1].lon - pts[k].lon) * local,
                                pts[k].lat + (pts[k + 1].lat - pts[k].lat) * local,
                            );
                            break;
                        }
                        acc += s;
                    }
                    points.push(add_noise(p, config.noise_std, config.outlier_prob, rng));
                }
            }
            Trajectory::new(points)
        })
        .collect()
}

/// Which synthetic dataset to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DatasetKind {
    GeolifeLike,
    PortoLike,
}

impl DatasetKind {
    pub fn generate(&self, config: &GenConfig, rng: &mut impl Rng) -> Vec<Trajectory> {
        match self {
            DatasetKind::GeolifeLike => geolife_like(config, rng),
            DatasetKind::PortoLike => porto_like(config, rng),
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::GeolifeLike => "Geolife",
            DatasetKind::PortoLike => "Porto",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> GenConfig {
        GenConfig { count: 50, min_len: 10, max_len: 40, noise_std: 1e-4, outlier_prob: 0.0 }
    }

    #[test]
    fn geolife_counts_and_lengths() {
        let mut rng = StdRng::seed_from_u64(1);
        let trajs = geolife_like(&cfg(), &mut rng);
        assert_eq!(trajs.len(), 50);
        for t in &trajs {
            assert!((10..=40).contains(&t.len()));
        }
    }

    #[test]
    fn geolife_within_padded_bbox() {
        let mut rng = StdRng::seed_from_u64(2);
        let trajs = geolife_like(&cfg(), &mut rng);
        let ((lo_x, lo_y), (hi_x, hi_y)) = GEOLIFE_BBOX;
        // Noise can push slightly out of the clamped bbox; allow 10x std.
        let pad = 1e-2;
        for t in &trajs {
            let ((mnx, mny), (mxx, mxy)) = t.bbox().unwrap();
            assert!(mnx >= lo_x - pad && mny >= lo_y - pad);
            assert!(mxx <= hi_x + pad && mxy <= hi_y + pad);
        }
    }

    #[test]
    fn porto_counts_and_bbox() {
        let mut rng = StdRng::seed_from_u64(3);
        let trajs = porto_like(&cfg(), &mut rng);
        assert_eq!(trajs.len(), 50);
        let ((lo_x, lo_y), (hi_x, hi_y)) = PORTO_BBOX;
        let pad = 1e-2;
        for t in &trajs {
            assert!((10..=40).contains(&t.len()));
            let ((mnx, mny), (mxx, mxy)) = t.bbox().unwrap();
            assert!(mnx >= lo_x - pad && mny >= lo_y - pad);
            assert!(mxx <= hi_x + pad && mxy <= hi_y + pad);
        }
    }

    #[test]
    fn porto_points_lie_on_road_grid() {
        // Road-constrained invariant: with noise disabled, every sampled
        // point sits on a grid edge, so its lon matches a grid column or its
        // lat matches a grid row (movement along grid edges is axis-aligned).
        let mut rng = StdRng::seed_from_u64(4);
        let clean = GenConfig { count: 20, min_len: 20, max_len: 40, noise_std: 0.0, outlier_prob: 0.0 };
        let trajs = porto_like(&clean, &mut rng);
        let (min, max) = PORTO_BBOX;
        let (cols, rows) = (40usize, 30usize);
        let step_x = (max.0 - min.0) / (cols - 1) as f64;
        let step_y = (max.1 - min.1) / (rows - 1) as f64;
        let on_lattice = |v: f64, lo: f64, step: f64| {
            let k = ((v - lo) / step).round();
            (v - (lo + k * step)).abs() < 1e-9
        };
        for t in &trajs {
            for p in t.points() {
                assert!(
                    on_lattice(p.lon, min.0, step_x) || on_lattice(p.lat, min.1, step_y),
                    "point ({}, {}) is off the road grid",
                    p.lon,
                    p.lat
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = geolife_like(&cfg(), &mut StdRng::seed_from_u64(7));
        let b = geolife_like(&cfg(), &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = geolife_like(&cfg(), &mut StdRng::seed_from_u64(8));
        assert_ne!(a, c);
    }
}
