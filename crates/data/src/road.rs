//! A synthetic Manhattan-style road grid with A* shortest-path routing.
//!
//! Substrate for the Porto-like generator: taxi trajectories are
//! road-constrained, so routes are shortest paths on a perturbed grid
//! network rather than free-space curves.

use rand::Rng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use tmn_traj::Point;

/// A rectangular grid road network over a bounding box.
pub struct RoadGrid {
    cols: usize,
    rows: usize,
    min: (f64, f64),
    step: (f64, f64),
    /// Multiplicative weight per node (models congestion); edge cost is the
    /// mean of its endpoints' weights times geometric length.
    weights: Vec<f64>,
}

#[derive(PartialEq)]
struct QueueItem {
    cost: f64,
    node: usize,
}

impl Eq for QueueItem {}

impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> Ordering {
        other.cost.partial_cmp(&self.cost).unwrap_or(Ordering::Equal)
    }
}

impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl RoadGrid {
    /// Build a `cols x rows` grid spanning `[min, max]`, with per-node
    /// congestion weights in `[1, 1 + jitter]`.
    pub fn new(
        cols: usize,
        rows: usize,
        min: (f64, f64),
        max: (f64, f64),
        jitter: f64,
        rng: &mut impl Rng,
    ) -> RoadGrid {
        assert!(cols >= 2 && rows >= 2, "RoadGrid: need at least a 2x2 grid");
        assert!(max.0 > min.0 && max.1 > min.1, "RoadGrid: degenerate bbox");
        let step = ((max.0 - min.0) / (cols - 1) as f64, (max.1 - min.1) / (rows - 1) as f64);
        let weights = (0..cols * rows).map(|_| 1.0 + rng.gen_range(0.0..jitter.max(1e-9))).collect();
        RoadGrid { cols, rows, min, step, weights }
    }

    pub fn num_nodes(&self) -> usize {
        self.cols * self.rows
    }

    /// Coordinates of a node.
    pub fn node_point(&self, node: usize) -> Point {
        let (c, r) = (node % self.cols, node / self.cols);
        Point::new(self.min.0 + c as f64 * self.step.0, self.min.1 + r as f64 * self.step.1)
    }

    /// The grid node nearest to `p` (clamped into the bbox).
    pub fn nearest_node(&self, p: Point) -> usize {
        let c = ((p.lon - self.min.0) / self.step.0).round().clamp(0.0, (self.cols - 1) as f64);
        let r = ((p.lat - self.min.1) / self.step.1).round().clamp(0.0, (self.rows - 1) as f64);
        r as usize * self.cols + c as usize
    }

    fn neighbours(&self, node: usize) -> impl Iterator<Item = usize> + '_ {
        let (c, r) = (node % self.cols, node / self.cols);
        let mut out = [usize::MAX; 4];
        let mut n = 0;
        if c > 0 {
            out[n] = node - 1;
            n += 1;
        }
        if c + 1 < self.cols {
            out[n] = node + 1;
            n += 1;
        }
        if r > 0 {
            out[n] = node - self.cols;
            n += 1;
        }
        if r + 1 < self.rows {
            out[n] = node + self.cols;
            n += 1;
        }
        out.into_iter().take(n)
    }

    fn edge_cost(&self, a: usize, b: usize) -> f64 {
        let geo = self.node_point(a).dist(&self.node_point(b));
        geo * 0.5 * (self.weights[a] + self.weights[b])
    }

    /// A* shortest path between two nodes; returns the node sequence
    /// (inclusive of both endpoints), or `None` if unreachable (cannot
    /// happen on a connected grid, but kept for API honesty).
    pub fn shortest_path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        assert!(from < self.num_nodes() && to < self.num_nodes(), "node out of range");
        let target = self.node_point(to);
        let h = |n: usize| self.node_point(n).dist(&target);
        let mut dist = vec![f64::INFINITY; self.num_nodes()];
        let mut prev = vec![usize::MAX; self.num_nodes()];
        let mut heap = BinaryHeap::new();
        dist[from] = 0.0;
        heap.push(QueueItem { cost: h(from), node: from });
        while let Some(QueueItem { cost, node }) = heap.pop() {
            if node == to {
                break;
            }
            if cost - h(node) > dist[node] + 1e-12 {
                continue; // stale entry
            }
            for nb in self.neighbours(node) {
                let nd = dist[node] + self.edge_cost(node, nb);
                if nd < dist[nb] {
                    dist[nb] = nd;
                    prev[nb] = node;
                    heap.push(QueueItem { cost: nd + h(nb), node: nb });
                }
            }
        }
        if dist[to].is_infinite() {
            return None;
        }
        let mut path = vec![to];
        let mut cur = to;
        while cur != from {
            cur = prev[cur];
            if cur == usize::MAX {
                return None;
            }
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid() -> RoadGrid {
        let mut rng = StdRng::seed_from_u64(1);
        RoadGrid::new(10, 8, (0.0, 0.0), (9.0, 7.0), 0.1, &mut rng)
    }

    #[test]
    fn node_points_span_bbox() {
        let g = grid();
        assert_eq!(g.node_point(0), Point::new(0.0, 0.0));
        assert_eq!(g.node_point(g.num_nodes() - 1), Point::new(9.0, 7.0));
    }

    #[test]
    fn nearest_node_roundtrip() {
        let g = grid();
        for node in [0, 5, 37, 79] {
            assert_eq!(g.nearest_node(g.node_point(node)), node);
        }
    }

    #[test]
    fn nearest_node_clamps_outside() {
        let g = grid();
        assert_eq!(g.nearest_node(Point::new(-100.0, -100.0)), 0);
        assert_eq!(g.nearest_node(Point::new(100.0, 100.0)), g.num_nodes() - 1);
    }

    #[test]
    fn shortest_path_connects_endpoints() {
        let g = grid();
        let path = g.shortest_path(0, g.num_nodes() - 1).unwrap();
        assert_eq!(*path.first().unwrap(), 0);
        assert_eq!(*path.last().unwrap(), g.num_nodes() - 1);
        // Consecutive nodes are grid neighbours.
        for w in path.windows(2) {
            let manhattan = (w[0] % 10).abs_diff(w[1] % 10) + (w[0] / 10).abs_diff(w[1] / 10);
            assert_eq!(manhattan, 1);
        }
        // At least Manhattan-length long: 9 + 7 hops.
        assert!(path.len() >= 17);
    }

    #[test]
    fn path_to_self_is_single_node() {
        let g = grid();
        assert_eq!(g.shortest_path(11, 11).unwrap(), vec![11]);
    }

    #[test]
    fn path_cost_no_worse_than_detour() {
        // With low jitter, the A* path length should be near-minimal: number
        // of hops equals the Manhattan distance when weights are mild.
        let mut rng = StdRng::seed_from_u64(9);
        let g = RoadGrid::new(6, 6, (0.0, 0.0), (5.0, 5.0), 0.01, &mut rng);
        let path = g.shortest_path(0, 35).unwrap();
        assert_eq!(path.len(), 11); // 5 + 5 hops + start
    }
}
