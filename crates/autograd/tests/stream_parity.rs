//! Streaming (one-point-at-a-time) RNN state vs. the full tape-free re-run.
//!
//! The contract of [`Recurrent::stream_step`] is *bitwise* equality: after
//! `N` steps the newest output row equals the last row of
//! `forward_seq_nograd` over the same `N` inputs at `bs = 1`. This holds
//! because `kernels::mm_nn` dispatches on per-row work (`k·n`) only — a
//! 1-row stream GEMM takes the same kernel as the corresponding row of the
//! full-sequence preprojection — and both paths share the same elementwise
//! step functions. Sizes below straddle the `ROW_STABLE_MIN_KN` dispatch
//! threshold so both the naive and the blocked kernel are exercised.

use tmn_autograd::nn::{BiLstm, Gru, Lstm, ParamSet, Recurrent};

fn rng(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// Deterministic pseudo-random buffer in roughly [-1, 1].
fn wiggle(n: usize, seed: u32) -> Vec<f32> {
    (0..n)
        .map(|i| ((i as u32).wrapping_mul(2654435761).wrapping_add(seed) % 2000) as f32 / 1000.0 - 1.0)
        .collect()
}

/// Feed `m` rows through the stream, checking each prefix against a full
/// tape-free re-run at `bs = 1`.
fn check_stream(cell: &dyn Recurrent, m: usize, seed: u32) {
    let d_in = cell.input_dim();
    let h_out = cell.hidden_dim();
    let xs = wiggle(m * d_in, seed);
    let mut stream = cell.stream_begin();
    let mut row = vec![0.0f32; h_out];
    for t in 0..m {
        cell.stream_step(&mut stream, &xs[t * d_in..(t + 1) * d_in], &mut row);
        assert_eq!(stream.len(), t + 1);
        let full = cell.forward_seq_nograd(&xs[..(t + 1) * d_in], 1, t + 1);
        assert_eq!(
            row.as_slice(),
            &full[t * h_out..(t + 1) * h_out],
            "stream row diverged from full re-run at step {t} (d_in={d_in}, h_out={h_out})"
        );
        tmn_autograd::infer::recycle(full);
    }
}

#[test]
fn lstm_stream_matches_full_rerun_bitwise() {
    // h=4 → k·n for the cell GEMM is 4·16=64 (naive); h=24 → 24·96=2304
    // (blocked). Both sides of the row-stable dispatch threshold.
    for (d_in, h, seed) in [(3, 4, 101), (6, 24, 102), (2, 16, 103)] {
        let mut ps = ParamSet::new();
        let cell = Lstm::new(&mut ps, "l", d_in, h, &mut rng(7 + seed as u64));
        check_stream(&cell, 11, seed);
    }
}

#[test]
fn gru_stream_matches_full_rerun_bitwise() {
    for (d_in, h, seed) in [(3, 5, 201), (5, 24, 202), (2, 16, 203)] {
        let mut ps = ParamSet::new();
        let cell = Gru::new(&mut ps, "g", d_in, h, &mut rng(9 + seed as u64));
        check_stream(&cell, 11, seed);
    }
}

#[test]
fn bilstm_stream_matches_newest_row_of_full_rerun_bitwise() {
    // Only the NEWEST row is promised: its backward half is the backward
    // LSTM's first step over the reversed input, i.e. one cell step from
    // zero state on the newest point.
    for (d_in, h, seed) in [(3, 4, 301), (4, 20, 302)] {
        let mut ps = ParamSet::new();
        let cell = BiLstm::new(&mut ps, "b", d_in, h, &mut rng(13 + seed as u64));
        check_stream(&cell, 9, seed);
    }
}

#[test]
fn stream_survives_crossing_kernel_dispatch_sizes() {
    // A long stream on a size whose preprojection GEMM (m rows) sits above
    // the blocked threshold while each stream step's 1-row GEMM has the
    // same k·n — the dispatch must agree or bits drift.
    let (d_in, h) = (8, 16); // preproject k·n = 8·64 = 512 = threshold edge
    let mut ps = ParamSet::new();
    let cell = Lstm::new(&mut ps, "edge", d_in, h, &mut rng(99));
    check_stream(&cell, 40, 404);
}

#[test]
#[should_panic(expected = "different backbone")]
fn stream_state_kind_mismatch_panics() {
    let mut ps = ParamSet::new();
    let lstm = Lstm::new(&mut ps, "l", 3, 4, &mut rng(1));
    let gru = Gru::new(&mut ps, "g", 3, 4, &mut rng(2));
    let mut s = gru.stream_begin();
    let mut out = vec![0.0f32; 4];
    lstm.stream_step(&mut s, &[0.1, 0.2, 0.3], &mut out);
}
