//! The op-level profiler must attribute both forward and backward time to
//! the op that created each graph node, and must record nothing (and change
//! nothing) when disabled.
//!
//! These tests share the process-global profiler registry, so they serialize
//! on a local mutex instead of relying on `--test-threads`.

use std::sync::Mutex;
use tmn_autograd::{ops, Tensor};
use tmn_obs::profiler;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn small_loss() -> (Tensor, Tensor) {
    let w = Tensor::param((0..12).map(|i| 0.1 * i as f32 - 0.5).collect(), &[3, 4]);
    let x = Tensor::from_vec((0..6).map(|i| 0.2 * i as f32).collect(), &[2, 3]);
    let y = ops::matmul(&x, &w);
    let s = ops::sigmoid(&y);
    let loss = ops::sum_all(&ops::mul(&s, &s));
    (loss, w)
}

fn record(name: &str, kind: &str) -> Option<profiler::OpRecord> {
    profiler::snapshot().into_iter().find(|r| r.name == name && r.kind == kind)
}

#[test]
fn forward_and_backward_records_share_op_names() {
    let _g = lock();
    profiler::set_enabled(true);
    profiler::reset();
    let (loss, _w) = small_loss();
    loss.backward();
    profiler::set_enabled(false);

    for op in ["matmul", "sigmoid", "mul", "sum_all"] {
        let fwd = record(op, "forward").unwrap_or_else(|| panic!("no forward record for {op}"));
        assert!(fwd.calls >= 1);
        let bwd = record(op, "backward").unwrap_or_else(|| panic!("no backward record for {op}"));
        assert!(bwd.calls >= 1);
        // Backward FLOPs are estimated at twice the forward cost per call.
        assert_eq!(bwd.flops * fwd.calls, 2 * fwd.flops * bwd.calls);
    }
}

#[test]
fn flop_estimate_matches_matmul_dims() {
    let _g = lock();
    profiler::set_enabled(true);
    profiler::reset();
    let a = Tensor::param(vec![0.0; 6], &[2, 3]);
    let b = Tensor::param(vec![0.0; 12], &[3, 4]);
    let _ = ops::matmul(&a, &b);
    profiler::set_enabled(false);
    let fwd = record("matmul", "forward").expect("matmul recorded");
    assert_eq!(fwd.calls, 1);
    assert_eq!(fwd.flops, 2 * 2 * 3 * 4);
}

#[test]
fn disabled_profiler_records_nothing_and_preserves_numerics() {
    let _g = lock();
    // Reference values with the profiler off.
    profiler::set_enabled(false);
    profiler::reset();
    let (loss_off, w_off) = small_loss();
    loss_off.backward();
    assert!(profiler::snapshot().is_empty(), "disabled run must record nothing");

    // Same computation with the profiler on: identical bits out.
    profiler::set_enabled(true);
    let (loss_on, w_on) = small_loss();
    loss_on.backward();
    profiler::set_enabled(false);
    assert!(!profiler::snapshot().is_empty());
    assert_eq!(loss_off.item().to_bits(), loss_on.item().to_bits());
    let (g_off, g_on) = (w_off.grad().unwrap(), w_on.grad().unwrap());
    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&g_off), bits(&g_on), "profiling changed gradient bits");
}

#[test]
fn no_grad_forward_still_profiles_forward_only() {
    let _g = lock();
    profiler::set_enabled(true);
    profiler::reset();
    tmn_autograd::no_grad(|| {
        let (loss, _) = small_loss();
        let _ = loss.item();
    });
    profiler::set_enabled(false);
    let fwd = record("matmul", "forward").expect("forward recorded under no_grad");
    assert_eq!(fwd.calls, 1);
    assert!(record("matmul", "backward").is_none(), "no backward without a graph");
}
