//! Tape-free forward vs. autograd forward, and SIMD vs. scalar kernels.
//!
//! Two independent invariants guard the inference fast path:
//!
//! 1. **Graph parity** — `Recurrent::forward_seq_nograd` returns the exact
//!    bytes of the graphed `forward_seq`: the fast path calls the same
//!    `mm_*` kernels and the same shared elementwise step functions in the
//!    same order, so equality is bitwise, not approximate.
//! 2. **Dispatch parity** — the AVX2 GEMM micro-tile changes the summation
//!    tree relative to the scalar 4×8 tile, so its results may differ from
//!    scalar by rounding only (≤ 1e-5 relative for the sizes proptest
//!    generates); repeated calls under one dispatch are bitwise identical,
//!    and the elementwise sigmoid/tanh are bitwise identical *across*
//!    dispatches (both sides use the same single-rounding polynomial).
//!
//! The scalar side of every cross-dispatch check runs under
//! `simd::force_scalar`, which is thread-local, so these tests cannot
//! perturb concurrently running ones.

use proptest::prelude::*;
use tmn_autograd::nn::{BiLstm, Gru, Lstm, ParamSet, Recurrent};
use tmn_autograd::{kernels, simd, Tensor};

/// Deterministic pseudo-random buffer in roughly [-1, 1].
fn wiggle(n: usize, seed: u32) -> Vec<f32> {
    (0..n).map(|i| ((i as u32).wrapping_mul(2654435761).wrapping_add(seed) % 2000) as f32 / 1000.0 - 1.0).collect()
}

/// Ragged-batch style input: each batch row gets a different magnitude so a
/// transposed or mis-strided read cannot cancel out.
fn seq_input(b: usize, m: usize, d: usize, seed: u32) -> Vec<f32> {
    let mut xs = wiggle(b * m * d, seed);
    for (row, chunk) in xs.chunks_mut(m * d).enumerate() {
        let gain = 0.25 + 0.25 * row as f32;
        chunk.iter_mut().for_each(|v| *v *= gain);
    }
    xs
}

fn rng(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}

#[test]
fn lstm_nograd_matches_graphed_forward_bitwise() {
    let (b, m, d_in, h) = (3, 9, 6, 10);
    let mut ps = ParamSet::new();
    let cell = Lstm::new(&mut ps, "l", d_in, h, &mut rng(11));
    let xs = seq_input(b, m, d_in, 42);
    let graphed = cell.forward_seq(&Tensor::from_vec(xs.clone(), &[b, m, d_in])).to_vec();
    let fast = cell.forward_seq_nograd(&xs, b, m);
    assert_eq!(fast, graphed);
}

#[test]
fn gru_nograd_matches_graphed_forward_bitwise() {
    let (b, m, d_in, h) = (4, 7, 5, 12);
    let mut ps = ParamSet::new();
    let cell = Gru::new(&mut ps, "g", d_in, h, &mut rng(12));
    let xs = seq_input(b, m, d_in, 43);
    let graphed = cell.forward_seq(&Tensor::from_vec(xs.clone(), &[b, m, d_in])).to_vec();
    let fast = cell.forward_seq_nograd(&xs, b, m);
    assert_eq!(fast, graphed);
}

#[test]
fn bilstm_nograd_matches_graphed_forward_bitwise() {
    let (b, m, d_in, h) = (2, 11, 4, 8);
    let mut ps = ParamSet::new();
    let cell = BiLstm::new(&mut ps, "bi", d_in, h, &mut rng(13));
    let xs = seq_input(b, m, d_in, 44);
    let graphed = cell.forward_seq(&Tensor::from_vec(xs.clone(), &[b, m, d_in])).to_vec();
    let fast = cell.forward_seq_nograd(&xs, b, m);
    assert_eq!(fast, graphed);
}

#[test]
fn nograd_handles_single_step_and_single_row() {
    // Degenerate shapes that stress the t=0 zero-state path.
    for (b, m) in [(1, 1), (1, 5), (6, 1)] {
        let mut ps = ParamSet::new();
        let cell = Lstm::new(&mut ps, "l", 3, 4, &mut rng(14));
        let xs = seq_input(b, m, 3, 45);
        let graphed = cell.forward_seq(&Tensor::from_vec(xs.clone(), &[b, m, 3])).to_vec();
        assert_eq!(cell.forward_seq_nograd(&xs, b, m), graphed, "b={b} m={m}");
    }
}

#[test]
fn activations_are_bitwise_identical_across_dispatch() {
    // 1031 elements: prime, so every AVX2 lane and the scalar remainder are
    // exercised; range spans saturation on both sides.
    let xs: Vec<f32> = (0..1031).map(|i| (i as f32 - 515.0) * 0.04).collect();
    let (mut sig_a, mut tan_a) = (xs.clone(), xs.clone());
    simd::sigmoid_inplace(&mut sig_a);
    simd::tanh_inplace(&mut tan_a);
    simd::force_scalar(true);
    let (mut sig_s, mut tan_s) = (xs.clone(), xs);
    simd::sigmoid_inplace(&mut sig_s);
    simd::tanh_inplace(&mut tan_s);
    simd::force_scalar(false);
    assert_eq!(sig_a, sig_s, "sigmoid differs across dispatch");
    assert_eq!(tan_a, tan_s, "tanh differs across dispatch");
}

#[test]
fn repeated_dispatch_is_bitwise_stable() {
    // Two runs of the same GEMM under the active dispatch must agree
    // bitwise — detection is cached and the kernel is deterministic.
    let (m, k, n) = (33, 47, 29);
    let (a, b) = (wiggle(m * k, 1), wiggle(k * n, 2));
    let mut out1 = vec![0.0f32; m * n];
    let mut out2 = vec![0.0f32; m * n];
    kernels::mm_nn(&a, &b, m, k, n, &mut out1);
    kernels::mm_nn(&a, &b, m, k, n, &mut out2);
    assert_eq!(out1, out2);
}

/// |x − y| within 1e-5 relative to the larger magnitude (or absolute for
/// values below 1).
fn close(x: f32, y: f32) -> bool {
    (x - y).abs() <= 1e-5 * x.abs().max(y.abs()).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mm_nn_simd_matches_scalar(m in 1usize..40, k in 1usize..48, n in 1usize..40, seed in 0u32..1000) {
        let (a, b) = (wiggle(m * k, seed), wiggle(k * n, seed.wrapping_add(7)));
        let mut fast = vec![0.0f32; m * n];
        kernels::mm_nn(&a, &b, m, k, n, &mut fast);
        simd::force_scalar(true);
        let mut slow = vec![0.0f32; m * n];
        kernels::mm_nn(&a, &b, m, k, n, &mut slow);
        simd::force_scalar(false);
        for (i, (&x, &y)) in fast.iter().zip(&slow).enumerate() {
            prop_assert!(close(x, y), "mm_nn[{i}]: {x} vs {y}");
        }
    }

    #[test]
    fn mm_nt_simd_matches_scalar(m in 1usize..40, k in 1usize..48, n in 1usize..40, seed in 0u32..1000) {
        let (a, b) = (wiggle(m * k, seed), wiggle(n * k, seed.wrapping_add(9)));
        let mut fast = vec![0.0f32; m * n];
        kernels::mm_nt(&a, &b, m, k, n, &mut fast);
        simd::force_scalar(true);
        let mut slow = vec![0.0f32; m * n];
        kernels::mm_nt(&a, &b, m, k, n, &mut slow);
        simd::force_scalar(false);
        for (i, (&x, &y)) in fast.iter().zip(&slow).enumerate() {
            prop_assert!(close(x, y), "mm_nt[{i}]: {x} vs {y}");
        }
    }

    #[test]
    fn rnn_forward_under_forced_scalar_stays_close(b in 1usize..4, m in 1usize..8, seed in 0u32..100) {
        // The full fused cell under scalar dispatch tracks the active
        // dispatch within GEMM rounding (activations are bitwise equal, so
        // only the matmul summation order can differ).
        let (d_in, h) = (5, 9);
        let mut ps = ParamSet::new();
        let cell = Lstm::new(&mut ps, "l", d_in, h, &mut rng(seed as u64));
        let xs = seq_input(b, m, d_in, seed);
        let fast = cell.forward_seq_nograd(&xs, b, m);
        simd::force_scalar(true);
        let slow = cell.forward_seq_nograd(&xs, b, m);
        simd::force_scalar(false);
        for (i, (&x, &y)) in fast.iter().zip(&slow).enumerate() {
            prop_assert!(close(x, y), "lstm[{i}]: {x} vs {y}");
        }
    }
}
