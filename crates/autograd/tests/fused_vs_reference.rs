//! Differential tests: the fused time-major recurrent layers against the
//! step-unrolled `nn::reference` oracle, running the exact same weights.
//!
//! The fused path changes floating-point summation order (the pre-projection
//! computes `(xW + b) + hW` where the reference computes `(xW + hW) + b`,
//! and gate GEMMs are batched differently), so outputs agree to tolerance,
//! not bitwise: forward within 1e-5, gradients within 1e-4 relative.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tmn_autograd::nn::{reference, BiLstm, Gru, Lstm, ParamSet, Recurrent};
use tmn_autograd::{ops, set_intra_op_threads, Tensor};

fn rand_input(rng: &mut StdRng, b: usize, m: usize, d: usize) -> Tensor {
    let data: Vec<f32> = (0..b * m * d).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Tensor::from_vec(data, &[b, m, d])
}

fn assert_close(a: &[f32], b: &[f32], tol: f32, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let denom = x.abs().max(y.abs()).max(1.0);
        assert!(
            (x - y).abs() / denom <= tol,
            "{what}: elem {i} differs beyond {tol}: {x} vs {y}"
        );
    }
}

/// Run `f`, backward through its scalar loss, and return all param grads
/// (registration order) plus the forward output.
fn run_with_grads(ps: &ParamSet, f: impl FnOnce() -> Tensor) -> (Vec<f32>, Vec<Vec<f32>>) {
    ps.zero_grad();
    let out = f();
    let out_vals = out.to_vec();
    // A non-uniform weighting so gradient errors can't cancel by symmetry.
    let w: Vec<f32> = (0..out.numel()).map(|i| ((i % 7) as f32 - 3.0) * 0.25).collect();
    let weighted = ops::mul(&out, &Tensor::from_vec(w, out.shape()));
    ops::sum_all(&weighted).backward();
    (out_vals, ps.grad_snapshot())
}

#[test]
fn lstm_forward_and_grads_match_reference() {
    let mut ps = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(101);
    let fused = Lstm::new(&mut ps, "lstm", 5, 7, &mut rng);
    let (w_ih, w_hh, bias) = fused.weights();
    let oracle = reference::Lstm::from_weights(w_ih, w_hh, bias);
    let x = rand_input(&mut rng, 3, 9, 5);

    let (zf, gf) = run_with_grads(&ps, || fused.forward_seq(&x));
    let (zr, gr) = run_with_grads(&ps, || oracle.forward_seq(&x));
    assert_close(&zf, &zr, 1e-5, "lstm forward");
    for (i, (a, b)) in gf.iter().zip(&gr).enumerate() {
        assert_close(a, b, 1e-4, &format!("lstm grad param {i}"));
    }
}

#[test]
fn gru_forward_and_grads_match_reference() {
    let mut ps = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(202);
    let fused = Gru::new(&mut ps, "gru", 4, 6, &mut rng);
    let (w_ih, w_hh, bias, w_in, w_hn, bias_n) = fused.weights();
    let oracle = reference::Gru::from_weights(w_ih, w_hh, bias, w_in, w_hn, bias_n);
    let x = rand_input(&mut rng, 2, 8, 4);

    let (zf, gf) = run_with_grads(&ps, || fused.forward_seq(&x));
    let (zr, gr) = run_with_grads(&ps, || oracle.forward_seq(&x));
    assert_close(&zf, &zr, 1e-5, "gru forward");
    for (i, (a, b)) in gf.iter().zip(&gr).enumerate() {
        assert_close(a, b, 1e-4, &format!("gru grad param {i}"));
    }
}

#[test]
fn bilstm_forward_and_grads_match_reference() {
    let mut ps = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(303);
    let fused = BiLstm::new(&mut ps, "bi", 3, 5, &mut rng);
    let (fwd, bwd) = fused.directions();
    let (fw_ih, fw_hh, fb) = fwd.weights();
    let (bw_ih, bw_hh, bb) = bwd.weights();
    let oracle = reference::BiLstm::new(
        reference::Lstm::from_weights(fw_ih, fw_hh, fb),
        reference::Lstm::from_weights(bw_ih, bw_hh, bb),
    );
    let x = rand_input(&mut rng, 2, 6, 3);

    let (zf, gf) = run_with_grads(&ps, || fused.forward_seq(&x));
    let (zr, gr) = run_with_grads(&ps, || oracle.forward_seq(&x));
    assert_close(&zf, &zr, 1e-5, "bilstm forward");
    for (i, (a, b)) in gf.iter().zip(&gr).enumerate() {
        assert_close(a, b, 1e-4, &format!("bilstm grad param {i}"));
    }
}

#[test]
fn ragged_lengths_with_gather_match_reference() {
    // The trainer's sub-trajectory loss reads prefix states via gather_time
    // on ragged, padded batches. Padding garbage feeds through both
    // implementations identically up to tolerance, and gathered last-valid
    // states plus their gradients must agree.
    let mut ps = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(404);
    let fused = Lstm::new(&mut ps, "lstm", 4, 6, &mut rng);
    let (w_ih, w_hh, bias) = fused.weights();
    let oracle = reference::Lstm::from_weights(w_ih, w_hh, bias);

    let (b, m, d) = (3, 7, 4);
    let lens = [7usize, 4, 1];
    let mut data: Vec<f32> = (0..b * m * d).map(|_| rng.gen_range(-1.0..1.0)).collect();
    for (bi, &len) in lens.iter().enumerate() {
        for t in len..m {
            for dd in 0..d {
                data[(bi * m + t) * d + dd] = 9.9; // sentinel padding
            }
        }
    }
    let x = Tensor::from_vec(data, &[b, m, d]);
    let last: Vec<usize> = lens.iter().map(|&l| l - 1).collect();

    let (zf, gf) = run_with_grads(&ps, || ops::gather_time(&fused.forward_seq(&x), &last));
    let (zr, gr) = run_with_grads(&ps, || ops::gather_time(&oracle.forward_seq(&x), &last));
    assert_close(&zf, &zr, 1e-5, "ragged gathered forward");
    for (i, (a, b)) in gf.iter().zip(&gr).enumerate() {
        assert_close(a, b, 1e-4, &format!("ragged grad param {i}"));
    }
}

#[test]
fn masked_padding_match_reference() {
    // Zeroing padded rows after the encoder (the paper's masking before the
    // discrepancy subtraction) must agree between implementations too: the
    // mask blocks gradient flow from padded steps in both.
    let mut ps = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(505);
    let fused = Gru::new(&mut ps, "gru", 3, 5, &mut rng);
    let (w_ih, w_hh, bias, w_in, w_hn, bias_n) = fused.weights();
    let oracle = reference::Gru::from_weights(w_ih, w_hh, bias, w_in, w_hn, bias_n);

    let (b, m, d) = (2, 6, 3);
    let lens = [6usize, 2];
    let x = rand_input(&mut rng, b, m, d);
    let mut mvals = vec![0.0f32; b * m];
    for (bi, &len) in lens.iter().enumerate() {
        for t in 0..len {
            mvals[bi * m + t] = 1.0;
        }
    }
    let mask = Tensor::from_vec(mvals, &[b, m]);

    let (zf, gf) = run_with_grads(&ps, || ops::mul_mask_rows(&fused.forward_seq(&x), &mask));
    let (zr, gr) = run_with_grads(&ps, || ops::mul_mask_rows(&oracle.forward_seq(&x), &mask));
    for (bi, &len) in lens.iter().enumerate() {
        for t in len..m {
            let h = fused.hidden_dim();
            let off = (bi * m + t) * h;
            assert!(zf[off..off + h].iter().all(|&v| v == 0.0), "masked row not zeroed");
        }
    }
    assert_close(&zf, &zr, 1e-5, "masked forward");
    for (i, (a, b)) in gf.iter().zip(&gr).enumerate() {
        assert_close(a, b, 1e-4, &format!("masked grad param {i}"));
    }
}

#[test]
fn fused_path_bitwise_stable_across_thread_counts() {
    // set_intra_op_threads changes how kernel work is partitioned, never the
    // per-element accumulation order, so fused outputs and gradients must be
    // *bitwise* identical at any thread count (DESIGN.md §6).
    let mut ps = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(606);
    let lstm = Lstm::new(&mut ps, "lstm", 6, 16, &mut rng);
    let x = rand_input(&mut rng, 4, 12, 6);

    let mut runs = Vec::new();
    for threads in [1usize, 4] {
        set_intra_op_threads(threads);
        let (z, g) = run_with_grads(&ps, || lstm.forward_seq(&x));
        runs.push((z, g));
    }
    set_intra_op_threads(1);
    let (z1, g1) = &runs[0];
    let (z4, g4) = &runs[1];
    assert_eq!(z1, z4, "fused forward differs between 1 and 4 threads");
    assert_eq!(g1, g4, "fused gradients differ between 1 and 4 threads");
}
