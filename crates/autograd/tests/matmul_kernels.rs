//! Property tests: the cache-blocked GEMM kernels agree with the retained
//! naive reference on arbitrary shapes (including non-tile-multiple sizes),
//! and the intra-op-parallelized `bmm_nn`/`bmm_nt` backward passes stay
//! correct (finite differences) and bit-stable across thread counts.

use proptest::prelude::*;
use tmn_autograd::kernels::{self, reference};
use tmn_autograd::{ops, set_intra_op_threads, Tensor};

fn assert_rel_close(got: &[f32], want: &[f32], ctx: &str) -> Result<(), String> {
    prop_assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let denom = w.abs().max(1.0);
        prop_assert!(
            (g - w).abs() / denom < 1e-4,
            "{ctx} elem {i}: blocked {g} vs naive {w}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Shapes deliberately cross the MR=4 / NR=8 register-tile borders.
    #[test]
    fn blocked_kernels_match_naive(
        m in 1usize..70,
        k in 1usize..70,
        n in 1usize..70,
        seed_a in prop::collection::vec(-2.0f32..2.0, 70 * 70),
        seed_b in prop::collection::vec(-2.0f32..2.0, 70 * 70),
    ) {
        let a = &seed_a[..m * k];
        let b_nn = &seed_b[..k * n];
        let mut got = vec![0.0f32; m * n];
        let mut want = vec![0.0f32; m * n];
        kernels::mm_nn(a, b_nn, m, k, n, &mut got);
        reference::mm_nn(a, b_nn, m, k, n, &mut want);
        assert_rel_close(&got, &want, "mm_nn")?;

        let b_nt = &seed_b[..n * k];
        let mut got = vec![0.0f32; m * n];
        let mut want = vec![0.0f32; m * n];
        kernels::mm_nt(a, b_nt, m, k, n, &mut got);
        reference::mm_nt(a, b_nt, m, k, n, &mut want);
        assert_rel_close(&got, &want, "mm_nt")?;

        let b_tn = &seed_b[..m * n];
        let mut got = vec![0.0f32; k * n];
        let mut want = vec![0.0f32; k * n];
        kernels::mm_tn(a, b_tn, m, k, n, &mut got);
        reference::mm_tn(a, b_tn, m, k, n, &mut want);
        assert_rel_close(&got, &want, "mm_tn")?;
    }

    /// Accumulation contract: kernels must `+=` into a pre-filled buffer.
    #[test]
    fn blocked_kernels_accumulate(
        m in 1usize..20,
        k in 1usize..40,
        n in 1usize..20,
        base in -1.0f32..1.0,
        vals in prop::collection::vec(-1.0f32..1.0, 40 * 20),
    ) {
        let a = &vals[..m * k];
        let b = &vals[vals.len() - k * n..];
        let mut got = vec![base; m * n];
        let mut want = vec![base; m * n];
        kernels::mm_nn(a, b, m, k, n, &mut got);
        reference::mm_nn(a, b, m, k, n, &mut want);
        assert_rel_close(&got, &want, "mm_nn accumulate")?;
    }
}

/// Central-difference gradcheck on a scalar function of two bmm operands.
fn gradcheck_bmm(
    a_shape: &[usize],
    b_shape: &[usize],
    f: impl Fn(&Tensor, &Tensor) -> Tensor,
) {
    let len = |s: &[usize]| s.iter().product::<usize>();
    let av: Vec<f32> = (0..len(a_shape)).map(|x| ((x * 13 % 19) as f32 - 9.0) / 11.0).collect();
    let bv: Vec<f32> = (0..len(b_shape)).map(|x| ((x * 7 % 23) as f32 - 11.0) / 13.0).collect();
    let a = Tensor::param(av, a_shape);
    let b = Tensor::param(bv, b_shape);

    let loss = ops::sum_all(&f(&a, &b));
    a.zero_grad();
    b.zero_grad();
    loss.backward();

    let eps = 1e-2f32;
    for t in [&a, &b] {
        let analytic = t.grad().expect("bmm operand must receive a gradient");
        for (j, &analytic_j) in analytic.iter().enumerate() {
            let orig = t.data()[j];
            t.data_mut()[j] = orig + eps;
            let up = ops::sum_all(&f(&a, &b)).item();
            t.data_mut()[j] = orig - eps;
            let down = ops::sum_all(&f(&a, &b)).item();
            t.data_mut()[j] = orig;
            let numeric = (up - down) / (2.0 * eps);
            let denom = numeric.abs().max(analytic_j.abs()).max(1.0);
            assert!(
                (numeric - analytic_j).abs() / denom < 2e-2,
                "elem {j}: numeric {numeric} vs analytic {analytic_j}"
            );
        }
    }
}

/// Backward of the parallelized batch loops is still a correct gradient when
/// several intra-op workers split the batch.
#[test]
fn bmm_backward_gradcheck_with_intra_op_threads() {
    set_intra_op_threads(3);
    // Batch of 6 so the round-robin split exercises multiple workers; sizes
    // large enough that forward+backward cross the parallel flop threshold
    // when scaled, small enough for finite differences to stay fast.
    gradcheck_bmm(&[6, 3, 4], &[6, 4, 5], ops::bmm_nn);
    gradcheck_bmm(&[6, 3, 4], &[6, 5, 4], ops::bmm_nt);
    set_intra_op_threads(1);
}

/// Gradients must be bitwise identical no matter the intra-op thread count.
#[test]
fn bmm_backward_bits_stable_across_thread_counts() {
    let grads_at = |threads: usize| {
        set_intra_op_threads(threads);
        let av: Vec<f32> = (0..8 * 20 * 16).map(|x| ((x * 29 % 83) as f32 - 41.0) / 31.0).collect();
        let bv: Vec<f32> = (0..8 * 24 * 16).map(|x| ((x * 41 % 79) as f32 - 39.0) / 27.0).collect();
        let a = Tensor::param(av, &[8, 20, 16]);
        let b = Tensor::param(bv, &[8, 24, 16]);
        let loss = ops::sum_all(&ops::bmm_nt(&a, &b));
        a.zero_grad();
        b.zero_grad();
        loss.backward();
        set_intra_op_threads(1);
        (a.grad().unwrap(), b.grad().unwrap())
    };
    let (da1, db1) = grads_at(1);
    let (da4, db4) = grads_at(4);
    assert_eq!(da1, da4, "da changed with thread count");
    assert_eq!(db1, db4, "db changed with thread count");
}
