//! Allocation regression gate for the pooled gradient-buffer path.
//!
//! Before the time-major refactor, every `select_time`/`gather_time`
//! backward materialized a zero-filled parent-sized temporary
//! (`vec![0.0; B*m*d]`) just to scatter one step's gradient into it — for a
//! T-step sequence that is T parent-sized allocations per backward. The
//! pooled path (`Tensor::accumulate_grad_with`) creates the parent-sized
//! buffer once and scatters into it in place.
//!
//! A counting `#[global_allocator]` observes what a plain counter cannot:
//! the temporaries never crossed `accumulate_grad`, they died inside the
//! backward closures. This test is its own binary, so the only large
//! allocations during the measured span are the ones under test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Allocations of at least this many bytes are counted while armed.
/// Parent tensors in the test are sized well above it; per-step tensors and
/// graph bookkeeping stay well below.
const LARGE: usize = 4096;

static ARMED: AtomicBool = AtomicBool::new(false);
static LARGE_ALLOCS: AtomicUsize = AtomicUsize::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if layout.size() >= LARGE && ARMED.load(Ordering::Relaxed) {
            LARGE_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn count_large_during(f: impl FnOnce()) -> usize {
    LARGE_ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    f();
    ARMED.store(false, Ordering::SeqCst);
    LARGE_ALLOCS.load(Ordering::SeqCst)
}

use tmn_autograd::{grad_buffer_allocs, ops, Tensor};

#[test]
fn select_time_backward_reuses_one_pooled_buffer() {
    // Parent [4, 32, 64] = 32 KiB of f32; each of the 32 select_time outputs
    // is [4, 64] = 1 KiB, under the LARGE threshold.
    let (b, m, d) = (4usize, 32usize, 64usize);
    let xs = Tensor::param((0..b * m * d).map(|i| (i as f32 * 0.01).sin()).collect(), &[b, m, d]);

    // Build the graph outside the measured span: forward allocations
    // (per-step outputs, sums) are not what this test regresses.
    let mut acc = ops::select_time(&xs, 0);
    for t in 1..m {
        acc = ops::add(&acc, &ops::select_time(&xs, t));
    }
    let loss = ops::sum_all(&acc);

    let pooled_before = grad_buffer_allocs();
    let large = count_large_during(|| loss.backward());
    let pooled = grad_buffer_allocs() - pooled_before;

    // One parent-sized gradient buffer for xs; every scatter lands in it.
    // Budget 3 leaves headroom for the topo-sort stack, nothing more —
    // the pre-refactor path cost m parent-sized temporaries here.
    assert!(large <= 3, "backward made {large} large allocations (expected <= 3, old path: {m})");
    // Exactly one pooled buffer per graph node carrying a gradient:
    // m selects + (m-1) adds + the loss + xs itself. Only the xs buffer is
    // parent-sized; a regression to per-scatter temporaries shows up in
    // `large`, a regression to redundant pool buffers shows up here.
    assert_eq!(pooled, (2 * m + 1) as u64, "unexpected pooled grad-buffer count");
}

#[test]
fn gather_time_backward_reuses_one_pooled_buffer() {
    let (b, m, d) = (4usize, 32usize, 64usize);
    let xs = Tensor::param((0..b * m * d).map(|i| (i as f32 * 0.02).cos()).collect(), &[b, m, d]);

    // One gather per prefix level, like the sub-trajectory loss.
    let mut acc = ops::gather_time(&xs, &[0, 0, 0, 0]);
    for level in 1..m {
        let idx = [level % m, (2 * level) % m, (3 * level) % m, (5 * level) % m];
        acc = ops::add(&acc, &ops::gather_time(&xs, &idx));
    }
    let loss = ops::sum_all(&acc);

    let pooled_before = grad_buffer_allocs();
    let large = count_large_during(|| loss.backward());
    let pooled = grad_buffer_allocs() - pooled_before;

    assert!(large <= 3, "backward made {large} large allocations (expected <= 3, old path: {m})");
    // m gathers + (m-1) adds + the loss + xs (see the select_time test).
    assert_eq!(pooled, (2 * m + 1) as u64, "unexpected pooled grad-buffer count");
}
