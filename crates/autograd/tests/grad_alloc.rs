//! Allocation regression gate for the pooled gradient-buffer path.
//!
//! Before the time-major refactor, every `select_time`/`gather_time`
//! backward materialized a zero-filled parent-sized temporary
//! (`vec![0.0; B*m*d]`) just to scatter one step's gradient into it — for a
//! T-step sequence that is T parent-sized allocations per backward. The
//! pooled path (`Tensor::accumulate_grad_with`) creates the parent-sized
//! buffer once and scatters into it in place.
//!
//! A counting `#[global_allocator]` observes what a plain counter cannot:
//! the temporaries never crossed `accumulate_grad`, they died inside the
//! backward closures. The allocator now lives in `tmn_obs::memory` (the
//! `alloc-count` feature, enabled for this crate's dev-dependencies) so the
//! same account also powers trainer memory gauges; this test keeps its own
//! binary so the only large allocations during the measured span are the
//! ones under test.

use tmn_autograd::{grad_buffer_allocs, ops, Tensor};
use tmn_obs::memory;

/// Allocations of at least this many bytes are counted while armed.
/// Parent tensors in the test are sized well above it; per-step tensors and
/// graph bookkeeping stay well below.
const LARGE: usize = 4096;

/// The armed counter and `grad_buffer_allocs` are process-global;
/// serialize the measuring tests so parallel test threads cannot bleed
/// allocations into each other's spans.
fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn counting_allocator_is_compiled_in() {
    // The whole gate rests on the alloc-count feature being active for
    // test builds; fail loudly if the dev-dependency feature ever drops.
    assert!(memory::is_active(), "tmn-obs alloc-count feature must be enabled for tests");
    assert!(memory::alloc_count() > 0, "allocator must have observed this binary's allocations");
}

#[test]
fn select_time_backward_reuses_one_pooled_buffer() {
    let _l = test_lock();
    // Parent [4, 32, 64] = 32 KiB of f32; each of the 32 select_time outputs
    // is [4, 64] = 1 KiB, under the LARGE threshold.
    let (b, m, d) = (4usize, 32usize, 64usize);
    let xs = Tensor::param((0..b * m * d).map(|i| (i as f32 * 0.01).sin()).collect(), &[b, m, d]);

    // Build the graph outside the measured span: forward allocations
    // (per-step outputs, sums) are not what this test regresses.
    let mut acc = ops::select_time(&xs, 0);
    for t in 1..m {
        acc = ops::add(&acc, &ops::select_time(&xs, t));
    }
    let loss = ops::sum_all(&acc);

    let pooled_before = grad_buffer_allocs();
    let ((), large) = memory::count_large_during(LARGE, || loss.backward());
    let pooled = grad_buffer_allocs() - pooled_before;

    // One parent-sized gradient buffer for xs; every scatter lands in it.
    // Budget 3 leaves headroom for the topo-sort stack, nothing more —
    // the pre-refactor path cost m parent-sized temporaries here.
    assert!(large <= 3, "backward made {large} large allocations (expected <= 3, old path: {m})");
    // Exactly one pooled buffer per graph node carrying a gradient:
    // m selects + (m-1) adds + the loss + xs itself. Only the xs buffer is
    // parent-sized; a regression to per-scatter temporaries shows up in
    // `large`, a regression to redundant pool buffers shows up here.
    assert_eq!(pooled, (2 * m + 1) as u64, "unexpected pooled grad-buffer count");
}

#[test]
fn gather_time_backward_reuses_one_pooled_buffer() {
    let _l = test_lock();
    let (b, m, d) = (4usize, 32usize, 64usize);
    let xs = Tensor::param((0..b * m * d).map(|i| (i as f32 * 0.02).cos()).collect(), &[b, m, d]);

    // One gather per prefix level, like the sub-trajectory loss.
    let mut acc = ops::gather_time(&xs, &[0, 0, 0, 0]);
    for level in 1..m {
        let idx = [level % m, (2 * level) % m, (3 * level) % m, (5 * level) % m];
        acc = ops::add(&acc, &ops::gather_time(&xs, &idx));
    }
    let loss = ops::sum_all(&acc);

    let pooled_before = grad_buffer_allocs();
    let ((), large) = memory::count_large_during(LARGE, || loss.backward());
    let pooled = grad_buffer_allocs() - pooled_before;

    assert!(large <= 3, "backward made {large} large allocations (expected <= 3, old path: {m})");
    // m gathers + (m-1) adds + the loss + xs (see the select_time test).
    assert_eq!(pooled, (2 * m + 1) as u64, "unexpected pooled grad-buffer count");
}
