//! Property test: reverse-mode gradients on randomly composed op graphs
//! agree with central finite differences.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tmn_autograd::nn::{BiLstm, Gru, MultiHeadSelfAttention, ParamSet, Recurrent};
use tmn_autograd::{ops, Tensor};

/// A pool of unary op choices applied during graph construction.
#[derive(Debug, Clone, Copy)]
enum Unary {
    Tanh,
    Sigmoid,
    LeakyRelu,
    Scale,
    Softmax,
}

/// Binary combination choices.
#[derive(Debug, Clone, Copy)]
enum Binary {
    Add,
    Sub,
    Mul,
    Matmul,
}

fn apply_unary(op: Unary, x: &Tensor) -> Tensor {
    match op {
        Unary::Tanh => ops::tanh(x),
        Unary::Sigmoid => ops::sigmoid(x),
        Unary::LeakyRelu => ops::leaky_relu(x),
        Unary::Scale => ops::scale(x, 0.7),
        Unary::Softmax => ops::softmax(x),
    }
}

fn apply_binary(op: Binary, a: &Tensor, b: &Tensor) -> Tensor {
    match op {
        Binary::Add => ops::add(a, b),
        Binary::Sub => ops::sub(a, b),
        Binary::Mul => ops::mul(a, b),
        Binary::Matmul => ops::matmul(a, b), // both are [n, n]
    }
}

fn arb_unary() -> impl Strategy<Value = Unary> {
    prop_oneof![
        Just(Unary::Tanh),
        Just(Unary::Sigmoid),
        Just(Unary::LeakyRelu),
        Just(Unary::Scale),
        Just(Unary::Softmax),
    ]
}

fn arb_binary() -> impl Strategy<Value = Binary> {
    prop_oneof![Just(Binary::Add), Just(Binary::Sub), Just(Binary::Mul), Just(Binary::Matmul)]
}

/// Build a random graph over two square-matrix leaves and return its scalar
/// output.
fn build(unaries: &[Unary], binaries: &[Binary], leaves: &[Tensor]) -> Tensor {
    let mut a = leaves[0].clone();
    let mut b = leaves[1].clone();
    for (i, &u) in unaries.iter().enumerate() {
        if i % 2 == 0 {
            a = apply_unary(u, &a);
        } else {
            b = apply_unary(u, &b);
        }
    }
    let mut out = a;
    for &op in binaries {
        out = apply_binary(op, &out, &b);
    }
    ops::sum_all(&out)
}

/// Finite-difference check against reverse-mode gradients for a scalar loss
/// rebuilt by `f` on every call. `leaves` are the tensors to differentiate;
/// because `Tensor` clones share storage, perturbing a leaf is visible to
/// the layer that registered it, so `f` can simply re-run the layer's
/// forward pass.
fn fd_check(leaves: &[(String, Tensor)], f: impl Fn() -> Tensor, tol: f32) {
    let loss = f();
    for (_, t) in leaves {
        t.zero_grad();
    }
    loss.backward();
    let analytic: Vec<Vec<f32>> = leaves
        .iter()
        .map(|(_, t)| t.grad().unwrap_or_else(|| vec![0.0; t.numel()]))
        .collect();

    let eps = 1e-2f32;
    for ((name, t), grads) in leaves.iter().zip(&analytic) {
        for (j, &got) in grads.iter().enumerate() {
            let orig = t.data()[j];
            t.data_mut()[j] = orig + eps;
            let up = f().item();
            t.data_mut()[j] = orig - eps;
            let down = f().item();
            t.data_mut()[j] = orig;
            let numeric = (up - down) / (2.0 * eps);
            let denom = numeric.abs().max(got.abs()).max(1.0);
            assert!(
                (numeric - got).abs() / denom < tol,
                "grad mismatch at {name}[{j}]: numeric {numeric} vs analytic {got}"
            );
        }
    }
}

/// All leaves of a layer gradcheck: the input plus every registered param.
fn leaves_of(ps: &ParamSet, x: &Tensor) -> Vec<(String, Tensor)> {
    let mut leaves = vec![("x".to_string(), x.clone())];
    leaves.extend(ps.iter().map(|(n, t)| (n.to_string(), t.clone())));
    leaves
}

#[test]
fn gru_layer_gradcheck() {
    let mut ps = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(7);
    let gru = Gru::new(&mut ps, "gru", 2, 3, &mut rng);
    let x = Tensor::param(
        (0..12).map(|i| ((i as f32) * 0.83).sin() * 0.7).collect(),
        &[2, 3, 2],
    );
    let leaves = leaves_of(&ps, &x);
    fd_check(&leaves, || ops::sum_all(&gru.forward_seq(&x)), 2e-2);
}

#[test]
fn bilstm_layer_gradcheck() {
    let mut ps = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(11);
    let bi = BiLstm::new(&mut ps, "bi", 2, 2, &mut rng);
    let x = Tensor::param(
        (0..6).map(|i| ((i as f32) * 1.07).cos() * 0.6).collect(),
        &[1, 3, 2],
    );
    let leaves = leaves_of(&ps, &x);
    fd_check(&leaves, || ops::sum_all(&bi.forward_seq(&x)), 2e-2);
}

#[test]
fn attention_layer_gradcheck_masked_softmax_path() {
    // Two valid key positions and one padded one exercise the masked
    // renormalization branch of `masked_softmax` end to end.
    let mut ps = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(13);
    let mha = MultiHeadSelfAttention::new(&mut ps, "mha", 4, 2, &mut rng);
    let x = Tensor::param(
        (0..12).map(|i| ((i as f32) * 0.59).sin() * 0.8).collect(),
        &[1, 3, 4],
    );
    let mask = Tensor::from_vec(vec![1.0, 1.0, 0.0], &[1, 3]);
    let leaves = leaves_of(&ps, &x);
    fd_check(&leaves, || ops::sum_all(&mha.forward(&x, &mask)), 2e-2);

    // The padded query row is zeroed by the output mask, so no gradient may
    // flow back from it: perturbing the padded input row leaves the loss
    // unchanged (checked inside fd_check), and its value-path gradients are
    // killed by the masked softmax assigning it zero attention weight.
    let grads = x.grad().expect("input gradient");
    assert!(grads.iter().take(8).any(|&g| g != 0.0), "valid rows must receive gradient");
}

#[test]
fn attention_layer_gradcheck_unmasked() {
    let mut ps = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(17);
    let mha = MultiHeadSelfAttention::new(&mut ps, "mha", 4, 1, &mut rng);
    let x = Tensor::param(
        (0..16).map(|i| ((i as f32) * 0.71).cos() * 0.5).collect(),
        &[2, 2, 4],
    );
    let mask = Tensor::from_vec(vec![1.0; 4], &[2, 2]);
    let leaves = leaves_of(&ps, &x);
    fd_check(&leaves, || ops::sum_all(&mha.forward(&x, &mask)), 2e-2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_graphs_pass_gradcheck(
        vals_a in prop::collection::vec(-1.5f32..1.5, 9),
        vals_b in prop::collection::vec(-1.5f32..1.5, 9),
        unaries in prop::collection::vec(arb_unary(), 0..4),
        binaries in prop::collection::vec(arb_binary(), 1..4),
    ) {
        let a = Tensor::param(vals_a, &[3, 3]);
        let b = Tensor::param(vals_b, &[3, 3]);
        let leaves = [a, b];

        // Analytic gradients.
        let loss = build(&unaries, &binaries, &leaves);
        for l in &leaves {
            l.zero_grad();
        }
        loss.backward();
        let analytic: Vec<Vec<f32>> =
            leaves.iter().map(|l| l.grad().unwrap_or_else(|| vec![0.0; 9])).collect();

        // Central differences (skip points near the LeakyReLU kink).
        let eps = 1e-2f32;
        for (ti, t) in leaves.iter().enumerate() {
            for (j, &got) in analytic[ti].iter().enumerate() {
                let orig = t.data()[j];
                if unaries.iter().any(|u| matches!(u, Unary::LeakyRelu)) && orig.abs() < 5.0 * eps {
                    continue;
                }
                t.data_mut()[j] = orig + eps;
                let up = build(&unaries, &binaries, &leaves).item();
                t.data_mut()[j] = orig - eps;
                let down = build(&unaries, &binaries, &leaves).item();
                t.data_mut()[j] = orig;
                let numeric = (up - down) / (2.0 * eps);
                let denom = numeric.abs().max(got.abs()).max(1.0);
                prop_assert!(
                    (numeric - got).abs() / denom < 0.05,
                    "leaf {ti} elem {j}: numeric {numeric} vs analytic {got} (ops {unaries:?} {binaries:?})"
                );
            }
        }
    }
}
