//! Property test: reverse-mode gradients on randomly composed op graphs
//! agree with central finite differences.

use proptest::prelude::*;
use tmn_autograd::{ops, Tensor};

/// A pool of unary op choices applied during graph construction.
#[derive(Debug, Clone, Copy)]
enum Unary {
    Tanh,
    Sigmoid,
    LeakyRelu,
    Scale,
    Softmax,
}

/// Binary combination choices.
#[derive(Debug, Clone, Copy)]
enum Binary {
    Add,
    Sub,
    Mul,
    Matmul,
}

fn apply_unary(op: Unary, x: &Tensor) -> Tensor {
    match op {
        Unary::Tanh => ops::tanh(x),
        Unary::Sigmoid => ops::sigmoid(x),
        Unary::LeakyRelu => ops::leaky_relu(x),
        Unary::Scale => ops::scale(x, 0.7),
        Unary::Softmax => ops::softmax(x),
    }
}

fn apply_binary(op: Binary, a: &Tensor, b: &Tensor) -> Tensor {
    match op {
        Binary::Add => ops::add(a, b),
        Binary::Sub => ops::sub(a, b),
        Binary::Mul => ops::mul(a, b),
        Binary::Matmul => ops::matmul(a, b), // both are [n, n]
    }
}

fn arb_unary() -> impl Strategy<Value = Unary> {
    prop_oneof![
        Just(Unary::Tanh),
        Just(Unary::Sigmoid),
        Just(Unary::LeakyRelu),
        Just(Unary::Scale),
        Just(Unary::Softmax),
    ]
}

fn arb_binary() -> impl Strategy<Value = Binary> {
    prop_oneof![Just(Binary::Add), Just(Binary::Sub), Just(Binary::Mul), Just(Binary::Matmul)]
}

/// Build a random graph over two square-matrix leaves and return its scalar
/// output.
fn build(unaries: &[Unary], binaries: &[Binary], leaves: &[Tensor]) -> Tensor {
    let mut a = leaves[0].clone();
    let mut b = leaves[1].clone();
    for (i, &u) in unaries.iter().enumerate() {
        if i % 2 == 0 {
            a = apply_unary(u, &a);
        } else {
            b = apply_unary(u, &b);
        }
    }
    let mut out = a;
    for &op in binaries {
        out = apply_binary(op, &out, &b);
    }
    ops::sum_all(&out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_graphs_pass_gradcheck(
        vals_a in prop::collection::vec(-1.5f32..1.5, 9),
        vals_b in prop::collection::vec(-1.5f32..1.5, 9),
        unaries in prop::collection::vec(arb_unary(), 0..4),
        binaries in prop::collection::vec(arb_binary(), 1..4),
    ) {
        let a = Tensor::param(vals_a, &[3, 3]);
        let b = Tensor::param(vals_b, &[3, 3]);
        let leaves = [a, b];

        // Analytic gradients.
        let loss = build(&unaries, &binaries, &leaves);
        for l in &leaves {
            l.zero_grad();
        }
        loss.backward();
        let analytic: Vec<Vec<f32>> =
            leaves.iter().map(|l| l.grad().unwrap_or_else(|| vec![0.0; 9])).collect();

        // Central differences (skip points near the LeakyReLU kink).
        let eps = 1e-2f32;
        for (ti, t) in leaves.iter().enumerate() {
            for (j, &got) in analytic[ti].iter().enumerate() {
                let orig = t.data()[j];
                if unaries.iter().any(|u| matches!(u, Unary::LeakyRelu)) && orig.abs() < 5.0 * eps {
                    continue;
                }
                t.data_mut()[j] = orig + eps;
                let up = build(&unaries, &binaries, &leaves).item();
                t.data_mut()[j] = orig - eps;
                let down = build(&unaries, &binaries, &leaves).item();
                t.data_mut()[j] = orig;
                let numeric = (up - down) / (2.0 * eps);
                let denom = numeric.abs().max(got.abs()).max(1.0);
                prop_assert!(
                    (numeric - got).abs() / denom < 0.05,
                    "leaf {ti} elem {j}: numeric {numeric} vs analytic {got} (ops {unaries:?} {binaries:?})"
                );
            }
        }
    }
}
