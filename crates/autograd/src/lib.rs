//! # tmn-autograd
//!
//! A small dense-`f32` tensor library with reverse-mode automatic
//! differentiation, plus the neural-network layers (Linear, LSTM, MLP) and
//! optimizers (Adam, SGD) that the TMN reproduction trains with.
//!
//! The paper trains its models in PyTorch on a GPU; this crate is the Rust
//! substitute substrate. It supports exactly the op set the TMN model family
//! needs — batched matmul, masked softmax for cross-trajectory attention,
//! time-axis gather/scatter for sequence models — implemented with an
//! eagerly evaluated, dynamically recorded computation graph.
//!
//! ## Example
//!
//! ```
//! use tmn_autograd::{ops, Tensor};
//! use tmn_autograd::nn::ParamSet;
//! use tmn_autograd::optim::Adam;
//!
//! // Fit w to minimize (3w - 6)^2.
//! let mut params = ParamSet::new();
//! let w = params.register("w", Tensor::param(vec![0.0], &[1]));
//! let mut opt = Adam::new(&params, 0.1);
//! for _ in 0..200 {
//!     let pred = ops::scale(&w, 3.0);
//!     let err = ops::add_scalar(&pred, -6.0);
//!     let loss = ops::sum_all(&ops::mul(&err, &err));
//!     params.zero_grad();
//!     loss.backward();
//!     opt.step(&params);
//! }
//! assert!((w.to_vec()[0] - 2.0).abs() < 1e-2);
//! ```

pub mod infer;
pub mod kernels;
pub mod nn;
pub mod ops;
pub mod optim;
mod profile;
pub mod simd;
mod tensor;
pub mod threading;

pub use profile::INSTRUMENTED_OPS;
pub use tensor::{grad_buffer_allocs, grad_enabled, no_grad, nodes_created, BackCtx, Tensor};
pub use threading::{intra_op_threads, set_intra_op_threads};
