//! First-order optimizers operating on a [`crate::nn::ParamSet`].

use crate::nn::ParamSet;
use crate::Tensor;

/// Clip gradients to a maximum global L2 norm; returns the pre-clip norm.
pub fn clip_grad_norm(params: &ParamSet, max_norm: f32) -> f32 {
    let _prof = tmn_obs::profiler::phase("optim.clip_grad_norm");
    let norm = params.grad_norm();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for t in params.tensors() {
            if let Some(g) = t.grad() {
                let scaled: Vec<f32> = g.iter().map(|v| v * scale).collect();
                t.zero_grad();
                t.accumulate_grad(&scaled);
            }
        }
    }
    norm
}

/// Plain SGD with optional momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    pub fn new(params: &ParamSet, lr: f32, momentum: f32) -> Sgd {
        let velocity = params.tensors().map(|t| vec![0.0; t.numel()]).collect();
        Sgd { lr, momentum, velocity }
    }

    pub fn step(&mut self, params: &ParamSet) {
        for (t, v) in params.tensors().zip(&mut self.velocity) {
            let Some(g) = t.grad() else { continue };
            let mut data = t.data_mut();
            for i in 0..data.len() {
                v[i] = self.momentum * v[i] + g[i];
                data[i] -= self.lr * v[i];
            }
        }
    }
}

/// Adam (Kingma & Ba), the optimizer the paper uses (Section V-A4).
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Default betas (0.9, 0.999) and eps 1e-8.
    pub fn new(params: &ParamSet, lr: f32) -> Adam {
        Adam::with_config(params, lr, 0.9, 0.999, 1e-8)
    }

    pub fn with_config(params: &ParamSet, lr: f32, beta1: f32, beta2: f32, eps: f32) -> Adam {
        let m = params.tensors().map(|t| vec![0.0; t.numel()]).collect();
        let v = params.tensors().map(|t| vec![0.0; t.numel()]).collect();
        Adam { lr, beta1, beta2, eps, t: 0, m, v }
    }

    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Apply one update; parameters without gradients are skipped.
    pub fn step(&mut self, params: &ParamSet) {
        let _prof = tmn_obs::profiler::phase("optim.adam_step");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((tensor, m), v) in params.tensors().zip(&mut self.m).zip(&mut self.v) {
            let Some(g) = tensor.grad() else { continue };
            let mut data = tensor.data_mut();
            for i in 0..data.len() {
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g[i];
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g[i] * g[i];
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                data[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

/// Zero-grad + backward + clip + step in one call; returns (loss, grad norm).
pub fn train_step(params: &ParamSet, optimizer: &mut Adam, loss: &Tensor, clip: f32) -> (f32, f32) {
    params.zero_grad();
    loss.backward();
    let norm = clip_grad_norm(params, clip);
    optimizer.step(params);
    (loss.item(), norm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ops, Tensor};

    fn quadratic_setup() -> (ParamSet, Tensor) {
        let mut ps = ParamSet::new();
        let x = ps.register("x", Tensor::param(vec![5.0, -3.0], &[2]));
        (ps, x)
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let (ps, x) = quadratic_setup();
        let mut opt = Adam::new(&ps, 0.1);
        for _ in 0..300 {
            let loss = ops::sum_all(&ops::mul(&x, &x));
            ps.zero_grad();
            loss.backward();
            opt.step(&ps);
        }
        assert!(x.to_vec().iter().all(|v| v.abs() < 1e-2), "x = {:?}", x.to_vec());
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let (ps, x) = quadratic_setup();
        let mut opt = Sgd::new(&ps, 0.1, 0.9);
        for _ in 0..200 {
            let loss = ops::sum_all(&ops::mul(&x, &x));
            ps.zero_grad();
            loss.backward();
            opt.step(&ps);
        }
        assert!(x.to_vec().iter().all(|v| v.abs() < 1e-2));
    }

    #[test]
    fn clip_limits_norm() {
        let (ps, x) = quadratic_setup();
        let loss = ops::sum_all(&ops::mul(&x, &x));
        loss.backward();
        // grad = 2x = [10, -6]; norm = sqrt(136) ≈ 11.66
        let pre = clip_grad_norm(&ps, 1.0);
        assert!((pre - 136.0f32.sqrt()).abs() < 1e-3);
        assert!((ps.grad_norm() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn clip_noop_when_below_threshold() {
        let (ps, x) = quadratic_setup();
        ops::sum_all(&ops::mul(&x, &x)).backward();
        let before = ps.grad_norm();
        clip_grad_norm(&ps, 1e9);
        assert_eq!(ps.grad_norm(), before);
    }

    #[test]
    fn train_step_reports_loss() {
        let (ps, x) = quadratic_setup();
        let mut opt = Adam::new(&ps, 0.05);
        let loss = ops::sum_all(&ops::mul(&x, &x));
        let (l, n) = train_step(&ps, &mut opt, &loss, 100.0);
        assert!((l - 34.0).abs() < 1e-4);
        assert!(n > 0.0);
    }
}
