//! First-order optimizers operating on a [`crate::nn::ParamSet`].

use crate::nn::ParamSet;
use crate::Tensor;

/// Clip gradients to a maximum global L2 norm; returns the pre-clip norm.
pub fn clip_grad_norm(params: &ParamSet, max_norm: f32) -> f32 {
    let _prof = tmn_obs::profiler::phase("optim.clip_grad_norm");
    let norm = params.grad_norm();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for t in params.tensors() {
            if let Some(g) = t.grad() {
                let scaled: Vec<f32> = g.iter().map(|v| v * scale).collect();
                t.zero_grad();
                t.accumulate_grad(&scaled);
            }
        }
    }
    norm
}

/// Plain SGD with optional momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    pub fn new(params: &ParamSet, lr: f32, momentum: f32) -> Sgd {
        let velocity = params.tensors().map(|t| vec![0.0; t.numel()]).collect();
        Sgd { lr, momentum, velocity }
    }

    pub fn step(&mut self, params: &ParamSet) {
        for (t, v) in params.tensors().zip(&mut self.velocity) {
            let Some(g) = t.grad() else { continue };
            let mut data = t.data_mut();
            for i in 0..data.len() {
                v[i] = self.momentum * v[i] + g[i];
                data[i] -= self.lr * v[i];
            }
        }
    }
}

/// A portable snapshot of an [`Adam`] optimizer: hyperparameters, step
/// count, and both moment buffers. Everything needed to continue training
/// bit-identically after a checkpoint/restore cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamState {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    /// Steps taken so far (drives bias correction).
    pub t: u64,
    /// First-moment buffers, one per parameter in registration order.
    pub m: Vec<Vec<f32>>,
    /// Second-moment buffers, one per parameter in registration order.
    pub v: Vec<Vec<f32>>,
}

/// Why an [`Adam::restore_state`] was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptimStateError {
    /// The snapshot covers a different number of parameters.
    BufferCount { expected: usize, found: usize },
    /// One moment buffer has the wrong length (parameter shape changed).
    BufferLen { index: usize, expected: usize, found: usize },
}

impl std::fmt::Display for OptimStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptimStateError::BufferCount { expected, found } => {
                write!(f, "optimizer state covers {found} parameters, model has {expected}")
            }
            OptimStateError::BufferLen { index, expected, found } => {
                write!(f, "moment buffer {index} has {found} scalars, parameter has {expected}")
            }
        }
    }
}

impl std::error::Error for OptimStateError {}

/// Adam (Kingma & Ba), the optimizer the paper uses (Section V-A4).
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Default betas (0.9, 0.999) and eps 1e-8.
    pub fn new(params: &ParamSet, lr: f32) -> Adam {
        Adam::with_config(params, lr, 0.9, 0.999, 1e-8)
    }

    pub fn with_config(params: &ParamSet, lr: f32, beta1: f32, beta2: f32, eps: f32) -> Adam {
        let m = params.tensors().map(|t| vec![0.0; t.numel()]).collect();
        let v = params.tensors().map(|t| vec![0.0; t.numel()]).collect();
        Adam { lr, beta1, beta2, eps, t: 0, m, v }
    }

    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Copy out the full optimizer state (hyperparameters, step count, both
    /// moment buffers) for checkpointing.
    pub fn state_snapshot(&self) -> AdamState {
        AdamState {
            lr: self.lr,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
            t: self.t,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Restore a state captured with [`Adam::state_snapshot`]. The buffer
    /// layout must match the optimizer's parameters exactly; on mismatch the
    /// optimizer is left untouched and an error is returned.
    pub fn restore_state(&mut self, state: &AdamState) -> Result<(), OptimStateError> {
        if state.m.len() != self.m.len() || state.v.len() != self.v.len() {
            return Err(OptimStateError::BufferCount {
                expected: self.m.len(),
                found: state.m.len().max(state.v.len()),
            });
        }
        for (i, (ours, theirs)) in self.m.iter().zip(&state.m).enumerate() {
            if ours.len() != theirs.len() {
                return Err(OptimStateError::BufferLen {
                    index: i,
                    expected: ours.len(),
                    found: theirs.len(),
                });
            }
        }
        for (i, (ours, theirs)) in self.v.iter().zip(&state.v).enumerate() {
            if ours.len() != theirs.len() {
                return Err(OptimStateError::BufferLen {
                    index: i,
                    expected: ours.len(),
                    found: theirs.len(),
                });
            }
        }
        self.lr = state.lr;
        self.beta1 = state.beta1;
        self.beta2 = state.beta2;
        self.eps = state.eps;
        self.t = state.t;
        self.m.clone_from(&state.m);
        self.v.clone_from(&state.v);
        Ok(())
    }

    /// Apply one update; parameters without gradients are skipped.
    pub fn step(&mut self, params: &ParamSet) {
        let _prof = tmn_obs::profiler::phase("optim.adam_step");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((tensor, m), v) in params.tensors().zip(&mut self.m).zip(&mut self.v) {
            let Some(g) = tensor.grad() else { continue };
            let mut data = tensor.data_mut();
            for i in 0..data.len() {
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g[i];
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g[i] * g[i];
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                data[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

/// Zero-grad + backward + clip + step in one call; returns (loss, grad norm).
pub fn train_step(params: &ParamSet, optimizer: &mut Adam, loss: &Tensor, clip: f32) -> (f32, f32) {
    params.zero_grad();
    loss.backward();
    let norm = clip_grad_norm(params, clip);
    optimizer.step(params);
    (loss.item(), norm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ops, Tensor};

    fn quadratic_setup() -> (ParamSet, Tensor) {
        let mut ps = ParamSet::new();
        let x = ps.register("x", Tensor::param(vec![5.0, -3.0], &[2]));
        (ps, x)
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let (ps, x) = quadratic_setup();
        let mut opt = Adam::new(&ps, 0.1);
        for _ in 0..300 {
            let loss = ops::sum_all(&ops::mul(&x, &x));
            ps.zero_grad();
            loss.backward();
            opt.step(&ps);
        }
        assert!(x.to_vec().iter().all(|v| v.abs() < 1e-2), "x = {:?}", x.to_vec());
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let (ps, x) = quadratic_setup();
        let mut opt = Sgd::new(&ps, 0.1, 0.9);
        for _ in 0..200 {
            let loss = ops::sum_all(&ops::mul(&x, &x));
            ps.zero_grad();
            loss.backward();
            opt.step(&ps);
        }
        assert!(x.to_vec().iter().all(|v| v.abs() < 1e-2));
    }

    #[test]
    fn clip_limits_norm() {
        let (ps, x) = quadratic_setup();
        let loss = ops::sum_all(&ops::mul(&x, &x));
        loss.backward();
        // grad = 2x = [10, -6]; norm = sqrt(136) ≈ 11.66
        let pre = clip_grad_norm(&ps, 1.0);
        assert!((pre - 136.0f32.sqrt()).abs() < 1e-3);
        assert!((ps.grad_norm() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn clip_noop_when_below_threshold() {
        let (ps, x) = quadratic_setup();
        ops::sum_all(&ops::mul(&x, &x)).backward();
        let before = ps.grad_norm();
        clip_grad_norm(&ps, 1e9);
        assert_eq!(ps.grad_norm(), before);
    }

    #[test]
    fn adam_state_roundtrip_is_bit_identical() {
        // Two optimizers: run A for 50 steps, snapshot, run A and a restored
        // B for 50 more — weights must agree bit for bit.
        let run = |resume_at: Option<u64>| -> Vec<u32> {
            let (ps, x) = quadratic_setup();
            let mut opt = Adam::new(&ps, 0.1);
            let mut stash: Option<AdamState> = None;
            for step in 0..100u64 {
                if Some(step) == resume_at {
                    // Swap in a freshly built optimizer restored from the
                    // snapshot taken right now.
                    let snap = opt.state_snapshot();
                    let mut fresh = Adam::new(&ps, 99.0);
                    fresh.restore_state(&snap).unwrap();
                    opt = fresh;
                    stash = Some(snap);
                }
                let loss = ops::sum_all(&ops::mul(&x, &x));
                ps.zero_grad();
                loss.backward();
                opt.step(&ps);
            }
            if let Some(s) = stash {
                assert_eq!(s.t, resume_at.unwrap());
            }
            x.to_vec().iter().map(|v| v.to_bits()).collect()
        };
        assert_eq!(run(None), run(Some(50)), "restored Adam diverged from uninterrupted run");
    }

    #[test]
    fn adam_restore_rejects_mismatched_buffers() {
        let (ps, _x) = quadratic_setup();
        let mut opt = Adam::new(&ps, 0.1);
        let mut bad = opt.state_snapshot();
        bad.m.push(vec![0.0; 3]);
        assert!(matches!(
            opt.restore_state(&bad),
            Err(OptimStateError::BufferCount { expected: 1, found: 2 })
        ));
        let mut bad_len = opt.state_snapshot();
        bad_len.v[0] = vec![0.0; 7];
        assert!(matches!(
            opt.restore_state(&bad_len),
            Err(OptimStateError::BufferLen { index: 0, expected: 2, found: 7 })
        ));
        // A failed restore leaves the optimizer usable.
        assert_eq!(opt.state_snapshot().t, 0);
    }

    #[test]
    fn train_step_reports_loss() {
        let (ps, x) = quadratic_setup();
        let mut opt = Adam::new(&ps, 0.05);
        let loss = ops::sum_all(&ops::mul(&x, &x));
        let (l, n) = train_step(&ps, &mut opt, &loss, 100.0);
        assert!((l - 34.0).abs() < 1e-4);
        assert!(n > 0.0);
    }
}
