//! Intra-op worker threads for batched kernels.
//!
//! `Tensor` is deliberately `!Send` (its graph nodes are `Rc`-shared), so
//! parallelism inside an op never moves tensors across threads: batch items
//! are raw `f32` slices with disjoint `chunks_mut` outputs, fanned out over
//! `std::thread::scope` workers. Each batch item is computed by exactly one
//! worker with the same kernel as the serial path, so results are bitwise
//! identical at any thread count.
//!
//! The knob is thread-local (default 1) so data-parallel *training* workers
//! — which already saturate the machine one replica per thread — don't
//! oversubscribe by also fanning out their matmuls.

use std::cell::Cell;

thread_local! {
    static INTRA_OP_THREADS: Cell<usize> = const { Cell::new(1) };
}

/// Set how many worker threads batched ops (`bmm_nn`, `bmm_nt`) may use on
/// the *current* thread. 0 and 1 both mean "run serially".
pub fn set_intra_op_threads(n: usize) {
    INTRA_OP_THREADS.with(|c| c.set(n.max(1)));
}

/// The current thread's intra-op worker budget.
pub fn intra_op_threads() -> usize {
    INTRA_OP_THREADS.with(|c| c.get())
}

/// Minimum total multiply-adds before fanning a batch out to threads; below
/// this the spawn/join overhead dwarfs the work.
const MIN_PAR_FLOPS: usize = 256 * 1024;

/// Run `f(i, chunk)` on every `item`-sized chunk of `out` (batch item `i`),
/// using up to the configured intra-op thread count when `flops_per_item`
/// times the batch size is worth the spawn cost.
///
/// Chunks are assigned round-robin; a given item is always computed whole by
/// one worker, so output bits do not depend on the thread count.
pub(crate) fn par_batch<F>(out: &mut [f32], item: usize, flops_per_item: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if item == 0 || out.is_empty() {
        return;
    }
    let batch = out.len() / item;
    let threads = intra_op_threads().min(batch);
    if threads <= 1 || flops_per_item * batch < MIN_PAR_FLOPS {
        for (i, chunk) in out.chunks_mut(item).enumerate() {
            f(i, chunk);
        }
        return;
    }
    std::thread::scope(|s| {
        let f = &f;
        let mut parts: Vec<Vec<(usize, &mut [f32])>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, chunk) in out.chunks_mut(item).enumerate() {
            parts[i % threads].push((i, chunk));
        }
        for part in parts {
            s.spawn(move || {
                for (i, chunk) in part {
                    f(i, chunk);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_roundtrip_and_floor() {
        set_intra_op_threads(4);
        assert_eq!(intra_op_threads(), 4);
        set_intra_op_threads(0);
        assert_eq!(intra_op_threads(), 1);
        set_intra_op_threads(1);
    }

    #[test]
    fn par_batch_visits_every_item_once() {
        set_intra_op_threads(3);
        let mut out = vec![0.0f32; 12 * 5];
        // Force the parallel path by claiming huge per-item work.
        par_batch(&mut out, 5, usize::MAX / 64, |i, chunk| {
            for v in chunk.iter_mut() {
                *v += (i + 1) as f32;
            }
        });
        for (i, chunk) in out.chunks(5).enumerate() {
            assert!(chunk.iter().all(|&v| v == (i + 1) as f32), "item {i}: {chunk:?}");
        }
        set_intra_op_threads(1);
    }

    #[test]
    fn small_batches_stay_serial_but_correct() {
        set_intra_op_threads(8);
        let mut out = vec![0.0f32; 4];
        par_batch(&mut out, 2, 1, |i, chunk| chunk.fill(i as f32));
        assert_eq!(out, vec![0.0, 0.0, 1.0, 1.0]);
        set_intra_op_threads(1);
    }
}
