//! Tape-free inference fast path: forward-only kernels over plain
//! `Vec<f32>` buffers.
//!
//! Serving only needs the forward pass, yet the graphed path pays for every
//! query what only training needs: one `Rc` graph node per op, a boxed
//! backward closure, and a fresh output allocation each. This module
//! re-implements the model forwards with **zero tensor construction**
//! (`crate::nodes_created` is constant across a call) and **bounded buffer
//! allocation** (a thread-local scratch pool; after warmup a whole
//! `embed_nograd` call performs at most the one output allocation).
//!
//! ## Numerical contract
//!
//! Every kernel here reproduces its graphed counterpart *bitwise*:
//!
//! - GEMMs go through the same [`crate::kernels`] entry points (same
//!   dispatch, same blocking, same accumulation order);
//! - the recurrent cells call the same shared elementwise step functions as
//!   `ops::{lstm_cell_fused, gru_cell_fused}`;
//! - the masked softmax reuses the graphed op's row kernel;
//! - elementwise code copies the graphed ops' exact expressions (operation
//!   order included).
//!
//! `tests/infer_vs_train_forward.rs` holds the line.
//!
//! ## Buffer reuse contract
//!
//! Intermediates are rented from a thread-local pool with [`take`] and must
//! be returned with [`recycle`]; only a function's *final* result may be a
//! fresh allocation. Pool buffers are zero-filled on rental, so kernels can
//! rely on `+=`-style accumulation. The pool keeps at most
//! [`POOL_MAX_BUFFERS`] buffers; steady-state inference allocates nothing.

use crate::kernels::{mm_nn, mm_nt};
use crate::ops::{gru_step_elementwise, lstm_step_elementwise, softmax_row};
use std::cell::RefCell;

/// Upper bound on pooled buffers per thread (bounds idle memory, not
/// correctness — overflow buffers are simply dropped).
const POOL_MAX_BUFFERS: usize = 24;

thread_local! {
    static POOL: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// Rent a zero-filled buffer of length `n` from the thread-local pool.
///
/// Prefers the smallest pooled buffer whose capacity already fits `n`, so
/// repeated calls with the same working set converge to zero allocations.
pub fn take(n: usize) -> Vec<f32> {
    let mut buf = POOL.with(|p| {
        let free = &mut *p.borrow_mut();
        let best = free
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= n)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i)
            // Nothing fits: grow the largest buffer instead of a cold alloc.
            .or_else(|| {
                free.iter().enumerate().max_by_key(|(_, b)| b.capacity()).map(|(i, _)| i)
            });
        match best {
            Some(i) => free.swap_remove(i),
            None => Vec::new(),
        }
    });
    buf.clear();
    buf.resize(n, 0.0);
    buf
}

/// Return a rented buffer to the pool.
pub fn recycle(buf: Vec<f32>) {
    POOL.with(|p| {
        let free = &mut *p.borrow_mut();
        if free.len() < POOL_MAX_BUFFERS {
            free.push(buf);
        }
    });
}

/// `x · w + bias` for `rows` rows: the no-grad `nn::Linear` forward.
/// `w` is `[d_in, d_out]` row-major, `bias` is `[d_out]`.
pub fn linear(x: &[f32], rows: usize, d_in: usize, d_out: usize, w: &[f32], bias: &[f32]) -> Vec<f32> {
    debug_assert!(x.len() >= rows * d_in && w.len() == d_in * d_out && bias.len() == d_out);
    let mut out = take(rows * d_out);
    mm_nn(x, w, rows, d_in, d_out, &mut out);
    for row in out.chunks_exact_mut(d_out) {
        for (o, &bv) in row.iter_mut().zip(bias) {
            *o += bv;
        }
    }
    out
}

/// In-place LeakyReLU with the graphed op's slope (0.1).
pub fn leaky_relu_inplace(xs: &mut [f32]) {
    const SLOPE: f32 = 0.1;
    for x in xs {
        *x = if *x >= 0.0 { *x } else { SLOPE * *x };
    }
}

/// Per-layer weight views for the fused LSTM sequence kernels.
pub struct LstmWeights<'a> {
    /// `[d_in, 4h]` input projection.
    pub w_ih: &'a [f32],
    /// `[h, 4h]` recurrent projection.
    pub w_hh: &'a [f32],
    /// `[4h]` gate bias.
    pub bias: &'a [f32],
}

/// Weight views for the fused GRU sequence kernel.
pub struct GruWeights<'a> {
    /// `[d_in, 2h]` input projection for `[r | z]`.
    pub w_ih: &'a [f32],
    /// `[h, 2h]` recurrent projection for `[r | z]`.
    pub w_hh: &'a [f32],
    /// `[2h]` gate bias.
    pub bias: &'a [f32],
    /// `[d_in, h]` input projection for `n`.
    pub w_in: &'a [f32],
    /// `[h, h]` recurrent projection for `n`.
    pub w_hn: &'a [f32],
    /// `[h]` `n`-gate bias.
    pub bias_n: &'a [f32],
}

/// Time-major gate pre-projection (`ops::rnn_gate_preproject` without the
/// node): rent `[T·B, G]` seeded with the broadcast bias, accumulate
/// `xt · w` on top. `xs` is `[B, m, d_in]` batch-major.
fn preproject(xs: &[f32], bs: usize, m: usize, d_in: usize, w: &[f32], bias: &[f32], g: usize) -> Vec<f32> {
    let mut xt = take(m * bs * d_in);
    for b in 0..bs {
        for t in 0..m {
            let src = (b * m + t) * d_in;
            let dst = (t * bs + b) * d_in;
            xt[dst..dst + d_in].copy_from_slice(&xs[src..src + d_in]);
        }
    }
    let mut pre = take(m * bs * g);
    for row in pre.chunks_exact_mut(g) {
        row.copy_from_slice(bias);
    }
    mm_nn(&xt, w, m * bs, d_in, g, &mut pre);
    recycle(xt);
    pre
}

/// Extract the first `take_cols` columns of each `[B, s]` row into `dst`
/// (the fused cells' `pack_cols`, writing into a rented buffer).
fn pack_cols_into(src: &[f32], bs: usize, s: usize, take_cols: usize, dst: &mut [f32]) {
    for b in 0..bs {
        dst[b * take_cols..(b + 1) * take_cols].copy_from_slice(&src[b * s..b * s + take_cols]);
    }
}

/// No-grad LSTM over a full sequence: `[B, m, d_in]` → `[B, m, h]`
/// (rented buffer — recycle it). Matches `nn::Lstm::forward_seq` bitwise.
pub fn lstm_seq(xs: &[f32], bs: usize, m: usize, d_in: usize, h: usize, w: &LstmWeights<'_>) -> Vec<f32> {
    let pre = preproject(xs, bs, m, d_in, w.w_ih, w.bias, 4 * h);
    // State carries the full [B, 7h] stash layout like the graphed cell; at
    // t = 0 its [h | c] columns are the zero initial state.
    let mut state = take(bs * 7 * h);
    let mut hp = take(bs * h);
    let mut cp = take(bs * h);
    let mut z = take(bs * 4 * h);
    let mut out = take(bs * m * h);
    for t in 0..m {
        pack_cols_into(&state, bs, 7 * h, h, &mut hp);
        for b in 0..bs {
            cp[b * h..(b + 1) * h].copy_from_slice(&state[b * 7 * h + h..b * 7 * h + 2 * h]);
        }
        z.copy_from_slice(&pre[t * bs * 4 * h..(t + 1) * bs * 4 * h]);
        mm_nn(&hp, w.w_hh, bs, h, 4 * h, &mut z);
        lstm_step_elementwise(&z, &cp, bs, h, &mut state);
        for b in 0..bs {
            out[(b * m + t) * h..(b * m + t + 1) * h].copy_from_slice(&state[b * 7 * h..b * 7 * h + h]);
        }
    }
    recycle(pre);
    recycle(state);
    recycle(hp);
    recycle(cp);
    recycle(z);
    out
}

/// No-grad GRU over a full sequence: `[B, m, d_in]` → `[B, m, h]`
/// (rented buffer). Matches `nn::Gru::forward_seq` bitwise.
pub fn gru_seq(xs: &[f32], bs: usize, m: usize, d_in: usize, h: usize, w: &GruWeights<'_>) -> Vec<f32> {
    let pre_rz = preproject(xs, bs, m, d_in, w.w_ih, w.bias, 2 * h);
    let pre_n = preproject(xs, bs, m, d_in, w.w_in, w.bias_n, h);
    let mut state = take(bs * 5 * h);
    let mut hp = take(bs * h);
    let mut zr = take(bs * 2 * h);
    let mut q = take(bs * h);
    let mut out = take(bs * m * h);
    for t in 0..m {
        pack_cols_into(&state, bs, 5 * h, h, &mut hp);
        zr.copy_from_slice(&pre_rz[t * bs * 2 * h..(t + 1) * bs * 2 * h]);
        mm_nn(&hp, w.w_hh, bs, h, 2 * h, &mut zr);
        q.fill(0.0);
        mm_nn(&hp, w.w_hn, bs, h, h, &mut q);
        let pn_t = &pre_n[t * bs * h..(t + 1) * bs * h];
        gru_step_elementwise(&zr, &q, pn_t, &hp, bs, h, &mut state);
        for b in 0..bs {
            out[(b * m + t) * h..(b * m + t + 1) * h].copy_from_slice(&state[b * 5 * h..b * 5 * h + h]);
        }
    }
    recycle(pre_rz);
    recycle(pre_n);
    recycle(state);
    recycle(hp);
    recycle(zr);
    recycle(q);
    out
}

/// No-grad bidirectional LSTM: forward pass on `xs`, backward pass on the
/// time-reversed sequence, hidden states concatenated per step →
/// `[B, m, 2h]` (rented buffer). Matches `nn::BiLstm::forward_seq` bitwise.
pub fn bilstm_seq(
    xs: &[f32],
    bs: usize,
    m: usize,
    d_in: usize,
    h: usize,
    fwd: &LstmWeights<'_>,
    bwd: &LstmWeights<'_>,
) -> Vec<f32> {
    let f_out = lstm_seq(xs, bs, m, d_in, h, fwd);
    let xr = reverse_time(xs, bs, m, d_in);
    let b_out = lstm_seq(&xr, bs, m, d_in, h, bwd);
    recycle(xr);
    let mut out = take(bs * m * 2 * h);
    for b in 0..bs {
        for t in 0..m {
            let dst = (b * m + t) * 2 * h;
            out[dst..dst + h].copy_from_slice(&f_out[(b * m + t) * h..(b * m + t + 1) * h]);
            // The backward direction's step t is the reversed sequence's
            // step m-1-t (the graphed path's outer `reverse_time`).
            let src = (b * m + (m - 1 - t)) * h;
            out[dst + h..dst + 2 * h].copy_from_slice(&b_out[src..src + h]);
        }
    }
    recycle(f_out);
    recycle(b_out);
    out
}

/// Resumable recurrent state for the **streaming** inference path: one
/// live (bs = 1) sequence whose points arrive one at a time.
///
/// Appending a point costs exactly one gate-preprojection row plus one
/// fused-cell elementwise step — and, because [`mm_nn`]'s dispatch is
/// row-stable (`kernels::ROW_STABLE_MIN_KN`), the hidden state after `N`
/// appends is **bitwise equal** to running [`lstm_seq`] / [`gru_seq`] /
/// [`bilstm_seq`] over the full `N`-point sequence.
///
/// The state owns its stash buffer (it outlives any single call and
/// travels across threads); per-step scratch still comes from the pool, so
/// a warm step allocates nothing.
pub enum RnnStream {
    Lstm(LstmStream),
    Gru(GruStream),
    BiLstm(BiLstmStream),
}

impl RnnStream {
    /// Number of points stepped into this stream so far.
    pub fn len(&self) -> usize {
        match self {
            RnnStream::Lstm(s) => s.steps,
            RnnStream::Gru(s) => s.steps,
            RnnStream::BiLstm(s) => s.fwd.steps,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Streaming LSTM state: the `[7h]` fused-cell stash
/// (`[h | c | i | f | g | o | tanh(c)]`), zero-initialized like
/// [`lstm_seq`]'s `t = 0` state.
pub struct LstmStream {
    stash: Vec<f32>,
    h: usize,
    steps: usize,
}

impl LstmStream {
    pub fn new(h: usize) -> LstmStream {
        LstmStream { stash: vec![0.0; 7 * h], h, steps: 0 }
    }

    /// The current hidden state `[h]` (all zeros before the first step).
    pub fn hidden(&self) -> &[f32] {
        &self.stash[..self.h]
    }
}

/// Streaming GRU state: the `[5h]` fused-cell stash
/// (`[h | r | z | n | q]`).
pub struct GruStream {
    stash: Vec<f32>,
    h: usize,
    steps: usize,
}

impl GruStream {
    pub fn new(h: usize) -> GruStream {
        GruStream { stash: vec![0.0; 5 * h], h, steps: 0 }
    }

    pub fn hidden(&self) -> &[f32] {
        &self.stash[..self.h]
    }
}

/// Streaming BiLstm state. Only the forward direction carries incremental
/// state; see [`bilstm_stream_step`] for the backward-direction contract.
pub struct BiLstmStream {
    fwd: LstmStream,
}

impl BiLstmStream {
    pub fn new(h: usize) -> BiLstmStream {
        BiLstmStream { fwd: LstmStream::new(h) }
    }
}

/// One fused LSTM cell step over a caller-owned `[7h]` stash: mirrors one
/// iteration of [`lstm_seq`]'s loop at `bs = 1` (same kernels, same op
/// order, bitwise). Writes the new hidden row into `out` (`[h]`).
fn lstm_cell_step(stash: &mut [f32], x: &[f32], d_in: usize, h: usize, w: &LstmWeights<'_>, out: &mut [f32]) {
    debug_assert!(x.len() == d_in && stash.len() == 7 * h && out.len() == h);
    let mut hp = take(h);
    let mut cp = take(h);
    let mut z = take(4 * h);
    hp.copy_from_slice(&stash[..h]);
    cp.copy_from_slice(&stash[h..2 * h]);
    // z = bias + x·w_ih: the streaming slice of `preproject` (row-stable
    // GEMM ⇒ bitwise equal to row t of the full [T·B, 4h] pre-projection).
    z.copy_from_slice(w.bias);
    mm_nn(x, w.w_ih, 1, d_in, 4 * h, &mut z);
    mm_nn(&hp, w.w_hh, 1, h, 4 * h, &mut z);
    lstm_step_elementwise(&z, &cp, 1, h, stash);
    out.copy_from_slice(&stash[..h]);
    recycle(hp);
    recycle(cp);
    recycle(z);
}

/// Advance a streaming LSTM by one input row `x` (`[d_in]`); writes the new
/// hidden state into `out` (`[h]`). After `N` calls, `out` is bitwise equal
/// to the last row of [`lstm_seq`] over the same `N` inputs.
pub fn lstm_stream_step(s: &mut LstmStream, x: &[f32], d_in: usize, w: &LstmWeights<'_>, out: &mut [f32]) {
    let h = s.h;
    lstm_cell_step(&mut s.stash, x, d_in, h, w, out);
    s.steps += 1;
}

/// Advance a streaming GRU by one input row; bitwise contract as
/// [`lstm_stream_step`], mirroring [`gru_seq`]'s loop at `bs = 1`.
pub fn gru_stream_step(s: &mut GruStream, x: &[f32], d_in: usize, w: &GruWeights<'_>, out: &mut [f32]) {
    let h = s.h;
    debug_assert!(x.len() == d_in && out.len() == h);
    let mut hp = take(h);
    hp.copy_from_slice(&s.stash[..h]);
    let mut zr = take(2 * h);
    zr.copy_from_slice(w.bias);
    mm_nn(x, w.w_ih, 1, d_in, 2 * h, &mut zr);
    mm_nn(&hp, w.w_hh, 1, h, 2 * h, &mut zr);
    let mut q = take(h); // zero-filled rental = gru_seq's q.fill(0.0)
    mm_nn(&hp, w.w_hn, 1, h, h, &mut q);
    let mut pn = take(h);
    pn.copy_from_slice(w.bias_n);
    mm_nn(x, w.w_in, 1, d_in, h, &mut pn);
    gru_step_elementwise(&zr, &q, &pn, &hp, 1, h, &mut s.stash);
    out.copy_from_slice(&s.stash[..h]);
    recycle(hp);
    recycle(zr);
    recycle(q);
    recycle(pn);
    s.steps += 1;
}

/// Advance a streaming BiLstm by one input row; writes the **newest output
/// row** `[2h]` (forward ⊕ backward halves).
///
/// The forward half steps incrementally. The backward half of the newest
/// row is, by construction, the backward LSTM's *first* step over the
/// time-reversed sequence — one cell step on `x` from zero state, so the
/// newest row is still O(1) per append. Backward halves of **earlier**
/// rows see the future and change on every append; they are not maintained
/// here — a caller needing the full `[m, 2h]` matrix must re-run
/// [`bilstm_seq`] over the stored inputs (the documented O(m) re-scan).
pub fn bilstm_stream_step(
    s: &mut BiLstmStream,
    x: &[f32],
    d_in: usize,
    fwd: &LstmWeights<'_>,
    bwd: &LstmWeights<'_>,
    out: &mut [f32],
) {
    let h = s.fwd.h;
    debug_assert_eq!(out.len(), 2 * h);
    lstm_stream_step(&mut s.fwd, x, d_in, fwd, &mut out[..h]);
    // Fresh zero stash from the pool: the backward direction's step 0.
    let mut bstash = take(7 * h);
    lstm_cell_step(&mut bstash, x, d_in, h, bwd, &mut out[h..]);
    recycle(bstash);
}

/// `out[b, t, :] = xs[b, m-1-t, :]` (rented buffer).
pub fn reverse_time(xs: &[f32], bs: usize, m: usize, d: usize) -> Vec<f32> {
    let mut out = take(bs * m * d);
    for b in 0..bs {
        for t in 0..m {
            let src = (b * m + (m - 1 - t)) * d;
            let dst = (b * m + t) * d;
            out[dst..dst + d].copy_from_slice(&xs[src..src + d]);
        }
    }
    out
}

/// Batched `out[i] = a[i] · b[i]ᵀ`: `[B, ma, d] × [B, mb, d]` → `[B, ma, mb]`
/// (rented buffer).
pub fn bmm_nt(a: &[f32], b: &[f32], bs: usize, ma: usize, d: usize, mb: usize) -> Vec<f32> {
    let mut out = take(bs * ma * mb);
    for i in 0..bs {
        mm_nt(
            &a[i * ma * d..(i + 1) * ma * d],
            &b[i * mb * d..(i + 1) * mb * d],
            ma,
            d,
            mb,
            &mut out[i * ma * mb..(i + 1) * ma * mb],
        );
    }
    out
}

/// Batched `out[i] = a[i] · b[i]`: `[B, ma, k] × [B, k, n]` → `[B, ma, n]`
/// (rented buffer).
pub fn bmm_nn(a: &[f32], b: &[f32], bs: usize, ma: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = take(bs * ma * n);
    for i in 0..bs {
        mm_nn(
            &a[i * ma * k..(i + 1) * ma * k],
            &b[i * k * n..(i + 1) * k * n],
            ma,
            k,
            n,
            &mut out[i * ma * n..(i + 1) * ma * n],
        );
    }
    out
}

/// Row-wise masked softmax over `scores` `[B, q, k]` with `key_mask`
/// `[B, k]`, in place — the graphed `ops::masked_softmax` forward (shared
/// row kernel).
pub fn masked_softmax_inplace(scores: &mut [f32], key_mask: &[f32], bs: usize, q: usize, k: usize) {
    for b in 0..bs {
        let mrow = &key_mask[b * k..(b + 1) * k];
        for i in 0..q {
            let row = &mut scores[(b * q + i) * k..(b * q + i + 1) * k];
            softmax_row(row, |j| mrow[j] != 0.0);
        }
    }
}

/// Zero every `[inner]`-row of `xs` `[B, m, inner]` whose mask entry is 0
/// (the graphed `ops::mul_mask_rows` forward).
pub fn mask_rows_inplace(xs: &mut [f32], mask: &[f32], bs: usize, m: usize, inner: usize) {
    for (row, &mv) in xs.chunks_exact_mut(inner).zip(mask).take(bs * m) {
        if mv == 0.0 {
            row.fill(0.0);
        }
    }
}

/// Per-row concatenation along the last dim: `[rows, da] ⊕ [rows, db]` →
/// `[rows, da+db]` (rented buffer). The graphed `ops::concat_last`.
pub fn concat_cols(a: &[f32], b: &[f32], rows: usize, da: usize, db: usize) -> Vec<f32> {
    let mut out = take(rows * (da + db));
    let dc = da + db;
    for r in 0..rows {
        out[r * dc..r * dc + da].copy_from_slice(&a[r * da..(r + 1) * da]);
        out[r * dc + da..(r + 1) * dc].copy_from_slice(&b[r * db..(r + 1) * db]);
    }
    out
}

/// TMN's cross-trajectory matching matrix (`core::models::tmn`), no-grad:
/// softmax-attend `x_q` over `x_k` (keys masked), subtract the attended
/// summary from `x_q`, zero padded query rows. All `[B, m, dh]`; masks are
/// `[B, m]`. Returns a rented buffer.
pub fn matching_matrix(
    x_q: &[f32],
    x_k: &[f32],
    q_mask: &[f32],
    k_mask: &[f32],
    bs: usize,
    m: usize,
    dh: usize,
) -> Vec<f32> {
    let mut scores = bmm_nt(x_q, x_k, bs, m, dh, m);
    masked_softmax_inplace(&mut scores, k_mask, bs, m, m);
    let mut s = bmm_nn(&scores, x_k, bs, m, m, dh);
    recycle(scores);
    for (sv, &qv) in s.iter_mut().zip(x_q) {
        *sv = qv - *sv;
    }
    mask_rows_inplace(&mut s, q_mask, bs, m, dh);
    s
}

/// Gather each sequence's last valid step: `[B, m, d]` + per-batch index →
/// `[B, d]`. This is the one **fresh** allocation of an `embed_nograd`
/// call — everything upstream lives in the pool.
pub fn gather_last(seq: &[f32], bs: usize, m: usize, d: usize, last_idx: &[usize]) -> Vec<f32> {
    debug_assert_eq!(last_idx.len(), bs);
    let mut out = Vec::with_capacity(bs * d);
    for (b, &t) in last_idx.iter().enumerate() {
        debug_assert!(t < m);
        out.extend_from_slice(&seq[(b * m + t) * d..(b * m + t + 1) * d]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_reuses_buffers() {
        // Drain then repopulate: the second take of the same size must not
        // grow capacity beyond the first round's.
        let a = take(1000);
        let cap_a = a.capacity();
        recycle(a);
        let b = take(1000);
        assert!(b.capacity() >= 1000 && b.capacity() == cap_a, "pool must hand back the buffer");
        assert!(b.iter().all(|&v| v == 0.0), "rented buffers are zeroed");
        recycle(b);
    }

    #[test]
    fn take_prefers_tightest_fit() {
        recycle(Vec::with_capacity(4096));
        recycle(Vec::with_capacity(64));
        let b = take(60);
        assert!(b.capacity() < 4096, "should pick the 64-cap buffer, not the 4096 one");
        recycle(b);
    }

    #[test]
    fn linear_applies_bias_per_row() {
        // x = [[1, 0], [0, 2]], w = [[1, 2], [3, 4]], bias = [10, 20].
        let out = linear(&[1.0, 0.0, 0.0, 2.0], 2, 2, 2, &[1.0, 2.0, 3.0, 4.0], &[10.0, 20.0]);
        assert_eq!(out, vec![11.0, 22.0, 16.0, 28.0]);
        recycle(out);
    }

    #[test]
    fn concat_and_reverse_layouts() {
        let a = [1.0, 2.0, 3.0, 4.0]; // [2, 2]
        let b = [9.0, 8.0]; // [2, 1]
        let cat = concat_cols(&a, &b, 2, 2, 1);
        assert_eq!(cat, vec![1.0, 2.0, 9.0, 3.0, 4.0, 8.0]);
        recycle(cat);
        // [1, 3, 1]: reversing swaps the time rows.
        let r = reverse_time(&[1.0, 2.0, 3.0], 1, 3, 1);
        assert_eq!(r, vec![3.0, 2.0, 1.0]);
        recycle(r);
    }

    #[test]
    fn masked_softmax_zeroes_invalid_and_normalizes() {
        let mut scores = vec![0.0, 0.0, 5.0, 1.0, 1.0, 1.0]; // [1, 2, 3]
        let mask = [1.0, 1.0, 0.0];
        masked_softmax_inplace(&mut scores, &mask, 1, 2, 3);
        assert_eq!(scores[2], 0.0);
        assert_eq!(scores[5], 0.0);
        assert!((scores[0] + scores[1] - 1.0).abs() < 1e-6);
        assert!((scores[3] + scores[4] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gather_last_picks_per_batch_rows() {
        // [2, 2, 2]: batch 0 takes step 1, batch 1 takes step 0.
        let seq = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        assert_eq!(gather_last(&seq, 2, 2, 2, &[1, 0]), vec![3.0, 4.0, 5.0, 6.0]);
    }
}
