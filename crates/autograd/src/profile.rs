//! Bridge between tensor ops and the `tmn-obs` profiler.
//!
//! Every primitive op opens an [`op_scope`] at its entry: the scope times the
//! forward computation (including graph-node construction) and, through a
//! thread-local, tags the op's output node so [`crate::Tensor::backward`] can
//! attribute the matching backward closure to the same name.
//!
//! Only *primitive* ops (one `Tensor::from_op` call) may be instrumented —
//! composite helpers like `mean_all` are already covered by their children,
//! and nesting scopes would double-count time.
//!
//! When the profiler is disabled the entire mechanism is one relaxed atomic
//! load per op and `None` everywhere else; numerics are untouched either way.

use std::cell::Cell;
use tmn_obs::profiler;

/// Every op name that may open an [`op_scope`], i.e. every primitive op with
/// a registered FLOP estimator (0 is a valid estimate for pure data-movement
/// ops). `profile --check` asserts that each forward/backward record in a
/// snapshot carries one of these names, so an op added without updating this
/// list fails CI instead of silently reporting bogus FLOP rates.
/// Kept sorted for the membership `binary_search` in [`op_scope`]'s
/// debug assertion.
pub const INSTRUMENTED_OPS: &[&str] = &[
    "add",
    "add_bias",
    "add_scalar",
    "bmm_nn",
    "bmm_nt",
    "collect_states",
    "concat_last",
    "exp",
    "gather_time",
    "gru_cell_fused",
    "leaky_relu",
    "lstm_cell_fused",
    "masked_softmax",
    "matmul",
    "mul",
    "mul_mask_rows",
    "mul_scalar_tensor",
    "qerror",
    "reshape",
    "reverse_time",
    "rnn_gate_preproject",
    "scale",
    "select_time",
    "sigmoid",
    "slice_last",
    "slice_rows",
    "softmax",
    "sqrt_eps",
    "stack_time",
    "sub",
    "sum_all",
    "sum_last",
    "tanh",
    "tile_rows",
];

thread_local! {
    /// The op scope currently open on this thread, read by
    /// `Tensor::from_op` for backward attribution. Only ever `Some` while
    /// the profiler is enabled.
    static CURRENT_OP: Cell<Option<(&'static str, u64)>> = const { Cell::new(None) };
}

/// Forward-op measurement; restores the previous thread-local tag on drop,
/// then records into the registry.
pub(crate) struct OpScope {
    prev: Option<(&'static str, u64)>,
    _inner: profiler::Scope,
}

impl Drop for OpScope {
    fn drop(&mut self) {
        CURRENT_OP.with(|c| c.set(self.prev));
    }
}

/// Open a forward scope for op `name` with the given FLOP estimate.
/// Returns `None` (cost: one atomic load) when profiling is disabled.
#[inline]
pub(crate) fn op_scope(name: &'static str, flops: u64) -> Option<OpScope> {
    debug_assert!(
        INSTRUMENTED_OPS.binary_search(&name).is_ok() || name.starts_with("prof."),
        "op '{name}' opens a scope but is not listed in INSTRUMENTED_OPS"
    );
    let inner = profiler::scope(name, flops)?;
    let prev = CURRENT_OP.with(|c| c.replace(Some((name, flops))));
    Some(OpScope { prev, _inner: inner })
}

/// The `(name, flops)` of the op scope open on this thread, if any.
#[inline]
pub(crate) fn current_op() -> Option<(&'static str, u64)> {
    CURRENT_OP.with(|c| c.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_tags_current_op_and_restores() {
        profiler::set_enabled(true);
        assert_eq!(current_op(), None);
        {
            let _outer = op_scope("prof.outer", 10);
            assert_eq!(current_op(), Some(("prof.outer", 10)));
            {
                let _inner = op_scope("prof.inner", 5);
                assert_eq!(current_op(), Some(("prof.inner", 5)));
            }
            assert_eq!(current_op(), Some(("prof.outer", 10)));
        }
        assert_eq!(current_op(), None);
        profiler::set_enabled(false);
    }

    #[test]
    fn instrumented_ops_sorted_and_unique() {
        // binary_search in op_scope's debug assertion requires sorted order.
        assert!(INSTRUMENTED_OPS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn disabled_scope_is_free_and_untagged() {
        profiler::set_enabled(false);
        let s = op_scope("prof.disabled", 1);
        assert!(s.is_none());
        assert_eq!(current_op(), None);
    }
}
