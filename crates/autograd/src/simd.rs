//! Runtime-dispatched explicit SIMD for the hot kernels.
//!
//! Two code paths exist for the GEMM microkernel and the fused-cell
//! elementwise blocks (sigmoid/tanh gate math):
//!
//! - an AVX2+FMA path written with `std::arch` intrinsics, selected once per
//!   process via `is_x86_feature_detected!`;
//! - the portable scalar path, used on every other host (and on x86 CPUs
//!   without AVX2).
//!
//! The activation kernels are **bitwise identical** across the two paths by
//! construction: both evaluate the same polynomial `exp` with fused
//! multiply-adds (`f32::mul_add` scalar-side, `_mm256_fmadd_ps` vector-side
//! — both single-rounding per IEEE-754), the same floor-based range
//! reduction, and the same correctly-rounded divisions. Only the GEMM
//! differs between dispatches (a wider register tile changes the dot-product
//! summation tree), which is why the differential suites compare GEMM
//! results to a tolerance but may compare activations exactly.
//!
//! [`force_scalar`] is a *thread-local* override so parity tests can pit the
//! two paths against each other without perturbing concurrently running
//! tests in the same binary.

use std::cell::Cell;

/// Which kernel family [`active`] resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// `std::arch` AVX2+FMA kernels (x86-64 only, detected at runtime).
    Avx2Fma,
    /// Portable scalar kernels.
    Scalar,
}

#[cfg(target_arch = "x86_64")]
fn detect() -> Dispatch {
    use std::sync::atomic::{AtomicU8, Ordering};
    // 0 = undetected, 1 = scalar, 2 = avx2+fma.
    static DETECTED: AtomicU8 = AtomicU8::new(0);
    match DETECTED.load(Ordering::Relaxed) {
        1 => Dispatch::Scalar,
        2 => Dispatch::Avx2Fma,
        _ => {
            let d = if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                Dispatch::Avx2Fma
            } else {
                Dispatch::Scalar
            };
            DETECTED.store(if d == Dispatch::Avx2Fma { 2 } else { 1 }, Ordering::Relaxed);
            d
        }
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> Dispatch {
    Dispatch::Scalar
}

thread_local! {
    static FORCE_SCALAR: Cell<bool> = const { Cell::new(false) };
}

/// Force the scalar kernels on the *current thread* (parity tests). The
/// override nests poorly on purpose — callers flip it back when done.
pub fn force_scalar(on: bool) {
    FORCE_SCALAR.with(|f| f.set(on));
}

/// The kernel family in effect for this thread: the one-time CPU detection,
/// unless [`force_scalar`] is on.
pub fn active() -> Dispatch {
    if FORCE_SCALAR.with(|f| f.get()) {
        Dispatch::Scalar
    } else {
        detect()
    }
}

/// Short name of the active dispatch, for bench reports (`avx2` / `scalar`).
pub fn dispatch_name() -> &'static str {
    match active() {
        Dispatch::Avx2Fma => "avx2",
        Dispatch::Scalar => "scalar",
    }
}

// ---------------------------------------------------------------------------
// Polynomial exp and the activations built on it.
// ---------------------------------------------------------------------------

/// Input clamp keeping the 2^n bit-scale in range (exp(-87) is already 0 in
/// f32 after the downstream 1/(1+e) division).
const EXP_LO: f32 = -87.0;
const EXP_HI: f32 = 88.0;
const LOG2E: f32 = std::f32::consts::LOG2_E;
/// ln 2 split hi/lo for two-part Cody–Waite range reduction. The hi part is
/// written out to its exactly-representable value (0x3f318000) on purpose.
#[allow(clippy::excessive_precision)]
const LN2_HI: f32 = 0.693_359_375;
const LN2_LO: f32 = -2.121_944_4e-4;
/// Degree-5 minimax coefficients for exp(r) on |r| <= ln2/2 (Cephes).
const EXP_P0: f32 = 1.987_569_2e-4;
const EXP_P1: f32 = 1.398_199_9e-3;
const EXP_P2: f32 = 8.333_452e-3;
const EXP_P3: f32 = 4.166_579_6e-2;
const EXP_P4: f32 = 1.666_666_6e-1;
const EXP_P5: f32 = 5.000_000_3e-1;

/// Polynomial `exp(x)` (~1 ulp of the libm result over the clamped range).
/// Every operation has a single IEEE rounding, so the AVX2 lane code below
/// reproduces this bit-for-bit.
#[inline]
fn exp_scalar(x: f32) -> f32 {
    let x = x.clamp(EXP_LO, EXP_HI);
    let n = (x * LOG2E + 0.5).floor();
    let r = (x - n * LN2_HI) - n * LN2_LO;
    let p = EXP_P0;
    let p = p.mul_add(r, EXP_P1);
    let p = p.mul_add(r, EXP_P2);
    let p = p.mul_add(r, EXP_P3);
    let p = p.mul_add(r, EXP_P4);
    let p = p.mul_add(r, EXP_P5);
    let p = (p * r).mul_add(r, r) + 1.0;
    let scale = f32::from_bits((((n as i32) + 127) << 23) as u32);
    p * scale
}

#[inline]
fn sigmoid_scalar(x: f32) -> f32 {
    1.0 / (1.0 + exp_scalar(-x))
}

#[inline]
fn tanh_scalar(x: f32) -> f32 {
    2.0 / (1.0 + exp_scalar(-2.0 * x)) - 1.0
}

/// `x := σ(x)` over a slice, SIMD-dispatched.
pub fn sigmoid_inplace(xs: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if active() == Dispatch::Avx2Fma {
        // SAFETY: dispatch confirmed avx2+fma on this CPU.
        unsafe { avx2::sigmoid_inplace(xs) };
        return;
    }
    for x in xs {
        *x = sigmoid_scalar(*x);
    }
}

/// `x := tanh(x)` over a slice, SIMD-dispatched.
pub fn tanh_inplace(xs: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if active() == Dispatch::Avx2Fma {
        // SAFETY: dispatch confirmed avx2+fma on this CPU.
        unsafe { avx2::tanh_inplace(xs) };
        return;
    }
    for x in xs {
        *x = tanh_scalar(*x);
    }
}

// ---------------------------------------------------------------------------
// AVX2+FMA kernels.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2 {
    use super::*;
    use std::arch::x86_64::*;

    /// One lane-parallel step of [`exp_scalar`] — same constants, same
    /// operation order, fused multiply-adds in the same places.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn exp_ps(x: __m256) -> __m256 {
        let x = _mm256_max_ps(_mm256_set1_ps(EXP_LO), _mm256_min_ps(_mm256_set1_ps(EXP_HI), x));
        // n = floor(x·log2e + 0.5) via mul+add (not fma) to match the
        // scalar rounding exactly.
        let n = _mm256_floor_ps(_mm256_add_ps(
            _mm256_mul_ps(x, _mm256_set1_ps(LOG2E)),
            _mm256_set1_ps(0.5),
        ));
        // r = (x − n·ln2_hi) − n·ln2_lo with plain mul/sub, like the scalar.
        let r = _mm256_sub_ps(
            _mm256_sub_ps(x, _mm256_mul_ps(n, _mm256_set1_ps(LN2_HI))),
            _mm256_mul_ps(n, _mm256_set1_ps(LN2_LO)),
        );
        let p = _mm256_set1_ps(EXP_P0);
        let p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(EXP_P1));
        let p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(EXP_P2));
        let p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(EXP_P3));
        let p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(EXP_P4));
        let p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(EXP_P5));
        let p = _mm256_add_ps(_mm256_fmadd_ps(_mm256_mul_ps(p, r), r, r), _mm256_set1_ps(1.0));
        let scale = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
            _mm256_cvtps_epi32(n),
            _mm256_set1_epi32(127),
        )));
        _mm256_mul_ps(p, scale)
    }

    /// IEEE negation (`0 - x`), mirroring the scalar unary `-`.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn sub_zero(x: __m256) -> __m256 {
        _mm256_sub_ps(_mm256_setzero_ps(), x)
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn sigmoid_inplace(xs: &mut [f32]) {
        let one = _mm256_set1_ps(1.0);
        let mut chunks = xs.chunks_exact_mut(8);
        for c in &mut chunks {
            let v = _mm256_loadu_ps(c.as_ptr());
            let e = exp_ps(sub_zero(v));
            _mm256_storeu_ps(c.as_mut_ptr(), _mm256_div_ps(one, _mm256_add_ps(one, e)));
        }
        for x in chunks.into_remainder() {
            *x = sigmoid_scalar(*x);
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn tanh_inplace(xs: &mut [f32]) {
        let one = _mm256_set1_ps(1.0);
        let two = _mm256_set1_ps(2.0);
        let mut chunks = xs.chunks_exact_mut(8);
        for c in &mut chunks {
            let v = _mm256_loadu_ps(c.as_ptr());
            let e = exp_ps(sub_zero(_mm256_mul_ps(two, v)));
            let s = _mm256_div_ps(two, _mm256_add_ps(one, e));
            _mm256_storeu_ps(c.as_mut_ptr(), _mm256_sub_ps(s, one));
        }
        for x in chunks.into_remainder() {
            *x = tanh_scalar(*x);
        }
    }

    /// AVX2 register tile: 6 rows × 16 columns (two ymm per row, 12 ymm
    /// accumulators + 2 B loads + 1 broadcast stay within the 16 registers).
    pub const MR: usize = 6;
    pub const NR: usize = 16;

    /// `acc[6][16] += Ap·Bp` over one packed `kc`-deep panel pair; safe
    /// wrapper asserting the panel extents (the caller's dispatch proved
    /// avx2+fma).
    pub fn microkernel(ap: &[f32], bp: &[f32], kc: usize, acc: &mut [[f32; NR]; MR]) {
        assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
        // SAFETY: bounds asserted above; this path is only selected when the
        // one-time feature detection reported avx2+fma.
        unsafe { microkernel_impl(ap.as_ptr(), bp.as_ptr(), kc, acc) }
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn microkernel_impl(
        ap: *const f32,
        bp: *const f32,
        kc: usize,
        acc: &mut [[f32; NR]; MR],
    ) {
        let mut c = [[_mm256_setzero_ps(); 2]; MR];
        for kk in 0..kc {
            let b0 = _mm256_loadu_ps(bp.add(kk * NR));
            let b1 = _mm256_loadu_ps(bp.add(kk * NR + 8));
            for (i, ci) in c.iter_mut().enumerate() {
                let a = _mm256_broadcast_ss(&*ap.add(kk * MR + i));
                ci[0] = _mm256_fmadd_ps(a, b0, ci[0]);
                ci[1] = _mm256_fmadd_ps(a, b1, ci[1]);
            }
        }
        for (row, ci) in acc.iter_mut().zip(&c) {
            let lo = _mm256_add_ps(_mm256_loadu_ps(row.as_ptr()), ci[0]);
            let hi = _mm256_add_ps(_mm256_loadu_ps(row.as_ptr().add(8)), ci[1]);
            _mm256_storeu_ps(row.as_mut_ptr(), lo);
            _mm256_storeu_ps(row.as_mut_ptr().add(8), hi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poly_exp_tracks_libm() {
        for i in -870..=870 {
            let x = i as f32 * 0.1;
            let got = exp_scalar(x);
            let want = x.exp();
            let rel = (got - want).abs() / want.max(f32::MIN_POSITIVE);
            assert!(rel < 3e-7, "exp({x}): {got} vs {want} (rel {rel})");
        }
    }

    #[test]
    fn activations_track_libm() {
        for i in -400..=400 {
            let x = i as f32 * 0.05;
            let s = sigmoid_scalar(x);
            let t = tanh_scalar(x);
            assert!((s - 1.0 / (1.0 + (-x).exp())).abs() < 1e-6, "sigmoid({x}) = {s}");
            assert!((t - x.tanh()).abs() < 1e-6, "tanh({x}) = {t}");
        }
    }

    #[test]
    fn saturated_tails_are_exact() {
        // Deep saturation: σ(-100) underflows to a subnormal, σ(100) rounds
        // to exactly 1; tanh saturates to ±1 exactly.
        let mut v = [-100.0f32, 100.0];
        sigmoid_inplace(&mut v);
        assert!(v[0] >= 0.0 && v[0] < 1e-30, "σ(-100) = {}", v[0]);
        assert_eq!(v[1], 1.0);
        let mut v = [-50.0f32, 50.0];
        tanh_inplace(&mut v);
        assert_eq!(v, [-1.0, 1.0]);
    }

    #[test]
    fn dispatch_paths_agree_bitwise() {
        // 67 exercises both the 8-lane body and the scalar remainder.
        let src: Vec<f32> = (0..67).map(|i| (i as f32 - 33.0) * 0.37).collect();
        let mut fast = src.clone();
        sigmoid_inplace(&mut fast);
        let mut slow = src.clone();
        force_scalar(true);
        sigmoid_inplace(&mut slow);
        force_scalar(false);
        assert_eq!(fast, slow, "sigmoid must be dispatch-invariant");

        let mut fast = src.clone();
        tanh_inplace(&mut fast);
        let mut slow = src;
        force_scalar(true);
        tanh_inplace(&mut slow);
        force_scalar(false);
        assert_eq!(fast, slow, "tanh must be dispatch-invariant");
    }
}
