//! Dense `f32` tensor with reverse-mode automatic differentiation.
//!
//! Tensors are reference-counted nodes in a dynamically built computation
//! graph. Every operation records its parents and a backward closure; calling
//! [`Tensor::backward`] on a scalar output propagates gradients to every
//! reachable leaf created with [`Tensor::param`].
//!
//! The engine is deliberately small: it supports exactly the shapes and
//! operations the TMN model family needs (rank 1–3, batched matmul, masked
//! softmax, time-step gather/scatter). It is single-threaded; for parallel
//! inference, snapshot weights per thread (see `nn::ParamSet::snapshot`).

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

thread_local! {
    static NEXT_ID: Cell<u64> = const { Cell::new(0) };
    static GRAD_ENABLED: Cell<bool> = const { Cell::new(true) };
    static GRAD_BUFFER_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// How many gradient accumulation buffers this thread has allocated.
///
/// Scatter-style backwards (`select_time`, `gather_time`, ...) write straight
/// into the node's pooled buffer via [`Tensor::accumulate_grad_with`], so a
/// node costs exactly one allocation no matter how many backward closures
/// feed it. The counter exists for allocation-regression tests.
pub fn grad_buffer_allocs() -> u64 {
    GRAD_BUFFER_ALLOCS.with(|c| c.get())
}

fn fresh_id() -> u64 {
    NEXT_ID.with(|c| {
        let id = c.get();
        c.set(id + 1);
        id
    })
}

/// Total tensors (graph nodes, including pruned no-grad outputs) created on
/// this thread so far. A delta of zero across a region proves the region
/// performed *no* tensor allocation at all — the contract the `infer`
/// fast path is tested against.
pub fn nodes_created() -> u64 {
    NEXT_ID.with(|c| c.get())
}

/// Run `f` with gradient recording disabled on this thread.
///
/// Operations executed inside build no graph: outputs are plain value
/// tensors, which makes inference cheaper and lets long evaluation loops run
/// without accumulating graph memory.
pub fn no_grad<R>(f: impl FnOnce() -> R) -> R {
    let prev = GRAD_ENABLED.with(|c| c.replace(false));
    let out = f();
    GRAD_ENABLED.with(|c| c.set(prev));
    out
}

/// Whether operations on this thread currently record the autograd graph.
pub fn grad_enabled() -> bool {
    GRAD_ENABLED.with(|c| c.get())
}

/// Context handed to an operation's backward closure.
pub struct BackCtx<'a> {
    /// Gradient of the loss with respect to this node's output.
    pub out_grad: &'a [f32],
    /// The node's forward output values (useful for e.g. sigmoid/tanh).
    pub out_data: &'a [f32],
    /// The parent tensors, in the order given at construction.
    pub parents: &'a [Tensor],
}

type BackFn = Box<dyn Fn(&BackCtx<'_>)>;

struct Inner {
    id: u64,
    shape: Vec<usize>,
    data: RefCell<Vec<f32>>,
    grad: RefCell<Option<Vec<f32>>>,
    requires_grad: bool,
    parents: Vec<Tensor>,
    backward: Option<BackFn>,
    /// `(op name, forward FLOP estimate)` captured from the profiler's
    /// thread-local when this node was built inside an instrumented op.
    /// Used only to attribute backward time; `None` whenever profiling is
    /// off, so the hot path is untouched.
    op: Option<(&'static str, u64)>,
}

/// A reference-counted dense `f32` tensor participating in autograd.
///
/// Cloning a `Tensor` is cheap (it clones the `Rc`); the underlying buffer is
/// shared. Shapes are immutable after construction.
#[derive(Clone)]
pub struct Tensor {
    inner: Rc<Inner>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tensor")
            .field("id", &self.inner.id)
            .field("shape", &self.inner.shape)
            .field("requires_grad", &self.inner.requires_grad)
            .finish()
    }
}

impl Tensor {
    fn new_inner(
        shape: Vec<usize>,
        data: Vec<f32>,
        requires_grad: bool,
        parents: Vec<Tensor>,
        backward: Option<BackFn>,
        op: Option<(&'static str, u64)>,
    ) -> Tensor {
        let numel: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            numel,
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor {
            inner: Rc::new(Inner {
                id: fresh_id(),
                shape,
                data: RefCell::new(data),
                grad: RefCell::new(None),
                requires_grad,
                parents,
                backward,
                op,
            }),
        }
    }

    /// A constant (non-trainable) tensor.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Tensor {
        Tensor::new_inner(shape.to_vec(), data, false, Vec::new(), None, None)
    }

    /// A scalar constant of shape `[1]`.
    pub fn scalar(v: f32) -> Tensor {
        Tensor::from_vec(vec![v], &[1])
    }

    /// A zero-filled constant tensor.
    pub fn zeros(shape: &[usize]) -> Tensor {
        Tensor::from_vec(vec![0.0; shape.iter().product()], shape)
    }

    /// A trainable leaf parameter. Gradients accumulate into it on
    /// [`Tensor::backward`].
    pub fn param(data: Vec<f32>, shape: &[usize]) -> Tensor {
        Tensor::new_inner(shape.to_vec(), data, true, Vec::new(), None, None)
    }

    /// Construct an op output node.
    ///
    /// If gradient recording is enabled and any parent requires a gradient,
    /// the node keeps its parents and backward closure; otherwise the graph
    /// edge is pruned and the output is a plain value.
    pub fn from_op(
        shape: &[usize],
        data: Vec<f32>,
        parents: Vec<Tensor>,
        backward: BackFn,
    ) -> Tensor {
        let track = grad_enabled() && parents.iter().any(|p| p.inner.requires_grad);
        if track {
            let op = crate::profile::current_op();
            Tensor::new_inner(shape.to_vec(), data, true, parents, Some(backward), op)
        } else {
            Tensor::new_inner(shape.to_vec(), data, false, Vec::new(), None, None)
        }
    }

    /// Unique node id (stable for the life of the tensor).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.inner.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.inner.shape.iter().product()
    }

    /// Whether this node participates in gradient computation.
    pub fn requires_grad(&self) -> bool {
        self.inner.requires_grad
    }

    /// True if this is a leaf node (no recorded parents).
    pub fn is_leaf(&self) -> bool {
        self.inner.parents.is_empty()
    }

    /// Copy of the underlying data.
    pub fn to_vec(&self) -> Vec<f32> {
        self.inner.data.borrow().clone()
    }

    /// The single value of a `[1]`-shaped tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() requires a scalar tensor");
        self.inner.data.borrow()[0]
    }

    /// Borrow the raw data. Panics if the data is mutably borrowed.
    pub fn data(&self) -> std::cell::Ref<'_, Vec<f32>> {
        self.inner.data.borrow()
    }

    /// Mutably borrow the raw data (used by optimizers on leaf parameters).
    pub fn data_mut(&self) -> std::cell::RefMut<'_, Vec<f32>> {
        self.inner.data.borrow_mut()
    }

    /// Copy of the accumulated gradient, if any.
    pub fn grad(&self) -> Option<Vec<f32>> {
        self.inner.grad.borrow().clone()
    }

    /// Clear the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.inner.grad.borrow_mut() = None;
    }

    /// Accumulate `g` into this node's gradient buffer.
    pub fn accumulate_grad(&self, g: &[f32]) {
        assert_eq!(g.len(), self.numel(), "gradient shape mismatch");
        let mut slot = self.inner.grad.borrow_mut();
        match slot.as_mut() {
            Some(acc) => {
                for (a, gi) in acc.iter_mut().zip(g) {
                    *a += gi;
                }
            }
            None => {
                GRAD_BUFFER_ALLOCS.with(|c| c.set(c.get() + 1));
                *slot = Some(g.to_vec());
            }
        }
    }

    /// Accumulate into this node's gradient through direct writes.
    ///
    /// `f` receives the full-length accumulation buffer (zero-filled on first
    /// use, otherwise holding already-accumulated gradient) and must *add*
    /// its contribution in place. This is the pooled-buffer path for
    /// scatter-style backwards: a `select_time` gradient touches `d` of
    /// `B·m·d` elements, and writing those `d` elements straight into the
    /// pool replaces allocating and zeroing a full-size temporary per call.
    pub fn accumulate_grad_with(&self, f: impl FnOnce(&mut [f32])) {
        let mut slot = self.inner.grad.borrow_mut();
        let buf = slot.get_or_insert_with(|| {
            GRAD_BUFFER_ALLOCS.with(|c| c.set(c.get() + 1));
            vec![0.0f32; self.numel()]
        });
        f(buf);
    }

    /// A detached copy sharing no graph history (data is cloned).
    pub fn detach(&self) -> Tensor {
        Tensor::from_vec(self.to_vec(), self.shape())
    }

    /// Run reverse-mode differentiation from this scalar node.
    ///
    /// Gradients accumulate into every reachable node with
    /// `requires_grad == true` (notably leaves made via [`Tensor::param`]).
    /// Call [`Tensor::zero_grad`] (or an optimizer's `zero_grad`) between
    /// steps to reset them.
    pub fn backward(&self) {
        assert_eq!(
            self.numel(),
            1,
            "backward() must start from a scalar; got shape {:?}",
            self.shape()
        );
        // Topological order over the recorded graph.
        let order = {
            let _prof = tmn_obs::profiler::phase("autograd.topo_sort");
            self.topo_order()
        };
        self.accumulate_grad(&[1.0]);
        let profiling = tmn_obs::profiler::is_enabled();
        for node in order.iter().rev() {
            let Some(back) = node.inner.backward.as_ref() else {
                continue;
            };
            // Attribute this node's backward pass to the op that built it.
            // A backward step reads and writes roughly twice the data of its
            // forward (out_grad in, parent grads out), hence the 2x estimate.
            let prof = match node.inner.op {
                Some((name, flops)) if profiling => {
                    Some((name, flops, std::time::Instant::now()))
                }
                _ => None,
            };
            {
                let grad = node.inner.grad.borrow().clone();
                let Some(grad) = grad else { continue };
                let data = node.inner.data.borrow();
                let ctx = BackCtx {
                    out_grad: &grad,
                    out_data: &data,
                    parents: &node.inner.parents,
                };
                back(&ctx);
            }
            if let Some((name, flops, start)) = prof {
                tmn_obs::profiler::record(
                    name,
                    tmn_obs::profiler::ScopeKind::Backward,
                    start.elapsed().as_nanos() as u64,
                    flops.saturating_mul(2),
                );
            }
        }
    }

    /// Post-order DFS over parents (iterative to avoid stack overflow on
    /// long LSTM graphs).
    fn topo_order(&self) -> Vec<Tensor> {
        let mut order = Vec::new();
        let mut visited = std::collections::HashSet::new();
        // Stack of (node, children_pushed).
        let mut stack: Vec<(Tensor, bool)> = vec![(self.clone(), false)];
        while let Some((node, expanded)) = stack.pop() {
            if expanded {
                order.push(node);
                continue;
            }
            if !visited.insert(node.inner.id) {
                continue;
            }
            stack.push((node.clone(), true));
            for p in &node.inner.parents {
                if p.inner.requires_grad && !visited.contains(&p.inner.id) {
                    stack.push((p.clone(), false));
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn leaf_construction_and_item() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.numel(), 4);
        assert!(!t.requires_grad());
        assert!(t.is_leaf());
        let s = Tensor::scalar(7.5);
        assert_eq!(s.item(), 7.5);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn shape_mismatch_panics() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn param_requires_grad() {
        let p = Tensor::param(vec![0.0; 4], &[4]);
        assert!(p.requires_grad());
        assert!(p.is_leaf());
    }

    #[test]
    fn grad_accumulates_across_uses() {
        // y = x + x  ==> dy/dx = 2
        let x = Tensor::param(vec![3.0], &[1]);
        let y = ops::add(&x, &x);
        y.backward();
        assert_eq!(x.grad().unwrap(), vec![2.0]);
    }

    #[test]
    fn no_grad_prunes_graph() {
        let x = Tensor::param(vec![2.0], &[1]);
        let y = no_grad(|| ops::mul(&x, &x));
        assert!(!y.requires_grad());
        assert!(y.is_leaf());
        assert_eq!(y.item(), 4.0);
    }

    #[test]
    fn zero_grad_resets() {
        let x = Tensor::param(vec![1.0], &[1]);
        let y = ops::mul(&x, &x);
        y.backward();
        assert!(x.grad().is_some());
        x.zero_grad();
        assert!(x.grad().is_none());
    }

    #[test]
    fn detach_blocks_gradient() {
        let x = Tensor::param(vec![5.0], &[1]);
        let d = x.detach();
        let y = ops::mul(&d, &d);
        assert!(!y.requires_grad());
    }

    #[test]
    fn deep_chain_backward_does_not_overflow() {
        // 3000 chained adds: iterative topo sort must handle this.
        let x = Tensor::param(vec![1.0], &[1]);
        let mut y = ops::add(&x, &x);
        for _ in 0..3000 {
            y = ops::add(&y, &x);
        }
        y.backward();
        assert_eq!(x.grad().unwrap()[0], 3002.0);
    }
}
