//! Step-unrolled reference recurrences, mirroring `kernels::reference`.
//!
//! These are the original per-step graph implementations of the LSTM, GRU,
//! and bidirectional LSTM: one `select_time` gather, per-gate matmuls and
//! `slice_last` splits, and explicit state arithmetic per time step. They
//! are deliberately slow (≈16 graph nodes per step) but arithmetically
//! transparent, and exist solely as the differential-testing oracle for the
//! fused time-major layers in [`crate::nn`] — see
//! `crates/autograd/tests/fused_vs_reference.rs`.
//!
//! Reference layers are built *from existing weight tensors* (usually the
//! fused layer's parameters) so both implementations run the exact same
//! weights; they register nothing and own nothing.

use crate::{ops, Tensor};

/// Step-unrolled LSTM sharing weights with a fused [`crate::nn::Lstm`].
pub struct Lstm {
    w_ih: Tensor, // [d_in, 4h]
    w_hh: Tensor, // [h, 4h]
    bias: Tensor, // [4h]
    input_dim: usize,
    hidden: usize,
}

impl Lstm {
    /// Wrap existing weight tensors (`w_ih: [d_in, 4h]`, `w_hh: [h, 4h]`,
    /// `bias: [4h]`); dims are inferred from the shapes.
    pub fn from_weights(w_ih: &Tensor, w_hh: &Tensor, bias: &Tensor) -> Lstm {
        let input_dim = w_ih.shape()[0];
        let hidden = w_hh.shape()[0];
        assert_eq!(w_ih.shape(), &[input_dim, 4 * hidden], "reference::Lstm: w_ih shape");
        assert_eq!(w_hh.shape(), &[hidden, 4 * hidden], "reference::Lstm: w_hh shape");
        assert_eq!(bias.shape(), &[4 * hidden], "reference::Lstm: bias shape");
        Lstm { w_ih: w_ih.clone(), w_hh: w_hh.clone(), bias: bias.clone(), input_dim, hidden }
    }

    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// The original per-step recurrence over `[B, m, d_in]` → `[B, m, h]`.
    pub fn forward_seq(&self, xs: &Tensor) -> Tensor {
        let s = xs.shape();
        assert_eq!(s.len(), 3, "reference::Lstm: need [B, m, d_in], got {s:?}");
        let (bs, m, d) = (s[0], s[1], s[2]);
        assert_eq!(d, self.input_dim, "reference::Lstm: input dim mismatch");
        let h = self.hidden;
        let mut hidden = Tensor::zeros(&[bs, h]);
        let mut cell = Tensor::zeros(&[bs, h]);
        let mut outs = Vec::with_capacity(m);
        for t in 0..m {
            let x_t = ops::select_time(xs, t);
            let gates = ops::add_bias(
                &ops::add(&ops::matmul(&x_t, &self.w_ih), &ops::matmul(&hidden, &self.w_hh)),
                &self.bias,
            );
            let i = ops::sigmoid(&ops::slice_last(&gates, 0, h));
            let f = ops::sigmoid(&ops::slice_last(&gates, h, h));
            let g = ops::tanh(&ops::slice_last(&gates, 2 * h, h));
            let o = ops::sigmoid(&ops::slice_last(&gates, 3 * h, h));
            cell = ops::add(&ops::mul(&f, &cell), &ops::mul(&i, &g));
            hidden = ops::mul(&o, &ops::tanh(&cell));
            outs.push(hidden.clone());
        }
        ops::stack_time(&outs)
    }
}

/// Step-unrolled GRU sharing weights with a fused [`crate::nn::Gru`].
pub struct Gru {
    w_ih: Tensor,   // [d_in, 2h] -> r, z
    w_hh: Tensor,   // [h, 2h]
    bias: Tensor,   // [2h]
    w_in: Tensor,   // [d_in, h] -> candidate
    w_hn: Tensor,   // [h, h]
    bias_n: Tensor, // [h]
    input_dim: usize,
    hidden: usize,
}

impl Gru {
    /// Wrap existing weight tensors; dims are inferred from the shapes.
    pub fn from_weights(
        w_ih: &Tensor,
        w_hh: &Tensor,
        bias: &Tensor,
        w_in: &Tensor,
        w_hn: &Tensor,
        bias_n: &Tensor,
    ) -> Gru {
        let input_dim = w_ih.shape()[0];
        let hidden = w_hh.shape()[0];
        assert_eq!(w_ih.shape(), &[input_dim, 2 * hidden], "reference::Gru: w_ih shape");
        assert_eq!(w_hh.shape(), &[hidden, 2 * hidden], "reference::Gru: w_hh shape");
        assert_eq!(bias.shape(), &[2 * hidden], "reference::Gru: bias shape");
        assert_eq!(w_in.shape(), &[input_dim, hidden], "reference::Gru: w_in shape");
        assert_eq!(w_hn.shape(), &[hidden, hidden], "reference::Gru: w_hn shape");
        assert_eq!(bias_n.shape(), &[hidden], "reference::Gru: bias_n shape");
        Gru {
            w_ih: w_ih.clone(),
            w_hh: w_hh.clone(),
            bias: bias.clone(),
            w_in: w_in.clone(),
            w_hn: w_hn.clone(),
            bias_n: bias_n.clone(),
            input_dim,
            hidden,
        }
    }

    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// The original per-step recurrence over `[B, m, d_in]` → `[B, m, h]`.
    pub fn forward_seq(&self, xs: &Tensor) -> Tensor {
        let s = xs.shape();
        assert_eq!(s.len(), 3, "reference::Gru: need [B, m, d_in], got {s:?}");
        let (bs, m, d) = (s[0], s[1], s[2]);
        assert_eq!(d, self.input_dim, "reference::Gru: input dim mismatch");
        let h = self.hidden;
        let mut hidden = Tensor::zeros(&[bs, h]);
        let mut outs = Vec::with_capacity(m);
        for t in 0..m {
            let x_t = ops::select_time(xs, t);
            let gates = ops::add_bias(
                &ops::add(&ops::matmul(&x_t, &self.w_ih), &ops::matmul(&hidden, &self.w_hh)),
                &self.bias,
            );
            let r = ops::sigmoid(&ops::slice_last(&gates, 0, h));
            let z = ops::sigmoid(&ops::slice_last(&gates, h, h));
            let n = ops::tanh(&ops::add_bias(
                &ops::add(
                    &ops::matmul(&x_t, &self.w_in),
                    &ops::mul(&r, &ops::matmul(&hidden, &self.w_hn)),
                ),
                &self.bias_n,
            ));
            // h' = (1 - z) ⊙ n + z ⊙ h
            let one_minus_z = ops::add_scalar(&ops::neg(&z), 1.0);
            hidden = ops::add(&ops::mul(&one_minus_z, &n), &ops::mul(&z, &hidden));
            outs.push(hidden.clone());
        }
        ops::stack_time(&outs)
    }
}

/// Step-unrolled bidirectional LSTM over two reference [`Lstm`]s.
pub struct BiLstm {
    forward: Lstm,
    backward: Lstm,
}

impl BiLstm {
    pub fn new(forward: Lstm, backward: Lstm) -> BiLstm {
        assert_eq!(forward.hidden, backward.hidden, "reference::BiLstm: hidden dims differ");
        BiLstm { forward, backward }
    }

    /// `[B, m, d_in]` → `[B, m, 2h]` (forward ++ reversed-backward).
    pub fn forward_seq(&self, xs: &Tensor) -> Tensor {
        let fwd = self.forward.forward_seq(xs);
        let bwd = ops::reverse_time(&self.backward.forward_seq(&ops::reverse_time(xs)));
        ops::concat_last(&fwd, &bwd)
    }
}
