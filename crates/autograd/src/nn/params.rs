//! Named parameter collections: optimizer target, weight snapshot/restore.

use crate::Tensor;

/// An ordered, named collection of trainable leaf tensors.
///
/// Models register every parameter here; optimizers iterate it; snapshots
/// make weights portable across threads (the `Tensor` graph itself is
/// `!Send` by design).
#[derive(Default)]
pub struct ParamSet {
    params: Vec<(String, Tensor)>,
}

impl ParamSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter; returns it for convenient chaining.
    ///
    /// Panics on duplicate names or non-leaf tensors.
    pub fn register(&mut self, name: &str, t: Tensor) -> Tensor {
        assert!(t.requires_grad() && t.is_leaf(), "{name}: parameters must be trainable leaves");
        assert!(
            self.params.iter().all(|(n, _)| n != name),
            "duplicate parameter name: {name}"
        );
        self.params.push((name.to_string(), t.clone()));
        t
    }

    pub fn len(&self) -> usize {
        self.params.len()
    }

    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|(_, t)| t.numel()).sum()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.params.iter().map(|(n, t)| (n.as_str(), t))
    }

    pub fn tensors(&self) -> impl Iterator<Item = &Tensor> {
        self.params.iter().map(|(_, t)| t)
    }

    /// Clear gradients on every parameter.
    pub fn zero_grad(&self) {
        for (_, t) in &self.params {
            t.zero_grad();
        }
    }

    /// Global L2 norm of all gradients (0 if none set).
    pub fn grad_norm(&self) -> f32 {
        let mut acc = 0.0f32;
        for (_, t) in &self.params {
            if let Some(g) = t.grad() {
                acc += g.iter().map(|v| v * v).sum::<f32>();
            }
        }
        acc.sqrt()
    }

    /// Copy out all gradients in registration order; parameters with no
    /// gradient yield zeros. Shape-compatible with [`accumulate_grads`]
    /// (`Self::accumulate_grads`) — together they move gradients between
    /// model replicas for data-parallel training, the same way
    /// [`snapshot`](Self::snapshot)/[`restore`](Self::restore) move weights.
    pub fn grad_snapshot(&self) -> Vec<Vec<f32>> {
        self.params
            .iter()
            .map(|(_, t)| t.grad().unwrap_or_else(|| vec![0.0; t.numel()]))
            .collect()
    }

    /// Add `grads` (one buffer per parameter, registration order) into each
    /// parameter's gradient accumulator.
    pub fn accumulate_grads(&self, grads: &[Vec<f32>]) {
        assert_eq!(grads.len(), self.params.len(), "gradient row count mismatch");
        for ((name, t), g) in self.params.iter().zip(grads) {
            assert_eq!(t.numel(), g.len(), "gradient length mismatch for {name}");
            t.accumulate_grad(g);
        }
    }

    /// Copy out all weights as `(name, shape, data)` rows.
    pub fn snapshot(&self) -> Vec<(String, Vec<usize>, Vec<f32>)> {
        self.params
            .iter()
            .map(|(n, t)| (n.clone(), t.shape().to_vec(), t.to_vec()))
            .collect()
    }

    /// Load weights from a snapshot. Names and shapes must match exactly.
    pub fn restore(&self, snap: &[(String, Vec<usize>, Vec<f32>)]) {
        assert_eq!(snap.len(), self.params.len(), "snapshot size mismatch");
        for ((name, t), (sn, ss, sd)) in self.params.iter().zip(snap) {
            assert_eq!(name, sn, "snapshot parameter order/name mismatch");
            assert_eq!(t.shape(), &ss[..], "snapshot shape mismatch for {name}");
            t.data_mut().copy_from_slice(sd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_count() {
        let mut ps = ParamSet::new();
        ps.register("w", Tensor::param(vec![0.0; 6], &[2, 3]));
        ps.register("b", Tensor::param(vec![0.0; 3], &[3]));
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.num_scalars(), 9);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_name_panics() {
        let mut ps = ParamSet::new();
        ps.register("w", Tensor::param(vec![0.0], &[1]));
        ps.register("w", Tensor::param(vec![0.0], &[1]));
    }

    #[test]
    #[should_panic(expected = "trainable leaves")]
    fn constant_rejected() {
        let mut ps = ParamSet::new();
        ps.register("c", Tensor::from_vec(vec![0.0], &[1]));
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Tensor::param(vec![1.0, 2.0], &[2]));
        let snap = ps.snapshot();
        w.data_mut()[0] = 99.0;
        ps.restore(&snap);
        assert_eq!(w.to_vec(), vec![1.0, 2.0]);
    }

    #[test]
    fn grad_norm_after_backward() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Tensor::param(vec![3.0, 4.0], &[2]));
        let loss = crate::ops::sum_all(&w);
        loss.backward();
        assert!((ps.grad_norm() - 2.0f32.sqrt()).abs() < 1e-6);
        ps.zero_grad();
        assert_eq!(ps.grad_norm(), 0.0);
    }
}
