//! Named parameter collections: optimizer target, weight snapshot/restore.

use crate::Tensor;

/// Why a [`ParamSet::try_restore`] rejected a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The snapshot has a different number of parameters.
    CountMismatch { expected: usize, found: usize },
    /// Names disagree at `index` (registration order is significant).
    NameMismatch { index: usize, expected: String, found: String },
    /// Shapes disagree for the named parameter.
    ShapeMismatch { name: String, expected: Vec<usize>, found: Vec<usize> },
    /// The data buffer length does not match the declared shape.
    DataMismatch { name: String, expected: usize, found: usize },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::CountMismatch { expected, found } => {
                write!(f, "snapshot has {found} parameters, model has {expected}")
            }
            RestoreError::NameMismatch { index, expected, found } => {
                write!(f, "parameter {index}: snapshot has {found:?}, model has {expected:?}")
            }
            RestoreError::ShapeMismatch { name, expected, found } => {
                write!(f, "{name}: snapshot shape {found:?}, model shape {expected:?}")
            }
            RestoreError::DataMismatch { name, expected, found } => {
                write!(f, "{name}: snapshot has {found} scalars, shape needs {expected}")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

/// An ordered, named collection of trainable leaf tensors.
///
/// Models register every parameter here; optimizers iterate it; snapshots
/// make weights portable across threads (the `Tensor` graph itself is
/// `!Send` by design).
#[derive(Default)]
pub struct ParamSet {
    params: Vec<(String, Tensor)>,
}

impl ParamSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter; returns it for convenient chaining.
    ///
    /// Panics on duplicate names or non-leaf tensors.
    pub fn register(&mut self, name: &str, t: Tensor) -> Tensor {
        assert!(t.requires_grad() && t.is_leaf(), "{name}: parameters must be trainable leaves");
        assert!(
            self.params.iter().all(|(n, _)| n != name),
            "duplicate parameter name: {name}"
        );
        self.params.push((name.to_string(), t.clone()));
        t
    }

    pub fn len(&self) -> usize {
        self.params.len()
    }

    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|(_, t)| t.numel()).sum()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.params.iter().map(|(n, t)| (n.as_str(), t))
    }

    pub fn tensors(&self) -> impl Iterator<Item = &Tensor> {
        self.params.iter().map(|(_, t)| t)
    }

    /// Clear gradients on every parameter.
    pub fn zero_grad(&self) {
        for (_, t) in &self.params {
            t.zero_grad();
        }
    }

    /// Global L2 norm of all gradients (0 if none set).
    pub fn grad_norm(&self) -> f32 {
        let mut acc = 0.0f32;
        for (_, t) in &self.params {
            if let Some(g) = t.grad() {
                acc += g.iter().map(|v| v * v).sum::<f32>();
            }
        }
        acc.sqrt()
    }

    /// Copy out all gradients in registration order; parameters with no
    /// gradient yield zeros. Shape-compatible with [`accumulate_grads`]
    /// (`Self::accumulate_grads`) — together they move gradients between
    /// model replicas for data-parallel training, the same way
    /// [`snapshot`](Self::snapshot)/[`restore`](Self::restore) move weights.
    pub fn grad_snapshot(&self) -> Vec<Vec<f32>> {
        self.params
            .iter()
            .map(|(_, t)| t.grad().unwrap_or_else(|| vec![0.0; t.numel()]))
            .collect()
    }

    /// Add `grads` (one buffer per parameter, registration order) into each
    /// parameter's gradient accumulator.
    pub fn accumulate_grads(&self, grads: &[Vec<f32>]) {
        assert_eq!(grads.len(), self.params.len(), "gradient row count mismatch");
        for ((name, t), g) in self.params.iter().zip(grads) {
            assert_eq!(t.numel(), g.len(), "gradient length mismatch for {name}");
            t.accumulate_grad(g);
        }
    }

    /// Copy out all weights as `(name, shape, data)` rows.
    pub fn snapshot(&self) -> Vec<(String, Vec<usize>, Vec<f32>)> {
        self.params
            .iter()
            .map(|(n, t)| (n.clone(), t.shape().to_vec(), t.to_vec()))
            .collect()
    }

    /// Load weights from a snapshot. Names and shapes must match exactly;
    /// panics otherwise (use [`try_restore`](Self::try_restore) to recover
    /// from untrusted snapshots, e.g. checkpoints from the wrong model).
    pub fn restore(&self, snap: &[(String, Vec<usize>, Vec<f32>)]) {
        if let Err(e) = self.try_restore(snap) {
            panic!("snapshot mismatch: {e}");
        }
    }

    /// Load weights from a snapshot, reporting mismatches as errors instead
    /// of panicking. The whole snapshot is validated *before* any weight is
    /// written, so a failed restore leaves the model untouched.
    pub fn try_restore(&self, snap: &[(String, Vec<usize>, Vec<f32>)]) -> Result<(), RestoreError> {
        if snap.len() != self.params.len() {
            return Err(RestoreError::CountMismatch {
                expected: self.params.len(),
                found: snap.len(),
            });
        }
        for (i, ((name, t), (sn, ss, sd))) in self.params.iter().zip(snap).enumerate() {
            if name != sn {
                return Err(RestoreError::NameMismatch {
                    index: i,
                    expected: name.clone(),
                    found: sn.clone(),
                });
            }
            if t.shape() != &ss[..] {
                return Err(RestoreError::ShapeMismatch {
                    name: name.clone(),
                    expected: t.shape().to_vec(),
                    found: ss.clone(),
                });
            }
            if sd.len() != t.numel() {
                return Err(RestoreError::DataMismatch {
                    name: name.clone(),
                    expected: t.numel(),
                    found: sd.len(),
                });
            }
        }
        for ((_, t), (_, _, sd)) in self.params.iter().zip(snap) {
            t.data_mut().copy_from_slice(sd);
        }
        Ok(())
    }

    /// 64-bit FNV-1a fingerprint over every parameter's name and exact bit
    /// pattern, in registration order. Two models agree iff their weights
    /// are bit-identical — the acceptance check for deterministic resume.
    pub fn fingerprint(&self) -> u64 {
        let mut hash = 0xcbf29ce484222325u64;
        for (name, t) in self.iter() {
            for b in name.bytes() {
                hash = (hash ^ b as u64).wrapping_mul(0x100000001b3);
            }
            for v in t.to_vec() {
                for b in v.to_bits().to_le_bytes() {
                    hash = (hash ^ b as u64).wrapping_mul(0x100000001b3);
                }
            }
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_count() {
        let mut ps = ParamSet::new();
        ps.register("w", Tensor::param(vec![0.0; 6], &[2, 3]));
        ps.register("b", Tensor::param(vec![0.0; 3], &[3]));
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.num_scalars(), 9);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_name_panics() {
        let mut ps = ParamSet::new();
        ps.register("w", Tensor::param(vec![0.0], &[1]));
        ps.register("w", Tensor::param(vec![0.0], &[1]));
    }

    #[test]
    #[should_panic(expected = "trainable leaves")]
    fn constant_rejected() {
        let mut ps = ParamSet::new();
        ps.register("c", Tensor::from_vec(vec![0.0], &[1]));
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Tensor::param(vec![1.0, 2.0], &[2]));
        let snap = ps.snapshot();
        w.data_mut()[0] = 99.0;
        ps.restore(&snap);
        assert_eq!(w.to_vec(), vec![1.0, 2.0]);
    }

    #[test]
    fn try_restore_reports_mismatches_without_writing() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Tensor::param(vec![1.0, 2.0], &[2]));
        // Wrong name.
        let err = ps.try_restore(&[("q".into(), vec![2], vec![9.0, 9.0])]).unwrap_err();
        assert!(matches!(err, RestoreError::NameMismatch { index: 0, .. }));
        // Wrong shape.
        let err = ps.try_restore(&[("w".into(), vec![1, 2], vec![9.0, 9.0])]).unwrap_err();
        assert!(matches!(err, RestoreError::ShapeMismatch { .. }));
        // Wrong count.
        let err = ps.try_restore(&[]).unwrap_err();
        assert_eq!(err, RestoreError::CountMismatch { expected: 1, found: 0 });
        // Data length disagrees with shape.
        let err = ps.try_restore(&[("w".into(), vec![2], vec![9.0])]).unwrap_err();
        assert!(matches!(err, RestoreError::DataMismatch { .. }));
        // No failed attempt wrote anything.
        assert_eq!(w.to_vec(), vec![1.0, 2.0]);
        ps.try_restore(&[("w".into(), vec![2], vec![7.0, 8.0])]).unwrap();
        assert_eq!(w.to_vec(), vec![7.0, 8.0]);
    }

    #[test]
    fn fingerprint_tracks_bit_changes() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Tensor::param(vec![1.0, 2.0], &[2]));
        let f1 = ps.fingerprint();
        assert_eq!(f1, ps.fingerprint(), "fingerprint must be deterministic");
        w.data_mut()[1] = 2.0000002;
        assert_ne!(f1, ps.fingerprint(), "a one-ulp change must alter the fingerprint");
    }

    #[test]
    fn grad_norm_after_backward() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Tensor::param(vec![3.0, 4.0], &[2]));
        let loss = crate::ops::sum_all(&w);
        loss.backward();
        assert!((ps.grad_norm() - 2.0f32.sqrt()).abs() < 1e-6);
        ps.zero_grad();
        assert_eq!(ps.grad_norm(), 0.0);
    }
}
