//! Multi-layer perceptron with LeakyReLU hidden activations (Eq. 13).

use super::linear::Linear;
use super::params::ParamSet;
use crate::{ops, Tensor};
use rand::Rng;

/// A stack of [`Linear`] layers; LeakyReLU between layers, linear output.
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// `dims = [in, h1, .., out]`; requires at least one layer.
    pub fn new(params: &mut ParamSet, name: &str, dims: &[usize], rng: &mut impl Rng) -> Mlp {
        assert!(dims.len() >= 2, "Mlp: need at least [in, out] dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(params, &format!("{name}.{i}"), w[0], w[1], rng))
            .collect();
        Mlp { layers }
    }

    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut h = x.clone();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(&h);
            if i != last {
                h = ops::leaky_relu(&h);
            }
        }
        h
    }

    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// The layer stack, in forward order (used by serving-side inspection
    /// and the no-grad parity tests).
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Tape-free [`Mlp::forward`] over a plain `[rows, in]` buffer; returns
    /// a rented `[rows, out]` buffer (recycle via [`crate::infer::recycle`]).
    pub fn forward_nograd(&self, x: &[f32], rows: usize) -> Vec<f32> {
        let last = self.layers.len() - 1;
        let mut h: Option<Vec<f32>> = None;
        for (i, layer) in self.layers.iter().enumerate() {
            let src: &[f32] = h.as_deref().unwrap_or(x);
            let mut next = layer.forward_nograd(src, rows);
            if i != last {
                crate::infer::leaky_relu_inplace(&mut next);
            }
            if let Some(prev) = h.take() {
                crate::infer::recycle(prev);
            }
            h = Some(next);
        }
        h.expect("non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_and_param_count() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new(&mut ps, "mlp", &[4, 8, 2], &mut rng);
        assert_eq!(mlp.forward(&Tensor::zeros(&[3, 4])).shape(), &[3, 2]);
        assert_eq!(mlp.forward(&Tensor::zeros(&[2, 5, 4])).shape(), &[2, 5, 2]);
        // 4*8 + 8 + 8*2 + 2 scalars over 4 tensors.
        assert_eq!(ps.len(), 4);
        assert_eq!(ps.num_scalars(), 32 + 8 + 16 + 2);
    }

    #[test]
    fn single_layer_is_linear() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(4);
        let mlp = Mlp::new(&mut ps, "mlp", &[2, 2], &mut rng);
        // Linearity: f(2x) - 2 f(x) = -bias (affine), check additivity of the
        // linear part instead: f(x+y) - f(x) - f(y) + f(0) = 0.
        let x = Tensor::from_vec(vec![0.5, -1.0], &[1, 2]);
        let y = Tensor::from_vec(vec![2.0, 0.3], &[1, 2]);
        let xy = Tensor::from_vec(vec![2.5, -0.7], &[1, 2]);
        let zero = Tensor::zeros(&[1, 2]);
        let f = |t: &Tensor| mlp.forward(t).to_vec();
        let (fx, fy, fxy, f0) = (f(&x), f(&y), f(&xy), f(&zero));
        for i in 0..2 {
            assert!((fxy[i] - fx[i] - fy[i] + f0[i]).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn too_few_dims_panics() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(5);
        let _ = Mlp::new(&mut ps, "mlp", &[4], &mut rng);
    }
}
