//! Neural-network building blocks on top of the autograd engine: parameter
//! management, initializers, linear layers, fused time-major recurrent
//! layers, and an MLP.
//!
//! The recurrent layers ([`Lstm`], [`Gru`], [`BiLstm`]) run on the fused ops
//! in [`crate::ops`] (`rnn_gate_preproject` + one fused cell node per step).
//! Their original step-unrolled implementations are preserved in
//! [`reference`] as the differential-testing oracle, mirroring how
//! `tmn-core`'s `kernels::reference` backs the optimized kernels.

mod attention;
mod bilstm;
mod gru;
mod init;
mod linear;
mod lstm;
mod mlp;
mod params;
pub mod reference;
mod rnn;

pub use attention::MultiHeadSelfAttention;
pub use bilstm::BiLstm;
pub use gru::Gru;
pub use init::{orthogonal, uniform_xavier, zeros_init};
pub use linear::Linear;
pub use lstm::Lstm;
pub use mlp::Mlp;
pub use params::{ParamSet, RestoreError};
pub use rnn::{Recurrent, RnnKind};
