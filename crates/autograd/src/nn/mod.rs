//! Neural-network building blocks on top of the autograd engine: parameter
//! management, initializers, linear layers, a step-unrolled LSTM, and an MLP.

mod attention;
mod bilstm;
mod gru;
mod init;
mod linear;
mod lstm;
mod mlp;
mod params;
mod rnn;

pub use attention::MultiHeadSelfAttention;
pub use bilstm::BiLstm;
pub use gru::Gru;
pub use init::{orthogonal, uniform_xavier, zeros_init};
pub use linear::Linear;
pub use lstm::Lstm;
pub use mlp::Mlp;
pub use params::ParamSet;
pub use rnn::{Recurrent, RnnKind};
