//! Gated Recurrent Unit (Cho et al.) — the other gated RNN the paper's
//! related work discusses (Section II-B). Used by the RNN-backbone ablation.
//!
//! Like [`super::Lstm`], execution runs on the fused time-major ops: two
//! [`crate::ops::rnn_gate_preproject`] GEMMs cover the `[r | z]` and
//! candidate input projections for every step at once, each step is one
//! [`crate::ops::gru_cell_fused`] node, and [`crate::ops::collect_states`]
//! assembles the `[B, m, h]` output. The step-unrolled original lives on as
//! [`crate::nn::reference::Gru`].

use super::init;
use super::params::ParamSet;
use super::rnn::Recurrent;
use crate::{ops, Tensor};
use rand::Rng;

/// Single-layer GRU returning all hidden states.
///
/// Gates are fused as `[r | z]` in one projection; the candidate state `n`
/// uses its own projection so the reset gate can modulate the recurrent
/// term: `n = tanh(W_in x + r ⊙ (W_hn h))`.
pub struct Gru {
    w_ih: Tensor, // [d_in, 2h] -> r, z
    w_hh: Tensor, // [h, 2h]
    bias: Tensor, // [2h]
    w_in: Tensor, // [d_in, h] -> candidate
    w_hn: Tensor, // [h, h]
    bias_n: Tensor, // [h]
    input_dim: usize,
    hidden: usize,
}

impl Gru {
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        input_dim: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Gru {
        let w_ih = params.register(
            &format!("{name}.w_ih"),
            Tensor::param(init::uniform_xavier(rng, input_dim, 2 * hidden), &[input_dim, 2 * hidden]),
        );
        let mut whh = Vec::with_capacity(hidden * 2 * hidden);
        let blocks: Vec<Vec<f32>> = (0..2).map(|_| init::orthogonal(rng, hidden, hidden)).collect();
        for r in 0..hidden {
            for block in &blocks {
                whh.extend_from_slice(&block[r * hidden..(r + 1) * hidden]);
            }
        }
        let w_hh = params.register(&format!("{name}.w_hh"), Tensor::param(whh, &[hidden, 2 * hidden]));
        let bias = params.register(
            &format!("{name}.bias"),
            Tensor::param(init::zeros_init(2 * hidden), &[2 * hidden]),
        );
        let w_in = params.register(
            &format!("{name}.w_in"),
            Tensor::param(init::uniform_xavier(rng, input_dim, hidden), &[input_dim, hidden]),
        );
        let w_hn = params.register(
            &format!("{name}.w_hn"),
            Tensor::param(init::orthogonal(rng, hidden, hidden), &[hidden, hidden]),
        );
        let bias_n = params.register(
            &format!("{name}.bias_n"),
            Tensor::param(init::zeros_init(hidden), &[hidden]),
        );
        Gru { w_ih, w_hh, bias, w_in, w_hn, bias_n, input_dim, hidden }
    }

    /// The weight tensors `(w_ih, w_hh, bias, w_in, w_hn, bias_n)` — used to
    /// build the step-unrolled [`crate::nn::reference::Gru`] twin in parity
    /// tests.
    pub fn weights(&self) -> (&Tensor, &Tensor, &Tensor, &Tensor, &Tensor, &Tensor) {
        (&self.w_ih, &self.w_hh, &self.bias, &self.w_in, &self.w_hn, &self.bias_n)
    }
}

impl Recurrent for Gru {
    fn hidden_dim(&self) -> usize {
        self.hidden
    }

    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn forward_seq(&self, xs: &Tensor) -> Tensor {
        let s = xs.shape();
        assert_eq!(s.len(), 3, "Gru: need [B, m, d_in], got {s:?}");
        let (bs, m, d) = (s[0], s[1], s[2]);
        assert_eq!(d, self.input_dim, "Gru: input dim mismatch");
        let h = self.hidden;
        let pre_rz = ops::rnn_gate_preproject(xs, &self.w_ih, &self.bias);
        let pre_n = ops::rnn_gate_preproject(xs, &self.w_in, &self.bias_n);
        let mut state = Tensor::zeros(&[bs, h]);
        let mut states = Vec::with_capacity(m);
        for t in 0..m {
            state = ops::gru_cell_fused(&pre_rz, &pre_n, t, &state, &self.w_hh, &self.w_hn);
            states.push(state.clone());
        }
        ops::collect_states(&states, h)
    }

    fn forward_seq_nograd(&self, xs: &[f32], bs: usize, m: usize) -> Vec<f32> {
        let (wi, wh, bd) = (self.w_ih.data(), self.w_hh.data(), self.bias.data());
        let (wn, whn, bn) = (self.w_in.data(), self.w_hn.data(), self.bias_n.data());
        let w = crate::infer::GruWeights {
            w_ih: &wi,
            w_hh: &wh,
            bias: &bd,
            w_in: &wn,
            w_hn: &whn,
            bias_n: &bn,
        };
        crate::infer::gru_seq(xs, bs, m, self.input_dim, self.hidden, &w)
    }

    fn stream_begin(&self) -> crate::infer::RnnStream {
        crate::infer::RnnStream::Gru(crate::infer::GruStream::new(self.hidden))
    }

    fn stream_step(&self, s: &mut crate::infer::RnnStream, x: &[f32], out: &mut [f32]) {
        let crate::infer::RnnStream::Gru(s) = s else {
            panic!("Gru::stream_step: stream state from a different backbone");
        };
        let (wi, wh, bd) = (self.w_ih.data(), self.w_hh.data(), self.bias.data());
        let (wn, whn, bn) = (self.w_in.data(), self.w_hn.data(), self.bias_n.data());
        let w = crate::infer::GruWeights {
            w_ih: &wi,
            w_hh: &wh,
            bias: &bd,
            w_in: &wn,
            w_hn: &whn,
            bias_n: &bn,
        };
        crate::infer::gru_stream_step(s, x, self.input_dim, &w, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make(input: usize, hidden: usize) -> (ParamSet, Gru) {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(21);
        let g = Gru::new(&mut ps, "gru", input, hidden, &mut rng);
        (ps, g)
    }

    #[test]
    fn output_shape() {
        let (_, g) = make(3, 5);
        assert_eq!(g.forward_seq(&Tensor::zeros(&[2, 4, 3])).shape(), &[2, 4, 5]);
    }

    #[test]
    fn hidden_bounded() {
        let (_, g) = make(2, 4);
        let x = Tensor::from_vec(vec![50.0; 2 * 6 * 2], &[2, 6, 2]);
        assert!(g.forward_seq(&x).to_vec().iter().all(|v| v.abs() <= 1.0 + 1e-6));
    }

    #[test]
    fn causality() {
        let (_, g) = make(2, 4);
        let base: Vec<f32> = (0..10).map(|x| (x as f32 * 0.41).cos()).collect();
        let mut changed = base.clone();
        changed[9] -= 3.0;
        let za = g.forward_seq(&Tensor::from_vec(base, &[1, 5, 2])).to_vec();
        let zb = g.forward_seq(&Tensor::from_vec(changed, &[1, 5, 2])).to_vec();
        assert_eq!(&za[..16], &zb[..16]);
        assert!(za[16..] != zb[16..]);
    }

    #[test]
    fn gradients_flow_to_all_weights() {
        let (ps, g) = make(2, 3);
        let x = Tensor::from_vec((0..12).map(|i| 0.1 * i as f32 - 0.5).collect(), &[2, 3, 2]);
        crate::ops::sum_all(&g.forward_seq(&x)).backward();
        for (name, t) in ps.iter() {
            let gr = t.grad().unwrap_or_else(|| panic!("no grad for {name}"));
            assert!(gr.iter().any(|&v| v != 0.0), "zero grad for {name}");
        }
    }

    #[test]
    fn gru_gradcheck_small() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(22);
        let g = Gru::new(&mut ps, "gru", 1, 2, &mut rng);
        let x = Tensor::param(vec![0.4, -0.6], &[1, 2, 1]);
        let inputs = [
            x,
            g.w_ih.clone(),
            g.w_hh.clone(),
            g.bias.clone(),
            g.w_in.clone(),
            g.w_hn.clone(),
            g.bias_n.clone(),
        ];
        crate::ops::gradcheck::check(
            &inputs,
            |t| {
                let g2 = Gru {
                    w_ih: t[1].clone(),
                    w_hh: t[2].clone(),
                    bias: t[3].clone(),
                    w_in: t[4].clone(),
                    w_hn: t[5].clone(),
                    bias_n: t[6].clone(),
                    input_dim: 1,
                    hidden: 2,
                };
                crate::ops::sum_all(&g2.forward_seq(&t[0]))
            },
            2e-2,
        );
    }
}
