//! Bidirectional LSTM: a forward and a backward LSTM whose per-step hidden
//! states are concatenated. Extension knob for the encoders (not used by
//! the paper's TMN, which is causal; exposed for experimentation — note a
//! bidirectional backbone changes the sub-trajectory loss semantics, since
//! prefix representations then see future points).

use super::lstm::Lstm;
use super::params::ParamSet;
use super::rnn::Recurrent;
use crate::{ops, Tensor};
use rand::Rng;

/// Two LSTMs (forward + reversed), output `[B, m, 2h]`.
pub struct BiLstm {
    forward: Lstm,
    backward: Lstm,
    input_dim: usize,
    hidden: usize,
}

impl BiLstm {
    /// `hidden` is the size of *each* direction; the output is `2·hidden`.
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        input_dim: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> BiLstm {
        let forward = Lstm::new(params, &format!("{name}.fwd"), input_dim, hidden, rng);
        let backward = Lstm::new(params, &format!("{name}.bwd"), input_dim, hidden, rng);
        BiLstm { forward, backward, input_dim, hidden }
    }

    /// The `(forward, backward)` direction layers — used to build the
    /// step-unrolled [`crate::nn::reference::BiLstm`] twin in parity tests.
    pub fn directions(&self) -> (&Lstm, &Lstm) {
        (&self.forward, &self.backward)
    }
}

impl Recurrent for BiLstm {
    fn hidden_dim(&self) -> usize {
        2 * self.hidden
    }

    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn forward_seq(&self, xs: &Tensor) -> Tensor {
        let fwd = self.forward.forward_seq(xs);
        let bwd = ops::reverse_time(&self.backward.forward_seq(&ops::reverse_time(xs)));
        ops::concat_last(&fwd, &bwd)
    }

    fn forward_seq_nograd(&self, xs: &[f32], bs: usize, m: usize) -> Vec<f32> {
        let (fw_ih, fw_hh, fb) = self.forward.weights();
        let (bw_ih, bw_hh, bb) = self.backward.weights();
        let (fwi, fwh, fbd) = (fw_ih.data(), fw_hh.data(), fb.data());
        let (bwi, bwh, bbd) = (bw_ih.data(), bw_hh.data(), bb.data());
        let fwd = crate::infer::LstmWeights { w_ih: &fwi, w_hh: &fwh, bias: &fbd };
        let bwd = crate::infer::LstmWeights { w_ih: &bwi, w_hh: &bwh, bias: &bbd };
        crate::infer::bilstm_seq(xs, bs, m, self.input_dim, self.hidden, &fwd, &bwd)
    }

    fn stream_begin(&self) -> crate::infer::RnnStream {
        crate::infer::RnnStream::BiLstm(crate::infer::BiLstmStream::new(self.hidden))
    }

    /// Writes the **newest** output row `[2h]`. The forward half steps
    /// incrementally; the newest row's backward half is the backward
    /// LSTM's first step over the reversed sequence (one cell step from
    /// zero state, O(1)). Earlier rows' backward halves see the future and
    /// are not maintained — re-run
    /// [`forward_seq_nograd`](Recurrent::forward_seq_nograd) over the
    /// stored inputs when the full matrix is needed.
    fn stream_step(&self, s: &mut crate::infer::RnnStream, x: &[f32], out: &mut [f32]) {
        let crate::infer::RnnStream::BiLstm(s) = s else {
            panic!("BiLstm::stream_step: stream state from a different backbone");
        };
        let (fw_ih, fw_hh, fb) = self.forward.weights();
        let (bw_ih, bw_hh, bb) = self.backward.weights();
        let (fwi, fwh, fbd) = (fw_ih.data(), fw_hh.data(), fb.data());
        let (bwi, bwh, bbd) = (bw_ih.data(), bw_hh.data(), bb.data());
        let fwd = crate::infer::LstmWeights { w_ih: &fwi, w_hh: &fwh, bias: &fbd };
        let bwd = crate::infer::LstmWeights { w_ih: &bwi, w_hh: &bwh, bias: &bbd };
        crate::infer::bilstm_stream_step(s, x, self.input_dim, &fwd, &bwd, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make(input: usize, hidden: usize) -> (ParamSet, BiLstm) {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(41);
        let b = BiLstm::new(&mut ps, "bi", input, hidden, &mut rng);
        (ps, b)
    }

    #[test]
    fn output_is_double_width() {
        let (_, b) = make(3, 4);
        let y = b.forward_seq(&Tensor::zeros(&[2, 5, 3]));
        assert_eq!(y.shape(), &[2, 5, 8]);
        assert_eq!(b.hidden_dim(), 8);
    }

    #[test]
    fn backward_half_sees_the_future() {
        // Changing the LAST input step must change the FIRST output step's
        // backward half (columns h..2h) but not its forward half.
        let (_, b) = make(2, 3);
        let base: Vec<f32> = (0..12).map(|x| (x as f32 * 0.3).sin()).collect();
        let mut changed = base.clone();
        changed[10] += 1.0;
        let ya = b.forward_seq(&Tensor::from_vec(base, &[1, 6, 2])).to_vec();
        let yb = b.forward_seq(&Tensor::from_vec(changed, &[1, 6, 2])).to_vec();
        // Step 0 forward half identical:
        assert_eq!(&ya[..3], &yb[..3]);
        // Step 0 backward half differs:
        assert_ne!(&ya[3..6], &yb[3..6]);
    }

    #[test]
    fn gradients_flow_to_both_directions() {
        let (ps, b) = make(2, 3);
        let x = Tensor::from_vec((0..12).map(|i| 0.1 * i as f32 - 0.6).collect(), &[2, 3, 2]);
        crate::ops::sum_all(&b.forward_seq(&x)).backward();
        for (name, t) in ps.iter() {
            let g = t.grad().unwrap_or_else(|| panic!("no grad for {name}"));
            assert!(g.iter().any(|&v| v != 0.0), "zero grad for {name}");
        }
    }
}
