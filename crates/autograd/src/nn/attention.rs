//! Multi-head self-attention (Vaswani et al.), the Transformer-style
//! attention T3S models its structural branch on. Single-head instances
//! reduce to the simple dot-product attention used elsewhere.

use super::linear::Linear;
use super::params::ParamSet;
use crate::{ops, Tensor};
use rand::Rng;

/// Masked multi-head self-attention over `[B, m, d]` sequences.
pub struct MultiHeadSelfAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    dim: usize,
    head_dim: usize,
}

impl MultiHeadSelfAttention {
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        dim: usize,
        heads: usize,
        rng: &mut impl Rng,
    ) -> MultiHeadSelfAttention {
        assert!(heads >= 1, "MultiHeadSelfAttention: need at least one head");
        assert!(dim.is_multiple_of(heads), "MultiHeadSelfAttention: dim {dim} not divisible by heads {heads}");
        let wq = Linear::new(params, &format!("{name}.wq"), dim, dim, rng);
        let wk = Linear::new(params, &format!("{name}.wk"), dim, dim, rng);
        let wv = Linear::new(params, &format!("{name}.wv"), dim, dim, rng);
        let wo = Linear::new(params, &format!("{name}.wo"), dim, dim, rng);
        MultiHeadSelfAttention { wq, wk, wv, wo, heads, dim, head_dim: dim / heads }
    }

    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Apply self-attention with a `[B, m]` key-padding mask; padded
    /// query rows are zeroed in the output.
    pub fn forward(&self, x: &Tensor, mask: &Tensor) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 3, "MHA: need [B, m, d], got {s:?}");
        assert_eq!(s[2], self.dim, "MHA: feature dim mismatch");
        let q = self.wq.forward(x);
        let k = self.wk.forward(x);
        let v = self.wv.forward(x);
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut head_outputs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let start = h * self.head_dim;
            let qh = ops::slice_last(&q, start, self.head_dim);
            let kh = ops::slice_last(&k, start, self.head_dim);
            let vh = ops::slice_last(&v, start, self.head_dim);
            let scores = ops::scale(&ops::bmm_nt(&qh, &kh), scale);
            let p = ops::masked_softmax(&scores, mask);
            head_outputs.push(ops::bmm_nn(&p, &vh));
        }
        let mut concat = head_outputs[0].clone();
        for head in &head_outputs[1..] {
            concat = ops::concat_last(&concat, head);
        }
        ops::mul_mask_rows(&self.wo.forward(&concat), mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make(dim: usize, heads: usize) -> (ParamSet, MultiHeadSelfAttention) {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(51);
        let mha = MultiHeadSelfAttention::new(&mut ps, "mha", dim, heads, &mut rng);
        (ps, mha)
    }

    fn ones_mask(b: usize, m: usize) -> Tensor {
        Tensor::from_vec(vec![1.0; b * m], &[b, m])
    }

    #[test]
    fn output_shape_preserved() {
        let (_, mha) = make(8, 2);
        let x = Tensor::zeros(&[2, 5, 8]);
        assert_eq!(mha.forward(&x, &ones_mask(2, 5)).shape(), &[2, 5, 8]);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_heads_panics() {
        let _ = make(8, 3);
    }

    #[test]
    fn masked_keys_do_not_influence_output() {
        // Changing a masked key position's features must not change valid
        // rows' outputs.
        let (_, mha) = make(8, 2);
        let mut data: Vec<f32> = (0..24).map(|i| (i as f32 * 0.31).sin()).collect();
        let mask = Tensor::from_vec(vec![1.0, 1.0, 0.0], &[1, 3]);
        let x1 = Tensor::from_vec(data.clone(), &[1, 3, 8]);
        let y1 = mha.forward(&x1, &mask).to_vec();
        for v in &mut data[16..] {
            *v += 9.0; // perturb the masked third point
        }
        let x2 = Tensor::from_vec(data, &[1, 3, 8]);
        let y2 = mha.forward(&x2, &mask).to_vec();
        assert_eq!(&y1[..16], &y2[..16], "masked key leaked into valid rows");
    }

    #[test]
    fn gradients_reach_all_projections() {
        let (ps, mha) = make(8, 4);
        let x = Tensor::from_vec((0..32).map(|i| 0.05 * i as f32 - 0.8).collect(), &[1, 4, 8]);
        let y = mha.forward(&x, &ones_mask(1, 4));
        crate::ops::sum_all(&crate::ops::sum_last(&y)).backward();
        for (name, t) in ps.iter() {
            assert!(t.grad().is_some(), "no grad for {name}");
        }
    }

    #[test]
    fn single_head_is_valid() {
        let (_, mha) = make(6, 1);
        let x = Tensor::from_vec((0..18).map(|i| 0.1 * i as f32).collect(), &[1, 3, 6]);
        let y = mha.forward(&x, &ones_mask(1, 3));
        assert!(y.to_vec().iter().all(|v| v.is_finite()));
        assert_eq!(mha.heads(), 1);
    }
}
