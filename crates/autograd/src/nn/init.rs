//! Weight initializers. All take an explicit RNG so experiments are
//! reproducible from a single seed.

use rand::Rng;

/// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn uniform_xavier(rng: &mut impl Rng, fan_in: usize, fan_out: usize) -> Vec<f32> {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    (0..fan_in * fan_out).map(|_| rng.gen_range(-a..a)).collect()
}

/// All-zeros buffer (biases).
pub fn zeros_init(n: usize) -> Vec<f32> {
    vec![0.0; n]
}

/// Orthogonal init for square recurrent weights via Gram–Schmidt on a random
/// Gaussian matrix. For non-square `rows x cols` (`rows <= cols`), the rows
/// are orthonormalized.
pub fn orthogonal(rng: &mut impl Rng, rows: usize, cols: usize) -> Vec<f32> {
    assert!(rows <= cols, "orthogonal: rows must be <= cols");
    // Box-Muller standard normals.
    let mut normal = || {
        let u1: f32 = rng.gen_range(1e-7f32..1.0);
        let u2: f32 = rng.gen_range(0.0f32..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
    };
    let mut m: Vec<Vec<f32>> = (0..rows).map(|_| (0..cols).map(|_| normal()).collect()).collect();
    for i in 0..rows {
        for j in 0..i {
            let dot: f32 = m[i].iter().zip(&m[j]).map(|(a, b)| a * b).sum();
            let proj: Vec<f32> = m[j].iter().map(|v| v * dot).collect();
            for (a, p) in m[i].iter_mut().zip(proj) {
                *a -= p;
            }
        }
        let norm: f32 = m[i].iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
        for v in &mut m[i] {
            *v /= norm;
        }
    }
    m.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_within_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = uniform_xavier(&mut rng, 10, 20);
        let a = (6.0f32 / 30.0).sqrt();
        assert_eq!(w.len(), 200);
        assert!(w.iter().all(|v| v.abs() <= a));
    }

    #[test]
    fn orthogonal_rows_are_orthonormal() {
        let mut rng = StdRng::seed_from_u64(2);
        let (r, c) = (8, 16);
        let m = orthogonal(&mut rng, r, c);
        for i in 0..r {
            for j in 0..r {
                let dot: f32 = (0..c).map(|k| m[i * c + k] * m[j * c + k]).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-4, "rows {i},{j}: dot {dot}");
            }
        }
    }

    #[test]
    fn zeros_is_zero() {
        assert!(zeros_init(5).iter().all(|&v| v == 0.0));
    }
}
