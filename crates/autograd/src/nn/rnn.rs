//! Abstraction over recurrent backbones (LSTM / GRU), letting models swap
//! the sequence encoder for the RNN-kind ablation.

use crate::Tensor;

/// A recurrent layer mapping `[B, m, d_in]` to per-step hiddens `[B, m, h]`.
pub trait Recurrent {
    fn hidden_dim(&self) -> usize;
    fn input_dim(&self) -> usize;
    fn forward_seq(&self, xs: &Tensor) -> Tensor;

    /// Tape-free forward over plain buffers: `xs` is `[B, m, d_in]`
    /// flattened row-major; returns `[B, m, h]` in a buffer rented from
    /// [`crate::infer`]'s pool (recycle it with [`crate::infer::recycle`]).
    /// Bitwise-identical to [`Recurrent::forward_seq`] on the same data.
    fn forward_seq_nograd(&self, xs: &[f32], bs: usize, m: usize) -> Vec<f32>;

    /// Begin a streaming (single-sequence) pass with zero initial state.
    fn stream_begin(&self) -> crate::infer::RnnStream;

    /// Advance a stream from [`stream_begin`](Recurrent::stream_begin) by
    /// one input row `x` (`[d_in]`), writing the newest output row into
    /// `out` (`[hidden_dim()]`). After `N` steps this row is bitwise equal
    /// to the last row of [`forward_seq_nograd`](Recurrent::forward_seq_nograd)
    /// over the same `N` inputs at `bs = 1` (for BiLstm, of the *newest*
    /// output row only — earlier rows' backward halves are not maintained).
    ///
    /// Panics if `s` came from a different backbone kind.
    fn stream_step(&self, s: &mut crate::infer::RnnStream, x: &[f32], out: &mut [f32]);
}

/// Which recurrent backbone to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RnnKind {
    /// The paper's choice (Eq. 12).
    Lstm,
    /// Ablation alternative (Section II-B mentions GRU as the other gated
    /// RNN).
    Gru,
}

impl RnnKind {
    pub fn name(&self) -> &'static str {
        match self {
            RnnKind::Lstm => "LSTM",
            RnnKind::Gru => "GRU",
        }
    }

    /// Build the chosen backbone, registering its parameters.
    pub fn build(
        &self,
        params: &mut super::ParamSet,
        name: &str,
        input_dim: usize,
        hidden: usize,
        rng: &mut impl rand::Rng,
    ) -> Box<dyn Recurrent> {
        match self {
            RnnKind::Lstm => Box::new(super::Lstm::new(params, name, input_dim, hidden, rng)),
            RnnKind::Gru => Box::new(super::Gru::new(params, name, input_dim, hidden, rng)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::ParamSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn both_kinds_build_and_run() {
        for kind in [RnnKind::Lstm, RnnKind::Gru] {
            let mut ps = ParamSet::new();
            let mut rng = StdRng::seed_from_u64(1);
            let rnn = kind.build(&mut ps, "rnn", 4, 6, &mut rng);
            assert_eq!(rnn.input_dim(), 4);
            assert_eq!(rnn.hidden_dim(), 6);
            let y = rnn.forward_seq(&Tensor::zeros(&[2, 3, 4]));
            assert_eq!(y.shape(), &[2, 3, 6], "{}", kind.name());
            assert!(!ps.is_empty());
        }
    }

    #[test]
    fn gru_has_fewer_params_than_lstm() {
        let count = |kind: RnnKind| {
            let mut ps = ParamSet::new();
            let mut rng = StdRng::seed_from_u64(2);
            kind.build(&mut ps, "rnn", 8, 8, &mut rng);
            ps.num_scalars()
        };
        assert!(count(RnnKind::Gru) < count(RnnKind::Lstm));
    }
}
