//! Fully connected layer, usable on `[B, in]` and `[B, m, in]` inputs.

use super::init;
use super::params::ParamSet;
use crate::{ops, Tensor};
use rand::Rng;

/// `y = x · W + b`, applied over the last dimension.
pub struct Linear {
    pub weight: Tensor, // [in, out]
    pub bias: Tensor,   // [out]
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Create a Xavier-initialized layer and register its parameters.
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Linear {
        let weight = params.register(
            &format!("{name}.weight"),
            Tensor::param(init::uniform_xavier(rng, in_dim, out_dim), &[in_dim, out_dim]),
        );
        let bias = params.register(
            &format!("{name}.bias"),
            Tensor::param(init::zeros_init(out_dim), &[out_dim]),
        );
        Linear { weight, bias, in_dim, out_dim }
    }

    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Tape-free [`Linear::forward`] over a plain `[rows, in]` buffer;
    /// returns a rented `[rows, out]` buffer (recycle via
    /// [`crate::infer::recycle`]). Matches the graphed forward bitwise.
    pub fn forward_nograd(&self, x: &[f32], rows: usize) -> Vec<f32> {
        let (wd, bd) = (self.weight.data(), self.bias.data());
        crate::infer::linear(x, rows, self.in_dim, self.out_dim, &wd, &bd)
    }

    /// Apply to `[B, in]` (rank 2) or `[B, m, in]` (rank 3, flattened
    /// internally) inputs.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        match x.shape().len() {
            2 => {
                assert_eq!(x.shape()[1], self.in_dim, "Linear: input dim mismatch");
                ops::add_bias(&ops::matmul(x, &self.weight), &self.bias)
            }
            3 => {
                let (b, m, d) = (x.shape()[0], x.shape()[1], x.shape()[2]);
                assert_eq!(d, self.in_dim, "Linear: input dim mismatch");
                let flat = ops::reshape(x, &[b * m, d]);
                let y = ops::add_bias(&ops::matmul(&flat, &self.weight), &self.bias);
                ops::reshape(&y, &[b, m, self.out_dim])
            }
            s => panic!("Linear: unsupported input rank {}", s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(&mut ps, "l", 4, 3, &mut rng);
        assert_eq!(l.forward(&Tensor::zeros(&[5, 4])).shape(), &[5, 3]);
        assert_eq!(l.forward(&Tensor::zeros(&[2, 7, 4])).shape(), &[2, 7, 3]);
        assert_eq!(ps.len(), 2);
    }

    #[test]
    fn rank3_equals_rowwise_rank2() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let l = Linear::new(&mut ps, "l", 2, 2, &mut rng);
        let data: Vec<f32> = (0..8).map(|x| x as f32 * 0.25).collect();
        let x3 = Tensor::from_vec(data.clone(), &[2, 2, 2]);
        let x2 = Tensor::from_vec(data, &[4, 2]);
        assert_eq!(l.forward(&x3).to_vec(), l.forward(&x2).to_vec());
    }

    #[test]
    fn gradients_reach_weights() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(2);
        let l = Linear::new(&mut ps, "l", 3, 2, &mut rng);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let loss = ops::sum_all(&l.forward(&x));
        loss.backward();
        assert!(l.weight.grad().is_some());
        assert!(l.bias.grad().is_some());
        // d(sum)/d(bias) is all ones.
        assert_eq!(l.bias.grad().unwrap(), vec![1.0, 1.0]);
    }
}
