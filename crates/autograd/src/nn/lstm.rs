//! Fused time-major LSTM over `[B, m, d_in]` sequences.
//!
//! The recurrence follows Hochreiter & Schmidhuber with a single fused gate
//! projection (`[i | f | g | o]`), forget-gate bias initialized to 1, and
//! orthogonal recurrent weights. Execution is the fused model of
//! [`crate::ops::rnn_fused`]: one [`crate::ops::rnn_gate_preproject`] GEMM
//! covers every step's input projection, each step is a single
//! [`crate::ops::lstm_cell_fused`] node, and one
//! [`crate::ops::collect_states`] node assembles the output — `m + 2` graph
//! nodes per sequence instead of ~16 per step. The original step-unrolled
//! recurrence survives as [`crate::nn::reference::Lstm`] for differential
//! tests.

use super::init;
use super::params::ParamSet;
use crate::{ops, Tensor};
use rand::Rng;

/// A single-layer LSTM returning all hidden states.
pub struct Lstm {
    w_ih: Tensor, // [d_in, 4h]
    w_hh: Tensor, // [h, 4h]
    bias: Tensor, // [4h]
    input_dim: usize,
    hidden: usize,
}

impl Lstm {
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        input_dim: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Lstm {
        let w_ih = params.register(
            &format!("{name}.w_ih"),
            Tensor::param(init::uniform_xavier(rng, input_dim, 4 * hidden), &[input_dim, 4 * hidden]),
        );
        // Orthogonal rows per gate block for a stable recurrence.
        let mut whh = Vec::with_capacity(hidden * 4 * hidden);
        let blocks: Vec<Vec<f32>> = (0..4).map(|_| init::orthogonal(rng, hidden, hidden)).collect();
        for r in 0..hidden {
            for block in &blocks {
                whh.extend_from_slice(&block[r * hidden..(r + 1) * hidden]);
            }
        }
        let w_hh = params.register(&format!("{name}.w_hh"), Tensor::param(whh, &[hidden, 4 * hidden]));
        // Forget-gate bias = 1 (standard trick to ease gradient flow).
        let mut b = vec![0.0f32; 4 * hidden];
        b[hidden..2 * hidden].iter_mut().for_each(|v| *v = 1.0);
        let bias = params.register(&format!("{name}.bias"), Tensor::param(b, &[4 * hidden]));
        Lstm { w_ih, w_hh, bias, input_dim, hidden }
    }

    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// The weight tensors `(w_ih, w_hh, bias)` — used to build the
    /// step-unrolled [`crate::nn::reference::Lstm`] twin in parity tests.
    pub fn weights(&self) -> (&Tensor, &Tensor, &Tensor) {
        (&self.w_ih, &self.w_hh, &self.bias)
    }

    /// Run over a `[B, m, d_in]` sequence; returns `Z`: `[B, m, h]`, the
    /// hidden state at every time step (Eq. 12's output matrix).
    pub fn forward_seq(&self, xs: &Tensor) -> Tensor {
        self.forward_seq_impl(xs)
    }

    fn forward_seq_impl(&self, xs: &Tensor) -> Tensor {
        let s = xs.shape();
        assert_eq!(s.len(), 3, "Lstm: need [B, m, d_in], got {s:?}");
        let (bs, m, d) = (s[0], s[1], s[2]);
        assert_eq!(d, self.input_dim, "Lstm: input dim mismatch");
        let h = self.hidden;
        let pre = ops::rnn_gate_preproject(xs, &self.w_ih, &self.bias);
        let mut state = Tensor::zeros(&[bs, 2 * h]);
        let mut states = Vec::with_capacity(m);
        for t in 0..m {
            state = ops::lstm_cell_fused(&pre, t, &state, &self.w_hh);
            states.push(state.clone());
        }
        ops::collect_states(&states, h)
    }
}

impl super::rnn::Recurrent for Lstm {
    fn hidden_dim(&self) -> usize {
        self.hidden
    }

    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn forward_seq(&self, xs: &Tensor) -> Tensor {
        self.forward_seq_impl(xs)
    }

    fn forward_seq_nograd(&self, xs: &[f32], bs: usize, m: usize) -> Vec<f32> {
        let (wi, wh, bd) = (self.w_ih.data(), self.w_hh.data(), self.bias.data());
        let w = crate::infer::LstmWeights { w_ih: &wi, w_hh: &wh, bias: &bd };
        crate::infer::lstm_seq(xs, bs, m, self.input_dim, self.hidden, &w)
    }

    fn stream_begin(&self) -> crate::infer::RnnStream {
        crate::infer::RnnStream::Lstm(crate::infer::LstmStream::new(self.hidden))
    }

    fn stream_step(&self, s: &mut crate::infer::RnnStream, x: &[f32], out: &mut [f32]) {
        let crate::infer::RnnStream::Lstm(s) = s else {
            panic!("Lstm::stream_step: stream state from a different backbone");
        };
        let (wi, wh, bd) = (self.w_ih.data(), self.w_hh.data(), self.bias.data());
        let w = crate::infer::LstmWeights { w_ih: &wi, w_hh: &wh, bias: &bd };
        crate::infer::lstm_stream_step(s, x, self.input_dim, &w, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make(input: usize, hidden: usize) -> (ParamSet, Lstm) {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(7);
        let l = Lstm::new(&mut ps, "lstm", input, hidden, &mut rng);
        (ps, l)
    }

    #[test]
    fn output_shape() {
        let (_, l) = make(3, 5);
        let x = Tensor::zeros(&[2, 4, 3]);
        assert_eq!(l.forward_seq(&x).shape(), &[2, 4, 5]);
    }

    #[test]
    fn hidden_bounded_by_tanh() {
        let (_, l) = make(2, 4);
        let x = Tensor::from_vec(vec![100.0; 2 * 6 * 2], &[2, 6, 2]);
        let z = l.forward_seq(&x);
        assert!(z.to_vec().iter().all(|v| v.abs() <= 1.0 + 1e-6));
    }

    #[test]
    fn zero_input_nonzero_dynamics() {
        // Forget-gate bias 1 still produces all-zero states from zero input
        // and zero initial state (c stays 0), which is the correct fixpoint.
        let (_, l) = make(2, 3);
        let x = Tensor::zeros(&[1, 3, 2]);
        let z = l.forward_seq(&x);
        assert!(z.to_vec().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn causality_prefix_invariance() {
        // Hidden state at step t must not depend on inputs after t.
        let (_, l) = make(2, 4);
        let base: Vec<f32> = (0..10).map(|x| (x as f32 * 0.37).sin()).collect();
        let mut changed = base.clone();
        changed[8] += 5.0; // perturb only the last time step
        let za = l.forward_seq(&Tensor::from_vec(base, &[1, 5, 2])).to_vec();
        let zb = l.forward_seq(&Tensor::from_vec(changed, &[1, 5, 2])).to_vec();
        // First 4 steps identical, last step differs.
        assert_eq!(&za[..16], &zb[..16]);
        assert!(za[16..] != zb[16..]);
    }

    #[test]
    fn gradients_flow_to_all_weights() {
        let (ps, l) = make(2, 3);
        let x = Tensor::from_vec((0..12).map(|i| 0.1 * i as f32).collect(), &[2, 3, 2]);
        let z = l.forward_seq(&x);
        crate::ops::sum_all(&z).backward();
        for (name, t) in ps.iter() {
            let g = t.grad().unwrap_or_else(|| panic!("no grad for {name}"));
            assert!(g.iter().any(|&v| v != 0.0), "zero grad for {name}");
        }
    }

    #[test]
    fn lstm_gradcheck_small() {
        // Finite-difference check through 2 time steps on a tiny LSTM.
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(11);
        let l = Lstm::new(&mut ps, "lstm", 1, 2, &mut rng);
        let x = Tensor::param(vec![0.3, -0.8], &[1, 2, 1]);
        let inputs = [x, l.w_ih.clone(), l.w_hh.clone(), l.bias.clone()];
        crate::ops::gradcheck::check(
            &inputs,
            |t| {
                // Rebuild with the same (mutated) weights each call.
                let l2 = Lstm {
                    w_ih: t[1].clone(),
                    w_hh: t[2].clone(),
                    bias: t[3].clone(),
                    input_dim: 1,
                    hidden: 2,
                };
                crate::ops::sum_all(&l2.forward_seq(&t[0]))
            },
            2e-2,
        );
    }

    #[test]
    fn graph_node_budget_per_step() {
        // The fused path must stay at one cell node per step plus constant
        // per-sequence overhead — the whole point of the refactor.
        let (_, l) = make(3, 4);
        let m = 16;
        let x = Tensor::from_vec(vec![0.1; 2 * m * 3], &[2, m, 3]);
        let before = Tensor::scalar(0.0).id();
        let z = l.forward_seq(&x);
        let nodes = z.id() - before - 1;
        assert!(nodes <= 3 * m as u64, "fused LSTM built {nodes} nodes for {m} steps");
    }
}
