//! Dense f32 GEMM kernels shared by every matmul-family op.
//!
//! The blocked path follows the classic GEBP decomposition: the K dimension
//! is split into `KC`-deep stripes, rows into `MC`-tall blocks, and both
//! operands are repacked into contiguous `MR`×`KC` / `KC`×`NR` panels so the
//! register-tiled microkernel streams packed memory linearly regardless of
//! the source layout (normal, transposed-B, transposed-A). Edge tiles are
//! zero-padded inside the packed panels, so the microkernel itself is
//! branch-free; the masked part is only the final `+=` write-back.
//!
//! All three entry points keep the naive kernels' contract: `out` is
//! *accumulated into*, not overwritten. Small problems fall back to the
//! [`reference`] kernels — packing costs O(m·k + k·n) writes, which only
//! pays for itself once the O(m·n·k) multiply dominates.
//!
//! The microkernel is selected once per process by [`crate::simd::active`]:
//! a 6×16 AVX2+FMA register tile where the CPU supports it, the portable
//! scalar 4×8 tile everywhere else. The packing code is generic over the
//! tile shape, so both paths share the same blocked skeleton (and the same
//! zero-padded edge handling).

use crate::simd;
use std::cell::RefCell;

/// Scalar register tile height (rows of A per microkernel call).
pub const MR: usize = 4;
/// Scalar register tile width (columns of B per microkernel call); 8 f32
/// lanes fill one AVX register (or two SSE registers), which is what
/// rustc/LLVM autovectorizes the accumulator update into.
pub const NR: usize = 8;
/// K-stripe depth: one packed A panel of `MR`·`KC` f32 stays L1-resident.
const KC: usize = 256;
/// Row-block height: the packed A block of `MC`·`KC` f32 targets L2.
const MC: usize = 128;

/// Below this many multiply-adds the packing overhead outweighs the blocked
/// kernel; use the naive loops instead.
const BLOCKED_MIN_FLOPS: usize = 8 * 1024;

/// Row-stable dispatch threshold for [`mm_nn`]: the kernel choice depends
/// on the per-row work `k·n` only, never on the row count `m`.
///
/// Every per-token forward in this codebase (input embeddings, gate
/// pre-projections, MLP layers, recurrent cells) flows through `mm_nn`
/// with row-independent inner dims, and the streaming inference path
/// re-runs *single rows* of GEMMs that training and batch inference run
/// over thousands of rows. The naive kernel accumulates each output row
/// in k-order directly into `out`; the blocked kernel sums a register
/// tile first (with FMA under AVX2) and adds it afterwards — different
/// rounding. Both are per-row invariant in `m`, so as long as the *choice*
/// between them ignores `m`, row `i` of an `m`-row call is bitwise equal
/// to the same row computed alone. That invariant is what makes
/// incremental (per-point) embeddings bitwise-equal to full re-runs; see
/// DESIGN.md §12 and `crate::infer`'s stream states.
const ROW_STABLE_MIN_KN: usize = 512;

thread_local! {
    static PACK_A: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    static PACK_B: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// `out[m,n] += a[m,k] · b[k,n]`, both row-major.
///
/// Dispatch is **row-stable** ([`ROW_STABLE_MIN_KN`]): the naive/blocked
/// choice looks at `k·n` only, so each output row's bits are independent
/// of how many rows the call covers. `mm_nt`/`mm_tn` keep the total-flops
/// rule — nothing requires row stability of them, and backward-pass GEMMs
/// prefer the cheaper heuristic.
pub fn mm_nn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    if k * n < ROW_STABLE_MIN_KN {
        reference::mm_nn(a, b, m, k, n, out);
    } else {
        gemm(m, k, n, |i, p| a[i * k + p], |p, j| b[p * n + j], out);
    }
}

/// `out[m,n] += a[m,k] · b[n,k]ᵀ` (`b` stored row-major `n`×`k`).
pub fn mm_nt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    if m * n * k < BLOCKED_MIN_FLOPS {
        reference::mm_nt(a, b, m, k, n, out);
    } else {
        gemm(m, k, n, |i, p| a[i * k + p], |p, j| b[j * k + p], out);
    }
}

/// `out[k,n] += a[m,k]ᵀ · b[m,n]` (`a` stored row-major `m`×`k`).
pub fn mm_tn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    if m * n * k < BLOCKED_MIN_FLOPS {
        reference::mm_tn(a, b, m, k, n, out);
    } else {
        // As a plain GEMM this is C[k,n] += A'[k,m]·B[m,n] with A'(i,p) read
        // down a column of `a`.
        gemm(k, m, n, |i, p| a[p * k + i], |p, j| b[p * n + j], out);
    }
}

/// Cache-blocked `out[m,n] += A·B` with layout-erasing element accessors.
///
/// `a_at(i, p)` must return `A[i][p]` (`i < m`, `p < k`); `b_at(p, j)` must
/// return `B[p][j]` (`j < n`). The accessors are only called during packing,
/// so their indexing cost is O(m·k + k·n) per K-stripe, not O(m·n·k).
fn gemm<FA, FB>(m: usize, k: usize, n: usize, a_at: FA, b_at: FB, out: &mut [f32])
where
    FA: Fn(usize, usize) -> f32,
    FB: Fn(usize, usize) -> f32,
{
    match simd::active() {
        #[cfg(target_arch = "x86_64")]
        simd::Dispatch::Avx2Fma => gemm_blocked::<{ simd::avx2::MR }, { simd::avx2::NR }, FA, FB>(
            m,
            k,
            n,
            a_at,
            b_at,
            out,
            simd::avx2::microkernel,
        ),
        _ => gemm_blocked::<MR, NR, FA, FB>(m, k, n, a_at, b_at, out, microkernel_scalar::<MR, NR>),
    }
}

/// Micro-kernel signature: packed A panel, packed B panel, depth, and the
/// `TM`×`TN` register accumulator tile.
type MicroKernel<const TM: usize, const TN: usize> = fn(&[f32], &[f32], usize, &mut [[f32; TN]; TM]);

/// Cache-blocked skeleton, generic over the `TM`×`TN` register tile.
fn gemm_blocked<const TM: usize, const TN: usize, FA, FB>(
    m: usize,
    k: usize,
    n: usize,
    a_at: FA,
    b_at: FB,
    out: &mut [f32],
    micro: MicroKernel<TM, TN>,
) where
    FA: Fn(usize, usize) -> f32,
    FB: Fn(usize, usize) -> f32,
{
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let n_panels = n.div_ceil(TN);
    let kc_max = KC.min(k);
    let m_panels_max = MC.min(m).div_ceil(TM);
    PACK_A.with(|pa| {
        PACK_B.with(|pb| {
            let mut ap = pa.borrow_mut();
            let mut bp = pb.borrow_mut();
            ap.resize(m_panels_max * kc_max * TM, 0.0);
            bp.resize(n_panels * kc_max * TN, 0.0);

            for p0 in (0..k).step_by(KC) {
                let kc = KC.min(k - p0);
                // Pack B stripe: panel jp holds B[p0..p0+kc, jp*TN..+TN],
                // kk-major so the microkernel reads TN-wide rows in order.
                for jp in 0..n_panels {
                    let j0 = jp * TN;
                    for kk in 0..kc {
                        let dst = &mut bp[(jp * kc + kk) * TN..(jp * kc + kk + 1) * TN];
                        for (jj, d) in dst.iter_mut().enumerate() {
                            let j = j0 + jj;
                            *d = if j < n { b_at(p0 + kk, j) } else { 0.0 };
                        }
                    }
                }
                for i0 in (0..m).step_by(MC) {
                    let mc = MC.min(m - i0);
                    let m_end = i0 + mc;
                    let m_panels = mc.div_ceil(TM);
                    // Pack A block: panel ip holds A[i0+ip*TM..+TM, p0..p0+kc],
                    // kk-major with TM consecutive rows per kk. Rows are
                    // clamped to this block (`m_end`), not just to `m` — when
                    // MC isn't a multiple of TM the last panel straddles the
                    // next block, whose rows must stay zero here or they
                    // would accumulate twice.
                    for ip in 0..m_panels {
                        let i_base = i0 + ip * TM;
                        for kk in 0..kc {
                            let dst = &mut ap[(ip * kc + kk) * TM..(ip * kc + kk + 1) * TM];
                            for (ii, d) in dst.iter_mut().enumerate() {
                                let i = i_base + ii;
                                *d = if i < m_end { a_at(i, p0 + kk) } else { 0.0 };
                            }
                        }
                    }
                    for jp in 0..n_panels {
                        let j0 = jp * TN;
                        let nr = TN.min(n - j0);
                        let bpan = &bp[jp * kc * TN..(jp + 1) * kc * TN];
                        for ip in 0..m_panels {
                            let i_base = i0 + ip * TM;
                            let mr = TM.min(m_end - i_base);
                            let apan = &ap[ip * kc * TM..(ip + 1) * kc * TM];
                            let mut acc = [[0.0f32; TN]; TM];
                            micro(apan, bpan, kc, &mut acc);
                            for (ii, acc_row) in acc.iter().enumerate().take(mr) {
                                let row = (i_base + ii) * n + j0;
                                for (o, &v) in out[row..row + nr].iter_mut().zip(acc_row) {
                                    *o += v;
                                }
                            }
                        }
                    }
                }
            }
        })
    });
}

/// `acc[TM][TN] += Ap·Bp` over one packed `kc`-deep panel pair.
///
/// The fixed-size array reads let LLVM keep the full accumulator tile in
/// registers and vectorize the `TN`-wide FMA row.
#[inline(always)]
fn microkernel_scalar<const TM: usize, const TN: usize>(
    ap: &[f32],
    bp: &[f32],
    kc: usize,
    acc: &mut [[f32; TN]; TM],
) {
    debug_assert!(ap.len() >= kc * TM && bp.len() >= kc * TN);
    for kk in 0..kc {
        let a = &ap[kk * TM..kk * TM + TM];
        let b = &bp[kk * TN..kk * TN + TN];
        for (acc_row, &av) in acc.iter_mut().zip(a) {
            for (o, &bv) in acc_row.iter_mut().zip(b) {
                *o += av * bv;
            }
        }
    }
}

pub mod reference {
    //! The original scalar triple-loop kernels, kept as the correctness
    //! oracle for the blocked path (see `tests/matmul_kernels.rs`) and as
    //! the small-size fast path — they have zero setup cost.

    /// `out[m,n] += a[m,k] · b[k,n]` (ikj order; rows of `b` stream contiguously).
    pub fn mm_nn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (kk, &av) in arow.iter().enumerate() {
                if av != 0.0 {
                    let brow = &b[kk * n..(kk + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
        }
    }

    /// `out[m,n] += a[m,k] · b[n,k]ᵀ` (rows of both operands are contiguous dots).
    pub fn mm_nt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (x, y) in arow.iter().zip(brow) {
                    acc += x * y;
                }
                out[i * n + j] += acc;
            }
        }
    }

    /// `out[k,n] += a[m,k]ᵀ · b[m,n]` (outer-product accumulation).
    pub fn mm_tn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let brow = &b[i * n..(i + 1) * n];
            for (p, &av) in arow.iter().enumerate() {
                if av != 0.0 {
                    let orow = &mut out[p * n..(p + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        // Small deterministic pseudo-random values in [-1, 1).
        let mut state = seed.wrapping_mul(2654435761).max(1);
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 17;
                state ^= state << 5;
                (state as f32 / u32::MAX as f32) * 2.0 - 1.0
            })
            .collect()
    }

    fn assert_close(got: &[f32], want: &[f32], k: usize) {
        assert_eq!(got.len(), want.len());
        // Relative to the dot-product length: each output is a sum of k terms.
        let tol = 1e-5 * (k as f32).max(1.0);
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            let denom = w.abs().max(1.0);
            assert!(
                (g - w).abs() / denom < tol,
                "elem {i}: blocked {g} vs reference {w} (k={k})"
            );
        }
    }

    /// Shapes straddling every edge case: unit dims, exact tile multiples,
    /// off-by-one around MR/NR, and sizes crossing the KC/MC block borders.
    const SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (1, 300, 1),
        (3, 5, 7),
        (4, 16, 8),
        (5, 17, 9),
        (MR, KC, NR),
        (MR + 1, KC + 3, NR + 1),
        (33, 64, 50),
        (MC + 5, 40, 2 * NR + 3),
        (64, 2 * KC + 7, 24),
    ];

    #[test]
    fn blocked_nn_matches_reference() {
        for &(m, k, n) in SHAPES {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let mut got = vec![0.25f32; m * n]; // nonzero: verifies +=
            let mut want = got.clone();
            mm_nn(&a, &b, m, k, n, &mut got);
            reference::mm_nn(&a, &b, m, k, n, &mut want);
            assert_close(&got, &want, k);
        }
    }

    #[test]
    fn blocked_nt_matches_reference() {
        for &(m, k, n) in SHAPES {
            let a = fill(m * k, 3);
            let b = fill(n * k, 4);
            let mut got = vec![0.0f32; m * n];
            let mut want = vec![0.0f32; m * n];
            mm_nt(&a, &b, m, k, n, &mut got);
            reference::mm_nt(&a, &b, m, k, n, &mut want);
            assert_close(&got, &want, k);
        }
    }

    #[test]
    fn blocked_tn_matches_reference() {
        for &(m, k, n) in SHAPES {
            let a = fill(m * k, 5);
            let b = fill(m * n, 6);
            let mut got = vec![0.0f32; k * n];
            let mut want = vec![0.0f32; k * n];
            mm_tn(&a, &b, m, k, n, &mut got);
            reference::mm_tn(&a, &b, m, k, n, &mut want);
            assert_close(&got, &want, m);
        }
    }

    #[test]
    fn mm_nn_rows_are_bitwise_independent_of_row_count() {
        // The streaming contract: row i of an m-row call equals the same
        // row computed alone, bit for bit, on both sides of the
        // ROW_STABLE_MIN_KN boundary (naive k·n = 2·16, blocked k·n = 16·64
        // — the embedding and gate-preprojection shapes).
        for &(k, n) in &[(2usize, 16usize), (8, 64), (16, 64), (16, 16), (32, 128)] {
            for &m in &[2usize, 7, 64, 300] {
                let a = fill(m * k, 11);
                let b = fill(k * n, 12);
                let mut full = vec![0.0f32; m * n];
                mm_nn(&a, &b, m, k, n, &mut full);
                for i in [0, m / 2, m - 1] {
                    let mut row = vec![0.0f32; n];
                    mm_nn(&a[i * k..(i + 1) * k], &b, 1, k, n, &mut row);
                    let full_row = &full[i * n..(i + 1) * n];
                    assert!(
                        row.iter().zip(full_row).all(|(x, y)| x.to_bits() == y.to_bits()),
                        "row {i} of {m}x{k}x{n} not bitwise row-stable"
                    );
                }
            }
        }
    }

    #[test]
    fn degenerate_dims_are_noops_or_exact() {
        let mut out = vec![1.0f32; 0];
        mm_nn(&[], &[], 0, 4, 0, &mut out);
        let a = fill(6, 7);
        let mut out = vec![0.5f32; 6];
        mm_nn(&a, &[], 3, 0, 2, &mut out); // k = 0: out unchanged
        assert_eq!(out, vec![0.5; 6]);
    }
}
