//! Dense matrix products: 2-D matmul and batched 3-D variants.
//!
//! `bmm_nt` (`a · bᵀ` per batch) exists so the matching mechanism
//! `P = softmax(X_a X_bᵀ)` never materializes a transpose.

use crate::Tensor;

/// `out[m,n] += a[m,k] · b[k,n]` (ikj order; rows of `b` stream contiguously).
pub(crate) fn mm_nn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            if av != 0.0 {
                let brow = &b[kk * n..(kk + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    }
}

/// `out[m,n] += a[m,k] · b[n,k]ᵀ` (rows of both operands are contiguous dots).
pub(crate) fn mm_nt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (x, y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            out[i * n + j] += acc;
        }
    }
}

/// `out[k,n] += a[m,k]ᵀ · b[m,n]` (outer-product accumulation).
pub(crate) fn mm_tn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let brow = &b[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av != 0.0 {
                let orow = &mut out[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    }
}

/// 2-D matrix product: `[m, k] · [k, n] -> [m, n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (sa, sb) = (a.shape(), b.shape());
    assert_eq!(sa.len(), 2, "matmul: lhs must be rank 2, got {sa:?}");
    assert_eq!(sb.len(), 2, "matmul: rhs must be rank 2, got {sb:?}");
    assert_eq!(sa[1], sb[0], "matmul: inner dims {sa:?} x {sb:?}");
    let (m, k, n) = (sa[0], sa[1], sb[1]);
    let mut data = vec![0.0f32; m * n];
    mm_nn(&a.data(), &b.data(), m, k, n, &mut data);
    Tensor::from_op(&[m, n], data, vec![a.clone(), b.clone()], Box::new(move |ctx| {
        let g = ctx.out_grad;
        if ctx.parents[0].requires_grad() {
            // da = g · bᵀ
            let mut da = vec![0.0f32; m * k];
            mm_nt(g, &ctx.parents[1].data(), m, n, k, &mut da);
            ctx.parents[0].accumulate_grad(&da);
        }
        if ctx.parents[1].requires_grad() {
            // db = aᵀ · g
            let mut db = vec![0.0f32; k * n];
            mm_tn(&ctx.parents[0].data(), g, m, k, n, &mut db);
            ctx.parents[1].accumulate_grad(&db);
        }
    }))
}

/// Batched matrix product: `[B, m, k] · [B, k, n] -> [B, m, n]`.
pub fn bmm_nn(a: &Tensor, b: &Tensor) -> Tensor {
    let (sa, sb) = (a.shape(), b.shape());
    assert_eq!(sa.len(), 3, "bmm_nn: lhs must be rank 3, got {sa:?}");
    assert_eq!(sb.len(), 3, "bmm_nn: rhs must be rank 3, got {sb:?}");
    assert_eq!(sa[0], sb[0], "bmm_nn: batch dims differ");
    assert_eq!(sa[2], sb[1], "bmm_nn: inner dims {sa:?} x {sb:?}");
    let (bs, m, k, n) = (sa[0], sa[1], sa[2], sb[2]);
    let mut data = vec![0.0f32; bs * m * n];
    {
        let (ad, bd) = (a.data(), b.data());
        for i in 0..bs {
            mm_nn(
                &ad[i * m * k..(i + 1) * m * k],
                &bd[i * k * n..(i + 1) * k * n],
                m,
                k,
                n,
                &mut data[i * m * n..(i + 1) * m * n],
            );
        }
    }
    Tensor::from_op(&[bs, m, n], data, vec![a.clone(), b.clone()], Box::new(move |ctx| {
        let g = ctx.out_grad;
        if ctx.parents[0].requires_grad() {
            let bd = ctx.parents[1].data();
            let mut da = vec![0.0f32; bs * m * k];
            for i in 0..bs {
                mm_nt(
                    &g[i * m * n..(i + 1) * m * n],
                    &bd[i * k * n..(i + 1) * k * n],
                    m,
                    n,
                    k,
                    &mut da[i * m * k..(i + 1) * m * k],
                );
            }
            ctx.parents[0].accumulate_grad(&da);
        }
        if ctx.parents[1].requires_grad() {
            let ad = ctx.parents[0].data();
            let mut db = vec![0.0f32; bs * k * n];
            for i in 0..bs {
                mm_tn(
                    &ad[i * m * k..(i + 1) * m * k],
                    &g[i * m * n..(i + 1) * m * n],
                    m,
                    k,
                    n,
                    &mut db[i * k * n..(i + 1) * k * n],
                );
            }
            ctx.parents[1].accumulate_grad(&db);
        }
    }))
}

/// Batched `a · bᵀ`: `[B, m, k] · [B, n, k]ᵀ -> [B, m, n]`.
///
/// This is the match-score computation of Eq. 8 (`X_a · X_bᵀ`).
pub fn bmm_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (sa, sb) = (a.shape(), b.shape());
    assert_eq!(sa.len(), 3, "bmm_nt: lhs must be rank 3, got {sa:?}");
    assert_eq!(sb.len(), 3, "bmm_nt: rhs must be rank 3, got {sb:?}");
    assert_eq!(sa[0], sb[0], "bmm_nt: batch dims differ");
    assert_eq!(sa[2], sb[2], "bmm_nt: feature dims {sa:?} x {sb:?}");
    let (bs, m, k, n) = (sa[0], sa[1], sa[2], sb[1]);
    let mut data = vec![0.0f32; bs * m * n];
    {
        let (ad, bd) = (a.data(), b.data());
        for i in 0..bs {
            mm_nt(
                &ad[i * m * k..(i + 1) * m * k],
                &bd[i * n * k..(i + 1) * n * k],
                m,
                k,
                n,
                &mut data[i * m * n..(i + 1) * m * n],
            );
        }
    }
    Tensor::from_op(&[bs, m, n], data, vec![a.clone(), b.clone()], Box::new(move |ctx| {
        let g = ctx.out_grad;
        if ctx.parents[0].requires_grad() {
            // da = g · b
            let bd = ctx.parents[1].data();
            let mut da = vec![0.0f32; bs * m * k];
            for i in 0..bs {
                mm_nn(
                    &g[i * m * n..(i + 1) * m * n],
                    &bd[i * n * k..(i + 1) * n * k],
                    m,
                    n,
                    k,
                    &mut da[i * m * k..(i + 1) * m * k],
                );
            }
            ctx.parents[0].accumulate_grad(&da);
        }
        if ctx.parents[1].requires_grad() {
            // db = gᵀ · a
            let ad = ctx.parents[0].data();
            let mut db = vec![0.0f32; bs * n * k];
            for i in 0..bs {
                mm_tn(
                    &g[i * m * n..(i + 1) * m * n],
                    &ad[i * m * k..(i + 1) * m * k],
                    m,
                    n,
                    k,
                    &mut db[i * n * k..(i + 1) * n * k],
                );
            }
            ctx.parents[1].accumulate_grad(&db);
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::gradcheck::check;
    use crate::ops::sum_all;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let eye = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert_eq!(matmul(&a, &eye).to_vec(), a.to_vec());
    }

    #[test]
    fn matmul_known_values() {
        // [1 2; 3 4] x [5 6; 7 8] = [19 22; 43 50]
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        assert_eq!(matmul(&a, &b).to_vec(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let b = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]);
        let y = matmul(&a, &b);
        assert_eq!(y.shape(), &[2, 4]);
        // row0 = [0,1,2] -> [0*0+1*4+2*8, ...] = [20, 23, 26, 29]
        assert_eq!(&y.to_vec()[..4], &[20.0, 23.0, 26.0, 29.0]);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_bad_dims_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn matmul_grads() {
        let a = Tensor::param(vec![0.5, -1.0, 2.0, 0.1, 0.7, -0.3], &[2, 3]);
        let b = Tensor::param(vec![1.0, 2.0, -0.5, 0.3, 0.9, -1.2], &[3, 2]);
        check(&[a, b], |t| sum_all(&matmul(&t[0], &t[1])), 1e-2);
    }

    #[test]
    fn bmm_nt_matches_manual_transpose() {
        // a: [1,2,3], b: [1,2,3]; a·bᵀ should be [1,2,2].
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0], &[1, 2, 3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[1, 2, 3]);
        let y = bmm_nt(&a, &b);
        // row0 of a picks column0 of bᵀ => [b00, b10] = [1, 4]
        assert_eq!(y.to_vec(), vec![1.0, 4.0, 2.0, 5.0]);
    }

    #[test]
    fn bmm_nn_batches_independently() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0, 2.0], &[2, 2, 2]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0], &[2, 2, 2]);
        let y = bmm_nn(&a, &b);
        assert_eq!(y.to_vec(), vec![1.0, 2.0, 3.0, 4.0, 10.0, 12.0, 14.0, 16.0]);
    }

    #[test]
    fn bmm_grads() {
        let a = Tensor::param((0..12).map(|x| 0.1 * x as f32 - 0.5).collect(), &[2, 2, 3]);
        let b = Tensor::param((0..12).map(|x| 0.2 * x as f32 - 1.0).collect(), &[2, 3, 2]);
        check(&[a.clone(), b], |t| sum_all(&bmm_nn(&t[0], &t[1])), 1e-2);
        let c = Tensor::param((0..12).map(|x| 0.15 * x as f32 - 0.7).collect(), &[2, 2, 3]);
        check(&[a, c], |t| sum_all(&bmm_nt(&t[0], &t[1])), 1e-2);
    }
}
