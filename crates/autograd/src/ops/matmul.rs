//! Dense matrix products: 2-D matmul and batched 3-D variants.
//!
//! `bmm_nt` (`a · bᵀ` per batch) exists so the matching mechanism
//! `P = softmax(X_a X_bᵀ)` never materializes a transpose.
//!
//! The arithmetic lives in [`crate::kernels`] (cache-blocked GEMM with a
//! naive fallback). The batch loops of `bmm_nn`/`bmm_nt` — forward and both
//! backward products — fan out over intra-op worker threads via
//! [`crate::threading::par_batch`]: batch items write disjoint `chunks_mut`
//! slices, so no tensor ever crosses a thread boundary.

use crate::kernels::{mm_nn, mm_nt, mm_tn};
use crate::profile::op_scope;
use crate::threading::par_batch;
use crate::Tensor;

/// 2-D matrix product: `[m, k] · [k, n] -> [m, n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (sa, sb) = (a.shape(), b.shape());
    assert_eq!(sa.len(), 2, "matmul: lhs must be rank 2, got {sa:?}");
    assert_eq!(sb.len(), 2, "matmul: rhs must be rank 2, got {sb:?}");
    assert_eq!(sa[1], sb[0], "matmul: inner dims {sa:?} x {sb:?}");
    let (m, k, n) = (sa[0], sa[1], sb[1]);
    let _prof = op_scope("matmul", 2 * (m * k * n) as u64);
    let mut data = vec![0.0f32; m * n];
    mm_nn(&a.data(), &b.data(), m, k, n, &mut data);
    Tensor::from_op(&[m, n], data, vec![a.clone(), b.clone()], Box::new(move |ctx| {
        let g = ctx.out_grad;
        // The kernels accumulate (+=), so both products land directly in the
        // pooled gradient buffers — no zeroed temporary, no second add pass.
        if ctx.parents[0].requires_grad() {
            // da += g · bᵀ
            let bd = ctx.parents[1].data();
            ctx.parents[0].accumulate_grad_with(|da| mm_nt(g, &bd, m, n, k, da));
        }
        if ctx.parents[1].requires_grad() {
            // db += aᵀ · g
            let ad = ctx.parents[0].data();
            ctx.parents[1].accumulate_grad_with(|db| mm_tn(&ad, g, m, k, n, db));
        }
    }))
}

/// Batched matrix product: `[B, m, k] · [B, k, n] -> [B, m, n]`.
pub fn bmm_nn(a: &Tensor, b: &Tensor) -> Tensor {
    let (sa, sb) = (a.shape(), b.shape());
    assert_eq!(sa.len(), 3, "bmm_nn: lhs must be rank 3, got {sa:?}");
    assert_eq!(sb.len(), 3, "bmm_nn: rhs must be rank 3, got {sb:?}");
    assert_eq!(sa[0], sb[0], "bmm_nn: batch dims differ");
    assert_eq!(sa[2], sb[1], "bmm_nn: inner dims {sa:?} x {sb:?}");
    let (bs, m, k, n) = (sa[0], sa[1], sa[2], sb[2]);
    let _prof = op_scope("bmm_nn", 2 * (bs * m * k * n) as u64);
    let mut data = vec![0.0f32; bs * m * n];
    {
        let (ad_ref, bd_ref) = (a.data(), b.data());
        let (ad, bd): (&[f32], &[f32]) = (&ad_ref, &bd_ref);
        par_batch(&mut data, m * n, m * n * k, |i, out| {
            mm_nn(&ad[i * m * k..(i + 1) * m * k], &bd[i * k * n..(i + 1) * k * n], m, k, n, out);
        });
    }
    Tensor::from_op(&[bs, m, n], data, vec![a.clone(), b.clone()], Box::new(move |ctx| {
        let g = ctx.out_grad;
        // Accumulating kernels write straight into the pooled grad buffers;
        // batch items still cover disjoint chunks under par_batch.
        if ctx.parents[0].requires_grad() {
            let bd_ref = ctx.parents[1].data();
            let bd: &[f32] = &bd_ref;
            ctx.parents[0].accumulate_grad_with(|da| {
                par_batch(da, m * k, m * n * k, |i, out| {
                    mm_nt(&g[i * m * n..(i + 1) * m * n], &bd[i * k * n..(i + 1) * k * n], m, n, k, out);
                });
            });
        }
        if ctx.parents[1].requires_grad() {
            let ad_ref = ctx.parents[0].data();
            let ad: &[f32] = &ad_ref;
            ctx.parents[1].accumulate_grad_with(|db| {
                par_batch(db, k * n, m * n * k, |i, out| {
                    mm_tn(&ad[i * m * k..(i + 1) * m * k], &g[i * m * n..(i + 1) * m * n], m, k, n, out);
                });
            });
        }
    }))
}

/// Batched `a · bᵀ`: `[B, m, k] · [B, n, k]ᵀ -> [B, m, n]`.
///
/// This is the match-score computation of Eq. 8 (`X_a · X_bᵀ`).
pub fn bmm_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (sa, sb) = (a.shape(), b.shape());
    assert_eq!(sa.len(), 3, "bmm_nt: lhs must be rank 3, got {sa:?}");
    assert_eq!(sb.len(), 3, "bmm_nt: rhs must be rank 3, got {sb:?}");
    assert_eq!(sa[0], sb[0], "bmm_nt: batch dims differ");
    assert_eq!(sa[2], sb[2], "bmm_nt: feature dims {sa:?} x {sb:?}");
    let (bs, m, k, n) = (sa[0], sa[1], sa[2], sb[1]);
    let _prof = op_scope("bmm_nt", 2 * (bs * m * k * n) as u64);
    let mut data = vec![0.0f32; bs * m * n];
    {
        let (ad_ref, bd_ref) = (a.data(), b.data());
        let (ad, bd): (&[f32], &[f32]) = (&ad_ref, &bd_ref);
        par_batch(&mut data, m * n, m * n * k, |i, out| {
            mm_nt(&ad[i * m * k..(i + 1) * m * k], &bd[i * n * k..(i + 1) * n * k], m, k, n, out);
        });
    }
    Tensor::from_op(&[bs, m, n], data, vec![a.clone(), b.clone()], Box::new(move |ctx| {
        let g = ctx.out_grad;
        if ctx.parents[0].requires_grad() {
            // da += g · b
            let bd_ref = ctx.parents[1].data();
            let bd: &[f32] = &bd_ref;
            ctx.parents[0].accumulate_grad_with(|da| {
                par_batch(da, m * k, m * n * k, |i, out| {
                    mm_nn(&g[i * m * n..(i + 1) * m * n], &bd[i * n * k..(i + 1) * n * k], m, n, k, out);
                });
            });
        }
        if ctx.parents[1].requires_grad() {
            // db += gᵀ · a
            let ad_ref = ctx.parents[0].data();
            let ad: &[f32] = &ad_ref;
            ctx.parents[1].accumulate_grad_with(|db| {
                par_batch(db, n * k, m * n * k, |i, out| {
                    mm_tn(&g[i * m * n..(i + 1) * m * n], &ad[i * m * k..(i + 1) * m * k], m, n, k, out);
                });
            });
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::gradcheck::check;
    use crate::ops::sum_all;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let eye = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert_eq!(matmul(&a, &eye).to_vec(), a.to_vec());
    }

    #[test]
    fn matmul_known_values() {
        // [1 2; 3 4] x [5 6; 7 8] = [19 22; 43 50]
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        assert_eq!(matmul(&a, &b).to_vec(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let b = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]);
        let y = matmul(&a, &b);
        assert_eq!(y.shape(), &[2, 4]);
        // row0 = [0,1,2] -> [0*0+1*4+2*8, ...] = [20, 23, 26, 29]
        assert_eq!(&y.to_vec()[..4], &[20.0, 23.0, 26.0, 29.0]);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_bad_dims_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn matmul_grads() {
        let a = Tensor::param(vec![0.5, -1.0, 2.0, 0.1, 0.7, -0.3], &[2, 3]);
        let b = Tensor::param(vec![1.0, 2.0, -0.5, 0.3, 0.9, -1.2], &[3, 2]);
        check(&[a, b], |t| sum_all(&matmul(&t[0], &t[1])), 1e-2);
    }

    #[test]
    fn bmm_nt_matches_manual_transpose() {
        // a: [1,2,3], b: [1,2,3]; a·bᵀ should be [1,2,2].
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0], &[1, 2, 3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[1, 2, 3]);
        let y = bmm_nt(&a, &b);
        // row0 of a picks column0 of bᵀ => [b00, b10] = [1, 4]
        assert_eq!(y.to_vec(), vec![1.0, 4.0, 2.0, 5.0]);
    }

    #[test]
    fn bmm_nn_batches_independently() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0, 2.0], &[2, 2, 2]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0], &[2, 2, 2]);
        let y = bmm_nn(&a, &b);
        assert_eq!(y.to_vec(), vec![1.0, 2.0, 3.0, 4.0, 10.0, 12.0, 14.0, 16.0]);
    }

    #[test]
    fn bmm_grads() {
        let a = Tensor::param((0..12).map(|x| 0.1 * x as f32 - 0.5).collect(), &[2, 2, 3]);
        let b = Tensor::param((0..12).map(|x| 0.2 * x as f32 - 1.0).collect(), &[2, 3, 2]);
        check(&[a.clone(), b], |t| sum_all(&bmm_nn(&t[0], &t[1])), 1e-2);
        let c = Tensor::param((0..12).map(|x| 0.15 * x as f32 - 0.7).collect(), &[2, 2, 3]);
        check(&[a, c], |t| sum_all(&bmm_nt(&t[0], &t[1])), 1e-2);
    }

    #[test]
    fn bmm_results_independent_of_intra_op_threads() {
        // Large enough to clear the parallel-dispatch flop threshold.
        let (bs, m, k, n) = (8usize, 20, 16, 24);
        let av: Vec<f32> = (0..bs * m * k).map(|x| ((x * 31 % 97) as f32 - 48.0) / 37.0).collect();
        let bv: Vec<f32> = (0..bs * k * n).map(|x| ((x * 17 % 89) as f32 - 44.0) / 29.0).collect();
        let a = Tensor::from_vec(av, &[bs, m, k]);
        let b = Tensor::from_vec(bv, &[bs, k, n]);
        let serial = bmm_nn(&a, &b).to_vec();
        crate::threading::set_intra_op_threads(4);
        let parallel = bmm_nn(&a, &b).to_vec();
        crate::threading::set_intra_op_threads(1);
        assert_eq!(serial, parallel, "intra-op threading changed bmm output bits");
    }
}
