//! Reductions and regression-loss primitives.

use super::rows_of;
use crate::profile::op_scope;
use crate::Tensor;

/// Sum of all elements, producing a `[1]` scalar.
pub fn sum_all(a: &Tensor) -> Tensor {
    let _prof = op_scope("sum_all", a.numel() as u64);
    let s: f32 = a.data().iter().sum();
    let numel = a.numel();
    Tensor::from_op(&[1], vec![s], vec![a.clone()], Box::new(move |ctx| {
        if ctx.parents[0].requires_grad() {
            ctx.parents[0].accumulate_grad(&vec![ctx.out_grad[0]; numel]);
        }
    }))
}

/// Mean of all elements, producing a `[1]` scalar.
pub fn mean_all(a: &Tensor) -> Tensor {
    let n = a.numel() as f32;
    super::scale(&sum_all(a), 1.0 / n)
}

/// Sum over the last dimension: `[.., n] -> [..]` (rank-1 input yields `[1]`).
pub fn sum_last(a: &Tensor) -> Tensor {
    let _prof = op_scope("sum_last", a.numel() as u64);
    let n = *a.shape().last().expect("sum_last: rank >= 1");
    let rows = rows_of(a.shape());
    let data: Vec<f32> = a.data().chunks_exact(n).map(|c| c.iter().sum()).collect();
    let out_shape: Vec<usize> = if a.shape().len() == 1 {
        vec![1]
    } else {
        a.shape()[..a.shape().len() - 1].to_vec()
    };
    Tensor::from_op(&out_shape, data, vec![a.clone()], Box::new(move |ctx| {
        if ctx.parents[0].requires_grad() {
            let mut g = vec![0.0f32; rows * n];
            for r in 0..rows {
                let gr = ctx.out_grad[r];
                for v in &mut g[r * n..(r + 1) * n] {
                    *v = gr;
                }
            }
            ctx.parents[0].accumulate_grad(&g);
        }
    }))
}

/// Elementwise q-error between a prediction and a constant target:
/// `max(p, t) / min(p, t)`, both clamped to `eps` (Moerkotte et al., the loss
/// compared against MSE in the paper's Fig. 3 ablation).
///
/// The gradient flows to `pred` only; `target` is treated as a constant.
pub fn qerror(pred: &Tensor, target: &Tensor, eps: f32) -> Tensor {
    let _prof = op_scope("qerror", 4 * pred.numel() as u64);
    assert_eq!(pred.shape(), target.shape(), "qerror: shape mismatch");
    let t: Vec<f32> = target.data().iter().map(|&x| x.max(eps)).collect();
    let data: Vec<f32> = pred
        .data()
        .iter()
        .zip(&t)
        .map(|(&p, &tv)| {
            let p = p.max(eps);
            if p > tv {
                p / tv
            } else {
                tv / p
            }
        })
        .collect();
    Tensor::from_op(pred.shape(), data, vec![pred.clone()], Box::new(move |ctx| {
        if ctx.parents[0].requires_grad() {
            let p = ctx.parents[0].data();
            let g: Vec<f32> = ctx
                .out_grad
                .iter()
                .zip(p.iter())
                .zip(&t)
                .map(|((&g, &pv), &tv)| {
                    let pv = pv.max(eps);
                    if pv > tv {
                        g / tv
                    } else {
                        -g * tv / (pv * pv)
                    }
                })
                .collect();
            ctx.parents[0].accumulate_grad(&g);
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::gradcheck::check;
    use crate::ops::mul;
    use crate::Tensor;

    #[test]
    fn sum_all_scalar() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        assert_eq!(sum_all(&a).item(), 6.0);
    }

    #[test]
    fn mean_all_scalar() {
        let a = Tensor::from_vec(vec![2.0, 4.0], &[2]);
        assert_eq!(mean_all(&a).item(), 3.0);
    }

    #[test]
    fn sum_last_reduces_one_axis() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let y = sum_last(&a);
        assert_eq!(y.shape(), &[2]);
        assert_eq!(y.to_vec(), vec![6.0, 15.0]);
    }

    #[test]
    fn sum_last_rank3() {
        let a = Tensor::from_vec((1..=8).map(|x| x as f32).collect(), &[2, 2, 2]);
        let y = sum_last(&a);
        assert_eq!(y.shape(), &[2, 2]);
        assert_eq!(y.to_vec(), vec![3.0, 7.0, 11.0, 15.0]);
    }

    #[test]
    fn sum_grads() {
        let a = Tensor::param(vec![0.5, -1.0, 2.0, 0.3], &[2, 2]);
        check(std::slice::from_ref(&a), |t| sum_all(&mul(&t[0], &t[0])), 1e-2);
        check(&[a], |t| sum_all(&mul(&sum_last(&t[0]), &sum_last(&t[0]))), 1e-2);
    }

    #[test]
    fn qerror_symmetric_ratio() {
        let p = Tensor::from_vec(vec![2.0, 0.5], &[2]);
        let t = Tensor::from_vec(vec![1.0, 1.0], &[2]);
        let y = qerror(&p, &t, 1e-6).to_vec();
        assert!((y[0] - 2.0).abs() < 1e-6);
        assert!((y[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn qerror_is_one_at_equality() {
        let p = Tensor::from_vec(vec![0.7], &[1]);
        let t = Tensor::from_vec(vec![0.7], &[1]);
        assert!((qerror(&p, &t, 1e-6).item() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn qerror_grads_away_from_kink() {
        let p = Tensor::param(vec![2.0, 0.4], &[2]);
        let t = Tensor::from_vec(vec![1.0, 1.0], &[2]);
        check(&[p], |x| sum_all(&qerror(&x[0], &t, 1e-6)), 1e-2);
    }
}
