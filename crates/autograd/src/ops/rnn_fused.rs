//! Fused recurrent ops: the time-major execution model for LSTM/GRU.
//!
//! The step-unrolled recurrences (kept in [`crate::nn::reference`]) emit
//! ~16 graph nodes per time step — a `select_time` gather, two small
//! matmuls, four `slice_last` splits, four activations, and the state
//! arithmetic. At trajectory lengths in the hundreds that is thousands of
//! nodes per batch, and the profiler shows the graph bookkeeping (not the
//! GEMMs) dominating training time.
//!
//! The fused model replaces all of that with three op families:
//!
//! 1. [`rnn_gate_preproject`] — one `[B·T, d_in] × [d_in, G]` GEMM computes
//!    every time step's input projection at once and lays the result out
//!    **time-major** (`[T, B, G]`), so step `t` is the contiguous slice
//!    `[t·B·G, (t+1)·B·G)` — per-step access needs no gather node at all.
//! 2. [`lstm_cell_fused`] / [`gru_cell_fused`] — a single graph node per
//!    step: the recurrent GEMM, every gate nonlinearity, and the state
//!    update, with a hand-written backward. Gate activations are stashed in
//!    the node's output columns so the backward never recomputes a GEMM.
//! 3. [`collect_states`] — one node gathering the hidden columns of all `T`
//!    cell outputs into the `[B, T, h]` sequence output.
//!
//! A `T`-step forward is therefore `T + 2` nodes per direction, and every
//! backward scatter accumulates straight into the parent's pooled gradient
//! buffer ([`Tensor::accumulate_grad_with`]) — no zeroed temporaries.
//!
//! Cell output layouts (columns of the last dim):
//!
//! - LSTM (`[B, 7h]`): `[h | c | i | f | g | o | tanh(c)]`
//! - GRU  (`[B, 5h]`): `[h | r | z | n | q]` with `q = h_prev · W_hn`
//!
//! Only the `h` (and, for LSTM, `c`) columns ever receive gradient — the
//! stash columns exist so the backward can read the forward's intermediate
//! values from `out_data`.

use crate::kernels::{mm_nn, mm_nt, mm_tn};
use crate::profile::op_scope;
use crate::simd;
use crate::Tensor;

/// The forward elementwise block of one LSTM step, shared verbatim by the
/// graphed op and the no-grad inference path (`crate::infer`) so the two
/// stay bitwise identical. `z` is `[B, 4h]` (pre-projection plus the
/// recurrent GEMM, gate order `[i | f | g | o]`), `cp` is the `[B, h]`
/// previous cell state; writes the full `[B, 7h]` stash layout
/// `[h | c | i | f | g | o | tanh(c)]`. Gate activations run through the
/// SIMD-dispatched slice kernels.
pub(crate) fn lstm_step_elementwise(z: &[f32], cp: &[f32], bs: usize, h: usize, out: &mut [f32]) {
    debug_assert!(z.len() >= bs * 4 * h && cp.len() >= bs * h && out.len() >= bs * 7 * h);
    for b in 0..bs {
        let zr = &z[b * 4 * h..(b + 1) * 4 * h];
        let o = &mut out[b * 7 * h..(b + 1) * 7 * h];
        // Activated gates land in their stash columns: σ over [i | f]
        // (contiguous), tanh over g, σ over the output gate.
        o[2 * h..6 * h].copy_from_slice(zr);
        simd::sigmoid_inplace(&mut o[2 * h..4 * h]);
        simd::tanh_inplace(&mut o[4 * h..5 * h]);
        simd::sigmoid_inplace(&mut o[5 * h..6 * h]);
        for j in 0..h {
            // c = f ⊙ c_prev + i ⊙ g
            o[h + j] = o[3 * h + j] * cp[b * h + j] + o[2 * h + j] * o[4 * h + j];
        }
        o.copy_within(h..2 * h, 6 * h);
        simd::tanh_inplace(&mut o[6 * h..7 * h]);
        for j in 0..h {
            // h = o ⊙ tanh(c)
            o[j] = o[5 * h + j] * o[6 * h + j];
        }
    }
}

/// The forward elementwise block of one GRU step (see
/// [`lstm_step_elementwise`] for the sharing contract). `zr` is `[B, 2h]`
/// (`[r | z]` pre-activations), `q = h_prev · w_hn` is `[B, h]`, `pn_t` is
/// step `t`'s slice of the `n`-gate pre-projection, `hp` the packed `[B, h]`
/// previous hidden state; writes the `[B, 5h]` stash layout
/// `[h | r | z | n | q]`.
pub(crate) fn gru_step_elementwise(
    zr: &[f32],
    q: &[f32],
    pn_t: &[f32],
    hp: &[f32],
    bs: usize,
    h: usize,
    out: &mut [f32],
) {
    debug_assert!(zr.len() >= bs * 2 * h && q.len() >= bs * h && pn_t.len() >= bs * h);
    debug_assert!(hp.len() >= bs * h && out.len() >= bs * 5 * h);
    for b in 0..bs {
        let zr_row = &zr[b * 2 * h..(b + 1) * 2 * h];
        let o = &mut out[b * 5 * h..(b + 1) * 5 * h];
        o[h..3 * h].copy_from_slice(zr_row);
        simd::sigmoid_inplace(&mut o[h..3 * h]); // [r | z]
        o[4 * h..5 * h].copy_from_slice(&q[b * h..(b + 1) * h]);
        for j in 0..h {
            // n pre-activation: pre_n[t] + r ⊙ q
            o[3 * h + j] = pn_t[b * h + j] + o[h + j] * o[4 * h + j];
        }
        simd::tanh_inplace(&mut o[3 * h..4 * h]);
        for j in 0..h {
            // h = (1 − z) ⊙ n + z ⊙ h_prev
            o[j] = (1.0 - o[2 * h + j]) * o[3 * h + j] + o[2 * h + j] * hp[b * h + j];
        }
    }
}

/// Extract `[B, take)`-column rows of a `[B, s]` buffer into a contiguous
/// `[B, take]` buffer (the cell state tensors carry stash columns past the
/// recurrent state, so GEMM inputs must be repacked).
fn pack_cols(src: &[f32], bs: usize, s: usize, take: usize) -> Vec<f32> {
    debug_assert!(take <= s);
    let mut out = Vec::with_capacity(bs * take);
    for b in 0..bs {
        out.extend_from_slice(&src[b * s..b * s + take]);
    }
    out
}

/// All-steps input projection, emitted time-major.
///
/// `xs` is `[B, T, d_in]` (batch-major, as produced by the embedding
/// layers), `w` is `[d_in, G]`, `bias` is `[G]`. Returns `[T, B, G]` where
/// `out[t, b, :] = xs[b, t, :] · w + bias` — one GEMM for what the
/// step-unrolled path computed as `T` per-step matmuls.
pub fn rnn_gate_preproject(xs: &Tensor, w: &Tensor, bias: &Tensor) -> Tensor {
    let (sx, sw) = (xs.shape(), w.shape());
    assert_eq!(sx.len(), 3, "rnn_gate_preproject: xs must be [B, T, d_in], got {sx:?}");
    assert_eq!(sw.len(), 2, "rnn_gate_preproject: w must be [d_in, G], got {sw:?}");
    assert_eq!(sx[2], sw[0], "rnn_gate_preproject: inner dims {sx:?} x {sw:?}");
    let (bs, t_steps, d_in, g_dim) = (sx[0], sx[1], sx[2], sw[1]);
    assert_eq!(bias.shape(), &[g_dim], "rnn_gate_preproject: bias must be [G]");
    let _prof = op_scope(
        "rnn_gate_preproject",
        (2 * bs * t_steps * d_in * g_dim + bs * t_steps * g_dim) as u64,
    );
    // Repack xs into time-major [T·B, d_in] so one GEMM covers all steps.
    let xt = {
        let xd = xs.data();
        let mut xt = vec![0.0f32; t_steps * bs * d_in];
        for b in 0..bs {
            for t in 0..t_steps {
                let src = (b * t_steps + t) * d_in;
                let dst = (t * bs + b) * d_in;
                xt[dst..dst + d_in].copy_from_slice(&xd[src..src + d_in]);
            }
        }
        xt
    };
    let mut data = {
        // Seed the output with the broadcast bias; the GEMM accumulates on top.
        let bd = bias.data();
        let mut data = Vec::with_capacity(t_steps * bs * g_dim);
        for _ in 0..t_steps * bs {
            data.extend_from_slice(&bd);
        }
        data
    };
    mm_nn(&xt, &w.data(), t_steps * bs, d_in, g_dim, &mut data);
    Tensor::from_op(
        &[t_steps, bs, g_dim],
        data,
        vec![xs.clone(), w.clone(), bias.clone()],
        Box::new(move |ctx| {
            let g = ctx.out_grad;
            if ctx.parents[0].requires_grad() {
                // d xs = g · wᵀ, transposed back to batch-major.
                let mut dxt = vec![0.0f32; t_steps * bs * d_in];
                mm_nt(g, &ctx.parents[1].data(), t_steps * bs, g_dim, d_in, &mut dxt);
                ctx.parents[0].accumulate_grad_with(|dst| {
                    for b in 0..bs {
                        for t in 0..t_steps {
                            let src = (t * bs + b) * d_in;
                            let d0 = (b * t_steps + t) * d_in;
                            for (dv, sv) in dst[d0..d0 + d_in].iter_mut().zip(&dxt[src..src + d_in]) {
                                *dv += sv;
                            }
                        }
                    }
                });
            }
            if ctx.parents[1].requires_grad() {
                // d w = xtᵀ · g; the time-major repack is recomputed (O(B·T·d)
                // moves, far below the GEMM it feeds).
                let xd = ctx.parents[0].data();
                let mut xt = vec![0.0f32; t_steps * bs * d_in];
                for b in 0..bs {
                    for t in 0..t_steps {
                        let src = (b * t_steps + t) * d_in;
                        let dst = (t * bs + b) * d_in;
                        xt[dst..dst + d_in].copy_from_slice(&xd[src..src + d_in]);
                    }
                }
                ctx.parents[1].accumulate_grad_with(|dw| {
                    mm_tn(&xt, g, t_steps * bs, d_in, g_dim, dw);
                });
            }
            if ctx.parents[2].requires_grad() {
                ctx.parents[2].accumulate_grad_with(|db| {
                    for chunk in g.chunks_exact(g_dim) {
                        for (bv, gv) in db.iter_mut().zip(chunk) {
                            *bv += gv;
                        }
                    }
                });
            }
        }),
    )
}

/// One fused LSTM step: a single graph node computing
///
/// ```text
/// z = pre[t] + h_prev · w_hh          (gate order [i | f | g | o])
/// i = σ(z_i)  f = σ(z_f)  g = tanh(z_g)  o = σ(z_o)
/// c = f ⊙ c_prev + i ⊙ g
/// h = o ⊙ tanh(c)
/// ```
///
/// `pre` is the `[T, B, 4h]` time-major projection from
/// [`rnn_gate_preproject`]; `state` carries the previous step's output (or a
/// `[B, 2h]` zero tensor at `t = 0`) with `h_prev`/`c_prev` in its first two
/// column blocks. Output is `[B, 7h]`: `[h | c | i | f | g | o | tanh(c)]` —
/// the gate/activation stash lets the hand-written backward run without
/// recomputing the GEMM or any transcendental.
pub fn lstm_cell_fused(pre: &Tensor, t: usize, state: &Tensor, w_hh: &Tensor) -> Tensor {
    let sp = pre.shape();
    assert_eq!(sp.len(), 3, "lstm_cell_fused: pre must be [T, B, 4h], got {sp:?}");
    let (t_steps, bs, h4) = (sp[0], sp[1], sp[2]);
    assert!(t < t_steps, "lstm_cell_fused: step {t} out of {t_steps}");
    assert_eq!(h4 % 4, 0, "lstm_cell_fused: gate dim {h4} not divisible by 4");
    let h = h4 / 4;
    let ss = state.shape();
    assert_eq!(ss[0], bs, "lstm_cell_fused: state batch mismatch");
    let s_cols = ss[1];
    assert!(s_cols >= 2 * h, "lstm_cell_fused: state must carry [h | c], got {ss:?}");
    assert_eq!(w_hh.shape(), &[h, 4 * h], "lstm_cell_fused: w_hh must be [h, 4h]");
    let _prof = op_scope("lstm_cell_fused", (2 * bs * h * 4 * h + 24 * bs * h) as u64);

    let (hp, cp) = {
        let sd = state.data();
        (pack_cols(&sd, bs, s_cols, h), {
            let mut cp = Vec::with_capacity(bs * h);
            for b in 0..bs {
                cp.extend_from_slice(&sd[b * s_cols + h..b * s_cols + 2 * h]);
            }
            cp
        })
    };
    // z = pre[t] (contiguous time-major slice) + h_prev · w_hh.
    let mut z = pre.data()[t * bs * h4..(t + 1) * bs * h4].to_vec();
    mm_nn(&hp, &w_hh.data(), bs, h, 4 * h, &mut z);

    let mut data = vec![0.0f32; bs * 7 * h];
    lstm_step_elementwise(&z, &cp, bs, h, &mut data);

    Tensor::from_op(
        &[bs, 7 * h],
        data,
        vec![pre.clone(), state.clone(), w_hh.clone()],
        Box::new(move |ctx| {
            let og = ctx.out_grad;
            let od = ctx.out_data;
            let sd = ctx.parents[1].data();
            // dz per gate, then one contiguous scatter into pre's pooled grad
            // and two GEMMs for the recurrent weight / previous state.
            let mut dz = vec![0.0f32; bs * 4 * h];
            let mut dcp = vec![0.0f32; bs * h];
            for b in 0..bs {
                let o_row = &od[b * 7 * h..(b + 1) * 7 * h];
                let g_row = &og[b * 7 * h..(b + 1) * 7 * h];
                let dz_row = &mut dz[b * 4 * h..(b + 1) * 4 * h];
                for j in 0..h {
                    let (dh, dc_in) = (g_row[j], g_row[h + j]);
                    let (i_g, f_g, g_g, o_g) =
                        (o_row[2 * h + j], o_row[3 * h + j], o_row[4 * h + j], o_row[5 * h + j]);
                    let tc = o_row[6 * h + j];
                    let dc = dc_in + dh * o_g * (1.0 - tc * tc);
                    let d_o = dh * tc;
                    dz_row[j] = dc * g_g * i_g * (1.0 - i_g);
                    dz_row[h + j] = dc * sd[b * s_cols + h + j] * f_g * (1.0 - f_g);
                    dz_row[2 * h + j] = dc * i_g * (1.0 - g_g * g_g);
                    dz_row[3 * h + j] = d_o * o_g * (1.0 - o_g);
                    dcp[b * h + j] = dc * f_g;
                }
            }
            if ctx.parents[0].requires_grad() {
                ctx.parents[0].accumulate_grad_with(|g| {
                    let dst = &mut g[t * bs * 4 * h..(t + 1) * bs * 4 * h];
                    for (dv, sv) in dst.iter_mut().zip(&dz) {
                        *dv += sv;
                    }
                });
            }
            if ctx.parents[1].requires_grad() {
                // d h_prev = dz · w_hhᵀ; d c_prev = dc ⊙ f.
                let mut dhp = vec![0.0f32; bs * h];
                mm_nt(&dz, &ctx.parents[2].data(), bs, 4 * h, h, &mut dhp);
                ctx.parents[1].accumulate_grad_with(|g| {
                    for b in 0..bs {
                        for j in 0..h {
                            g[b * s_cols + j] += dhp[b * h + j];
                            g[b * s_cols + h + j] += dcp[b * h + j];
                        }
                    }
                });
            }
            if ctx.parents[2].requires_grad() {
                let hp = pack_cols(&sd, bs, s_cols, h);
                ctx.parents[2].accumulate_grad_with(|g| {
                    mm_tn(&hp, &dz, bs, h, 4 * h, g);
                });
            }
        }),
    )
}

/// One fused GRU step: a single graph node computing
///
/// ```text
/// [r | z] = σ(pre_rz[t] + h_prev · w_hh)
/// q = h_prev · w_hn
/// n = tanh(pre_n[t] + r ⊙ q)
/// h = (1 − z) ⊙ n + z ⊙ h_prev
/// ```
///
/// `pre_rz` is `[T, B, 2h]`, `pre_n` is `[T, B, h]` (both time-major from
/// [`rnn_gate_preproject`]); `state` is the previous output (or `[B, h]`
/// zeros at `t = 0`) with `h_prev` in its first column block. Output is
/// `[B, 5h]`: `[h | r | z | n | q]`.
pub fn gru_cell_fused(
    pre_rz: &Tensor,
    pre_n: &Tensor,
    t: usize,
    state: &Tensor,
    w_hh: &Tensor,
    w_hn: &Tensor,
) -> Tensor {
    let (srz, sn) = (pre_rz.shape(), pre_n.shape());
    assert_eq!(srz.len(), 3, "gru_cell_fused: pre_rz must be [T, B, 2h], got {srz:?}");
    assert_eq!(sn.len(), 3, "gru_cell_fused: pre_n must be [T, B, h], got {sn:?}");
    let (t_steps, bs, h2) = (srz[0], srz[1], srz[2]);
    assert_eq!(h2 % 2, 0, "gru_cell_fused: gate dim {h2} not divisible by 2");
    let h = h2 / 2;
    assert_eq!(sn, &[t_steps, bs, h], "gru_cell_fused: pre_n shape {sn:?} != [{t_steps}, {bs}, {h}]");
    assert!(t < t_steps, "gru_cell_fused: step {t} out of {t_steps}");
    let ss = state.shape();
    assert_eq!(ss[0], bs, "gru_cell_fused: state batch mismatch");
    let s_cols = ss[1];
    assert!(s_cols >= h, "gru_cell_fused: state must carry [h], got {ss:?}");
    assert_eq!(w_hh.shape(), &[h, 2 * h], "gru_cell_fused: w_hh must be [h, 2h]");
    assert_eq!(w_hn.shape(), &[h, h], "gru_cell_fused: w_hn must be [h, h]");
    let _prof = op_scope("gru_cell_fused", (2 * bs * h * 3 * h + 20 * bs * h) as u64);

    let hp = pack_cols(&state.data(), bs, s_cols, h);
    let mut zr = pre_rz.data()[t * bs * h2..(t + 1) * bs * h2].to_vec();
    mm_nn(&hp, &w_hh.data(), bs, h, 2 * h, &mut zr);
    let mut q = vec![0.0f32; bs * h];
    mm_nn(&hp, &w_hn.data(), bs, h, h, &mut q);

    let pn = pre_n.data();
    let pn_t = &pn[t * bs * h..(t + 1) * bs * h];
    let mut data = vec![0.0f32; bs * 5 * h];
    gru_step_elementwise(&zr, &q, pn_t, &hp, bs, h, &mut data);

    Tensor::from_op(
        &[bs, 5 * h],
        data,
        vec![pre_rz.clone(), pre_n.clone(), state.clone(), w_hh.clone(), w_hn.clone()],
        Box::new(move |ctx| {
            let og = ctx.out_grad;
            let od = ctx.out_data;
            let sd = ctx.parents[2].data();
            let mut drz = vec![0.0f32; bs * 2 * h]; // [drpre | dzpre]
            let mut da = vec![0.0f32; bs * h];
            let mut dq = vec![0.0f32; bs * h];
            let mut dhp = vec![0.0f32; bs * h]; // the elementwise z ⊙ dh part
            for b in 0..bs {
                let o_row = &od[b * 5 * h..(b + 1) * 5 * h];
                for j in 0..h {
                    let dh = og[b * 5 * h + j];
                    let (r_g, z_g, n_g, qv) =
                        (o_row[h + j], o_row[2 * h + j], o_row[3 * h + j], o_row[4 * h + j]);
                    let hp_v = sd[b * s_cols + j];
                    let dzg = dh * (hp_v - n_g);
                    let dn = dh * (1.0 - z_g);
                    let dav = dn * (1.0 - n_g * n_g);
                    da[b * h + j] = dav;
                    dq[b * h + j] = dav * r_g;
                    drz[b * 2 * h + j] = dav * qv * r_g * (1.0 - r_g);
                    drz[b * 2 * h + h + j] = dzg * z_g * (1.0 - z_g);
                    dhp[b * h + j] = dh * z_g;
                }
            }
            if ctx.parents[0].requires_grad() {
                ctx.parents[0].accumulate_grad_with(|g| {
                    let dst = &mut g[t * bs * 2 * h..(t + 1) * bs * 2 * h];
                    for (dv, sv) in dst.iter_mut().zip(&drz) {
                        *dv += sv;
                    }
                });
            }
            if ctx.parents[1].requires_grad() {
                ctx.parents[1].accumulate_grad_with(|g| {
                    let dst = &mut g[t * bs * h..(t + 1) * bs * h];
                    for (dv, sv) in dst.iter_mut().zip(&da) {
                        *dv += sv;
                    }
                });
            }
            if ctx.parents[2].requires_grad() {
                // d h_prev = z ⊙ dh + dq · w_hnᵀ + drz · w_hhᵀ.
                mm_nt(&dq, &ctx.parents[4].data(), bs, h, h, &mut dhp);
                mm_nt(&drz, &ctx.parents[3].data(), bs, 2 * h, h, &mut dhp);
                ctx.parents[2].accumulate_grad_with(|g| {
                    for b in 0..bs {
                        for j in 0..h {
                            g[b * s_cols + j] += dhp[b * h + j];
                        }
                    }
                });
            }
            let needs_hp = ctx.parents[3].requires_grad() || ctx.parents[4].requires_grad();
            if needs_hp {
                let hp = pack_cols(&sd, bs, s_cols, h);
                if ctx.parents[3].requires_grad() {
                    ctx.parents[3].accumulate_grad_with(|g| {
                        mm_tn(&hp, &drz, bs, h, 2 * h, g);
                    });
                }
                if ctx.parents[4].requires_grad() {
                    ctx.parents[4].accumulate_grad_with(|g| {
                        mm_tn(&hp, &dq, bs, h, h, g);
                    });
                }
            }
        }),
    )
}

/// Gather the hidden columns of `T` fused-cell outputs into `[B, T, h]`.
///
/// Each element of `states` is one step's `[B, s]` cell output with the
/// hidden state in columns `[0, h)`; this is the fused counterpart of
/// `stack_time` and the only node the whole output sequence costs.
pub fn collect_states(states: &[Tensor], h: usize) -> Tensor {
    assert!(!states.is_empty(), "collect_states: empty input");
    let s0 = states[0].shape().to_vec();
    assert_eq!(s0.len(), 2, "collect_states: states must be [B, s], got {s0:?}");
    assert!(s0[1] >= h, "collect_states: state width {} below hidden dim {h}", s0[1]);
    let (bs, s_cols) = (s0[0], s0[1]);
    let t_steps = states.len();
    let _prof = op_scope("collect_states", 0);
    for st in states {
        assert_eq!(st.shape(), &s0[..], "collect_states: inconsistent state shapes");
    }
    let mut data = vec![0.0f32; bs * t_steps * h];
    for (t, st) in states.iter().enumerate() {
        let sd = st.data();
        for b in 0..bs {
            let dst = (b * t_steps + t) * h;
            data[dst..dst + h].copy_from_slice(&sd[b * s_cols..b * s_cols + h]);
        }
    }
    Tensor::from_op(&[bs, t_steps, h], data, states.to_vec(), Box::new(move |ctx| {
        for (t, p) in ctx.parents.iter().enumerate() {
            if !p.requires_grad() {
                continue;
            }
            p.accumulate_grad_with(|g| {
                for b in 0..bs {
                    let src = (b * t_steps + t) * h;
                    for (gv, og) in
                        g[b * s_cols..b * s_cols + h].iter_mut().zip(&ctx.out_grad[src..src + h])
                    {
                        *gv += og;
                    }
                }
            });
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::gradcheck::check;
    use crate::ops::{self, mul, sum_all};

    #[test]
    fn preproject_matches_per_step_matmul() {
        let (bs, t_steps, d_in, g_dim) = (2, 3, 4, 5);
        let xs = Tensor::from_vec(
            (0..bs * t_steps * d_in).map(|i| (i as f32 * 0.37).sin()).collect(),
            &[bs, t_steps, d_in],
        );
        let w = Tensor::from_vec(
            (0..d_in * g_dim).map(|i| (i as f32 * 0.21).cos()).collect(),
            &[d_in, g_dim],
        );
        let bias = Tensor::from_vec((0..g_dim).map(|i| 0.1 * i as f32).collect(), &[g_dim]);
        let pre = rnn_gate_preproject(&xs, &w, &bias);
        assert_eq!(pre.shape(), &[t_steps, bs, g_dim]);
        let pv = pre.to_vec();
        for t in 0..t_steps {
            let x_t = ops::select_time(&xs, t);
            let want = ops::add_bias(&ops::matmul(&x_t, &w), &bias).to_vec();
            for b in 0..bs {
                for j in 0..g_dim {
                    let got = pv[(t * bs + b) * g_dim + j];
                    assert!(
                        (got - want[b * g_dim + j]).abs() < 1e-5,
                        "pre[{t},{b},{j}] = {got} vs {}",
                        want[b * g_dim + j]
                    );
                }
            }
        }
    }

    #[test]
    fn preproject_gradcheck() {
        let xs = Tensor::param((0..12).map(|i| 0.1 * i as f32 - 0.5).collect(), &[2, 3, 2]);
        let w = Tensor::param((0..6).map(|i| 0.2 * i as f32 - 0.4).collect(), &[2, 3]);
        let bias = Tensor::param(vec![0.1, -0.2, 0.3], &[3]);
        check(&[xs, w, bias], |t| {
            let p = rnn_gate_preproject(&t[0], &t[1], &t[2]);
            sum_all(&mul(&p, &p))
        }, 1e-2);
    }

    #[test]
    fn lstm_cell_gradcheck() {
        // Two chained fused steps so the state path (h and c) is exercised.
        let (bs, h, d_in) = (2usize, 2usize, 2usize);
        let xs = Tensor::param((0..bs * 2 * d_in).map(|i| 0.13 * i as f32 - 0.4).collect(), &[bs, 2, d_in]);
        let w = Tensor::param((0..d_in * 4 * h).map(|i| 0.07 * i as f32 - 0.5).collect(), &[d_in, 4 * h]);
        let bias = Tensor::param((0..4 * h).map(|i| 0.05 * i as f32 - 0.1).collect(), &[4 * h]);
        let w_hh = Tensor::param((0..h * 4 * h).map(|i| 0.06 * i as f32 - 0.3).collect(), &[h, 4 * h]);
        check(&[xs, w, bias, w_hh], |t| {
            let pre = rnn_gate_preproject(&t[0], &t[1], &t[2]);
            let s0 = Tensor::zeros(&[bs, 2 * h]);
            let s1 = lstm_cell_fused(&pre, 0, &s0, &t[3]);
            let s2 = lstm_cell_fused(&pre, 1, &s1, &t[3]);
            let z = collect_states(&[s1, s2], h);
            sum_all(&mul(&z, &z))
        }, 2e-2);
    }

    #[test]
    fn gru_cell_gradcheck() {
        let (bs, h, d_in) = (2usize, 2usize, 2usize);
        let xs = Tensor::param((0..bs * 2 * d_in).map(|i| 0.11 * i as f32 - 0.35).collect(), &[bs, 2, d_in]);
        let w_ih = Tensor::param((0..d_in * 2 * h).map(|i| 0.09 * i as f32 - 0.4).collect(), &[d_in, 2 * h]);
        let bias = Tensor::param((0..2 * h).map(|i| 0.04 * i as f32 - 0.05).collect(), &[2 * h]);
        let w_in = Tensor::param((0..d_in * h).map(|i| 0.08 * i as f32 - 0.2).collect(), &[d_in, h]);
        let bias_n = Tensor::param((0..h).map(|i| 0.03 * i as f32).collect(), &[h]);
        let w_hh = Tensor::param((0..h * 2 * h).map(|i| 0.05 * i as f32 - 0.25).collect(), &[h, 2 * h]);
        let w_hn = Tensor::param((0..h * h).map(|i| 0.1 * i as f32 - 0.15).collect(), &[h, h]);
        check(&[xs, w_ih, bias, w_in, bias_n, w_hh, w_hn], |t| {
            let pre_rz = rnn_gate_preproject(&t[0], &t[1], &t[2]);
            let pre_n = rnn_gate_preproject(&t[0], &t[3], &t[4]);
            let s0 = Tensor::zeros(&[bs, h]);
            let s1 = gru_cell_fused(&pre_rz, &pre_n, 0, &s0, &t[5], &t[6]);
            let s2 = gru_cell_fused(&pre_rz, &pre_n, 1, &s1, &t[5], &t[6]);
            let z = collect_states(&[s1, s2], h);
            sum_all(&mul(&z, &z))
        }, 2e-2);
    }

    #[test]
    fn collect_states_layout_and_grad() {
        // Two [B=2, s=3] states with h=2: out[b, t, :] = states[t][b, 0..2].
        let s1 = Tensor::from_vec(vec![1.0, 2.0, 9.0, 3.0, 4.0, 9.0], &[2, 3]);
        let s2 = Tensor::from_vec(vec![5.0, 6.0, 9.0, 7.0, 8.0, 9.0], &[2, 3]);
        let z = collect_states(&[s1, s2], 2);
        assert_eq!(z.shape(), &[2, 2, 2]);
        assert_eq!(z.to_vec(), vec![1.0, 2.0, 5.0, 6.0, 3.0, 4.0, 7.0, 8.0]);

        let p1 = Tensor::param(vec![0.1, 0.2, 0.9, 0.3, 0.4, 0.8], &[2, 3]);
        let p2 = Tensor::param(vec![0.5, 0.6, 0.7, 0.7, 0.8, 0.6], &[2, 3]);
        check(&[p1, p2], |t| {
            let z = collect_states(&[t[0].clone(), t[1].clone()], 2);
            sum_all(&mul(&z, &z))
        }, 1e-2);
    }
}
