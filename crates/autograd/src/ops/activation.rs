//! Pointwise nonlinearities.

use crate::profile::op_scope;
use crate::Tensor;

/// Logistic sigmoid `1 / (1 + e^{-x})`.
pub fn sigmoid(a: &Tensor) -> Tensor {
    let _prof = op_scope("sigmoid", 4 * a.numel() as u64);
    let data: Vec<f32> = a.data().iter().map(|&x| 1.0 / (1.0 + (-x).exp())).collect();
    Tensor::from_op(a.shape(), data, vec![a.clone()], Box::new(|ctx| {
        if ctx.parents[0].requires_grad() {
            let g: Vec<f32> = ctx
                .out_grad
                .iter()
                .zip(ctx.out_data)
                .map(|(g, y)| g * y * (1.0 - y))
                .collect();
            ctx.parents[0].accumulate_grad(&g);
        }
    }))
}

/// Hyperbolic tangent.
pub fn tanh(a: &Tensor) -> Tensor {
    let _prof = op_scope("tanh", 4 * a.numel() as u64);
    let data: Vec<f32> = a.data().iter().map(|&x| x.tanh()).collect();
    Tensor::from_op(a.shape(), data, vec![a.clone()], Box::new(|ctx| {
        if ctx.parents[0].requires_grad() {
            let g: Vec<f32> = ctx
                .out_grad
                .iter()
                .zip(ctx.out_data)
                .map(|(g, y)| g * (1.0 - y * y))
                .collect();
            ctx.parents[0].accumulate_grad(&g);
        }
    }))
}

/// LeakyReLU with the paper's slope of 0.1 (Eq. 5).
pub fn leaky_relu(a: &Tensor) -> Tensor {
    let _prof = op_scope("leaky_relu", a.numel() as u64);
    const SLOPE: f32 = 0.1;
    let data: Vec<f32> = a.data().iter().map(|&x| if x >= 0.0 { x } else { SLOPE * x }).collect();
    Tensor::from_op(a.shape(), data, vec![a.clone()], Box::new(|ctx| {
        if ctx.parents[0].requires_grad() {
            let x = ctx.parents[0].data();
            let g: Vec<f32> = ctx
                .out_grad
                .iter()
                .zip(x.iter())
                .map(|(g, &xi)| if xi >= 0.0 { *g } else { SLOPE * g })
                .collect();
            ctx.parents[0].accumulate_grad(&g);
        }
    }))
}

/// Elementwise `e^x`.
pub fn exp(a: &Tensor) -> Tensor {
    let _prof = op_scope("exp", 2 * a.numel() as u64);
    let data: Vec<f32> = a.data().iter().map(|&x| x.exp()).collect();
    Tensor::from_op(a.shape(), data, vec![a.clone()], Box::new(|ctx| {
        if ctx.parents[0].requires_grad() {
            let g: Vec<f32> = ctx.out_grad.iter().zip(ctx.out_data).map(|(g, y)| g * y).collect();
            ctx.parents[0].accumulate_grad(&g);
        }
    }))
}

/// Elementwise `sqrt(x + eps)`; `eps` keeps the gradient finite at zero
/// (used for Euclidean distances between nearly identical embeddings).
pub fn sqrt_eps(a: &Tensor, eps: f32) -> Tensor {
    let _prof = op_scope("sqrt_eps", 2 * a.numel() as u64);
    let data: Vec<f32> = a.data().iter().map(|&x| (x + eps).sqrt()).collect();
    Tensor::from_op(a.shape(), data, vec![a.clone()], Box::new(move |ctx| {
        if ctx.parents[0].requires_grad() {
            let g: Vec<f32> = ctx
                .out_grad
                .iter()
                .zip(ctx.out_data)
                .map(|(g, y)| g / (2.0 * y.max(1e-12)))
                .collect();
            ctx.parents[0].accumulate_grad(&g);
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::gradcheck::check;
    use crate::ops::{mul, sum_all};

    fn input() -> Tensor {
        Tensor::param(vec![-2.0, -0.5, 0.0, 0.3, 1.7, 4.0], &[2, 3])
    }

    #[test]
    fn sigmoid_range_and_grad() {
        let x = input();
        let y = sigmoid(&x);
        assert!(y.to_vec().iter().all(|&v| (0.0..=1.0).contains(&v)));
        check(&[x], |t| sum_all(&mul(&sigmoid(&t[0]), &sigmoid(&t[0]))), 1e-2);
    }

    #[test]
    fn tanh_odd_and_grad() {
        let x = Tensor::from_vec(vec![-1.0, 1.0], &[2]);
        let y = tanh(&x).to_vec();
        assert!((y[0] + y[1]).abs() < 1e-6);
        check(&[input()], |t| sum_all(&tanh(&t[0])), 1e-2);
    }

    #[test]
    fn leaky_relu_matches_eq5() {
        let x = Tensor::from_vec(vec![-10.0, 5.0], &[2]);
        assert_eq!(leaky_relu(&x).to_vec(), vec![-1.0, 5.0]);
        check(&[input()], |t| sum_all(&mul(&leaky_relu(&t[0]), &leaky_relu(&t[0]))), 1e-2);
    }

    #[test]
    fn exp_and_sqrt_grads() {
        let x = Tensor::param(vec![0.1, 0.5, 1.0, 2.0], &[4]);
        check(std::slice::from_ref(&x), |t| sum_all(&exp(&t[0])), 1e-2);
        check(&[x], |t| sum_all(&sqrt_eps(&t[0], 1e-6)), 1e-2);
    }
}
