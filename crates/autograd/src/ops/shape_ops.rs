//! Shape manipulation: reshape, concat, slicing, and the time-axis
//! gather/scatter ops the LSTM and the final-representation selection need.

use super::rows_of;
use crate::profile::op_scope;
use crate::Tensor;

/// Reinterpret `a` with a new shape (same number of elements).
pub fn reshape(a: &Tensor, shape: &[usize]) -> Tensor {
    let _prof = op_scope("reshape", 0);
    let numel: usize = shape.iter().product();
    assert_eq!(a.numel(), numel, "reshape: {:?} -> {:?} changes numel", a.shape(), shape);
    Tensor::from_op(shape, a.to_vec(), vec![a.clone()], Box::new(|ctx| {
        if ctx.parents[0].requires_grad() {
            ctx.parents[0].accumulate_grad(ctx.out_grad);
        }
    }))
}

/// Concatenate along the last dimension: `[.., d1] ++ [.., d2] -> [.., d1+d2]`.
///
/// Used for `X_a ⊕ M_{a←b}` before the LSTM (Eq. 12).
pub fn concat_last(a: &Tensor, b: &Tensor) -> Tensor {
    let _prof = op_scope("concat_last", 0);
    let (sa, sb) = (a.shape(), b.shape());
    assert_eq!(sa.len(), sb.len(), "concat_last: rank mismatch");
    assert_eq!(
        &sa[..sa.len() - 1],
        &sb[..sb.len() - 1],
        "concat_last: leading dims differ: {sa:?} vs {sb:?}"
    );
    let (d1, d2) = (sa[sa.len() - 1], sb[sb.len() - 1]);
    let rows = rows_of(sa);
    let mut shape = sa.to_vec();
    *shape.last_mut().unwrap() = d1 + d2;
    let mut data = Vec::with_capacity(rows * (d1 + d2));
    {
        let (ad, bd) = (a.data(), b.data());
        for r in 0..rows {
            data.extend_from_slice(&ad[r * d1..(r + 1) * d1]);
            data.extend_from_slice(&bd[r * d2..(r + 1) * d2]);
        }
    }
    Tensor::from_op(&shape, data, vec![a.clone(), b.clone()], Box::new(move |ctx| {
        let d = d1 + d2;
        if ctx.parents[0].requires_grad() {
            ctx.parents[0].accumulate_grad_with(|g| {
                for r in 0..rows {
                    for (gv, og) in g[r * d1..(r + 1) * d1].iter_mut().zip(&ctx.out_grad[r * d..r * d + d1]) {
                        *gv += og;
                    }
                }
            });
        }
        if ctx.parents[1].requires_grad() {
            ctx.parents[1].accumulate_grad_with(|g| {
                for r in 0..rows {
                    for (gv, og) in g[r * d2..(r + 1) * d2].iter_mut().zip(&ctx.out_grad[r * d + d1..(r + 1) * d]) {
                        *gv += og;
                    }
                }
            });
        }
    }))
}

/// Slice `[start, start+len)` of the last dimension (e.g. LSTM gate split).
pub fn slice_last(a: &Tensor, start: usize, len: usize) -> Tensor {
    let _prof = op_scope("slice_last", 0);
    let n = *a.shape().last().expect("slice_last: rank >= 1");
    assert!(start + len <= n, "slice_last: [{start}, {}) out of last dim {n}", start + len);
    let rows = rows_of(a.shape());
    let mut shape = a.shape().to_vec();
    *shape.last_mut().unwrap() = len;
    let mut data = Vec::with_capacity(rows * len);
    {
        let ad = a.data();
        for r in 0..rows {
            data.extend_from_slice(&ad[r * n + start..r * n + start + len]);
        }
    }
    Tensor::from_op(&shape, data, vec![a.clone()], Box::new(move |ctx| {
        if ctx.parents[0].requires_grad() {
            ctx.parents[0].accumulate_grad_with(|g| {
                for r in 0..rows {
                    for (gv, og) in g[r * n + start..r * n + start + len]
                        .iter_mut()
                        .zip(&ctx.out_grad[r * len..(r + 1) * len])
                    {
                        *gv += og;
                    }
                }
            });
        }
    }))
}

/// Select time step `t` from `[B, m, d]`, yielding `[B, d]`.
pub fn select_time(a: &Tensor, t: usize) -> Tensor {
    let _prof = op_scope("select_time", 0);
    let s = a.shape();
    assert_eq!(s.len(), 3, "select_time: need [B, m, d], got {s:?}");
    let (bs, m, d) = (s[0], s[1], s[2]);
    assert!(t < m, "select_time: t={t} out of {m} steps");
    let mut data = Vec::with_capacity(bs * d);
    {
        let ad = a.data();
        for b in 0..bs {
            let off = (b * m + t) * d;
            data.extend_from_slice(&ad[off..off + d]);
        }
    }
    Tensor::from_op(&[bs, d], data, vec![a.clone()], Box::new(move |ctx| {
        if ctx.parents[0].requires_grad() {
            // Pooled scatter-add: touch only the `bs·d` selected elements of
            // the `[B, m, d]` gradient instead of allocating and zeroing a
            // full-size temporary per call (formerly the profiler's #1 cost).
            ctx.parents[0].accumulate_grad_with(|g| {
                for b in 0..bs {
                    let off = (b * m + t) * d;
                    for (gv, og) in g[off..off + d].iter_mut().zip(&ctx.out_grad[b * d..(b + 1) * d]) {
                        *gv += og;
                    }
                }
            });
        }
    }))
}

/// Stack `m` tensors of shape `[B, d]` into `[B, m, d]` (LSTM outputs → `Z`).
pub fn stack_time(steps: &[Tensor]) -> Tensor {
    let _prof = op_scope("stack_time", 0);
    assert!(!steps.is_empty(), "stack_time: empty input");
    let s0 = steps[0].shape().to_vec();
    assert_eq!(s0.len(), 2, "stack_time: steps must be [B, d], got {s0:?}");
    for st in steps {
        assert_eq!(st.shape(), &s0[..], "stack_time: inconsistent step shapes");
    }
    let (bs, d) = (s0[0], s0[1]);
    let m = steps.len();
    let mut data = vec![0.0f32; bs * m * d];
    for (t, st) in steps.iter().enumerate() {
        let sd = st.data();
        for b in 0..bs {
            let off = (b * m + t) * d;
            data[off..off + d].copy_from_slice(&sd[b * d..(b + 1) * d]);
        }
    }
    Tensor::from_op(&[bs, m, d], data, steps.to_vec(), Box::new(move |ctx| {
        for (t, p) in ctx.parents.iter().enumerate() {
            if !p.requires_grad() {
                continue;
            }
            p.accumulate_grad_with(|g| {
                for b in 0..bs {
                    let off = (b * m + t) * d;
                    for (gv, og) in g[b * d..(b + 1) * d].iter_mut().zip(&ctx.out_grad[off..off + d]) {
                        *gv += og;
                    }
                }
            });
        }
    }))
}

/// Gather one time step per batch row: `out[b, :] = a[b, idx[b], :]`.
///
/// Selects the representation of the final *unpadded* point of each
/// trajectory (`O_a^{(m)}` in the paper) and the sub-trajectory prefixes.
pub fn gather_time(a: &Tensor, idx: &[usize]) -> Tensor {
    let _prof = op_scope("gather_time", 0);
    let s = a.shape();
    assert_eq!(s.len(), 3, "gather_time: need [B, m, d], got {s:?}");
    let (bs, m, d) = (s[0], s[1], s[2]);
    assert_eq!(idx.len(), bs, "gather_time: idx must have one entry per batch row");
    for &i in idx {
        assert!(i < m, "gather_time: index {i} out of {m} steps");
    }
    let idx = idx.to_vec();
    let mut data = Vec::with_capacity(bs * d);
    {
        let ad = a.data();
        for (b, &t) in idx.iter().enumerate() {
            let off = (b * m + t) * d;
            data.extend_from_slice(&ad[off..off + d]);
        }
    }
    Tensor::from_op(&[bs, d], data, vec![a.clone()], Box::new(move |ctx| {
        if ctx.parents[0].requires_grad() {
            ctx.parents[0].accumulate_grad_with(|g| {
                for (b, &t) in idx.iter().enumerate() {
                    let off = (b * m + t) * d;
                    for (gv, og) in g[off..off + d].iter_mut().zip(&ctx.out_grad[b * d..(b + 1) * d]) {
                        *gv += og;
                    }
                }
            });
        }
    }))
}

/// Reverse the time axis of `[B, m, d]`: `out[b, t, :] = a[b, m-1-t, :]`.
/// Used by the bidirectional LSTM's backward pass.
pub fn reverse_time(a: &Tensor) -> Tensor {
    let _prof = op_scope("reverse_time", 0);
    let s = a.shape();
    assert_eq!(s.len(), 3, "reverse_time: need [B, m, d], got {s:?}");
    let (bs, m, d) = (s[0], s[1], s[2]);
    let mut data = vec![0.0f32; bs * m * d];
    {
        let ad = a.data();
        for b in 0..bs {
            for t in 0..m {
                let src = (b * m + (m - 1 - t)) * d;
                let dst = (b * m + t) * d;
                data[dst..dst + d].copy_from_slice(&ad[src..src + d]);
            }
        }
    }
    Tensor::from_op(&[bs, m, d], data, vec![a.clone()], Box::new(move |ctx| {
        if ctx.parents[0].requires_grad() {
            ctx.parents[0].accumulate_grad_with(|g| {
                for b in 0..bs {
                    for t in 0..m {
                        let src = (b * m + (m - 1 - t)) * d;
                        let dst = (b * m + t) * d;
                        for (gv, og) in g[src..src + d].iter_mut().zip(&ctx.out_grad[dst..dst + d]) {
                            *gv += og;
                        }
                    }
                }
            });
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::gradcheck::check;
    use crate::ops::{mul, sum_all};

    #[test]
    fn reshape_roundtrip() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let y = reshape(&a, &[3, 2]);
        assert_eq!(y.shape(), &[3, 2]);
        assert_eq!(y.to_vec(), a.to_vec());
    }

    #[test]
    fn concat_last_layout() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![9.0, 8.0], &[2, 1]);
        let y = concat_last(&a, &b);
        assert_eq!(y.shape(), &[2, 3]);
        assert_eq!(y.to_vec(), vec![1.0, 2.0, 9.0, 3.0, 4.0, 8.0]);
    }

    #[test]
    fn slice_last_layout() {
        let a = Tensor::from_vec((0..8).map(|x| x as f32).collect(), &[2, 4]);
        let y = slice_last(&a, 1, 2);
        assert_eq!(y.to_vec(), vec![1.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn select_and_stack_are_inverse() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[2, 3, 2]);
        let steps: Vec<Tensor> = (0..3).map(|t| select_time(&a, t)).collect();
        let y = stack_time(&steps);
        assert_eq!(y.to_vec(), a.to_vec());
    }

    #[test]
    fn gather_time_picks_per_row() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[2, 3, 2]);
        let y = gather_time(&a, &[2, 0]);
        assert_eq!(y.to_vec(), vec![4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn shape_op_grads() {
        let a = Tensor::param((0..12).map(|x| 0.1 * x as f32).collect(), &[2, 3, 2]);
        let b = Tensor::param((0..6).map(|x| 0.2 * x as f32 - 0.5).collect(), &[2, 3, 1]);
        check(&[a.clone(), b], |t| {
            let c = concat_last(&t[0], &t[1]);
            sum_all(&mul(&c, &c))
        }, 1e-2);
        check(std::slice::from_ref(&a), |t| {
            let s = slice_last(&t[0], 0, 1);
            sum_all(&mul(&s, &s))
        }, 1e-2);
        check(std::slice::from_ref(&a), |t| {
            let g = gather_time(&t[0], &[1, 2]);
            sum_all(&mul(&g, &g))
        }, 1e-2);
        check(&[a], |t| {
            let steps: Vec<Tensor> = (0..3).map(|i| select_time(&t[0], i)).collect();
            let y = stack_time(&steps);
            sum_all(&mul(&y, &y))
        }, 1e-2);
    }

    #[test]
    fn reverse_time_involution_and_grads() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[2, 3, 2]);
        let r = reverse_time(&a);
        assert_eq!(reverse_time(&r).to_vec(), a.to_vec());
        // First time step of the reversal equals the last of the original.
        assert_eq!(&r.to_vec()[..2], &a.to_vec()[4..6]);
        let p = Tensor::param((0..12).map(|x| 0.1 * x as f32).collect(), &[2, 3, 2]);
        check(std::slice::from_ref(&p), |t| {
            let y = reverse_time(&t[0]);
            sum_all(&mul(&y, &y))
        }, 1e-2);
    }
}
