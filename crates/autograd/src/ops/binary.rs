//! Elementwise and broadcasting arithmetic.

use super::rows_of;
use crate::profile::op_scope;
use crate::Tensor;

fn assert_same_shape(a: &Tensor, b: &Tensor, op: &str) {
    assert_eq!(
        a.shape(),
        b.shape(),
        "{op}: shape mismatch {:?} vs {:?}",
        a.shape(),
        b.shape()
    );
}

/// Elementwise `a + b` (shapes must match).
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    assert_same_shape(a, b, "add");
    let _prof = op_scope("add", a.numel() as u64);
    let data: Vec<f32> = a.data().iter().zip(b.data().iter()).map(|(x, y)| x + y).collect();
    Tensor::from_op(a.shape(), data, vec![a.clone(), b.clone()], Box::new(|ctx| {
        if ctx.parents[0].requires_grad() {
            ctx.parents[0].accumulate_grad(ctx.out_grad);
        }
        if ctx.parents[1].requires_grad() {
            ctx.parents[1].accumulate_grad(ctx.out_grad);
        }
    }))
}

/// Elementwise `a - b` (shapes must match).
pub fn sub(a: &Tensor, b: &Tensor) -> Tensor {
    assert_same_shape(a, b, "sub");
    let _prof = op_scope("sub", a.numel() as u64);
    let data: Vec<f32> = a.data().iter().zip(b.data().iter()).map(|(x, y)| x - y).collect();
    Tensor::from_op(a.shape(), data, vec![a.clone(), b.clone()], Box::new(|ctx| {
        if ctx.parents[0].requires_grad() {
            ctx.parents[0].accumulate_grad(ctx.out_grad);
        }
        if ctx.parents[1].requires_grad() {
            let neg: Vec<f32> = ctx.out_grad.iter().map(|g| -g).collect();
            ctx.parents[1].accumulate_grad(&neg);
        }
    }))
}

/// Elementwise `a * b` (shapes must match).
pub fn mul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_same_shape(a, b, "mul");
    let _prof = op_scope("mul", a.numel() as u64);
    let data: Vec<f32> = a.data().iter().zip(b.data().iter()).map(|(x, y)| x * y).collect();
    Tensor::from_op(a.shape(), data, vec![a.clone(), b.clone()], Box::new(|ctx| {
        if ctx.parents[0].requires_grad() {
            let g: Vec<f32> = ctx
                .out_grad
                .iter()
                .zip(ctx.parents[1].data().iter())
                .map(|(g, y)| g * y)
                .collect();
            ctx.parents[0].accumulate_grad(&g);
        }
        if ctx.parents[1].requires_grad() {
            let g: Vec<f32> = ctx
                .out_grad
                .iter()
                .zip(ctx.parents[0].data().iter())
                .map(|(g, x)| g * x)
                .collect();
            ctx.parents[1].accumulate_grad(&g);
        }
    }))
}

/// Broadcast add of a `[n]` bias over the last dimension of `a` (`[.., n]`).
pub fn add_bias(a: &Tensor, bias: &Tensor) -> Tensor {
    let _prof = op_scope("add_bias", a.numel() as u64);
    let n = *a.shape().last().expect("add_bias: rank >= 1");
    assert_eq!(bias.shape(), &[n], "add_bias: bias must be [last_dim]");
    let rows = rows_of(a.shape());
    let mut data = a.to_vec();
    {
        let b = bias.data();
        for r in 0..rows {
            for (d, bv) in data[r * n..(r + 1) * n].iter_mut().zip(b.iter()) {
                *d += bv;
            }
        }
    }
    Tensor::from_op(a.shape(), data, vec![a.clone(), bias.clone()], Box::new(move |ctx| {
        if ctx.parents[0].requires_grad() {
            ctx.parents[0].accumulate_grad(ctx.out_grad);
        }
        if ctx.parents[1].requires_grad() {
            let mut g = vec![0.0f32; n];
            for chunk in ctx.out_grad.chunks_exact(n) {
                for (gi, c) in g.iter_mut().zip(chunk) {
                    *gi += c;
                }
            }
            ctx.parents[1].accumulate_grad(&g);
        }
    }))
}

/// `a * c` for a scalar constant `c`.
pub fn scale(a: &Tensor, c: f32) -> Tensor {
    let _prof = op_scope("scale", a.numel() as u64);
    let data: Vec<f32> = a.data().iter().map(|x| x * c).collect();
    Tensor::from_op(a.shape(), data, vec![a.clone()], Box::new(move |ctx| {
        if ctx.parents[0].requires_grad() {
            let g: Vec<f32> = ctx.out_grad.iter().map(|g| g * c).collect();
            ctx.parents[0].accumulate_grad(&g);
        }
    }))
}

/// `a + c` for a scalar constant `c`.
pub fn add_scalar(a: &Tensor, c: f32) -> Tensor {
    let _prof = op_scope("add_scalar", a.numel() as u64);
    let data: Vec<f32> = a.data().iter().map(|x| x + c).collect();
    Tensor::from_op(a.shape(), data, vec![a.clone()], Box::new(|ctx| {
        if ctx.parents[0].requires_grad() {
            ctx.parents[0].accumulate_grad(ctx.out_grad);
        }
    }))
}

/// `-a`.
pub fn neg(a: &Tensor) -> Tensor {
    scale(a, -1.0)
}

/// Zero out rows of a `[B, m, d]` (or `[B, m]`) tensor where `mask` (`[B, m]`)
/// is zero. `mask` is treated as a constant.
///
/// This mirrors the paper's masking of padded points after the softmax and
/// before the discrepancy subtraction (Section IV-B).
pub fn mul_mask_rows(a: &Tensor, mask: &Tensor) -> Tensor {
    let _prof = op_scope("mul_mask_rows", a.numel() as u64);
    let (b, m) = (mask.shape()[0], mask.shape()[1]);
    assert!(mask.shape().len() == 2, "mul_mask_rows: mask must be [B, m]");
    assert!(
        a.shape().len() >= 2 && a.shape()[0] == b && a.shape()[1] == m,
        "mul_mask_rows: tensor {:?} incompatible with mask [{b}, {m}]",
        a.shape()
    );
    let inner: usize = a.shape()[2..].iter().product::<usize>().max(1);
    let mut data = a.to_vec();
    let mvals = mask.to_vec();
    for (row, &mv) in mvals.iter().enumerate() {
        if mv == 0.0 {
            for d in &mut data[row * inner..(row + 1) * inner] {
                *d = 0.0;
            }
        }
    }
    Tensor::from_op(a.shape(), data, vec![a.clone()], Box::new(move |ctx| {
        if ctx.parents[0].requires_grad() {
            let mut g = ctx.out_grad.to_vec();
            for (row, &mv) in mvals.iter().enumerate() {
                if mv == 0.0 {
                    for d in &mut g[row * inner..(row + 1) * inner] {
                        *d = 0.0;
                    }
                }
            }
            ctx.parents[0].accumulate_grad(&g);
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::gradcheck::check;
    use crate::ops::{sum_all, sum_last};

    #[test]
    fn add_forward() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        assert_eq!(add(&a, &b).to_vec(), vec![11.0, 22.0]);
    }

    #[test]
    fn sub_forward() {
        let a = Tensor::from_vec(vec![5.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![1.0, 7.0], &[2]);
        assert_eq!(sub(&a, &b).to_vec(), vec![4.0, -5.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        let _ = add(&a, &b);
    }

    #[test]
    fn binary_grads() {
        let a = Tensor::param(vec![1.0, -2.0, 0.5, 3.0], &[2, 2]);
        let b = Tensor::param(vec![0.3, 1.5, -1.0, 2.0], &[2, 2]);
        check(&[a.clone(), b.clone()], |t| sum_all(&mul(&add(&t[0], &t[1]), &sub(&t[0], &t[1]))), 1e-2);
    }

    #[test]
    fn add_bias_broadcasts_and_grads() {
        let a = Tensor::param(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::param(vec![10.0, 20.0, 30.0], &[3]);
        let y = add_bias(&a, &b);
        assert_eq!(y.to_vec(), vec![11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
        check(&[a, b], |t| sum_all(&mul(&add_bias(&t[0], &t[1]), &add_bias(&t[0], &t[1]))), 1e-2);
    }

    #[test]
    fn scale_and_add_scalar() {
        let a = Tensor::param(vec![1.0, -1.0], &[2]);
        let y = add_scalar(&scale(&a, 3.0), 1.0);
        assert_eq!(y.to_vec(), vec![4.0, -2.0]);
        check(&[a], |t| sum_all(&mul(&scale(&t[0], 3.0), &t[0])), 1e-2);
    }

    #[test]
    fn mask_rows_zeroes_padded_rows() {
        // [B=1, m=3, d=2], mask the last time step.
        let a = Tensor::param(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[1, 3, 2]);
        let mask = Tensor::from_vec(vec![1.0, 1.0, 0.0], &[1, 3]);
        let y = mul_mask_rows(&a, &mask);
        assert_eq!(y.to_vec(), vec![1.0, 2.0, 3.0, 4.0, 0.0, 0.0]);
        // Gradient flows only through unmasked rows.
        let loss = sum_all(&sum_last(&y));
        loss.backward();
        assert_eq!(a.grad().unwrap(), vec![1.0, 1.0, 1.0, 1.0, 0.0, 0.0]);
    }
}
