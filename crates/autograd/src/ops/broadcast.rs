//! Row slicing/tiling and scalar-tensor gating (used by T3S's positional
//! embedding and learned branch combination).

use crate::profile::op_scope;
use crate::Tensor;

/// First `len` rows of a rank-2 tensor: `[n, d] -> [len, d]`.
pub fn slice_rows(a: &Tensor, len: usize) -> Tensor {
    let _prof = op_scope("slice_rows", 0);
    let s = a.shape();
    assert_eq!(s.len(), 2, "slice_rows: need rank 2, got {s:?}");
    let (n, d) = (s[0], s[1]);
    assert!(len <= n, "slice_rows: len {len} exceeds rows {n}");
    let data = a.data()[..len * d].to_vec();
    Tensor::from_op(&[len, d], data, vec![a.clone()], Box::new(move |ctx| {
        if ctx.parents[0].requires_grad() {
            let mut g = vec![0.0f32; n * d];
            g[..len * d].copy_from_slice(ctx.out_grad);
            ctx.parents[0].accumulate_grad(&g);
        }
    }))
}

/// Tile a `[m, d]` tensor across a new leading batch axis: `-> [b, m, d]`.
/// Backward sums gradients over the batch copies.
pub fn tile_rows(a: &Tensor, b: usize) -> Tensor {
    let _prof = op_scope("tile_rows", 0);
    let s = a.shape();
    assert_eq!(s.len(), 2, "tile_rows: need rank 2, got {s:?}");
    let (m, d) = (s[0], s[1]);
    let src = a.to_vec();
    let mut data = Vec::with_capacity(b * m * d);
    for _ in 0..b {
        data.extend_from_slice(&src);
    }
    Tensor::from_op(&[b, m, d], data, vec![a.clone()], Box::new(move |ctx| {
        if ctx.parents[0].requires_grad() {
            let mut g = vec![0.0f32; m * d];
            for chunk in ctx.out_grad.chunks_exact(m * d) {
                for (gi, c) in g.iter_mut().zip(chunk) {
                    *gi += c;
                }
            }
            ctx.parents[0].accumulate_grad(&g);
        }
    }))
}

/// Multiply a tensor by a learnable `[1]` scalar: `out = a * s`.
pub fn mul_scalar_tensor(a: &Tensor, s: &Tensor) -> Tensor {
    let _prof = op_scope("mul_scalar_tensor", a.numel() as u64);
    assert_eq!(s.shape(), &[1], "mul_scalar_tensor: scalar must be [1]");
    let sv = s.item();
    let data: Vec<f32> = a.data().iter().map(|x| x * sv).collect();
    Tensor::from_op(a.shape(), data, vec![a.clone(), s.clone()], Box::new(move |ctx| {
        if ctx.parents[0].requires_grad() {
            let g: Vec<f32> = ctx.out_grad.iter().map(|g| g * sv).collect();
            ctx.parents[0].accumulate_grad(&g);
        }
        if ctx.parents[1].requires_grad() {
            let a_data = ctx.parents[0].data();
            let ds: f32 = ctx.out_grad.iter().zip(a_data.iter()).map(|(g, x)| g * x).sum();
            ctx.parents[1].accumulate_grad(&[ds]);
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::gradcheck::check;
    use crate::ops::{mul, sum_all};

    #[test]
    fn slice_rows_values() {
        let a = Tensor::from_vec((0..8).map(|x| x as f32).collect(), &[4, 2]);
        let y = slice_rows(&a, 2);
        assert_eq!(y.shape(), &[2, 2]);
        assert_eq!(y.to_vec(), vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn tile_rows_copies_batch() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
        let y = tile_rows(&a, 3);
        assert_eq!(y.shape(), &[3, 1, 2]);
        assert_eq!(y.to_vec(), vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn scalar_gate_forward() {
        let a = Tensor::from_vec(vec![2.0, 4.0], &[2]);
        let s = Tensor::from_vec(vec![0.5], &[1]);
        assert_eq!(mul_scalar_tensor(&a, &s).to_vec(), vec![1.0, 2.0]);
    }

    #[test]
    fn broadcast_grads() {
        let a = Tensor::param((0..8).map(|x| 0.1 * x as f32 - 0.4).collect(), &[4, 2]);
        check(std::slice::from_ref(&a), |t| {
            let s = slice_rows(&t[0], 3);
            sum_all(&mul(&s, &s))
        }, 1e-2);
        check(std::slice::from_ref(&a), |t| {
            let y = tile_rows(&t[0], 2);
            sum_all(&mul(&y, &y))
        }, 1e-2);
        let s = Tensor::param(vec![0.7], &[1]);
        check(&[a, s], |t| {
            let y = mul_scalar_tensor(&t[0], &t[1]);
            sum_all(&mul(&y, &y))
        }, 1e-2);
    }
}
