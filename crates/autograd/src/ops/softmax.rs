//! Row-wise softmax, with and without a key-padding mask.

use super::rows_of;
use crate::profile::op_scope;
use crate::Tensor;

// `pub(crate)`: the no-grad inference path (`crate::infer`) reuses this row
// kernel so its masked softmax matches the graphed op bitwise.
pub(crate) fn softmax_row(row: &mut [f32], valid: impl Fn(usize) -> bool) {
    let mut max = f32::NEG_INFINITY;
    for (j, v) in row.iter().enumerate() {
        if valid(j) && *v > max {
            max = *v;
        }
    }
    if max == f32::NEG_INFINITY {
        // Fully masked row: emit zeros (the paper covers padded results with
        // zeros after the softmax as well).
        row.iter_mut().for_each(|v| *v = 0.0);
        return;
    }
    let mut sum = 0.0f32;
    for (j, v) in row.iter_mut().enumerate() {
        if valid(j) {
            *v = (*v - max).exp();
            sum += *v;
        } else {
            *v = 0.0;
        }
    }
    if sum > 0.0 {
        row.iter_mut().for_each(|v| *v /= sum);
    }
}

fn softmax_backward_row(y: &[f32], g: &[f32], out: &mut [f32]) {
    let dot: f32 = y.iter().zip(g).map(|(yi, gi)| yi * gi).sum();
    for ((o, &yi), &gi) in out.iter_mut().zip(y).zip(g) {
        *o += yi * (gi - dot);
    }
}

/// Softmax over the last dimension of `a` (`[.., n]`).
pub fn softmax(a: &Tensor) -> Tensor {
    let _prof = op_scope("softmax", 5 * a.numel() as u64);
    let n = *a.shape().last().expect("softmax: rank >= 1");
    let rows = rows_of(a.shape());
    let mut data = a.to_vec();
    for r in 0..rows {
        softmax_row(&mut data[r * n..(r + 1) * n], |_| true);
    }
    Tensor::from_op(a.shape(), data, vec![a.clone()], Box::new(move |ctx| {
        if ctx.parents[0].requires_grad() {
            // softmax_backward_row accumulates, so rows land directly in the
            // pooled gradient buffer.
            ctx.parents[0].accumulate_grad_with(|g| {
                for r in 0..rows {
                    softmax_backward_row(
                        &ctx.out_data[r * n..(r + 1) * n],
                        &ctx.out_grad[r * n..(r + 1) * n],
                        &mut g[r * n..(r + 1) * n],
                    );
                }
            });
        }
    }))
}

/// Masked softmax for cross-trajectory attention (Eq. 7–8).
///
/// `scores` is `[B, q, k]`; `key_mask` is a constant `[B, k]` tensor with 1.0
/// on valid key positions and 0.0 on padding. Masked positions get
/// probability exactly 0; fully masked rows become all-zero.
pub fn masked_softmax(scores: &Tensor, key_mask: &Tensor) -> Tensor {
    let _prof = op_scope("masked_softmax", 5 * scores.numel() as u64);
    let s = scores.shape();
    assert_eq!(s.len(), 3, "masked_softmax: scores must be [B, q, k], got {s:?}");
    let (bs, q, k) = (s[0], s[1], s[2]);
    assert_eq!(
        key_mask.shape(),
        &[bs, k],
        "masked_softmax: key_mask must be [B, k] = [{bs}, {k}]"
    );
    let mask = key_mask.to_vec();
    let mut data = scores.to_vec();
    for b in 0..bs {
        let mrow = &mask[b * k..(b + 1) * k];
        for i in 0..q {
            let off = (b * q + i) * k;
            softmax_row(&mut data[off..off + k], |j| mrow[j] != 0.0);
        }
    }
    Tensor::from_op(scores.shape(), data, vec![scores.clone()], Box::new(move |ctx| {
        if ctx.parents[0].requires_grad() {
            ctx.parents[0].accumulate_grad_with(|g| {
                for b in 0..bs {
                    for i in 0..q {
                        let off = (b * q + i) * k;
                        // Masked entries have y = 0, so the standard Jacobian
                        // already yields zero gradient there.
                        softmax_backward_row(
                            &ctx.out_data[off..off + k],
                            &ctx.out_grad[off..off + k],
                            &mut g[off..off + k],
                        );
                    }
                }
            });
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::gradcheck::check;
    use crate::ops::{mul, sum_all};

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let y = softmax(&a).to_vec();
        for r in 0..2 {
            let s: f32 = y[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Monotone: larger logits get larger probabilities.
        assert!(y[2] > y[1] && y[1] > y[0]);
    }

    #[test]
    fn softmax_shift_invariant() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let b = Tensor::from_vec(vec![101.0, 102.0, 103.0], &[1, 3]);
        let (ya, yb) = (softmax(&a).to_vec(), softmax(&b).to_vec());
        for (x, y) in ya.iter().zip(&yb) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn masked_softmax_zeroes_padding() {
        let scores = Tensor::from_vec(vec![1.0, 5.0, 2.0, 0.5, 9.0, 0.1], &[1, 2, 3]);
        let mask = Tensor::from_vec(vec![1.0, 0.0, 1.0], &[1, 3]);
        let y = masked_softmax(&scores, &mask).to_vec();
        // Key 1 is masked in every query row.
        assert_eq!(y[1], 0.0);
        assert_eq!(y[4], 0.0);
        let s0: f32 = y[..3].iter().sum();
        let s1: f32 = y[3..].iter().sum();
        assert!((s0 - 1.0).abs() < 1e-6 && (s1 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn masked_softmax_fully_masked_row_is_zero() {
        let scores = Tensor::from_vec(vec![1.0, 2.0], &[1, 1, 2]);
        let mask = Tensor::from_vec(vec![0.0, 0.0], &[1, 2]);
        let y = masked_softmax(&scores, &mask).to_vec();
        assert_eq!(y, vec![0.0, 0.0]);
    }

    #[test]
    fn softmax_grads() {
        let a = Tensor::param(vec![0.5, -1.0, 2.0, 0.3, 0.0, -0.7], &[2, 3]);
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.5, 1.5], &[2, 3]);
        check(&[a], |t| sum_all(&mul(&softmax(&t[0]), &w)), 1e-2);
    }

    #[test]
    fn masked_softmax_grads() {
        let a = Tensor::param(vec![0.5, -1.0, 2.0, 0.3, 0.0, -0.7], &[1, 2, 3]);
        let mask = Tensor::from_vec(vec![1.0, 1.0, 0.0], &[1, 3]);
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.5, 1.5], &[1, 2, 3]);
        check(&[a], |t| sum_all(&mul(&masked_softmax(&t[0], &mask), &w)), 1e-2);
    }
}
