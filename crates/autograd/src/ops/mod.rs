//! Differentiable operations over [`Tensor`](crate::Tensor).
//!
//! Every op builds the forward value eagerly and registers a backward
//! closure. Backward closures skip parents that do not require gradients,
//! so feeding constant inputs (data, masks, targets) costs nothing extra.

mod activation;
mod binary;
mod broadcast;
mod matmul;
mod reduce;
mod rnn_fused;
mod shape_ops;
mod softmax;

pub use activation::{exp, leaky_relu, sigmoid, sqrt_eps, tanh};
pub use binary::{add, add_bias, add_scalar, mul, mul_mask_rows, neg, scale, sub};
pub use broadcast::{mul_scalar_tensor, slice_rows, tile_rows};
pub use matmul::{bmm_nn, bmm_nt, matmul};
pub use reduce::{mean_all, qerror, sum_all, sum_last};
pub use rnn_fused::{collect_states, gru_cell_fused, lstm_cell_fused, rnn_gate_preproject};
pub use shape_ops::{concat_last, gather_time, reshape, reverse_time, select_time, slice_last, stack_time};
pub use softmax::{masked_softmax, softmax};

// Forward kernels shared with the no-grad inference path (`crate::infer`),
// so graphed and tape-free forwards stay bitwise identical.
pub(crate) use rnn_fused::{gru_step_elementwise, lstm_step_elementwise};
pub(crate) use softmax::softmax_row;

/// Leading-dimension product for "apply over last dim" ops:
/// a `[d0, .., dk, n]` tensor is treated as `rows x n`.
pub(crate) fn rows_of(shape: &[usize]) -> usize {
    debug_assert!(!shape.is_empty());
    shape[..shape.len() - 1].iter().product()
}

#[cfg(test)]
pub(crate) mod gradcheck {
    //! Finite-difference gradient checking used across op tests.
    use crate::Tensor;

    /// Numerically verify `d loss / d input` for a scalar-valued function.
    ///
    /// `f` must rebuild the graph from the given leaves every call.
    pub fn check(inputs: &[Tensor], f: impl Fn(&[Tensor]) -> Tensor, tol: f32) {
        let loss = f(inputs);
        for i in inputs {
            i.zero_grad();
        }
        loss.backward();
        let analytic: Vec<Vec<f32>> = inputs
            .iter()
            .map(|t| t.grad().unwrap_or_else(|| vec![0.0; t.numel()]))
            .collect();

        let eps = 1e-3f32;
        for (ti, t) in inputs.iter().enumerate() {
            for (j, &got) in analytic[ti].iter().enumerate() {
                let orig = t.data()[j];
                t.data_mut()[j] = orig + eps;
                let up = f(inputs).item();
                t.data_mut()[j] = orig - eps;
                let down = f(inputs).item();
                t.data_mut()[j] = orig;
                let numeric = (up - down) / (2.0 * eps);
                let denom = numeric.abs().max(got.abs()).max(1.0);
                assert!(
                    (numeric - got).abs() / denom < tol,
                    "grad mismatch input {ti} elem {j}: numeric {numeric} vs analytic {got}"
                );
            }
        }
    }
}
