//! Model and training configuration (defaults follow Section V-A4, scaled
//! where the paper's GPU-sized values are impractical on CPU).

use serde::{Deserialize, Serialize};

/// Which loss the regression objective uses (Fig. 3 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LossKind {
    /// Weighted mean squared error (Eq. 14–16) — the paper's choice.
    Mse,
    /// Q-error (Moerkotte et al.) — the compared alternative.
    QError,
}

/// Hyperparameters shared by all models.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Hidden/embedding dimension `d` (paper default 128; must be even —
    /// the point embedding dimension is `d̂ = d/2`, Eq. 4).
    pub dim: usize,
    /// RNG seed for weight init.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig { dim: 32, seed: 42 }
    }
}

impl ModelConfig {
    pub fn with_dim(dim: usize) -> ModelConfig {
        ModelConfig { dim, ..Default::default() }
    }

    /// The point-embedding dimension `d̂ = d / 2`.
    pub fn half_dim(&self) -> usize {
        assert!(self.dim.is_multiple_of(2), "dim must be even (d̂ = d/2)");
        self.dim / 2
    }
}

/// Training-loop hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    pub epochs: usize,
    /// Learning rate (paper: 5e-3 under DTW on Porto).
    pub lr: f32,
    /// Sampling number `sn` = total samples per anchor; half near, half far
    /// (paper default 20).
    pub sampling_number: usize,
    /// Pairs per gradient step.
    pub batch_pairs: usize,
    /// Loss function to use.
    pub loss: LossKind,
    /// Enable the sub-trajectory loss term (Eq. 15).
    pub use_sub_loss: bool,
    /// Sub-trajectory sampling stride (paper: every 10th point).
    pub sub_stride: usize,
    /// Gradient clipping (global L2 norm).
    pub clip: f32,
    /// Seed for sampling shuffles.
    pub seed: u64,
    /// Data-parallel training workers. 1 = classic serial loop (the
    /// default); W > 1 splits each batch over W model replicas whose
    /// gradients are reduced in fixed worker order before one Adam step.
    /// Takes effect when the trainer has a replica spec
    /// (`Trainer::with_replicas`) and the model supports it.
    pub threads: usize,
    /// Save a checkpoint every N gradient steps (0 disables periodic
    /// saves). Requires `checkpoint_dir`.
    pub checkpoint_every: usize,
    /// Directory for the rotating `latest`/`prev` checkpoint pair. `None`
    /// disables durability (no saves, no rollback-on-divergence).
    pub checkpoint_dir: Option<String>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 12,
            lr: 5e-3,
            sampling_number: 20,
            batch_pairs: 32,
            loss: LossKind::Mse,
            use_sub_loss: true,
            sub_stride: 10,
            clip: 5.0,
            seed: 7,
            threads: 1,
            checkpoint_every: 0,
            checkpoint_dir: None,
        }
    }
}

impl TrainConfig {
    /// Near (= far) samples per anchor, `k = sn / 2`.
    pub fn k(&self) -> usize {
        (self.sampling_number / 2).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_dim() {
        assert_eq!(ModelConfig::with_dim(128).half_dim(), 64);
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_dim_panics() {
        let _ = ModelConfig::with_dim(33).half_dim();
    }

    #[test]
    fn k_is_half_sampling_number() {
        let cfg = TrainConfig { sampling_number: 20, ..Default::default() };
        assert_eq!(cfg.k(), 10);
        let tiny = TrainConfig { sampling_number: 1, ..Default::default() };
        assert_eq!(tiny.k(), 1);
    }

    #[test]
    fn configs_serialize() {
        let cfg = TrainConfig::default();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: TrainConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.epochs, cfg.epochs);
        assert_eq!(back.loss, cfg.loss);
    }
}
