//! The training loop: sample pairs per anchor, batch them, minimize the
//! pair loss with Adam (Section IV-C/D, parameter settings of Section V-A4).

use crate::batch::PairBatch;
use crate::checkpoint::store::{CheckpointStore, LoadedFrom};
use crate::checkpoint::{decode_checkpoint, save_checkpoint, CheckpointError, TrainerState};
use crate::config::{ModelConfig, TrainConfig};
use crate::loss::{pair_loss, PairTargets};
use crate::models::{ModelKind, PairModel};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;
use std::path::Path;
use std::time::Instant;
use tmn_data::Sampler;
use tmn_traj::metrics::{prefix_distances, Metric, MetricParams};
use tmn_traj::{GroundTruth, SimilarityTransform, Trajectory};
use tmn_autograd::optim::{clip_grad_norm, Adam};
use tmn_obs::{memory, metrics, profiler, BatchTelemetry, EpochTelemetry, EventTelemetry, TelemetrySink};

/// Registry names for the training-side metrics (see DESIGN.md §8).
pub const TRAIN_BATCH_NS: &str = "train_batch_ns";
pub const TRAIN_BATCHES_TOTAL: &str = "train_batches_total";
pub const TRAIN_BATCH_WALL_MS: &str = "train_batch_wall_ms";
pub const TRAIN_PEAK_BYTES: &str = "train_peak_bytes";
pub const TRAIN_LIVE_BYTES: &str = "train_live_bytes";

/// Consecutive non-finite batches tolerated before the trainer intervenes
/// (rollback to the last checkpoint, or a learning-rate halving).
const BAD_BATCH_LIMIT: usize = 3;

/// One pair's master-computed targets: (similarity, rank weight, prefix
/// sub-targets) — everything a data-parallel worker needs besides the
/// trajectories themselves.
type TargetRow = (f32, f32, Vec<(usize, f32)>);

/// What one gradient step reports back to the epoch loop.
struct StepInfo {
    /// Loss summed over the batch's pairs.
    loss_sum: f32,
    /// Pre-clip global gradient L2 norm.
    grad_norm: f32,
    /// Data-parallel workers actually used (1 = serial path).
    workers: usize,
    /// Whether the optimizer step was applied. `false` means the batch loss
    /// or gradient norm was non-finite and the update was skipped, leaving
    /// weights and optimizer state untouched.
    applied: bool,
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, serde::Serialize)]
pub struct EpochStats {
    pub epoch: usize,
    /// Mean loss per pair.
    pub loss: f32,
    pub pairs: usize,
    pub seconds: f64,
}

/// Whole-run statistics.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct TrainStats {
    pub epochs: Vec<EpochStats>,
}

impl TrainStats {
    pub fn final_loss(&self) -> f32 {
        self.epochs.last().map(|e| e.loss).unwrap_or(f32::NAN)
    }

    pub fn total_seconds(&self) -> f64 {
        self.epochs.iter().map(|e| e.seconds).sum()
    }

    /// Mean seconds per epoch (the paper's Table III "Training" figure).
    pub fn seconds_per_epoch(&self) -> f64 {
        if self.epochs.is_empty() {
            0.0
        } else {
            self.total_seconds() / self.epochs.len() as f64
        }
    }
}

/// Trains a [`PairModel`] against one distance metric's ground truth.
pub struct Trainer<'a> {
    model: &'a dyn PairModel,
    train: &'a [Trajectory],
    truth: &'a dyn GroundTruth,
    sim: SimilarityTransform,
    metric: Metric,
    mparams: MetricParams,
    config: TrainConfig,
    sampler: Box<dyn Sampler + 'a>,
    optimizer: Adam,
    rng: StdRng,
    /// Cache of prefix similarities per (anchor, sample) pair.
    sub_cache: HashMap<(usize, usize), Vec<(usize, f32)>>,
    /// How to rebuild the model on worker threads for data-parallel steps
    /// (`Tensor` graphs are `!Send`, so replicas are constructed in-thread
    /// and loaded from a weight snapshot). `None` disables parallelism.
    replica_spec: Option<(ModelKind, ModelConfig)>,
    /// Optional JSONL stream of per-batch/per-epoch records. Telemetry reads
    /// only already-computed scalars, so it never perturbs training.
    telemetry: Option<TelemetrySink>,
    /// Rotating `latest`/`prev` checkpoint pair (from `config.checkpoint_dir`).
    store: Option<CheckpointStore>,
    /// Global gradient steps applied so far (all epochs, survives resume).
    steps: u64,
    /// Stop training once `steps` reaches this bound (kill-and-resume tests).
    step_limit: Option<u64>,
    /// First epoch to run (nonzero after [`Trainer::resume`]).
    start_epoch: usize,
    /// Mid-epoch cursor from a resumed checkpoint, consumed by the first
    /// epoch instead of a fresh shuffle.
    pending: Option<TrainerState>,
    /// Consecutive batches whose update was skipped as non-finite.
    bad_streak: usize,
    /// At least one good step happened since the last rollback — guards
    /// against rollback loops when the checkpoint itself replays badly.
    rollback_armed: bool,
}

impl<'a> Trainer<'a> {
    /// `alpha` defaults to the paper's per-metric value when `None`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        model: &'a dyn PairModel,
        train: &'a [Trajectory],
        truth: &'a dyn GroundTruth,
        metric: Metric,
        mparams: MetricParams,
        sampler: Box<dyn Sampler + 'a>,
        config: TrainConfig,
        alpha: Option<f64>,
    ) -> Trainer<'a> {
        assert_eq!(train.len(), truth.len(), "ground truth must cover the training set");
        assert!(train.len() >= 2, "need at least two training trajectories");
        let sim = SimilarityTransform::from_truth(truth, alpha.unwrap_or_else(|| metric.default_alpha()));
        let optimizer = Adam::new(model.params(), config.lr);
        let rng = StdRng::seed_from_u64(config.seed);
        let store = config
            .checkpoint_dir
            .as_ref()
            .map(|dir| CheckpointStore::open(dir).expect("checkpoint_dir must be creatable"));
        Trainer {
            model,
            train,
            truth,
            sim,
            metric,
            mparams,
            config,
            sampler,
            optimizer,
            rng,
            sub_cache: HashMap::new(),
            replica_spec: None,
            telemetry: None,
            store,
            steps: 0,
            step_limit: None,
            start_epoch: 0,
            pending: None,
            bad_streak: 0,
            rollback_armed: false,
        }
    }

    /// Enable data-parallel steps by telling the trainer how to rebuild the
    /// model on worker threads. `kind`/`mconfig` must describe the same
    /// architecture as the model passed to [`Trainer::new`]; takes effect
    /// when `config.threads > 1` and the model supports it.
    pub fn with_replicas(mut self, kind: ModelKind, mconfig: ModelConfig) -> Trainer<'a> {
        self.replica_spec = Some((kind, mconfig));
        self
    }

    /// Stream one [`BatchTelemetry`] record per gradient step and one
    /// [`EpochTelemetry`] record per epoch into `sink` as JSON lines.
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Trainer<'a> {
        self.telemetry = Some(sink);
        self
    }

    /// Stop training (without saving) once this many gradient steps have
    /// been applied across the whole run. Simulates a kill at an arbitrary
    /// point for the resume tests and the CI smoke.
    pub fn with_step_limit(mut self, limit: u64) -> Trainer<'a> {
        self.step_limit = Some(limit);
        self
    }

    /// Gradient steps applied so far (all epochs, survives resume).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Resume from the newest valid checkpoint in `config.checkpoint_dir`
    /// (`latest`, falling back to `prev` when `latest` is corrupt).
    ///
    /// After a successful resume the next [`Trainer::train`] /
    /// [`Trainer::train_with`] call continues from the saved epoch and batch
    /// cursor with restored weights, Adam moments, and sampler RNG — the
    /// continuation is bit-identical to the uninterrupted run. The
    /// checkpoint's learning rate (which may have been decayed or halved)
    /// overrides `config.lr`.
    pub fn resume_latest(&mut self) -> Result<LoadedFrom, CheckpointError> {
        let store = self
            .store
            .as_ref()
            .ok_or_else(|| CheckpointError::Io("no checkpoint_dir configured".to_string()))?;
        let (ckpt, from) = store.load()?;
        self.apply_checkpoint(ckpt.params, ckpt.optimizer, ckpt.trainer)?;
        self.emit_event("resumed", self.start_epoch, format!("{from:?}"));
        Ok(from)
    }

    /// Resume from an explicit checkpoint file (see [`Trainer::resume_latest`]
    /// for semantics).
    pub fn resume(&mut self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)
            .map_err(|e| CheckpointError::Io(format!("read {}: {e}", path.display())))?;
        let ckpt = decode_checkpoint(&bytes)?;
        self.apply_checkpoint(ckpt.params, ckpt.optimizer, ckpt.trainer)?;
        self.emit_event("resumed", self.start_epoch, path.display().to_string());
        Ok(())
    }

    /// Validate a decoded checkpoint against this trainer and apply it.
    fn apply_checkpoint(
        &mut self,
        params: Vec<(String, Vec<usize>, Vec<f32>)>,
        optimizer: Option<tmn_autograd::optim::AdamState>,
        trainer: Option<TrainerState>,
    ) -> Result<(), CheckpointError> {
        let state =
            trainer.ok_or(CheckpointError::Corrupt("checkpoint has no trainer state"))?;
        let opt_state =
            optimizer.ok_or(CheckpointError::Corrupt("checkpoint has no optimizer state"))?;
        // The sampling recipe must be unchanged, or the replayed epoch
        // diverges from the original run.
        let mismatch = |name: &str, expected: String, found: String| CheckpointError::Mismatch {
            name: name.to_string(),
            expected,
            found,
        };
        let cfg = &self.config;
        if state.seed != cfg.seed {
            return Err(mismatch("seed", cfg.seed.to_string(), state.seed.to_string()));
        }
        if state.batch_pairs as usize != cfg.batch_pairs {
            return Err(mismatch(
                "batch_pairs",
                cfg.batch_pairs.to_string(),
                state.batch_pairs.to_string(),
            ));
        }
        if state.sampling_number as usize != cfg.sampling_number {
            return Err(mismatch(
                "sampling_number",
                cfg.sampling_number.to_string(),
                state.sampling_number.to_string(),
            ));
        }
        if state.sub_stride as usize != cfg.sub_stride {
            return Err(mismatch(
                "sub_stride",
                cfg.sub_stride.to_string(),
                state.sub_stride.to_string(),
            ));
        }
        if state.use_sub_loss != cfg.use_sub_loss {
            return Err(mismatch(
                "use_sub_loss",
                cfg.use_sub_loss.to_string(),
                state.use_sub_loss.to_string(),
            ));
        }
        if state.loss != cfg.loss {
            return Err(mismatch("loss", format!("{:?}", cfg.loss), format!("{:?}", state.loss)));
        }
        if state.epoch as usize >= cfg.epochs {
            return Err(mismatch(
                "epoch",
                format!("< {}", cfg.epochs),
                state.epoch.to_string(),
            ));
        }
        let n = self.train.len();
        let indices_ok = state.order.len() == n
            && state.next_anchor as usize <= n
            && state.order.iter().all(|&a| (a as usize) < n)
            && state.buffer.iter().all(|&(a, s, _)| (a as usize) < n && (s as usize) < n);
        if !indices_ok {
            return Err(mismatch(
                "training set",
                format!("{n} trajectories"),
                "checkpoint cursor indexes outside it".to_string(),
            ));
        }
        self.model.params().try_restore(&params)?;
        self.optimizer
            .restore_state(&opt_state)
            .map_err(|e| mismatch("optimizer state", "matching buffers".to_string(), e.to_string()))?;
        self.rng = StdRng::from_state(state.rng);
        self.steps = state.steps;
        self.start_epoch = state.epoch as usize;
        self.pending = Some(state);
        self.bad_streak = 0;
        self.rollback_armed = false;
        Ok(())
    }

    fn emit_event(&mut self, event: &str, epoch: usize, detail: String) {
        let (step, lr) = (self.steps, self.optimizer.lr());
        if let Some(sink) = self.telemetry.as_mut() {
            sink.emit(&EventTelemetry {
                record: EventTelemetry::RECORD.to_string(),
                event: event.to_string(),
                epoch,
                step,
                lr,
                detail,
            });
        }
    }

    /// Save a checkpoint if a periodic save is due at the current step.
    /// Called only after an applied (finite) step, so a checkpoint never
    /// captures diverged weights.
    #[allow(clippy::too_many_arguments)]
    fn maybe_checkpoint(
        &mut self,
        epoch: usize,
        order: &[usize],
        next_anchor: usize,
        buffer: &[(usize, usize, f32)],
        batches: usize,
        total_loss: f64,
        total_pairs: usize,
    ) {
        if self.config.checkpoint_every == 0 || self.store.is_none() {
            return;
        }
        if !self.steps.is_multiple_of(self.config.checkpoint_every as u64) {
            return;
        }
        let state = TrainerState {
            epoch: epoch as u64,
            steps: self.steps,
            batches: batches as u64,
            next_anchor: next_anchor as u64,
            total_pairs: total_pairs as u64,
            total_loss,
            rng: self.rng.state(),
            seed: self.config.seed,
            batch_pairs: self.config.batch_pairs as u32,
            sampling_number: self.config.sampling_number as u32,
            sub_stride: self.config.sub_stride as u32,
            use_sub_loss: self.config.use_sub_loss,
            loss: self.config.loss,
            order: order.iter().map(|&a| a as u32).collect(),
            buffer: buffer.iter().map(|&(a, s, w)| (a as u32, s as u32, w)).collect(),
        };
        let bytes = save_checkpoint(
            self.model.params(),
            Some(&self.optimizer.state_snapshot()),
            Some(&state),
        );
        let _prof = profiler::phase("trainer.checkpoint_save");
        let result = self.store.as_ref().expect("store checked above").save(&bytes);
        match result {
            Ok(path) => self.emit_event("checkpoint_saved", epoch, path.display().to_string()),
            Err(e) => self.emit_event("checkpoint_error", epoch, e.to_string()),
        }
    }

    /// React to a skipped (non-finite) batch: after [`BAD_BATCH_LIMIT`]
    /// consecutive skips, roll weights and optimizer back to the last good
    /// checkpoint with a halved learning rate — or just halve the rate when
    /// no checkpoint is available (or the last rollback didn't help).
    fn handle_nonfinite(&mut self, epoch: usize, info: &StepInfo) {
        self.bad_streak += 1;
        self.emit_event(
            "nonfinite_skip",
            epoch,
            format!(
                "loss={} grad_norm={} streak={}",
                info.loss_sum, info.grad_norm, self.bad_streak
            ),
        );
        if self.bad_streak < BAD_BATCH_LIMIT {
            return;
        }
        self.bad_streak = 0;
        if self.rollback_armed && self.try_rollback(epoch) {
            return;
        }
        let lr = self.optimizer.lr() * 0.5;
        self.optimizer.set_lr(lr);
        self.emit_event("lr_halved", epoch, format!("lr={lr}"));
    }

    /// Restore weights + optimizer from the newest valid checkpoint and
    /// halve the learning rate. The data cursor keeps moving forward — only
    /// model state rolls back. Returns false when no usable checkpoint
    /// exists.
    fn try_rollback(&mut self, epoch: usize) -> bool {
        let Some(store) = self.store.as_ref() else { return false };
        let Ok((ckpt, from)) = store.load() else { return false };
        if self.model.params().try_restore(&ckpt.params).is_err() {
            return false;
        }
        let Some(opt_state) = ckpt.optimizer.as_ref() else { return false };
        if self.optimizer.restore_state(opt_state).is_err() {
            return false;
        }
        let lr = self.optimizer.lr() * 0.5;
        self.optimizer.set_lr(lr);
        self.rollback_armed = false;
        self.emit_event("rollback", epoch, format!("from={from:?} lr={lr}"));
        true
    }

    /// The similarity transform in use (needed to interpret predictions).
    pub fn similarity(&self) -> &SimilarityTransform {
        &self.sim
    }

    fn sub_targets(&mut self, a: usize, s: usize) -> Vec<(usize, f32)> {
        if !self.config.use_sub_loss {
            return Vec::new();
        }
        let key = if a <= s { (a, s) } else { (s, a) };
        if let Some(v) = self.sub_cache.get(&key) {
            return v.clone();
        }
        let prefixes = prefix_distances(
            self.metric,
            &self.train[key.0],
            &self.train[key.1],
            self.config.sub_stride,
            &self.mparams,
        );
        let v: Vec<(usize, f32)> = prefixes
            .into_iter()
            .map(|(i, d)| (i, self.sim.of_distance(d) as f32))
            .collect();
        self.sub_cache.insert(key, v.clone());
        v
    }

    /// One gradient step over a flat list of `(anchor, sample, weight)`.
    ///
    /// Dispatches to the data-parallel path when `config.threads > 1`, a
    /// replica spec is set, and the model supports batch splitting;
    /// otherwise (including `threads == 1`) runs the classic serial path
    /// unchanged, so single-threaded configs stay bit-identical to the
    /// original trainer.
    fn step(&mut self, pairs: &[(usize, usize, f32)]) -> StepInfo {
        let workers = self.config.threads.max(1).min(pairs.len());
        if workers > 1 && self.replica_spec.is_some() && self.model.supports_data_parallel() {
            self.step_parallel(pairs, workers)
        } else {
            self.step_serial(pairs)
        }
    }

    fn step_serial(&mut self, pairs: &[(usize, usize, f32)]) -> StepInfo {
        let (batch, targets) = {
            let _prof = profiler::phase("trainer.batch_prep");
            let anchors: Vec<&Trajectory> = pairs.iter().map(|&(a, _, _)| &self.train[a]).collect();
            let samples: Vec<&Trajectory> = pairs.iter().map(|&(_, s, _)| &self.train[s]).collect();
            let batch = PairBatch::build(&anchors, &samples);
            let targets = PairTargets {
                sim: pairs
                    .iter()
                    .map(|&(a, s, _)| self.sim.of_distance(self.truth.get(a, s)) as f32)
                    .collect(),
                weight: pairs.iter().map(|&(_, _, w)| w).collect(),
                sub: pairs.iter().map(|&(a, s, _)| self.sub_targets(a, s)).collect(),
            };
            (batch, targets)
        };
        let encoded = self.model.encode_pairs(&batch);
        let loss = pair_loss(&encoded, &batch, &targets, self.config.loss);
        // Same op sequence as `optim::train_step`, with a finiteness gate
        // before the optimizer touches anything: a NaN/inf batch must not
        // poison the Adam moments or the weights.
        let params = self.model.params();
        params.zero_grad();
        loss.backward();
        let norm = clip_grad_norm(params, self.config.clip);
        let loss_val = loss.item();
        let applied = loss_val.is_finite() && norm.is_finite();
        if applied {
            self.optimizer.step(params);
            self.model.post_step(&batch, &encoded);
        }
        StepInfo { loss_sum: loss_val, grad_norm: norm, workers: 1, applied }
    }

    /// Synchronous data-parallel gradient step.
    ///
    /// The batch is split into `workers` contiguous chunks. Each worker
    /// thread builds a fresh model replica, restores the master weight
    /// snapshot, and runs forward + backward on its chunk only. Because
    /// [`pair_loss`] is a *sum* over pairs, the chunk losses and chunk
    /// gradients add up to exactly the full-batch quantities (up to f32
    /// reassociation), so the master can reduce worker gradients and take a
    /// single optimizer step. Reduction happens in spawn order — workers are
    /// joined sequentially — which makes every run with the same seed and
    /// thread count deterministic.
    ///
    /// Pairs are ordered by trajectory length (longest first, stable) before
    /// chunking, so each worker pads its chunk batch only to the chunk's own
    /// longest trajectory rather than the global batch maximum. The loss is
    /// a sum over pairs, so reordering within the batch changes nothing but
    /// f32 summation order.
    ///
    /// `post_step` is *not* invoked here: models that rely on it report
    /// `supports_data_parallel() == false` and never reach this path.
    fn step_parallel(&mut self, pairs: &[(usize, usize, f32)], workers: usize) -> StepInfo {
        let prep = profiler::phase("trainer.batch_prep");
        let (kind, mconfig) = self.replica_spec.expect("step_parallel requires a replica spec");
        // Group similar-length pairs into the same chunk (longest first,
        // stable for determinism) so short chunks aren't padded to the
        // global batch maximum.
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        order.sort_by_key(|&i| {
            let (a, s, _) = pairs[i];
            std::cmp::Reverse(self.train[a].len().max(self.train[s].len()))
        });
        let pairs: Vec<(usize, usize, f32)> = order.iter().map(|&i| pairs[i]).collect();
        // Targets come from the master so the sub-trajectory prefix cache
        // stays a plain single-threaded HashMap.
        let targets: Vec<TargetRow> = pairs
            .iter()
            .map(|&(a, s, w)| (self.sim.of_distance(self.truth.get(a, s)) as f32, w, self.sub_targets(a, s)))
            .collect();
        let pairs: &[(usize, usize, f32)] = &pairs;
        let snap = self.model.params().snapshot();
        drop(prep);
        let chunk_len = pairs.len().div_ceil(workers);
        let train = self.train;
        let loss_kind = self.config.loss;

        // The tensor graph is !Send: nothing model-related crosses the
        // thread boundary except the plain-f32 weight snapshot in and the
        // plain-f32 gradient snapshots out.
        let results: Vec<(Vec<Vec<f32>>, f32)> = std::thread::scope(|scope| {
            let handles: Vec<_> = pairs
                .chunks(chunk_len)
                .zip(targets.chunks(chunk_len))
                .map(|(chunk, tchunk)| {
                    let snap = &snap;
                    scope.spawn(move || {
                        let replica = kind.build(&mconfig);
                        replica.params().restore(snap);
                        let anchors: Vec<&Trajectory> =
                            chunk.iter().map(|&(a, _, _)| &train[a]).collect();
                        let samples: Vec<&Trajectory> =
                            chunk.iter().map(|&(_, s, _)| &train[s]).collect();
                        let batch = PairBatch::build(&anchors, &samples);
                        let targets = PairTargets {
                            sim: tchunk.iter().map(|t| t.0).collect(),
                            weight: tchunk.iter().map(|t| t.1).collect(),
                            sub: tchunk.iter().map(|t| t.2.clone()).collect(),
                        };
                        let encoded = replica.encode_pairs(&batch);
                        let loss = pair_loss(&encoded, &batch, &targets, loss_kind);
                        replica.params().zero_grad();
                        loss.backward();
                        (replica.params().grad_snapshot(), loss.item())
                    })
                })
                .collect();
            // Join in spawn order: the gradient reduction order is fixed
            // regardless of which worker finishes first.
            handles.into_iter().map(|h| h.join().expect("training worker panicked")).collect()
        });

        let params = self.model.params();
        params.zero_grad();
        let mut total_loss = 0.0f32;
        {
            let _prof = profiler::phase("trainer.grad_reduce");
            for (grads, chunk_loss) in &results {
                params.accumulate_grads(grads);
                total_loss += chunk_loss;
            }
        }
        let norm = clip_grad_norm(params, self.config.clip);
        let applied = total_loss.is_finite() && norm.is_finite();
        if applied {
            self.optimizer.step(params);
        }
        StepInfo { loss_sum: total_loss, grad_norm: norm, workers, applied }
    }

    /// One gradient step plus its telemetry record.
    fn run_batch(&mut self, epoch: usize, batch: usize, chunk: &[(usize, usize, f32)]) -> StepInfo {
        let start = Instant::now();
        let info = self.step(chunk);
        let lr = self.optimizer.lr();
        // Serving-side registry shares the export surface with eval: batch
        // wall time as histogram + gauge, memory watermarks when the
        // counting allocator is compiled in. Reads already-computed scalars
        // only, so it can never perturb the step itself
        // (tests/metrics_invariance.rs).
        let wall = start.elapsed();
        metrics::observe_duration(TRAIN_BATCH_NS, wall);
        metrics::counter_add(TRAIN_BATCHES_TOTAL, 1);
        metrics::gauge_set(TRAIN_BATCH_WALL_MS, wall.as_secs_f64() * 1e3);
        if memory::is_active() {
            metrics::gauge_set(TRAIN_PEAK_BYTES, memory::peak_bytes() as f64);
            metrics::gauge_set(TRAIN_LIVE_BYTES, memory::live_bytes() as f64);
        }
        // Skipped (non-finite) batches get an event record instead: NaN is
        // not representable in JSON numbers.
        if info.applied {
            if let Some(sink) = self.telemetry.as_mut() {
                let max_len = chunk
                    .iter()
                    .map(|&(a, s, _)| self.train[a].len().max(self.train[s].len()))
                    .max()
                    .unwrap_or(0);
                sink.emit(&BatchTelemetry {
                    record: BatchTelemetry::RECORD.to_string(),
                    epoch,
                    batch,
                    pairs: chunk.len(),
                    max_len,
                    workers: info.workers,
                    loss: info.loss_sum / chunk.len().max(1) as f32,
                    grad_norm: info.grad_norm,
                    lr,
                    wall_ms: start.elapsed().as_secs_f64() * 1e3,
                });
            }
        }
        info
    }

    /// Handle one drained batch inside the epoch loop: step, account, maybe
    /// checkpoint (good steps only), maybe intervene (bad steps only).
    /// Returns `true` when the configured step limit was reached.
    #[allow(clippy::too_many_arguments)]
    fn process_batch(
        &mut self,
        epoch: usize,
        chunk: &[(usize, usize, f32)],
        order: &[usize],
        next_anchor: usize,
        buffer: &[(usize, usize, f32)],
        batches: &mut usize,
        total_loss: &mut f64,
        total_pairs: &mut usize,
    ) -> bool {
        let info = self.run_batch(epoch, *batches, chunk);
        *batches += 1;
        if info.applied {
            self.steps += 1;
            self.bad_streak = 0;
            self.rollback_armed = true;
            *total_loss += info.loss_sum as f64;
            *total_pairs += chunk.len();
            self.maybe_checkpoint(
                epoch,
                order,
                next_anchor,
                buffer,
                *batches,
                *total_loss,
                *total_pairs,
            );
        } else {
            self.handle_nonfinite(epoch, &info);
        }
        self.step_limit.is_some_and(|limit| self.steps >= limit)
    }

    /// Run one epoch: every training trajectory serves as anchor once.
    pub fn train_epoch(&mut self, epoch: usize) -> EpochStats {
        self.train_epoch_inner(epoch).0
    }

    /// The epoch loop, restructured around an explicit cursor
    /// (`order`/`next_anchor`/`buffer`) so a mid-epoch checkpoint captures
    /// the exact loop state and a resume replays the identical sample and
    /// batch sequence. Returns `(stats, completed)`; `completed == false`
    /// means the step limit halted the epoch early.
    fn train_epoch_inner(&mut self, epoch: usize) -> (EpochStats, bool) {
        let start = Instant::now();
        let k = self.config.k();
        let batch_pairs = self.config.batch_pairs;
        let mut order: Vec<usize>;
        let mut next_anchor: usize;
        let mut buffer: Vec<(usize, usize, f32)>;
        let mut batches: usize;
        let mut total_loss: f64;
        let mut total_pairs: usize;
        if let Some(state) = self.pending.take() {
            debug_assert_eq!(state.epoch as usize, epoch, "cursor applied to wrong epoch");
            order = state.order.iter().map(|&a| a as usize).collect();
            next_anchor = state.next_anchor as usize;
            buffer = state.buffer.iter().map(|&(a, s, w)| (a as usize, s as usize, w)).collect();
            batches = state.batches as usize;
            total_loss = state.total_loss;
            total_pairs = state.total_pairs as usize;
            self.rng = StdRng::from_state(state.rng);
        } else {
            order = (0..self.train.len()).collect();
            order.shuffle(&mut self.rng);
            next_anchor = 0;
            buffer = Vec::with_capacity(batch_pairs * 2);
            batches = 0;
            total_loss = 0.0;
            total_pairs = 0;
        }
        let mut halted = false;
        // Identical sample/step sequence to the classic
        // for-each-anchor-then-drain loop, expressed so the loop state lives
        // in plain variables at every batch boundary.
        'epoch: loop {
            while buffer.len() >= batch_pairs {
                let chunk: Vec<_> = buffer.drain(..batch_pairs).collect();
                if self.process_batch(
                    epoch,
                    &chunk,
                    &order,
                    next_anchor,
                    &buffer,
                    &mut batches,
                    &mut total_loss,
                    &mut total_pairs,
                ) {
                    halted = true;
                    break 'epoch;
                }
            }
            if next_anchor < order.len() {
                let anchor = order[next_anchor];
                next_anchor += 1;
                let samples = {
                    let _prof = profiler::phase("trainer.sampling");
                    self.sampler.sample(anchor, k, self.truth, &mut self.rng)
                };
                buffer.extend(samples.pairs());
                continue;
            }
            if !buffer.is_empty() {
                let chunk: Vec<_> = std::mem::take(&mut buffer);
                if self.process_batch(
                    epoch,
                    &chunk,
                    &order,
                    next_anchor,
                    &buffer,
                    &mut batches,
                    &mut total_loss,
                    &mut total_pairs,
                ) {
                    halted = true;
                }
            }
            break;
        }
        let stats = EpochStats {
            epoch,
            loss: (total_loss / total_pairs.max(1) as f64) as f32,
            pairs: total_pairs,
            seconds: start.elapsed().as_secs_f64(),
        };
        if !halted {
            if let Some(sink) = self.telemetry.as_mut() {
                sink.emit(&EpochTelemetry {
                    record: EpochTelemetry::RECORD.to_string(),
                    epoch,
                    batches,
                    pairs: stats.pairs,
                    loss: stats.loss,
                    wall_s: stats.seconds,
                });
                sink.flush();
            }
        }
        (stats, !halted)
    }

    /// Run all configured epochs.
    pub fn train(&mut self) -> TrainStats {
        self.train_with(|_| {})
    }

    /// Run all configured epochs, invoking `on_epoch` after each one
    /// (progress reporting, early-stopping checks, checkpointing).
    ///
    /// After [`Trainer::resume`] the loop continues from the checkpoint's
    /// epoch; only epochs completed in *this* call appear in the returned
    /// stats. A step limit halts mid-epoch without recording the partial
    /// epoch.
    pub fn train_with(&mut self, mut on_epoch: impl FnMut(&EpochStats)) -> TrainStats {
        let mut stats = TrainStats::default();
        let start = std::mem::take(&mut self.start_epoch);
        for e in start..self.config.epochs {
            let (epoch, completed) = self.train_epoch_inner(e);
            if !completed {
                break;
            }
            on_epoch(&epoch);
            stats.epochs.push(epoch);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LossKind, ModelConfig};
    use crate::models::ModelKind;
    use tmn_data::RankSampler;
    use tmn_traj::{DistanceMatrix, Point};

    fn toy_set(n: usize) -> Vec<Trajectory> {
        (0..n)
            .map(|i| {
                let off = i as f64 / n as f64;
                (0..12).map(|t| Point::new(0.08 * t as f64, off)).collect()
            })
            .collect()
    }

    fn quick_config() -> TrainConfig {
        TrainConfig {
            epochs: 3,
            lr: 5e-3,
            sampling_number: 6,
            batch_pairs: 12,
            loss: LossKind::Mse,
            use_sub_loss: true,
            sub_stride: 5,
            clip: 5.0,
            seed: 11,
            threads: 1,
            checkpoint_every: 0,
            checkpoint_dir: None,
        }
    }

    #[test]
    fn loss_decreases_on_toy_data() {
        let train = toy_set(16);
        let dmat = DistanceMatrix::compute(&train, Metric::Dtw, &MetricParams::default(), 1);
        let model = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 1 });
        let mut trainer = Trainer::new(
            model.as_ref(),
            &train,
            &dmat,
            Metric::Dtw,
            MetricParams::default(),
            Box::new(RankSampler),
            TrainConfig { epochs: 6, ..quick_config() },
            None,
        );
        let stats = trainer.train();
        assert_eq!(stats.epochs.len(), 6);
        let first = stats.epochs[0].loss;
        let last = stats.final_loss();
        assert!(last < first, "loss did not decrease: {first} -> {last}");
        assert!(last.is_finite());
    }

    #[test]
    fn all_model_kinds_train_one_epoch() {
        let train = toy_set(10);
        let dmat = DistanceMatrix::compute(&train, Metric::Hausdorff, &MetricParams::default(), 1);
        for kind in ModelKind::ALL {
            let model = kind.build(&ModelConfig { dim: 8, seed: 2 });
            let mut trainer = Trainer::new(
                model.as_ref(),
                &train,
                &dmat,
                Metric::Hausdorff,
                MetricParams::default(),
                Box::new(RankSampler),
                TrainConfig { epochs: 1, ..quick_config() },
                None,
            );
            let stats = trainer.train();
            assert!(stats.final_loss().is_finite(), "{kind}: non-finite loss");
            assert!(stats.epochs[0].pairs > 0, "{kind}: no pairs trained");
        }
    }

    #[test]
    fn qerror_training_stays_finite() {
        let train = toy_set(10);
        let dmat = DistanceMatrix::compute(&train, Metric::Dtw, &MetricParams::default(), 1);
        let model = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 3 });
        let mut trainer = Trainer::new(
            model.as_ref(),
            &train,
            &dmat,
            Metric::Dtw,
            MetricParams::default(),
            Box::new(RankSampler),
            TrainConfig { loss: LossKind::QError, epochs: 2, ..quick_config() },
            None,
        );
        let stats = trainer.train();
        assert!(stats.final_loss().is_finite());
    }

    #[test]
    fn train_with_invokes_callback_per_epoch() {
        let train = toy_set(8);
        let dmat = DistanceMatrix::compute(&train, Metric::Dtw, &MetricParams::default(), 1);
        let model = ModelKind::Srn.build(&ModelConfig { dim: 8, seed: 5 });
        let mut trainer = Trainer::new(
            model.as_ref(),
            &train,
            &dmat,
            Metric::Dtw,
            MetricParams::default(),
            Box::new(RankSampler),
            TrainConfig { epochs: 3, ..quick_config() },
            None,
        );
        let mut seen = Vec::new();
        let stats = trainer.train_with(|e| seen.push(e.epoch));
        assert_eq!(seen, vec![0, 1, 2]);
        assert_eq!(stats.epochs.len(), 3);
    }

    /// Train one model kind at a given thread count (with the replica spec
    /// installed) and return the per-epoch losses plus final weights as bits.
    fn train_run(kind: ModelKind, threads: usize, replicas: bool) -> (Vec<u32>, Vec<Vec<u32>>) {
        let train = toy_set(12);
        let dmat = DistanceMatrix::compute(&train, Metric::Dtw, &MetricParams::default(), 1);
        let mcfg = ModelConfig { dim: 8, seed: 9 };
        let model = kind.build(&mcfg);
        let mut trainer = Trainer::new(
            model.as_ref(),
            &train,
            &dmat,
            Metric::Dtw,
            MetricParams::default(),
            Box::new(RankSampler),
            TrainConfig { epochs: 2, threads, ..quick_config() },
            None,
        );
        if replicas {
            trainer = trainer.with_replicas(kind, mcfg);
        }
        let stats = trainer.train();
        let losses = stats.epochs.iter().map(|e| e.loss.to_bits()).collect();
        let weights = model
            .params()
            .snapshot()
            .into_iter()
            .map(|(_, _, d)| d.into_iter().map(f32::to_bits).collect())
            .collect();
        (losses, weights)
    }

    #[test]
    fn threads_one_bit_identical_to_serial_trainer() {
        // threads=1 must dispatch to the untouched serial path even when a
        // replica spec is present: same losses, same weights, bit for bit.
        let (serial_losses, serial_weights) = train_run(ModelKind::Tmn, 1, false);
        let (dp_losses, dp_weights) = train_run(ModelKind::Tmn, 1, true);
        assert_eq!(serial_losses, dp_losses, "threads=1 changed the loss curve");
        assert_eq!(serial_weights, dp_weights, "threads=1 changed the trained weights");
    }

    #[test]
    fn parallel_training_is_deterministic() {
        // Fixed chunking + fixed-order gradient reduction: two identical
        // 4-worker runs must agree exactly.
        let (l1, w1) = train_run(ModelKind::Tmn, 4, true);
        let (l2, w2) = train_run(ModelKind::Tmn, 4, true);
        assert_eq!(l1, l2, "4-worker loss curve not reproducible");
        assert_eq!(w1, w2, "4-worker weights not reproducible");
    }

    #[test]
    fn parallel_training_matches_serial_closely() {
        // Chunked gradients equal the full-batch gradient up to f32
        // reassociation (the loss is a sum over pairs), so the 4-worker loss
        // curve should track the serial one tightly.
        let (serial_losses, _) = train_run(ModelKind::Tmn, 1, false);
        let (dp_losses, _) = train_run(ModelKind::Tmn, 4, true);
        for (s_bits, p_bits) in serial_losses.iter().zip(&dp_losses) {
            let (s, p) = (f32::from_bits(*s_bits), f32::from_bits(*p_bits));
            assert!(p.is_finite());
            assert!(
                (s - p).abs() / s.abs().max(1e-6) < 1e-2,
                "parallel loss drifted: serial {s} vs parallel {p}"
            );
        }
    }

    #[test]
    fn all_model_kinds_train_data_parallel() {
        // Every kind must at least train under threads=4 with replicas —
        // NeuTraj via its serial fallback (supports_data_parallel = false),
        // the rest via the data-parallel path.
        for kind in ModelKind::ALL {
            let (losses, _) = train_run(kind, 4, true);
            assert!(
                losses.iter().all(|b| f32::from_bits(*b).is_finite()),
                "{kind}: non-finite loss under data-parallel training"
            );
        }
    }

    #[test]
    fn neutraj_opts_out_of_data_parallel() {
        let model = ModelKind::NeuTraj.build(&ModelConfig { dim: 8, seed: 1 });
        assert!(!model.supports_data_parallel());
        assert!(ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 1 }).supports_data_parallel());
    }

    #[test]
    fn telemetry_streams_batch_and_epoch_records() {
        let train = toy_set(10);
        let dmat = DistanceMatrix::compute(&train, Metric::Dtw, &MetricParams::default(), 1);
        let model = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 7 });
        let (sink, buf) = TelemetrySink::memory();
        let mut trainer = Trainer::new(
            model.as_ref(),
            &train,
            &dmat,
            Metric::Dtw,
            MetricParams::default(),
            Box::new(RankSampler),
            TrainConfig { epochs: 2, ..quick_config() },
            None,
        )
        .with_telemetry(sink);
        let stats = trainer.train();

        let mut batch_records = Vec::new();
        let mut epoch_records = Vec::new();
        for line in buf.lines() {
            let v: serde_json::Value = serde_json::from_str(&line).expect("telemetry line is JSON");
            match v.get_field("record") {
                Some(serde_json::Value::Str(s)) if s == "batch" => {
                    batch_records.push(serde_json::from_str::<BatchTelemetry>(&line).unwrap())
                }
                Some(serde_json::Value::Str(s)) if s == "epoch" => {
                    epoch_records.push(serde_json::from_str::<EpochTelemetry>(&line).unwrap())
                }
                other => panic!("unknown record discriminator: {other:?}"),
            }
        }
        assert_eq!(epoch_records.len(), 2, "one epoch record per epoch");
        assert!(!batch_records.is_empty());
        // Per-epoch pair counts reconcile with the batch stream.
        for (e, er) in epoch_records.iter().enumerate() {
            let pairs: usize =
                batch_records.iter().filter(|b| b.epoch == e).map(|b| b.pairs).sum();
            assert_eq!(pairs, er.pairs, "epoch {e} pair count mismatch");
            let batches = batch_records.iter().filter(|b| b.epoch == e).count();
            assert_eq!(batches, er.batches);
            assert!((er.loss - stats.epochs[e].loss).abs() < 1e-6);
        }
        for b in &batch_records {
            assert_eq!(b.workers, 1);
            assert!(b.max_len > 0);
            assert!(b.loss.is_finite() && b.grad_norm.is_finite());
            assert!(b.lr > 0.0);
        }
    }

    #[test]
    fn telemetry_does_not_change_training_bits() {
        let (plain_losses, plain_weights) = train_run(ModelKind::Tmn, 1, false);
        let train = toy_set(12);
        let dmat = DistanceMatrix::compute(&train, Metric::Dtw, &MetricParams::default(), 1);
        let mcfg = ModelConfig { dim: 8, seed: 9 };
        let model = ModelKind::Tmn.build(&mcfg);
        let (sink, _buf) = TelemetrySink::memory();
        let mut trainer = Trainer::new(
            model.as_ref(),
            &train,
            &dmat,
            Metric::Dtw,
            MetricParams::default(),
            Box::new(RankSampler),
            TrainConfig { epochs: 2, ..quick_config() },
            None,
        )
        .with_telemetry(sink);
        let stats = trainer.train();
        let losses: Vec<u32> = stats.epochs.iter().map(|e| e.loss.to_bits()).collect();
        let weights: Vec<Vec<u32>> = model
            .params()
            .snapshot()
            .into_iter()
            .map(|(_, _, d)| d.into_iter().map(f32::to_bits).collect())
            .collect();
        assert_eq!(plain_losses, losses, "telemetry changed the loss curve");
        assert_eq!(plain_weights, weights, "telemetry changed the trained weights");
    }

    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir = std::env::temp_dir()
                .join(format!("tmn_trainer_{tag}_{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            TempDir(dir)
        }

        fn path(&self) -> String {
            self.0.display().to_string()
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn periodic_checkpoints_are_saved_and_announced() {
        let tmp = TempDir::new("periodic");
        let train = toy_set(12);
        let dmat = DistanceMatrix::compute(&train, Metric::Dtw, &MetricParams::default(), 1);
        let model = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 9 });
        let (sink, buf) = TelemetrySink::memory();
        let mut trainer = Trainer::new(
            model.as_ref(),
            &train,
            &dmat,
            Metric::Dtw,
            MetricParams::default(),
            Box::new(RankSampler),
            TrainConfig {
                epochs: 1,
                checkpoint_every: 2,
                checkpoint_dir: Some(tmp.path()),
                ..quick_config()
            },
            None,
        )
        .with_telemetry(sink);
        trainer.train();
        assert!(trainer.steps() >= 4, "toy epoch too small for this test");
        let saves = buf
            .lines()
            .iter()
            .filter(|l| l.contains("\"checkpoint_saved\""))
            .count();
        assert_eq!(saves as u64, trainer.steps() / 2, "one save every 2 steps");
        let store = CheckpointStore::open(&tmp.0).unwrap();
        let (ckpt, from) = store.load().unwrap();
        assert_eq!(from, LoadedFrom::Latest);
        let state = ckpt.trainer.expect("trainer section present");
        assert_eq!(state.steps, trainer.steps() - trainer.steps() % 2);
        assert!(ckpt.optimizer.is_some());
    }

    #[test]
    fn resume_rejects_mismatched_recipe_and_model() {
        let tmp = TempDir::new("mismatch");
        let train = toy_set(12);
        let dmat = DistanceMatrix::compute(&train, Metric::Dtw, &MetricParams::default(), 1);
        let cfg = TrainConfig {
            epochs: 2,
            checkpoint_every: 1,
            checkpoint_dir: Some(tmp.path()),
            ..quick_config()
        };
        let model = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 9 });
        let mut trainer = Trainer::new(
            model.as_ref(),
            &train,
            &dmat,
            Metric::Dtw,
            MetricParams::default(),
            Box::new(RankSampler),
            cfg.clone(),
            None,
        );
        trainer.train();

        // Changed seed: the replayed epoch would diverge.
        let m2 = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 9 });
        let mut t2 = Trainer::new(
            m2.as_ref(),
            &train,
            &dmat,
            Metric::Dtw,
            MetricParams::default(),
            Box::new(RankSampler),
            TrainConfig { seed: 999, ..cfg.clone() },
            None,
        );
        assert!(matches!(t2.resume_latest(), Err(CheckpointError::Mismatch { .. })));

        // Wrong architecture: params don't fit.
        let m3 = ModelKind::Srn.build(&ModelConfig { dim: 8, seed: 9 });
        let mut t3 = Trainer::new(
            m3.as_ref(),
            &train,
            &dmat,
            Metric::Dtw,
            MetricParams::default(),
            Box::new(RankSampler),
            cfg.clone(),
            None,
        );
        assert!(matches!(t3.resume_latest(), Err(CheckpointError::Mismatch { .. })));

        // No checkpoint_dir configured at all.
        let mut t4 = Trainer::new(
            m2.as_ref(),
            &train,
            &dmat,
            Metric::Dtw,
            MetricParams::default(),
            Box::new(RankSampler),
            TrainConfig { checkpoint_dir: None, ..cfg },
            None,
        );
        assert!(matches!(t4.resume_latest(), Err(CheckpointError::Io(_))));
    }

    #[test]
    fn nonfinite_batches_are_skipped_and_rolled_back() {
        let tmp = TempDir::new("nonfinite");
        let train = toy_set(12);
        let dmat = DistanceMatrix::compute(&train, Metric::Dtw, &MetricParams::default(), 1);
        let model = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 9 });
        let (sink, buf) = TelemetrySink::memory();
        let mut trainer = Trainer::new(
            model.as_ref(),
            &train,
            &dmat,
            Metric::Dtw,
            MetricParams::default(),
            Box::new(RankSampler),
            TrainConfig {
                epochs: 1,
                checkpoint_every: 1,
                checkpoint_dir: Some(tmp.path()),
                ..quick_config()
            },
            None,
        )
        .with_telemetry(sink);
        // One clean epoch fills the store with good checkpoints.
        trainer.train();
        let clean_steps = trainer.steps();
        assert!(clean_steps > 0);

        // Poison one weight: every forward pass now yields NaN, so without
        // the guard the next epoch would destroy the optimizer state.
        let (_, tensor) = model.params().iter().next().map(|(n, t)| (n.to_string(), t.clone())).unwrap();
        tensor.data_mut()[0] = f32::NAN;

        trainer.start_epoch = 0;
        trainer.config.epochs = 1;
        trainer.train();
        let lines = buf.lines();
        let skips = lines.iter().filter(|l| l.contains("\"nonfinite_skip\"")).count();
        let rollbacks = lines.iter().filter(|l| l.contains("\"rollback\"")).count();
        assert!(skips >= BAD_BATCH_LIMIT, "expected skip events, got {skips}");
        assert!(rollbacks >= 1, "expected a rollback event");
        // The rollback restored finite weights from the checkpoint, so
        // training recovered: later steps applied and the model is finite.
        assert!(trainer.steps() > clean_steps, "no step applied after recovery");
        for (_, t) in model.params().iter() {
            assert!(t.to_vec().iter().all(|v| v.is_finite()), "weights still non-finite");
        }
    }

    #[test]
    fn nonfinite_guard_without_store_never_panics() {
        let train = toy_set(10);
        let dmat = DistanceMatrix::compute(&train, Metric::Dtw, &MetricParams::default(), 1);
        let model = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 9 });
        let (_, tensor) = model.params().iter().next().map(|(n, t)| (n.to_string(), t.clone())).unwrap();
        tensor.data_mut()[0] = f32::NAN;
        let (sink, buf) = TelemetrySink::memory();
        let mut trainer = Trainer::new(
            model.as_ref(),
            &train,
            &dmat,
            Metric::Dtw,
            MetricParams::default(),
            Box::new(RankSampler),
            TrainConfig { epochs: 1, ..quick_config() },
            None,
        )
        .with_telemetry(sink);
        let stats = trainer.train();
        // Nothing recoverable here (no checkpoint), but the run completes
        // with skips + lr halvings instead of panicking or corrupting Adam.
        assert_eq!(trainer.steps(), 0, "no non-finite step may be applied");
        assert_eq!(stats.epochs[0].pairs, 0);
        assert!(buf.lines().iter().any(|l| l.contains("\"lr_halved\"")));
    }

    #[test]
    fn step_limit_halts_and_resume_continues_bit_identically() {
        let run_full = || -> u64 {
            let train = toy_set(12);
            let dmat = DistanceMatrix::compute(&train, Metric::Dtw, &MetricParams::default(), 1);
            let model = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 9 });
            let mut trainer = Trainer::new(
                model.as_ref(),
                &train,
                &dmat,
                Metric::Dtw,
                MetricParams::default(),
                Box::new(RankSampler),
                TrainConfig { epochs: 2, ..quick_config() },
                None,
            );
            trainer.train();
            model.params().fingerprint()
        };
        let run_interrupted = || -> u64 {
            let tmp = TempDir::new("resume");
            let train = toy_set(12);
            let dmat = DistanceMatrix::compute(&train, Metric::Dtw, &MetricParams::default(), 1);
            let cfg = TrainConfig {
                epochs: 2,
                checkpoint_every: 3,
                checkpoint_dir: Some(tmp.path()),
                ..quick_config()
            };
            {
                let model = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 9 });
                let mut trainer = Trainer::new(
                    model.as_ref(),
                    &train,
                    &dmat,
                    Metric::Dtw,
                    MetricParams::default(),
                    Box::new(RankSampler),
                    cfg.clone(),
                    None,
                )
                .with_step_limit(7); // dies mid-epoch, off checkpoint cadence
                trainer.train();
                assert_eq!(trainer.steps(), 7);
            }
            // Fresh process: new model, new trainer, resume from disk.
            let model = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 12345 });
            let mut trainer = Trainer::new(
                model.as_ref(),
                &train,
                &dmat,
                Metric::Dtw,
                MetricParams::default(),
                Box::new(RankSampler),
                cfg,
                None,
            );
            trainer.resume_latest().unwrap();
            assert_eq!(trainer.steps(), 6, "resumes from the step-6 checkpoint");
            trainer.train();
            model.params().fingerprint()
        };
        assert_eq!(run_full(), run_interrupted(), "resumed run diverged from uninterrupted run");
    }

    #[test]
    fn sub_cache_fills_and_is_symmetric() {
        let train = toy_set(8);
        let dmat = DistanceMatrix::compute(&train, Metric::Dtw, &MetricParams::default(), 1);
        let model = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 4 });
        let mut trainer = Trainer::new(
            model.as_ref(),
            &train,
            &dmat,
            Metric::Dtw,
            MetricParams::default(),
            Box::new(RankSampler),
            quick_config(),
            None,
        );
        let v1 = trainer.sub_targets(1, 3);
        let v2 = trainer.sub_targets(3, 1);
        assert_eq!(v1, v2, "sub-target cache must be symmetric");
        assert!(!v1.is_empty());
        assert!(trainer.sub_cache.len() == 1);
    }
}
