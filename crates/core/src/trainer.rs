//! The training loop: sample pairs per anchor, batch them, minimize the
//! pair loss with Adam (Section IV-C/D, parameter settings of Section V-A4).

use crate::batch::PairBatch;
use crate::config::{ModelConfig, TrainConfig};
use crate::loss::{pair_loss, PairTargets};
use crate::models::{ModelKind, PairModel};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;
use std::time::Instant;
use tmn_data::Sampler;
use tmn_traj::metrics::{prefix_distances, Metric, MetricParams};
use tmn_traj::{DistanceMatrix, SimilarityMatrix, Trajectory};
use tmn_autograd::optim::{clip_grad_norm, train_step, Adam};
use tmn_obs::{profiler, BatchTelemetry, EpochTelemetry, TelemetrySink};

/// One pair's master-computed targets: (similarity, rank weight, prefix
/// sub-targets) — everything a data-parallel worker needs besides the
/// trajectories themselves.
type TargetRow = (f32, f32, Vec<(usize, f32)>);

/// What one gradient step reports back to the epoch loop.
struct StepInfo {
    /// Loss summed over the batch's pairs.
    loss_sum: f32,
    /// Pre-clip global gradient L2 norm.
    grad_norm: f32,
    /// Data-parallel workers actually used (1 = serial path).
    workers: usize,
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, serde::Serialize)]
pub struct EpochStats {
    pub epoch: usize,
    /// Mean loss per pair.
    pub loss: f32,
    pub pairs: usize,
    pub seconds: f64,
}

/// Whole-run statistics.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct TrainStats {
    pub epochs: Vec<EpochStats>,
}

impl TrainStats {
    pub fn final_loss(&self) -> f32 {
        self.epochs.last().map(|e| e.loss).unwrap_or(f32::NAN)
    }

    pub fn total_seconds(&self) -> f64 {
        self.epochs.iter().map(|e| e.seconds).sum()
    }

    /// Mean seconds per epoch (the paper's Table III "Training" figure).
    pub fn seconds_per_epoch(&self) -> f64 {
        if self.epochs.is_empty() {
            0.0
        } else {
            self.total_seconds() / self.epochs.len() as f64
        }
    }
}

/// Trains a [`PairModel`] against one distance metric's ground truth.
pub struct Trainer<'a> {
    model: &'a dyn PairModel,
    train: &'a [Trajectory],
    dmat: &'a DistanceMatrix,
    smat: SimilarityMatrix,
    metric: Metric,
    mparams: MetricParams,
    config: TrainConfig,
    sampler: Box<dyn Sampler + 'a>,
    optimizer: Adam,
    rng: StdRng,
    /// Cache of prefix similarities per (anchor, sample) pair.
    sub_cache: HashMap<(usize, usize), Vec<(usize, f32)>>,
    /// How to rebuild the model on worker threads for data-parallel steps
    /// (`Tensor` graphs are `!Send`, so replicas are constructed in-thread
    /// and loaded from a weight snapshot). `None` disables parallelism.
    replica_spec: Option<(ModelKind, ModelConfig)>,
    /// Optional JSONL stream of per-batch/per-epoch records. Telemetry reads
    /// only already-computed scalars, so it never perturbs training.
    telemetry: Option<TelemetrySink>,
}

impl<'a> Trainer<'a> {
    /// `alpha` defaults to the paper's per-metric value when `None`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        model: &'a dyn PairModel,
        train: &'a [Trajectory],
        dmat: &'a DistanceMatrix,
        metric: Metric,
        mparams: MetricParams,
        sampler: Box<dyn Sampler + 'a>,
        config: TrainConfig,
        alpha: Option<f64>,
    ) -> Trainer<'a> {
        assert_eq!(train.len(), dmat.len(), "distance matrix must cover the training set");
        assert!(train.len() >= 2, "need at least two training trajectories");
        let smat = dmat.to_similarity(alpha.unwrap_or_else(|| metric.default_alpha()));
        let optimizer = Adam::new(model.params(), config.lr);
        let rng = StdRng::seed_from_u64(config.seed);
        Trainer {
            model,
            train,
            dmat,
            smat,
            metric,
            mparams,
            config,
            sampler,
            optimizer,
            rng,
            sub_cache: HashMap::new(),
            replica_spec: None,
            telemetry: None,
        }
    }

    /// Enable data-parallel steps by telling the trainer how to rebuild the
    /// model on worker threads. `kind`/`mconfig` must describe the same
    /// architecture as the model passed to [`Trainer::new`]; takes effect
    /// when `config.threads > 1` and the model supports it.
    pub fn with_replicas(mut self, kind: ModelKind, mconfig: ModelConfig) -> Trainer<'a> {
        self.replica_spec = Some((kind, mconfig));
        self
    }

    /// Stream one [`BatchTelemetry`] record per gradient step and one
    /// [`EpochTelemetry`] record per epoch into `sink` as JSON lines.
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Trainer<'a> {
        self.telemetry = Some(sink);
        self
    }

    /// The similarity transform in use (needed to interpret predictions).
    pub fn similarity(&self) -> &SimilarityMatrix {
        &self.smat
    }

    fn sub_targets(&mut self, a: usize, s: usize) -> Vec<(usize, f32)> {
        if !self.config.use_sub_loss {
            return Vec::new();
        }
        let key = if a <= s { (a, s) } else { (s, a) };
        if let Some(v) = self.sub_cache.get(&key) {
            return v.clone();
        }
        let prefixes = prefix_distances(
            self.metric,
            &self.train[key.0],
            &self.train[key.1],
            self.config.sub_stride,
            &self.mparams,
        );
        let v: Vec<(usize, f32)> = prefixes
            .into_iter()
            .map(|(i, d)| (i, self.smat.similarity_of_distance(d) as f32))
            .collect();
        self.sub_cache.insert(key, v.clone());
        v
    }

    /// One gradient step over a flat list of `(anchor, sample, weight)`.
    ///
    /// Dispatches to the data-parallel path when `config.threads > 1`, a
    /// replica spec is set, and the model supports batch splitting;
    /// otherwise (including `threads == 1`) runs the classic serial path
    /// unchanged, so single-threaded configs stay bit-identical to the
    /// original trainer.
    fn step(&mut self, pairs: &[(usize, usize, f32)]) -> StepInfo {
        let workers = self.config.threads.max(1).min(pairs.len());
        if workers > 1 && self.replica_spec.is_some() && self.model.supports_data_parallel() {
            self.step_parallel(pairs, workers)
        } else {
            self.step_serial(pairs)
        }
    }

    fn step_serial(&mut self, pairs: &[(usize, usize, f32)]) -> StepInfo {
        let (batch, targets) = {
            let _prof = profiler::phase("trainer.batch_prep");
            let anchors: Vec<&Trajectory> = pairs.iter().map(|&(a, _, _)| &self.train[a]).collect();
            let samples: Vec<&Trajectory> = pairs.iter().map(|&(_, s, _)| &self.train[s]).collect();
            let batch = PairBatch::build(&anchors, &samples);
            let targets = PairTargets {
                sim: pairs.iter().map(|&(a, s, _)| self.smat.get(a, s) as f32).collect(),
                weight: pairs.iter().map(|&(_, _, w)| w).collect(),
                sub: pairs.iter().map(|&(a, s, _)| self.sub_targets(a, s)).collect(),
            };
            (batch, targets)
        };
        let encoded = self.model.encode_pairs(&batch);
        let loss = pair_loss(&encoded, &batch, &targets, self.config.loss);
        let (loss_val, norm) =
            train_step(self.model.params(), &mut self.optimizer, &loss, self.config.clip);
        self.model.post_step(&batch, &encoded);
        StepInfo { loss_sum: loss_val, grad_norm: norm, workers: 1 }
    }

    /// Synchronous data-parallel gradient step.
    ///
    /// The batch is split into `workers` contiguous chunks. Each worker
    /// thread builds a fresh model replica, restores the master weight
    /// snapshot, and runs forward + backward on its chunk only. Because
    /// [`pair_loss`] is a *sum* over pairs, the chunk losses and chunk
    /// gradients add up to exactly the full-batch quantities (up to f32
    /// reassociation), so the master can reduce worker gradients and take a
    /// single optimizer step. Reduction happens in spawn order — workers are
    /// joined sequentially — which makes every run with the same seed and
    /// thread count deterministic.
    ///
    /// Pairs are ordered by trajectory length (longest first, stable) before
    /// chunking, so each worker pads its chunk batch only to the chunk's own
    /// longest trajectory rather than the global batch maximum. The loss is
    /// a sum over pairs, so reordering within the batch changes nothing but
    /// f32 summation order.
    ///
    /// `post_step` is *not* invoked here: models that rely on it report
    /// `supports_data_parallel() == false` and never reach this path.
    fn step_parallel(&mut self, pairs: &[(usize, usize, f32)], workers: usize) -> StepInfo {
        let prep = profiler::phase("trainer.batch_prep");
        let (kind, mconfig) = self.replica_spec.expect("step_parallel requires a replica spec");
        // Group similar-length pairs into the same chunk (longest first,
        // stable for determinism) so short chunks aren't padded to the
        // global batch maximum.
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        order.sort_by_key(|&i| {
            let (a, s, _) = pairs[i];
            std::cmp::Reverse(self.train[a].len().max(self.train[s].len()))
        });
        let pairs: Vec<(usize, usize, f32)> = order.iter().map(|&i| pairs[i]).collect();
        // Targets come from the master so the sub-trajectory prefix cache
        // stays a plain single-threaded HashMap.
        let targets: Vec<TargetRow> = pairs
            .iter()
            .map(|&(a, s, w)| (self.smat.get(a, s) as f32, w, self.sub_targets(a, s)))
            .collect();
        let pairs: &[(usize, usize, f32)] = &pairs;
        let snap = self.model.params().snapshot();
        drop(prep);
        let chunk_len = pairs.len().div_ceil(workers);
        let train = self.train;
        let loss_kind = self.config.loss;

        // The tensor graph is !Send: nothing model-related crosses the
        // thread boundary except the plain-f32 weight snapshot in and the
        // plain-f32 gradient snapshots out.
        let results: Vec<(Vec<Vec<f32>>, f32)> = std::thread::scope(|scope| {
            let handles: Vec<_> = pairs
                .chunks(chunk_len)
                .zip(targets.chunks(chunk_len))
                .map(|(chunk, tchunk)| {
                    let snap = &snap;
                    scope.spawn(move || {
                        let replica = kind.build(&mconfig);
                        replica.params().restore(snap);
                        let anchors: Vec<&Trajectory> =
                            chunk.iter().map(|&(a, _, _)| &train[a]).collect();
                        let samples: Vec<&Trajectory> =
                            chunk.iter().map(|&(_, s, _)| &train[s]).collect();
                        let batch = PairBatch::build(&anchors, &samples);
                        let targets = PairTargets {
                            sim: tchunk.iter().map(|t| t.0).collect(),
                            weight: tchunk.iter().map(|t| t.1).collect(),
                            sub: tchunk.iter().map(|t| t.2.clone()).collect(),
                        };
                        let encoded = replica.encode_pairs(&batch);
                        let loss = pair_loss(&encoded, &batch, &targets, loss_kind);
                        replica.params().zero_grad();
                        loss.backward();
                        (replica.params().grad_snapshot(), loss.item())
                    })
                })
                .collect();
            // Join in spawn order: the gradient reduction order is fixed
            // regardless of which worker finishes first.
            handles.into_iter().map(|h| h.join().expect("training worker panicked")).collect()
        });

        let params = self.model.params();
        params.zero_grad();
        let mut total_loss = 0.0f32;
        {
            let _prof = profiler::phase("trainer.grad_reduce");
            for (grads, chunk_loss) in &results {
                params.accumulate_grads(grads);
                total_loss += chunk_loss;
            }
        }
        let norm = clip_grad_norm(params, self.config.clip);
        self.optimizer.step(params);
        StepInfo { loss_sum: total_loss, grad_norm: norm, workers }
    }

    /// One gradient step plus its telemetry record. Returns the batch's
    /// summed loss.
    fn run_batch(&mut self, epoch: usize, batch: usize, chunk: &[(usize, usize, f32)]) -> f32 {
        let start = Instant::now();
        let info = self.step(chunk);
        let lr = self.optimizer.lr();
        if let Some(sink) = self.telemetry.as_mut() {
            let max_len = chunk
                .iter()
                .map(|&(a, s, _)| self.train[a].len().max(self.train[s].len()))
                .max()
                .unwrap_or(0);
            sink.emit(&BatchTelemetry {
                record: BatchTelemetry::RECORD.to_string(),
                epoch,
                batch,
                pairs: chunk.len(),
                max_len,
                workers: info.workers,
                loss: info.loss_sum / chunk.len().max(1) as f32,
                grad_norm: info.grad_norm,
                lr,
                wall_ms: start.elapsed().as_secs_f64() * 1e3,
            });
        }
        info.loss_sum
    }

    /// Run one epoch: every training trajectory serves as anchor once.
    pub fn train_epoch(&mut self, epoch: usize) -> EpochStats {
        let start = Instant::now();
        let k = self.config.k();
        let mut order: Vec<usize> = (0..self.train.len()).collect();
        order.shuffle(&mut self.rng);
        let mut buffer: Vec<(usize, usize, f32)> = Vec::with_capacity(self.config.batch_pairs * 2);
        let mut total_loss = 0.0f64;
        let mut total_pairs = 0usize;
        let mut batches = 0usize;
        for &anchor in &order {
            let samples = {
                let _prof = profiler::phase("trainer.sampling");
                self.sampler.sample(anchor, k, self.dmat, &mut self.rng)
            };
            buffer.extend(samples.pairs());
            while buffer.len() >= self.config.batch_pairs {
                let chunk: Vec<_> = buffer.drain(..self.config.batch_pairs).collect();
                total_loss += self.run_batch(epoch, batches, &chunk) as f64;
                total_pairs += chunk.len();
                batches += 1;
            }
        }
        if !buffer.is_empty() {
            let chunk: Vec<_> = std::mem::take(&mut buffer);
            total_loss += self.run_batch(epoch, batches, &chunk) as f64;
            total_pairs += chunk.len();
            batches += 1;
        }
        let stats = EpochStats {
            epoch,
            loss: (total_loss / total_pairs.max(1) as f64) as f32,
            pairs: total_pairs,
            seconds: start.elapsed().as_secs_f64(),
        };
        if let Some(sink) = self.telemetry.as_mut() {
            sink.emit(&EpochTelemetry {
                record: EpochTelemetry::RECORD.to_string(),
                epoch,
                batches,
                pairs: stats.pairs,
                loss: stats.loss,
                wall_s: stats.seconds,
            });
            sink.flush();
        }
        stats
    }

    /// Run all configured epochs.
    pub fn train(&mut self) -> TrainStats {
        self.train_with(|_| {})
    }

    /// Run all configured epochs, invoking `on_epoch` after each one
    /// (progress reporting, early-stopping checks, checkpointing).
    pub fn train_with(&mut self, mut on_epoch: impl FnMut(&EpochStats)) -> TrainStats {
        let mut stats = TrainStats::default();
        for e in 0..self.config.epochs {
            let epoch = self.train_epoch(e);
            on_epoch(&epoch);
            stats.epochs.push(epoch);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LossKind, ModelConfig};
    use crate::models::ModelKind;
    use tmn_data::RankSampler;
    use tmn_traj::Point;

    fn toy_set(n: usize) -> Vec<Trajectory> {
        (0..n)
            .map(|i| {
                let off = i as f64 / n as f64;
                (0..12).map(|t| Point::new(0.08 * t as f64, off)).collect()
            })
            .collect()
    }

    fn quick_config() -> TrainConfig {
        TrainConfig {
            epochs: 3,
            lr: 5e-3,
            sampling_number: 6,
            batch_pairs: 12,
            loss: LossKind::Mse,
            use_sub_loss: true,
            sub_stride: 5,
            clip: 5.0,
            seed: 11,
            threads: 1,
        }
    }

    #[test]
    fn loss_decreases_on_toy_data() {
        let train = toy_set(16);
        let dmat = DistanceMatrix::compute(&train, Metric::Dtw, &MetricParams::default(), 1);
        let model = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 1 });
        let mut trainer = Trainer::new(
            model.as_ref(),
            &train,
            &dmat,
            Metric::Dtw,
            MetricParams::default(),
            Box::new(RankSampler),
            TrainConfig { epochs: 6, ..quick_config() },
            None,
        );
        let stats = trainer.train();
        assert_eq!(stats.epochs.len(), 6);
        let first = stats.epochs[0].loss;
        let last = stats.final_loss();
        assert!(last < first, "loss did not decrease: {first} -> {last}");
        assert!(last.is_finite());
    }

    #[test]
    fn all_model_kinds_train_one_epoch() {
        let train = toy_set(10);
        let dmat = DistanceMatrix::compute(&train, Metric::Hausdorff, &MetricParams::default(), 1);
        for kind in ModelKind::ALL {
            let model = kind.build(&ModelConfig { dim: 8, seed: 2 });
            let mut trainer = Trainer::new(
                model.as_ref(),
                &train,
                &dmat,
                Metric::Hausdorff,
                MetricParams::default(),
                Box::new(RankSampler),
                TrainConfig { epochs: 1, ..quick_config() },
                None,
            );
            let stats = trainer.train();
            assert!(stats.final_loss().is_finite(), "{kind}: non-finite loss");
            assert!(stats.epochs[0].pairs > 0, "{kind}: no pairs trained");
        }
    }

    #[test]
    fn qerror_training_stays_finite() {
        let train = toy_set(10);
        let dmat = DistanceMatrix::compute(&train, Metric::Dtw, &MetricParams::default(), 1);
        let model = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 3 });
        let mut trainer = Trainer::new(
            model.as_ref(),
            &train,
            &dmat,
            Metric::Dtw,
            MetricParams::default(),
            Box::new(RankSampler),
            TrainConfig { loss: LossKind::QError, epochs: 2, ..quick_config() },
            None,
        );
        let stats = trainer.train();
        assert!(stats.final_loss().is_finite());
    }

    #[test]
    fn train_with_invokes_callback_per_epoch() {
        let train = toy_set(8);
        let dmat = DistanceMatrix::compute(&train, Metric::Dtw, &MetricParams::default(), 1);
        let model = ModelKind::Srn.build(&ModelConfig { dim: 8, seed: 5 });
        let mut trainer = Trainer::new(
            model.as_ref(),
            &train,
            &dmat,
            Metric::Dtw,
            MetricParams::default(),
            Box::new(RankSampler),
            TrainConfig { epochs: 3, ..quick_config() },
            None,
        );
        let mut seen = Vec::new();
        let stats = trainer.train_with(|e| seen.push(e.epoch));
        assert_eq!(seen, vec![0, 1, 2]);
        assert_eq!(stats.epochs.len(), 3);
    }

    /// Train one model kind at a given thread count (with the replica spec
    /// installed) and return the per-epoch losses plus final weights as bits.
    fn train_run(kind: ModelKind, threads: usize, replicas: bool) -> (Vec<u32>, Vec<Vec<u32>>) {
        let train = toy_set(12);
        let dmat = DistanceMatrix::compute(&train, Metric::Dtw, &MetricParams::default(), 1);
        let mcfg = ModelConfig { dim: 8, seed: 9 };
        let model = kind.build(&mcfg);
        let mut trainer = Trainer::new(
            model.as_ref(),
            &train,
            &dmat,
            Metric::Dtw,
            MetricParams::default(),
            Box::new(RankSampler),
            TrainConfig { epochs: 2, threads, ..quick_config() },
            None,
        );
        if replicas {
            trainer = trainer.with_replicas(kind, mcfg);
        }
        let stats = trainer.train();
        let losses = stats.epochs.iter().map(|e| e.loss.to_bits()).collect();
        let weights = model
            .params()
            .snapshot()
            .into_iter()
            .map(|(_, _, d)| d.into_iter().map(f32::to_bits).collect())
            .collect();
        (losses, weights)
    }

    #[test]
    fn threads_one_bit_identical_to_serial_trainer() {
        // threads=1 must dispatch to the untouched serial path even when a
        // replica spec is present: same losses, same weights, bit for bit.
        let (serial_losses, serial_weights) = train_run(ModelKind::Tmn, 1, false);
        let (dp_losses, dp_weights) = train_run(ModelKind::Tmn, 1, true);
        assert_eq!(serial_losses, dp_losses, "threads=1 changed the loss curve");
        assert_eq!(serial_weights, dp_weights, "threads=1 changed the trained weights");
    }

    #[test]
    fn parallel_training_is_deterministic() {
        // Fixed chunking + fixed-order gradient reduction: two identical
        // 4-worker runs must agree exactly.
        let (l1, w1) = train_run(ModelKind::Tmn, 4, true);
        let (l2, w2) = train_run(ModelKind::Tmn, 4, true);
        assert_eq!(l1, l2, "4-worker loss curve not reproducible");
        assert_eq!(w1, w2, "4-worker weights not reproducible");
    }

    #[test]
    fn parallel_training_matches_serial_closely() {
        // Chunked gradients equal the full-batch gradient up to f32
        // reassociation (the loss is a sum over pairs), so the 4-worker loss
        // curve should track the serial one tightly.
        let (serial_losses, _) = train_run(ModelKind::Tmn, 1, false);
        let (dp_losses, _) = train_run(ModelKind::Tmn, 4, true);
        for (s_bits, p_bits) in serial_losses.iter().zip(&dp_losses) {
            let (s, p) = (f32::from_bits(*s_bits), f32::from_bits(*p_bits));
            assert!(p.is_finite());
            assert!(
                (s - p).abs() / s.abs().max(1e-6) < 1e-2,
                "parallel loss drifted: serial {s} vs parallel {p}"
            );
        }
    }

    #[test]
    fn all_model_kinds_train_data_parallel() {
        // Every kind must at least train under threads=4 with replicas —
        // NeuTraj via its serial fallback (supports_data_parallel = false),
        // the rest via the data-parallel path.
        for kind in ModelKind::ALL {
            let (losses, _) = train_run(kind, 4, true);
            assert!(
                losses.iter().all(|b| f32::from_bits(*b).is_finite()),
                "{kind}: non-finite loss under data-parallel training"
            );
        }
    }

    #[test]
    fn neutraj_opts_out_of_data_parallel() {
        let model = ModelKind::NeuTraj.build(&ModelConfig { dim: 8, seed: 1 });
        assert!(!model.supports_data_parallel());
        assert!(ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 1 }).supports_data_parallel());
    }

    #[test]
    fn telemetry_streams_batch_and_epoch_records() {
        let train = toy_set(10);
        let dmat = DistanceMatrix::compute(&train, Metric::Dtw, &MetricParams::default(), 1);
        let model = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 7 });
        let (sink, buf) = TelemetrySink::memory();
        let mut trainer = Trainer::new(
            model.as_ref(),
            &train,
            &dmat,
            Metric::Dtw,
            MetricParams::default(),
            Box::new(RankSampler),
            TrainConfig { epochs: 2, ..quick_config() },
            None,
        )
        .with_telemetry(sink);
        let stats = trainer.train();

        let mut batch_records = Vec::new();
        let mut epoch_records = Vec::new();
        for line in buf.lines() {
            let v: serde_json::Value = serde_json::from_str(&line).expect("telemetry line is JSON");
            match v.get_field("record") {
                Some(serde_json::Value::Str(s)) if s == "batch" => {
                    batch_records.push(serde_json::from_str::<BatchTelemetry>(&line).unwrap())
                }
                Some(serde_json::Value::Str(s)) if s == "epoch" => {
                    epoch_records.push(serde_json::from_str::<EpochTelemetry>(&line).unwrap())
                }
                other => panic!("unknown record discriminator: {other:?}"),
            }
        }
        assert_eq!(epoch_records.len(), 2, "one epoch record per epoch");
        assert!(!batch_records.is_empty());
        // Per-epoch pair counts reconcile with the batch stream.
        for (e, er) in epoch_records.iter().enumerate() {
            let pairs: usize =
                batch_records.iter().filter(|b| b.epoch == e).map(|b| b.pairs).sum();
            assert_eq!(pairs, er.pairs, "epoch {e} pair count mismatch");
            let batches = batch_records.iter().filter(|b| b.epoch == e).count();
            assert_eq!(batches, er.batches);
            assert!((er.loss - stats.epochs[e].loss).abs() < 1e-6);
        }
        for b in &batch_records {
            assert_eq!(b.workers, 1);
            assert!(b.max_len > 0);
            assert!(b.loss.is_finite() && b.grad_norm.is_finite());
            assert!(b.lr > 0.0);
        }
    }

    #[test]
    fn telemetry_does_not_change_training_bits() {
        let (plain_losses, plain_weights) = train_run(ModelKind::Tmn, 1, false);
        let train = toy_set(12);
        let dmat = DistanceMatrix::compute(&train, Metric::Dtw, &MetricParams::default(), 1);
        let mcfg = ModelConfig { dim: 8, seed: 9 };
        let model = ModelKind::Tmn.build(&mcfg);
        let (sink, _buf) = TelemetrySink::memory();
        let mut trainer = Trainer::new(
            model.as_ref(),
            &train,
            &dmat,
            Metric::Dtw,
            MetricParams::default(),
            Box::new(RankSampler),
            TrainConfig { epochs: 2, ..quick_config() },
            None,
        )
        .with_telemetry(sink);
        let stats = trainer.train();
        let losses: Vec<u32> = stats.epochs.iter().map(|e| e.loss.to_bits()).collect();
        let weights: Vec<Vec<u32>> = model
            .params()
            .snapshot()
            .into_iter()
            .map(|(_, _, d)| d.into_iter().map(f32::to_bits).collect())
            .collect();
        assert_eq!(plain_losses, losses, "telemetry changed the loss curve");
        assert_eq!(plain_weights, weights, "telemetry changed the trained weights");
    }

    #[test]
    fn sub_cache_fills_and_is_symmetric() {
        let train = toy_set(8);
        let dmat = DistanceMatrix::compute(&train, Metric::Dtw, &MetricParams::default(), 1);
        let model = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 4 });
        let mut trainer = Trainer::new(
            model.as_ref(),
            &train,
            &dmat,
            Metric::Dtw,
            MetricParams::default(),
            Box::new(RankSampler),
            quick_config(),
            None,
        );
        let v1 = trainer.sub_targets(1, 3);
        let v2 = trainer.sub_targets(3, 1);
        assert_eq!(v1, v2, "sub-target cache must be symmetric");
        assert!(!v1.is_empty());
        assert!(trainer.sub_cache.len() == 1);
    }
}
