//! Batch construction: padding, masks, last-valid indices, grid-cell ids.
//!
//! TMN pads the shorter trajectory of a pair with trailing zero points so
//! both sides share one length (Section IV-B); in a batch, every trajectory
//! is padded to the batch maximum and a `[B, m]` mask marks the real points.

use tmn_autograd::Tensor;
use tmn_traj::Trajectory;

/// One side (A or B) of a batch of trajectory pairs.
pub struct SideBatch {
    /// `[B, m, 2]` constant feature tensor (lon, lat), zero-padded.
    pub feats: Tensor,
    /// `[B, m]` constant mask: 1.0 on real points, 0.0 on padding.
    pub mask: Tensor,
    /// Index of the last real point per row (`len − 1`).
    pub last_idx: Vec<usize>,
    /// True (unpadded) lengths.
    pub lens: Vec<usize>,
    /// Grid-cell id per point (for NeuTraj's spatial memory); padding gets 0.
    pub grid_ids: Vec<Vec<usize>>,
    /// Padded length `m`.
    pub max_len: usize,
}

/// Resolution of the square grid used for NeuTraj-style cell ids, assuming
/// coordinates normalized to `[0, 1]`.
pub const GRID_RESOLUTION: usize = 24;

/// Grid-cell id of a normalized point.
pub fn grid_id(lon: f64, lat: f64) -> usize {
    let g = GRID_RESOLUTION as f64;
    let cx = (lon * g).floor().clamp(0.0, g - 1.0) as usize;
    let cy = (lat * g).floor().clamp(0.0, g - 1.0) as usize;
    cy * GRID_RESOLUTION + cx
}

/// The 3×3 neighbourhood of a grid cell (clipped at the borders).
pub fn grid_neighbourhood(cell: usize) -> Vec<usize> {
    let g = GRID_RESOLUTION as isize;
    let (cx, cy) = ((cell % GRID_RESOLUTION) as isize, (cell / GRID_RESOLUTION) as isize);
    let mut out = Vec::with_capacity(9);
    for dy in -1..=1 {
        for dx in -1..=1 {
            let (nx, ny) = (cx + dx, cy + dy);
            if (0..g).contains(&nx) && (0..g).contains(&ny) {
                out.push((ny * g + nx) as usize);
            }
        }
    }
    out
}

impl SideBatch {
    /// Build from trajectories, padding to `max_len` (must be ≥ every
    /// length; pass the pair/batch maximum).
    pub fn build(trajs: &[&Trajectory], max_len: usize) -> SideBatch {
        assert!(!trajs.is_empty(), "SideBatch: empty batch");
        let b = trajs.len();
        let mut feats = vec![0.0f32; b * max_len * 2];
        let mut mask = vec![0.0f32; b * max_len];
        let mut last_idx = Vec::with_capacity(b);
        let mut lens = Vec::with_capacity(b);
        let mut grid_ids = Vec::with_capacity(b);
        for (row, t) in trajs.iter().enumerate() {
            let len = t.len();
            assert!(len > 0, "SideBatch: empty trajectory at row {row}");
            assert!(len <= max_len, "SideBatch: trajectory longer than max_len");
            let mut cells = Vec::with_capacity(max_len);
            for (i, p) in t.points().iter().enumerate() {
                feats[(row * max_len + i) * 2] = p.lon as f32;
                feats[(row * max_len + i) * 2 + 1] = p.lat as f32;
                mask[row * max_len + i] = 1.0;
                cells.push(grid_id(p.lon, p.lat));
            }
            cells.resize(max_len, 0);
            last_idx.push(len - 1);
            lens.push(len);
            grid_ids.push(cells);
        }
        SideBatch {
            feats: Tensor::from_vec(feats, &[b, max_len, 2]),
            mask: Tensor::from_vec(mask, &[b, max_len]),
            last_idx,
            lens,
            grid_ids,
            max_len,
        }
    }

    pub fn batch_size(&self) -> usize {
        self.last_idx.len()
    }
}

/// A batch of trajectory pairs `(T_a, T_s)` padded to a common length.
pub struct PairBatch {
    pub a: SideBatch,
    pub b: SideBatch,
}

impl PairBatch {
    /// Build from parallel slices of anchors and samples. Both sides are
    /// padded to the same `m = max length across the whole batch`, matching
    /// the paper's equal-length padding.
    pub fn build(anchors: &[&Trajectory], samples: &[&Trajectory]) -> PairBatch {
        assert_eq!(anchors.len(), samples.len(), "PairBatch: side lengths differ");
        let max_len = anchors
            .iter()
            .chain(samples.iter())
            .map(|t| t.len())
            .max()
            .expect("PairBatch: empty batch");
        PairBatch { a: SideBatch::build(anchors, max_len), b: SideBatch::build(samples, max_len) }
    }

    pub fn batch_size(&self) -> usize {
        self.a.batch_size()
    }

    pub fn max_len(&self) -> usize {
        self.a.max_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmn_traj::Trajectory;

    fn t(n: usize) -> Trajectory {
        (0..n).map(|i| tmn_traj::Point::new(0.1 * i as f64, 0.5)).collect()
    }

    #[test]
    fn padding_and_masks() {
        let (a, b) = (t(3), t(5));
        let batch = PairBatch::build(&[&a], &[&b]);
        assert_eq!(batch.max_len(), 5);
        assert_eq!(batch.a.mask.to_vec(), vec![1.0, 1.0, 1.0, 0.0, 0.0]);
        assert_eq!(batch.b.mask.to_vec(), vec![1.0; 5]);
        assert_eq!(batch.a.last_idx, vec![2]);
        assert_eq!(batch.b.last_idx, vec![4]);
        // Padded features are zero.
        let f = batch.a.feats.to_vec();
        assert_eq!(&f[6..], &[0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn batch_max_spans_both_sides() {
        let (a1, a2) = (t(3), t(8));
        let (b1, b2) = (t(4), t(2));
        let batch = PairBatch::build(&[&a1, &a2], &[&b1, &b2]);
        assert_eq!(batch.max_len(), 8);
        assert_eq!(batch.a.feats.shape(), &[2, 8, 2]);
        assert_eq!(batch.b.feats.shape(), &[2, 8, 2]);
    }

    #[test]
    fn grid_ids_cover_points_and_pad_zero() {
        let a = t(3);
        let sb = SideBatch::build(&[&a], 5);
        assert_eq!(sb.grid_ids[0].len(), 5);
        assert_eq!(sb.grid_ids[0][3], 0);
        assert_eq!(sb.grid_ids[0][4], 0);
    }

    #[test]
    fn grid_id_corners() {
        assert_eq!(grid_id(0.0, 0.0), 0);
        assert_eq!(grid_id(1.0, 1.0), GRID_RESOLUTION * GRID_RESOLUTION - 1);
        // Out-of-range coordinates clamp instead of overflowing.
        assert_eq!(grid_id(2.0, 2.0), GRID_RESOLUTION * GRID_RESOLUTION - 1);
        assert_eq!(grid_id(-1.0, -1.0), 0);
    }

    #[test]
    fn neighbourhood_sizes() {
        assert_eq!(grid_neighbourhood(0).len(), 4); // corner
        let mid = grid_id(0.5, 0.5);
        assert_eq!(grid_neighbourhood(mid).len(), 9);
        assert!(grid_neighbourhood(mid).contains(&mid));
    }

    #[test]
    #[should_panic(expected = "side lengths differ")]
    fn mismatched_sides_panic() {
        let a = t(3);
        let _ = PairBatch::build(&[&a], &[]);
    }
}
