//! # tmn-core
//!
//! The paper's primary contribution and its baselines: TMN (Trajectory
//! Matching Networks, ICDE 2022) plus SRN, NeuTraj, T3S and Traj2SimVec,
//! with the training recipe of Section IV — rank-weighted MSE / Q-error
//! losses, sub-trajectory supervision, and per-anchor near/far sampling.
//!
//! ```
//! use tmn_core::{ModelConfig, ModelKind, PairBatch, PairModel};
//! use tmn_traj::Trajectory;
//!
//! let model = ModelKind::Tmn.build(&ModelConfig { dim: 16, seed: 1 });
//! let a = Trajectory::from_coords(&[(0.1, 0.2), (0.3, 0.4), (0.5, 0.4)]);
//! let b = Trajectory::from_coords(&[(0.1, 0.1), (0.4, 0.4)]);
//! let enc = model.encode_pairs(&PairBatch::build(&[&a], &[&b]));
//! assert_eq!(enc.out_a.shape(), &[1, 3, 16]); // [B, m, d]
//! ```

pub mod batch;
pub mod checkpoint;
pub mod config;
pub mod loss;
pub mod models;
pub mod trainer;

pub use batch::{grid_id, grid_neighbourhood, PairBatch, SideBatch, GRID_RESOLUTION};
pub use checkpoint::store::{CheckpointStore, LoadedFrom};
pub use checkpoint::{
    decode_checkpoint, load_params, save_checkpoint, save_params, CheckpointError,
    TrainCheckpoint, TrainerState,
};
pub use config::{LossKind, ModelConfig, TrainConfig};
pub use loss::{pair_loss, PairTargets};
pub use models::{EncodedBatch, ModelKind, NeuTraj, PairModel, Srn, T3s, Tmn};
pub use trainer::{
    EpochStats, TrainStats, Trainer, TRAIN_BATCHES_TOTAL, TRAIN_BATCH_NS, TRAIN_BATCH_WALL_MS,
    TRAIN_LIVE_BYTES, TRAIN_PEAK_BYTES,
};
