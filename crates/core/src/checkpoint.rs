//! Binary model checkpoints: serialize a [`ParamSet`] snapshot to a compact
//! framed buffer (via `bytes`) and restore it into a freshly built model.
//!
//! Format (little-endian):
//! ```text
//! magic "TMNW" | version u32 | n_params u32 |
//!   repeat n_params times:
//!     name_len u32 | name bytes | rank u32 | dims u32... | data f32...
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tmn_autograd::nn::ParamSet;

const MAGIC: &[u8; 4] = b"TMNW";
const VERSION: u32 = 1;

/// Errors produced when decoding a checkpoint buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum CheckpointError {
    BadMagic,
    UnsupportedVersion(u32),
    Truncated,
    Corrupt(&'static str),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a TMN checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            CheckpointError::Truncated => write!(f, "buffer ends mid-record"),
            CheckpointError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serialize the parameters of a model into a checkpoint buffer.
pub fn save_params(params: &ParamSet) -> Bytes {
    let snap = params.snapshot();
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(snap.len() as u32);
    for (name, shape, data) in &snap {
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name.as_bytes());
        buf.put_u32_le(shape.len() as u32);
        for &d in shape {
            buf.put_u32_le(d as u32);
        }
        for &v in data {
            buf.put_f32_le(v);
        }
    }
    buf.freeze()
}

/// One decoded parameter: `(name, shape, data)`.
pub type ParamRow = (String, Vec<usize>, Vec<f32>);

/// Decode a checkpoint buffer into `(name, shape, data)` rows.
pub fn decode(mut buf: &[u8]) -> Result<Vec<ParamRow>, CheckpointError> {
    if buf.remaining() < 12 {
        return Err(CheckpointError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let n = buf.get_u32_le() as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if buf.remaining() < 4 {
            return Err(CheckpointError::Truncated);
        }
        let name_len = buf.get_u32_le() as usize;
        if buf.remaining() < name_len {
            return Err(CheckpointError::Truncated);
        }
        let name = String::from_utf8(buf.copy_to_bytes(name_len).to_vec())
            .map_err(|_| CheckpointError::Corrupt("non-utf8 parameter name"))?;
        if buf.remaining() < 4 {
            return Err(CheckpointError::Truncated);
        }
        let rank = buf.get_u32_le() as usize;
        if rank > 8 {
            return Err(CheckpointError::Corrupt("implausible tensor rank"));
        }
        if buf.remaining() < 4 * rank {
            return Err(CheckpointError::Truncated);
        }
        let shape: Vec<usize> = (0..rank).map(|_| buf.get_u32_le() as usize).collect();
        let numel: usize = shape.iter().product();
        if buf.remaining() < 4 * numel {
            return Err(CheckpointError::Truncated);
        }
        let data: Vec<f32> = (0..numel).map(|_| buf.get_f32_le()).collect();
        out.push((name, shape, data));
    }
    Ok(out)
}

/// Restore a checkpoint buffer into a model's parameters. Names and shapes
/// must match the model exactly (panics otherwise, as `ParamSet::restore`
/// does).
pub fn load_params(params: &ParamSet, buf: &[u8]) -> Result<(), CheckpointError> {
    let snap = decode(buf)?;
    params.restore(&snap);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::models::ModelKind;

    #[test]
    fn roundtrip_all_models() {
        for kind in ModelKind::ALL {
            let model = kind.build(&ModelConfig { dim: 8, seed: 1 });
            let buf = save_params(model.params());
            let clone = kind.build(&ModelConfig { dim: 8, seed: 999 });
            load_params(clone.params(), &buf).unwrap();
            for ((n1, t1), (n2, t2)) in model.params().iter().zip(clone.params().iter()) {
                assert_eq!(n1, n2);
                assert_eq!(t1.to_vec(), t2.to_vec(), "{kind}: weights differ after roundtrip");
            }
        }
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode(b"NOPE........"), Err(CheckpointError::BadMagic));
    }

    #[test]
    fn truncated_rejected() {
        let model = ModelKind::Srn.build(&ModelConfig { dim: 8, seed: 2 });
        let buf = save_params(model.params());
        let cut = &buf[..buf.len() / 2];
        assert_eq!(decode(cut), Err(CheckpointError::Truncated));
    }

    #[test]
    fn version_checked() {
        let mut raw = save_params(ModelKind::Srn.build(&ModelConfig { dim: 8, seed: 3 }).params()).to_vec();
        raw[4] = 99; // bump version byte
        assert_eq!(decode(&raw), Err(CheckpointError::UnsupportedVersion(99)));
    }

    #[test]
    fn empty_buffer_rejected() {
        assert_eq!(decode(&[]), Err(CheckpointError::Truncated));
    }
}
