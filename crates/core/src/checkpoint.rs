//! Binary model checkpoints.
//!
//! Two wire formats share the `TMNW` magic:
//!
//! **v1** (legacy, weights only, still readable):
//! ```text
//! magic "TMNW" | version=1 u32 | n_params u32 |
//!   repeat n_params times:
//!     name_len u32 | name bytes | rank u32 | dims u32... | data f32...
//! ```
//!
//! **v2** (current): a typed section table with per-section and whole-file
//! CRC32 checksums, so torn writes and bit rot are detected instead of
//! silently corrupting a resumed run:
//! ```text
//! magic "TMNW" | version=2 u32 | n_sections u32 |
//!   repeat n_sections times:
//!     kind u32 | payload_len u32 | payload bytes | crc32(payload) u32
//! file_crc32 u32   (over every preceding byte)
//! ```
//!
//! Section kinds: `1` = params (same row encoding as the v1 body), `2` =
//! Adam optimizer state (hyperparameters, step count, both moment buffers),
//! `3` = trainer state (epoch, batch cursor, sampler RNG state, anchor
//! order, pending pair buffer — everything needed to resume bit-identically
//! mid-epoch). Unknown kinds are skipped (their CRC is still verified) so
//! newer writers stay readable. All integers little-endian.
//!
//! Decoding never panics on malformed input: every length/count field is
//! validated against the remaining buffer (with `checked_mul`, so a
//! rank-8 shape cannot overflow `usize`) *before* any allocation.

pub mod store;

use crate::config::LossKind;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use tmn_autograd::nn::{ParamSet, RestoreError};
use tmn_autograd::optim::AdamState;

const MAGIC: &[u8; 4] = b"TMNW";
const VERSION_V1: u32 = 1;
const VERSION_V2: u32 = 2;

/// Section kinds of the v2 format.
const SECTION_PARAMS: u32 = 1;
const SECTION_ADAM: u32 = 2;
const SECTION_TRAINER: u32 = 3;

/// Errors produced when decoding or applying a checkpoint buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    BadMagic,
    UnsupportedVersion(u32),
    Truncated,
    Corrupt(&'static str),
    /// A CRC32 check failed (`what` names the section, or `"file"`).
    CrcMismatch { what: &'static str },
    /// The checkpoint decoded cleanly but does not fit the target model or
    /// trainer (wrong `ModelKind`, `dim`, or training recipe).
    Mismatch { name: String, expected: String, found: String },
    /// A filesystem error while loading/saving (store layer).
    Io(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a TMN checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            CheckpointError::Truncated => write!(f, "buffer ends mid-record"),
            CheckpointError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
            CheckpointError::CrcMismatch { what } => {
                write!(f, "corrupt checkpoint: CRC mismatch in {what}")
            }
            CheckpointError::Mismatch { name, expected, found } => {
                write!(f, "checkpoint mismatch at {name}: expected {expected}, found {found}")
            }
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<RestoreError> for CheckpointError {
    fn from(e: RestoreError) -> CheckpointError {
        match e {
            RestoreError::CountMismatch { expected, found } => CheckpointError::Mismatch {
                name: "parameter count".into(),
                expected: expected.to_string(),
                found: found.to_string(),
            },
            RestoreError::NameMismatch { index, expected, found } => CheckpointError::Mismatch {
                name: format!("parameter #{index}"),
                expected,
                found,
            },
            RestoreError::ShapeMismatch { name, expected, found } => CheckpointError::Mismatch {
                name,
                expected: format!("{expected:?}"),
                found: format!("{found:?}"),
            },
            RestoreError::DataMismatch { name, expected, found } => CheckpointError::Mismatch {
                name,
                expected: format!("{expected} scalars"),
                found: format!("{found} scalars"),
            },
        }
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF) — the ubiquitous
// `crc32` of zlib/gzip. One implementation serves the whole workspace: it
// moved to `tmn-store` (whose file formats grew out of this framing) and is
// re-exported here so checkpoint callers keep their import path.
// ---------------------------------------------------------------------------

pub use tmn_store::crc32;

// ---------------------------------------------------------------------------
// Decoded structures
// ---------------------------------------------------------------------------

/// One decoded parameter: `(name, shape, data)`.
pub type ParamRow = (String, Vec<usize>, Vec<f32>);

/// Mid-run trainer state: everything beyond weights and optimizer moments
/// that a bit-identical resume needs.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainerState {
    /// Epoch in progress (0-based).
    pub epoch: u64,
    /// Gradient steps taken since training started (all epochs).
    pub steps: u64,
    /// Gradient steps taken within the current epoch.
    pub batches: u64,
    /// Next position in `order` to sample (anchors before it are consumed).
    pub next_anchor: u64,
    /// Pairs trained so far this epoch (epoch-loss accumulator).
    pub total_pairs: u64,
    /// Summed loss so far this epoch (epoch-loss accumulator).
    pub total_loss: f64,
    /// Sampler RNG state (xoshiro256**), captured after the last sample.
    pub rng: [u64; 4],
    /// Config echo, validated on resume: a resumed run only replays
    /// bit-identically if the sampling recipe is unchanged.
    pub seed: u64,
    pub batch_pairs: u32,
    pub sampling_number: u32,
    pub sub_stride: u32,
    pub use_sub_loss: bool,
    pub loss: LossKind,
    /// This epoch's shuffled anchor order.
    pub order: Vec<u32>,
    /// Sampled pairs not yet trained: `(anchor, sample, weight)`.
    pub buffer: Vec<(u32, u32, f32)>,
}

/// A fully decoded checkpoint. v1 files and weights-only v2 files populate
/// `params` only.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCheckpoint {
    pub params: Vec<ParamRow>,
    pub optimizer: Option<AdamState>,
    pub trainer: Option<TrainerState>,
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn encode_param_rows(rows: &[(String, Vec<usize>, Vec<f32>)], buf: &mut BytesMut) {
    buf.put_u32_le(rows.len() as u32);
    for (name, shape, data) in rows {
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name.as_bytes());
        buf.put_u32_le(shape.len() as u32);
        for &d in shape {
            buf.put_u32_le(d as u32);
        }
        for &v in data {
            buf.put_f32_le(v);
        }
    }
}

fn encode_adam(state: &AdamState, buf: &mut BytesMut) {
    buf.put_f32_le(state.lr);
    buf.put_f32_le(state.beta1);
    buf.put_f32_le(state.beta2);
    buf.put_f32_le(state.eps);
    buf.put_u64_le(state.t);
    buf.put_u32_le(state.m.len() as u32);
    for (m, v) in state.m.iter().zip(&state.v) {
        buf.put_u32_le(m.len() as u32);
        for &x in m {
            buf.put_f32_le(x);
        }
        for &x in v {
            buf.put_f32_le(x);
        }
    }
}

fn encode_trainer(state: &TrainerState, buf: &mut BytesMut) {
    buf.put_u64_le(state.epoch);
    buf.put_u64_le(state.steps);
    buf.put_u64_le(state.batches);
    buf.put_u64_le(state.next_anchor);
    buf.put_u64_le(state.total_pairs);
    buf.put_f64_le(state.total_loss);
    for &w in &state.rng {
        buf.put_u64_le(w);
    }
    buf.put_u64_le(state.seed);
    buf.put_u32_le(state.batch_pairs);
    buf.put_u32_le(state.sampling_number);
    buf.put_u32_le(state.sub_stride);
    buf.put_u8(state.use_sub_loss as u8);
    buf.put_u8(match state.loss {
        LossKind::Mse => 0,
        LossKind::QError => 1,
    });
    buf.put_u32_le(state.order.len() as u32);
    for &a in &state.order {
        buf.put_u32_le(a);
    }
    buf.put_u32_le(state.buffer.len() as u32);
    for &(a, s, w) in &state.buffer {
        buf.put_u32_le(a);
        buf.put_u32_le(s);
        buf.put_f32_le(w);
    }
}

fn put_section(buf: &mut BytesMut, kind: u32, payload: &[u8]) {
    buf.put_u32_le(kind);
    buf.put_u32_le(payload.len() as u32);
    buf.put_slice(payload);
    buf.put_u32_le(crc32(payload));
}

/// Serialize a full training checkpoint (v2): parameters plus optional
/// optimizer and trainer sections, CRC-protected per section and whole-file.
pub fn save_checkpoint(
    params: &ParamSet,
    optimizer: Option<&AdamState>,
    trainer: Option<&TrainerState>,
) -> Bytes {
    let rows = params.snapshot();
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION_V2);
    let n_sections =
        1 + optimizer.is_some() as u32 + trainer.is_some() as u32;
    buf.put_u32_le(n_sections);

    let mut payload = BytesMut::new();
    encode_param_rows(&rows, &mut payload);
    put_section(&mut buf, SECTION_PARAMS, &payload);
    if let Some(adam) = optimizer {
        payload.clear();
        encode_adam(adam, &mut payload);
        put_section(&mut buf, SECTION_ADAM, &payload);
    }
    if let Some(state) = trainer {
        payload.clear();
        encode_trainer(state, &mut payload);
        put_section(&mut buf, SECTION_TRAINER, &payload);
    }
    let file_crc = crc32(&buf);
    buf.put_u32_le(file_crc);
    buf.freeze()
}

/// Serialize the parameters of a model into a weights-only checkpoint
/// (v2, params section only).
pub fn save_params(params: &ParamSet) -> Bytes {
    save_checkpoint(params, None, None)
}

/// Serialize parameters in the legacy v1 layout (no checksums). Kept so the
/// v1-compatibility path stays exercised; new code writes v2.
pub fn encode_params_v1(params: &ParamSet) -> Bytes {
    let snap = params.snapshot();
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION_V1);
    encode_param_rows(&snap, &mut buf);
    buf.freeze()
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Minimum encoded size of one parameter row (empty name, rank 0, no data).
const MIN_ROW_BYTES: usize = 8;

fn decode_param_rows(buf: &mut &[u8]) -> Result<Vec<ParamRow>, CheckpointError> {
    if buf.remaining() < 4 {
        return Err(CheckpointError::Truncated);
    }
    let n = buf.get_u32_le() as usize;
    // An untrusted count must not drive the allocation: each row needs at
    // least MIN_ROW_BYTES, so a count beyond that bound is a lie.
    if n > buf.remaining() / MIN_ROW_BYTES {
        return Err(CheckpointError::Truncated);
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if buf.remaining() < 4 {
            return Err(CheckpointError::Truncated);
        }
        let name_len = buf.get_u32_le() as usize;
        if buf.remaining() < name_len {
            return Err(CheckpointError::Truncated);
        }
        let name = String::from_utf8(buf.copy_to_bytes(name_len).to_vec())
            .map_err(|_| CheckpointError::Corrupt("non-utf8 parameter name"))?;
        if buf.remaining() < 4 {
            return Err(CheckpointError::Truncated);
        }
        let rank = buf.get_u32_le() as usize;
        if rank > 8 {
            return Err(CheckpointError::Corrupt("implausible tensor rank"));
        }
        if buf.remaining() < 4 * rank {
            return Err(CheckpointError::Truncated);
        }
        let shape: Vec<usize> = (0..rank).map(|_| buf.get_u32_le() as usize).collect();
        // `shape.iter().product()` can wrap at rank 8 (u32 dims multiply up
        // to 2^256); validate with checked_mul against the buffer *before*
        // allocating anything.
        let numel = shape
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .ok_or(CheckpointError::Corrupt("tensor shape overflows usize"))?;
        if numel > buf.remaining() / 4 {
            return Err(CheckpointError::Truncated);
        }
        let data: Vec<f32> = (0..numel).map(|_| buf.get_f32_le()).collect();
        out.push((name, shape, data));
    }
    Ok(out)
}

fn decode_adam(buf: &mut &[u8]) -> Result<AdamState, CheckpointError> {
    if buf.remaining() < 28 {
        return Err(CheckpointError::Truncated);
    }
    let lr = buf.get_f32_le();
    let beta1 = buf.get_f32_le();
    let beta2 = buf.get_f32_le();
    let eps = buf.get_f32_le();
    let t = buf.get_u64_le();
    let n = buf.get_u32_le() as usize;
    if n > buf.remaining() / 4 {
        return Err(CheckpointError::Truncated);
    }
    let mut m = Vec::with_capacity(n);
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        if buf.remaining() < 4 {
            return Err(CheckpointError::Truncated);
        }
        let numel = buf.get_u32_le() as usize;
        if numel > buf.remaining() / 8 {
            return Err(CheckpointError::Truncated);
        }
        m.push((0..numel).map(|_| buf.get_f32_le()).collect::<Vec<f32>>());
        v.push((0..numel).map(|_| buf.get_f32_le()).collect::<Vec<f32>>());
    }
    Ok(AdamState { lr, beta1, beta2, eps, t, m, v })
}

fn decode_trainer(buf: &mut &[u8]) -> Result<TrainerState, CheckpointError> {
    // Fixed-size head: 5×u64 + f64 + 4×u64 + u64 + 3×u32 + 2×u8.
    if buf.remaining() < 102 {
        return Err(CheckpointError::Truncated);
    }
    let epoch = buf.get_u64_le();
    let steps = buf.get_u64_le();
    let batches = buf.get_u64_le();
    let next_anchor = buf.get_u64_le();
    let total_pairs = buf.get_u64_le();
    let total_loss = buf.get_f64_le();
    let mut rng = [0u64; 4];
    for w in &mut rng {
        *w = buf.get_u64_le();
    }
    let seed = buf.get_u64_le();
    let batch_pairs = buf.get_u32_le();
    let sampling_number = buf.get_u32_le();
    let sub_stride = buf.get_u32_le();
    let use_sub_loss = match buf.get_u8() {
        0 => false,
        1 => true,
        _ => return Err(CheckpointError::Corrupt("bad bool in trainer state")),
    };
    let loss = match buf.get_u8() {
        0 => LossKind::Mse,
        1 => LossKind::QError,
        _ => return Err(CheckpointError::Corrupt("unknown loss kind")),
    };
    if buf.remaining() < 4 {
        return Err(CheckpointError::Truncated);
    }
    let order_len = buf.get_u32_le() as usize;
    if order_len > buf.remaining() / 4 {
        return Err(CheckpointError::Truncated);
    }
    let order: Vec<u32> = (0..order_len).map(|_| buf.get_u32_le()).collect();
    if buf.remaining() < 4 {
        return Err(CheckpointError::Truncated);
    }
    let buffer_len = buf.get_u32_le() as usize;
    if buffer_len > buf.remaining() / 12 {
        return Err(CheckpointError::Truncated);
    }
    let buffer: Vec<(u32, u32, f32)> = (0..buffer_len)
        .map(|_| {
            let a = buf.get_u32_le();
            let s = buf.get_u32_le();
            let w = buf.get_f32_le();
            (a, s, w)
        })
        .collect();
    Ok(TrainerState {
        epoch,
        steps,
        batches,
        next_anchor,
        total_pairs,
        total_loss,
        rng,
        seed,
        batch_pairs,
        sampling_number,
        sub_stride,
        use_sub_loss,
        loss,
        order,
        buffer,
    })
}

/// Decode a checkpoint buffer (either version) into its typed sections.
/// Never panics on malformed input.
pub fn decode_checkpoint(full: &[u8]) -> Result<TrainCheckpoint, CheckpointError> {
    let mut buf = full;
    if buf.remaining() < 12 {
        return Err(CheckpointError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = buf.get_u32_le();
    match version {
        VERSION_V1 => {
            // Legacy weights-only layout: the count field is part of the body.
            let mut body = &full[8..];
            let params = decode_param_rows(&mut body)?;
            Ok(TrainCheckpoint { params, optimizer: None, trainer: None })
        }
        VERSION_V2 => {
            if full.len() < 16 {
                return Err(CheckpointError::Truncated);
            }
            // Whole-file integrity first: the trailer CRC covers every
            // preceding byte, so any single-bit flip anywhere is caught
            // before section parsing begins.
            let trailer =
                u32::from_le_bytes(full[full.len() - 4..].try_into().expect("4-byte trailer"));
            if crc32(&full[..full.len() - 4]) != trailer {
                return Err(CheckpointError::CrcMismatch { what: "file" });
            }
            let n_sections = buf.get_u32_le() as usize;
            let mut buf = &full[12..full.len() - 4];
            let mut params: Option<Vec<ParamRow>> = None;
            let mut optimizer: Option<AdamState> = None;
            let mut trainer: Option<TrainerState> = None;
            for _ in 0..n_sections {
                if buf.remaining() < 8 {
                    return Err(CheckpointError::Truncated);
                }
                let kind = buf.get_u32_le();
                let len = buf.get_u32_le() as usize;
                if buf.remaining() < len + 4 {
                    return Err(CheckpointError::Truncated);
                }
                let payload = &buf[..len];
                buf.advance(len);
                let stored_crc = buf.get_u32_le();
                let (what, duplicate) = match kind {
                    SECTION_PARAMS => ("params section", params.is_some()),
                    SECTION_ADAM => ("adam section", optimizer.is_some()),
                    SECTION_TRAINER => ("trainer section", trainer.is_some()),
                    _ => ("unknown section", false),
                };
                if crc32(payload) != stored_crc {
                    return Err(CheckpointError::CrcMismatch { what });
                }
                if duplicate {
                    return Err(CheckpointError::Corrupt("duplicate section"));
                }
                let mut p = payload;
                match kind {
                    SECTION_PARAMS => {
                        let rows = decode_param_rows(&mut p)?;
                        if p.remaining() != 0 {
                            return Err(CheckpointError::Corrupt("trailing bytes in params section"));
                        }
                        params = Some(rows);
                    }
                    SECTION_ADAM => {
                        let state = decode_adam(&mut p)?;
                        if p.remaining() != 0 {
                            return Err(CheckpointError::Corrupt("trailing bytes in adam section"));
                        }
                        optimizer = Some(state);
                    }
                    SECTION_TRAINER => {
                        let state = decode_trainer(&mut p)?;
                        if p.remaining() != 0 {
                            return Err(CheckpointError::Corrupt("trailing bytes in trainer section"));
                        }
                        trainer = Some(state);
                    }
                    // Unknown kinds: CRC verified above, payload skipped.
                    _ => {}
                }
            }
            if buf.remaining() != 0 {
                return Err(CheckpointError::Corrupt("trailing bytes after section table"));
            }
            let params = params.ok_or(CheckpointError::Corrupt("missing params section"))?;
            Ok(TrainCheckpoint { params, optimizer, trainer })
        }
        other => Err(CheckpointError::UnsupportedVersion(other)),
    }
}

/// Decode a checkpoint buffer into `(name, shape, data)` rows (weights
/// only). Reads both v1 and v2 files.
pub fn decode(buf: &[u8]) -> Result<Vec<ParamRow>, CheckpointError> {
    decode_checkpoint(buf).map(|c| c.params)
}

/// Restore a checkpoint buffer into a model's parameters. Accepts v1 and v2
/// files; a checkpoint from the wrong `ModelKind`/`dim` yields
/// [`CheckpointError::Mismatch`] instead of panicking, with the model left
/// untouched.
pub fn load_params(params: &ParamSet, buf: &[u8]) -> Result<(), CheckpointError> {
    let snap = decode(buf)?;
    params.try_restore(&snap)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::models::ModelKind;

    #[test]
    fn roundtrip_all_models() {
        for kind in ModelKind::ALL {
            let model = kind.build(&ModelConfig { dim: 8, seed: 1 });
            let buf = save_params(model.params());
            let clone = kind.build(&ModelConfig { dim: 8, seed: 999 });
            load_params(clone.params(), &buf).unwrap();
            for ((n1, t1), (n2, t2)) in model.params().iter().zip(clone.params().iter()) {
                assert_eq!(n1, n2);
                assert_eq!(t1.to_vec(), t2.to_vec(), "{kind}: weights differ after roundtrip");
            }
        }
    }

    #[test]
    fn v1_still_loads_weights() {
        let model = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 4 });
        let buf = encode_params_v1(model.params());
        let clone = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 123 });
        load_params(clone.params(), &buf).unwrap();
        assert_eq!(model.params().fingerprint(), clone.params().fingerprint());
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode(b"NOPE........"), Err(CheckpointError::BadMagic));
    }

    #[test]
    fn truncated_rejected() {
        let model = ModelKind::Srn.build(&ModelConfig { dim: 8, seed: 2 });
        let buf = save_params(model.params());
        let cut = &buf[..buf.len() / 2];
        assert!(matches!(
            decode(cut),
            Err(CheckpointError::Truncated | CheckpointError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn version_checked() {
        let mut raw = save_params(ModelKind::Srn.build(&ModelConfig { dim: 8, seed: 3 }).params()).to_vec();
        raw[4] = 99; // bump version byte
        assert_eq!(decode(&raw), Err(CheckpointError::UnsupportedVersion(99)));
    }

    #[test]
    fn empty_buffer_rejected() {
        assert_eq!(decode(&[]), Err(CheckpointError::Truncated));
    }

    #[test]
    fn wrong_architecture_is_recoverable_error() {
        let srn = ModelKind::Srn.build(&ModelConfig { dim: 8, seed: 1 });
        let buf = save_params(srn.params());
        let tmn = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 1 });
        let before = tmn.params().fingerprint();
        let err = load_params(tmn.params(), &buf).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { .. }), "got {err:?}");
        assert_eq!(tmn.params().fingerprint(), before, "failed load must not write");
    }

    #[test]
    fn wrong_dim_is_recoverable_error() {
        let small = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 1 });
        let big = ModelKind::Tmn.build(&ModelConfig { dim: 16, seed: 1 });
        let err = load_params(big.params(), &save_params(small.params())).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { .. }), "got {err:?}");
    }

    fn sample_trainer_state() -> TrainerState {
        TrainerState {
            epoch: 3,
            steps: 47,
            batches: 5,
            next_anchor: 9,
            total_pairs: 60,
            total_loss: 1.25,
            rng: [1, 2, 3, 4],
            seed: 11,
            batch_pairs: 12,
            sampling_number: 6,
            sub_stride: 5,
            use_sub_loss: true,
            loss: LossKind::Mse,
            order: vec![4, 1, 0, 3, 2, 5, 9, 7, 8, 6, 11, 10],
            buffer: vec![(4, 7, 0.5), (4, 2, 0.25)],
        }
    }

    #[test]
    fn full_checkpoint_roundtrip() {
        use tmn_autograd::optim::Adam;
        let model = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 5 });
        let adam = Adam::new(model.params(), 5e-3).state_snapshot();
        let trainer = sample_trainer_state();
        let buf = save_checkpoint(model.params(), Some(&adam), Some(&trainer));
        let decoded = decode_checkpoint(&buf).unwrap();
        assert_eq!(decoded.params, model.params().snapshot());
        assert_eq!(decoded.optimizer.as_ref(), Some(&adam));
        assert_eq!(decoded.trainer.as_ref(), Some(&trainer));
    }

    #[test]
    fn crc_rejects_every_byte_corruption() {
        let model = ModelKind::Srn.build(&ModelConfig { dim: 8, seed: 6 });
        let adam = tmn_autograd::optim::Adam::new(model.params(), 1e-3).state_snapshot();
        let clean = save_checkpoint(model.params(), Some(&adam), Some(&sample_trainer_state()));
        // Flip one bit in a sample of positions across the whole file; every
        // corruption must be rejected (the fuzz suite covers this densely).
        for pos in (0..clean.len()).step_by(7) {
            let mut bad = clean.to_vec();
            bad[pos] ^= 0x10;
            assert!(decode_checkpoint(&bad).is_err(), "bit flip at byte {pos} accepted");
        }
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
