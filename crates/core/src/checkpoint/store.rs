//! Durable checkpoint files: atomic writes and a rotating `latest`/`prev`
//! pair with CRC-validated recovery.
//!
//! Write protocol (crash-safe at every step):
//!
//! 1. serialize into `ckpt.tmp` in the store directory
//! 2. `fsync` the temp file (data durable before any rename)
//! 3. rename `latest.tmnckpt` → `prev.tmnckpt` (keeps the last good file)
//! 4. rename `ckpt.tmp` → `latest.tmnckpt` (atomic on POSIX)
//! 5. `fsync` the directory (best-effort; makes the renames durable)
//!
//! A crash between 3 and 4 leaves no `latest` but a good `prev`; a torn
//! write of the temp file never touches either name. [`CheckpointStore::load`]
//! tries `latest` first and silently falls back to `prev` whenever `latest`
//! is missing, truncated, or fails its CRC — so one corrupted file costs at
//! most `checkpoint_every` steps of progress, never the whole run.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use super::{decode_checkpoint, CheckpointError, TrainCheckpoint};

const LATEST: &str = "latest.tmnckpt";
const PREV: &str = "prev.tmnckpt";
const TMP: &str = "ckpt.tmp";

/// Which slot a checkpoint was recovered from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadedFrom {
    Latest,
    /// `latest` was missing or corrupt; the previous checkpoint was used.
    Prev,
}

/// A directory holding the rotating `latest`/`prev` checkpoint pair.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

fn io_err(context: &str, path: &Path, e: std::io::Error) -> CheckpointError {
    CheckpointError::Io(format!("{context} {}: {e}", path.display()))
}

impl CheckpointStore {
    /// Open (creating if needed) a checkpoint directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<CheckpointStore, CheckpointError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err("create", &dir, e))?;
        Ok(CheckpointStore { dir })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn latest_path(&self) -> PathBuf {
        self.dir.join(LATEST)
    }

    pub fn prev_path(&self) -> PathBuf {
        self.dir.join(PREV)
    }

    /// Durably write a serialized checkpoint, rotating the previous `latest`
    /// into the `prev` slot. Returns the path of the new `latest`.
    pub fn save(&self, bytes: &[u8]) -> Result<PathBuf, CheckpointError> {
        let tmp = self.dir.join(TMP);
        let latest = self.latest_path();
        let prev = self.prev_path();
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)
                .map_err(|e| io_err("open", &tmp, e))?;
            f.write_all(bytes).map_err(|e| io_err("write", &tmp, e))?;
            f.sync_all().map_err(|e| io_err("fsync", &tmp, e))?;
        }
        if latest.exists() {
            fs::rename(&latest, &prev).map_err(|e| io_err("rotate", &latest, e))?;
        }
        fs::rename(&tmp, &latest).map_err(|e| io_err("publish", &tmp, e))?;
        // Make the renames themselves durable. Directory fsync is not
        // supported everywhere, so failures here are non-fatal.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(latest)
    }

    /// Load and decode the newest valid checkpoint: `latest` if it parses
    /// and passes its CRCs, else `prev`. Errors only when neither slot holds
    /// a valid checkpoint.
    pub fn load(&self) -> Result<(TrainCheckpoint, LoadedFrom), CheckpointError> {
        let latest_result = self.load_slot(&self.latest_path());
        match latest_result {
            Ok(ckpt) => Ok((ckpt, LoadedFrom::Latest)),
            Err(latest_err) => match self.load_slot(&self.prev_path()) {
                Ok(ckpt) => Ok((ckpt, LoadedFrom::Prev)),
                // The `latest` failure is the interesting diagnostic when
                // there is no `prev` at all.
                Err(CheckpointError::Io(_)) => Err(latest_err),
                Err(prev_err) => Err(prev_err),
            },
        }
    }

    fn load_slot(&self, path: &Path) -> Result<TrainCheckpoint, CheckpointError> {
        let mut bytes = Vec::new();
        File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| io_err("read", path, e))?;
        decode_checkpoint(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::save_checkpoint;
    use crate::config::ModelConfig;
    use crate::models::ModelKind;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir = std::env::temp_dir()
                .join(format!("tmn_store_{tag}_{}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn checkpoint_bytes(seed: u64) -> Vec<u8> {
        let model = ModelKind::Srn.build(&ModelConfig { dim: 8, seed });
        save_checkpoint(model.params(), None, None).to_vec()
    }

    #[test]
    fn save_rotates_latest_into_prev() {
        let tmp = TempDir::new("rotate");
        let store = CheckpointStore::open(&tmp.0).unwrap();
        let first = checkpoint_bytes(1);
        let second = checkpoint_bytes(2);
        store.save(&first).unwrap();
        assert!(store.latest_path().exists());
        assert!(!store.prev_path().exists());
        store.save(&second).unwrap();
        assert_eq!(fs::read(store.latest_path()).unwrap(), second);
        assert_eq!(fs::read(store.prev_path()).unwrap(), first);
        let (_, from) = store.load().unwrap();
        assert_eq!(from, LoadedFrom::Latest);
    }

    #[test]
    fn corrupt_latest_recovers_from_prev() {
        let tmp = TempDir::new("recover");
        let store = CheckpointStore::open(&tmp.0).unwrap();
        store.save(&checkpoint_bytes(1)).unwrap();
        store.save(&checkpoint_bytes(2)).unwrap();
        // Flip a bit in the weights region of `latest`.
        let mut bad = fs::read(store.latest_path()).unwrap();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x01;
        fs::write(store.latest_path(), &bad).unwrap();
        let (ckpt, from) = store.load().unwrap();
        assert_eq!(from, LoadedFrom::Prev);
        let expected = decode_checkpoint(&checkpoint_bytes(1)).unwrap();
        assert_eq!(ckpt, expected);
    }

    #[test]
    fn truncated_latest_recovers_from_prev() {
        let tmp = TempDir::new("truncated");
        let store = CheckpointStore::open(&tmp.0).unwrap();
        store.save(&checkpoint_bytes(1)).unwrap();
        store.save(&checkpoint_bytes(2)).unwrap();
        let good = fs::read(store.latest_path()).unwrap();
        fs::write(store.latest_path(), &good[..good.len() / 3]).unwrap();
        let (_, from) = store.load().unwrap();
        assert_eq!(from, LoadedFrom::Prev);
    }

    #[test]
    fn missing_latest_falls_back_to_prev() {
        // Simulates a crash between the two renames: `latest` gone, `prev` good.
        let tmp = TempDir::new("missing");
        let store = CheckpointStore::open(&tmp.0).unwrap();
        store.save(&checkpoint_bytes(1)).unwrap();
        store.save(&checkpoint_bytes(2)).unwrap();
        fs::remove_file(store.latest_path()).unwrap();
        let (_, from) = store.load().unwrap();
        assert_eq!(from, LoadedFrom::Prev);
    }

    #[test]
    fn both_slots_bad_is_an_error() {
        let tmp = TempDir::new("allbad");
        let store = CheckpointStore::open(&tmp.0).unwrap();
        assert!(matches!(store.load(), Err(CheckpointError::Io(_))));
        store.save(&checkpoint_bytes(1)).unwrap();
        fs::write(store.latest_path(), b"garbage").unwrap();
        assert!(store.load().is_err());
    }

    #[test]
    fn save_is_atomic_no_tmp_left_behind() {
        let tmp = TempDir::new("atomic");
        let store = CheckpointStore::open(&tmp.0).unwrap();
        store.save(&checkpoint_bytes(1)).unwrap();
        assert!(!store.dir().join("ckpt.tmp").exists());
    }
}
