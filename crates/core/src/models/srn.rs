//! SRN — Siamese Recurrent Network baseline (Pei et al.).
//!
//! A siamese LSTM over raw coordinate embeddings: both trajectories are
//! encoded independently with shared weights; the paper implements it with
//! an LSTM following prior work. This architecture (without sub-loss /
//! kd-sampling) is SRN; the same backbone trained with Traj2SimVec's recipe
//! is the Traj2SimVec baseline.

use super::{EncodedBatch, PairModel};
use crate::batch::{PairBatch, SideBatch};
use crate::config::ModelConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tmn_autograd::nn::{Linear, Lstm, ParamSet, Recurrent};
use tmn_autograd::{infer, ops, Tensor};

/// Siamese LSTM encoder.
pub struct Srn {
    params: ParamSet,
    embed: Linear,
    lstm: Lstm,
    dim: usize,
}

impl Srn {
    pub fn new(config: &ModelConfig) -> Srn {
        let d = config.dim;
        let dh = config.half_dim();
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let embed = Linear::new(&mut params, "embed", 2, dh, &mut rng);
        let lstm = Lstm::new(&mut params, "lstm", dh, d, &mut rng);
        Srn { params, embed, lstm, dim: d }
    }

    fn encode_side(&self, side: &SideBatch) -> Tensor {
        let x = ops::leaky_relu(&self.embed.forward(&side.feats));
        self.lstm.forward_seq(&x)
    }
}

impl PairModel for Srn {
    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn encode_pairs(&self, batch: &PairBatch) -> EncodedBatch {
        EncodedBatch { out_a: self.encode_side(&batch.a), out_b: self.encode_side(&batch.b) }
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn embed_nograd(&self, own: &SideBatch, _other: &SideBatch) -> Option<Vec<f32>> {
        let (bs, m) = (own.batch_size(), own.max_len);
        let feats = own.feats.data();
        let mut x = self.embed.forward_nograd(&feats, bs * m);
        infer::leaky_relu_inplace(&mut x);
        let seq = self.lstm.forward_seq_nograd(&x, bs, m);
        infer::recycle(x);
        let out = infer::gather_last(&seq, bs, m, self.dim, &own.last_idx);
        infer::recycle(seq);
        Some(out)
    }

    fn stream_begin(&self) -> Option<super::ModelStream> {
        Some(super::ModelStream::rnn(self.lstm.stream_begin()))
    }

    fn embed_incremental(
        &self,
        state: &mut super::ModelStream,
        point: tmn_traj::Point,
    ) -> Vec<f32> {
        let s = state.rnn_mut("SRN");
        let feat = [point.lon as f32, point.lat as f32];
        let mut x = self.embed.forward_nograd(&feat, 1);
        infer::leaky_relu_inplace(&mut x);
        let mut out = vec![0.0f32; self.dim];
        self.lstm.stream_step(s, &x, &mut out);
        infer::recycle(x);
        state.appended += 1;
        out
    }

    fn name(&self) -> &'static str {
        "SRN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmn_traj::{Point, Trajectory};

    fn traj(off: f64, len: usize) -> Trajectory {
        (0..len).map(|i| Point::new(0.1 * i as f64, off)).collect()
    }

    #[test]
    fn shapes_and_independence() {
        let model = Srn::new(&ModelConfig { dim: 8, seed: 1 });
        let (a, b1, b2) = (traj(0.1, 5), traj(0.5, 5), traj(0.9, 5));
        let e1 = model.encode_pairs(&PairBatch::build(&[&a], &[&b1]));
        let e2 = model.encode_pairs(&PairBatch::build(&[&a], &[&b2]));
        assert_eq!(e1.out_a.shape(), &[1, 5, 8]);
        // Side A's encoding never depends on side B.
        assert_eq!(e1.out_a.to_vec(), e2.out_a.to_vec());
        assert!(!model.is_pair_dependent());
    }

    #[test]
    fn siamese_weights_shared() {
        // Encoding the same trajectory on either side gives the same vectors.
        let model = Srn::new(&ModelConfig { dim: 8, seed: 2 });
        let t = traj(0.3, 6);
        let e = model.encode_pairs(&PairBatch::build(&[&t], &[&t]));
        assert_eq!(e.out_a.to_vec(), e.out_b.to_vec());
    }

    #[test]
    fn gradients_reach_parameters() {
        let model = Srn::new(&ModelConfig { dim: 8, seed: 3 });
        let (a, b) = (traj(0.1, 4), traj(0.7, 6));
        let enc = model.encode_pairs(&PairBatch::build(&[&a], &[&b]));
        ops::sum_all(&ops::sum_last(&enc.out_a)).backward();
        for (name, t) in model.params().iter() {
            assert!(t.grad().is_some(), "no grad for {name}");
        }
    }
}
