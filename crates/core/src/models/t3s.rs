//! T3S baseline (Yang et al., ICDE 2021) — LSTM + self-attention.
//!
//! T3S learns spatial information with an LSTM and structural information
//! with a self-attention network over the points of the *same* trajectory
//! (with a learned positional embedding), then combines the two branches.
//! The combination weight λ is learned. Note the attention here is
//! *intra*-trajectory — precisely the design TMN's cross-trajectory
//! matching improves on.

use super::{EncodedBatch, PairModel};
use crate::batch::{PairBatch, SideBatch};
use crate::config::ModelConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tmn_autograd::nn::{Linear, Lstm, MultiHeadSelfAttention, ParamSet, Recurrent};
use tmn_autograd::{infer, ops, Tensor};

/// Maximum sequence length supported by the learned positional embedding.
pub const MAX_POSITIONS: usize = 512;

/// LSTM + self-attention encoder.
pub struct T3s {
    params: ParamSet,
    embed: Linear,
    lstm: Lstm,
    /// Projects the attention branch output (`d̂`) up to `d`.
    attn_proj: Linear,
    /// `[MAX_POSITIONS, d̂]` learned positional embedding.
    pos: Tensor,
    /// Raw combination logit; λ = σ(raw).
    lambda: Tensor,
    /// Transformer-style multi-head attention variant (None = the plain
    /// dot-product self-attention of the default T3S reproduction).
    mha: Option<MultiHeadSelfAttention>,
    dim: usize,
    half: usize,
}

impl T3s {
    pub fn new(config: &ModelConfig) -> T3s {
        T3s::build(config, None)
    }

    /// Variant whose structural branch is Transformer-style multi-head
    /// attention (with Q/K/V/O projections); `heads` must divide `d/2`.
    pub fn with_heads(config: &ModelConfig, heads: usize) -> T3s {
        T3s::build(config, Some(heads))
    }

    fn build(config: &ModelConfig, heads: Option<usize>) -> T3s {
        let d = config.dim;
        let dh = config.half_dim();
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let embed = Linear::new(&mut params, "embed", 2, dh, &mut rng);
        let lstm = Lstm::new(&mut params, "lstm", dh, d, &mut rng);
        let attn_proj = Linear::new(&mut params, "attn_proj", dh, d, &mut rng);
        let pos = params.register(
            "pos",
            Tensor::param(
                tmn_autograd::nn::uniform_xavier(&mut rng, MAX_POSITIONS, dh),
                &[MAX_POSITIONS, dh],
            ),
        );
        let lambda = params.register("lambda", Tensor::param(vec![0.0], &[1]));
        let mha = heads.map(|h| MultiHeadSelfAttention::new(&mut params, "mha", dh, h, &mut rng));
        T3s { params, embed, lstm, attn_proj, pos, lambda, mha, dim: d, half: dh }
    }

    /// Slice the positional table to `[m, d̂]` and broadcast-add per batch row.
    fn add_positions(&self, x: &Tensor, b: usize, m: usize) -> Tensor {
        assert!(m <= MAX_POSITIONS, "T3S: sequence longer than positional table");
        let rows = ops::tile_rows(&ops::slice_rows(&self.pos, m), b);
        ops::add(x, &rows)
    }

    fn encode_side(&self, side: &SideBatch) -> Tensor {
        let (b, m) = (side.batch_size(), side.max_len);
        let x = ops::leaky_relu(&self.embed.forward(&side.feats));
        // Spatial branch.
        let z = self.lstm.forward_seq(&x);
        // Structural branch: self-attention with positional information.
        let xp = self.add_positions(&x, b, m);
        let attn = if let Some(mha) = &self.mha {
            mha.forward(&xp, &side.mask)
        } else {
            let scores = ops::scale(&ops::bmm_nt(&xp, &xp), 1.0 / (self.half as f32).sqrt());
            let p = ops::masked_softmax(&scores, &side.mask);
            ops::mul_mask_rows(&ops::bmm_nn(&p, &xp), &side.mask)
        };
        let attn_d = self.attn_proj.forward(&attn);
        // Combine: λ·LSTM + (1−λ)·attention with a learned, differentiable λ.
        let lam = ops::sigmoid(&self.lambda);
        let one_minus = ops::add_scalar(&ops::neg(&lam), 1.0);
        ops::add(&ops::mul_scalar_tensor(&z, &lam), &ops::mul_scalar_tensor(&attn_d, &one_minus))
    }
}

impl PairModel for T3s {
    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn encode_pairs(&self, batch: &PairBatch) -> EncodedBatch {
        EncodedBatch { out_a: self.encode_side(&batch.a), out_b: self.encode_side(&batch.b) }
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn embed_nograd(&self, own: &SideBatch, _other: &SideBatch) -> Option<Vec<f32>> {
        // The multi-head variant has no tape-free path yet.
        if self.mha.is_some() {
            return None;
        }
        let (bs, m) = (own.batch_size(), own.max_len);
        assert!(m <= MAX_POSITIONS, "T3S: sequence longer than positional table");
        let (dh, d) = (self.half, self.dim);
        let feats = own.feats.data();
        let mut x = self.embed.forward_nograd(&feats, bs * m);
        infer::leaky_relu_inplace(&mut x);
        // Spatial branch.
        let z = self.lstm.forward_seq_nograd(&x, bs, m);
        // Structural branch: add positions in place, then self-attention.
        let pos = self.pos.data();
        for bi in 0..bs {
            for t in 0..m {
                let row = &mut x[(bi * m + t) * dh..(bi * m + t + 1) * dh];
                for (v, p) in row.iter_mut().zip(&pos[t * dh..(t + 1) * dh]) {
                    *v += *p;
                }
            }
        }
        let mask = own.mask.data();
        let mut scores = infer::bmm_nt(&x, &x, bs, m, dh, m);
        let inv_sqrt = 1.0 / (dh as f32).sqrt();
        for v in scores.iter_mut() {
            *v *= inv_sqrt;
        }
        infer::masked_softmax_inplace(&mut scores, &mask, bs, m, m);
        let mut attn = infer::bmm_nn(&scores, &x, bs, m, m, dh);
        infer::recycle(scores);
        infer::mask_rows_inplace(&mut attn, &mask, bs, m, dh);
        infer::recycle(x);
        let attn_d = self.attn_proj.forward_nograd(&attn, bs * m);
        infer::recycle(attn);
        // Combine: λ·LSTM + (1−λ)·attention, matching the graphed op order.
        let lam = {
            let l = self.lambda.data();
            1.0 / (1.0 + (-l[0]).exp())
        };
        let one_minus = -lam + 1.0;
        let mut seq = z;
        for (o, a) in seq.iter_mut().zip(&attn_d) {
            *o = *o * lam + *a * one_minus;
        }
        infer::recycle(attn_d);
        let out = infer::gather_last(&seq, bs, m, d, &own.last_idx);
        infer::recycle(seq);
        Some(out)
    }

    /// Self-attention mixes every point with every other, so there is no
    /// O(1) incremental update — T3S streams through the windowed fallback
    /// (full re-embed per append, window capped at [`MAX_POSITIONS`]). The
    /// multi-head variant has no tape-free path and cannot stream at all.
    fn stream_begin(&self) -> Option<super::ModelStream> {
        if self.mha.is_some() {
            return None;
        }
        Some(super::ModelStream::window(MAX_POSITIONS))
    }

    fn name(&self) -> &'static str {
        "T3S"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmn_traj::{Point, Trajectory};

    fn traj(off: f64, len: usize) -> Trajectory {
        (0..len).map(|i| Point::new(0.05 * i as f64, off + 0.01 * (i % 3) as f64)).collect()
    }

    fn model() -> T3s {
        T3s::new(&ModelConfig { dim: 8, seed: 6 })
    }

    #[test]
    fn shapes_and_independence() {
        let m = model();
        let (a, b1, b2) = (traj(0.2, 6), traj(0.5, 6), traj(0.9, 6));
        let e1 = m.encode_pairs(&PairBatch::build(&[&a], &[&b1]));
        let e2 = m.encode_pairs(&PairBatch::build(&[&a], &[&b2]));
        assert_eq!(e1.out_a.shape(), &[1, 6, 8]);
        assert_eq!(e1.out_a.to_vec(), e2.out_a.to_vec());
    }

    #[test]
    fn position_embedding_breaks_order_invariance() {
        // Same multiset of points in a different order must encode
        // differently (structural information).
        let m = model();
        let fwd: Trajectory = (0..6).map(|i| Point::new(0.1 * i as f64, 0.4)).collect();
        let rev: Trajectory = (0..6).rev().map(|i| Point::new(0.1 * i as f64, 0.4)).collect();
        let ef = m.encode_pairs(&PairBatch::build(&[&fwd], &[&fwd]));
        let er = m.encode_pairs(&PairBatch::build(&[&rev], &[&rev]));
        assert_ne!(ef.out_a.to_vec(), er.out_a.to_vec());
    }

    #[test]
    fn multi_head_variant_builds_and_differs() {
        let plain = T3s::new(&ModelConfig { dim: 8, seed: 6 });
        let multi = T3s::with_heads(&ModelConfig { dim: 8, seed: 6 }, 2);
        assert!(multi.params().num_scalars() > plain.params().num_scalars());
        let (a, b) = (traj(0.2, 5), traj(0.7, 5));
        let batch = PairBatch::build(&[&a], &[&b]);
        let e1 = plain.encode_pairs(&batch);
        let e2 = multi.encode_pairs(&batch);
        assert_eq!(e2.out_a.shape(), &[1, 5, 8]);
        assert_ne!(e1.out_a.to_vec(), e2.out_a.to_vec());
    }

    #[test]
    fn gradients_reach_all_parameters_including_lambda() {
        let m = model();
        let (a, b) = (traj(0.1, 5), traj(0.6, 4));
        let enc = m.encode_pairs(&PairBatch::build(&[&a], &[&b]));
        ops::sum_all(&ops::add(&ops::sum_last(&enc.out_a), &ops::sum_last(&enc.out_b))).backward();
        for (name, t) in m.params().iter() {
            assert!(t.grad().is_some(), "no grad for {name}");
        }
    }
}
