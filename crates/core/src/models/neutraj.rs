//! NeuTraj baseline (Yao et al., ICDE 2019) — LSTM with a grid-based
//! spatial attention memory (SAM).
//!
//! NeuTraj represents trajectories on a grid and keeps a memory of hidden
//! states keyed by grid cell; when a point is processed, the states of its
//! surrounding cells are read with attention and fed back into the network.
//! Reproduction notes: the memory read here uses the *detached* point
//! embedding as the attention query (gradients flow through the network
//! inputs, not through the memory contents), and the memory is updated with
//! an exponential moving average after every optimizer step — matching the
//! write-after-process behaviour of the original.

use super::{EncodedBatch, PairModel};
use crate::batch::{grid_neighbourhood, PairBatch, SideBatch, GRID_RESOLUTION};
use crate::config::ModelConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;
use tmn_autograd::nn::{Linear, Lstm, ParamSet, Recurrent};
use tmn_autograd::{infer, no_grad, ops, Tensor};

/// LSTM + spatial attention memory.
pub struct NeuTraj {
    params: ParamSet,
    embed: Linear,
    lstm: Lstm,
    dim: usize,
    half: usize,
    /// SAM: one slot per grid cell holding a `d`-dim EMA of hidden states;
    /// `None` until the cell is first written.
    memory: RefCell<Vec<Option<Vec<f32>>>>,
    /// EMA rate for memory writes.
    write_rate: f32,
}

impl NeuTraj {
    pub fn new(config: &ModelConfig) -> NeuTraj {
        let d = config.dim;
        let dh = config.half_dim();
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let embed = Linear::new(&mut params, "embed", 2, dh, &mut rng);
        // Input = point embedding ⊕ memory read (d dims).
        let lstm = Lstm::new(&mut params, "lstm", dh + d, d, &mut rng);
        NeuTraj {
            params,
            embed,
            lstm,
            dim: d,
            half: dh,
            memory: RefCell::new(vec![None; GRID_RESOLUTION * GRID_RESOLUTION]),
            write_rate: 0.5,
        }
    }

    /// Fraction of grid cells currently holding a memory entry.
    pub fn memory_occupancy(&self) -> f64 {
        let mem = self.memory.borrow();
        mem.iter().filter(|m| m.is_some()).count() as f64 / mem.len() as f64
    }

    /// Attention read over the 3×3 neighbourhood of each point's cell,
    /// using the (detached) point embedding prefix as the query.
    fn memory_read(&self, side: &SideBatch, x_detached: &[f32]) -> Vec<f32> {
        let (b, m) = (side.batch_size(), side.max_len);
        let mut out = vec![0.0f32; b * m * self.dim];
        self.memory_read_into(side, x_detached, &mut out);
        out
    }

    /// [`memory_read`](Self::memory_read) into a caller-owned (pre-zeroed)
    /// `[b·m·d]` buffer, so the tape-free path can rent it from the pool.
    fn memory_read_into(&self, side: &SideBatch, x_detached: &[f32], out: &mut [f32]) {
        let m = side.max_len;
        let mem = self.memory.borrow();
        for (row, cells) in side.grid_ids.iter().enumerate() {
            for (t, &cell) in cells.iter().enumerate().take(side.lens[row]) {
                let q = &x_detached[(row * m + t) * self.half..(row * m + t) * self.half + self.half];
                let slot = &mut out[(row * m + t) * self.dim..(row * m + t + 1) * self.dim];
                Self::memory_read_point(&mem, cell, q, slot);
            }
        }
    }

    /// One point's attention read over the 3×3 neighbourhood of `cell` into
    /// the pre-zeroed `slot` (`[d]`). Shared by the batched path above and
    /// the streaming path so both compute identical bits.
    fn memory_read_point(mem: &[Option<Vec<f32>>], cell: usize, q: &[f32], slot: &mut [f32]) {
        // Attention over occupied neighbour cells; score = dot of the
        // query with the entry's first d̂ components.
        let mut weights: Vec<(usize, f32)> = Vec::new();
        for nb in grid_neighbourhood(cell) {
            if let Some(entry) = &mem[nb] {
                let score: f32 = q.iter().zip(entry.iter()).map(|(a, b)| a * b).sum();
                weights.push((nb, score));
            }
        }
        if weights.is_empty() {
            return;
        }
        let max = weights.iter().map(|w| w.1).fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for w in &mut weights {
            w.1 = (w.1 - max).exp();
            denom += w.1;
        }
        for (nb, w) in weights {
            let entry = mem[nb].as_ref().expect("weighted cells are occupied");
            for (o, e) in slot.iter_mut().zip(entry) {
                *o += w / denom * e;
            }
        }
    }

    fn encode_side(&self, side: &SideBatch) -> Tensor {
        let x = ops::leaky_relu(&self.embed.forward(&side.feats));
        let x_plain = x.to_vec();
        let read = self.memory_read(side, &x_plain);
        let (b, m) = (side.batch_size(), side.max_len);
        let read_t = Tensor::from_vec(read, &[b, m, self.dim]);
        
        self.lstm.forward_seq(&ops::concat_last(&x, &read_t))
    }

    /// Write final hidden states back into the memory cells the trajectory
    /// visited (EMA update, gradient-free).
    fn memory_write(&self, side: &SideBatch, out: &Tensor) {
        let (_, m, d) = (side.batch_size(), side.max_len, self.dim);
        let data = out.to_vec();
        let mut mem = self.memory.borrow_mut();
        for (row, cells) in side.grid_ids.iter().enumerate() {
            let last = side.last_idx[row];
            let h = &data[(row * m + last) * d..(row * m + last + 1) * d];
            for &cell in cells.iter().take(side.lens[row]) {
                match &mut mem[cell] {
                    Some(entry) => {
                        for (e, &v) in entry.iter_mut().zip(h) {
                            *e = (1.0 - self.write_rate) * *e + self.write_rate * v;
                        }
                    }
                    None => mem[cell] = Some(h.to_vec()),
                }
            }
        }
    }
}

impl PairModel for NeuTraj {
    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn encode_pairs(&self, batch: &PairBatch) -> EncodedBatch {
        EncodedBatch { out_a: self.encode_side(&batch.a), out_b: self.encode_side(&batch.b) }
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn post_step(&self, batch: &PairBatch, encoded: &EncodedBatch) {
        no_grad(|| {
            self.memory_write(&batch.a, &encoded.out_a);
            self.memory_write(&batch.b, &encoded.out_b);
        });
    }

    fn embed_nograd(&self, own: &SideBatch, _other: &SideBatch) -> Option<Vec<f32>> {
        let (bs, m) = (own.batch_size(), own.max_len);
        let feats = own.feats.data();
        let mut x = self.embed.forward_nograd(&feats, bs * m);
        infer::leaky_relu_inplace(&mut x);
        let mut read = infer::take(bs * m * self.dim);
        self.memory_read_into(own, &x, &mut read);
        let lstm_in = infer::concat_cols(&x, &read, bs * m, self.half, self.dim);
        infer::recycle(read);
        infer::recycle(x);
        let seq = self.lstm.forward_seq_nograd(&lstm_in, bs, m);
        infer::recycle(lstm_in);
        let out = infer::gather_last(&seq, bs, m, self.dim, &own.last_idx);
        infer::recycle(seq);
        Some(out)
    }

    /// The spatial attention memory is mutable state outside the `ParamSet`:
    /// fresh replicas would start with an empty memory and encode different
    /// representations, so the data-parallel trainer must not split batches.
    fn supports_data_parallel(&self) -> bool {
        false
    }

    /// Streams against the *current* memory snapshot — bitwise equal to a
    /// full re-embed as long as the memory is not written to in between
    /// (writes only happen in [`post_step`](PairModel::post_step), i.e.
    /// during training).
    fn stream_begin(&self) -> Option<super::ModelStream> {
        Some(super::ModelStream::rnn(self.lstm.stream_begin()))
    }

    fn embed_incremental(
        &self,
        state: &mut super::ModelStream,
        point: tmn_traj::Point,
    ) -> Vec<f32> {
        let s = state.rnn_mut("NeuTraj");
        let feat = [point.lon as f32, point.lat as f32];
        let mut x = self.embed.forward_nograd(&feat, 1);
        infer::leaky_relu_inplace(&mut x);
        let mut read = infer::take(self.dim);
        {
            let mem = self.memory.borrow();
            let cell = crate::batch::grid_id(point.lon, point.lat);
            Self::memory_read_point(&mem, cell, &x[..self.half], &mut read[..self.dim]);
        }
        let lstm_in = infer::concat_cols(&x, &read, 1, self.half, self.dim);
        infer::recycle(read);
        infer::recycle(x);
        let mut out = vec![0.0f32; self.dim];
        self.lstm.stream_step(s, &lstm_in, &mut out);
        infer::recycle(lstm_in);
        state.appended += 1;
        out
    }

    fn name(&self) -> &'static str {
        "NeuTraj"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmn_traj::{Point, Trajectory};

    fn traj(off: f64, len: usize) -> Trajectory {
        (0..len).map(|i| Point::new(0.05 * i as f64, off)).collect()
    }

    fn model() -> NeuTraj {
        NeuTraj::new(&ModelConfig { dim: 8, seed: 5 })
    }

    #[test]
    fn cold_memory_behaves_like_lstm() {
        // With an empty memory the read vector is zero and encoding works.
        let m = model();
        assert_eq!(m.memory_occupancy(), 0.0);
        let (a, b) = (traj(0.2, 5), traj(0.8, 7));
        let enc = m.encode_pairs(&PairBatch::build(&[&a], &[&b]));
        assert_eq!(enc.out_a.shape(), &[1, 7, 8]);
    }

    #[test]
    fn post_step_fills_memory() {
        let m = model();
        let (a, b) = (traj(0.2, 5), traj(0.8, 7));
        let batch = PairBatch::build(&[&a], &[&b]);
        let enc = m.encode_pairs(&batch);
        m.post_step(&batch, &enc);
        assert!(m.memory_occupancy() > 0.0);
    }

    #[test]
    fn memory_changes_subsequent_encodings() {
        let m = model();
        let (a, b) = (traj(0.2, 5), traj(0.21, 5));
        let batch = PairBatch::build(&[&a], &[&b]);
        let before = m.encode_pairs(&batch).out_a.to_vec();
        let enc = m.encode_pairs(&batch);
        m.post_step(&batch, &enc);
        let after = m.encode_pairs(&batch).out_a.to_vec();
        assert_ne!(before, after, "SAM read had no effect after writes");
    }

    #[test]
    fn gradients_reach_parameters() {
        let m = model();
        let (a, b) = (traj(0.1, 4), traj(0.6, 4));
        let enc = m.encode_pairs(&PairBatch::build(&[&a], &[&b]));
        ops::sum_all(&ops::sum_last(&enc.out_a)).backward();
        for (name, t) in m.params().iter() {
            assert!(t.grad().is_some(), "no grad for {name}");
        }
    }
}
