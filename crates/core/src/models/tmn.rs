//! TMN — the paper's model (Section IV-B).
//!
//! Pipeline per pair `(T_a, T_b)` padded to length `m`:
//!
//! 1. Point embedding `x = LeakyReLU(W₀ p + b₀)`, `x ∈ ℝ^{d̂}`, `d̂ = d/2`
//!    (Eq. 4–5).
//! 2. Matching mechanism: match scores `X_a · X_bᵀ` (Eq. 6), masked softmax
//!    over the *other* trajectory's valid points (Eq. 7–8), weighted sum
//!    `S_{a←b} = P_{a←b} · X_b` (Eq. 9–10), discrepancy
//!    `M_{a←b} = X_a − S_{a←b}` (Eq. 11), padded rows zeroed.
//! 3. `Z_a = LSTM(X_a ⊕ M_{a←b})` (Eq. 12), hidden size `d`.
//! 4. `O_a = MLP(Z_a)` (Eq. 13).
//!
//! With `matching = false` this is the TMN-NM ablation: the LSTM consumes
//! the point embeddings alone and the rest of the network is unchanged.

use super::{EncodedBatch, PairModel};
use crate::batch::{PairBatch, SideBatch};
use crate::config::ModelConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tmn_autograd::nn::{Linear, Mlp, ParamSet, Recurrent, RnnKind};
use tmn_autograd::{infer, ops, Tensor};

/// Trajectory Matching Network.
pub struct Tmn {
    params: ParamSet,
    embed: Linear,
    rnn: Box<dyn Recurrent>,
    mlp: Mlp,
    dim: usize,
    matching: bool,
}

impl Tmn {
    /// Build TMN (`matching = true`) or the TMN-NM ablation (`false`) with
    /// the paper's LSTM backbone.
    pub fn new(config: &ModelConfig, matching: bool) -> Tmn {
        Tmn::with_rnn(config, matching, RnnKind::Lstm)
    }

    /// Build with an explicit recurrent backbone (the RNN-kind ablation).
    pub fn with_rnn(config: &ModelConfig, matching: bool, rnn_kind: RnnKind) -> Tmn {
        let d = config.dim;
        let dh = config.half_dim();
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let embed = Linear::new(&mut params, "embed", 2, dh, &mut rng);
        // With matching, the RNN sees X ⊕ M (2·d̂ = d); without, just X (d̂).
        let rnn_in = if matching { d } else { dh };
        let rnn = rnn_kind.build(&mut params, "rnn", rnn_in, d, &mut rng);
        let mlp = Mlp::new(&mut params, "mlp", &[d, d, d], &mut rng);
        Tmn { params, embed, rnn, mlp, dim: d, matching }
    }

    /// Whether the matching mechanism is enabled.
    pub fn has_matching(&self) -> bool {
        self.matching
    }

    /// Eq. 4–5: embed raw coordinates.
    fn embed_side(&self, side: &SideBatch) -> Tensor {
        ops::leaky_relu(&self.embed.forward(&side.feats))
    }

    /// Eq. 6–11 for one direction: the matching matrix `M_{q←k}`.
    fn matching_matrix(x_q: &Tensor, x_k: &Tensor, q: &SideBatch, k: &SideBatch) -> Tensor {
        // Match scores m^{(i,j)} = x_q^{(i)} · x_k^{(j)} (Eq. 6, batched Eq. 8).
        let scores = ops::bmm_nt(x_q, x_k);
        // Masked softmax over the key trajectory's real points (Eq. 7).
        let p = ops::masked_softmax(&scores, &k.mask);
        // Weighted sum of the key embeddings (Eq. 9–10).
        let s = ops::bmm_nn(&p, x_k);
        // Discrepancy (Eq. 11), with padded query rows covered by zeros as
        // the paper prescribes for the post-softmax masking.
        ops::mul_mask_rows(&ops::sub(x_q, &s), &q.mask)
    }

    fn encode_side(&self, own: &SideBatch, other: &SideBatch) -> Tensor {
        let x_own = self.embed_side(own);
        let lstm_in = if self.matching {
            let x_other = self.embed_side(other);
            let m = Self::matching_matrix(&x_own, &x_other, own, other);
            ops::concat_last(&x_own, &m) // Eq. 12's X ⊕ M
        } else {
            x_own
        };
        let z = self.rnn.forward_seq(&lstm_in);
        self.mlp.forward(&z) // Eq. 13
    }
}

impl PairModel for Tmn {
    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn encode_pairs(&self, batch: &PairBatch) -> EncodedBatch {
        EncodedBatch {
            out_a: self.encode_side(&batch.a, &batch.b),
            out_b: self.encode_side(&batch.b, &batch.a),
        }
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn is_pair_dependent(&self) -> bool {
        self.matching
    }

    fn embed_nograd(&self, own: &SideBatch, other: &SideBatch) -> Option<Vec<f32>> {
        let (bs, m) = (own.batch_size(), own.max_len);
        let dh = self.embed.out_dim();
        let feats = own.feats.data();
        let mut x_own = self.embed.forward_nograd(&feats, bs * m);
        infer::leaky_relu_inplace(&mut x_own);
        let rnn_in = if self.matching {
            let other_feats = other.feats.data();
            let mut x_other = self.embed.forward_nograd(&other_feats, bs * m);
            infer::leaky_relu_inplace(&mut x_other);
            let mm = infer::matching_matrix(
                &x_own,
                &x_other,
                &own.mask.data(),
                &other.mask.data(),
                bs,
                m,
                dh,
            );
            infer::recycle(x_other);
            let cat = infer::concat_cols(&x_own, &mm, bs * m, dh, dh);
            infer::recycle(mm);
            infer::recycle(x_own);
            cat
        } else {
            x_own
        };
        let z = self.rnn.forward_seq_nograd(&rnn_in, bs, m);
        infer::recycle(rnn_in);
        let o = self.mlp.forward_nograd(&z, bs * m);
        infer::recycle(z);
        let out = infer::gather_last(&o, bs, m, self.dim, &own.last_idx);
        infer::recycle(o);
        Some(out)
    }

    /// TMN-NM only: the matching variant's representations depend on the
    /// paired trajectory, so a single-trajectory stream is meaningless.
    fn stream_begin(&self) -> Option<super::ModelStream> {
        if self.matching {
            return None;
        }
        Some(super::ModelStream::rnn(self.rnn.stream_begin()))
    }

    fn embed_incremental(
        &self,
        state: &mut super::ModelStream,
        point: tmn_traj::Point,
    ) -> Vec<f32> {
        assert!(!self.matching, "TMN: pair-dependent model has no stream");
        let s = state.rnn_mut("TMN-NM");
        let feat = [point.lon as f32, point.lat as f32];
        let mut x = self.embed.forward_nograd(&feat, 1);
        infer::leaky_relu_inplace(&mut x);
        let mut z = infer::take(self.dim);
        self.rnn.stream_step(s, &x, &mut z);
        infer::recycle(x);
        // Eq. 13 on just the newest hidden row: the MLP is row-wise, so this
        // matches the newest row of the full-sequence MLP bitwise.
        let o = self.mlp.forward_nograd(&z, 1);
        infer::recycle(z);
        let out = o[..self.dim].to_vec();
        infer::recycle(o);
        state.appended += 1;
        out
    }

    fn name(&self) -> &'static str {
        if self.matching {
            "TMN"
        } else {
            "TMN-NM"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmn_traj::{Point, Trajectory};

    fn traj(seed: u64, len: usize) -> Trajectory {
        (0..len)
            .map(|i| {
                let x = ((seed * 31 + i as u64 * 17) % 97) as f64 / 97.0;
                let y = ((seed * 13 + i as u64 * 7) % 89) as f64 / 89.0;
                Point::new(x, y)
            })
            .collect()
    }

    fn cfg() -> ModelConfig {
        ModelConfig { dim: 8, seed: 3 }
    }

    #[test]
    fn output_shapes() {
        let model = Tmn::new(&cfg(), true);
        let (a, b) = (traj(1, 6), traj(2, 9));
        let batch = PairBatch::build(&[&a], &[&b]);
        let enc = model.encode_pairs(&batch);
        assert_eq!(enc.out_a.shape(), &[1, 9, 8]);
        assert_eq!(enc.out_b.shape(), &[1, 9, 8]);
    }

    #[test]
    fn tmn_is_pair_dependent_nm_is_not() {
        // The representation of `a` under TMN must change when paired with a
        // different b; under TMN-NM it must not.
        let (a, b1, b2) = (traj(1, 6), traj(2, 6), traj(9, 6));
        for (matching, expect_differs) in [(true, true), (false, false)] {
            let model = Tmn::new(&cfg(), matching);
            let e1 = model.encode_pairs(&PairBatch::build(&[&a], &[&b1]));
            let e2 = model.encode_pairs(&PairBatch::build(&[&a], &[&b2]));
            let differs = e1.out_a.to_vec() != e2.out_a.to_vec();
            assert_eq!(differs, expect_differs, "matching={matching}");
        }
    }

    #[test]
    fn padding_does_not_change_representation() {
        // Encoding the same pair with extra padding (larger batch max) must
        // leave the last-valid-step output identical: masks must fully
        // neutralize padded key points.
        let model = Tmn::new(&cfg(), true);
        let (a, b) = (traj(1, 5), traj(2, 5));
        let tight = PairBatch::build(&[&a], &[&b]);
        // Padded: batch with a longer filler pair forces max_len = 12.
        let filler = traj(3, 12);
        let padded = PairBatch::build(&[&a, &filler], &[&b, &filler]);
        let e_tight = model.encode_pairs(&tight);
        let e_pad = model.encode_pairs(&padded);
        let d = model.dim();
        // Row 0, time step 4 (= last valid) in both encodings.
        let tight_vec = &e_tight.out_a.to_vec()[4 * d..5 * d];
        let pad_all = e_pad.out_a.to_vec();
        let pad_vec = &pad_all[4 * d..5 * d]; // batch row 0, step 4
        for (x, y) in tight_vec.iter().zip(pad_vec) {
            assert!((x - y).abs() < 1e-5, "padding leaked into representation");
        }
    }

    #[test]
    fn symmetric_pair_produces_symmetric_outputs() {
        // encode(a,b).out_a == encode(b,a).out_b — the two sides share
        // weights and the matching is direction-symmetric by construction.
        let model = Tmn::new(&cfg(), true);
        let (a, b) = (traj(4, 7), traj(5, 7));
        let e1 = model.encode_pairs(&PairBatch::build(&[&a], &[&b]));
        let e2 = model.encode_pairs(&PairBatch::build(&[&b], &[&a]));
        assert_eq!(e1.out_a.to_vec(), e2.out_b.to_vec());
        assert_eq!(e1.out_b.to_vec(), e2.out_a.to_vec());
    }

    #[test]
    fn gradients_reach_every_parameter() {
        let model = Tmn::new(&cfg(), true);
        let (a, b) = (traj(1, 5), traj(2, 7));
        let batch = PairBatch::build(&[&a], &[&b]);
        let enc = model.encode_pairs(&batch);
        let loss = ops::sum_all(&ops::add(
            &ops::sum_last(&enc.out_a),
            &ops::sum_last(&enc.out_b),
        ));
        loss.backward();
        for (name, t) in model.params().iter() {
            let g = t.grad().unwrap_or_else(|| panic!("no grad for {name}"));
            assert!(g.iter().any(|&v| v != 0.0), "all-zero grad for {name}");
        }
    }

    #[test]
    fn gru_backbone_builds_and_encodes() {
        let model = Tmn::with_rnn(&cfg(), true, RnnKind::Gru);
        let (a, b) = (traj(1, 6), traj(2, 6));
        let enc = model.encode_pairs(&PairBatch::build(&[&a], &[&b]));
        assert_eq!(enc.out_a.shape(), &[1, 6, 8]);
        assert!(enc.out_a.to_vec().iter().all(|v| v.is_finite()));
        // GRU variant differs from the LSTM variant on the same pair.
        let lstm_model = Tmn::new(&cfg(), true);
        let enc2 = lstm_model.encode_pairs(&PairBatch::build(&[&a], &[&b]));
        assert_ne!(enc.out_a.to_vec(), enc2.out_a.to_vec());
    }

    #[test]
    fn nm_variant_has_smaller_lstm_input() {
        let with = Tmn::new(&cfg(), true);
        let without = Tmn::new(&cfg(), false);
        assert!(with.params.num_scalars() > without.params.num_scalars());
    }
}
