//! Per-trajectory streaming state for incremental embedding.
//!
//! A [`ModelStream`] is created by [`PairModel::stream_begin`] and advanced
//! one GPS point at a time by [`PairModel::embed_incremental`]. Recurrent
//! models (SRN, NeuTraj, TMN-NM with either backbone) keep resumable hidden
//! state — appending a point costs one embed row, one RNN cell step and (for
//! TMN-NM) one MLP row, and the returned embedding is **bitwise equal** to a
//! full [`PairModel::embed_nograd`] re-run over the grown trajectory at
//! batch size 1. Attention models (T3S) cannot update self-attention
//! incrementally and fall back to a *windowed* stream: points are buffered
//! (oldest dropped past the cap) and every append re-embeds the window in
//! full — equally exact over the window, but O(window) per append.
//!
//! [`PairModel::stream_begin`]: super::PairModel::stream_begin
//! [`PairModel::embed_incremental`]: super::PairModel::embed_incremental
//! [`PairModel::embed_nograd`]: super::PairModel::embed_nograd

use tmn_autograd::infer::RnnStream;
use tmn_traj::Point;

/// Resumable state for one trajectory being embedded point-by-point.
pub struct ModelStream {
    pub(crate) inner: StreamInner,
    pub(crate) appended: usize,
}

pub(crate) enum StreamInner {
    /// Recurrent hidden state: one cell step per appended point.
    Rnn(RnnStream),
    /// Buffered window re-embedded in full on every append (attention
    /// models). `cap` bounds the window; the oldest point is dropped first.
    Window { points: Vec<Point>, cap: usize },
}

impl ModelStream {
    pub(crate) fn rnn(s: RnnStream) -> ModelStream {
        ModelStream { inner: StreamInner::Rnn(s), appended: 0 }
    }

    pub(crate) fn window(cap: usize) -> ModelStream {
        assert!(cap > 0, "ModelStream: window cap must be positive");
        ModelStream { inner: StreamInner::Window { points: Vec::new(), cap }, appended: 0 }
    }

    /// Total points appended so far (windowed streams count evicted points
    /// too; the *current* window may be shorter).
    pub fn len(&self) -> usize {
        self.appended
    }

    pub fn is_empty(&self) -> bool {
        self.appended == 0
    }

    /// Whether appends fall back to a full re-embed over a buffered window
    /// (attention models) instead of an O(1) incremental step.
    pub fn is_windowed(&self) -> bool {
        matches!(self.inner, StreamInner::Window { .. })
    }

    /// The recurrent state, for models that stream incrementally.
    pub(crate) fn rnn_mut(&mut self, model: &str) -> &mut RnnStream {
        match &mut self.inner {
            StreamInner::Rnn(s) => s,
            StreamInner::Window { .. } => {
                panic!("{model}: stream state from a different (windowed) model")
            }
        }
    }
}
