//! The model zoo: TMN (with and without the matching mechanism) and the
//! four baselines the paper compares against — SRN, NeuTraj, T3S and
//! Traj2SimVec.
//!
//! All models implement [`PairModel`]: they encode a batch of trajectory
//! pairs into per-time-step representations `O ∈ ℝ^{B×m×d}` from which the
//! trainer takes the last-valid-step rows as trajectory vectors (and prefix
//! rows for the sub-trajectory loss).

mod neutraj;
mod srn;
mod stream;
mod t3s;
mod tmn;

pub use neutraj::NeuTraj;
pub use srn::Srn;
pub use stream::ModelStream;
pub use t3s::T3s;
pub use tmn::Tmn;

use crate::batch::{PairBatch, SideBatch};
use stream::StreamInner;
use tmn_autograd::nn::ParamSet;
use tmn_autograd::Tensor;
use tmn_traj::{Point, Trajectory};

/// Per-time-step representations for a batch of pairs.
pub struct EncodedBatch {
    /// `[B, m, d]` representations of side A's points.
    pub out_a: Tensor,
    /// `[B, m, d]` representations of side B's points.
    pub out_b: Tensor,
}

/// A trainable trajectory-pair encoder.
pub trait PairModel {
    /// The model's trainable parameters.
    fn params(&self) -> &ParamSet;

    /// Encode both sides of a pair batch into `[B, m, d]` representations.
    /// Joint models (TMN) let the two sides interact; independent models
    /// encode each side separately with shared (siamese) weights.
    fn encode_pairs(&self, batch: &PairBatch) -> EncodedBatch;

    /// Embedding dimension `d` of the output representations.
    fn dim(&self) -> usize;

    /// Whether representations depend on the paired trajectory. If `false`,
    /// the evaluation pipeline may encode every trajectory once and search
    /// in embedding space; if `true` (TMN), similarity queries re-encode
    /// candidate pairs.
    fn is_pair_dependent(&self) -> bool {
        false
    }

    /// Hook invoked after every gradient step with the batch it was computed
    /// on (NeuTraj updates its spatial memory here). Default: no-op.
    fn post_step(&self, _batch: &PairBatch, _encoded: &EncodedBatch) {}

    /// Whether the trainer may split a batch across fresh model replicas
    /// (data-parallel training). Requires that a replica built from the same
    /// config plus a weight snapshot computes the same function — models
    /// with extra mutable state fed by [`post_step`](Self::post_step) must
    /// opt out. Default: supported.
    fn supports_data_parallel(&self) -> bool {
        true
    }

    /// Tape-free inference: embed each trajectory of `own` into its final
    /// `d`-dimensional vector (the last-valid-step row of the `[B, m, d]`
    /// encoding), returned as a flat `[B · d]` buffer. `other` is the paired
    /// side, consulted only by pair-dependent models (TMN's matching).
    ///
    /// Implementations run entirely over plain `Vec<f32>` buffers via
    /// `tmn_autograd::infer` — zero graph-node allocation — and are
    /// bitwise-identical to `encode_pairs` + last-step gather. Returns
    /// `None` when the model has no fast path (evaluation falls back to the
    /// graphed forward under `no_grad`).
    fn embed_nograd(&self, _own: &SideBatch, _other: &SideBatch) -> Option<Vec<f32>> {
        None
    }

    /// Begin a streaming embedding of ONE trajectory, or `None` when the
    /// model cannot embed single trajectories point-by-point: pair-dependent
    /// TMN (the matching mechanism needs the paired side) and attention
    /// variants without a tape-free path (T3S multi-head).
    ///
    /// Recurrent models return resumable hidden state; attention models
    /// return a *windowed* stream whose appends re-embed the buffered window
    /// in full — check [`ModelStream::is_windowed`] when append cost matters.
    fn stream_begin(&self) -> Option<ModelStream> {
        None
    }

    /// Append one point to a stream from [`stream_begin`](Self::stream_begin)
    /// and return the grown trajectory's `d`-dim embedding.
    ///
    /// For recurrent models the result is bitwise equal to
    /// [`embed_nograd`](Self::embed_nograd) over the full point sequence at
    /// batch size 1, at O(1) cost per append (one embed row + one cell step).
    /// For windowed models it equals a full re-embed over the current window.
    ///
    /// The default handles the windowed fallback; models that hand out an
    /// RNN stream override it. Panics if `state` came from another model
    /// kind.
    fn embed_incremental(&self, state: &mut ModelStream, point: Point) -> Vec<f32> {
        match &mut state.inner {
            StreamInner::Window { points, cap } => {
                if points.len() == *cap {
                    points.remove(0);
                }
                points.push(point);
                state.appended += 1;
                let traj = Trajectory::new(points.clone());
                let side = SideBatch::build(&[&traj], traj.len());
                self.embed_nograd(&side, &side)
                    .expect("windowed stream requires a tape-free embed path")
            }
            StreamInner::Rnn(_) => panic!(
                "{}: model handed out an RNN stream but does not override embed_incremental",
                self.name()
            ),
        }
    }

    fn name(&self) -> &'static str;
}

/// Which model to instantiate (used by the bench harness and examples).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ModelKind {
    Srn,
    NeuTraj,
    T3s,
    /// Traj2SimVec = SRN backbone + sub-trajectory loss + k-d-tree sampling;
    /// the architecture is the backbone, the rest is training configuration.
    Traj2SimVec,
    /// TMN without the matching mechanism (ablation, Table II).
    TmnNm,
    Tmn,
}

impl ModelKind {
    pub const ALL: [ModelKind; 6] = [
        ModelKind::Srn,
        ModelKind::NeuTraj,
        ModelKind::T3s,
        ModelKind::Traj2SimVec,
        ModelKind::TmnNm,
        ModelKind::Tmn,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Srn => "SRN",
            ModelKind::NeuTraj => "NeuTraj",
            ModelKind::T3s => "T3S",
            ModelKind::Traj2SimVec => "Traj2SimVec",
            ModelKind::TmnNm => "TMN-NM",
            ModelKind::Tmn => "TMN",
        }
    }

    /// Instantiate the architecture for this kind.
    pub fn build(&self, config: &crate::config::ModelConfig) -> Box<dyn PairModel> {
        match self {
            ModelKind::Srn | ModelKind::Traj2SimVec => Box::new(Srn::new(config)),
            ModelKind::NeuTraj => Box::new(NeuTraj::new(config)),
            ModelKind::T3s => Box::new(T3s::new(config)),
            ModelKind::TmnNm => Box::new(Tmn::new(config, false)),
            ModelKind::Tmn => Box::new(Tmn::new(config, true)),
        }
    }

    /// Whether the *training recipe* for this kind enables the
    /// sub-trajectory loss (Traj2SimVec introduced it; TMN adopts it).
    pub fn uses_sub_loss(&self) -> bool {
        matches!(self, ModelKind::Traj2SimVec | ModelKind::Tmn | ModelKind::TmnNm)
    }

    /// Whether the training recipe samples with the k-d-tree strategy
    /// (Traj2SimVec) instead of TMN's random-rank strategy.
    pub fn uses_kd_sampling(&self) -> bool {
        matches!(self, ModelKind::Traj2SimVec)
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;

    #[test]
    fn build_all_kinds() {
        let cfg = ModelConfig { dim: 8, seed: 1 };
        for kind in ModelKind::ALL {
            let model = kind.build(&cfg);
            assert_eq!(model.dim(), 8, "{kind}");
            assert!(!model.params().is_empty(), "{kind}");
        }
    }

    #[test]
    fn pair_dependence_only_for_tmn() {
        let cfg = ModelConfig { dim: 8, seed: 1 };
        assert!(ModelKind::Tmn.build(&cfg).is_pair_dependent());
        assert!(!ModelKind::TmnNm.build(&cfg).is_pair_dependent());
        assert!(!ModelKind::Srn.build(&cfg).is_pair_dependent());
        assert!(!ModelKind::T3s.build(&cfg).is_pair_dependent());
    }

    #[test]
    fn recipe_flags_match_paper() {
        assert!(ModelKind::Traj2SimVec.uses_kd_sampling());
        assert!(!ModelKind::Tmn.uses_kd_sampling());
        assert!(ModelKind::Tmn.uses_sub_loss());
        assert!(!ModelKind::Srn.uses_sub_loss());
        assert!(!ModelKind::T3s.uses_sub_loss());
    }
}
