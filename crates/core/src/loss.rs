//! Training objectives (Section IV-D).
//!
//! - `L_entire` (Eq. 14): rank-weighted regression between the predicted
//!   similarity `exp(−‖o_a − o_s‖)` and the ground truth `exp(−α·D)`.
//! - `L_sub` (Eq. 15): the same objective on prefix sub-trajectories sampled
//!   at every `stride`-th point, normalized by the number of prefixes.
//! - `L = L_entire + L_sub` (Eq. 16), or Q-error in place of MSE (Fig. 3).

use crate::batch::PairBatch;
use crate::config::LossKind;
use crate::models::EncodedBatch;
use tmn_autograd::{ops, Tensor};

/// Ground-truth supervision for one batch of pairs.
#[derive(Debug, Clone, Default)]
pub struct PairTargets {
    /// Ground-truth similarity per pair.
    pub sim: Vec<f32>,
    /// Eq. 14 rank weight per pair.
    pub weight: Vec<f32>,
    /// Per pair: `(prefix_len, similarity)` for the sub-trajectory loss;
    /// empty when sub-loss is disabled or the pair is too short.
    pub sub: Vec<Vec<(usize, f32)>>,
}

impl PairTargets {
    pub fn len(&self) -> usize {
        self.sim.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sim.is_empty()
    }
}

const DIST_EPS: f32 = 1e-8;
const QERR_EPS: f32 = 1e-4;

/// Predicted similarity `exp(−‖u − v‖)` for rows gathered at `idx_a/idx_b`.
fn predict_similarity(
    out_a: &Tensor,
    out_b: &Tensor,
    idx_a: &[usize],
    idx_b: &[usize],
) -> Tensor {
    let oa = ops::gather_time(out_a, idx_a);
    let ob = ops::gather_time(out_b, idx_b);
    let diff = ops::sub(&oa, &ob);
    let dist = ops::sqrt_eps(&ops::sum_last(&ops::mul(&diff, &diff)), DIST_EPS);
    ops::exp(&ops::neg(&dist))
}

/// Weighted regression error between predictions and constant targets.
fn weighted_error(pred: &Tensor, target: &[f32], weight: &[f32], kind: LossKind) -> Tensor {
    let t = Tensor::from_vec(target.to_vec(), &[target.len()]);
    let w = Tensor::from_vec(weight.to_vec(), &[weight.len()]);
    match kind {
        LossKind::Mse => {
            let err = ops::sub(pred, &t);
            ops::sum_all(&ops::mul(&w, &ops::mul(&err, &err)))
        }
        LossKind::QError => {
            // Q-error is ≥ 1; subtract the floor so a perfect fit is 0 loss.
            let q = ops::add_scalar(&ops::qerror(pred, &t, QERR_EPS), -1.0);
            ops::sum_all(&ops::mul(&w, &q))
        }
    }
}

/// Full training loss for a batch: `L_entire` plus (optionally) `L_sub`.
///
/// Returns a scalar tensor; its graph reaches the model parameters through
/// `encoded`.
pub fn pair_loss(
    encoded: &EncodedBatch,
    batch: &PairBatch,
    targets: &PairTargets,
    kind: LossKind,
) -> Tensor {
    let b = batch.batch_size();
    assert_eq!(targets.len(), b, "targets/batch size mismatch");
    // L_entire (Eq. 14): representations at the true final points.
    let pred = predict_similarity(&encoded.out_a, &encoded.out_b, &batch.a.last_idx, &batch.b.last_idx);
    let mut loss = weighted_error(&pred, &targets.sim, &targets.weight, kind);

    // L_sub (Eq. 15): group sub entries by prefix length so each group is
    // one batched gather; rows without that prefix get weight 0.
    if !targets.sub.is_empty() {
        let mut levels: Vec<usize> = targets
            .sub
            .iter()
            .flat_map(|s| s.iter().map(|&(l, _)| l))
            .collect();
        levels.sort_unstable();
        levels.dedup();
        for level in levels {
            let mut idx = vec![0usize; b];
            let mut sim = vec![0.0f32; b];
            let mut w = vec![0.0f32; b];
            let mut any = false;
            for (row, subs) in targets.sub.iter().enumerate() {
                if let Some(&(_, s)) = subs.iter().find(|&&(l, _)| l == level) {
                    idx[row] = level - 1; // prefix of length `level`
                    sim[row] = s;
                    // Eq. 15's 1/r factor, combined with the pair's weight.
                    w[row] = targets.weight[row] / subs.len() as f32;
                    any = true;
                } else {
                    idx[row] = batch.a.last_idx[row].min(batch.b.last_idx[row]);
                }
            }
            if !any {
                continue;
            }
            let pred_l = predict_similarity(&encoded.out_a, &encoded.out_b, &idx, &idx);
            let l_sub = weighted_error(&pred_l, &sim, &w, kind);
            loss = ops::add(&loss, &l_sub);
        }
    }
    loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::PairBatch;
    use crate::config::ModelConfig;
    use crate::models::{ModelKind, PairModel};
    use tmn_traj::{Point, Trajectory};

    fn traj(off: f64, len: usize) -> Trajectory {
        (0..len).map(|i| Point::new(0.05 * i as f64, off)).collect()
    }

    fn setup() -> (Box<dyn PairModel>, PairBatch) {
        let model = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 2 });
        let (a1, a2) = (traj(0.1, 8), traj(0.2, 12));
        let (b1, b2) = (traj(0.15, 10), traj(0.8, 12));
        let batch = PairBatch::build(&[&a1, &a2], &[&b1, &b2]);
        (model, batch)
    }

    fn targets(sub: bool) -> PairTargets {
        PairTargets {
            sim: vec![0.9, 0.1],
            weight: vec![0.6, 0.4],
            sub: if sub {
                vec![vec![(5, 0.95)], vec![(5, 0.2), (10, 0.15)]]
            } else {
                vec![Vec::new(), Vec::new()]
            },
        }
    }

    #[test]
    fn loss_is_finite_scalar_and_differentiable() {
        let (model, batch) = setup();
        let enc = model.encode_pairs(&batch);
        let loss = pair_loss(&enc, &batch, &targets(true), LossKind::Mse);
        assert_eq!(loss.shape(), &[1]);
        assert!(loss.item().is_finite() && loss.item() >= 0.0);
        loss.backward();
        assert!(model.params().grad_norm() > 0.0);
    }

    #[test]
    fn sub_loss_increases_total() {
        let (model, batch) = setup();
        let enc = model.encode_pairs(&batch);
        let without = pair_loss(&enc, &batch, &targets(false), LossKind::Mse).item();
        let enc2 = model.encode_pairs(&batch);
        let with = pair_loss(&enc2, &batch, &targets(true), LossKind::Mse).item();
        assert!(with >= without, "sub loss must be non-negative: {with} vs {without}");
    }

    #[test]
    fn qerror_loss_nonnegative_and_differentiable() {
        let (model, batch) = setup();
        let enc = model.encode_pairs(&batch);
        let loss = pair_loss(&enc, &batch, &targets(true), LossKind::QError);
        assert!(loss.item().is_finite() && loss.item() >= 0.0);
        loss.backward();
        assert!(model.params().grad_norm() > 0.0);
    }

    #[test]
    fn perfect_prediction_gives_zero_entire_loss() {
        // If target similarity equals the prediction, MSE entire-loss is 0.
        let (model, batch) = setup();
        let enc = model.encode_pairs(&batch);
        let pred = predict_similarity(
            &enc.out_a,
            &enc.out_b,
            &batch.a.last_idx,
            &batch.b.last_idx,
        );
        let t = PairTargets {
            sim: pred.to_vec(),
            weight: vec![0.5, 0.5],
            sub: vec![Vec::new(), Vec::new()],
        };
        let enc2 = model.encode_pairs(&batch);
        let loss = pair_loss(&enc2, &batch, &t, LossKind::Mse);
        assert!(loss.item() < 1e-10, "loss {}", loss.item());
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn mismatched_targets_panic() {
        let (model, batch) = setup();
        let enc = model.encode_pairs(&batch);
        let bad = PairTargets { sim: vec![0.5], weight: vec![1.0], sub: vec![Vec::new()] };
        let _ = pair_loss(&enc, &batch, &bad, LossKind::Mse);
    }
}
