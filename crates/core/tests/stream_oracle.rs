//! Streaming embedding gates: the incremental per-point path must be
//! *bitwise* equal to a full `embed_nograd` re-run over the grown
//! trajectory at batch size 1, and a warm append must stay off the graph
//! and (for the recurrent models) out of the large-allocation counter.
//!
//! The bitwise claim holds because every GEMM on both paths goes through
//! `kernels::mm_nn`, whose dispatch depends only on per-row work, and the
//! elementwise step functions are shared — see
//! `crates/autograd/tests/stream_parity.rs` for the RNN-layer half of the
//! argument; this file closes the loop at the model layer (embedding row,
//! NeuTraj memory read, TMN-NM's MLP row, T3S's windowed fallback).

use proptest::prelude::*;
use tmn_core::batch::SideBatch;
use tmn_core::config::ModelConfig;
use tmn_core::models::{ModelKind, PairModel, Tmn};
use tmn_core::PairBatch;
use tmn_obs::memory;
use tmn_traj::{Point, Trajectory};

/// See `infer_alloc.rs` — same budget, same rationale.
const LARGE: usize = 4096;

/// The armed counter is process-global; serialize measuring tests.
fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn traj_points(seed: u64, len: usize) -> Vec<Point> {
    (0..len)
        .map(|i| {
            let x = ((seed * 31 + i as u64 * 17) % 97) as f64 / 97.0;
            let y = ((seed * 13 + i as u64 * 7) % 89) as f64 / 89.0;
            Point::new(x, y)
        })
        .collect()
}

/// Every streamable model kind, freshly built. TMN-NM is exercised with
/// both backbones (the GRU stream has its own state layout).
fn streamable_models(dim: usize, seed: u64) -> Vec<Box<dyn PairModel>> {
    let cfg = ModelConfig { dim, seed };
    vec![
        ModelKind::Srn.build(&cfg),
        ModelKind::NeuTraj.build(&cfg),
        ModelKind::TmnNm.build(&cfg),
        Box::new(Tmn::with_rnn(&cfg, false, tmn_autograd::nn::RnnKind::Gru)),
        ModelKind::T3s.build(&cfg),
    ]
}

/// Append `pts` one at a time, checking every prefix against the full
/// tape-free re-embed at batch size 1.
fn check_stream_oracle(model: &dyn PairModel, pts: &[Point]) {
    let mut stream = model.stream_begin().unwrap_or_else(|| panic!("{}: no stream", model.name()));
    for (i, &p) in pts.iter().enumerate() {
        let inc = model.embed_incremental(&mut stream, p);
        assert_eq!(stream.len(), i + 1);
        let grown = Trajectory::new(pts[..=i].to_vec());
        let side = SideBatch::build(&[&grown], i + 1);
        let full = model.embed_nograd(&side, &side).unwrap();
        assert_eq!(
            inc,
            full,
            "{}: incremental embedding diverged from full re-embed at point {i}",
            model.name()
        );
        tmn_autograd::infer::recycle(full);
    }
}

#[test]
fn incremental_matches_full_reembed_bitwise() {
    for model in streamable_models(16, 7) {
        check_stream_oracle(model.as_ref(), &traj_points(3, 13));
    }
}

#[test]
fn neutraj_stream_reads_the_warm_memory() {
    // Fill the spatial attention memory first; the stream must read the
    // same written state as the batched fast path.
    let model = ModelKind::NeuTraj.build(&ModelConfig { dim: 16, seed: 9 });
    let warm: Vec<Trajectory> =
        (0..6).map(|i| Trajectory::new(traj_points(i + 20, 8))).collect();
    let refs: Vec<&Trajectory> = warm.iter().collect();
    let batch = PairBatch::build(&refs[..3], &refs[3..]);
    let enc = model.encode_pairs(&batch);
    model.post_step(&batch, &enc);
    check_stream_oracle(model.as_ref(), &traj_points(21, 10));
}

#[test]
fn pair_dependent_and_mha_models_have_no_stream() {
    let cfg = ModelConfig { dim: 16, seed: 7 };
    assert!(ModelKind::Tmn.build(&cfg).stream_begin().is_none(), "matching TMN cannot stream");
    let mha = tmn_core::models::T3s::with_heads(&cfg, 2);
    assert!(mha.stream_begin().is_none(), "T3S-MHA has no tape-free path to fall back on");
}

#[test]
fn t3s_stream_is_windowed_and_recurrent_streams_are_not() {
    let cfg = ModelConfig { dim: 16, seed: 7 };
    assert!(ModelKind::T3s.build(&cfg).stream_begin().unwrap().is_windowed());
    for kind in [ModelKind::Srn, ModelKind::NeuTraj, ModelKind::TmnNm] {
        assert!(!kind.build(&cfg).stream_begin().unwrap().is_windowed(), "{kind}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random walks of random length: parity must hold for every model at
    /// every prefix, not just the curated fixtures above.
    #[test]
    fn incremental_matches_full_reembed_on_random_walks(
        steps in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..20),
        seed in 0u64..1000,
    ) {
        let pts: Vec<Point> = steps.iter().map(|&(x, y)| Point::new(x, y)).collect();
        for model in streamable_models(8, seed) {
            check_stream_oracle(model.as_ref(), &pts);
        }
    }
}

#[test]
fn streams_are_independent_across_threads() {
    // The buffer pool backing the stream steps is thread-local; concurrent
    // streams on different threads must not perturb each other's bits.
    let handles: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                for model in streamable_models(16, 7) {
                    check_stream_oracle(model.as_ref(), &traj_points(40 + t, 11));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("stream thread panicked");
    }
}

#[test]
fn warm_append_is_graph_free_and_alloc_bounded() {
    let _l = test_lock();
    // dim 32 keeps every per-point intermediate (embed row, gate buffer,
    // MLP row) far below LARGE; the budget of 2 covers the returned vector
    // plus one pool growth, mirroring the batched embed_nograd gate.
    let cfg = ModelConfig { dim: 32, seed: 3 };
    for kind in [ModelKind::Srn, ModelKind::NeuTraj, ModelKind::TmnNm] {
        let model = kind.build(&cfg);
        let mut stream = model.stream_begin().unwrap();
        let pts = traj_points(5, 40);
        // Warm the thread-local pool.
        for &p in &pts[..32] {
            model.embed_incremental(&mut stream, p);
        }
        let nodes_before = tmn_autograd::nodes_created();
        let (out, large) = memory::count_large_during(LARGE, || {
            model.embed_incremental(&mut stream, pts[32])
        });
        let node_delta = tmn_autograd::nodes_created() - nodes_before;
        assert_eq!(node_delta, 0, "{kind}: warm append created {node_delta} graph nodes");
        assert!(large <= 2, "{kind}: {large} large allocations in a warm append");
        assert_eq!(out.len(), 32, "{kind}: wrong embedding dim");
    }
}
