//! Fuzz suite for the checkpoint codec: `decode`/`decode_checkpoint` must
//! never panic on malformed input (the buffer is untrusted disk data), and
//! the v2 CRCs must reject every single-bit corruption of a valid file.

use proptest::prelude::*;
use tmn_core::checkpoint::{crc32, decode, decode_checkpoint, save_checkpoint, TrainerState};
use tmn_core::{save_params, LossKind, ModelConfig, ModelKind};

fn small_checkpoint() -> Vec<u8> {
    let model = ModelKind::Srn.build(&ModelConfig { dim: 8, seed: 42 });
    let adam = tmn_autograd::optim::Adam::new(model.params(), 5e-3).state_snapshot();
    let trainer = TrainerState {
        epoch: 1,
        steps: 17,
        batches: 3,
        next_anchor: 5,
        total_pairs: 36,
        total_loss: 2.5,
        rng: [11, 22, 33, 44],
        seed: 7,
        batch_pairs: 12,
        sampling_number: 6,
        sub_stride: 5,
        use_sub_loss: true,
        loss: LossKind::Mse,
        order: vec![3, 0, 2, 1, 4, 5],
        buffer: vec![(3, 1, 0.5)],
    };
    save_checkpoint(model.params(), Some(&adam), Some(&trainer)).to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary garbage: the decoder returns an error (or, vacuously, an
    /// accidental success) but must never panic or over-allocate.
    #[test]
    fn decode_arbitrary_bytes_never_panics(bytes in prop::collection::vec(0u8..=255, 0..256)) {
        let _ = decode(&bytes);
        let _ = decode_checkpoint(&bytes);
    }

    /// Garbage behind a valid magic + version header reaches the deep
    /// decoding paths (section table, length fields, shape products) —
    /// still no panics, no unbounded allocations.
    #[test]
    fn decode_framed_garbage_never_panics(
        version in prop_oneof![Just(1u32), Just(2u32)],
        body in prop::collection::vec(0u8..=255, 0..256),
    ) {
        let mut buf = b"TMNW".to_vec();
        buf.extend_from_slice(&version.to_le_bytes());
        buf.extend_from_slice(&body);
        let _ = decode(&buf);
        let _ = decode_checkpoint(&buf);
    }

    /// Single-byte mutations of a real v2 checkpoint: never a panic, and
    /// any actual change is rejected (per-section + whole-file CRC32).
    #[test]
    fn single_byte_mutation_never_panics_and_is_rejected(
        pos_seed in 0usize..usize::MAX,
        xor in 1u8..=255,
    ) {
        let clean = small_checkpoint();
        let pos = pos_seed % clean.len();
        let mut bad = clean.clone();
        bad[pos] ^= xor;
        prop_assert!(decode_checkpoint(&bad).is_err(), "mutation at {pos} (^{xor:#x}) accepted");
    }

    /// Truncations at every length parse cleanly into an error.
    #[test]
    fn truncation_never_panics(cut_seed in 0usize..usize::MAX) {
        let clean = small_checkpoint();
        let cut = cut_seed % clean.len();
        prop_assert!(decode_checkpoint(&clean[..cut]).is_err());
    }
}

/// CRC32 detects *all* single-bit errors, so walk every bit of a full v2
/// checkpoint (params + adam + trainer sections) and require rejection.
#[test]
fn v2_crc_rejects_every_single_bit_flip() {
    let clean = small_checkpoint();
    assert!(decode_checkpoint(&clean).is_ok(), "baseline checkpoint must decode");
    for byte in 0..clean.len() {
        for bit in 0..8 {
            let mut bad = clean.clone();
            bad[byte] ^= 1 << bit;
            assert!(
                decode_checkpoint(&bad).is_err(),
                "single-bit flip at byte {byte} bit {bit} was accepted"
            );
        }
    }
}

/// Weights-only files (what `save_params` writes) get the same guarantee.
#[test]
fn weights_only_v2_rejects_every_single_bit_flip() {
    let model = ModelKind::Tmn.build(&ModelConfig { dim: 8, seed: 9 });
    let clean = save_params(model.params()).to_vec();
    for byte in 0..clean.len() {
        for bit in 0..8 {
            let mut bad = clean.clone();
            bad[byte] ^= 1 << bit;
            assert!(
                decode(&bad).is_err(),
                "single-bit flip at byte {byte} bit {bit} was accepted"
            );
        }
    }
}

#[test]
fn crc32_matches_reference_vectors() {
    // zlib's documented test vector plus structural properties.
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    assert_ne!(crc32(b"a"), crc32(b"b"));
}
