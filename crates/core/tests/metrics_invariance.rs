//! The metrics registry must be a pure observer: training with serving
//! metrics enabled has to produce bitwise-identical loss curves and model
//! parameters to training with them disabled. Mirror of
//! `profiler_invariance.rs` for the registry added in the serving-metrics
//! PR — the registry only ever reads already-computed wall-clock scalars,
//! and this locks that in.
//!
//! Kept as a single test function: the metrics enable flag is
//! process-global, and this integration-test binary owns its process.

use tmn_core::{LossKind, ModelConfig, ModelKind, TrainConfig, Trainer};
use tmn_data::RankSampler;
use tmn_obs::metrics;
use tmn_traj::metrics::{Metric, MetricParams};
use tmn_traj::{DistanceMatrix, Point, Trajectory};

fn toy_set(n: usize) -> Vec<Trajectory> {
    (0..n)
        .map(|i| {
            let off = i as f64 / n as f64;
            (0..12).map(|t| Point::new(0.08 * t as f64, off)).collect()
        })
        .collect()
}

fn train_run(threads: usize) -> (Vec<u32>, Vec<Vec<u32>>) {
    let train = toy_set(12);
    let dmat = DistanceMatrix::compute(&train, Metric::Dtw, &MetricParams::default(), 1);
    let mcfg = ModelConfig { dim: 8, seed: 9 };
    let model = ModelKind::Tmn.build(&mcfg);
    let cfg = TrainConfig {
        epochs: 2,
        lr: 5e-3,
        sampling_number: 6,
        batch_pairs: 12,
        loss: LossKind::Mse,
        use_sub_loss: true,
        sub_stride: 5,
        clip: 5.0,
        seed: 11,
        threads,
        checkpoint_every: 0,
        checkpoint_dir: None,
    };
    let mut trainer = Trainer::new(
        model.as_ref(),
        &train,
        &dmat,
        Metric::Dtw,
        MetricParams::default(),
        Box::new(RankSampler),
        cfg,
        None,
    );
    if threads > 1 {
        trainer = trainer.with_replicas(ModelKind::Tmn, mcfg);
    }
    let stats = trainer.train();
    let losses = stats.epochs.iter().map(|e| e.loss.to_bits()).collect();
    let weights = model
        .params()
        .snapshot()
        .into_iter()
        .map(|(_, _, d)| d.into_iter().map(f32::to_bits).collect())
        .collect();
    (losses, weights)
}

#[test]
fn metrics_on_and_off_train_identically() {
    metrics::set_enabled(false);
    metrics::reset();
    let (off_losses, off_weights) = train_run(1);
    let off_snap = metrics::snapshot();
    assert!(
        off_snap.counter(tmn_core::TRAIN_BATCHES_TOTAL).is_none(),
        "disabled registry must record nothing"
    );

    metrics::set_enabled(true);
    metrics::reset();
    let (on_losses, on_weights) = train_run(1);
    let snap = metrics::snapshot();
    metrics::set_enabled(false);

    let batches = snap.counter(tmn_core::TRAIN_BATCHES_TOTAL).expect("batch counter populated");
    assert!(batches >= 2, "expected at least one batch per epoch, got {batches}");
    let h = snap.histogram(tmn_core::TRAIN_BATCH_NS).expect("batch histogram populated");
    assert_eq!(h.count, batches, "one histogram observation per batch");
    assert!(snap.gauge(tmn_core::TRAIN_BATCH_WALL_MS).is_some(), "wall-ms gauge populated");

    assert_eq!(off_losses, on_losses, "metrics registry changed the loss curve");
    assert_eq!(off_weights, on_weights, "metrics registry changed the trained weights");

    // Same invariance on the data-parallel path.
    metrics::set_enabled(false);
    metrics::reset();
    let (off_losses, off_weights) = train_run(4);
    metrics::set_enabled(true);
    metrics::reset();
    let (on_losses, on_weights) = train_run(4);
    metrics::set_enabled(false);
    assert_eq!(off_losses, on_losses, "metrics registry changed the parallel loss curve");
    assert_eq!(off_weights, on_weights, "metrics registry changed the parallel trained weights");
}
